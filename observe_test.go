package progressdb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"progressdb/internal/obs"
)

// loadObsWorkload builds a small paper workload for observability tests.
func loadObsWorkload(t testing.TB, cfg Config) *DB {
	t.Helper()
	db := Open(cfg)
	if err := db.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	return db
}

// twoJoinSQL joins three tables — customer ⋈ orders ⋈ lineitem — so the
// annotated plan carries at least two join operators.
const twoJoinSQL = `select c.custkey, o.orderkey, l.quantity
	from customer c, orders o, lineitem l
	where c.custkey = o.custkey and o.orderkey = l.orderkey
	and c.nationkey < 10`

func TestMetricsSnapshotInstruments(t *testing.T) {
	db := loadObsWorkload(t, Config{WorkMemPages: 16, Metrics: true})
	if !db.MetricsEnabled() {
		t.Fatal("Config.Metrics did not enable the registry")
	}
	if err := db.ColdRestart(); err != nil { // cold pool: force misses
		t.Fatal(err)
	}
	if _, err := db.ExecDiscard(twoJoinSQL, nil); err != nil {
		t.Fatal(err)
	}
	samples := db.Metrics()
	names := map[string]bool{}
	byID := map[string]obs.Sample{}
	for _, s := range samples {
		names[s.Name] = true
		byID[s.ID()] = s
	}
	if len(names) < 12 {
		t.Fatalf("metrics snapshot exposes %d named instruments, want >= 12: %v", len(names), names)
	}
	// Core instruments must exist and the hot-path counters must have moved.
	for _, want := range []string{
		"bufferpool_hits_total", "bufferpool_misses_total",
		"disk_seq_reads_total", "engine_queries_total",
		"indicator_refreshes_total", "indicator_segment_p",
		"exec_rows_out_total", "vclock_seconds", "progress_refresh_u",
	} {
		if !names[want] {
			t.Errorf("missing instrument %q", want)
		}
	}
	if s := byID["engine_queries_total"]; s.Value != 1 {
		t.Errorf("engine_queries_total = %v, want 1", s.Value)
	}
	if s := byID["bufferpool_misses_total"]; s.Value <= 0 {
		t.Errorf("bufferpool_misses_total = %v, want > 0", s.Value)
	}
	if s := byID["indicator_refreshes_total"]; s.Value <= 0 {
		t.Errorf("indicator_refreshes_total = %v, want > 0", s.Value)
	}
	if s := byID[`exec_rows_out_total{op="seqscan"}`]; s.Value <= 0 {
		t.Errorf(`exec_rows_out_total{op="seqscan"} = %v, want > 0`, s.Value)
	}
	if s := byID["vclock_seconds"]; s.Value <= 0 {
		t.Errorf("vclock_seconds = %v, want > 0", s.Value)
	}

	// The Prometheus text form round-trips through the parser.
	text := db.MetricsText()
	parsed, err := obs.ParsePrometheusText(text)
	if err != nil {
		t.Fatalf("ParsePrometheusText: %v\n%s", err, text)
	}
	if len(parsed) != len(samples) {
		t.Fatalf("round-trip lost series: %d -> %d", len(samples), len(parsed))
	}

	// And the JSON form is valid JSON.
	js, err := db.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []obs.Sample
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatalf("MetricsJSON is not valid JSON: %v", err)
	}
}

func TestMetricsDisabledByDefault(t *testing.T) {
	db := Open(Config{})
	db.MustCreateTable("t", Col("k", Int))
	db.MustInsert("t", 1)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if db.MetricsEnabled() {
		t.Fatal("metrics enabled without Config.Metrics")
	}
	if _, err := db.Exec("select * from t", nil); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics(); got != nil {
		t.Fatalf("Metrics() = %v, want nil when disabled", got)
	}
	if got := db.MetricsText(); got != "" {
		t.Fatalf("MetricsText() = %q, want empty when disabled", got)
	}
}

func TestExplainAnalyzeTwoJoin(t *testing.T) {
	db := loadObsWorkload(t, Config{WorkMemPages: 16, Metrics: true})
	res, text, err := db.ExplainAnalyze("explain analyze " + twoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() == 0 {
		t.Fatal("EXPLAIN ANALYZE returned no rows")
	}
	if res.Trace == nil || res.Trace.SpanCount() < 4 {
		t.Fatalf("trace missing or too small: %+v", res.Trace)
	}
	// Per-operator actuals, estimate error factor, and U on every
	// instrumented node; per-segment table at the bottom.
	for _, want := range []string{
		"actual rows=", "err=x", "U=", "loops=", "est rows=", "[S", "est U", "actual U",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "Join"); n < 2 {
		t.Fatalf("expected >= 2 join operators, found %d:\n%s", n, text)
	}
	// The bare SELECT (no EXPLAIN prefix) works too.
	if _, _, err := db.ExplainAnalyze(twoJoinSQL); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAndEventLog(t *testing.T) {
	var buf bytes.Buffer
	db := loadObsWorkload(t, Config{
		WorkMemPages:          16,
		ProgressUpdateSeconds: 5,
		Trace:                 true,
		TraceSink:             &buf,
	})
	res, err := db.ExecDiscard(twoJoinSQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Config.Trace did not populate Result.Trace")
	}
	root := res.Trace.Root
	if root.Kind != "query" || len(root.Children) == 0 {
		t.Fatalf("bad trace root: %+v", root)
	}
	var segs, ops int
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		switch s.Kind {
		case "segment":
			segs++
		case "operator":
			ops++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	if segs == 0 || ops == 0 {
		t.Fatalf("trace has %d segment and %d operator spans", segs, ops)
	}
	// The trace itself serializes to JSON.
	if _, err := res.Trace.JSON(); err != nil {
		t.Fatal(err)
	}

	// The sink received a JSONL event log: one JSON object per line, with
	// progress refreshes and segment completions.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("event log has %d lines:\n%s", len(lines), buf.String())
	}
	kinds := map[string]int{}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line is not JSON: %v\n%s", err, line)
		}
		typ, _ := ev["type"].(string)
		kinds[typ]++
		if _, ok := ev["t"]; !ok {
			t.Fatalf("event missing timestamp: %s", line)
		}
	}
	if kinds["progress"] == 0 {
		t.Fatalf("no progress events in log: %v", kinds)
	}
	if kinds["segment_done"] == 0 {
		t.Fatalf("no segment_done events in log: %v", kinds)
	}
}

func TestExplainStatementDispatch(t *testing.T) {
	db := loadObsWorkload(t, Config{WorkMemPages: 16})
	// ExecAnalyze still works without the metrics registry (nil-safe
	// instruments all the way down).
	_, table, err := db.ExecAnalyze(twoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "est U") {
		t.Fatalf("segment table:\n%s", table)
	}
	// EXPLAIN ANALYZE also works with metrics off.
	_, text, err := db.ExplainAnalyze("EXPLAIN ANALYZE " + twoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "actual rows=") {
		t.Fatalf("annotated plan:\n%s", text)
	}
}

module progressdb

go 1.22

package progressdb

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"progressdb/internal/exec"
	"progressdb/internal/faultinject"
	"progressdb/internal/storage"
)

// This file is the engine's randomized fault-schedule property suite:
// run representative spilling workloads under hundreds of deterministic
// random fault schedules and assert, for every schedule, the engine's
// failure-model invariants:
//
//  1. Either the query errors, or its result is exactly correct —
//     never a silently wrong result.
//  2. No temp/spill files or buffer-pool pages leak, even when the
//     query dies mid-spill or via an injected panic (CheckLeaks).
//  3. The engine stays usable for subsequent queries.
//  4. Progress reporting stays sane up to the failure point: DoneU is
//     monotone and Percent stays in [0, 100]. (Percent itself may dip
//     when a segment's estimate is refined upward — that is the
//     paper's design, not a defect — so monotonicity is asserted on
//     work done, not on the ratio.)
//
// Schedules are generated from one seeded RNG, so a failure reproduces
// exactly; the failing spec string is printed for replay via
// Config.FaultSpec or progressd -fault.

// chaosDB builds two small tables with a tiny work_mem so every join,
// sort, and aggregate in the query list spills to temp files.
func chaosDB(t testing.TB) *DB {
	t.Helper()
	db := Open(Config{
		WorkMemPages:          2,
		BufferPoolPages:       32,
		ProgressUpdateSeconds: 0.5,
		SeqPageCost:           0.005,
		RandPageCost:          0.04,
		Metrics:               true,
	})
	rng := rand.New(rand.NewSource(1))
	db.MustCreateTable("r", Col("k", Int), Col("v", Int), Col("pad", Text))
	db.MustCreateTable("s", Col("k", Int), Col("v", Int))
	pad := strings.Repeat("y", 60)
	for i := 0; i < 4000; i++ {
		db.MustInsert("r", int64(i), int64(rng.Intn(100)), pad)
	}
	for i := 0; i < 3000; i++ {
		db.MustInsert("s", int64(rng.Intn(4000)), int64(i))
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

// chaosQueries are the workload shapes exercised under fault schedules:
// filter scan, external sort, spilled hash join, hash aggregate with
// sort, and a semijoin — the paper's Q1–Q5 operator mix in miniature.
var chaosQueries = []string{
	"select * from r where v < 50",
	"select * from r order by pad desc, k",
	"select r.k, r.v, s.v from r, s where r.k = s.k",
	"select v, count(*), sum(k) from r group by v order by v",
	"select * from r where exists (select * from s where s.k = r.k)",
}

// fingerprint reduces a result to an order-insensitive hash so "wrong
// result" is detectable without storing full baselines.
func fingerprint(res *Result) uint64 {
	rows := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		rows = append(rows, fmt.Sprint(row...))
	}
	sort.Strings(rows)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", len(rows))
	for _, r := range rows {
		h.Write([]byte(r))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// baselines runs every chaos query fault-free and records its
// fingerprint.
func baselines(t *testing.T, db *DB) []uint64 {
	t.Helper()
	out := make([]uint64, len(chaosQueries))
	for i, sql := range chaosQueries {
		res, err := db.Exec(sql, nil)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		if res.RowCount() == 0 {
			t.Fatalf("baseline %q returned no rows; workload too small to test anything", sql)
		}
		out[i] = fingerprint(res)
	}
	return out
}

// randomSchedule draws one fault schedule. Roughly a third of the
// probability mass goes to each of read-side, write-side, and mixed
// schedules; latency, transient mix, targets, ordinal faults, and
// panics are sprinkled independently.
func randomSchedule(r *rand.Rand) faultinject.Config {
	cfg := faultinject.Config{Seed: r.Int63n(1<<30) + 1}
	prob := func() float64 { return []float64{0.001, 0.005, 0.02, 0.08}[r.Intn(4)] }
	switch r.Intn(4) {
	case 0:
		cfg.ReadErrProb = prob()
	case 1:
		cfg.WriteErrProb = prob()
	case 2:
		cfg.ReadErrProb, cfg.WriteErrProb = prob(), prob()
	case 3: // ordinal schedule
		if r.Intn(2) == 0 {
			cfg.FailNthRead = r.Int63n(200) + 1
		} else {
			cfg.FailNthWrite = r.Int63n(50) + 1
		}
	}
	cfg.TransientProb = []float64{0, 0.5, 1}[r.Intn(3)]
	if r.Intn(3) == 0 {
		cfg.LatencyProb = 0.1
		cfg.LatencySeconds = 0.002
	}
	cfg.Target = []faultinject.Target{
		faultinject.TargetAll, faultinject.TargetBase, faultinject.TargetTemp,
	}[r.Intn(3)]
	if r.Intn(8) == 0 {
		cfg.PanicNth = r.Int63n(300) + 1
	}
	if r.Intn(4) == 0 {
		cfg.MaxFaults = r.Int63n(4) + 1
	}
	return cfg
}

// TestChaosRandomFaultSchedules is the tentpole property test. The
// schedule count scales with PROGRESSDB_CHAOS_SCHEDULES (see the
// Makefile's chaos target); the default keeps `go test ./...` fast.
func TestChaosRandomFaultSchedules(t *testing.T) {
	schedules := 60
	if s := os.Getenv("PROGRESSDB_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("PROGRESSDB_CHAOS_SCHEDULES=%q: %v", s, err)
		}
		schedules = n
	}
	db := chaosDB(t)
	want := baselines(t, db)
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("baseline leak check: %v", err)
	}

	rng := rand.New(rand.NewSource(20260806))
	faulted := 0
	for i := 0; i < schedules; i++ {
		cfg := randomSchedule(rng)
		spec := cfg.String()
		qi := rng.Intn(len(chaosQueries))
		tag := fmt.Sprintf("schedule %d %q on query %d %q", i, spec, qi, chaosQueries[qi])

		if err := db.SetFaultSpec(spec); err != nil {
			t.Fatalf("%s: SetFaultSpec: %v", tag, err)
		}
		lastDone := -1.0
		res, err := db.ExecContext(context.Background(), chaosQueries[qi], func(r Report) {
			if r.DoneU < lastDone-1e-9 {
				t.Errorf("%s: DoneU regressed %g -> %g", tag, lastDone, r.DoneU)
			}
			lastDone = r.DoneU
			if r.Percent < 0 || r.Percent > 100+1e-9 {
				t.Errorf("%s: Percent %g outside [0,100]", tag, r.Percent)
			}
		})
		stats := db.FaultStats()
		if serr := db.SetFaultSpec(""); serr != nil {
			t.Fatalf("%s: clearing fault spec: %v", tag, serr)
		}

		if err != nil {
			faulted++
			// Property 1 (error half): the failure must be a typed,
			// explainable error — an injected I/O fault somewhere in the
			// chain, or a contained panic.
			var ioFault *storage.IOFault
			var internal *exec.InternalError
			if !errors.As(err, &ioFault) && !errors.As(err, &internal) {
				t.Fatalf("%s: untyped failure: %T %v", tag, err, err)
			}
			if internal != nil && stats.Panics == 0 {
				t.Fatalf("%s: internal error without an injected panic: %v", tag, err)
			}
		} else if got := fingerprint(res); got != want[qi] {
			// Property 1 (success half): never a wrong result.
			t.Fatalf("%s: WRONG RESULT: fingerprint %x, want %x (stats %+v)",
				tag, got, want[qi], stats)
		}
		// Property 2: nothing leaked, even mid-spill or post-panic.
		if err := db.CheckLeaks(); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
	}
	if faulted == 0 {
		t.Fatalf("no schedule out of %d caused a failure; the suite is not exercising error paths", schedules)
	}

	// Property 3: after every schedule, the engine still answers every
	// query correctly with no injector installed.
	for qi, sql := range chaosQueries {
		res, err := db.Exec(sql, nil)
		if err != nil {
			t.Fatalf("post-chaos rerun %q: %v", sql, err)
		}
		if got := fingerprint(res); got != want[qi] {
			t.Fatalf("post-chaos rerun %q: fingerprint %x, want %x", sql, got, want[qi])
		}
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("post-chaos leak check: %v", err)
	}
	t.Logf("chaos: %d/%d schedules induced a query failure; engine stayed correct and leak-free", faulted, schedules)
}

// TestChaosConcurrentWorkers is the storm variant of the chaos suite:
// each random schedule is exercised by several goroutines at once on
// the shared engine, so injected faults land while neighbors hold
// latches, pins, and temp files. Per query the invariants are the same
// — error-or-correct, typed failures only — and after every schedule
// the engine must be leak-free and reusable. The worker count scales
// with PROGRESSDB_CHAOS_WORKERS (the Makefile chaos target raises it).
func TestChaosConcurrentWorkers(t *testing.T) {
	workers := 4
	if s := os.Getenv("PROGRESSDB_CHAOS_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			t.Fatalf("PROGRESSDB_CHAOS_WORKERS=%q: %v", s, err)
		}
		workers = n
	}
	const schedules = 8
	db := chaosDB(t)
	want := baselines(t, db)

	rng := rand.New(rand.NewSource(20260809))
	faulted := 0
	for i := 0; i < schedules; i++ {
		cfg := randomSchedule(rng)
		spec := cfg.String()
		if err := db.SetFaultSpec(spec); err != nil {
			t.Fatalf("schedule %d %q: SetFaultSpec: %v", i, spec, err)
		}

		var wg sync.WaitGroup
		errc := make(chan error, workers)
		var failures atomic.Int64
		for w := 0; w < workers; w++ {
			qi := rng.Intn(len(chaosQueries))
			wg.Add(1)
			go func(w, qi int) {
				defer wg.Done()
				tag := fmt.Sprintf("schedule %d %q worker %d query %d", i, spec, w, qi)
				lastDone := -1.0
				res, err := db.Exec(chaosQueries[qi], func(r Report) {
					if r.DoneU < lastDone-1e-9 {
						errc <- fmt.Errorf("%s: DoneU regressed %g -> %g", tag, lastDone, r.DoneU)
					}
					lastDone = r.DoneU
				})
				if err != nil {
					failures.Add(1)
					var ioFault *storage.IOFault
					var internal *exec.InternalError
					if !errors.As(err, &ioFault) && !errors.As(err, &internal) {
						errc <- fmt.Errorf("%s: untyped failure: %T %v", tag, err, err)
					}
					return
				}
				if got := fingerprint(res); got != want[qi] {
					errc <- fmt.Errorf("%s: WRONG RESULT %x, want %x", tag, got, want[qi])
				}
			}(w, qi)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Error(err)
		}
		if failures.Load() > 0 {
			faulted++
		}
		if serr := db.SetFaultSpec(""); serr != nil {
			t.Fatalf("schedule %d: clearing fault spec: %v", i, serr)
		}
		if err := db.CheckLeaks(); err != nil {
			t.Fatalf("schedule %d %q: %v", i, spec, err)
		}
	}
	if faulted == 0 {
		t.Fatalf("no schedule out of %d caused a failure under %d workers; the suite is not exercising error paths", schedules, workers)
	}

	// Reusable after the concurrent storms: every query answers
	// correctly, serially, with no injector installed.
	for qi, sql := range chaosQueries {
		res, err := db.Exec(sql, nil)
		if err != nil {
			t.Fatalf("post-chaos rerun %q: %v", sql, err)
		}
		if got := fingerprint(res); got != want[qi] {
			t.Fatalf("post-chaos rerun %q: fingerprint %x, want %x", sql, got, want[qi])
		}
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("post-chaos leak check: %v", err)
	}
	t.Logf("chaos: %d/%d schedules induced failures under %d concurrent workers; engine stayed correct and leak-free",
		faulted, schedules, workers)
}

// TestFaultMatrixSmoke is the CI fast path: 3 seeds × {read-fault,
// write-fault, latency}, each over the spilled join, asserting the same
// error-or-correct / no-leak / reusable invariants (ci.sh runs exactly
// this test; the Makefile chaos target runs the full random suite).
func TestFaultMatrixSmoke(t *testing.T) {
	db := chaosDB(t)
	const joinQ = "select r.k, r.v, s.v from r, s where r.k = s.k"
	base, err := db.Exec(joinQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)

	for seed := int64(1); seed <= 3; seed++ {
		for _, kind := range []string{
			fmt.Sprintf("seed=%d,readerr=0.02,transient=0.5", seed),
			fmt.Sprintf("seed=%d,writeerr=0.02,transient=0.5,target=temp", seed),
			fmt.Sprintf("seed=%d,latency=0.2:0.01", seed),
		} {
			if err := db.SetFaultSpec(kind); err != nil {
				t.Fatal(err)
			}
			res, err := db.Exec(joinQ, nil)
			if serr := db.SetFaultSpec(""); serr != nil {
				t.Fatal(serr)
			}
			if err == nil && fingerprint(res) != want {
				t.Fatalf("spec %q: wrong result", kind)
			}
			if err := db.CheckLeaks(); err != nil {
				t.Fatalf("spec %q: %v", kind, err)
			}
		}
	}
	// Latency-only schedules must never fail the query, only slow it.
	if err := db.SetFaultSpec("seed=9,latency=1:0.01"); err != nil {
		t.Fatal(err)
	}
	slow, err := db.Exec(joinQ, nil)
	if err != nil {
		t.Fatalf("latency-only schedule failed the query: %v", err)
	}
	if fingerprint(slow) != want {
		t.Fatal("latency-only schedule changed the result")
	}
	if st := db.FaultStats(); st.LatencyEvents == 0 {
		t.Fatalf("latency schedule injected nothing: %+v", st)
	}
	if slow.VirtualSeconds <= base.VirtualSeconds {
		t.Fatalf("injected latency did not slow the query: %g <= %g",
			slow.VirtualSeconds, base.VirtualSeconds)
	}
	if err := db.SetFaultSpec(""); err != nil {
		t.Fatal(err)
	}
}

// TestTransientFaultsAbsorbed pins the storage layer's transient-fault
// contract that the fleet coordinator's retry/breaker layer builds on: a
// transient burst shorter than the bufferpool's per-access attempt
// budget (4 tries) is absorbed entirely inside the engine — the query
// succeeds with the correct result, the retry counters move, and the
// caller never sees an error.
func TestTransientFaultsAbsorbed(t *testing.T) {
	db := chaosDB(t)
	const q = "select * from r where v < 50"
	base, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err) // the schedule targets disk reads; drop the warm pool
	}

	// readerr=1 faults every read until the cap: 3 consecutive transient
	// faults on the first access, all inside the 4-attempt budget.
	if err := db.SetFaultSpec("seed=5,readerr=1,transient=1,max=3,target=base"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(q, nil)
	st := db.FaultStats()
	if serr := db.SetFaultSpec(""); serr != nil {
		t.Fatal(serr)
	}
	if err != nil {
		t.Fatalf("transient burst under the attempt budget surfaced: %v", err)
	}
	if fingerprint(res) != want {
		t.Fatal("transient burst changed the result")
	}
	if st.TransientFaults != 3 {
		t.Fatalf("fault stats = %+v, want exactly 3 transient faults", st)
	}
	var retries float64
	for _, sm := range db.Metrics() {
		if sm.Name == "storage_io_retries_total" {
			retries = sm.Value
		}
	}
	if retries < 3 {
		t.Fatalf("storage_io_retries_total = %g, want >= 3", retries)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after absorbed transients: %v", err)
	}
}

// TestInjectedPanicContained: a scheduled panic mid-query surfaces as a
// typed *exec.InternalError, fails only that query, and leaks nothing.
func TestInjectedPanicContained(t *testing.T) {
	db := chaosDB(t)
	if err := db.SetFaultSpec("panicnth=30"); err != nil {
		t.Fatal(err)
	}
	_, err := db.ExecDiscard("select r.k, r.v, s.v from r, s where r.k = s.k", nil)
	var internal *exec.InternalError
	if !errors.As(err, &internal) {
		t.Fatalf("err = %T %v, want *exec.InternalError", err, err)
	}
	if len(internal.Stack) == 0 {
		t.Fatal("internal error carries no stack trace")
	}
	if st := db.FaultStats(); st.Panics != 1 {
		t.Fatalf("fault stats = %+v, want 1 panic", st)
	}
	if err := db.SetFaultSpec(""); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after contained panic: %v", err)
	}
	res, err := db.Exec("select * from r where v < 50", nil)
	if err != nil || res.RowCount() == 0 {
		t.Fatalf("engine unusable after contained panic: %v", err)
	}
}

// TestInjectedPanicInGroupFailsOnlyMember: the group boundary contains
// a member's injected crash; its neighbors complete normally.
func TestInjectedPanicInGroupFailsOnlyMember(t *testing.T) {
	db := chaosDB(t)
	// Target temp files so only the spilling member trips the schedule:
	// the survivor is a pure filter scan that never writes a temp file.
	if err := db.SetFaultSpec("panicnth=5,target=temp"); err != nil {
		t.Fatal(err)
	}
	results, err := db.ExecGroup([]GroupQuery{
		{Name: "survivor", SQL: "select * from r where v < 50", KeepRows: true},
		{Name: "victim", SQL: "select * from r order by pad desc, k"},
	})
	if serr := db.SetFaultSpec(""); serr != nil {
		t.Fatal(serr)
	}
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %T %v, want *GroupError", err, err)
	}
	var internal *exec.InternalError
	if !errors.As(ge.Errs[1], &internal) {
		t.Fatalf("victim err = %v, want *exec.InternalError", ge.Errs[1])
	}
	if ge.Errs[0] != nil || results[0] == nil || results[0].RowCount() == 0 {
		t.Fatalf("survivor harmed: err=%v res=%v", ge.Errs[0], results[0])
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after group panic: %v", err)
	}
}

// TestQueryTimeout: Config.QueryTimeoutSeconds bounds a query by a
// wall-clock deadline surfaced as context.DeadlineExceeded.
func TestQueryTimeout(t *testing.T) {
	db := chaosDB(t)
	db.cfg.QueryTimeoutSeconds = 1e-9 // expires before the first safe point
	_, err := db.Exec("select * from r order by pad desc, k", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after timeout: %v", err)
	}

	db.cfg.QueryTimeoutSeconds = 300 // generous: must not fire
	res, err := db.Exec("select * from r where v < 50", nil)
	if err != nil || res.RowCount() == 0 {
		t.Fatalf("query under generous deadline: %v", err)
	}
}

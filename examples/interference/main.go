// Interference: reproduce the paper's Section 5.3.2/5.6.2 scenarios on
// the paper's own workload — a large "file copy" (4x I/O slowdown)
// starting mid-query, and a CPU hog against the CPU-bound Q5 — and watch
// the remaining-time estimate react.
package main

import (
	"fmt"

	"progressdb"
)

func run(title, kind string, query int, startFrac float64) {
	fmt.Printf("\n===== %s =====\n", title)
	const scale = 0.01
	mk := func() *progressdb.DB {
		db := progressdb.Open(progressdb.Config{
			WorkMemPages: 16,
			SeqPageCost:  0.8e-3 / scale, // calibrate virtual time to full-scale durations
			RandPageCost: 6.4e-3 / scale,
		})
		if err := db.LoadPaperWorkload(scale, false); err != nil {
			panic(err)
		}
		if err := db.ColdRestart(); err != nil {
			panic(err)
		}
		return db
	}
	sql, err := progressdb.PaperQuery(query)
	if err != nil {
		panic(err)
	}

	// Unloaded run to learn the duration.
	base, err := mk().ExecDiscard(sql, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unloaded duration: %.0f virtual seconds\n", base.VirtualSeconds)

	// Loaded run: interference starts startFrac into the query.
	db := mk()
	at := db.Now() + base.VirtualSeconds*startFrac
	if err := db.SetInterference(kind, at, at+base.VirtualSeconds*3, 4); err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "t(s)", "est left(s)", "speed(U/s)", "% done")
	res, err := db.ExecDiscard(sql, func(r progressdb.Report) {
		marker := ""
		if r.ElapsedSeconds >= base.VirtualSeconds*startFrac &&
			r.ElapsedSeconds < base.VirtualSeconds*startFrac+11 {
			marker = fmt.Sprintf("   <- %s interference begins", kind)
		}
		fmt.Printf("%-8.0f %-12.0f %-12.1f %-10.1f%s\n",
			r.ElapsedSeconds, r.RemainingSeconds, r.SpeedU, r.Percent, marker)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded duration: %.0f virtual seconds (%.1fx the unloaded run)\n",
		res.VirtualSeconds, res.VirtualSeconds/base.VirtualSeconds)
}

func main() {
	// The paper's I/O interference test: Q2 with a file copy from 190 s
	// of a 510 s unloaded run (≈ 37% in).
	run("Q2 under I/O interference (paper Section 5.3.2)", "io", 2, 190.0/510)
	// The paper's CPU interference test: Q5 with a CPU-intensive program
	// from 120 s of a 211 s unloaded run (≈ 57% in).
	run("Q5 under CPU interference (paper Section 5.6.2)", "cpu", 5, 120.0/211)
}

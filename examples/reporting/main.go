// Reporting: aggregation and ordering on the paper's workload, with the
// progress indicator covering the extra blocking segments they introduce
// (hash aggregation and the top-level sort) — the paper's "wider classes
// of queries" future-work direction.
package main

import (
	"fmt"

	"progressdb"
)

func main() {
	const scale = 0.01
	db := progressdb.Open(progressdb.Config{
		WorkMemPages: 16,
		SeqPageCost:  0.8e-3 / scale,
		RandPageCost: 6.4e-3 / scale,
	})
	if err := db.LoadPaperWorkload(scale, false); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	sql := `select c.nationkey, count(*), sum(o.totalprice), avg(o.totalprice)
		from customer c, orders o
		where c.custkey = o.custkey
		group by c.nationkey
		order by c.nationkey
		limit 10`

	fmt.Println("EXPLAIN (note the HashAggregate and Sort segments):")
	ex, err := db.Explain(sql)
	if err != nil {
		panic(err)
	}
	fmt.Println(ex)

	res, err := db.Exec(sql, func(r progressdb.Report) {
		fmt.Printf("  %5.1f%% done, segment %d, est %.0fs left\n",
			r.Percent, r.CurrentSegment, r.RemainingSeconds)
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\n%-10s %-8s %-14s %-12s\n", "nationkey", "orders", "sum(price)", "avg(price)")
	for _, row := range res.Rows {
		fmt.Printf("%-10d %-8d %-14.2f %-12.2f\n",
			row[0].(int64), row[1].(int64), row[2].(float64), row[3].(float64))
	}
	fmt.Printf("\n%d groups in %.1f virtual seconds\n", res.RowCount(), res.VirtualSeconds)
}

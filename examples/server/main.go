// Server: bring up progressd in-process, then act as a remote user of
// the paper's Figure 2 interface over the network — submit the paper's
// Q2 and watch its progress bar stream over SSE, submit a second
// long-running query and kill it mid-flight once the indicator says it
// isn't worth the wait (the paper's Section 6 load-management use), and
// finish with the server's admission/cancellation metrics.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/server"
)

func main() {
	const scale = 0.01
	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          16,
		BufferPoolPages:       128, // small pool: repeated scans stay I/O-bound
		ProgressUpdateSeconds: 10,
		// Calibrate virtual time to full-scale durations (see DESIGN.md).
		SeqPageCost:  0.8e-3 / scale,
		RandPageCost: 6.4e-3 / scale,
		Metrics:      true,
	})
	fmt.Printf("loading the paper's Table 1 workload (scale %g) ...\n", scale)
	if err := db.LoadPaperWorkload(scale, false); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	srv := server.New(db, server.Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("progressd listening on %s\n\n", base)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New(base)

	// 1. Submit Q2 and stream its progress bar.
	q2, err := progressdb.PaperQuery(2)
	if err != nil {
		panic(err)
	}
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: q2, Name: "Q2", PaceMS: 60})
	if err != nil {
		panic(err)
	}
	fmt.Printf("submitted %s as %s; streaming %s/queries/%s/progress\n", sub.ID, sub.State, base, sub.ID)
	err = cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		if ev.Terminal() {
			fmt.Printf("  -> %s after %.0f virtual seconds\n\n", ev.State, ev.ElapsedSeconds)
			return nil
		}
		bar := strings.Repeat("#", int(ev.Percent/5))
		fmt.Printf("  [%-20s] %5.1f%%  %4.0fs left  %6.1f U/s  cost %.0f U\n",
			bar, ev.Percent, ev.RemainingSeconds, ev.SpeedU, ev.EstTotalU)
		return nil
	})
	if err != nil {
		panic(err)
	}

	// 2. Submit a long scan, watch two refreshes, then cancel it — the
	// DBA killing a query the indicator says will take too long.
	sub2, err := cl.Submit(ctx, client.SubmitRequest{
		SQL: "select * from lineitem", Name: "big-scan", PaceMS: 60,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("submitted %s (big-scan); canceling after two refreshes\n", sub2.ID)
	seen := 0
	err = cl.Stream(ctx, sub2.ID, func(ev client.ProgressEvent) error {
		if ev.Terminal() {
			fmt.Printf("  -> %s (%s)\n\n", ev.State, ev.Error)
			return nil
		}
		seen++
		fmt.Printf("  %5.1f%% done, %.0fs left\n", ev.Percent, ev.RemainingSeconds)
		if seen == 2 {
			if _, err := cl.Cancel(ctx, sub2.ID); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}

	// 3. Server-level metrics.
	text, err := cl.MetricsText(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("server metrics:")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "server_") {
			fmt.Println(" ", line)
		}
	}
}

// Triggers: the paper's Section 6 "automatic administration" use — fire
// an alert when a query is progressing too slowly ("send an email to the
// user if after a whole day's execution, the query finishes less than 10%
// of the work"). Here the threshold is scaled down: alert if less than
// 50% done after 100 virtual seconds, which an interference spike makes
// happen.
package main

import (
	"fmt"

	"progressdb"
)

func main() {
	const scale = 0.01
	db := progressdb.Open(progressdb.Config{
		WorkMemPages: 16,
		SeqPageCost:  0.8e-3 / scale,
		RandPageCost: 6.4e-3 / scale,
	})
	if err := db.LoadPaperWorkload(scale, false); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	// A heavy I/O load arrives almost immediately and stays.
	if err := db.SetInterference("io", db.Now()+20, db.Now()+1e6, 6); err != nil {
		panic(err)
	}

	sql, err := progressdb.PaperQuery(2)
	if err != nil {
		panic(err)
	}

	// The trigger: condition checked on every progress refresh,
	// fire-once semantics, like the paper's email example.
	const (
		alertAfter = 100.0 // virtual seconds
		alertBelow = 50.0  // percent
	)
	fired := false
	res, err := db.ExecDiscard(sql, func(r progressdb.Report) {
		if !fired && r.ElapsedSeconds >= alertAfter && r.Percent < alertBelow {
			fired = true
			fmt.Printf("ALERT (simulated email): after %.0fs the query is only %.1f%% done "+
				"(estimated %.0fs left) — consider killing or rescheduling it\n",
				r.ElapsedSeconds, r.Percent, r.RemainingSeconds)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("query finished after %.0f virtual seconds; trigger fired: %v\n",
		res.VirtualSeconds, fired)

	// The history kept by the indicator supports the paper's third use,
	// performance tuning: see where the time went.
	fmt.Println("\npost-mortem from the progress history (performance tuning):")
	prev := 0.0
	for _, r := range res.History {
		if r.Finished || r.Percent-prev >= 20 {
			fmt.Printf("  t=%5.0fs  %5.1f%% done  speed %.1f U/s\n", r.ElapsedSeconds, r.Percent, r.SpeedU)
			prev = r.Percent
		}
	}
}

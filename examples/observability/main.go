// Observability: run the paper's Q3 (a TPC-R-style two-join query) with
// the metrics registry and tracer on, then print the EXPLAIN ANALYZE
// plan tree annotated with actuals next to the engine-wide metrics
// snapshot — the Section 6 "performance tuning" use of the indicator's
// bookkeeping.
package main

import (
	"bytes"
	"fmt"
	"strings"

	"progressdb"
)

func main() {
	var events bytes.Buffer
	db := progressdb.Open(progressdb.Config{
		WorkMemPages:          16,
		ProgressUpdateSeconds: 30,
		Metrics:               true,    // engine-wide instrument registry
		TraceSink:             &events, // JSONL progress/segment event log
	})

	fmt.Println("loading the paper's Table 1 workload (scale 0.005) ...")
	if err := db.LoadPaperWorkload(0.005, false); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	sql, err := progressdb.PaperQuery(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nEXPLAIN ANALYZE %s\n\n", strings.Join(strings.Fields(sql), " "))

	res, tree, err := db.ExplainAnalyze(sql)
	if err != nil {
		panic(err)
	}
	fmt.Println(tree)
	fmt.Printf("%d rows in %.1f virtual seconds; trace has %d spans\n",
		res.RowCount(), res.VirtualSeconds, res.Trace.SpanCount())

	fmt.Println("\n--- metrics snapshot (Prometheus text format) ---")
	fmt.Print(db.MetricsText())

	fmt.Println("\n--- first progress events (JSONL) ---")
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	for i, line := range lines {
		if i >= 3 {
			fmt.Printf("... (%d more events)\n", len(lines)-3)
			break
		}
		fmt.Println(line)
	}
}

// Quickstart: create tables, load rows, and run a join with a live
// progress indicator (the paper's Figure 2 display).
package main

import (
	"fmt"
	"strings"

	"progressdb"
)

func main() {
	// Slow the simulated disk down so the query takes long enough to
	// watch (virtual seconds; real execution is milliseconds).
	db := progressdb.Open(progressdb.Config{
		SeqPageCost:           0.01,
		RandPageCost:          0.08,
		ProgressUpdateSeconds: 5,
	})

	db.MustCreateTable("users",
		progressdb.Col("id", progressdb.Int),
		progressdb.Col("name", progressdb.Text),
		progressdb.Col("country", progressdb.Int),
	)
	db.MustCreateTable("events",
		progressdb.Col("user_id", progressdb.Int),
		progressdb.Col("kind", progressdb.Text),
		progressdb.Col("payload", progressdb.Text),
	)

	payload := strings.Repeat("x", 120)
	for i := 0; i < 5000; i++ {
		db.MustInsert("users", int64(i), fmt.Sprintf("user-%04d", i), int64(i%30))
	}
	for i := 0; i < 100000; i++ {
		db.MustInsert("events", int64(i%5000), "click", payload)
	}

	// Collect optimizer statistics (the paper runs the statistics
	// collector before its experiments), then start from a cold cache.
	if err := db.Analyze(); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	sql := `select u.name, e.kind from users u, events e
		where u.id = e.user_id and u.country < 10`
	fmt.Println("EXPLAIN:")
	ex, err := db.Explain(sql)
	if err != nil {
		panic(err)
	}
	fmt.Println(ex)

	res, err := db.ExecDiscard(sql, func(r progressdb.Report) {
		fmt.Println("----------------------------------------")
		fmt.Print(progressdb.FormatReport("join", r))
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("========================================")
	fmt.Printf("finished in %.1f virtual seconds (%d progress refreshes)\n",
		res.VirtualSeconds, len(res.History))
}

// Load management: the paper's Section 6 suggests progress indicators
// can help a DBA pick which queries to block to relieve a loaded system.
// This example runs a pool of the paper's queries CONCURRENTLY (the
// engine's deterministic round-robin scheduler interleaves them on the
// shared virtual clock, so they genuinely contend for I/O), snapshots
// every query's indicator at a "DBA looks at the system" moment, and
// ranks them by estimated remaining time — the blocking candidates.
package main

import (
	"fmt"
	"sort"
	"sync"

	"progressdb"
)

func main() {
	const scale = 0.01
	db := progressdb.Open(progressdb.Config{
		WorkMemPages: 16,
		SeqPageCost:  0.8e-3 / scale,
		RandPageCost: 6.4e-3 / scale,
		// A small pool so concurrent scans contend for cache space too.
		BufferPoolPages: 256,
	})
	if err := db.LoadPaperWorkload(scale, false); err != nil {
		panic(err)
	}
	if err := db.ColdRestart(); err != nil {
		panic(err)
	}

	// The DBA's view: the latest report per query, updated continuously.
	var mu sync.Mutex
	type obs struct {
		latest progressdb.Report
		when   float64
	}
	latest := map[string]*obs{}
	observe := func(name string) func(progressdb.Report) {
		return func(r progressdb.Report) {
			mu.Lock()
			defer mu.Unlock()
			latest[name] = &obs{latest: r, when: r.ElapsedSeconds}
		}
	}

	var pool []progressdb.GroupQuery
	for _, q := range []int{1, 2, 4} {
		sql, err := progressdb.PaperQuery(q)
		if err != nil {
			panic(err)
		}
		name := fmt.Sprintf("Q%d", q)
		pool = append(pool, progressdb.GroupQuery{
			Name:       name,
			SQL:        sql,
			StartAt:    float64(len(pool)) * 20, // queries arrive over time
			OnProgress: observe(name),
		})
	}

	fmt.Printf("running %d paper queries concurrently (arrivals 20s apart) ...\n\n", len(pool))
	results, err := db.ExecGroup(pool)
	if err != nil {
		panic(err)
	}

	fmt.Println("final per-query timings (concurrent, on one virtual clock):")
	for i, r := range results {
		fmt.Printf("  %-4s %7.0f virtual seconds, %d progress refreshes\n",
			pool[i].Name, r.VirtualSeconds, len(r.History))
	}

	// Reconstruct the DBA decision at one mid-run moment: take each
	// query's report nearest half of its own execution.
	fmt.Println("\nDBA view reconstructed from each query's history (mid-execution):")
	type cand struct {
		name string
		rep  progressdb.Report
	}
	var cands []cand
	for i, r := range results {
		for _, rep := range r.History {
			if rep.ElapsedSeconds >= r.VirtualSeconds/2 {
				cands = append(cands, cand{pool[i].Name, rep})
				break
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].rep.RemainingSeconds > cands[j].rep.RemainingSeconds
	})
	fmt.Printf("%-6s %-10s %-16s %-12s\n", "query", "% done", "est left (s)", "speed (U/s)")
	for _, c := range cands {
		fmt.Printf("%-6s %-10.1f %-16.0f %-12.1f\n",
			c.name, c.rep.Percent, c.rep.RemainingSeconds, c.rep.SpeedU)
	}
	if len(cands) > 0 {
		fmt.Printf("\nblocking candidate (longest estimated remaining): %s\n", cands[0].name)
	}
}

package progressdb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"progressdb/internal/exec"
	"progressdb/internal/storage"
)

// This file is the multi-core engine's proof suite, meant to run under
// -race: many goroutines executing mixed queries on one shared DB must
// produce exactly the serial results (multiset equality), every query's
// progress stream must stay monotone, the engine must pass its leak
// checks after the storm, and seeded multi-worker runs must replay
// identical per-query progress trajectories.

// concQueries are the storm's workload shapes over chaosDB's shared r/s
// tables: filter scan, external sort, spilled hash join, hash aggregate,
// and a semijoin — every operator family contending on one engine.
var concQueries = []string{
	"select * from r where v < 50",
	"select * from r order by pad desc, k",
	"select r.k, r.v, s.v from r, s where r.k = s.k",
	"select v, count(*), sum(k) from r group by v order by v",
	"select * from r where exists (select * from s where s.k = r.k)",
}

// TestConcurrentQueryStorm hammers one shared DB from many goroutines
// with every query shape at once and asserts the concurrency contract:
// each result is multiset-equal to its fault-free serial baseline, each
// query's DoneU is monotone with Percent in [0,100], and the engine
// holds no temp files, orphaned pages, or leaked pins afterwards.
func TestConcurrentQueryStorm(t *testing.T) {
	db := chaosDB(t)

	// Serial baselines first: the storm must reproduce exactly these.
	want := make([]uint64, len(concQueries))
	for i, sql := range concQueries {
		res, err := db.Exec(sql, nil)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		if res.RowCount() == 0 {
			t.Fatalf("baseline %q returned no rows", sql)
		}
		want[i] = fingerprint(res)
	}

	const (
		goroutines       = 8
		queriesPerWorker = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*queriesPerWorker)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < queriesPerWorker; j++ {
				qi := (g + j) % len(concQueries)
				lastDone := -1.0
				res, err := db.Exec(concQueries[qi], func(r Report) {
					if r.DoneU < lastDone-1e-9 {
						errc <- fmt.Errorf("worker %d query %d: DoneU regressed %g -> %g", g, qi, lastDone, r.DoneU)
					}
					lastDone = r.DoneU
					if r.Percent < 0 || r.Percent > 100+1e-9 {
						errc <- fmt.Errorf("worker %d query %d: Percent %g outside [0,100]", g, qi, r.Percent)
					}
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d query %d: %v", g, qi, err)
					continue
				}
				if got := fingerprint(res); got != want[qi] {
					errc <- fmt.Errorf("worker %d query %d: WRONG RESULT %x, want %x", g, qi, got, want[qi])
				}
				if len(res.History) == 0 || !res.History[len(res.History)-1].Finished {
					errc <- fmt.Errorf("worker %d query %d: history missing finished report", g, qi)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after storm: %v", err)
	}

	// The engine must still be correct serially after the storm.
	for qi, sql := range concQueries {
		res, err := db.Exec(sql, nil)
		if err != nil {
			t.Fatalf("post-storm rerun %q: %v", sql, err)
		}
		if got := fingerprint(res); got != want[qi] {
			t.Fatalf("post-storm rerun %q: fingerprint %x, want %x", sql, got, want[qi])
		}
	}
}

// TestConcurrentProgressMonotoneUnderContention runs the same long scan
// from several goroutines and checks each stream's full report shape —
// monotone DoneU, Elapsed, and SegmentsDone — while the shared clock
// group is being merged into from every side.
func TestConcurrentProgressMonotoneUnderContention(t *testing.T) {
	db := chaosDB(t)
	const workers = 6
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastDone, lastElapsed, lastSegs := -1.0, -1.0, -1
			_, err := db.Exec("select v, count(*), sum(k) from r group by v order by v", func(r Report) {
				switch {
				case r.DoneU < lastDone-1e-9:
					errc <- fmt.Errorf("worker %d: DoneU %g after %g", w, r.DoneU, lastDone)
				case r.ElapsedSeconds < lastElapsed-1e-9:
					errc <- fmt.Errorf("worker %d: Elapsed %g after %g", w, r.ElapsedSeconds, lastElapsed)
				case r.SegmentsDone < lastSegs:
					errc <- fmt.Errorf("worker %d: SegmentsDone %d after %d", w, r.SegmentsDone, lastSegs)
				}
				lastDone, lastElapsed, lastSegs = r.DoneU, r.ElapsedSeconds, r.SegmentsDone
			})
			if err != nil {
				errc <- fmt.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentGlobalTimeMonotone: DB.Now reads the shared clock group
// while queries run; observed global time must never move backwards.
func TestConcurrentGlobalTimeMonotone(t *testing.T) {
	db := chaosDB(t)
	stop := make(chan struct{})
	var obsErr error
	var owg sync.WaitGroup
	owg.Add(1)
	go func() {
		defer owg.Done()
		last := -1.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			now := db.Now()
			if now < last {
				obsErr = fmt.Errorf("global time regressed %g -> %g", last, now)
				return
			}
			last = now
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sql := concQueries[w%len(concQueries)]
			if _, err := db.ExecDiscard(sql, nil); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	owg.Wait()
	if obsErr != nil {
		t.Fatal(obsErr)
	}
	if now := db.Now(); now <= 0 {
		t.Fatalf("global time did not advance after concurrent queries: %g", now)
	}
}

// deterministicRun builds a fresh engine with per-worker disjoint
// tables, runs `workers` goroutines each executing its own seeded query
// sequence against its own tables, and returns every query's full
// progress history plus its terminal result stats. The buffer pool is
// sized to hold the whole working set so no cross-worker eviction can
// perturb any query's I/O pattern.
func deterministicRun(t *testing.T, workers, rounds int) [][]Result {
	t.Helper()
	db := Open(Config{
		WorkMemPages:          4,
		BufferPoolPages:       4096,
		ProgressUpdateSeconds: 0.1,
		SeqPageCost:           0.02, // stretch virtual time → several refreshes per query
		RandPageCost:          0.16,
		CPUTupleCost:          5e-5, // keep warm-cache rounds long enough to refresh too
	})
	pad := strings.Repeat("z", 60)
	for w := 0; w < workers; w++ {
		tbl := fmt.Sprintf("t%d", w)
		db.MustCreateTable(tbl, Col("k", Int), Col("v", Int), Col("pad", Text))
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < 2000; i++ {
			db.MustInsert(tbl, int64(i), int64(rng.Intn(50)), pad)
		}
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}

	out := make([][]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tbl := fmt.Sprintf("t%d", w)
			queries := []string{
				fmt.Sprintf("select * from %s where v < 25", tbl),
				fmt.Sprintf("select v, count(*), sum(k) from %s group by v order by v", tbl),
				fmt.Sprintf("select * from %s order by pad desc, k", tbl),
			}
			for j := 0; j < rounds; j++ {
				res, err := db.Exec(queries[j%len(queries)], nil)
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, j, err)
					return
				}
				out[w] = append(out[w], *res)
			}
		}(w)
	}
	wg.Wait()
	if err := db.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	return out
}

// nearlyEqual allows the last-ulp float drift in time-derived fields:
// worker clocks start at the merged group time, whose absolute value
// varies with scheduling, and float64 addition is not translation-
// invariant — relative durations computed from different absolute bases
// can differ in the final bits.
func nearlyEqual(x, y float64) bool {
	if x == y {
		return true
	}
	diff := x - y
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if ax := x; ax > scale {
		scale = ax
	}
	return diff <= 1e-9*scale
}

// sameReport compares two reports from replayed runs: the work
// accounting — DoneU, Percent, estimates, segment counters, refinement
// internals — must match bit for bit; elapsed/speed/remaining may drift
// by an ulp (see nearlyEqual).
func sameReport(x, y Report) bool {
	return x.DoneU == y.DoneU &&
		x.Percent == y.Percent &&
		x.EstimatedCostU == y.EstimatedCostU &&
		x.CurrentSegment == y.CurrentSegment &&
		x.SegmentsDone == y.SegmentsDone &&
		x.StepPercent == y.StepPercent &&
		x.CurrentP == y.CurrentP &&
		x.CurrentE1 == y.CurrentE1 &&
		x.CurrentE == y.CurrentE &&
		x.Finished == y.Finished &&
		nearlyEqual(x.ElapsedSeconds, y.ElapsedSeconds) &&
		nearlyEqual(x.SpeedU, y.SpeedU) &&
		nearlyEqual(x.RemainingSeconds, y.RemainingSeconds)
}

// TestConcurrentDeterminism is the seeded-replay regression: two
// identical multi-worker runs must produce, query for query, identical
// per-query DoneU/Percent trajectories and terminal reports. Each
// query's reports are relative to its own worker-clock start, so the
// trajectories replay exactly even though the goroutine interleaving
// does not.
func TestConcurrentDeterminism(t *testing.T) {
	const workers, rounds = 4, 3
	a := deterministicRun(t, workers, rounds)
	b := deterministicRun(t, workers, rounds)
	for w := 0; w < workers; w++ {
		if len(a[w]) != len(b[w]) {
			t.Fatalf("worker %d: %d results vs %d", w, len(a[w]), len(b[w]))
		}
		for j := range a[w] {
			ra, rb := a[w][j], b[w][j]
			if !nearlyEqual(ra.VirtualSeconds, rb.VirtualSeconds) {
				t.Errorf("worker %d round %d: VirtualSeconds %g vs %g", w, j, ra.VirtualSeconds, rb.VirtualSeconds)
			}
			if len(ra.History) != len(rb.History) {
				t.Fatalf("worker %d round %d: %d reports vs %d", w, j, len(ra.History), len(rb.History))
			}
			if len(ra.History) < 2 {
				t.Fatalf("worker %d round %d: only %d progress reports; queries too short to regress anything", w, j, len(ra.History))
			}
			for k := range ra.History {
				if !sameReport(ra.History[k], rb.History[k]) {
					t.Errorf("worker %d round %d report %d:\n  run A: %+v\n  run B: %+v", w, j, k, ra.History[k], rb.History[k])
				}
			}
			term := ra.History[len(ra.History)-1]
			if !term.Finished {
				t.Errorf("worker %d round %d: last report not terminal: %+v", w, j, term)
			}
		}
	}
}

// TestConcurrentCancellation: canceled queries unwinding mid-storm must
// release their scans, pins, and temp files while neighbors finish
// untouched.
func TestConcurrentCancellation(t *testing.T) {
	db := chaosDB(t)
	base, err := db.Exec("select r.k, r.v, s.v from r, s where r.k = s.k", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)

	const workers = 6
	var wg sync.WaitGroup
	canceled := make([]bool, workers)
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Survivor: full join, result must be exact.
				res, err := db.Exec("select r.k, r.v, s.v from r, s where r.k = s.k", nil)
				if err != nil {
					errc <- fmt.Errorf("survivor %d: %v", w, err)
					return
				}
				if fingerprint(res) != want {
					errc <- fmt.Errorf("survivor %d: wrong result", w)
				}
				return
			}
			// Victim: cancel itself after the second progress report.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			reports := 0
			_, err := db.ExecContext(ctx, "select * from r order by pad desc, k", func(Report) {
				if reports++; reports == 2 {
					cancel()
				}
			})
			if err == nil {
				errc <- fmt.Errorf("victim %d: cancellation did not surface", w)
				return
			}
			var ioFault *storage.IOFault
			var internal *exec.InternalError
			if errors.As(err, &ioFault) || errors.As(err, &internal) {
				errc <- fmt.Errorf("victim %d: unexpected failure type %T: %v", w, err, err)
				return
			}
			canceled[w] = true
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	sawCancel := false
	for _, c := range canceled {
		sawCancel = sawCancel || c
	}
	if !sawCancel {
		t.Fatal("no victim actually canceled")
	}
	if err := db.CheckLeaks(); err != nil {
		t.Fatalf("after concurrent cancels: %v", err)
	}
}

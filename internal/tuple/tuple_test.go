package tuple

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{Name: "custkey", Type: Int},
		Column{Name: "name", Type: String},
		Column{Name: "acctbal", Type: Float},
	)
	if s.Arity() != 3 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.ColIndex("NAME") != 1 {
		t.Fatal("ColIndex must be case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Fatal("missing column must return -1")
	}
	p := s.Project([]int{2, 0})
	if p.Cols[0].Name != "acctbal" || p.Cols[1].Name != "custkey" {
		t.Fatalf("projection wrong: %v", p)
	}
	c := s.Concat(p)
	if c.Arity() != 5 {
		t.Fatalf("concat arity = %d", c.Arity())
	}
	if got := s.String(); got != "(custkey INT, name TEXT, acctbal FLOAT)" {
		t.Fatalf("schema string = %q", got)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("abc"), NewString("abc"), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Fatalf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := NewString("x").Compare(NewInt(1)); err == nil {
		t.Fatal("string vs int must be a type error")
	}
	if _, err := NewInt(1).Compare(NewString("x")); err == nil {
		t.Fatal("int vs string must be a type error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Tuple{NewInt(-42), NewFloat(math.Pi), NewString("hello, world"), NewString(""), NewInt(math.MaxInt64)}
	enc := in.Encode(nil)
	if len(enc) != in.EncodedSize() {
		t.Fatalf("EncodedSize = %d, actual = %d", in.EncodedSize(), len(enc))
	}
	out, err := Decode(enc, len(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v != %v", in, out)
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := Tuple{NewInt(1), NewString("abc")}.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut], 2); err == nil {
			t.Fatalf("truncated decode at %d must fail", cut)
		}
	}
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := Decode(bad, 2); err == nil {
		t.Fatal("bad type tag must fail")
	}
}

func TestCloneAndConcat(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := a.Clone()
	b[0] = NewInt(9)
	if a[0].I != 1 {
		t.Fatal("Clone must not alias")
	}
	c := a.Concat(Tuple{NewFloat(2.5)})
	if len(c) != 3 || c[2].F != 2.5 {
		t.Fatalf("concat = %v", c)
	}
}

func TestStringRendering(t *testing.T) {
	tt := Tuple{NewInt(7), NewFloat(1.5), NewString("hi")}
	if got := tt.String(); got != "(7, 1.5, hi)" {
		t.Fatalf("tuple string = %q", got)
	}
	if Int.String() != "INT" || Float.String() != "FLOAT" || String.String() != "TEXT" {
		t.Fatal("type names changed")
	}
}

// Property: encode/decode round-trips arbitrary tuples.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string) bool {
		var in Tuple
		for _, v := range ints {
			in = append(in, NewInt(v))
		}
		for _, v := range floats {
			if math.IsNaN(v) {
				continue // NaN != NaN under DeepEqual; not a storable SQL value here
			}
			in = append(in, NewFloat(v))
		}
		for _, v := range strs {
			in = append(in, NewString(v))
		}
		enc := in.Encode(nil)
		if len(enc) != in.EncodedSize() {
			return false
		}
		out, err := Decode(enc, len(in))
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric on ints.
func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, _ := NewInt(a).Compare(NewInt(b))
		y, _ := NewInt(b).Compare(NewInt(a))
		return x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package tuple defines schemas, typed values, and the record encoding
// used throughout the engine. Average tuple width — the statistic the
// paper's progress indicator tracks at every segment boundary — is defined
// as the encoded size returned by EncodedSize.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type is a column type.
type Type uint8

const (
	// Int is a 64-bit signed integer.
	Int Type = iota
	// Float is a 64-bit float.
	Float
	// String is a variable-length byte string.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "TEXT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Project returns a schema with the given column indexes.
func (s *Schema) Project(idxs []int) *Schema {
	out := &Schema{Cols: make([]Column, len(idxs))}
	for i, ix := range idxs {
		out.Cols[i] = s.Cols[ix]
	}
	return out
}

// Concat returns the concatenation of two schemas (join output).
func (s *Schema) Concat(o *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// String renders the schema as "(a INT, b TEXT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Value is a single typed datum. Exactly one of the fields is meaningful,
// selected by Kind. A struct (rather than an interface) keeps tuples flat
// and allocation-light in the executor's inner loops.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// NewInt returns an Int value.
func NewInt(v int64) Value { return Value{Kind: Int, I: v} }

// NewFloat returns a Float value.
func NewFloat(v float64) Value { return Value{Kind: Float, F: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{Kind: String, S: v} }

// AsFloat converts numeric values to float64 for mixed-type comparison.
func (v Value) AsFloat() float64 {
	if v.Kind == Int {
		return float64(v.I)
	}
	return v.F
}

// Compare orders two values: -1, 0, +1. Numeric kinds compare numerically
// across Int/Float; strings compare lexicographically. Comparing a string
// with a numeric value is a type error.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == String || o.Kind == String {
		if v.Kind != String || o.Kind != String {
			return 0, fmt.Errorf("tuple: cannot compare %s with %s", v.Kind, o.Kind)
		}
		return strings.Compare(v.S, o.S), nil
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1, nil
	case a > b:
		return 1, nil
	default:
		return 0, nil
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case Int:
		return fmt.Sprintf("%d", v.I)
	case Float:
		return fmt.Sprintf("%g", v.F)
	default:
		return v.S
	}
}

// Tuple is a row: one Value per schema column.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of two tuples (join output).
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// EncodedSize returns the number of bytes Encode will produce. This is the
// tuple "size" used for U accounting and for average-width statistics.
func (t Tuple) EncodedSize() int {
	n := 0
	for _, v := range t {
		n += 1 // kind tag
		switch v.Kind {
		case Int, Float:
			n += 8
		case String:
			n += 4 + len(v.S)
		}
	}
	return n
}

// Encode appends the tuple's binary encoding to dst and returns it.
func (t Tuple) Encode(dst []byte) []byte {
	for _, v := range t {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case Int:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			dst = append(dst, b[:]...)
		case Float:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			dst = append(dst, b[:]...)
		case String:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(len(v.S)))
			dst = append(dst, b[:]...)
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// Decode parses a tuple with the given arity from rec.
func Decode(rec []byte, arity int) (Tuple, error) {
	t := make(Tuple, 0, arity)
	off := 0
	for i := 0; i < arity; i++ {
		if off >= len(rec) {
			return nil, fmt.Errorf("tuple: truncated record at field %d", i)
		}
		kind := Type(rec[off])
		off++
		switch kind {
		case Int:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("tuple: truncated int at field %d", i)
			}
			t = append(t, NewInt(int64(binary.LittleEndian.Uint64(rec[off:]))))
			off += 8
		case Float:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("tuple: truncated float at field %d", i)
			}
			t = append(t, NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))))
			off += 8
		case String:
			if off+4 > len(rec) {
				return nil, fmt.Errorf("tuple: truncated string length at field %d", i)
			}
			l := int(binary.LittleEndian.Uint32(rec[off:]))
			off += 4
			if off+l > len(rec) {
				return nil, fmt.Errorf("tuple: truncated string at field %d", i)
			}
			t = append(t, NewString(string(rec[off:off+l])))
			off += l
		default:
			return nil, fmt.Errorf("tuple: bad type tag %d at field %d", kind, i)
		}
	}
	return t, nil
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

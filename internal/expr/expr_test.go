package expr

import (
	"reflect"
	"testing"
	"testing/quick"

	"progressdb/internal/tuple"
)

func row(vals ...tuple.Value) tuple.Tuple { return tuple.Tuple(vals) }

func TestColRefAndConst(t *testing.T) {
	r := row(tuple.NewInt(10), tuple.NewString("abc"))
	v, err := (&ColRef{Index: 1, Name: "s"}).Eval(r)
	if err != nil || v.S != "abc" {
		t.Fatalf("colref: %v %v", v, err)
	}
	if _, err := (&ColRef{Index: 5}).Eval(r); err == nil {
		t.Fatal("out-of-range colref must fail")
	}
	cv, _ := (&Const{V: tuple.NewFloat(2.5)}).Eval(r)
	if cv.F != 2.5 {
		t.Fatal("const eval wrong")
	}
}

func TestCmpAllOps(t *testing.T) {
	r := row(tuple.NewInt(5), tuple.NewInt(7))
	a := &ColRef{Index: 0}
	b := &ColRef{Index: 1}
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{EQ, false}, {NE, true}, {LT, true}, {LE, true}, {GT, false}, {GE, false},
	}
	for _, c := range cases {
		got, err := EvalBool(&Cmp{Op: c.op, L: a, R: b}, r)
		if err != nil || got != c.want {
			t.Fatalf("5 %s 7 = %v, %v; want %v", c.op, got, err, c.want)
		}
	}
	// equal values
	r2 := row(tuple.NewInt(7), tuple.NewInt(7))
	for _, c := range []struct {
		op   CmpOp
		want bool
	}{{EQ, true}, {NE, false}, {LE, true}, {GE, true}, {LT, false}, {GT, false}} {
		got, _ := EvalBool(&Cmp{Op: c.op, L: a, R: b}, r2)
		if got != c.want {
			t.Fatalf("7 %s 7 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestCmpTypeError(t *testing.T) {
	r := row(tuple.NewInt(5), tuple.NewString("x"))
	if _, err := (&Cmp{Op: EQ, L: &ColRef{Index: 0}, R: &ColRef{Index: 1}}).Eval(r); err == nil {
		t.Fatal("int = string must be a type error")
	}
}

func TestAndShortCircuit(t *testing.T) {
	r := row(tuple.NewInt(0))
	boom := &Cmp{Op: EQ, L: &ColRef{Index: 99}, R: &Const{V: tuple.NewInt(1)}}
	e := &And{Terms: []Expr{
		&Cmp{Op: GT, L: &ColRef{Index: 0}, R: &Const{V: tuple.NewInt(5)}}, // false
		boom, // would error if evaluated
	}}
	got, err := EvalBool(e, r)
	if err != nil || got {
		t.Fatalf("short circuit: %v %v", got, err)
	}
}

func TestFuncAbsoluteAndMod(t *testing.T) {
	r := row(tuple.NewInt(-9), tuple.NewFloat(-2.5))
	v, err := (&Func{Name: "absolute", Args: []Expr{&ColRef{Index: 0}}}).Eval(r)
	if err != nil || v.I != 9 {
		t.Fatalf("absolute(int): %v %v", v, err)
	}
	v, err = (&Func{Name: "ABS", Args: []Expr{&ColRef{Index: 1}}}).Eval(r)
	if err != nil || v.F != 2.5 {
		t.Fatalf("abs(float): %v %v", v, err)
	}
	v, err = (&Func{Name: "mod", Args: []Expr{&Const{V: tuple.NewInt(17)}, &Const{V: tuple.NewInt(5)}}}).Eval(nil)
	if err != nil || v.I != 2 {
		t.Fatalf("mod: %v %v", v, err)
	}
	if _, err := (&Func{Name: "mod", Args: []Expr{&Const{V: tuple.NewInt(17)}, &Const{V: tuple.NewInt(0)}}}).Eval(nil); err == nil {
		t.Fatal("mod by zero must fail")
	}
	if _, err := (&Func{Name: "nosuch", Args: nil}).Eval(nil); err == nil {
		t.Fatal("unknown function must fail")
	}
	if _, err := (&Func{Name: "absolute", Args: []Expr{&Const{V: tuple.NewString("x")}}}).Eval(nil); err == nil {
		t.Fatal("absolute of string must fail")
	}
}

func TestConjunctsAndConjoin(t *testing.T) {
	a := &Cmp{Op: EQ, L: &ColRef{Index: 0}, R: &Const{V: tuple.NewInt(1)}}
	b := &Cmp{Op: GT, L: &ColRef{Index: 1}, R: &Const{V: tuple.NewInt(2)}}
	c := &Cmp{Op: LT, L: &ColRef{Index: 2}, R: &Const{V: tuple.NewInt(3)}}
	nested := &And{Terms: []Expr{a, &And{Terms: []Expr{b, c}}}}
	got := Conjuncts(nested)
	if len(got) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil) must be nil")
	}
	if Conjoin(nil) != nil {
		t.Fatal("Conjoin(empty) must be nil")
	}
	if Conjoin([]Expr{a}) != a {
		t.Fatal("Conjoin singleton must be identity")
	}
	if _, ok := Conjoin([]Expr{a, b}).(*And); !ok {
		t.Fatal("Conjoin of two must be And")
	}
}

func TestColumnsUsed(t *testing.T) {
	e := &And{Terms: []Expr{
		&Cmp{Op: EQ, L: &ColRef{Index: 3}, R: &ColRef{Index: 1}},
		&Cmp{Op: GT, L: &Func{Name: "absolute", Args: []Expr{&ColRef{Index: 7}}}, R: &Const{V: tuple.NewInt(0)}},
	}}
	if got := ColumnsUsed(e); !reflect.DeepEqual(got, []int{1, 3, 7}) {
		t.Fatalf("ColumnsUsed = %v", got)
	}
}

func TestContainsFunc(t *testing.T) {
	plain := &Cmp{Op: GT, L: &ColRef{Index: 0}, R: &Const{V: tuple.NewInt(0)}}
	fn := &Cmp{Op: GT, L: &Func{Name: "absolute", Args: []Expr{&ColRef{Index: 0}}}, R: &Const{V: tuple.NewInt(0)}}
	if ContainsFunc(plain) {
		t.Fatal("plain cmp has no func")
	}
	if !ContainsFunc(fn) {
		t.Fatal("function predicate not detected")
	}
	if !ContainsFunc(&And{Terms: []Expr{plain, fn}}) {
		t.Fatal("And containing func not detected")
	}
}

func TestRemap(t *testing.T) {
	e := &And{Terms: []Expr{
		&Cmp{Op: EQ, L: &ColRef{Index: 2, Name: "a"}, R: &Const{V: tuple.NewInt(1)}},
		&Cmp{Op: GT, L: &Func{Name: "abs", Args: []Expr{&ColRef{Index: 4}}}, R: &Const{V: tuple.NewInt(0)}},
	}}
	re, err := Remap(e, map[int]int{2: 0, 4: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnsUsed(re); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("remapped columns = %v", got)
	}
	// Original untouched.
	if got := ColumnsUsed(e); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("original mutated: %v", got)
	}
	if _, err := Remap(e, map[int]int{2: 0}); err == nil {
		t.Fatal("remap with missing column must fail")
	}
}

func TestEquiJoinCols(t *testing.T) {
	if l, r, ok := EquiJoinCols(&Cmp{Op: EQ, L: &ColRef{Index: 1}, R: &ColRef{Index: 5}}); !ok || l != 1 || r != 5 {
		t.Fatalf("equijoin detection failed: %d %d %v", l, r, ok)
	}
	if _, _, ok := EquiJoinCols(&Cmp{Op: NE, L: &ColRef{Index: 1}, R: &ColRef{Index: 5}}); ok {
		t.Fatal("<> is not an equijoin")
	}
	if _, _, ok := EquiJoinCols(&Cmp{Op: EQ, L: &ColRef{Index: 1}, R: &Const{V: tuple.NewInt(3)}}); ok {
		t.Fatal("col=const is not an equijoin")
	}
}

func TestStrings(t *testing.T) {
	e := &And{Terms: []Expr{
		&Cmp{Op: EQ, L: &ColRef{Index: 0, Name: "c.custkey"}, R: &ColRef{Index: 1, Name: "o.custkey"}},
		&Cmp{Op: GT, L: &Func{Name: "absolute", Args: []Expr{&ColRef{Index: 2, Name: "l.partkey"}}}, R: &Const{V: tuple.NewInt(0)}},
	}}
	want := "c.custkey = o.custkey AND absolute(l.partkey) > 0"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e.String(), want)
	}
	if (&Const{V: tuple.NewString("hi")}).String() != "'hi'" {
		t.Fatal("string const quoting")
	}
	if (&ColRef{Index: 3}).String() != "$3" {
		t.Fatal("anonymous colref rendering")
	}
}

// Property: absolute(x) >= 0 and absolute(absolute(x)) == absolute(x).
func TestPropertyAbsolute(t *testing.T) {
	f := func(x int64) bool {
		if x == -1<<63 {
			return true // |minint| overflows in two's complement, as in C
		}
		e := &Func{Name: "absolute", Args: []Expr{&Const{V: tuple.NewInt(x)}}}
		v, err := e.Eval(nil)
		if err != nil || v.I < 0 {
			return false
		}
		vv, err := (&Func{Name: "absolute", Args: []Expr{&Const{V: v}}}).Eval(nil)
		return err == nil && vv.I == v.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Conjoin(Conjuncts(e)) evaluates identically to e.
func TestPropertyConjunctsPreserveSemantics(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) == 0 {
			return true
		}
		r := make(tuple.Tuple, len(vals))
		var terms []Expr
		for i, v := range vals {
			r[i] = tuple.NewInt(int64(v))
			terms = append(terms, &Cmp{Op: GE, L: &ColRef{Index: i}, R: &Const{V: tuple.NewInt(0)}})
		}
		e := Conjoin(terms)
		a, err1 := EvalBool(e, r)
		b, err2 := EvalBool(Conjoin(Conjuncts(e)), r)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package expr implements scalar expressions over tuples: column
// references, constants, comparisons, conjunctions, arithmetic, and
// function calls.
//
// The function-call node matters to the reproduction: the paper's queries
// Q2 and Q4 use predicates like absolute(l.partkey) > 0 precisely because
// PostgreSQL's optimizer cannot estimate the selectivity of a predicate
// over a function result and falls back to a default of 1/3. Our
// selectivity estimator (internal/stats) does the same, which is what
// creates the estimation error the progress indicator must correct.
package expr

import (
	"fmt"
	"math"
	"strings"

	"progressdb/internal/tuple"
)

// CmpOp is a comparison operator.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Expr is a scalar expression evaluated against a row. Boolean results are
// Int values 0/1.
type Expr interface {
	// Eval computes the expression over row.
	Eval(row tuple.Tuple) (tuple.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// ColRef references a column of the input row by position. Name is kept
// for display only.
type ColRef struct {
	Index int
	Name  string
}

// Eval implements Expr.
func (c *ColRef) Eval(row tuple.Tuple) (tuple.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return tuple.Value{}, fmt.Errorf("expr: column index %d out of range (row arity %d)", c.Index, len(row))
	}
	return row[c.Index], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Const is a literal value.
type Const struct {
	V tuple.Value
}

// Eval implements Expr.
func (c *Const) Eval(tuple.Tuple) (tuple.Value, error) { return c.V, nil }

func (c *Const) String() string {
	if c.V.Kind == tuple.String {
		return "'" + c.V.S + "'"
	}
	return c.V.String()
}

// Cmp compares two subexpressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(row tuple.Tuple) (tuple.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return tuple.Value{}, err
	}
	cv, err := l.Compare(r)
	if err != nil {
		return tuple.Value{}, fmt.Errorf("expr: %s: %w", c, err)
	}
	var b bool
	switch c.Op {
	case EQ:
		b = cv == 0
	case NE:
		b = cv != 0
	case LT:
		b = cv < 0
	case LE:
		b = cv <= 0
	case GT:
		b = cv > 0
	case GE:
		b = cv >= 0
	}
	if b {
		return tuple.NewInt(1), nil
	}
	return tuple.NewInt(0), nil
}

func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is a conjunction of one or more terms.
type And struct {
	Terms []Expr
}

// Eval implements Expr; short-circuits on the first false term.
func (a *And) Eval(row tuple.Tuple) (tuple.Value, error) {
	for _, t := range a.Terms {
		v, err := t.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		if !Truthy(v) {
			return tuple.NewInt(0), nil
		}
	}
	return tuple.NewInt(1), nil
}

func (a *And) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " AND ")
}

// Func is a scalar function call. Supported: absolute(x), mod(x, y).
type Func struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (f *Func) Eval(row tuple.Tuple) (tuple.Value, error) {
	args := make([]tuple.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return tuple.Value{}, err
		}
		args[i] = v
	}
	switch strings.ToLower(f.Name) {
	case "absolute", "abs":
		if len(args) != 1 {
			return tuple.Value{}, fmt.Errorf("expr: %s takes 1 argument", f.Name)
		}
		switch args[0].Kind {
		case tuple.Int:
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return tuple.NewInt(v), nil
		case tuple.Float:
			return tuple.NewFloat(math.Abs(args[0].F)), nil
		default:
			return tuple.Value{}, fmt.Errorf("expr: %s of non-numeric value", f.Name)
		}
	case "mod":
		if len(args) != 2 || args[0].Kind != tuple.Int || args[1].Kind != tuple.Int {
			return tuple.Value{}, fmt.Errorf("expr: mod takes 2 int arguments")
		}
		if args[1].I == 0 {
			return tuple.Value{}, fmt.Errorf("expr: mod by zero")
		}
		return tuple.NewInt(args[0].I % args[1].I), nil
	default:
		return tuple.Value{}, fmt.Errorf("expr: unknown function %q", f.Name)
	}
}

func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Truthy reports whether v counts as true (non-zero numeric).
func Truthy(v tuple.Value) bool {
	switch v.Kind {
	case tuple.Int:
		return v.I != 0
	case tuple.Float:
		return v.F != 0
	default:
		return v.S != ""
	}
}

// EvalBool evaluates e and interprets the result as a boolean.
func EvalBool(e Expr, row tuple.Tuple) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return Truthy(v), nil
}

// Conjuncts flattens nested ANDs into a list of terms. A nil expression
// yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		var out []Expr
		for _, t := range a.Terms {
			out = append(out, Conjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

// Conjoin combines terms into a single expression: nil for empty, the term
// itself for one, an And for more.
func Conjoin(terms []Expr) Expr {
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return terms[0]
	default:
		return &And{Terms: terms}
	}
}

// ColumnsUsed returns the sorted set of column indexes referenced by e.
func ColumnsUsed(e Expr) []int {
	set := map[int]bool{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *ColRef:
			set[n.Index] = true
		case *Cmp:
			walk(n.L)
			walk(n.R)
		case *And:
			for _, t := range n.Terms {
				walk(t)
			}
		case *Func:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ContainsFunc reports whether e contains any function call — the
// condition under which the selectivity estimator falls back to its
// default guess, per the paper's PostgreSQL behaviour.
func ContainsFunc(e Expr) bool {
	switch n := e.(type) {
	case *Func:
		return true
	case *Cmp:
		return ContainsFunc(n.L) || ContainsFunc(n.R)
	case *And:
		for _, t := range n.Terms {
			if ContainsFunc(t) {
				return true
			}
		}
	}
	return false
}

// Remap returns a copy of e with every column index i replaced by m[i].
// Indexes absent from m are an error (the caller failed to push the
// predicate to an input that provides all its columns).
func Remap(e Expr, m map[int]int) (Expr, error) {
	switch n := e.(type) {
	case *ColRef:
		ni, ok := m[n.Index]
		if !ok {
			return nil, fmt.Errorf("expr: column %d not available after remap", n.Index)
		}
		return &ColRef{Index: ni, Name: n.Name}, nil
	case *Const:
		return n, nil
	case *Cmp:
		l, err := Remap(n.L, m)
		if err != nil {
			return nil, err
		}
		r, err := Remap(n.R, m)
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: n.Op, L: l, R: r}, nil
	case *And:
		terms := make([]Expr, len(n.Terms))
		for i, t := range n.Terms {
			nt, err := Remap(t, m)
			if err != nil {
				return nil, err
			}
			terms[i] = nt
		}
		return &And{Terms: terms}, nil
	case *Func:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			na, err := Remap(a, m)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &Func{Name: n.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("expr: unknown node %T", e)
	}
}

// EquiJoinCols reports whether e is a simple equality between two bare
// column references, returning their indexes if so. The optimizer uses
// this to recognize hash- and merge-joinable predicates.
func EquiJoinCols(e Expr) (l, r int, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != EQ {
		return 0, 0, false
	}
	lc, lok := c.L.(*ColRef)
	rc, rok := c.R.(*ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	return lc.Index, rc.Index, true
}

// Multi-worker story for the virtual clock.
//
// A Group is the shared time authority for a set of per-worker Clocks.
// Each worker charges its own Clock — single-threaded, deterministic,
// exactly as before — and publishes into the Group at well-defined sync
// points (segment boundaries, report snapshots, query end) via
// Clock.Sync. The Group merges by taking the maximum published time, so
// the group's Now is monotone no matter how workers interleave, and it
// accumulates per-kind work units with lock-free adds. A worker clock
// created with Group.Worker starts at the group's current merged time,
// which makes a strictly sequential run reproduce the exact absolute
// timeline of the old single-clock engine.
package vclock

import (
	"math"
	"sync"
	"sync/atomic"
)

// Group is the shared, concurrency-safe time authority behind a set of
// per-worker Clocks. Its merged time only moves forward (max-merge), and
// unit totals only grow, so readers see monotone values without locks.
type Group struct {
	costs Costs

	// nowBits holds math.Float64bits of the max-merged virtual time.
	// Monotone non-negative float64s compare correctly as uint64 bit
	// patterns, so merge can CAS on the raw bits.
	nowBits atomic.Uint64

	// unitBits accumulates total charged units per WorkKind as float64
	// bit patterns, updated by CAS-add.
	unitBits [3]atomic.Uint64

	mu      sync.Mutex // guards profile
	profile *LoadProfile
}

// NewGroup returns a group at virtual time zero with the given base
// costs and no load profile.
func NewGroup(costs Costs) *Group {
	return &Group{costs: costs}
}

// Costs returns the group's base cost table.
func (g *Group) Costs() Costs { return g.costs }

// Now returns the max-merged virtual time across all workers, as of
// their last Sync. It is monotone non-decreasing.
func (g *Group) Now() float64 {
	return math.Float64frombits(g.nowBits.Load())
}

// UnitsOf returns the total units of the given work kind published by
// all workers so far.
func (g *Group) UnitsOf(kind WorkKind) float64 {
	return math.Float64frombits(g.unitBits[kind].Load())
}

// SetProfile replaces the load profile that new worker clocks start
// with. Workers already running keep the profile they were created
// with; the engine applies profile changes between queries.
func (g *Group) SetProfile(p *LoadProfile) {
	g.mu.Lock()
	g.profile = p
	g.mu.Unlock()
}

// Profile returns the load profile new workers start with.
func (g *Group) Profile() *LoadProfile {
	g.mu.Lock()
	p := g.profile
	g.mu.Unlock()
	return p
}

// Worker returns a new per-worker Clock bound to the group. The clock
// starts at the group's current merged time and carries the group's
// profile; it is single-threaded like any Clock, and publishes into the
// group on Sync.
func (g *Group) Worker() *Clock {
	c := New(g.costs, g.Profile())
	c.now = g.Now()
	c.group = g
	return c
}

// merge advances the group time to t if t is ahead (CAS max-merge).
func (g *Group) merge(t float64) {
	for {
		old := g.nowBits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if g.nowBits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// addUnits adds d units of kind to the group totals (CAS add).
func (g *Group) addUnits(kind WorkKind, d float64) {
	if d <= 0 {
		return
	}
	a := &g.unitBits[kind]
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

package vclock

import (
	"sync"
	"testing"
)

// A strictly sequential run over group workers must reproduce the old
// single-clock absolute timeline: each worker starts where the merged
// time left off.
func TestGroupSequentialMatchesSingleClock(t *testing.T) {
	costs := DefaultCosts()
	single := New(costs, nil)
	g := NewGroup(costs)

	for i := 0; i < 3; i++ {
		w := g.Worker()
		if got, want := w.Now(), single.Now(); got != want {
			t.Fatalf("worker %d starts at %g, single clock at %g", i, got, want)
		}
		w.ChargeSeqIO(100)
		w.ChargeCPU(5000)
		w.ChargeRandIO(7)
		w.Sync()
		single.ChargeSeqIO(100)
		single.ChargeCPU(5000)
		single.ChargeRandIO(7)
	}
	if got, want := g.Now(), single.Now(); got != want {
		t.Fatalf("group now %g, single clock %g", got, want)
	}
	for _, k := range []WorkKind{SeqIO, RandIO, CPU} {
		if got, want := g.UnitsOf(k), single.UnitsOf(k); got != want {
			t.Fatalf("group units[%v] %g, single clock %g", k, got, want)
		}
	}
}

// Group.Now is monotone and unit totals are exact under concurrent
// workers syncing at arbitrary interleavings.
func TestGroupConcurrentMergeMonotone(t *testing.T) {
	const workers = 8
	const charges = 200
	g := NewGroup(DefaultCosts())

	stop := make(chan struct{})
	var monoWG sync.WaitGroup
	monoWG.Add(1)
	go func() {
		defer monoWG.Done()
		prev := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			now := g.Now()
			if now < prev {
				t.Errorf("group time went backwards: %g -> %g", prev, now)
				return
			}
			prev = now
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := g.Worker()
			for j := 0; j < charges; j++ {
				w.ChargeSeqIO(3)
				w.ChargeCPU(10)
				if j%7 == 0 {
					w.Sync()
				}
			}
			w.Sync()
		}()
	}
	wg.Wait()
	close(stop)
	monoWG.Wait()

	if got, want := g.UnitsOf(SeqIO), float64(workers*charges*3); got != want {
		t.Fatalf("seq-io units %g, want %g", got, want)
	}
	if got, want := g.UnitsOf(CPU), float64(workers*charges*10); got != want {
		t.Fatalf("cpu units %g, want %g", got, want)
	}
	// Merged time is at least one worker's full run (all started at 0).
	w := New(DefaultCosts(), nil)
	w.ChargeSeqIO(charges * 3)
	w.ChargeCPU(charges * 10)
	if g.Now() < w.Now() {
		t.Fatalf("group now %g below a single worker's total %g", g.Now(), w.Now())
	}
}

// Sync is idempotent for units: repeated syncs with no new charges add
// nothing.
func TestGroupSyncDelta(t *testing.T) {
	g := NewGroup(DefaultCosts())
	w := g.Worker()
	w.ChargeSeqIO(10)
	w.Sync()
	w.Sync()
	w.Sync()
	if got := g.UnitsOf(SeqIO); got != 10 {
		t.Fatalf("seq-io units %g after repeated syncs, want 10", got)
	}
	w.ChargeSeqIO(5)
	w.Sync()
	if got := g.UnitsOf(SeqIO); got != 15 {
		t.Fatalf("seq-io units %g, want 15", got)
	}
}

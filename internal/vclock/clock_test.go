package vclock

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// mustProfile builds a LoadProfile from static literals, failing the
// test on error (the library itself no longer has a panicking variant).
func mustProfile(t *testing.T, intervals ...Interval) *LoadProfile {
	t.Helper()
	p, err := NewLoadProfile(intervals...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnloadedAdvance(t *testing.T) {
	c := New(Costs{SeqPage: 0.01, RandPage: 0.05, CPUTuple: 1e-4}, nil)
	c.ChargeSeqIO(100)
	if !almost(c.Now(), 1.0) {
		t.Fatalf("after 100 seq pages: now = %g, want 1.0", c.Now())
	}
	c.ChargeRandIO(10)
	if !almost(c.Now(), 1.5) {
		t.Fatalf("after 10 rand pages: now = %g, want 1.5", c.Now())
	}
	c.ChargeCPU(1000)
	if !almost(c.Now(), 1.6) {
		t.Fatalf("after 1000 cpu units: now = %g, want 1.6", c.Now())
	}
	if c.UnitsOf(SeqIO) != 100 || c.UnitsOf(RandIO) != 10 || c.UnitsOf(CPU) != 1000 {
		t.Fatalf("unit accounting wrong: %v %v %v", c.UnitsOf(SeqIO), c.UnitsOf(RandIO), c.UnitsOf(CPU))
	}
}

func TestChargeZeroOrNegative(t *testing.T) {
	c := New(DefaultCosts(), nil)
	c.Charge(SeqIO, 0)
	c.Charge(CPU, -5)
	if c.Now() != 0 {
		t.Fatalf("zero/negative charges must not advance time; now = %g", c.Now())
	}
}

func TestLoadProfileValidation(t *testing.T) {
	if _, err := NewLoadProfile(Interval{Start: 5, End: 5, IOFactor: 2}); err == nil {
		t.Fatal("empty interval must be rejected")
	}
	if _, err := NewLoadProfile(
		Interval{Start: 0, End: 10, IOFactor: 2},
		Interval{Start: 5, End: 15, IOFactor: 2},
	); err == nil {
		t.Fatal("overlapping intervals must be rejected")
	}
	if _, err := NewLoadProfile(
		Interval{Start: 10, End: 20, IOFactor: 2},
		Interval{Start: 0, End: 5, CPUFactor: 3},
	); err != nil {
		t.Fatalf("disjoint intervals in any order must be accepted: %v", err)
	}
}

func TestInterferenceSlowdown(t *testing.T) {
	// I/O is 4x slower between t=1 and t=3.
	p := mustProfile(t, Interval{Start: 1, End: 3, IOFactor: 4})
	c := New(Costs{SeqPage: 0.01, RandPage: 0.01, CPUTuple: 0.01}, p)

	// 100 pages of base work = 1.0s fits exactly before the interval.
	c.ChargeSeqIO(100)
	if !almost(c.Now(), 1.0) {
		t.Fatalf("pre-interval: now = %g, want 1.0", c.Now())
	}
	// 25 pages = 0.25s base takes 1.0s under 4x slowdown.
	c.ChargeSeqIO(25)
	if !almost(c.Now(), 2.0) {
		t.Fatalf("mid-interval: now = %g, want 2.0", c.Now())
	}
	// CPU is unaffected by IOFactor.
	c.ChargeCPU(10) // 0.1s base
	if !almost(c.Now(), 2.1) {
		t.Fatalf("cpu during io-interference: now = %g, want 2.1", c.Now())
	}
	// 100 pages base = 1.0s: 0.9s of wall time remains in the interval,
	// consuming 0.225s of work; remaining 0.775s runs unloaded after t=3.
	c.ChargeSeqIO(100)
	if !almost(c.Now(), 3.775) {
		t.Fatalf("straddling boundary: now = %g, want 3.775", c.Now())
	}
}

func TestCPUInterference(t *testing.T) {
	p := mustProfile(t, Interval{Start: 0, End: 10, CPUFactor: 2})
	c := New(Costs{SeqPage: 0.01, RandPage: 0.01, CPUTuple: 0.01}, p)
	c.ChargeCPU(100) // 1s base -> 2s loaded
	if !almost(c.Now(), 2.0) {
		t.Fatalf("cpu slowdown: now = %g, want 2.0", c.Now())
	}
	c.ChargeSeqIO(100) // io unaffected by CPUFactor
	if !almost(c.Now(), 3.0) {
		t.Fatalf("io during cpu-interference: now = %g, want 3.0", c.Now())
	}
}

func TestStraddleSplitEquivalence(t *testing.T) {
	// Advancing in one big charge must land at the same time as many
	// small charges — the piecewise integration invariant.
	p := mustProfile(t,
		Interval{Start: 0.5, End: 1.5, IOFactor: 3},
		Interval{Start: 2.0, End: 4.0, IOFactor: 7},
	)
	one := New(Costs{SeqPage: 0.001, RandPage: 0.001, CPUTuple: 0.001}, p)
	one.ChargeSeqIO(3000)

	many := New(Costs{SeqPage: 0.001, RandPage: 0.001, CPUTuple: 0.001}, p)
	for i := 0; i < 3000; i++ {
		many.ChargeSeqIO(1)
	}
	if math.Abs(one.Now()-many.Now()) > 1e-6 {
		t.Fatalf("one big charge = %g, 3000 small charges = %g", one.Now(), many.Now())
	}
}

func TestTickers(t *testing.T) {
	c := New(Costs{SeqPage: 0.1, RandPage: 0.1, CPUTuple: 0.1}, nil)
	var fires []float64
	c.AddTicker(1.0, func(now float64) { fires = append(fires, now) })
	c.ChargeSeqIO(35) // 3.5s
	want := []float64{1, 2, 3}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if !almost(fires[i], want[i]) {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
	// The callback observes the nominal tick time as Now().
	c.AddTicker(0.25, func(now float64) {
		if !almost(c.Now(), now) {
			t.Errorf("callback: Now() = %g, nominal = %g", c.Now(), now)
		}
	})
	c.ChargeSeqIO(10)
}

func TestTwoTickersFireInOrder(t *testing.T) {
	c := New(Costs{SeqPage: 0.1, RandPage: 0.1, CPUTuple: 0.1}, nil)
	var order []float64
	c.AddTicker(1.0, func(now float64) { order = append(order, now) })
	c.AddTicker(0.7, func(now float64) { order = append(order, now) })
	c.ChargeSeqIO(30) // 3.0s
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("ticks out of order: %v", order)
		}
	}
	if len(order) != 7 { // 0.7,1.0,1.4,2.0,2.1,2.8,3.0
		t.Fatalf("got %d ticks (%v), want 7", len(order), order)
	}
}

func TestRemoveTicker(t *testing.T) {
	c := New(Costs{SeqPage: 0.1, RandPage: 0.1, CPUTuple: 0.1}, nil)
	n := 0
	tk := c.AddTicker(1.0, func(float64) { n++ })
	c.ChargeSeqIO(15)
	c.RemoveTicker(tk)
	c.ChargeSeqIO(50)
	if n != 1 {
		t.Fatalf("ticker fired %d times, want 1 (removed after first window)", n)
	}
}

func TestIdle(t *testing.T) {
	c := New(DefaultCosts(), nil)
	fired := 0
	c.AddTicker(1.0, func(float64) { fired++ })
	c.Idle(2.5)
	if !almost(c.Now(), 2.5) || fired != 2 {
		t.Fatalf("idle: now = %g fired = %d, want 2.5 / 2", c.Now(), fired)
	}
	c.Idle(-1)
	if !almost(c.Now(), 2.5) {
		t.Fatal("negative idle must be a no-op")
	}
}

// Property: total elapsed time under any single-interval profile equals
// base work time multiplied by the factor, restricted to work inside the
// interval, i.e. time never decreases and loaded time >= unloaded time.
func TestPropertyLoadedNeverFaster(t *testing.T) {
	f := func(workUnits uint16, factor8 uint8, start8, span8 uint8) bool {
		work := float64(workUnits%2000) + 1
		factor := 1 + float64(factor8%10)
		start := float64(start8 % 50)
		span := float64(span8%50) + 1
		p := mustProfile(t, Interval{Start: start, End: start + span, IOFactor: factor})
		loaded := New(Costs{SeqPage: 0.01, RandPage: 0.01, CPUTuple: 0.01}, p)
		unloaded := New(Costs{SeqPage: 0.01, RandPage: 0.01, CPUTuple: 0.01}, nil)
		loaded.Charge(SeqIO, work)
		unloaded.Charge(SeqIO, work)
		if loaded.Now() < unloaded.Now()-1e-9 {
			return false
		}
		// Upper bound: the whole job stretched by the max factor.
		return loaded.Now() <= unloaded.Now()*factor+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ticker fire count equals floor(elapsed/period) regardless of
// charge granularity.
func TestPropertyTickerCount(t *testing.T) {
	f := func(chunks []uint8, period8 uint8) bool {
		period := 0.1 + float64(period8%20)/10
		c := New(Costs{SeqPage: 0.01, RandPage: 0.01, CPUTuple: 0.01}, nil)
		n := 0
		c.AddTicker(period, func(float64) { n++ })
		for _, ch := range chunks {
			c.Charge(SeqIO, float64(ch))
		}
		want := int(c.Now() / period)
		// Floating point at exact boundaries may defer a tick; allow 1.
		return n == want || n == want+1 || n == want-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkKindString(t *testing.T) {
	if SeqIO.String() != "seq-io" || RandIO.String() != "rand-io" || CPU.String() != "cpu" {
		t.Fatal("WorkKind.String values changed")
	}
	if WorkKind(9).String() != "WorkKind(9)" {
		t.Fatal("unknown WorkKind formatting changed")
	}
}

// Package vclock provides a deterministic virtual clock for the simulated
// database engine.
//
// All "time" in this repository is virtual: operators charge the clock for
// page I/Os and per-tuple CPU work, and the clock advances by the cost of
// that work under the currently active load profile. This design replaces
// the paper's wall-clock measurements on a 2004-era Dell Inspiron with a
// reproducible simulation whose rates are calibrated so that the figures'
// time axes are comparable to the paper's.
//
// Load interference (the paper's concurrent file copy and CPU-intensive
// program) is modeled as piecewise-constant rate multipliers: during an
// interference interval each unit of I/O or CPU work takes a constant
// factor longer. Work that straddles an interval boundary is integrated
// piecewise, so a single large Advance behaves identically to many small
// ones.
package vclock

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// WorkKind classifies chargeable work so load profiles can slow I/O and CPU
// independently.
type WorkKind int

const (
	// SeqIO is a sequential page read or write.
	SeqIO WorkKind = iota
	// RandIO is a random page read or write.
	RandIO
	// CPU is tuple-processing work (predicate evaluation, hashing,
	// comparison, copying).
	CPU
)

// String returns a human-readable name for the work kind.
func (k WorkKind) String() string {
	switch k {
	case SeqIO:
		return "seq-io"
	case RandIO:
		return "rand-io"
	case CPU:
		return "cpu"
	default:
		return fmt.Sprintf("WorkKind(%d)", int(k))
	}
}

// Costs holds the base cost, in virtual seconds, of one unit of each work
// kind on an unloaded system. The defaults are calibrated so that the
// default experiment scale reproduces time axes comparable to the paper's
// figures (sequential scan of lineitem ≈ 100 virtual seconds).
type Costs struct {
	// SeqPage is the cost of one sequential page I/O.
	SeqPage float64
	// RandPage is the cost of one random page I/O.
	RandPage float64
	// CPUTuple is the cost of processing one tuple through one operator.
	CPUTuple float64
}

// DefaultCosts returns the calibrated base costs used by the experiment
// harness. One sequential 8 KiB page per ~0.8 ms gives ≈ 9.8 MB/s, close to
// the paper's IDE-disk scan rate; random I/O is ~8x more expensive; CPU
// work is cheap relative to I/O so that only the cross-product query Q5 is
// CPU-bound, as in the paper.
func DefaultCosts() Costs {
	return Costs{
		SeqPage:  0.8e-3,
		RandPage: 6.4e-3,
		CPUTuple: 2.0e-6,
	}
}

// Interval is one piece of a load profile: between Start (inclusive) and
// End (exclusive), each unit of the affected work kinds takes Factor times
// longer than on an unloaded system.
type Interval struct {
	Start, End float64
	// IOFactor slows SeqIO and RandIO; 1 means unloaded.
	IOFactor float64
	// CPUFactor slows CPU work; 1 means unloaded.
	CPUFactor float64
}

func (iv Interval) factor(kind WorkKind) float64 {
	switch kind {
	case CPU:
		if iv.CPUFactor > 0 {
			return iv.CPUFactor
		}
	default:
		if iv.IOFactor > 0 {
			return iv.IOFactor
		}
	}
	return 1
}

// LoadProfile is a set of non-overlapping interference intervals. The zero
// value is an unloaded system.
type LoadProfile struct {
	intervals []Interval
}

// NewLoadProfile builds a profile from the given intervals, sorted by start
// time. Intervals must not overlap.
func NewLoadProfile(intervals ...Interval) (*LoadProfile, error) {
	sorted := make([]Interval, len(intervals))
	copy(sorted, intervals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, iv := range sorted {
		if iv.End <= iv.Start {
			return nil, fmt.Errorf("vclock: interval %d has End %g <= Start %g", i, iv.End, iv.Start)
		}
		if i > 0 && iv.Start < sorted[i-1].End {
			return nil, fmt.Errorf("vclock: interval %d overlaps previous", i)
		}
	}
	return &LoadProfile{intervals: sorted}, nil
}

// factorAt returns the slowdown factor for kind at time t and the time at
// which that factor next changes (math.Inf(1) if it never does).
func (p *LoadProfile) factorAt(t float64, kind WorkKind) (factor, until float64) {
	if p == nil {
		return 1, math.Inf(1)
	}
	for _, iv := range p.intervals {
		if t < iv.Start {
			return 1, iv.Start
		}
		if t < iv.End {
			return iv.factor(kind), iv.End
		}
	}
	return 1, math.Inf(1)
}

// Ticker is a callback registered with a Clock that fires at a fixed
// virtual period. Fires happen synchronously inside Advance, in tick-time
// order, with the tick's nominal time (an exact multiple of the period plus
// the registration time).
type Ticker struct {
	period float64
	next   float64
	fn     func(now float64)
}

// Clock is a deterministic virtual clock. It is not safe for concurrent
// use; the engine is single-threaded by design (as was the paper's
// per-query execution).
type Clock struct {
	now     float64
	costs   Costs
	profile *LoadProfile
	tickers []*Ticker

	// Work accounting, by kind, in units (pages or tuples).
	units [3]float64

	// group, when non-nil, is the shared time authority this clock
	// publishes into on Sync; synced tracks the units already published
	// so Sync only pushes the delta. syncMu serializes concurrent Sync
	// calls (DB.Now and query starts may sync the engine's base clock
	// from several goroutines; charging stays single-owner by contract).
	group  *Group
	syncMu sync.Mutex // guards synced
	synced [3]float64
}

// New returns a clock at virtual time zero with the given base costs and
// load profile. A nil profile means an unloaded system.
func New(costs Costs, profile *LoadProfile) *Clock {
	return &Clock{costs: costs, profile: profile}
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// SetProfile replaces the load profile from the current time onward
// (used to start interference relative to a query's start time).
func (c *Clock) SetProfile(p *LoadProfile) { c.profile = p }

// Costs returns the clock's base cost table.
func (c *Clock) Costs() Costs { return c.costs }

// UnitsOf returns the total units of the given work kind charged so far.
func (c *Clock) UnitsOf(kind WorkKind) float64 { return c.units[kind] }

// AddTicker registers fn to fire every period virtual seconds, starting one
// period from now. It returns the ticker so it can be removed.
func (c *Clock) AddTicker(period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		//lint:ignore errwrap sanctioned: a non-positive period would spin the virtual clock forever; programmer error at wiring time
		panic("vclock: non-positive ticker period")
	}
	t := &Ticker{period: period, next: c.now + period, fn: fn}
	c.tickers = append(c.tickers, t)
	return t
}

// RemoveTicker unregisters t.
func (c *Clock) RemoveTicker(t *Ticker) {
	for i, x := range c.tickers {
		if x == t {
			c.tickers = append(c.tickers[:i], c.tickers[i+1:]...)
			return
		}
	}
}

// Charge advances the clock by the cost of n units of the given work kind,
// integrating the cost piecewise across load-profile boundaries and firing
// any tickers whose nominal fire times are crossed.
func (c *Clock) Charge(kind WorkKind, n float64) {
	if n <= 0 {
		return
	}
	c.units[kind] += n
	base := n * c.unitCost(kind)
	c.advance(base, kind)
}

// ChargeSeqIO charges pages sequential page I/Os.
func (c *Clock) ChargeSeqIO(pages int) { c.Charge(SeqIO, float64(pages)) }

// ChargeRandIO charges pages random page I/Os.
func (c *Clock) ChargeRandIO(pages int) { c.Charge(RandIO, float64(pages)) }

// ChargeCPU charges n tuple-units of CPU work.
func (c *Clock) ChargeCPU(n float64) { c.Charge(CPU, n) }

// Sync publishes this clock's progress into its Group: the group time
// max-merges with the clock's now, and unit totals accumulate the delta
// since the previous Sync. A no-op for clocks without a group. Sync is
// called from the owning worker only; the group side is concurrency-
// safe.
func (c *Clock) Sync() {
	if c.group == nil {
		return
	}
	c.syncMu.Lock()
	c.group.merge(c.now)
	for k := range c.units {
		if d := c.units[k] - c.synced[k]; d > 0 {
			c.group.addUnits(WorkKind(k), d)
			c.synced[k] = c.units[k]
		}
	}
	c.syncMu.Unlock()
}

// Idle advances the clock by d virtual seconds without charging work (used
// to model think time between queries).
func (c *Clock) Idle(d float64) {
	if d <= 0 {
		return
	}
	c.moveTo(c.now + d)
}

func (c *Clock) unitCost(kind WorkKind) float64 {
	switch kind {
	case SeqIO:
		return c.costs.SeqPage
	case RandIO:
		return c.costs.RandPage
	default:
		return c.costs.CPUTuple
	}
}

// advance consumes base seconds of unloaded-system work of the given kind,
// stretching it by the active load factors.
func (c *Clock) advance(base float64, kind WorkKind) {
	remaining := base
	for remaining > 0 {
		factor, until := c.profile.factorAt(c.now, kind)
		span := until - c.now
		consumable := span / factor // unloaded-seconds of work that fit before the boundary
		if consumable >= remaining || math.IsInf(span, 1) {
			c.moveTo(c.now + remaining*factor)
			return
		}
		remaining -= consumable
		c.moveTo(until)
	}
}

// moveTo sets the clock to t (monotonically) and fires crossed ticks in
// global time order.
func (c *Clock) moveTo(t float64) {
	for {
		// Find the earliest pending tick at or before t.
		var earliest *Ticker
		for _, tk := range c.tickers {
			if tk.next <= t && (earliest == nil || tk.next < earliest.next) {
				earliest = tk
			}
		}
		if earliest == nil {
			break
		}
		c.now = earliest.next
		earliest.next += earliest.period
		earliest.fn(c.now)
	}
	if t > c.now {
		c.now = t
	}
}

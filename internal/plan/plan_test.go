package plan

import (
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/expr"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func testTable(t *testing.T, name string, cols ...tuple.Column) *catalog.Table {
	t.Helper()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 64))
	tb, err := cat.CreateTable(name, tuple.NewSchema(cols...))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestEstBytes(t *testing.T) {
	e := Est{Card: 100, Width: 25}
	if e.Bytes() != 2500 {
		t.Fatalf("Bytes = %g", e.Bytes())
	}
}

func TestScanNodes(t *testing.T) {
	tb := testTable(t, "customer",
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "name", Type: tuple.String})
	s := &SeqScan{Table: tb, Alias: "c", OutEst: Est{Card: 10, Width: 20}}
	if s.Schema().Arity() != 2 || len(s.Children()) != 0 {
		t.Fatal("seqscan shape")
	}
	if s.Est().Card != 10 {
		t.Fatal("est")
	}
	if got := s.Label(); got != "SeqScan customer c" {
		t.Fatalf("label = %q", got)
	}
	// Alias equal to table name is elided.
	s2 := &SeqScan{Table: tb, Alias: "customer"}
	if got := s2.Label(); got != "SeqScan customer" {
		t.Fatalf("label = %q", got)
	}

	lo, hi := int64(5), int64(10)
	ix := &IndexScan{
		Table: tb, Alias: "c",
		Index: &catalog.Index{Name: "customer_custkey_idx", Column: "custkey"},
		Lo:    &lo, Hi: &hi, Sel: 0.1,
	}
	lbl := ix.Label()
	if !strings.Contains(lbl, "custkey >= 5") || !strings.Contains(lbl, "custkey <= 10") {
		t.Fatalf("index label = %q", lbl)
	}
}

func TestOperatorLabelsAndShapes(t *testing.T) {
	tb := testTable(t, "t",
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "b", Type: tuple.Int})
	scan := &SeqScan{Table: tb, Alias: "t"}
	pred := &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Index: 0, Name: "a"}, R: &expr.Const{V: tuple.NewInt(0)}}
	f := &Filter{Child: scan, Pred: pred, Sel: 0.5}
	if len(f.Children()) != 1 || f.Schema() != scan.Schema() {
		t.Fatal("filter shape")
	}
	if !strings.Contains(f.Label(), "a > 0") {
		t.Fatalf("filter label = %q", f.Label())
	}

	proj := &Project{
		Child: f, Cols: []int{1},
		Sch: tuple.NewSchema(tuple.Column{Name: "b", Type: tuple.Int}),
	}
	if proj.Schema().Arity() != 1 || !strings.Contains(proj.Label(), "b") {
		t.Fatalf("project: %q", proj.Label())
	}

	hj := &HashJoin{
		Build: scan, Probe: scan, BuildKey: 0, ProbeKey: 1,
		Sch: scan.Schema().Concat(scan.Schema()),
	}
	if !strings.Contains(hj.Label(), "HashJoin (build.a = probe.b)") {
		t.Fatalf("hash label = %q", hj.Label())
	}
	hj.Grace = true
	if !strings.Contains(hj.Label(), "GraceHashJoin") {
		t.Fatalf("grace label = %q", hj.Label())
	}
	hj.ExtraPred = pred
	if !strings.Contains(hj.Label(), "AND") {
		t.Fatalf("extra-pred label = %q", hj.Label())
	}

	nl := &NLJoin{Outer: scan, Inner: scan, Sch: hj.Sch}
	if nl.Label() != "NestedLoopJoin (cross)" {
		t.Fatalf("cross label = %q", nl.Label())
	}
	nl.Pred = pred
	if !strings.Contains(nl.Label(), "a > 0") {
		t.Fatalf("nl label = %q", nl.Label())
	}

	srt := &Sort{Child: scan, Keys: []SortKey{{Col: 0}, {Col: 1, Desc: true}}}
	if !strings.Contains(srt.Label(), "a") || !strings.Contains(srt.Label(), "b DESC") {
		t.Fatalf("sort label = %q", srt.Label())
	}
	if len(srt.Children()) != 1 {
		t.Fatal("sort children")
	}

	mj := &MergeJoin{Left: scan, Right: scan, LeftKey: 0, RightKey: 1, Sch: hj.Sch}
	if !strings.Contains(mj.Label(), "MergeJoin (left.a = right.b)") {
		t.Fatalf("merge label = %q", mj.Label())
	}

	mat := &Materialize{Child: scan}
	if mat.Label() != "Materialize" || mat.Schema() != scan.Schema() {
		t.Fatal("materialize")
	}

	part := &Partition{Child: scan, Key: 1}
	if !strings.Contains(part.Label(), "HashPartition (b)") {
		t.Fatalf("partition label = %q", part.Label())
	}
}

func TestIsBlocking(t *testing.T) {
	tb := testTable(t, "t", tuple.Column{Name: "a", Type: tuple.Int})
	scan := &SeqScan{Table: tb}
	blocking := []Node{
		&Sort{Child: scan},
		&Materialize{Child: scan},
		&Partition{Child: scan},
	}
	for _, n := range blocking {
		if !IsBlocking(n) {
			t.Fatalf("%T must be blocking", n)
		}
	}
	streaming := []Node{
		scan,
		&Filter{Child: scan},
		&Project{Child: scan, Sch: scan.Schema()},
		&HashJoin{Build: scan, Probe: scan, Sch: scan.Schema()},
		&NLJoin{Outer: scan, Inner: scan, Sch: scan.Schema()},
		&MergeJoin{Left: scan, Right: scan, Sch: scan.Schema()},
	}
	for _, n := range streaming {
		if IsBlocking(n) {
			t.Fatalf("%T must not be blocking", n)
		}
	}
}

func TestFormatTree(t *testing.T) {
	tb := testTable(t, "t", tuple.Column{Name: "a", Type: tuple.Int})
	scan := &SeqScan{Table: tb, OutEst: Est{Card: 42, Width: 9}}
	f := &Filter{Child: scan, Pred: &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Index: 0, Name: "a"}, R: &expr.Const{V: tuple.NewInt(1)}}, OutEst: Est{Card: 21, Width: 9}}
	out := Format(f)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("format lines: %v", lines)
	}
	if !strings.Contains(lines[0], "Filter") || !strings.Contains(lines[0], "rows=21") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  SeqScan") || !strings.Contains(lines[1], "rows=42") {
		t.Fatalf("line 1: %q", lines[1])
	}
}

func TestAggLimitSemiJoinNodes(t *testing.T) {
	tb := testTable(t, "t",
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "b", Type: tuple.Float})
	scan := &SeqScan{Table: tb, OutEst: Est{Card: 100, Width: 18}}

	agg := &HashAgg{
		Child:     scan,
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Kind: AggCount, Col: -1},
			{Kind: AggSum, Col: 1},
			{Kind: AggAvg, Col: 1},
			{Kind: AggMin, Col: 1},
			{Kind: AggMax, Col: 1},
		},
		GroupsEst: 10,
		Sch: tuple.NewSchema(
			tuple.Column{Name: "a", Type: tuple.Int},
			tuple.Column{Name: "count(*)", Type: tuple.Int},
			tuple.Column{Name: "sum(b)", Type: tuple.Float},
			tuple.Column{Name: "avg(b)", Type: tuple.Float},
			tuple.Column{Name: "min(b)", Type: tuple.Float},
			tuple.Column{Name: "max(b)", Type: tuple.Float},
		),
		OutEst: Est{Card: 10, Width: 50},
	}
	lbl := agg.Label()
	for _, want := range []string{"HashAggregate", "a", "count(*)", "sum(b)", "avg(b)", "min(b)", "max(b)"} {
		if !strings.Contains(lbl, want) {
			t.Fatalf("agg label %q missing %q", lbl, want)
		}
	}
	if agg.Schema().Arity() != 6 || len(agg.Children()) != 1 || agg.Est().Card != 10 {
		t.Fatal("agg node shape")
	}
	if !IsBlocking(agg) {
		t.Fatal("HashAgg must be blocking")
	}

	lim := &Limit{Child: scan, N: 5, OutEst: Est{Card: 5, Width: 18}}
	if lim.Label() != "Limit 5" || lim.Schema() != scan.Schema() || IsBlocking(lim) {
		t.Fatalf("limit node: %q", lim.Label())
	}

	sj := &SemiJoin{
		Outer: scan, Inner: scan,
		OuterKey: 0, InnerKey: 0,
		Sel: 0.5, OutEst: Est{Card: 50, Width: 18},
	}
	if !strings.Contains(sj.Label(), "HashSemiJoin (outer.a = inner.a)") {
		t.Fatalf("semi label %q", sj.Label())
	}
	if sj.Schema() != scan.Schema() || len(sj.Children()) != 2 {
		t.Fatal("semi node shape")
	}
	sj.Anti = true
	if !strings.Contains(sj.Label(), "AntiHashSemiJoin") {
		t.Fatalf("anti label %q", sj.Label())
	}
	nlSemi := &SemiJoin{
		Outer: scan, Inner: scan, OuterKey: -1, InnerKey: -1,
		ExtraPred: &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Index: 0, Name: "a"}, R: &expr.ColRef{Index: 2, Name: "a2"}},
	}
	if !strings.Contains(nlSemi.Label(), "NestedLoopSemiJoin") || !strings.Contains(nlSemi.Label(), "a < a2") {
		t.Fatalf("nl semi label %q", nlSemi.Label())
	}
}

// Package plan defines physical query plans: the operator trees produced
// by the optimizer and consumed by the executor and by the progress
// indicator's segment decomposition.
//
// Every node carries the optimizer's output estimate (cardinality and
// average tuple width) plus the local selectivity parameters the estimate
// was derived from. The progress indicator re-derives segment costs from
// these same parameters with refined input estimates — re-invoking "the
// optimizer's cost estimation module", as the paper puts it.
package plan

import (
	"fmt"
	"strings"

	"progressdb/internal/catalog"
	"progressdb/internal/expr"
	"progressdb/internal/tuple"
)

// Est is an optimizer estimate of an operator's output: row count and
// average encoded tuple width in bytes.
type Est struct {
	Card  float64
	Width float64
}

// Bytes returns the estimated output size in bytes.
func (e Est) Bytes() float64 { return e.Card * e.Width }

// Node is a physical plan operator.
type Node interface {
	// Schema is the operator's output schema.
	Schema() *tuple.Schema
	// Children returns input operators, left to right.
	Children() []Node
	// Label is a one-line description for EXPLAIN output.
	Label() string
	// Est returns the optimizer's output estimate.
	Est() Est
}

// SeqScan reads an entire base relation in storage order.
type SeqScan struct {
	Table *catalog.Table
	// Alias is the binding name used in the query ("c", "o1", ...).
	Alias  string
	OutEst Est
}

func (s *SeqScan) Schema() *tuple.Schema { return s.Table.Schema }
func (s *SeqScan) Children() []Node      { return nil }
func (s *SeqScan) Est() Est              { return s.OutEst }
func (s *SeqScan) Label() string {
	return fmt.Sprintf("SeqScan %s%s", s.Table.Name, aliasSuffix(s.Alias, s.Table.Name))
}

// IndexScan reads tuples whose key column lies in [Lo, Hi] via a B+-tree,
// fetching each matching heap tuple.
type IndexScan struct {
	Table *catalog.Table
	Alias string
	Index *catalog.Index
	// Lo and Hi bound the key range; nil means unbounded.
	Lo, Hi *int64
	// Sel is the estimated fraction of the relation read.
	Sel    float64
	OutEst Est
}

func (s *IndexScan) Schema() *tuple.Schema { return s.Table.Schema }
func (s *IndexScan) Children() []Node      { return nil }
func (s *IndexScan) Est() Est              { return s.OutEst }
func (s *IndexScan) Label() string {
	var rng []string
	if s.Lo != nil {
		rng = append(rng, fmt.Sprintf("%s >= %d", s.Index.Column, *s.Lo))
	}
	if s.Hi != nil {
		rng = append(rng, fmt.Sprintf("%s <= %d", s.Index.Column, *s.Hi))
	}
	return fmt.Sprintf("IndexScan %s%s using %s (%s)",
		s.Table.Name, aliasSuffix(s.Alias, s.Table.Name), s.Index.Name, strings.Join(rng, " AND "))
}

// Filter drops tuples failing Pred (bound to the child schema).
type Filter struct {
	Child Node
	Pred  expr.Expr
	// Sel is the estimated selectivity of Pred.
	Sel    float64
	OutEst Est
}

func (f *Filter) Schema() *tuple.Schema { return f.Child.Schema() }
func (f *Filter) Children() []Node      { return []Node{f.Child} }
func (f *Filter) Est() Est              { return f.OutEst }
func (f *Filter) Label() string         { return fmt.Sprintf("Filter (%s)", f.Pred) }

// Project keeps the child columns listed in Cols, in order.
type Project struct {
	Child  Node
	Cols   []int
	Sch    *tuple.Schema
	OutEst Est
}

func (p *Project) Schema() *tuple.Schema { return p.Sch }
func (p *Project) Children() []Node      { return []Node{p.Child} }
func (p *Project) Est() Est              { return p.OutEst }
func (p *Project) Label() string {
	names := make([]string, len(p.Cols))
	for i, c := range p.Sch.Cols {
		names[i] = c.Name
	}
	return fmt.Sprintf("Project (%s)", strings.Join(names, ", "))
}

// Partition hash-partitions its input into batches on disk — the "hash"
// operators of the paper's Figures 3 and 8. It is blocking: partitioning
// terminates its segment, and the partitions (PA, PB, ...) are inputs of
// the consuming Grace hash-join segment. Partition appears only as a
// direct child of a HashJoin with Grace set.
type Partition struct {
	Child Node
	// Key is the partitioning column in the child schema.
	Key    int
	OutEst Est
}

func (p *Partition) Schema() *tuple.Schema { return p.Child.Schema() }
func (p *Partition) Children() []Node      { return []Node{p.Child} }
func (p *Partition) Est() Est              { return p.OutEst }
func (p *Partition) Label() string {
	return fmt.Sprintf("HashPartition (%s)", p.Child.Schema().Cols[p.Key].Name)
}

// HashJoin is a hash join.
//
// With Grace false it is the in-memory hybrid form: Build (left child) is
// consumed fully into a hash table — the blocking boundary that ends the
// build side's segment — then Probe (right child) streams. Per the
// paper's rules the probe input is the segment's dominant input.
//
// With Grace true (chosen when the build side exceeds working memory, as
// on the paper's 2004-era PostgreSQL with sub-megabyte sort_mem), both
// children are Partition nodes; the join reads partition pairs batch by
// batch, and both partition sets are segment inputs of the join's
// segment, the probe partitions being dominant (the paper's S3 with
// dominant input PB).
type HashJoin struct {
	Build, Probe Node
	// Grace selects the partitioned form; Build and Probe are then
	// *Partition nodes.
	Grace bool
	// BuildKey and ProbeKey are the equijoin column positions in the
	// respective child schemas.
	BuildKey, ProbeKey int
	// ExtraPred is an optional residual predicate over the concatenated
	// (build ++ probe) schema.
	ExtraPred expr.Expr
	// Sel is the estimated combined join selectivity (equijoin × residual).
	Sel    float64
	Sch    *tuple.Schema
	OutEst Est
}

func (j *HashJoin) Schema() *tuple.Schema { return j.Sch }
func (j *HashJoin) Children() []Node      { return []Node{j.Build, j.Probe} }
func (j *HashJoin) Est() Est              { return j.OutEst }
func (j *HashJoin) Label() string {
	kind := "HashJoin"
	if j.Grace {
		kind = "GraceHashJoin"
	}
	l := fmt.Sprintf("%s (build.%s = probe.%s)", kind,
		j.Build.Schema().Cols[j.BuildKey].Name, j.Probe.Schema().Cols[j.ProbeKey].Name)
	if j.ExtraPred != nil {
		l += fmt.Sprintf(" AND (%s)", j.ExtraPred)
	}
	return l
}

// NLJoin is a nested-loops join: for each Outer (left) tuple, Inner
// (right) is rescanned and Pred evaluated over the concatenated schema.
// The outer is the segment's dominant input.
type NLJoin struct {
	Outer, Inner Node
	// Pred may be nil (cross product).
	Pred expr.Expr
	// Sel is the estimated selectivity of Pred over the cross product.
	Sel    float64
	Sch    *tuple.Schema
	OutEst Est
}

func (j *NLJoin) Schema() *tuple.Schema { return j.Sch }
func (j *NLJoin) Children() []Node      { return []Node{j.Outer, j.Inner} }
func (j *NLJoin) Est() Est              { return j.OutEst }
func (j *NLJoin) Label() string {
	if j.Pred == nil {
		return "NestedLoopJoin (cross)"
	}
	return fmt.Sprintf("NestedLoopJoin (%s)", j.Pred)
}

// SortKey orders by the given output column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort is an external merge sort — a blocking operator that ends its
// segment, producing sorted runs consumed by the parent segment (the
// paper's Figure 3: S3/S4 sort into runs; S5 merges them).
type Sort struct {
	Child  Node
	Keys   []SortKey
	OutEst Est
}

func (s *Sort) Schema() *tuple.Schema { return s.Child.Schema() }
func (s *Sort) Children() []Node      { return []Node{s.Child} }
func (s *Sort) Est() Est              { return s.OutEst }
func (s *Sort) Label() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		parts[i] = fmt.Sprintf("%s%s", s.Child.Schema().Cols[k.Col].Name, dir)
	}
	return fmt.Sprintf("Sort (%s)", strings.Join(parts, ", "))
}

// MergeJoin joins two inputs that are already sorted on the join keys
// (each typically under a Sort). Both inputs are dominant: per the paper,
// p = max(qA, qB), because the join ends when either input is exhausted.
type MergeJoin struct {
	Left, Right       Node
	LeftKey, RightKey int
	ExtraPred         expr.Expr
	Sel               float64
	Sch               *tuple.Schema
	OutEst            Est
}

func (j *MergeJoin) Schema() *tuple.Schema { return j.Sch }
func (j *MergeJoin) Children() []Node      { return []Node{j.Left, j.Right} }
func (j *MergeJoin) Est() Est              { return j.OutEst }
func (j *MergeJoin) Label() string {
	return fmt.Sprintf("MergeJoin (left.%s = right.%s)",
		j.Left.Schema().Cols[j.LeftKey].Name, j.Right.Schema().Cols[j.RightKey].Name)
}

// Materialize buffers its child's output so it can be rescanned (the
// inner of a nested-loops join over a non-scan subtree). Blocking.
type Materialize struct {
	Child  Node
	OutEst Est
}

func (m *Materialize) Schema() *tuple.Schema { return m.Child.Schema() }
func (m *Materialize) Children() []Node      { return []Node{m.Child} }
func (m *Materialize) Est() Est              { return m.OutEst }
func (m *Materialize) Label() string         { return "Materialize" }

// IsBlocking reports whether n is a pipeline breaker: its output segment
// boundary per Section 4.2 of the paper (hash-table builds are modeled as
// the boundary between a HashJoin's build child and the join itself).
func IsBlocking(n Node) bool {
	switch n.(type) {
	case *Sort, *Materialize, *Partition, *HashAgg:
		return true
	default:
		return false
	}
}

// Format renders the plan tree with indentation and estimates, in the
// style of EXPLAIN.
func Format(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(x Node, depth int) {
		e := x.Est()
		fmt.Fprintf(&b, "%s%s  (rows=%.0f width=%.0f)\n",
			strings.Repeat("  ", depth), x.Label(), e.Card, e.Width)
		for _, c := range x.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

func aliasSuffix(alias, table string) string {
	if alias == "" || alias == table {
		return ""
	}
	return " " + alias
}

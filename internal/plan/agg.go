package plan

import (
	"fmt"
	"strings"

	"progressdb/internal/tuple"
)

// AggKind is an aggregate function.
type AggKind string

// Aggregate kinds.
const (
	AggCount AggKind = "count"
	AggSum   AggKind = "sum"
	AggAvg   AggKind = "avg"
	AggMin   AggKind = "min"
	AggMax   AggKind = "max"
)

// AggSpec is one aggregate in a HashAgg: Kind over child column Col
// (Col = -1 for count(*)).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// HashAgg groups its input by GroupCols and computes Aggs per group. It
// is a blocking operator — grouping cannot emit until all input is seen —
// so it terminates its segment, exactly like the paper's hash-table
// builds and sorts. Its output schema is [group columns..., aggregates...].
type HashAgg struct {
	Child     Node
	GroupCols []int
	Aggs      []AggSpec
	// GroupsEst is the optimizer's estimate of the number of groups.
	GroupsEst float64
	Sch       *tuple.Schema
	OutEst    Est
}

func (a *HashAgg) Schema() *tuple.Schema { return a.Sch }
func (a *HashAgg) Children() []Node      { return []Node{a.Child} }
func (a *HashAgg) Est() Est              { return a.OutEst }
func (a *HashAgg) Label() string {
	parts := make([]string, 0, len(a.GroupCols)+len(a.Aggs))
	for _, g := range a.GroupCols {
		parts = append(parts, a.Child.Schema().Cols[g].Name)
	}
	for _, sp := range a.Aggs {
		arg := "*"
		if sp.Col >= 0 {
			arg = a.Child.Schema().Cols[sp.Col].Name
		}
		parts = append(parts, fmt.Sprintf("%s(%s)", sp.Kind, arg))
	}
	return "HashAggregate (" + strings.Join(parts, ", ") + ")"
}

// Limit passes through at most N rows — streaming, not blocking.
type Limit struct {
	Child  Node
	N      int64
	OutEst Est
}

func (l *Limit) Schema() *tuple.Schema { return l.Child.Schema() }
func (l *Limit) Children() []Node      { return []Node{l.Child} }
func (l *Limit) Est() Est              { return l.OutEst }
func (l *Limit) Label() string         { return fmt.Sprintf("Limit %d", l.N) }

package plan

import (
	"fmt"

	"progressdb/internal/expr"
	"progressdb/internal/tuple"
)

// SemiJoin implements EXISTS/IN (and their negations as an anti-join):
// an Outer tuple is emitted when at least one (Anti: no) Inner tuple
// matches. The Inner side is consumed fully into a hash table or cache
// at open — a blocking boundary, so the inner subtree forms its own
// segment whose output is the match set; the Outer is the consumer
// segment's dominant input, exactly like a hash join's probe.
//
// Correlated subqueries are the paper's Section 6 future-work item 3;
// decorrelation into a semi-join makes them ordinary segments for the
// progress indicator.
type SemiJoin struct {
	Outer, Inner Node
	// OuterKey/InnerKey are the equality correlation columns; -1 means
	// no hashable key (pure nested-loops semi-join over the cached
	// inner).
	OuterKey, InnerKey int
	// ExtraPred is evaluated over the concatenated (outer ++ inner)
	// schema for each candidate match.
	ExtraPred expr.Expr
	// Anti negates the match condition (NOT EXISTS / NOT IN).
	Anti bool
	// Sel is the estimated fraction of outer tuples emitted.
	Sel    float64
	OutEst Est
}

func (j *SemiJoin) Schema() *tuple.Schema { return j.Outer.Schema() }
func (j *SemiJoin) Children() []Node      { return []Node{j.Outer, j.Inner} }
func (j *SemiJoin) Est() Est              { return j.OutEst }
func (j *SemiJoin) Label() string {
	kind := "HashSemiJoin"
	if j.OuterKey < 0 {
		kind = "NestedLoopSemiJoin"
	}
	if j.Anti {
		kind = "Anti" + kind
	}
	cond := ""
	if j.OuterKey >= 0 {
		cond = fmt.Sprintf("outer.%s = inner.%s",
			j.Outer.Schema().Cols[j.OuterKey].Name, j.Inner.Schema().Cols[j.InnerKey].Name)
	}
	if j.ExtraPred != nil {
		if cond != "" {
			cond += " AND "
		}
		cond += j.ExtraPred.String()
	}
	return fmt.Sprintf("%s (%s)", kind, cond)
}

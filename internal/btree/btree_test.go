package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"progressdb/internal/storage"
	"progressdb/internal/vclock"
)

func testPool(capacity int) *storage.BufferPool {
	clock := vclock.New(vclock.DefaultCosts(), nil)
	return storage.NewBufferPool(storage.NewDisk(clock), capacity)
}

func rid(i int) storage.RID {
	return storage.RID{Page: storage.PageID{File: 9, Num: int32(i / 100)}, Slot: uint16(i % 100)}
}

func sortedEntries(n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: int64(i * 2), RID: rid(i)} // even keys
	}
	return es
}

func collect(t *testing.T, it *Iterator) []Entry {
	t.Helper()
	var out []Entry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	pool := testPool(256)
	tree, err := BulkLoad(pool, sortedEntries(10000))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 10000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Fatalf("10k entries should need height >= 2, got %d", tree.Height())
	}
	it, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 10000 {
		t.Fatalf("scanned %d entries", len(got))
	}
	for i, e := range got {
		if e.Key != int64(i*2) || e.RID != rid(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestBulkLoadUnsortedRejected(t *testing.T) {
	pool := testPool(16)
	if _, err := BulkLoad(pool, []Entry{{Key: 5}, {Key: 3}}); err == nil {
		t.Fatal("unsorted bulk load must fail")
	}
}

func TestSearchExactAndMissing(t *testing.T) {
	pool := testPool(256)
	tree, err := BulkLoad(pool, sortedEntries(5000))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 2, 4998, 9998} {
		rids, err := tree.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 1 || rids[0] != rid(int(k/2)) {
			t.Fatalf("Search(%d) = %v", k, rids)
		}
	}
	for _, k := range []int64{-1, 1, 3, 9999, 100001} { // odd/out-of-range keys absent
		rids, err := tree.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rids) != 0 {
			t.Fatalf("Search(%d) = %v, want empty", k, rids)
		}
	}
}

func TestSeekRangeScan(t *testing.T) {
	pool := testPool(256)
	tree, err := BulkLoad(pool, sortedEntries(5000))
	if err != nil {
		t.Fatal(err)
	}
	it, err := tree.SeekGE(101) // first key >= 101 is 102
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.Key > 120 {
			break
		}
		got = append(got, e.Key)
	}
	want := []int64{102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v", got)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	pool := testPool(64)
	var es []Entry
	for i := 0; i < 300; i++ {
		es = append(es, Entry{Key: int64(i / 10), RID: rid(i)}) // 10 dups per key
	}
	tree, err := BulkLoad(pool, es)
	if err != nil {
		t.Fatal(err)
	}
	rids, err := tree.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 10 {
		t.Fatalf("Search(7) found %d rids, want 10", len(rids))
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	pool := testPool(64)
	tree, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{5, 1, 9, 3, 7}
	for i, k := range keys {
		if err := tree.Insert(k, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, _ := tree.First()
	got := collect(t, it)
	var gk []int64
	for _, e := range got {
		gk = append(gk, e.Key)
	}
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if gk[i] != want[i] {
			t.Fatalf("keys after insert = %v", gk)
		}
	}
}

func TestInsertManySplits(t *testing.T) {
	pool := testPool(512)
	tree, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for i, k := range perm {
		if err := tree.Insert(int64(k), rid(i)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d after %d inserts", tree.Height(), n)
	}
	it, _ := tree.First()
	got := collect(t, it)
	if len(got) != n {
		t.Fatalf("scan found %d entries, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatalf("keys out of order at %d: %d < %d", i, got[i].Key, got[i-1].Key)
		}
	}
	// Every key findable.
	for k := 0; k < n; k += 997 {
		rids, err := tree.Search(int64(k))
		if err != nil || len(rids) != 1 {
			t.Fatalf("Search(%d) = %v, %v", k, rids, err)
		}
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	pool := testPool(512)
	tree, err := BulkLoad(pool, sortedEntries(3000)) // even keys 0..5998
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tree.Insert(int64(i*2+1), rid(100000+i)); err != nil { // odd keys
			t.Fatal(err)
		}
	}
	it, _ := tree.First()
	got := collect(t, it)
	if len(got) != 6000 {
		t.Fatalf("scan = %d entries", len(got))
	}
	for i, e := range got {
		if e.Key != int64(i) {
			t.Fatalf("key %d = %d", i, e.Key)
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	pool := testPool(256)
	tree, err := BulkLoad(pool, sortedEntries(1000))
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(pool, tree.File())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1000 || re.Height() != tree.Height() {
		t.Fatalf("reopened: len %d height %d", re.Len(), re.Height())
	}
	rids, err := re.Search(500)
	if err != nil || len(rids) != 1 {
		t.Fatalf("reopened search: %v %v", rids, err)
	}
}

func TestIndexScanChargesIO(t *testing.T) {
	clock := vclock.New(vclock.Costs{SeqPage: 1, RandPage: 1, CPUTuple: 0}, nil)
	pool := storage.NewBufferPool(storage.NewDisk(clock), 4) // tiny pool forces misses
	tree, err := BulkLoad(pool, sortedEntries(50000))
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	it, _ := tree.First()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 50000 {
		t.Fatalf("scanned %d", n)
	}
	if clock.Now() == before {
		t.Fatal("full index scan through a tiny pool must charge I/O")
	}
}

// Property: a bulk-loaded tree returns exactly the loaded keys in order,
// and Seek(k) lands on the first key >= k.
func TestPropertyBulkLoadSeek(t *testing.T) {
	f := func(raw []int16, probe int16) bool {
		keys := make([]int64, 0, len(raw))
		for _, k := range raw {
			keys = append(keys, int64(k))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		es := make([]Entry, len(keys))
		for i, k := range keys {
			es[i] = Entry{Key: k, RID: rid(i)}
		}
		pool := testPool(128)
		tree, err := BulkLoad(pool, es)
		if err != nil {
			return false
		}
		it, err := tree.SeekGE(int64(probe))
		if err != nil {
			return false
		}
		e, ok, err := it.Next()
		if err != nil {
			return false
		}
		// Expected: first key >= probe.
		idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= int64(probe) })
		if idx == len(keys) {
			return !ok
		}
		return ok && e.Key == keys[idx]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Force internal-node splits through the insert path: bulk-load until the
// root internal node is nearly full, then insert into its leaves until it
// must split and grow a new root.
func TestInsertSplitsInternalNodes(t *testing.T) {
	pool := testPool(4096)
	// Bulk load enough entries that the root internal node holds many
	// hundreds of children (fanout ~682).
	const n = 250000
	tree, err := BulkLoad(pool, sortedEntries(n)) // even keys 0..2n-2
	if err != nil {
		t.Fatal(err)
	}
	h := tree.Height()
	// Insert odd keys until the height grows (internal split propagated
	// to a new root) or we've inserted plenty.
	grew := false
	for i := 0; i < 80000; i++ {
		if err := tree.Insert(int64(i*2+1), rid(i)); err != nil {
			t.Fatal(err)
		}
		if tree.Height() > h {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatalf("height stayed %d after dense inserts (internal splits not exercised)", h)
	}
	// Structure stays ordered and searchable.
	for _, k := range []int64{1, 2, 99999, 160001} {
		if _, err := tree.Search(k); err != nil {
			t.Fatalf("Search(%d): %v", k, err)
		}
	}
	it, err := tree.SeekGE(0)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	count := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Key < prev {
			t.Fatalf("order violated: %d after %d", e.Key, prev)
		}
		prev = e.Key
		count++
	}
	if count < n {
		t.Fatalf("scan lost entries: %d < %d", count, n)
	}
}

func TestOpenCorruptMeta(t *testing.T) {
	pool := testPool(16)
	f := pool.Disk().Create()
	if err := pool.Put(storage.PageID{File: f, Num: 0}, make([]byte, storage.PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pool, f); err == nil {
		t.Fatal("zeroed meta page must be rejected")
	}
}

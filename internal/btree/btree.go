// Package btree implements a page-oriented B+-tree over int64 keys mapping
// to heap-file RIDs. Index pages live on the simulated disk and are read
// through the buffer pool, so index scans charge virtual I/O like any other
// access path (the paper's engine accesses base relations by table-scan or
// index-scan; see Figure 3's index-scan leaf).
package btree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"progressdb/internal/storage"
	"progressdb/internal/vclock"
)

// Page layout.
//
// Meta page (page 0):
//
//	[0:4]  root page number
//	[4:8]  height (1 = root is a leaf)
//	[8:16] key count
//
// Node pages:
//
//	[0]    kind: 0 leaf, 1 internal
//	[1:3]  entry count n
//	leaf:     [3:7] next-leaf page (-1 none), then n × (key 8B, rid 10B)
//	internal: [3:7] child0, then n × (key 8B, child 4B);
//	          subtree child[i] holds keys >= key[i-1] (key[-1] = -inf) and < key[i]
const (
	metaPage     = 0
	leafKind     = 0
	internalKind = 1

	leafHeader     = 7
	internalHeader = 7
	leafEntry      = 18 // key 8 + rid (4+4+2)
	internalEntry  = 12 // key 8 + child 4

	// MaxLeafEntries and MaxInternalEntries are the page fanouts.
	MaxLeafEntries     = (storage.PageSize - leafHeader) / leafEntry
	MaxInternalEntries = (storage.PageSize - internalHeader) / internalEntry
)

// Entry is one key/RID pair.
type Entry struct {
	Key int64
	RID storage.RID
}

// Tree is an opened B+-tree.
type Tree struct {
	pool *storage.BufferPool
	file storage.FileID
	root int32
	h    int32
	n    int64
}

// Create makes a new empty tree in a fresh file.
func Create(pool *storage.BufferPool) (*Tree, error) {
	t := &Tree{pool: pool, file: pool.Disk().Create()}
	// Meta page, then an empty leaf root at page 1.
	root := make([]byte, storage.PageSize)
	root[0] = leafKind
	putInt32(root[3:], -1)
	if err := pool.Put(storage.PageID{File: t.file, Num: metaPage}, make([]byte, storage.PageSize)); err != nil {
		return nil, err
	}
	if err := pool.Put(storage.PageID{File: t.file, Num: 1}, root); err != nil {
		return nil, err
	}
	t.root, t.h = 1, 1
	return t, t.writeMeta()
}

// BulkLoad builds a tree from entries, which are sorted by key ascending
// (duplicates allowed). It is the normal way indexes are built after data
// loading, and produces leaves in sequential page order.
func BulkLoad(pool *storage.BufferPool, entries []Entry) (*Tree, error) {
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key }) {
		return nil, fmt.Errorf("btree: bulk load input not sorted")
	}
	t := &Tree{pool: pool, file: pool.Disk().Create()}
	if err := pool.Put(storage.PageID{File: t.file, Num: metaPage}, make([]byte, storage.PageSize)); err != nil {
		return nil, err
	}
	next := int32(1)

	// Write leaves left to right.
	type childRef struct {
		firstKey int64
		page     int32
	}
	var level []childRef
	// Fill leaves to ~90% so near-sorted inserts don't split immediately.
	perLeaf := MaxLeafEntries * 9 / 10
	if perLeaf < 1 {
		perLeaf = 1
	}
	nLeaves := (len(entries) + perLeaf - 1) / perLeaf
	if nLeaves == 0 {
		nLeaves = 1
	}
	for i := 0; i < nLeaves; i++ {
		lo := i * perLeaf
		hi := lo + perLeaf
		if hi > len(entries) {
			hi = len(entries)
		}
		page := make([]byte, storage.PageSize)
		page[0] = leafKind
		putInt16(page[1:], int16(hi-lo))
		if i+1 < nLeaves {
			putInt32(page[3:], next+1)
		} else {
			putInt32(page[3:], -1)
		}
		off := leafHeader
		for _, e := range entries[lo:hi] {
			off = putLeafEntry(page, off, e)
		}
		if err := pool.Put(storage.PageID{File: t.file, Num: next}, page); err != nil {
			return nil, err
		}
		first := int64(0)
		if hi > lo {
			first = entries[lo].Key
		}
		level = append(level, childRef{firstKey: first, page: next})
		next++
	}

	// Build internal levels bottom-up.
	height := int32(1)
	for len(level) > 1 {
		var parent []childRef
		per := MaxInternalEntries * 9 / 10
		if per < 2 {
			per = 2
		}
		for i := 0; i < len(level); i += per + 1 {
			hi := i + per + 1
			if hi > len(level) {
				hi = len(level)
			}
			group := level[i:hi]
			page := make([]byte, storage.PageSize)
			page[0] = internalKind
			putInt16(page[1:], int16(len(group)-1))
			putInt32(page[3:], group[0].page)
			off := internalHeader
			for _, c := range group[1:] {
				binary.LittleEndian.PutUint64(page[off:], uint64(c.firstKey))
				putInt32(page[off+8:], c.page)
				off += internalEntry
			}
			if err := pool.Put(storage.PageID{File: t.file, Num: next}, page); err != nil {
				return nil, err
			}
			parent = append(parent, childRef{firstKey: group[0].firstKey, page: next})
			next++
		}
		level = parent
		height++
	}
	t.root = level[0].page
	t.h = height
	t.n = int64(len(entries))
	return t, t.writeMeta()
}

// Open reopens a tree previously created in file.
func Open(pool *storage.BufferPool, file storage.FileID) (*Tree, error) {
	t := &Tree{pool: pool, file: file}
	meta, err := pool.Get(storage.PageID{File: file, Num: metaPage})
	if err != nil {
		return nil, err
	}
	t.root = getInt32(meta[0:])
	t.h = getInt32(meta[4:])
	t.n = int64(binary.LittleEndian.Uint64(meta[8:]))
	if t.root < 1 || t.h < 1 {
		return nil, fmt.Errorf("btree: corrupt meta page (root %d, height %d)", t.root, t.h)
	}
	return t, nil
}

// File returns the underlying file id.
func (t *Tree) File() storage.FileID { return t.file }

// Len returns the number of entries.
func (t *Tree) Len() int64 { return t.n }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return int(t.h) }

func (t *Tree) writeMeta() error {
	meta := make([]byte, storage.PageSize)
	putInt32(meta[0:], t.root)
	putInt32(meta[4:], t.h)
	binary.LittleEndian.PutUint64(meta[8:], uint64(t.n))
	return t.pool.Put(storage.PageID{File: t.file, Num: metaPage}, meta)
}

// getPage reads a tree page through the pool, charging clk (nil means
// the disk's base clock — the single-threaded DDL/load/txn paths).
func (t *Tree) getPage(clk *vclock.Clock, num int32) ([]byte, error) {
	if clk == nil {
		clk = t.pool.Disk().Clock()
	}
	return t.pool.GetOn(clk, storage.PageID{File: t.file, Num: num})
}

// descend walks from the root to the leaf that may contain key, recording
// the path (for insert splits).
func (t *Tree) descend(clk *vclock.Clock, key int64) (leaf int32, path []int32, err error) {
	cur := t.root
	for {
		page, err := t.getPage(clk, cur)
		if err != nil {
			return 0, nil, err
		}
		if page[0] == leafKind {
			return cur, path, nil
		}
		path = append(path, cur)
		n := int(getInt16(page[1:]))
		child := getInt32(page[3:])
		off := internalHeader
		for i := 0; i < n; i++ {
			k := int64(binary.LittleEndian.Uint64(page[off:]))
			if key >= k {
				child = getInt32(page[off+8:])
			} else {
				break
			}
			off += internalEntry
		}
		cur = child
	}
}

// Search returns the RIDs of all entries with exactly the given key.
func (t *Tree) Search(key int64) ([]storage.RID, error) {
	it, err := t.SeekGE(key)
	if err != nil {
		return nil, err
	}
	var out []storage.RID
	for {
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok || e.Key != key {
			break
		}
		out = append(out, e.RID)
	}
	return out, nil
}

// Iterator walks leaf entries in key order, charging the clock it was
// opened with (nil = the disk's base clock).
type Iterator struct {
	t    *Tree
	clk  *vclock.Clock
	page int32
	idx  int
}

// SeekGE returns an iterator positioned at the first entry with
// key >= key, charging the disk's base clock.
func (t *Tree) SeekGE(key int64) (*Iterator, error) {
	return t.SeekGEOn(nil, key)
}

// SeekGEOn is SeekGE charging the given worker clock (per-query index
// scans).
func (t *Tree) SeekGEOn(clk *vclock.Clock, key int64) (*Iterator, error) {
	leaf, _, err := t.descend(clk, key)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t, clk: clk, page: leaf}
	page, err := t.getPage(clk, leaf)
	if err != nil {
		return nil, err
	}
	n := int(getInt16(page[1:]))
	// Binary search within the leaf.
	it.idx = sort.Search(n, func(i int) bool {
		return leafKeyAt(page, i) >= key
	})
	return it, nil
}

// First returns an iterator over all entries, charging the disk's base
// clock.
func (t *Tree) First() (*Iterator, error) {
	return t.FirstOn(nil)
}

// FirstOn is First charging the given worker clock.
func (t *Tree) FirstOn(clk *vclock.Clock) (*Iterator, error) {
	// Descend along the leftmost spine.
	cur := t.root
	for {
		page, err := t.getPage(clk, cur)
		if err != nil {
			return nil, err
		}
		if page[0] == leafKind {
			return &Iterator{t: t, clk: clk, page: cur}, nil
		}
		cur = getInt32(page[3:])
	}
}

// Next returns the next entry, ok=false at the end.
func (it *Iterator) Next() (Entry, bool, error) {
	for {
		if it.page < 0 {
			return Entry{}, false, nil
		}
		page, err := it.t.getPage(it.clk, it.page)
		if err != nil {
			return Entry{}, false, err
		}
		n := int(getInt16(page[1:]))
		if it.idx < n {
			e := leafEntryAt(page, it.idx)
			it.idx++
			return e, true, nil
		}
		it.page = getInt32(page[3:])
		it.idx = 0
	}
}

// Insert adds an entry, splitting pages as needed.
func (t *Tree) Insert(key int64, rid storage.RID) error {
	leafNum, path, err := t.descend(nil, key)
	if err != nil {
		return err
	}
	page, err := t.getPage(nil, leafNum)
	if err != nil {
		return err
	}
	buf := clone(page)
	n := int(getInt16(buf[1:]))
	pos := sort.Search(n, func(i int) bool { return leafKeyAt(buf, i) > key })
	if n < MaxLeafEntries {
		insertLeafEntry(buf, n, pos, Entry{Key: key, RID: rid})
		putInt16(buf[1:], int16(n+1))
		if err := t.pool.Put(storage.PageID{File: t.file, Num: leafNum}, buf); err != nil {
			return err
		}
		t.n++
		return t.writeMeta()
	}
	// Split the leaf: gather entries, insert, halve.
	entries := make([]Entry, 0, n+1)
	for i := 0; i < n; i++ {
		entries = append(entries, leafEntryAt(buf, i))
	}
	entries = append(entries[:pos], append([]Entry{{Key: key, RID: rid}}, entries[pos:]...)...)
	mid := len(entries) / 2
	rightNum, err := t.appendPage()
	if err != nil {
		return err
	}
	nextLeaf := getInt32(buf[3:])

	left := newLeafPage(entries[:mid], rightNum)
	right := newLeafPage(entries[mid:], nextLeaf)
	if err := t.pool.Put(storage.PageID{File: t.file, Num: leafNum}, left); err != nil {
		return err
	}
	if err := t.pool.Put(storage.PageID{File: t.file, Num: rightNum}, right); err != nil {
		return err
	}
	t.n++
	return t.insertIntoParent(path, entries[mid].Key, rightNum)
}

// insertIntoParent threads a split (sepKey, rightChild) up the recorded path.
func (t *Tree) insertIntoParent(path []int32, sepKey int64, rightChild int32) error {
	if len(path) == 0 {
		// Grow a new root.
		rootNum, err := t.appendPage()
		if err != nil {
			return err
		}
		page := make([]byte, storage.PageSize)
		page[0] = internalKind
		putInt16(page[1:], 1)
		putInt32(page[3:], t.root)
		binary.LittleEndian.PutUint64(page[internalHeader:], uint64(sepKey))
		putInt32(page[internalHeader+8:], rightChild)
		if err := t.pool.Put(storage.PageID{File: t.file, Num: rootNum}, page); err != nil {
			return err
		}
		t.root = rootNum
		t.h++
		return t.writeMeta()
	}
	parentNum := path[len(path)-1]
	page, err := t.getPage(nil, parentNum)
	if err != nil {
		return err
	}
	buf := clone(page)
	n := int(getInt16(buf[1:]))
	pos := sort.Search(n, func(i int) bool { return internalKeyAt(buf, i) > sepKey })
	if n < MaxInternalEntries {
		// Shift entries right and insert.
		off := internalHeader + pos*internalEntry
		copy(buf[off+internalEntry:], buf[off:internalHeader+n*internalEntry])
		binary.LittleEndian.PutUint64(buf[off:], uint64(sepKey))
		putInt32(buf[off+8:], rightChild)
		putInt16(buf[1:], int16(n+1))
		if err := t.pool.Put(storage.PageID{File: t.file, Num: parentNum}, buf); err != nil {
			return err
		}
		return t.writeMeta()
	}
	// Split the internal node.
	type ik struct {
		key   int64
		child int32
	}
	keys := make([]ik, 0, n+1)
	for i := 0; i < n; i++ {
		keys = append(keys, ik{internalKeyAt(buf, i), internalChildAt(buf, i)})
	}
	keys = append(keys[:pos], append([]ik{{sepKey, rightChild}}, keys[pos:]...)...)
	child0 := getInt32(buf[3:])
	mid := len(keys) / 2
	up := keys[mid]

	leftPage := make([]byte, storage.PageSize)
	leftPage[0] = internalKind
	putInt16(leftPage[1:], int16(mid))
	putInt32(leftPage[3:], child0)
	off := internalHeader
	for _, k := range keys[:mid] {
		binary.LittleEndian.PutUint64(leftPage[off:], uint64(k.key))
		putInt32(leftPage[off+8:], k.child)
		off += internalEntry
	}
	rightPage := make([]byte, storage.PageSize)
	rightPage[0] = internalKind
	putInt16(rightPage[1:], int16(len(keys)-mid-1))
	putInt32(rightPage[3:], up.child)
	off = internalHeader
	for _, k := range keys[mid+1:] {
		binary.LittleEndian.PutUint64(rightPage[off:], uint64(k.key))
		putInt32(rightPage[off+8:], k.child)
		off += internalEntry
	}
	rightNum, err := t.appendPage()
	if err != nil {
		return err
	}
	if err := t.pool.Put(storage.PageID{File: t.file, Num: parentNum}, leftPage); err != nil {
		return err
	}
	if err := t.pool.Put(storage.PageID{File: t.file, Num: rightNum}, rightPage); err != nil {
		return err
	}
	return t.insertIntoParent(path[:len(path)-1], up.key, rightNum)
}

func (t *Tree) appendPage() (int32, error) {
	n, err := t.pool.Disk().NumPages(t.file)
	if err != nil {
		return 0, err
	}
	if err := t.pool.Put(storage.PageID{File: t.file, Num: int32(n)}, make([]byte, storage.PageSize)); err != nil {
		return 0, err
	}
	return int32(n), nil
}

// --- page encoding helpers ---

func putInt16(b []byte, v int16) { binary.LittleEndian.PutUint16(b, uint16(v)) }
func getInt16(b []byte) int16    { return int16(binary.LittleEndian.Uint16(b)) }
func putInt32(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) }
func getInt32(b []byte) int32    { return int32(binary.LittleEndian.Uint32(b)) }
func clone(p []byte) []byte      { c := make([]byte, len(p)); copy(c, p); return c }

func leafKeyAt(page []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(page[leafHeader+i*leafEntry:]))
}

func leafEntryAt(page []byte, i int) Entry {
	off := leafHeader + i*leafEntry
	return Entry{
		Key: int64(binary.LittleEndian.Uint64(page[off:])),
		RID: storage.RID{
			Page: storage.PageID{
				File: storage.FileID(getInt32(page[off+8:])),
				Num:  getInt32(page[off+12:]),
			},
			Slot: binary.LittleEndian.Uint16(page[off+16:]),
		},
	}
}

func putLeafEntry(page []byte, off int, e Entry) int {
	binary.LittleEndian.PutUint64(page[off:], uint64(e.Key))
	putInt32(page[off+8:], int32(e.RID.Page.File))
	putInt32(page[off+12:], e.RID.Page.Num)
	binary.LittleEndian.PutUint16(page[off+16:], e.RID.Slot)
	return off + leafEntry
}

func insertLeafEntry(page []byte, n, pos int, e Entry) {
	off := leafHeader + pos*leafEntry
	copy(page[off+leafEntry:], page[off:leafHeader+n*leafEntry])
	putLeafEntry(page, off, e)
}

func newLeafPage(entries []Entry, next int32) []byte {
	page := make([]byte, storage.PageSize)
	page[0] = leafKind
	putInt16(page[1:], int16(len(entries)))
	putInt32(page[3:], next)
	off := leafHeader
	for _, e := range entries {
		off = putLeafEntry(page, off, e)
	}
	return page
}

func internalKeyAt(page []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(page[internalHeader+i*internalEntry:]))
}

func internalChildAt(page []byte, i int) int32 {
	return getInt32(page[internalHeader+i*internalEntry+8:])
}

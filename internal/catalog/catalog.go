// Package catalog tracks the tables, indexes, and statistics known to the
// engine. It is deliberately minimal: the paper's workload is read-only
// SPJ queries over pre-loaded relations.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"progressdb/internal/btree"
	"progressdb/internal/stats"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// Index is a secondary B+-tree index over a single integer column.
type Index struct {
	Name   string
	Table  string
	Column string
	Tree   *btree.Tree
}

// Table is a named relation with its heap file, schema, optional
// statistics, and indexes.
type Table struct {
	Name    string
	Schema  *tuple.Schema
	Heap    *storage.HeapFile
	Stats   *stats.TableStats
	Indexes []*Index
}

// IndexOn returns the index on the named column, or nil.
func (t *Table) IndexOn(column string) *Index {
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Column, column) {
			return ix
		}
	}
	return nil
}

// Catalog is the set of known tables. Lookups (Table, Tables) are safe
// to call concurrently with each other and with running queries; DDL
// (CreateTable, DropTable, CreateIndex, Analyze) takes the write lock
// for the name-table mutation but must not run concurrently with
// queries that use the affected table — the engine runs DDL only while
// idle, matching the paper's load-then-query methodology.
type Catalog struct {
	pool *storage.BufferPool

	mu     sync.RWMutex // guards tables
	tables map[string]*Table
}

// New creates an empty catalog whose tables live on pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{pool: pool, tables: make(map[string]*Table)}
}

// Pool returns the buffer pool backing this catalog's tables.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// CreateTable registers a new empty table.
func (c *Catalog) CreateTable(name string, schema *tuple.Schema) (*Table, error) {
	key := strings.ToLower(name)
	// Create the heap outside the catalog lock: the name map is the only
	// state the lock guards, and holding it across pool I/O would order
	// Catalog.mu above the shard latches for no benefit.
	heap := storage.CreateHeapFile(c.pool)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:   key,
		Schema: schema,
		Heap:   heap,
	}
	c.tables[key] = t
	return t, nil
}

// DropTable removes a table and its heap file and index files.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	t, ok := c.tables[key]
	if ok {
		delete(c.tables, key)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	for _, ix := range t.Indexes {
		c.pool.DropFile(ix.Tree.File())
		if err := c.pool.Disk().Remove(ix.Tree.File()); err != nil {
			return err
		}
	}
	return t.Heap.Drop()
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Insert appends a row to a table, validating arity and column types.
func (c *Catalog) Insert(t *Table, row tuple.Tuple) error {
	if len(row) != t.Schema.Arity() {
		return fmt.Errorf("catalog: %s: row arity %d, schema arity %d", t.Name, len(row), t.Schema.Arity())
	}
	for i, v := range row {
		if v.Kind != t.Schema.Cols[i].Type {
			return fmt.Errorf("catalog: %s.%s: value kind %v, column type %v",
				t.Name, t.Schema.Cols[i].Name, v.Kind, t.Schema.Cols[i].Type)
		}
	}
	_, err := t.Heap.Append(row.Encode(nil))
	return err
}

// Analyze computes and stores statistics for the table, like running the
// PostgreSQL statistics collection program before the experiments.
func (c *Catalog) Analyze(t *Table) error {
	ts, err := stats.Analyze(t.Heap, t.Schema)
	if err != nil {
		return err
	}
	t.Stats = ts
	return nil
}

// AnalyzeAll analyzes every table.
func (c *Catalog) AnalyzeAll() error {
	for _, t := range c.Tables() {
		if err := c.Analyze(t); err != nil {
			return fmt.Errorf("catalog: analyze %s: %w", t.Name, err)
		}
	}
	return nil
}

// CreateIndex bulk-loads a B+-tree index over an Int column of t.
func (c *Catalog) CreateIndex(t *Table, column string) (*Index, error) {
	colIdx := t.Schema.ColIndex(column)
	if colIdx < 0 {
		return nil, fmt.Errorf("catalog: %s has no column %q", t.Name, column)
	}
	if t.Schema.Cols[colIdx].Type != tuple.Int {
		return nil, fmt.Errorf("catalog: index column %s.%s is not INT", t.Name, column)
	}
	if t.IndexOn(column) != nil {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", t.Name, column)
	}
	var entries []btree.Entry
	sc := t.Heap.NewScanner()
	for {
		rec, rid, ok := sc.Next()
		if !ok {
			break
		}
		row, err := tuple.Decode(rec, t.Schema.Arity())
		if err != nil {
			return nil, err
		}
		entries = append(entries, btree.Entry{Key: row[colIdx].I, RID: rid})
	}
	if err := sc.Err(); err != nil {
		sc.Close()
		return nil, err
	}
	sc.Close()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	tree, err := btree.BulkLoad(c.pool, entries)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Name:   fmt.Sprintf("%s_%s_idx", t.Name, strings.ToLower(column)),
		Table:  t.Name,
		Column: strings.ToLower(column),
		Tree:   tree,
	}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

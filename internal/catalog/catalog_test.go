package catalog

import (
	"testing"

	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func testCatalog() *Catalog {
	clock := vclock.New(vclock.DefaultCosts(), nil)
	return New(storage.NewBufferPool(storage.NewDisk(clock), 256))
}

func custSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "name", Type: tuple.String},
		tuple.Column{Name: "acctbal", Type: tuple.Float},
	)
}

func TestCreateInsertAnalyze(t *testing.T) {
	c := testCatalog()
	tb, err := c.CreateTable("Customer", custSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("CUSTOMER", custSchema()); err == nil {
		t.Fatal("duplicate table (case-insensitive) must fail")
	}
	for i := 0; i < 500; i++ {
		row := tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewString("n"), tuple.NewFloat(1.5)}
		if err := c.Insert(tb, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Heap.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if tb.Stats == nil || tb.Stats.RowCount != 500 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
	got, err := c.Table("customer")
	if err != nil || got != tb {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("missing table must error")
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
}

func TestInsertValidation(t *testing.T) {
	c := testCatalog()
	tb, _ := c.CreateTable("t", custSchema())
	if err := c.Insert(tb, tuple.Tuple{tuple.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	bad := tuple.Tuple{tuple.NewString("x"), tuple.NewString("n"), tuple.NewFloat(1)}
	if err := c.Insert(tb, bad); err == nil {
		t.Fatal("type mismatch must fail")
	}
}

func TestCreateIndexAndSearch(t *testing.T) {
	c := testCatalog()
	tb, _ := c.CreateTable("orders", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
	))
	for i := 0; i < 2000; i++ {
		c.Insert(tb, tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 100))})
	}
	tb.Heap.Sync()
	ix, err := c.CreateIndex(tb, "custkey")
	if err != nil {
		t.Fatal(err)
	}
	if tb.IndexOn("CUSTKEY") != ix {
		t.Fatal("IndexOn must be case-insensitive")
	}
	rids, err := ix.Tree.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 20 {
		t.Fatalf("index search found %d rids, want 20", len(rids))
	}
	// Verify a rid resolves to a matching row.
	rec, err := tb.Heap.Fetch(rids[0])
	if err != nil {
		t.Fatal(err)
	}
	row, err := tuple.Decode(rec, 2)
	if err != nil || row[1].I != 7 {
		t.Fatalf("rid fetch: %v %v", row, err)
	}
	if _, err := c.CreateIndex(tb, "custkey"); err == nil {
		t.Fatal("duplicate index must fail")
	}
	if _, err := c.CreateIndex(tb, "nocol"); err == nil {
		t.Fatal("index on missing column must fail")
	}
}

func TestIndexOnNonIntRejected(t *testing.T) {
	c := testCatalog()
	tb, _ := c.CreateTable("t", custSchema())
	if _, err := c.CreateIndex(tb, "name"); err == nil {
		t.Fatal("index on TEXT column must fail")
	}
}

func TestDropTable(t *testing.T) {
	c := testCatalog()
	tb, _ := c.CreateTable("t", tuple.NewSchema(tuple.Column{Name: "k", Type: tuple.Int}))
	for i := 0; i < 10; i++ {
		c.Insert(tb, tuple.Tuple{tuple.NewInt(int64(i))})
	}
	tb.Heap.Sync()
	if _, err := c.CreateIndex(tb, "k"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	if err := c.DropTable("t"); err == nil {
		t.Fatal("double drop must fail")
	}
}

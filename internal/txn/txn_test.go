package txn

import (
	"fmt"
	"math"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func setup(t *testing.T, rows int) (*catalog.Catalog, *vclock.Clock, []storage.RID) {
	t.Helper()
	clock := vclock.New(vclock.Costs{SeqPage: 0.01, RandPage: 0.08, CPUTuple: 1e-4}, nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 256))
	tb, err := cat.CreateTable("accounts", tuple.NewSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "balance", Type: tuple.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]storage.RID, 0, rows)
	for i := 0; i < rows; i++ {
		row := tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewFloat(100)}
		rid, err := tb.Heap.Append(row.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tb.Heap.Sync(); err != nil {
		t.Fatal(err)
	}
	return cat, clock, rids
}

func balance(t *testing.T, cat *catalog.Catalog, rid storage.RID) float64 {
	t.Helper()
	tb, _ := cat.Table("accounts")
	rec, err := tb.Heap.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tuple.Decode(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	return row[1].F
}

func newBalanceRec(id int64, bal float64) []byte {
	return tuple.Tuple{tuple.NewInt(id), tuple.NewFloat(bal)}.Encode(nil)
}

func TestCommitKeepsUpdates(t *testing.T) {
	cat, clock, rids := setup(t, 100)
	m := NewManager(cat, clock)
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		if err := tx.Update("accounts", rid, newBalanceRec(int64(i), 42)); err != nil {
			t.Fatal(err)
		}
	}
	if tx.PendingUndo() != 100 {
		t.Fatalf("pending = %d", tx.PendingUndo())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, cat, rids[7]); got != 42 {
		t.Fatalf("committed balance = %g", got)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
}

func TestRollbackRestoresBeforeImages(t *testing.T) {
	cat, clock, rids := setup(t, 500)
	m := NewManager(cat, clock)
	tx, _ := m.Begin()
	for i, rid := range rids {
		if err := tx.Update("accounts", rid, newBalanceRec(int64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := balance(t, cat, rids[9]); got != 9 {
		t.Fatalf("pre-rollback balance = %g", got)
	}
	if err := tx.Rollback(nil); err != nil {
		t.Fatal(err)
	}
	for _, rid := range []storage.RID{rids[0], rids[9], rids[499]} {
		if got := balance(t, cat, rid); got != 100 {
			t.Fatalf("rolled-back balance = %g, want 100", got)
		}
	}
	if err := tx.Rollback(nil); err == nil {
		t.Fatal("double rollback must fail")
	}
}

func TestSequentialTransactions(t *testing.T) {
	cat, clock, rids := setup(t, 10)
	m := NewManager(cat, clock)
	tx1, _ := m.Begin()
	if _, err := m.Begin(); err == nil {
		t.Fatal("two open transactions must fail")
	}
	tx1.Update("accounts", rids[0], newBalanceRec(0, 1))
	tx1.Commit()
	tx2, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2.Update("accounts", rids[0], newBalanceRec(0, 2))
	if err := tx2.Rollback(nil); err != nil {
		t.Fatal(err)
	}
	// tx1's commit survives; tx2's update is undone back to tx1's value.
	if got := balance(t, cat, rids[0]); got != 1 {
		t.Fatalf("balance = %g, want 1", got)
	}
}

func TestUpdateErrors(t *testing.T) {
	cat, clock, rids := setup(t, 5)
	m := NewManager(cat, clock)
	tx, _ := m.Begin()
	if err := tx.Update("missing", rids[0], newBalanceRec(0, 1)); err == nil {
		t.Fatal("unknown table must fail")
	}
	// Wrong length (string value changes encoding size).
	bad := tuple.Tuple{tuple.NewInt(0), tuple.NewFloat(1), tuple.NewString("extra")}.Encode(nil)
	if err := tx.Update("accounts", rids[0], bad); err == nil {
		t.Fatal("length-changing update must fail")
	}
	tx.Commit()
	if err := tx.Update("accounts", rids[0], newBalanceRec(0, 1)); err == nil {
		t.Fatal("update after commit must fail")
	}
}

// The [15] method: the monitor's remaining-time estimate converges to
// the actual remaining rollback time.
func TestRollbackMonitorProgress(t *testing.T) {
	cat, clock, rids := setup(t, 4000)
	m := NewManager(cat, clock)
	tx, _ := m.Begin()
	for i, rid := range rids {
		if err := tx.Update("accounts", rid, newBalanceRec(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	mon := NewRollbackMonitor(clock, 0.1, 0.5)
	start := clock.Now()
	if err := tx.Rollback(mon); err != nil {
		t.Fatal(err)
	}
	actual := clock.Now() - start
	snaps := mon.Snapshots()
	if len(snaps) < 4 {
		t.Fatalf("only %d rollback snapshots over %.2fs", len(snaps), actual)
	}
	final := snaps[len(snaps)-1]
	if !final.Finished || final.Undone != 4000 || final.Percent != 100 || final.RemainingSeconds != 0 {
		t.Fatalf("final snapshot: %+v", final)
	}
	// Mid-rollback estimates track the truth.
	for _, s := range snaps {
		if s.Finished || s.Time-start < actual*0.2 {
			continue
		}
		actualRemaining := actual - (s.Time - start)
		if actualRemaining < 0.05 {
			continue
		}
		if math.Abs(s.RemainingSeconds-actualRemaining)/actualRemaining > 0.35 {
			t.Fatalf("estimate %.3fs vs actual %.3fs at t=%.2f",
				s.RemainingSeconds, actualRemaining, s.Time-start)
		}
		// Percent is monotone in undone count.
		if s.Percent < 0 || s.Percent > 100 {
			t.Fatalf("percent out of range: %+v", s)
		}
	}
}

// Interference slows the rollback and the monitor notices: remaining
// estimates rise after the slowdown begins.
func TestRollbackMonitorUnderLoad(t *testing.T) {
	cat, clock, rids := setup(t, 4000)
	m := NewManager(cat, clock)
	tx, _ := m.Begin()
	for i, rid := range rids {
		tx.Update("accounts", rid, newBalanceRec(int64(i), 0))
	}
	// The pool holds the whole table, so this rollback is CPU-bound;
	// a CPU hog slows it 6x shortly after it begins.
	at := clock.Now()
	prof, err := vclock.NewLoadProfile(vclock.Interval{Start: at + 0.2, End: at + 1e6, CPUFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	clock.SetProfile(prof)
	mon := NewRollbackMonitor(clock, 0.1, 0.3)
	if err := tx.Rollback(mon); err != nil {
		t.Fatal(err)
	}
	snaps := mon.Snapshots()
	var before, after float64
	for _, s := range snaps {
		if s.Finished {
			continue
		}
		if s.Time < at+0.2 && s.SpeedRecPerSec > 0 {
			before = s.SpeedRecPerSec
		}
		if s.Time > at+0.7 && after == 0 && s.SpeedRecPerSec > 0 {
			after = s.SpeedRecPerSec
		}
	}
	if before == 0 || after == 0 {
		t.Skipf("not enough samples around the slowdown (%d snaps)", len(snaps))
	}
	if after > before*0.6 {
		t.Fatalf("monitor should observe the slowdown: before %.0f rec/s, after %.0f rec/s", before, after)
	}
}

func TestMonitorCurrentBeforeStart(t *testing.T) {
	clock := vclock.New(vclock.DefaultCosts(), nil)
	mon := NewRollbackMonitor(clock, 0, 0)
	s := mon.Current()
	if s.Total != 0 || s.Percent != 0 {
		t.Fatalf("pre-start snapshot: %+v", s)
	}
	_ = fmt.Sprintf
}

package txn

import (
	"math"

	"progressdb/internal/vclock"
)

// RollbackSnapshot is one refresh of the rollback progress display:
// the [15] method's outputs.
type RollbackSnapshot struct {
	// Time is the virtual time of the snapshot.
	Time float64
	// Total is the number of update log records to roll back.
	Total int
	// Undone counts records rolled back so far.
	Undone int
	// Percent completed.
	Percent float64
	// SpeedRecPerSec is the observed rollback speed over the trailing
	// window.
	SpeedRecPerSec float64
	// RemainingSeconds is remaining records over observed speed.
	RemainingSeconds float64
	// Finished marks the final snapshot.
	Finished bool
}

// RollbackMonitor estimates remaining rollback time by monitoring the
// number of update log records not yet rolled back and the speed at
// which records are being rolled back — the method of the paper's
// reference [15], built on the same windowed speed estimation as the
// query progress indicator.
type RollbackMonitor struct {
	clock  *vclock.Clock
	window float64
	period float64

	total  int
	undone int
	startT float64

	samples []rollbackSample
	ticker  *vclock.Ticker

	snapshots   []RollbackSnapshot
	subscribers []func(RollbackSnapshot)
	finished    bool
}

type rollbackSample struct {
	t   float64
	cum int
}

// NewRollbackMonitor creates a monitor sampling every period virtual
// seconds with the given speed window (both default to the query
// indicator's 10 s when <= 0).
func NewRollbackMonitor(clock *vclock.Clock, period, window float64) *RollbackMonitor {
	if period <= 0 {
		period = 10
	}
	if window <= 0 {
		window = 10
	}
	return &RollbackMonitor{clock: clock, window: window, period: period}
}

// Subscribe registers fn for every snapshot.
func (m *RollbackMonitor) Subscribe(fn func(RollbackSnapshot)) {
	m.subscribers = append(m.subscribers, fn)
}

// Snapshots returns the recorded history.
func (m *RollbackMonitor) Snapshots() []RollbackSnapshot { return m.snapshots }

func (m *RollbackMonitor) begin(total int) {
	m.total = total
	m.undone = 0
	m.finished = false
	m.startT = m.clock.Now()
	m.samples = append(m.samples[:0], rollbackSample{t: m.startT})
	m.ticker = m.clock.AddTicker(m.period, func(float64) { m.snapshot(false) })
}

func (m *RollbackMonitor) recordUndone() {
	m.undone++
	// Sampling at the monitor period is driven by the ticker; keep a
	// fine-grained sample per record for the window (records are coarse
	// events already).
	m.samples = append(m.samples, rollbackSample{t: m.clock.Now(), cum: m.undone})
	cutoff := m.clock.Now() - m.window
	firstKeep := 0
	for i := len(m.samples) - 1; i >= 0; i-- {
		if m.samples[i].t <= cutoff {
			firstKeep = i
			break
		}
	}
	m.samples = m.samples[firstKeep:]
}

func (m *RollbackMonitor) finish() {
	m.finished = true
	m.snapshot(true)
	if m.ticker != nil {
		m.clock.RemoveTicker(m.ticker)
		m.ticker = nil
	}
}

// Current returns an on-demand snapshot.
func (m *RollbackMonitor) Current() RollbackSnapshot { return m.build() }

func (m *RollbackMonitor) snapshot(final bool) {
	s := m.build()
	s.Finished = final
	m.snapshots = append(m.snapshots, s)
	for _, fn := range m.subscribers {
		fn(s)
	}
}

func (m *RollbackMonitor) build() RollbackSnapshot {
	now := m.clock.Now()
	s := RollbackSnapshot{
		Time:   now,
		Total:  m.total,
		Undone: m.undone,
	}
	if m.total > 0 {
		s.Percent = 100 * float64(m.undone) / float64(m.total)
	}
	s.SpeedRecPerSec = m.speed(now)
	remaining := m.total - m.undone
	switch {
	case remaining <= 0:
		s.RemainingSeconds = 0
	case s.SpeedRecPerSec > 0:
		s.RemainingSeconds = float64(remaining) / s.SpeedRecPerSec
	default:
		s.RemainingSeconds = math.Inf(1)
	}
	return s
}

func (m *RollbackMonitor) speed(now float64) float64 {
	elapsed := now - m.startT
	if elapsed <= 0 {
		return 0
	}
	if len(m.samples) == 0 || elapsed < m.window {
		return float64(m.undone) / elapsed
	}
	base := m.samples[0]
	dt := now - base.t
	if dt <= 0 {
		return float64(m.undone) / elapsed
	}
	return float64(m.undone-base.cum) / dt
}

// Package txn adds a minimal update path — transactions with a
// before-image undo log — so the engine can reproduce the rollback-
// progress technique the paper's Section 2 cites ([15], Larry's
// "Monitoring Rollback Progress") and says "can be integrated into the
// progress indicators for RDBMSs".
//
// The method: a transaction's updates append undo records to a log;
// rolling back walks the log backwards restoring before-images. The
// monitor tracks how many update log records have not yet been rolled
// back and the speed at which they are being rolled back, and estimates
// the remaining rollback time — the same windowed-speed machinery the
// query indicator uses.
package txn

import (
	"encoding/binary"
	"fmt"

	"progressdb/internal/catalog"
	"progressdb/internal/storage"
	"progressdb/internal/vclock"
)

// undoRecord is one logged update: enough to restore the before-image.
type undoRecord struct {
	table  string
	rid    storage.RID
	before []byte
}

// Manager owns the undo log for one engine.
type Manager struct {
	cat   *catalog.Catalog
	clock *vclock.Clock
	log   *storage.HeapFile // persisted undo images (for I/O realism)
	undo  []undoRecord
	open  bool
}

// NewManager creates a transaction manager over the catalog.
func NewManager(cat *catalog.Catalog, clock *vclock.Clock) *Manager {
	return &Manager{
		cat:   cat,
		clock: clock,
		log:   storage.CreateHeapFile(cat.Pool()),
	}
}

// Tx is one open transaction. Only one may be open at a time (the engine
// is single-threaded, like the paper's per-query execution).
type Tx struct {
	mgr   *Manager
	start int
	done  bool
}

// Begin opens a transaction.
func (m *Manager) Begin() (*Tx, error) {
	if m.open {
		return nil, fmt.Errorf("txn: a transaction is already open")
	}
	m.open = true
	return &Tx{mgr: m, start: len(m.undo)}, nil
}

// PendingUndo returns the number of update log records this transaction
// has produced so far.
func (tx *Tx) PendingUndo() int { return len(tx.mgr.undo) - tx.start }

// Update overwrites the record at rid in table, logging its before-image.
// The new record must have the old record's length.
func (tx *Tx) Update(table string, rid storage.RID, newRec []byte) error {
	if tx.done {
		return fmt.Errorf("txn: transaction already finished")
	}
	t, err := tx.mgr.cat.Table(table)
	if err != nil {
		return err
	}
	before, err := t.Heap.Fetch(rid)
	if err != nil {
		return err
	}
	// Persist the undo image (write I/O charged through the pool), keep
	// the in-memory index for replay.
	if _, err := tx.mgr.log.Append(encodeUndo(table, rid, before)); err != nil {
		return err
	}
	tx.mgr.undo = append(tx.mgr.undo, undoRecord{table: table, rid: rid, before: before})
	tx.mgr.clock.ChargeCPU(2)
	return t.Heap.UpdateAt(rid, newRec)
}

// Commit finishes the transaction, keeping its updates.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("txn: transaction already finished")
	}
	tx.done = true
	tx.mgr.open = false
	if err := tx.mgr.log.Sync(); err != nil {
		return err
	}
	// Committed updates no longer need their undo records.
	tx.mgr.undo = tx.mgr.undo[:tx.start]
	return nil
}

// Rollback undoes the transaction's updates newest-first, reporting each
// undone record to mon (which may be nil).
func (tx *Tx) Rollback(mon *RollbackMonitor) error {
	if tx.done {
		return fmt.Errorf("txn: transaction already finished")
	}
	tx.done = true
	tx.mgr.open = false
	if err := tx.mgr.log.Sync(); err != nil {
		return err
	}
	if mon != nil {
		mon.begin(tx.PendingUndo())
	}
	for i := len(tx.mgr.undo) - 1; i >= tx.start; i-- {
		u := tx.mgr.undo[i]
		t, err := tx.mgr.cat.Table(u.table)
		if err != nil {
			return err
		}
		if err := t.Heap.UpdateAt(u.rid, u.before); err != nil {
			return err
		}
		tx.mgr.clock.ChargeCPU(2)
		// Re-reading the log record is part of a real rollback's cost.
		tx.mgr.clock.ChargeRandIO(0) // page access already charged via pool
		if mon != nil {
			mon.recordUndone()
		}
	}
	tx.mgr.undo = tx.mgr.undo[:tx.start]
	if mon != nil {
		mon.finish()
	}
	return nil
}

func encodeUndo(table string, rid storage.RID, before []byte) []byte {
	buf := make([]byte, 0, 2+len(table)+10+len(before))
	buf = append(buf, byte(len(table)))
	buf = append(buf, table...)
	var b [10]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(rid.Page.File))
	binary.LittleEndian.PutUint32(b[4:], uint32(rid.Page.Num))
	binary.LittleEndian.PutUint16(b[8:], rid.Slot)
	buf = append(buf, b[:]...)
	return append(buf, before...)
}

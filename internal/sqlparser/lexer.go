// Package sqlparser implements a lexer and recursive-descent parser for
// the select-project-join SQL dialect the paper's techniques cover:
//
//	SELECT <select-list> FROM <table [alias]>, ... [WHERE <conjunction>]
//
// The select list is * or a comma-separated list of (optionally qualified)
// column references; the WHERE clause is a conjunction of comparisons
// whose operands are column references, numeric or string literals, and
// scalar function calls such as absolute(l.partkey).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp // = <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		ch := l.src[l.pos]
		switch {
		case ch == ',':
			l.pos++
			l.emit(tokComma, ",", start)
		case ch == '.':
			l.pos++
			l.emit(tokDot, ".", start)
		case ch == '(':
			l.pos++
			l.emit(tokLParen, "(", start)
		case ch == ')':
			l.pos++
			l.emit(tokRParen, ")", start)
		case ch == '*':
			l.pos++
			l.emit(tokStar, "*", start)
		case ch == ';':
			l.pos++ // a trailing semicolon is permitted and ignored
		case ch == '=':
			l.pos++
			l.emit(tokOp, "=", start)
		case ch == '<':
			l.pos++
			switch {
			case l.peekByte() == '>':
				l.pos++
				l.emit(tokOp, "<>", start)
			case l.peekByte() == '=':
				l.pos++
				l.emit(tokOp, "<=", start)
			default:
				l.emit(tokOp, "<", start)
			}
		case ch == '>':
			l.pos++
			if l.peekByte() == '=' {
				l.pos++
				l.emit(tokOp, ">=", start)
			} else {
				l.emit(tokOp, ">", start)
			}
		case ch == '!':
			l.pos++
			if l.peekByte() == '=' {
				l.pos++
				l.emit(tokOp, "<>", start) // != is an alias for <>
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at position %d", start)
			}
		case ch == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case ch == '-' || unicode.IsDigit(rune(ch)):
			n, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			l.emit(tokNumber, n, start)
		case isIdentStart(ch):
			l.lexIdent()
			l.emit(tokIdent, l.src[start:l.pos], start)
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", ch, start)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if ch == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(ch)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string starting at position %d", start)
}

func (l *lexer) lexNumber() (string, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || !unicode.IsDigit(rune(l.src[l.pos])) {
			return "", fmt.Errorf("sql: lone '-' at position %d", start)
		}
	}
	seenDot := false
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		if unicode.IsDigit(rune(ch)) {
			l.pos++
			continue
		}
		if ch == '.' && !seenDot && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos], nil
}

func (l *lexer) lexIdent() {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
}

func isIdentPart(ch byte) bool {
	return isIdentStart(ch) || (ch >= '0' && ch <= '9')
}

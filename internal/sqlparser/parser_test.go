package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseQ1(t *testing.T) {
	stmt := mustParse(t, "select * from lineitem;")
	if !stmt.Star || len(stmt.From) != 1 || stmt.From[0].Table != "lineitem" || stmt.Where != nil {
		t.Fatalf("Q1 parse: %+v", stmt)
	}
}

// The paper's Q2, verbatim.
func TestParseQ2(t *testing.T) {
	stmt := mustParse(t, `
		select c.custkey, c.acctbal, o.orderkey, o.totalprice, l.discount, l.extendedprice
		from customer c, orders o, lineitem l
		where c.custkey=o.custkey and o.orderkey=l.orderkey and absolute(l.partkey)>0`)
	if len(stmt.Items) != 6 {
		t.Fatalf("Q2 select list: %v", stmt.Items)
	}
	if stmt.Items[0].Col != (ColumnRef{Qualifier: "c", Column: "custkey"}) || stmt.Items[0].Agg != "" {
		t.Fatalf("item 0 = %+v", stmt.Items[0])
	}
	if len(stmt.From) != 3 || stmt.From[1].Binding() != "o" {
		t.Fatalf("Q2 from: %+v", stmt.From)
	}
	// Where must flatten to three conjuncts with the function call last.
	var conjuncts []Expr
	var walk func(Expr)
	walk = func(e Expr) {
		if a, ok := e.(AndExpr); ok {
			walk(a.L)
			walk(a.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	walk(stmt.Where)
	if len(conjuncts) != 3 {
		t.Fatalf("Q2 conjuncts: %d", len(conjuncts))
	}
	last, ok := conjuncts[2].(Comparison)
	if !ok {
		t.Fatalf("conjunct 2: %T", conjuncts[2])
	}
	fc, ok := last.L.(FuncCall)
	if !ok || fc.Name != "absolute" || len(fc.Args) != 1 {
		t.Fatalf("function call: %+v", last.L)
	}
}

// The paper's Q3 (self-join with alias o1, o2).
func TestParseQ3SelfJoin(t *testing.T) {
	stmt := mustParse(t, `
		select c.custkey, c.acctbal, o1.orderkey, o1.totalprice, o2.totalprice
		from customer c, orders o1, orders o2
		where c.custkey=o1.custkey and o1.orderkey=o2.orderkey and c.nationkey<10`)
	if len(stmt.From) != 3 {
		t.Fatalf("from: %+v", stmt.From)
	}
	if stmt.From[1].Binding() != "o1" || stmt.From[2].Binding() != "o2" {
		t.Fatalf("aliases: %+v", stmt.From)
	}
	if stmt.From[1].Table != "orders" || stmt.From[2].Table != "orders" {
		t.Fatal("self-join tables wrong")
	}
}

// The paper's Q5 uses <>.
func TestParseQ5NotEquals(t *testing.T) {
	stmt := mustParse(t, `select * from customer_subset1 c1, customer_subset2 c2 where c1.custkey<>c2.custkey`)
	cmp, ok := stmt.Where.(Comparison)
	if !ok || cmp.Op != "<>" {
		t.Fatalf("where: %+v", stmt.Where)
	}
	// != is an alias.
	stmt2 := mustParse(t, `select * from a, b where a.x != b.y`)
	if stmt2.Where.(Comparison).Op != "<>" {
		t.Fatal("!= must normalize to <>")
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		stmt := mustParse(t, "select * from t where a "+op+" 5")
		if got := stmt.Where.(Comparison).Op; got != op {
			t.Fatalf("op %q parsed as %q", op, got)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "select * from t where a = -42 and b = 2.5 and c = 'O''Brien'")
	var lits []Expr
	var walk func(Expr)
	walk = func(e Expr) {
		if a, ok := e.(AndExpr); ok {
			walk(a.L)
			walk(a.R)
			return
		}
		lits = append(lits, e.(Comparison).R)
	}
	walk(stmt.Where)
	if lits[0].(IntLit).V != -42 {
		t.Fatalf("int lit: %+v", lits[0])
	}
	if lits[1].(FloatLit).V != 2.5 {
		t.Fatalf("float lit: %+v", lits[1])
	}
	if lits[2].(StrLit).V != "O'Brien" {
		t.Fatalf("string lit: %+v", lits[2])
	}
}

func TestParseAsAlias(t *testing.T) {
	stmt := mustParse(t, "select * from customer as c")
	if stmt.From[0].Alias != "c" {
		t.Fatalf("AS alias: %+v", stmt.From[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"insert into t values (1)",
		"select from t",
		"select a from",
		"select a, from t",
		"select * from t where",
		"select * from t where a",
		"select * from t where a = ",
		"select * from t where a = 5 and",
		"select * from t where a = 'unterminated",
		"select * from t where a @ 5",
		"select * from t where a ! 5",
		"select * from t where a = -",
		"select * from t where absolute(a = 5",
		"select t.* from t",
		"select select from t",
		"select * from select",
		"select * from t where select = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM lineitem",
		"SELECT c.custkey, o.orderkey FROM customer c, orders o WHERE c.custkey = o.custkey",
		"SELECT * FROM t WHERE absolute(x) > 0 AND y < 10",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		re, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, stmt.String(), err)
		}
		if re.String() != stmt.String() {
			t.Fatalf("round trip: %q != %q", re.String(), stmt.String())
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	stmt := mustParse(t, "SELECT C.CustKey FROM Customer C WHERE C.NationKey < 10")
	if stmt.Items[0].Col.Qualifier != "c" || stmt.Items[0].Col.Column != "custkey" {
		t.Fatalf("identifiers must lower-case: %+v", stmt.Items[0])
	}
	if !strings.EqualFold(stmt.From[0].Table, "customer") {
		t.Fatalf("table: %+v", stmt.From[0])
	}
}

func TestFunctionWithMultipleArgs(t *testing.T) {
	stmt := mustParse(t, "select * from t where mod(a, 10) = 3")
	fc := stmt.Where.(Comparison).L.(FuncCall)
	if fc.Name != "mod" || len(fc.Args) != 2 {
		t.Fatalf("mod call: %+v", fc)
	}
}

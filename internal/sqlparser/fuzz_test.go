package sqlparser

import "testing"

// FuzzParseStatement throws arbitrary byte strings at the statement
// parser and enforces two invariants:
//
//  1. No panics: the parser's only failure mode is an error. (The fuzz
//     engine converts any panic into a crasher automatically.)
//  2. Print fixpoint: for every accepted input, st.String() must
//     re-parse, and the re-parse must print identically. The printed
//     form is what EXPLAIN output, progressd logs, and tests quote, so
//     it must itself be valid input. ASTs are NOT required to be
//     identical across the round trip (e.g. an alias equal to its
//     table name is dropped by the printer); the printed form is the
//     canonical one.
//
// Historical catches, now pinned as seeds: FloatLit printed tiny
// magnitudes as "1e-07" (exponent notation the lexer rejects) and
// large magnitudes as dotless out-of-int64-range digit runs.
func FuzzParseStatement(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"select l.partkey, l.qty from lineitem l where l.qty >= 10 and l.flag = 'A'",
		"EXPLAIN SELECT a FROM t WHERE a <> 3",
		"EXPLAIN ANALYZE SELECT count(*), sum(v) FROM t GROUP BY k ORDER BY k DESC LIMIT 5",
		"SELECT a, b FROM r, s WHERE r.id = s.id AND r.v < 0.0000001",
		"SELECT a FROM t WHERE v = 123456789012345678901234567890.5",
		"SELECT a FROM t WHERE v = -7",
		"SELECT a FROM t WHERE name = 'O''Brien'",
		"SELECT a FROM t WHERE absolute(t.v) <= 2.5",
		"SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.id = t.id)",
		"SELECT a FROM t WHERE k NOT IN (SELECT k FROM dead)",
		"SELECT T.a FROM tab T ORDER BY T.a;",
		"EXPLAIN",
		"SELECT",
		"SELECT * FROM t WHERE x != 1",
		"SELECT * FROM t WHERE x = ''",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ParseStatement(src)
		if err != nil {
			return // rejection is always a valid outcome
		}
		printed := st.String()
		st2, err := ParseStatement(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse\n input: %q\nprinted: %q\n  error: %v",
				src, printed, err)
		}
		if again := st2.String(); again != printed {
			t.Fatalf("print not a fixpoint\n input: %q\n first: %q\nsecond: %q",
				src, printed, again)
		}
	})
}

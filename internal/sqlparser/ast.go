package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// SelectStmt is a parsed SPJ query, optionally with aggregation,
// ordering, and a row limit.
type SelectStmt struct {
	// Star is true for SELECT *.
	Star bool
	// Items are the select-list entries when Star is false.
	Items []SelectItem
	// From lists the referenced tables with optional aliases.
	From []TableRef
	// Where is the conjunction of predicates, nil if absent.
	Where Expr
	// GroupBy lists grouping columns (may be empty even with aggregates,
	// for a single global group).
	GroupBy []ColumnRef
	// OrderBy lists output ordering keys.
	OrderBy []OrderItem
	// Limit caps the result rows; nil means no limit.
	Limit *int64
}

// SelectItem is one select-list entry: either a plain column or an
// aggregate over a column (or * for COUNT(*)).
type SelectItem struct {
	// Agg is "", or one of "count", "sum", "avg", "min", "max".
	Agg string
	// AggStar marks COUNT(*).
	AggStar bool
	// Col is the column (the aggregate argument when Agg != "").
	Col ColumnRef
}

func (it SelectItem) String() string {
	if it.Agg == "" {
		return it.Col.String()
	}
	if it.AggStar {
		return it.Agg + "(*)"
	}
	return it.Agg + "(" + it.Col.String() + ")"
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// TableRef is one FROM-list entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Binding returns the name predicates use to refer to this table.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Expr is a source-level scalar expression (unbound: columns are names,
// not positions).
type Expr interface {
	fmt.Stringer
	sqlExpr()
}

// ColumnRef is a possibly-qualified column name.
type ColumnRef struct {
	Qualifier string // table alias, "" if unqualified
	Column    string
}

func (ColumnRef) sqlExpr() {}

func (c ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (IntLit) sqlExpr()         {}
func (l IntLit) String() string { return fmt.Sprintf("%d", l.V) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (FloatLit) sqlExpr() {}

// String renders the literal in plain decimal notation ('f', shortest
// exact form). %g would switch to exponent notation for small or large
// magnitudes, which the lexer does not accept, breaking the
// parse→print→parse fixpoint (found by FuzzParseStatement on
// "0.0000001"). Large magnitudes print dotless under 'f'; the ".0"
// suffix keeps them lexing as floats rather than out-of-range ints.
func (l FloatLit) String() string {
	s := strconv.FormatFloat(l.V, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// StrLit is a string literal.
type StrLit struct{ V string }

func (StrLit) sqlExpr()         {}
func (l StrLit) String() string { return "'" + strings.ReplaceAll(l.V, "'", "''") + "'" }

// FuncCall is a scalar function application.
type FuncCall struct {
	Name string
	Args []Expr
}

func (FuncCall) sqlExpr() {}

func (f FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Comparison is <left> op <right> with op in =, <>, <, <=, >, >=.
type Comparison struct {
	Op   string
	L, R Expr
}

func (Comparison) sqlExpr()         {}
func (c Comparison) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// ExistsExpr is [NOT] EXISTS (subquery), possibly correlated — the
// paper's Section 6 names correlated subqueries as an open challenge for
// progress indicators; we support one level of them.
type ExistsExpr struct {
	Not bool
	Sub *SelectStmt
}

func (ExistsExpr) sqlExpr() {}

func (e ExistsExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return not + "EXISTS (" + e.Sub.String() + ")"
}

// InExpr is <column> [NOT] IN (subquery).
type InExpr struct {
	Col ColumnRef
	Not bool
	Sub *SelectStmt
}

func (InExpr) sqlExpr() {}

func (e InExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return e.Col.String() + " " + not + "IN (" + e.Sub.String() + ")"
}

// AndExpr is a conjunction.
type AndExpr struct {
	L, R Expr
}

func (AndExpr) sqlExpr()         {}
func (a AndExpr) String() string { return fmt.Sprintf("%s AND %s", a.L, a.R) }

// String renders the statement back to SQL.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && !strings.EqualFold(t.Alias, t.Table) {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.String()
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SPJ SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// Statement is a parsed top-level statement: a SELECT, optionally
// prefixed with EXPLAIN or EXPLAIN ANALYZE.
type Statement struct {
	// Explain is true for both EXPLAIN and EXPLAIN ANALYZE.
	Explain bool
	// Analyze is true for EXPLAIN ANALYZE (run the query, then render the
	// plan annotated with actuals).
	Analyze bool
	// Select is the underlying query.
	Select *SelectStmt
}

// String renders the statement back to SQL. The rendering is a print
// fixpoint: ParseStatement(st.String()) yields a statement that prints
// identically (fuzzed in FuzzParseStatement).
func (st *Statement) String() string {
	prefix := ""
	if st.Explain {
		prefix = "EXPLAIN "
		if st.Analyze {
			prefix = "EXPLAIN ANALYZE "
		}
	}
	return prefix + st.Select.String()
}

// ParseStatement parses one top-level statement, accepting an optional
// EXPLAIN [ANALYZE] prefix before the SELECT.
func ParseStatement(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st := &Statement{}
	if p.atKeyword("explain") {
		p.next()
		st.Explain = true
		if p.atKeyword("analyze") {
			p.next()
			st.Analyze = true
		}
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.cur())
	}
	st.Select = sel
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind) bool { return p.cur().kind == kind }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %s", strings.ToUpper(kw), p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if !p.at(kind) {
		return token{}, fmt.Errorf("sql: expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "as": true,
	"group": true, "by": true, "order": true, "limit": true,
	"asc": true, "desc": true, "exists": true, "not": true, "in": true,
}

// aggFuncs are the aggregate functions allowed in the select list.
var aggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.at(tokStar) {
		p.next()
		stmt.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.at(tokComma) {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if p.atKeyword("where") {
		p.next()
		w, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.atKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.at(tokComma) {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.atKeyword("desc") {
				p.next()
				item.Desc = true
			} else if p.atKeyword("asc") {
				p.next()
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.at(tokComma) {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("limit") {
		p.next()
		tok, err := p.expect(tokNumber, "row count after LIMIT")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %s", tok)
		}
		stmt.Limit = &n
	}
	return stmt, nil
}

// parseSelectItem parses a column reference or aggregate call.
func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.at(tokIdent) && aggFuncs[strings.ToLower(p.cur().text)] && p.toks[p.i+1].kind == tokLParen {
		agg := strings.ToLower(p.next().text)
		p.next() // (
		item := SelectItem{Agg: agg}
		if p.at(tokStar) {
			if agg != "count" {
				return SelectItem{}, fmt.Errorf("sql: %s(*) is not valid (only count(*))", agg)
			}
			p.next()
			item.AggStar = true
		} else {
			col, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return ColumnRef{}, err
	}
	if reservedWords[strings.ToLower(t.text)] {
		return ColumnRef{}, fmt.Errorf("sql: reserved word %s used as column", t)
	}
	if p.at(tokDot) {
		p.next()
		if p.at(tokStar) {
			return ColumnRef{}, fmt.Errorf("sql: qualified * is not supported")
		}
		col, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Qualifier: strings.ToLower(t.text), Column: strings.ToLower(col.text)}, nil
	}
	return ColumnRef{Column: strings.ToLower(t.text)}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return TableRef{}, err
	}
	if reservedWords[strings.ToLower(t.text)] {
		return TableRef{}, fmt.Errorf("sql: reserved word %s used as table", t)
	}
	ref := TableRef{Table: strings.ToLower(t.text)}
	if p.atKeyword("as") {
		p.next()
	}
	if p.at(tokIdent) && !reservedWords[strings.ToLower(p.cur().text)] {
		ref.Alias = strings.ToLower(p.next().text)
	}
	return ref, nil
}

func (p *parser) parseConjunction() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.next()
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = AndExpr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseComparison() (Expr, error) {
	// [NOT] EXISTS (subquery)
	not := false
	if p.atKeyword("not") {
		p.next()
		not = true
		if !p.atKeyword("exists") {
			return nil, fmt.Errorf("sql: expected EXISTS after NOT, found %s", p.cur())
		}
	}
	if p.atKeyword("exists") {
		p.next()
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return ExistsExpr{Not: not, Sub: sub}, nil
	}

	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// <column> [NOT] IN (subquery)
	if p.atKeyword("in") || p.atKeyword("not") {
		notIn := false
		if p.atKeyword("not") {
			p.next()
			notIn = true
			if !p.atKeyword("in") {
				return nil, fmt.Errorf("sql: expected IN after NOT, found %s", p.cur())
			}
		}
		p.next() // IN
		col, ok := l.(ColumnRef)
		if !ok {
			return nil, fmt.Errorf("sql: the left side of IN must be a column")
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return InExpr{Col: col, Not: notIn, Sub: sub}, nil
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return Comparison{Op: op.text, L: l, R: r}, nil
}

// parseSubquery parses "(select ...)".
func (p *parser) parseSubquery() (*SelectStmt, error) {
	if _, err := p.expect(tokLParen, "'(' before subquery"); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')' after subquery"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *parser) parseOperand() (Expr, error) {
	switch {
	case p.at(tokNumber):
		t := p.next()
		if strings.Contains(t.text, ".") {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %s: %w", t, err)
			}
			return FloatLit{V: v}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %s: %w", t, err)
		}
		return IntLit{V: v}, nil
	case p.at(tokString):
		return StrLit{V: p.next().text}, nil
	case p.at(tokIdent):
		if reservedWords[strings.ToLower(p.cur().text)] {
			return nil, fmt.Errorf("sql: unexpected %s in expression", p.cur())
		}
		name := p.next()
		// Function call?
		if p.at(tokLParen) {
			p.next()
			var args []Expr
			if !p.at(tokRParen) {
				for {
					a, err := p.parseOperand()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.at(tokComma) {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return FuncCall{Name: strings.ToLower(name.text), Args: args}, nil
		}
		// Qualified column?
		if p.at(tokDot) {
			p.next()
			col, err := p.expect(tokIdent, "column name after '.'")
			if err != nil {
				return nil, err
			}
			return ColumnRef{Qualifier: strings.ToLower(name.text), Column: strings.ToLower(col.text)}, nil
		}
		return ColumnRef{Column: strings.ToLower(name.text)}, nil
	default:
		return nil, fmt.Errorf("sql: expected expression, found %s", p.cur())
	}
}

package sqlparser

import "testing"

func TestParseStatementExplainPrefix(t *testing.T) {
	cases := []struct {
		src              string
		explain, analyze bool
	}{
		{"select * from t", false, false},
		{"explain select * from t", true, false},
		{"EXPLAIN SELECT * FROM t", true, false},
		{"explain analyze select * from t", true, true},
		{"Explain Analyze select a from t where a = 1", true, true},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("ParseStatement(%q): %v", c.src, err)
		}
		if st.Explain != c.explain || st.Analyze != c.analyze {
			t.Errorf("ParseStatement(%q) = explain:%v analyze:%v, want %v/%v",
				c.src, st.Explain, st.Analyze, c.explain, c.analyze)
		}
		if st.Select == nil {
			t.Errorf("ParseStatement(%q): nil Select", c.src)
		}
	}
}

func TestParseStatementErrors(t *testing.T) {
	for _, src := range []string{
		"explain",                         // nothing after the prefix
		"analyze select * from t",         // ANALYZE without EXPLAIN is not a statement
		"explain explain select 1 from t", // doubled prefix
		"explain select * from t where",   // truncated WHERE clause
		"explain select * from t x 1",     // trailing junk after alias
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

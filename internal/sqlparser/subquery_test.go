package sqlparser

import "testing"

func TestParseExists(t *testing.T) {
	stmt := mustParse(t, `
		select c.custkey from customer c
		where c.nationkey < 10 and exists (select * from orders o where o.custkey = c.custkey)`)
	conj, ok := stmt.Where.(AndExpr)
	if !ok {
		t.Fatalf("where: %T", stmt.Where)
	}
	ex, ok := conj.R.(ExistsExpr)
	if !ok || ex.Not {
		t.Fatalf("right conjunct: %+v", conj.R)
	}
	if len(ex.Sub.From) != 1 || ex.Sub.From[0].Table != "orders" {
		t.Fatalf("subquery from: %+v", ex.Sub.From)
	}
}

func TestParseNotExists(t *testing.T) {
	stmt := mustParse(t,
		"select * from customer c where not exists (select * from orders o where o.custkey = c.custkey)")
	ex, ok := stmt.Where.(ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("where: %+v", stmt.Where)
	}
}

func TestParseInSubquery(t *testing.T) {
	stmt := mustParse(t,
		"select * from customer where custkey in (select custkey from orders where shippriority = 0)")
	in, ok := stmt.Where.(InExpr)
	if !ok || in.Not || in.Col.Column != "custkey" {
		t.Fatalf("where: %+v", stmt.Where)
	}
	if len(in.Sub.Items) != 1 || in.Sub.Items[0].Col.Column != "custkey" {
		t.Fatalf("sub items: %+v", in.Sub.Items)
	}
	stmt2 := mustParse(t,
		"select * from customer where custkey not in (select custkey from orders)")
	if in2 := stmt2.Where.(InExpr); !in2.Not {
		t.Fatalf("not in: %+v", in2)
	}
}

func TestSubqueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT c.custkey FROM customer c WHERE EXISTS (SELECT * FROM orders o WHERE o.custkey = c.custkey)",
		"SELECT * FROM customer WHERE custkey NOT IN (SELECT custkey FROM orders)",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		re, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", stmt.String(), err)
		}
		if re.String() != stmt.String() {
			t.Fatalf("round trip: %q != %q", re.String(), stmt.String())
		}
	}
}

func TestSubqueryParseErrors(t *testing.T) {
	bad := []string{
		"select * from t where exists select * from u",
		"select * from t where exists (select * from u",
		"select * from t where not (a = 1)",
		"select * from t where 5 in (select a from u)",
		"select * from t where a not (select a from u)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

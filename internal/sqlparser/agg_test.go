package sqlparser

import "testing"

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t,
		"select c.nationkey, count(*), sum(o.totalprice), avg(o.totalprice), min(o.orderkey), max(o.orderkey) "+
			"from customer c, orders o where c.custkey = o.custkey group by c.nationkey")
	if len(stmt.Items) != 6 {
		t.Fatalf("items: %d", len(stmt.Items))
	}
	if stmt.Items[0].Agg != "" || stmt.Items[0].Col.Column != "nationkey" {
		t.Fatalf("item 0: %+v", stmt.Items[0])
	}
	if stmt.Items[1].Agg != "count" || !stmt.Items[1].AggStar {
		t.Fatalf("item 1: %+v", stmt.Items[1])
	}
	if stmt.Items[2].Agg != "sum" || stmt.Items[2].Col.Column != "totalprice" {
		t.Fatalf("item 2: %+v", stmt.Items[2])
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "nationkey" {
		t.Fatalf("group by: %+v", stmt.GroupBy)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	stmt := mustParse(t, "select custkey, acctbal from customer order by acctbal desc, custkey asc limit 10")
	if len(stmt.OrderBy) != 2 {
		t.Fatalf("order by: %+v", stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[0].Col.Column != "acctbal" {
		t.Fatalf("key 0: %+v", stmt.OrderBy[0])
	}
	if stmt.OrderBy[1].Desc {
		t.Fatalf("key 1: %+v", stmt.OrderBy[1])
	}
	if stmt.Limit == nil || *stmt.Limit != 10 {
		t.Fatalf("limit: %v", stmt.Limit)
	}
}

func TestParseAggErrors(t *testing.T) {
	bad := []string{
		"select sum(*) from t",
		"select count( from t",
		"select count(*) from t group by",
		"select * from t order by",
		"select * from t limit",
		"select * from t limit -1",
		"select * from t limit x",
		"select * from t order by a limit 5 garbage",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAggStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT nationkey, count(*) FROM customer GROUP BY nationkey ORDER BY nationkey LIMIT 5",
		"SELECT count(*) FROM lineitem",
		"SELECT a, sum(b) FROM t GROUP BY a ORDER BY a DESC",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		re, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse %q (%q): %v", src, stmt.String(), err)
		}
		if re.String() != stmt.String() {
			t.Fatalf("round trip: %q != %q", re.String(), stmt.String())
		}
	}
}

// A column legitimately named like an aggregate (but not followed by a
// paren) still parses as a column.
func TestAggNameAsColumn(t *testing.T) {
	stmt := mustParse(t, "select count from t")
	if stmt.Items[0].Agg != "" || stmt.Items[0].Col.Column != "count" {
		t.Fatalf("item: %+v", stmt.Items[0])
	}
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestFleetChaosConcurrentQueries drives concurrent multi-query load
// across a 4-shard fleet whose shards carry independent fault schedules:
// probabilistic transient read faults plus injected latency. Every query
// must either fail loudly or return the correct answer (error-or-correct
// — never silently wrong), every progress stream must stay monotone with
// at most one terminal event, and afterwards no shard may hold leaked
// temp files or orphaned pages.
func TestFleetChaosConcurrentQueries(t *testing.T) {
	f := paperFleet(t, 4)
	ref := referenceDB(t)

	// Independent per-shard fault schedules, installed post-bootstrap so
	// they hit the query path. Transient faults are retried by the
	// storage layer; the latency clause jitters shard finish order so
	// the aggregator sees genuinely interleaved refresh streams.
	specs := []string{
		"seed=11,transient=0.02,latency=0.2:0.001",
		"seed=12,latency=0.5:0.002",
		"seed=13,transient=0.05",
		"", // shard 3 stays clean
	}
	for i, spec := range specs {
		if spec == "" {
			continue
		}
		if err := f.SetShardFaultSpec(i, spec); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`select * from customer where nationkey < 12`,
		`select count(*), sum(quantity) from lineitem`,
		`select nationkey, count(*) from customer group by nationkey`,
		`select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey and c.nationkey < 6`,
		`select custkey, acctbal from customer order by custkey limit 40`,
	}
	want := make(map[string]map[string]int, len(queries))
	for _, q := range queries {
		res, err := ref.Exec(q, nil)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = multiset(res.Rows)
	}

	const workers = 6
	const rounds = 4
	var wg sync.WaitGroup
	failures := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queries[(w+r)%len(queries)]
				var reports []Report
				res, err := f.Exec(q, func(rep Report) { reports = append(reports, rep) })
				if err != nil {
					// Loud failure is acceptable under injected faults —
					// but it must carry shard attribution and must not
					// masquerade as a user cancellation.
					var se *ShardError
					if !errors.As(err, &se) {
						failures <- fmt.Sprintf("worker %d %q: error without shard attribution: %v", w, q, err)
					} else if errors.Is(err, context.Canceled) {
						failures <- fmt.Sprintf("worker %d %q: fault surfaced as context.Canceled: %v", w, q, err)
					}
					continue
				}
				got := multiset(res.Rows)
				if len(got) != len(want[q]) {
					failures <- fmt.Sprintf("worker %d %q: %d distinct rows, want %d", w, q, len(got), len(want[q]))
					continue
				}
				for k, n := range want[q] {
					if got[k] != n {
						failures <- fmt.Sprintf("worker %d %q: row %q ×%d, want ×%d", w, q, k, got[k], n)
						break
					}
				}
				lastDone, lastPct, terminals := -1.0, -1.0, 0
				for i, rep := range reports {
					if rep.DoneU < lastDone || rep.Percent < lastPct {
						failures <- fmt.Sprintf("worker %d %q report %d: progress regressed", w, q, i)
						break
					}
					lastDone, lastPct = rep.DoneU, rep.Percent
					if rep.Finished {
						terminals++
					}
				}
				if terminals != 1 {
					failures <- fmt.Sprintf("worker %d %q: %d terminal reports", w, q, terminals)
				}
			}
		}(w)
	}
	wg.Wait()
	close(failures)
	for msg := range failures {
		t.Error(msg)
	}

	if err := f.CheckLeaks(); err != nil {
		t.Fatalf("leaks after chaos load: %v", err)
	}
}

// TestFleetChaosTransientOnly is the retry/breaker chaos schedule: two
// shards carry transient-heavy fault bursts sized to stay inside the
// storage retry budget plus the coordinator's subquery retry budget.
// The invariant is stronger than error-or-correct — a transient-only
// schedule must NEVER surface an error to the fleet's caller: every
// query returns the correct answer, progress stays monotone across
// retries, no breaker trips, and nothing leaks.
func TestFleetChaosTransientOnly(t *testing.T) {
	f := paperFleet(t, 4)
	if err := f.ColdRestart(); err != nil {
		t.Fatal(err) // schedules target disk reads; drop the warm pool
	}
	ref := referenceDB(t)

	// Shard 0 burns its burst inside the bufferpool's 4-attempt budget
	// plus one coordinator retry; shard 2 needs the full two-retry
	// budget. Shards 1 and 3 stay clean and should see zero retries.
	specs := map[int]string{
		0: "seed=21,readerr=1,transient=1,max=6,target=base",
		2: "seed=23,readerr=1,transient=1,max=10,target=base",
	}
	for shard, spec := range specs {
		if err := f.SetShardFaultSpec(shard, spec); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`select * from customer where nationkey < 12`,
		`select count(*), sum(quantity) from lineitem`,
		`select nationkey, count(*) from customer group by nationkey`,
	}
	totalRetries := 0
	for _, q := range queries {
		want, err := ref.Exec(q, nil)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		lastDone := -1.0
		res, err := f.Exec(q, func(rep Report) {
			if rep.DoneU < lastDone-1e-9 {
				t.Errorf("%q: DoneU regressed %g -> %g", q, lastDone, rep.DoneU)
			}
			lastDone = rep.DoneU
		})
		if err != nil {
			t.Fatalf("%q: transient-only fault surfaced to the client: %v", q, err)
		}
		totalRetries += res.Retries
		wm, gm := multiset(want.Rows), multiset(res.Rows)
		if len(wm) != len(gm) {
			t.Fatalf("%q: %d distinct rows, want %d", q, len(gm), len(wm))
		}
		for k, n := range wm {
			if gm[k] != n {
				t.Fatalf("%q: row %q ×%d, want ×%d", q, k, gm[k], n)
			}
		}
		for _, sr := range res.Shards {
			if _, faulted := specs[sr.Shard]; !faulted && sr.Retries != 0 {
				t.Errorf("%q: clean shard %d charged %d retries", q, sr.Shard, sr.Retries)
			}
		}
	}
	if totalRetries == 0 {
		t.Fatal("transient schedule induced no retries; nothing was exercised")
	}
	for _, h := range f.Health() {
		if h.Breaker != "closed" || h.Trips != 0 {
			t.Errorf("shard %d breaker %s with %d trips under a transient-only schedule", h.Shard, h.Breaker, h.Trips)
		}
	}
	if err := f.CheckLeaks(); err != nil {
		t.Fatalf("leaks after transient chaos: %v", err)
	}
}

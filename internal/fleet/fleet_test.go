package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"progressdb"
)

// shardCfg is the fast-refresh engine config the fleet tests run on.
var shardCfg = progressdb.Config{
	ProgressUpdateSeconds: 0.25,
	SeqPageCost:           0.05,
	BufferPoolPages:       64,
}

// paperFleet loads the paper workload across n shards.
func paperFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := New(Config{Shards: n, Shard: shardCfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	return f
}

// referenceDB loads the same workload into one unsharded engine.
func referenceDB(t *testing.T) *progressdb.DB {
	t.Helper()
	db := progressdb.Open(shardCfg)
	if err := db.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	return db
}

func rowKey(row []interface{}) string {
	var b strings.Builder
	for _, v := range row {
		fmt.Fprintf(&b, "%T:%v|", v, v)
	}
	return b.String()
}

func multiset(rows [][]interface{}) map[string]int {
	out := map[string]int{}
	for _, r := range rows {
		out[rowKey(r)]++
	}
	return out
}

func assertSameRows(t *testing.T, label string, want, got [][]interface{}, wantCols, gotCols []string) {
	t.Helper()
	if len(wantCols) != len(gotCols) {
		t.Fatalf("%s: columns %v vs fleet %v", label, wantCols, gotCols)
	}
	for i := range wantCols {
		if !strings.EqualFold(wantCols[i], gotCols[i]) {
			t.Fatalf("%s: column %d = %q, fleet %q", label, i, wantCols[i], gotCols[i])
		}
	}
	wm, gm := multiset(want), multiset(got)
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows single-engine, %d rows fleet", label, len(want), len(got))
	}
	for k, n := range wm {
		if gm[k] != n {
			t.Fatalf("%s: row %q count %d single-engine vs %d fleet", label, k, n, gm[k])
		}
	}
}

// The acceptance criterion: a 4-shard query returns rows identical (as a
// multiset) to the same query on a 1-shard engine — across scans,
// filters, co-partitioned joins, and re-aggregated aggregates.
func TestFleetMatchesSingleEngine(t *testing.T) {
	f := paperFleet(t, 4)
	ref := referenceDB(t)

	queries := []string{
		`select * from lineitem`,
		`select * from customer where nationkey < 10`,
		`select c.custkey, c.acctbal, o.orderkey, o.totalprice from customer c, orders o where c.custkey = o.custkey`,
		`select c.custkey, c.acctbal, o.orderkey from customer c, orders o where c.custkey = o.custkey and c.nationkey < 5`,
		`select nationkey, count(*), min(acctbal), max(acctbal) from customer group by nationkey`,
		`select count(*), sum(quantity), avg(quantity) from lineitem`,
		`select count(*) from orders`,
		`select mktsegment from customer group by mktsegment`,
	}
	for _, q := range queries {
		want, err := ref.Exec(q, nil)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		got, err := f.Exec(q, nil)
		if err != nil {
			t.Fatalf("fleet %q: %v", q, err)
		}
		assertSameRows(t, q, want.Rows, got.Rows, want.Columns, got.Columns)
	}
}

// ORDER BY + LIMIT: pushed down per shard, re-merged globally — the
// result must be exactly the single-engine ordered prefix.
func TestFleetOrderedLimit(t *testing.T) {
	f := paperFleet(t, 4)
	ref := referenceDB(t)

	for _, q := range []string{
		`select custkey, name from customer order by custkey limit 25`,
		`select custkey, acctbal from customer order by custkey desc limit 10`,
		`select nationkey, count(*) from customer group by nationkey order by nationkey`,
	} {
		want, err := ref.Exec(q, nil)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		got, err := f.Exec(q, nil)
		if err != nil {
			t.Fatalf("fleet %q: %v", q, err)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(want.Rows), len(got.Rows))
		}
		for i := range want.Rows {
			if rowKey(want.Rows[i]) != rowKey(got.Rows[i]) {
				t.Fatalf("%q row %d: %v vs %v", q, i, want.Rows[i], got.Rows[i])
			}
		}
	}
}

// Global progress must be monotone in DoneU and Percent, carry a
// per-shard breakdown, and end in exactly one terminal report.
func TestFleetProgressMonotone(t *testing.T) {
	f := paperFleet(t, 4)

	var reports []Report
	res, err := f.Exec(`select * from lineitem`, func(r Report) { reports = append(reports, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("only %d progress reports", len(reports))
	}
	terminals := 0
	lastDone, lastPct := -1.0, -1.0
	for i, r := range reports {
		if r.DoneU < lastDone {
			t.Fatalf("report %d: DoneU %g < %g — not monotone", i, r.DoneU, lastDone)
		}
		if r.Percent < lastPct {
			t.Fatalf("report %d: Percent %g < %g — not monotone", i, r.Percent, lastPct)
		}
		lastDone, lastPct = r.DoneU, r.Percent
		if r.Finished {
			terminals++
			if i != len(reports)-1 {
				t.Fatalf("terminal report at %d of %d", i, len(reports))
			}
		}
		if len(r.Shards) == 0 || len(r.Shards) > 4 {
			t.Fatalf("report %d has %d shard entries", i, len(r.Shards))
		}
		for _, sr := range r.Shards {
			if sr.Shard < 0 || sr.Shard >= 4 {
				t.Fatalf("report %d names shard %d", i, sr.Shard)
			}
		}
	}
	if terminals != 1 {
		t.Fatalf("%d terminal reports, want exactly 1", terminals)
	}
	final := reports[len(reports)-1]
	if final.Percent != 100 || !final.Finished {
		t.Fatalf("final report: %.1f%% finished=%v", final.Percent, final.Finished)
	}
	if final.DoneU <= 0 {
		t.Fatal("final DoneU is zero — no work accounted")
	}
	if len(res.History) != len(reports) {
		t.Fatalf("Result.History has %d entries, callback saw %d", len(res.History), len(reports))
	}
	if len(res.Shards) != 4 {
		t.Fatalf("Result.Shards has %d entries", len(res.Shards))
	}
	var shardRows int
	for _, sr := range res.Shards {
		shardRows += sr.Rows
		if sr.VirtualSeconds > res.VirtualSeconds {
			t.Fatalf("shard %d vclock %g exceeds barrier-merged %g", sr.Shard, sr.VirtualSeconds, res.VirtualSeconds)
		}
	}
	if shardRows != len(res.Rows) {
		t.Fatalf("shard contributions sum to %d rows, merged result has %d", shardRows, len(res.Rows))
	}
}

// Queries the coordinator cannot distribute must be rejected with
// ErrUnsupported, naming the reason — never silently wrong.
func TestFleetRejectsUnsupported(t *testing.T) {
	f := paperFleet(t, 4)

	cases := []string{
		// orders is hashed on custkey, lineitem on orderkey: not co-partitioned.
		`select o.orderkey, l.quantity from orders o, lineitem l where o.orderkey = l.orderkey`,
		// non-equi join predicate (the paper's Q5 shape).
		`select * from customer_subset1 c1, customer_subset2 c2 where c1.custkey <> c2.custkey`,
		// subquery.
		`select * from customer c where exists (select * from orders o where o.custkey = c.custkey)`,
		// unregistered table.
		`select * from nosuchtable`,
		// ORDER BY column invisible to the merge.
		`select custkey from customer order by acctbal`,
	}
	for _, q := range cases {
		_, err := f.Exec(q, nil)
		if err == nil {
			t.Fatalf("%q: accepted, want ErrUnsupported", q)
		}
		if !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%q: error %v does not wrap ErrUnsupported", q, err)
		}
	}
	var unsupported float64
	for _, s := range f.Metrics() {
		if s.Name == "fleet_queries_unsupported_total" {
			unsupported = s.Value
		}
	}
	if unsupported != float64(len(cases)) {
		t.Fatalf("fleet_queries_unsupported_total = %g, want %d", unsupported, len(cases))
	}
}

// One shard failing must cancel its siblings and surface a ShardError
// naming the culprit; the fleet stays usable and leak-free.
func TestFleetShardFailureCancelsSiblings(t *testing.T) {
	f := paperFleet(t, 4)
	// Empty the buffer pools so the scan must hit storage, then make
	// shard 2 fail its first post-bootstrap read, once; siblings are clean.
	if err := f.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	if err := f.SetShardFaultSpec(2, "seed=5,nthread=1,max=1"); err != nil {
		t.Fatal(err)
	}

	_, err := f.Exec(`select * from lineitem`, nil)
	if err == nil {
		t.Fatal("query succeeded despite injected shard fault")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ShardError", err)
	}
	if se.Shard != 2 {
		t.Fatalf("blamed shard %d, want 2", se.Shard)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("root-cause error %v must not read as a cancellation", err)
	}
	if err := f.CheckLeaks(); err != nil {
		t.Fatalf("leaks after failed query: %v", err)
	}

	// max=1 spent the fault; the fleet must recover.
	res, err := f.Exec(`select count(*) from lineitem`, nil)
	if err != nil {
		t.Fatalf("fleet unusable after shard failure: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 12000 {
		t.Fatalf("recovery query returned %v", res.Rows)
	}

	var cancels, failed float64
	for _, s := range f.Metrics() {
		switch s.Name {
		case "fleet_cancels_propagated_total":
			cancels = s.Value
		case "fleet_queries_failed_total":
			failed = s.Value
		}
	}
	if cancels != 1 || failed != 1 {
		t.Fatalf("cancels=%g failed=%g, want 1/1", cancels, failed)
	}
}

// User cancellation reaches every shard and reads as context.Canceled.
func TestFleetUserCancel(t *testing.T) {
	f := paperFleet(t, 4)

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := f.ExecContext(ctx, `select * from lineitem`, func(Report) {
		if n++; n == 2 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("canceled query succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not satisfy errors.Is(context.Canceled)", err)
	}
	if err := f.CheckLeaks(); err != nil {
		t.Fatalf("leaks after cancel: %v", err)
	}
	if _, err := f.Exec(`select count(*) from customer`, nil); err != nil {
		t.Fatalf("fleet unusable after cancel: %v", err)
	}
}

// CreateTable/Insert routing: rows land on the shard their key hashes
// to, and queries see all of them.
func TestFleetInsertRouting(t *testing.T) {
	f, err := New(Config{Shards: 3, Shard: shardCfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CreateTable("kv", "k",
		progressdb.Col("k", progressdb.Int), progressdb.Col("v", progressdb.Text)); err != nil {
		t.Fatal(err)
	}
	const rows = 500
	for i := 0; i < rows; i++ {
		if err := f.Insert("kv", int64(i), fmt.Sprintf("v%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Analyze(); err != nil {
		t.Fatal(err)
	}
	res, err := f.Exec(`select * from kv`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("%d rows back, want %d", len(res.Rows), rows)
	}
	seen := map[int64]bool{}
	for _, r := range res.Rows {
		seen[r[0].(int64)] = true
	}
	if len(seen) != rows {
		t.Fatalf("%d distinct keys, want %d", len(seen), rows)
	}
	// Spread: with FNV routing no shard should hold everything.
	busy := 0
	for _, sr := range res.Shards {
		if sr.Rows > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 3 shards hold rows — routing is degenerate", busy)
	}

	if err := f.Insert("unknown", int64(1)); err == nil {
		t.Fatal("insert into unregistered table accepted")
	}
	if err := f.CreateTable("bad", "nope", progressdb.Col("k", progressdb.Int)); err == nil {
		t.Fatal("partition key outside schema accepted")
	}
}

// A single-shard fleet is the degenerate case: everything routes to
// shard 0 and results match trivially.
func TestFleetSingleShard(t *testing.T) {
	f := paperFleet(t, 1)
	res, err := f.Exec(`select count(*) from customer`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 300 {
		t.Fatalf("count = %v, want 300", res.Rows[0][0])
	}
}

// Aggregate math spot check with floats: merged avg must equal the
// reference within float tolerance even when per-shard sums round
// differently.
func TestFleetFloatAggregateTolerance(t *testing.T) {
	f := paperFleet(t, 4)
	ref := referenceDB(t)
	q := `select avg(acctbal), sum(acctbal) from customer`
	want, err := ref.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w, g := want.Rows[0][i].(float64), got.Rows[0][i].(float64)
		if math.Abs(w-g) > 1e-6*math.Max(1, math.Abs(w)) {
			t.Fatalf("col %d: %g vs %g", i, w, g)
		}
	}
}

// ExecDiscard must merge no rows but still report shard contributions
// and a terminal progress event.
func TestFleetExecDiscard(t *testing.T) {
	f := paperFleet(t, 2)
	var last Report
	res, err := f.ExecDiscard(`select * from orders`, func(r Report) { last = r })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nil {
		t.Fatalf("discard kept %d rows", len(res.Rows))
	}
	if !last.Finished || last.Percent != 100 {
		t.Fatalf("discard final report: %+v", last.Report)
	}
	if len(res.Columns) == 0 {
		t.Fatal("discard lost column names")
	}
}

// The fleet coordinator: classifies an incoming query, rewrites it into
// a per-shard subquery, fans the subquery out across all shards
// concurrently, and merges the results.
//
// Rewrite rules:
//
//   - Single-table scans/filters fan out verbatim; the coordinator
//     unions the streams. ORDER BY and LIMIT are pushed down (each
//     shard's top-K is a superset of its contribution to the global
//     top-K) and re-applied globally — a k-way merge of the sorted
//     per-shard streams when ordered, a concatenation otherwise.
//   - Multi-table joins fan out only when co-partitioned: the top-level
//     equality predicates must chain every FROM table's partition key
//     into one equivalence class, so every matching pair of rows is
//     guaranteed to live on the same shard and the join is the union of
//     the shard-local joins. Anything else is rejected with
//     ErrUnsupported rather than silently dropping cross-shard matches.
//   - Aggregates are split: each shard computes partial aggregates
//     (avg(x) becomes sum(x) plus count(*)), and the coordinator
//     re-aggregates partials by group key — counts and sums add, min
//     and max fold, avg divides the merged sums. The Chen–Schneider
//     bound argument applies at the coordinator: merged cardinality
//     never exceeds the sum of per-shard outputs, which each shard's
//     own optimizer already caps.
//
// Failure protocol: the first shard to fail cancels the shared context,
// its siblings unwind at their next executor safe point, and the
// coordinator surfaces the root cause as a *ShardError naming the shard.
// A user cancellation reaches every shard through the same context and
// is reported as such (errors.Is(err, context.Canceled)).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"progressdb"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
)

// ErrUnsupported marks queries the coordinator cannot distribute
// (subqueries, non-co-partitioned joins, unregistered tables). The
// wrapped error message names the specific reason.
var ErrUnsupported = errors.New("not shard-distributable")

// ShardError attributes a fleet query failure to the shard that caused
// it. Unwrap exposes the shard's own error, so errors.Is sees through to
// context.Canceled, deadline errors, injected faults, or ErrBreakerOpen.
type ShardError struct {
	Shard int
	Err   error
	// Attempts is how many times the subquery was executed on the shard
	// (1 + retries); 0 when the breaker rejected the fan-out before any
	// attempt.
	Attempts int
	// Breaker is the shard's circuit breaker state after this failure
	// was recorded ("closed", "open", "half_open"); empty when the fleet
	// runs without breakers.
	Breaker string
}

func (e *ShardError) Error() string {
	msg := fmt.Sprintf("fleet: shard %d: %v", e.Shard, e.Err)
	if e.Attempts > 1 {
		msg += fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	if e.Breaker != "" && e.Breaker != "closed" {
		msg += fmt.Sprintf(" [breaker %s]", e.Breaker)
	}
	return msg
}
func (e *ShardError) Unwrap() error { return e.Err }

// ShardResult summarizes one shard's contribution to a fleet query.
type ShardResult struct {
	// Shard is the shard id.
	Shard int
	// Rows is the number of rows the shard's subquery produced (before
	// coordinator-side merging).
	Rows int
	// VirtualSeconds is the subquery's execution time on the shard's own
	// virtual clock.
	VirtualSeconds float64
	// DoneU is the shard's final completed work in U, including work
	// done by failed attempts that were retried.
	DoneU float64
	// Retries is how many times the shard's subquery was re-run after a
	// transient I/O fault.
	Retries int
}

// Result is a completed fleet query.
type Result struct {
	// Columns are the merged output column names.
	Columns []string
	// Rows is the merged result (nil for the discard path).
	Rows [][]interface{}
	// VirtualSeconds is the max across shards — the fleet's barrier-
	// merged virtual clock: parallel shards finish when the slowest does.
	VirtualSeconds float64
	// History is every aggregated progress report published during
	// execution, ending with the terminal Finished report.
	History []Report
	// Shards holds each shard's contribution summary, in shard order.
	Shards []ShardResult
	// Retries is the total number of shard subquery retries the
	// coordinator performed for this query.
	Retries int
}

// RowCount returns the number of merged result rows.
func (r *Result) RowCount() int { return len(r.Rows) }

// Exec runs a query across the fleet, invoking onProgress (if non-nil)
// at every aggregated refresh.
func (f *Fleet) Exec(sql string, onProgress func(Report)) (*Result, error) {
	return f.exec(context.Background(), sql, onProgress, true)
}

// ExecContext is Exec with cancellation: canceling ctx cancels every
// shard's subquery at its next safe point.
func (f *Fleet) ExecContext(ctx context.Context, sql string, onProgress func(Report)) (*Result, error) {
	return f.exec(ctx, sql, onProgress, true)
}

// ExecDiscard runs a query without materializing result rows.
func (f *Fleet) ExecDiscard(sql string, onProgress func(Report)) (*Result, error) {
	return f.exec(context.Background(), sql, onProgress, false)
}

// ExecDiscardContext is ExecDiscard with cancellation.
func (f *Fleet) ExecDiscardContext(ctx context.Context, sql string, onProgress func(Report)) (*Result, error) {
	return f.exec(ctx, sql, onProgress, false)
}

// EstimateCostU prices a query before running it: the sum across shards
// of each shard optimizer's initial total cost estimate in U for the
// rewritten per-shard subquery — the figure the serving layer's
// admission controller charges against its in-flight budget. Like
// DB.EstimateCostU it is a pure read (no clock charges, no storage), so
// it is safe concurrently with running subqueries, but not with DDL,
// inserts, or Analyze.
func (f *Fleet) EstimateCostU(sql string) (float64, error) {
	qp, err := f.rewrite(sql)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, sh := range f.shards {
		u, err := sh.db.EstimateCostU(qp.shardSQL)
		if err != nil {
			return 0, fmt.Errorf("fleet: shard %d estimate: %w", sh.id, err)
		}
		total += u
	}
	return total, nil
}

func (f *Fleet) exec(ctx context.Context, sql string, onProgress func(Report), keepRows bool) (*Result, error) {
	f.met.queries.Inc()
	qp, err := f.rewrite(sql)
	if err != nil {
		if errors.Is(err, ErrUnsupported) {
			f.met.unsupported.Inc()
		}
		f.met.failed.Inc()
		return nil, err
	}

	agg := newAggregator(f, onProgress)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(f.shards)
	results := make([]*progressdb.Result, n)
	errs := make([]error, n)
	retries := make([]int, n)
	var propagate sync.Once
	var wg sync.WaitGroup
	for _, sh := range f.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			fail := func(err error) {
				errs[sh.id] = err
				// Distributed cancellation: first failure cancels the
				// siblings. The Once keeps the metric at one propagation
				// per query even when several shards fail on their own.
				propagate.Do(func() {
					f.met.cancels.Inc()
					cancel()
				})
			}
			// Circuit-breaker gate, checked before the shard mutex: an
			// open breaker rejects the fan-out without queueing behind
			// whatever the sick shard is doing.
			br := f.breakers[sh.id]
			ok, probe, streak := br.allow()
			if !ok {
				f.met.fastFails.Inc()
				fail(&ShardError{
					Shard:   sh.id,
					Err:     &BreakerOpenError{Shard: sh.id, ConsecutiveFailures: streak},
					Breaker: breakerStateName(breakerOpen),
				})
				return
			}
			if probe {
				f.met.probes.Inc()
				f.met.breakerState[sh.id].Set(br.stateValue())
			}
			sh.mu.Lock()
			defer sh.mu.Unlock()
			f.met.subqueries.Inc()
			f.met.shardQueries[sh.id].Inc()
			f.met.shardBusy[sh.id].Set(1)
			defer f.met.shardBusy[sh.id].Set(0)
			res, attempts, err := f.runShardSubquery(ctx, sh, qp.shardSQL, keepRows, agg)
			f.recordShardOutcome(sh.id, probe, err)
			results[sh.id], retries[sh.id] = res, attempts-1
			if err != nil {
				fail(&ShardError{
					Shard:    sh.id,
					Err:      err,
					Attempts: attempts,
					Breaker:  breakerStateName(int32(br.stateValue())),
				})
			}
		}(sh)
	}
	wg.Wait()

	if err := pickError(errs); err != nil {
		f.met.failed.Inc()
		return nil, err
	}

	agg.finish() // exactly-once terminal report

	out := &Result{History: agg.history}
	var total int
	for _, sh := range f.shards {
		res := results[sh.id]
		sr := ShardResult{Shard: sh.id, Rows: len(res.Rows), VirtualSeconds: res.VirtualSeconds, Retries: retries[sh.id]}
		if len(res.History) > 0 {
			sr.DoneU = res.History[len(res.History)-1].DoneU
		}
		sr.DoneU += agg.doneBase(sh.id) // work done by retried attempts
		out.Shards = append(out.Shards, sr)
		out.Retries += retries[sh.id]
		if res.VirtualSeconds > out.VirtualSeconds {
			out.VirtualSeconds = res.VirtualSeconds
		}
		total += len(res.Rows)
	}
	f.met.rowsMerged.Add(int64(total))

	if err := mergeResults(out, results, qp, keepRows); err != nil {
		f.met.failed.Inc()
		return nil, err
	}
	return out, nil
}

// runShardSubquery executes one shard's subquery, retrying transient
// I/O faults with bounded exponential backoff charged to the shard's
// own virtual clock (deterministic under faultinject seeds). Permanent
// faults, exhausted budgets, and canceled contexts return immediately.
// attempts is how many times the subquery ran (>= 1).
func (f *Fleet) runShardSubquery(ctx context.Context, sh *shard, sql string, keepRows bool, agg *aggregator) (res *progressdb.Result, attempts int, err error) {
	backoff := f.retryBackoff
	onShard := func(r progressdb.Report) { agg.shardUpdate(sh.id, r) }
	for attempt := 1; ; attempt++ {
		if keepRows {
			res, err = sh.db.ExecContext(ctx, sql, onShard)
		} else {
			res, err = sh.db.ExecDiscardContext(ctx, sql, onShard)
		}
		if err == nil {
			return res, attempt, nil
		}
		// Retry only transient I/O faults, within budget, while the
		// query is still live: a canceled context means a sibling
		// already failed or the user gave up, and retrying a permanent
		// fault would just replay it.
		if attempt > f.maxRetries || !storage.IsTransient(err) || ctx.Err() != nil {
			return nil, attempt, err
		}
		f.met.retries.Inc()
		f.met.shardRetries[sh.id].Inc()
		f.breakers[sh.id].noteRetry()
		// Fold the failed attempt's progress into the aggregator's base
		// offsets (retried work was really done), then wait out the
		// backoff on the shard's vclock before going again.
		agg.shardRetry(sh.id, backoff)
		sh.db.Idle(backoff)
		backoff *= 2
	}
}

// pickError chooses the query's primary error among the per-shard
// errors (each already a *ShardError): the first shard that failed for
// its own reasons, not because a sibling's failure canceled it. When
// every shard reports a context error (user cancellation or deadline),
// the lowest-numbered shard speaks for the fleet.
func pickError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// ---- classification & rewrite ----------------------------------------

// queryPlan is the coordinator's execution recipe for one query.
type queryPlan struct {
	// shardSQL is the per-shard subquery (identical on every shard).
	shardSQL string
	// agg is non-nil for the re-aggregation path.
	agg *aggQueryPlan
	// orderBy/limit are re-applied globally after the merge.
	orderBy []sqlparser.OrderItem
	limit   *int64
	// star records SELECT * (merge resolves ORDER BY against shard
	// columns in that case).
	star bool
}

func unsupportedf(format string, args ...interface{}) error {
	return fmt.Errorf("fleet: "+format+": %w", append(args, ErrUnsupported)...)
}

func (f *Fleet) rewrite(sql string) (*queryPlan, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if exprHasSubquery(stmt.Where) {
		return nil, unsupportedf("subqueries cannot run shard-local")
	}

	// Every referenced table must have a registered partition key.
	f.mu.Lock()
	keyOf := make(map[string]string, len(stmt.From)) // binding -> partition key column
	for _, tr := range stmt.From {
		ti := f.tables[strings.ToLower(tr.Table)]
		if ti == nil {
			f.mu.Unlock()
			return nil, unsupportedf("table %q has no partition key registered with the fleet", tr.Table)
		}
		keyOf[strings.ToLower(tr.Binding())] = strings.ToLower(ti.key)
	}
	f.mu.Unlock()

	if len(stmt.From) > 1 {
		if err := checkCoPartitioned(stmt, keyOf); err != nil {
			return nil, err
		}
	}

	hasAgg := false
	for _, it := range stmt.Items {
		if it.Agg != "" {
			hasAgg = true
			break
		}
	}
	if hasAgg || len(stmt.GroupBy) > 0 {
		return rewriteAggregate(stmt)
	}

	// Pass-through: the shard statement is the query itself. ORDER BY
	// and LIMIT stay pushed down (shard top-K ⊇ its share of the global
	// top-K) and are re-applied by the merge.
	if len(stmt.OrderBy) > 0 && !stmt.Star {
		for _, o := range stmt.OrderBy {
			if findItemIndex(stmt.Items, o.Col) < 0 {
				return nil, unsupportedf("ORDER BY column %s must appear in the select list for a merged fleet query", o.Col)
			}
		}
	}
	return &queryPlan{
		shardSQL: stmt.String(),
		orderBy:  stmt.OrderBy,
		limit:    stmt.Limit,
		star:     stmt.Star,
	}, nil
}

// findItemIndex locates a plain select-list item matching col (used to
// resolve ORDER BY positions). Qualified references match same-named
// qualified items or plain column names.
func findItemIndex(items []sqlparser.SelectItem, col sqlparser.ColumnRef) int {
	for i, it := range items {
		if it.Agg != "" {
			continue
		}
		if !strings.EqualFold(it.Col.Column, col.Column) {
			continue
		}
		if col.Qualifier == "" || it.Col.Qualifier == "" || strings.EqualFold(it.Col.Qualifier, col.Qualifier) {
			return i
		}
	}
	return -1
}

// exprHasSubquery walks a predicate for EXISTS/IN subqueries.
func exprHasSubquery(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case sqlparser.AndExpr:
		return exprHasSubquery(x.L) || exprHasSubquery(x.R)
	case sqlparser.Comparison:
		return exprHasSubquery(x.L) || exprHasSubquery(x.R)
	case sqlparser.FuncCall:
		for _, a := range x.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
		return false
	case sqlparser.ExistsExpr, sqlparser.InExpr:
		return true
	default:
		return false
	}
}

// checkCoPartitioned verifies a multi-table query joins shard-locally:
// the top-level equality predicates must place every table's partition
// key in one equivalence class. Equal partition keys hash to the same
// shard (same hash, same shard count fleet-wide), so every joinable row
// pair is co-resident and the global join is the union of shard joins.
func checkCoPartitioned(stmt *sqlparser.SelectStmt, keyOf map[string]string) error {
	uf := newUnionFind()

	// Resolve an unqualified column to its binding only when the query
	// has a single table (otherwise ambiguous — skipped conservatively,
	// which can only make the check stricter).
	soleBinding := ""
	if len(stmt.From) == 1 {
		soleBinding = strings.ToLower(stmt.From[0].Binding())
	}
	node := func(c sqlparser.ColumnRef) string {
		q := strings.ToLower(c.Qualifier)
		if q == "" {
			q = soleBinding
		}
		if q == "" {
			return ""
		}
		return q + "." + strings.ToLower(c.Column)
	}

	var collect func(e sqlparser.Expr)
	collect = func(e sqlparser.Expr) {
		switch x := e.(type) {
		case sqlparser.AndExpr:
			collect(x.L)
			collect(x.R)
		case sqlparser.Comparison:
			if x.Op != "=" {
				return
			}
			l, lok := x.L.(sqlparser.ColumnRef)
			r, rok := x.R.(sqlparser.ColumnRef)
			if lok && rok {
				if ln, rn := node(l), node(r); ln != "" && rn != "" {
					uf.union(ln, rn)
				}
			}
		}
	}
	collect(stmt.Where)

	root := ""
	var keyNodes []string
	for _, tr := range stmt.From {
		b := strings.ToLower(tr.Binding())
		kn := b + "." + keyOf[b]
		keyNodes = append(keyNodes, kn)
		if root == "" {
			root = uf.find(kn)
		} else if uf.find(kn) != root {
			return unsupportedf("join is not co-partitioned: no equality chain links partition keys %s", strings.Join(keyNodes, ", "))
		}
	}
	return nil
}

// unionFind is a tiny string-keyed disjoint-set.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

package fleet

import (
	"fmt"
	"strings"
	"testing"

	"progressdb"
)

// benchConfig mirrors the smoke configuration: a small buffer pool so
// repeated scans stay I/O-bound in the engine's virtual cost model,
// and a large refresh period so indicator callbacks are rare.
func benchConfig() progressdb.Config {
	return progressdb.Config{
		ProgressUpdateSeconds: 1000,
		BufferPoolPages:       64,
	}
}

// benchFleet builds an n-shard fleet holding one hash-partitioned fact
// table of rows synthetic tuples plus a small dimension table
// co-partitioned on the same key for the join benchmark.
func benchFleet(b *testing.B, shards, rows int) *Fleet {
	b.Helper()
	f, err := New(Config{Shards: shards, Shard: benchConfig()})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.CreateTable("fact", "k",
		progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text)); err != nil {
		b.Fatal(err)
	}
	if err := f.CreateTable("dim", "k",
		progressdb.Col("k", progressdb.Int), progressdb.Col("tag", progressdb.Text)); err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("x", 100)
	for i := 0; i < rows; i++ {
		if err := f.Insert("fact", int64(i), pad); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < rows/10; i++ {
		if err := f.Insert("dim", int64(i), fmt.Sprintf("tag%d", i%7)); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.Analyze(); err != nil {
		b.Fatal(err)
	}
	return f
}

// runBench executes sql b.N times and reports the engine's modeled
// query latency as the headline ns/op. progressdb is a virtual-time
// simulation (DESIGN.md §1): a query's duration is the virtual seconds
// its I/O and CPU cost model accumulates, and a fleet's duration is the
// slowest shard's — each shard owns 1/N of the pages, so sharding
// divides the modeled latency. That division is what BENCH_fleet.json
// pins. Wall-clock nanoseconds stay visible as wall_ns/op; on a
// single-core host they measure allocator throughput, not the modeled
// system, so they are the footnote rather than the headline.
func runBench(b *testing.B, f *Fleet, sql string) {
	b.ResetTimer()
	var virtual float64
	for i := 0; i < b.N; i++ {
		res, err := f.ExecDiscard(sql, nil)
		if err != nil {
			b.Fatal(err)
		}
		virtual += res.VirtualSeconds
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "wall_ns/op")
	b.ReportMetric(virtual*1e9/float64(b.N), "ns/op")
}

// The scan pair is the headline: every shard scans its partition
// concurrently, so modeled latency drops by the shard count.
func benchScan(b *testing.B, shards int) {
	f := benchFleet(b, shards, 40000)
	runBench(b, f, "select * from fact")
}

// The join pair exercises the partition-wise path: fact.k = dim.k is
// co-partitioned, so each shard joins locally and the coordinator
// re-aggregates.
func benchJoin(b *testing.B, shards int) {
	f := benchFleet(b, shards, 40000)
	runBench(b, f, "select dim.tag, count(*) from fact, dim where fact.k = dim.k group by dim.tag")
}

func BenchmarkFleetScanShards1(b *testing.B) { benchScan(b, 1) }
func BenchmarkFleetScanShards4(b *testing.B) { benchScan(b, 4) }
func BenchmarkFleetJoinShards1(b *testing.B) { benchJoin(b, 1) }
func BenchmarkFleetJoinShards4(b *testing.B) { benchJoin(b, 4) }

package fleet

import (
	"sync"
	"testing"
	"time"

	"progressdb"
)

// Regression suite for the publish-under-mutex bug progresslint's
// lockdisc analyzer found: the aggregator used to invoke its onProgress
// callback while holding the state mutex, so the server's paced
// subscriber fan-out (which sleeps between refreshes) stalled every
// shard goroutine trying to ingest an update. Delivery now runs outside
// the state lock, serialized by pubMu with sequence-numbered stale-drop.

func testAggregator(t *testing.T, onProgress func(Report)) *aggregator {
	t.Helper()
	f, err := New(Config{Shards: 2, Shard: shardCfg})
	if err != nil {
		t.Fatal(err)
	}
	return newAggregator(f, onProgress)
}

// TestAggregatorParkedObserverDoesNotStallState parks the observer
// inside a delivery and proves the merge state stays live underneath:
// retry folds, base reads, and further ingest must all proceed.
func TestAggregatorParkedObserverDoesNotStallState(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	a := testAggregator(t, func(Report) {
		entered <- struct{}{}
		<-release
	})
	defer close(release)

	go a.shardUpdate(0, progressdb.Report{DoneU: 1, EstimatedCostU: 10})
	<-entered // the observer is now parked mid-delivery

	done := make(chan struct{})
	go func() {
		defer close(done)
		a.shardRetry(1, 0.5)
		_ = a.doneBase(1)
		if _, _, ok := a.ingestUpdate(1, progressdb.Report{DoneU: 2, EstimatedCostU: 10}); !ok {
			t.Error("ingest refused while the observer was parked")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("aggregator state stalled behind a parked observer callback (publish-under-mutex regression)")
	}
}

// TestAggregatorDeliveryDropsOvertakenReports pins the stale-drop rule:
// a report whose sequence number was overtaken while it waited for the
// delivery lock is dropped, never delivered out of order.
func TestAggregatorDeliveryDropsOvertakenReports(t *testing.T) {
	var got []float64
	a := testAggregator(t, func(r Report) { got = append(got, r.Percent) })
	for _, seq := range []uint64{2, 1, 3, 3} {
		a.deliver(Report{Report: progressdb.Report{Percent: float64(seq)}}, seq)
	}
	want := []float64{2, 3}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestAggregatorConcurrentStreamMonotoneTerminalOnce hammers the
// aggregator from two shard goroutines and checks the delivered stream
// keeps the old under-one-lock guarantees: percent never walks
// backwards, and the terminal report arrives exactly once, last, at
// 100%. Run under -race this also exercises the ingest/delivery split.
func TestAggregatorConcurrentStreamMonotoneTerminalOnce(t *testing.T) {
	var percents []float64
	finals := 0
	a := testAggregator(t, func(r Report) {
		percents = append(percents, r.Percent)
		if r.Finished {
			finals++
		}
	})

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				a.shardUpdate(id, progressdb.Report{DoneU: float64(i), EstimatedCostU: 50})
			}
		}(id)
	}
	wg.Wait()
	a.finish()
	a.finish() // idempotent: must not publish a second terminal report

	if finals != 1 {
		t.Fatalf("terminal report delivered %d times, want exactly once", finals)
	}
	if len(percents) == 0 || percents[len(percents)-1] != 100 {
		t.Fatalf("last delivered percent = %v, want 100 (terminal last)", percents[len(percents)-1:])
	}
	for i := 1; i < len(percents); i++ {
		if percents[i] < percents[i-1] {
			t.Fatalf("delivered percent regressed: %v -> %v at %d", percents[i-1], percents[i], i)
		}
	}
}

// Result merging: union and ordered k-way merge for the pass-through
// path, partial-aggregate recombination for the aggregate path.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"progressdb"
	"progressdb/internal/sqlparser"
)

// aggQueryPlan drives the re-aggregation path. The shard subquery's
// output layout is the GROUP BY columns (nGroup of them, in GROUP BY
// order) followed by one column per partial-aggregate entry.
type aggQueryPlan struct {
	nGroup int
	// entries[i] is how shard output column nGroup+i recombines:
	// "count"/"sum" add, "min"/"max" fold.
	entries []string
	// outputs maps the original select list to merged state.
	outputs []outputRef
	// columns are the final output column names, matching what a single
	// engine would have produced for the original query.
	columns []string
}

// outputRef is one original select-list item's source in merged state.
type outputRef struct {
	kind byte // 'g' group key, 'a' single entry, 'v' avg = sum/count
	a, b int  // 'g': group index; 'a': entry index; 'v': sum, count entries
}

// rewriteAggregate splits an aggregate query into shard-local partial
// aggregates plus a coordinator recombination plan. avg(x) is the one
// non-trivial split: shards return sum(x) and count(*) (the engine has
// no NULLs, so count(*) equals count(x)), and the coordinator divides
// the merged sums — the textbook algebraic-aggregate decomposition.
func rewriteAggregate(stmt *sqlparser.SelectStmt) (*queryPlan, error) {
	shard := &sqlparser.SelectStmt{From: stmt.From, Where: stmt.Where, GroupBy: stmt.GroupBy}
	for _, g := range stmt.GroupBy {
		shard.Items = append(shard.Items, sqlparser.SelectItem{Col: g})
	}

	p := &aggQueryPlan{nGroup: len(stmt.GroupBy)}
	entryIdx := map[string]int{}
	addEntry := func(it sqlparser.SelectItem, kind string) int {
		k := it.String()
		if i, ok := entryIdx[k]; ok {
			return i
		}
		shard.Items = append(shard.Items, it)
		p.entries = append(p.entries, kind)
		entryIdx[k] = len(p.entries) - 1
		return len(p.entries) - 1
	}

	for _, it := range stmt.Items {
		switch it.Agg {
		case "":
			gi := -1
			for i, g := range stmt.GroupBy {
				if strings.EqualFold(g.Column, it.Col.Column) &&
					(g.Qualifier == "" || it.Col.Qualifier == "" || strings.EqualFold(g.Qualifier, it.Col.Qualifier)) {
					gi = i
					break
				}
			}
			if gi < 0 {
				return nil, unsupportedf("column %s must appear in GROUP BY", it.Col)
			}
			name, err := qualifiedOutName(stmt, it.Col)
			if err != nil {
				return nil, err
			}
			p.outputs = append(p.outputs, outputRef{kind: 'g', a: gi})
			p.columns = append(p.columns, name)
		case "count", "sum", "min", "max":
			idx := addEntry(it, it.Agg)
			p.outputs = append(p.outputs, outputRef{kind: 'a', a: idx})
			p.columns = append(p.columns, it.String())
		case "avg":
			sumIdx := addEntry(sqlparser.SelectItem{Agg: "sum", Col: it.Col}, "sum")
			cntIdx := addEntry(sqlparser.SelectItem{Agg: "count", AggStar: true}, "count")
			p.outputs = append(p.outputs, outputRef{kind: 'v', a: sumIdx, b: cntIdx})
			p.columns = append(p.columns, it.String())
		default:
			return nil, unsupportedf("aggregate %q cannot be recombined across shards", it.Agg)
		}
	}

	if len(stmt.OrderBy) > 0 {
		for _, o := range stmt.OrderBy {
			if findColumnIndex(p.columns, o.Col) < 0 {
				return nil, unsupportedf("ORDER BY column %s must appear in the select list for a merged fleet query", o.Col)
			}
		}
	}
	return &queryPlan{shardSQL: shard.String(), agg: p, orderBy: stmt.OrderBy, limit: stmt.Limit}, nil
}

// qualifiedOutName reproduces the engine's output naming for a plain
// column: binding.column, both lowercased, with an unqualified reference
// resolved against the sole FROM table.
func qualifiedOutName(stmt *sqlparser.SelectStmt, col sqlparser.ColumnRef) (string, error) {
	q := col.Qualifier
	if q == "" {
		if len(stmt.From) != 1 {
			return "", unsupportedf("unqualified column %s is ambiguous in a multi-table fleet query", col)
		}
		q = stmt.From[0].Binding()
	}
	return strings.ToLower(q) + "." + strings.ToLower(col.Column), nil
}

// mergeResults fills out.Columns and (when keepRows) out.Rows from the
// per-shard results according to the plan.
func mergeResults(out *Result, results []*progressdb.Result, qp *queryPlan, keepRows bool) error {
	if qp.agg != nil {
		out.Columns = qp.agg.columns
	} else if len(results) > 0 {
		out.Columns = results[0].Columns
	}
	if !keepRows {
		return nil
	}

	var rows [][]interface{}
	if qp.agg != nil {
		rows = mergeAggregate(results, qp.agg)
	} else if len(qp.orderBy) > 0 {
		var err error
		rows, err = mergeOrdered(results, qp.orderBy, out.Columns)
		if err != nil {
			return err
		}
	} else {
		for _, res := range results {
			rows = append(rows, res.Rows...)
		}
	}

	if qp.agg != nil && len(qp.orderBy) > 0 {
		if err := sortRows(rows, qp.orderBy, out.Columns); err != nil {
			return err
		}
	}
	if qp.limit != nil && int64(len(rows)) > *qp.limit {
		rows = rows[:*qp.limit]
	}
	out.Rows = rows
	return nil
}

// mergeAggregate recombines partial aggregates by group key. Group order
// is first-seen in shard order — deterministic, though generally
// different from any single shard's order (multiset-stable, like the
// engine's own hash aggregation).
func mergeAggregate(results []*progressdb.Result, p *aggQueryPlan) [][]interface{} {
	type groupAcc struct {
		groupVals []interface{}
		aggs      []interface{}
	}
	accs := map[string]*groupAcc{}
	var order []string
	for _, res := range results {
		for _, row := range res.Rows {
			key := groupKey(row[:p.nGroup])
			a, ok := accs[key]
			if !ok {
				a = &groupAcc{groupVals: row[:p.nGroup], aggs: make([]interface{}, len(p.entries))}
				accs[key] = a
				order = append(order, key)
			}
			for i, kind := range p.entries {
				a.aggs[i] = combine(kind, a.aggs[i], row[p.nGroup+i])
			}
		}
	}

	rows := make([][]interface{}, 0, len(order))
	for _, key := range order {
		a := accs[key]
		rowOut := make([]interface{}, len(p.outputs))
		for i, o := range p.outputs {
			switch o.kind {
			case 'g':
				rowOut[i] = a.groupVals[o.a]
			case 'a':
				rowOut[i] = a.aggs[o.a]
			case 'v':
				rowOut[i] = a.aggs[o.a].(float64) / float64(a.aggs[o.b].(int64))
			}
		}
		rows = append(rows, rowOut)
	}
	return rows
}

// combine folds one shard's partial aggregate value into the running
// accumulator. Engine typing: count emits int64, sum/avg float64,
// min/max the column's own type.
func combine(kind string, acc, v interface{}) interface{} {
	if acc == nil {
		return v
	}
	switch kind {
	case "count":
		return acc.(int64) + v.(int64)
	case "sum":
		return acc.(float64) + v.(float64)
	case "min":
		if valueLess(v, acc) {
			return v
		}
		return acc
	default: // max
		if valueLess(acc, v) {
			return v
		}
		return acc
	}
}

// groupKey encodes group-by values into a map key. Type tags keep
// int64(1) and "1" distinct; float bits keep -0/NaN stable.
func groupKey(vals []interface{}) string {
	var b strings.Builder
	for _, v := range vals {
		switch x := v.(type) {
		case int64:
			fmt.Fprintf(&b, "i%d", x)
		case float64:
			fmt.Fprintf(&b, "f%x", math.Float64bits(x))
		case string:
			b.WriteByte('s')
			b.WriteString(x)
		default:
			fmt.Fprintf(&b, "?%v", x)
		}
		b.WriteByte(0)
	}
	return b.String()
}

// mergeOrdered k-way-merges the per-shard sorted streams. Ties take the
// lowest shard id, keeping the merge deterministic.
func mergeOrdered(results []*progressdb.Result, orderBy []sqlparser.OrderItem, columns []string) ([][]interface{}, error) {
	keys, err := orderKeyIndexes(orderBy, columns)
	if err != nil {
		return nil, err
	}
	total := 0
	pos := make([]int, len(results))
	for _, res := range results {
		total += len(res.Rows)
	}
	rows := make([][]interface{}, 0, total)
	for len(rows) < total {
		best := -1
		for s, res := range results {
			if pos[s] >= len(res.Rows) {
				continue
			}
			if best < 0 || rowLess(res.Rows[pos[s]], results[best].Rows[pos[best]], keys, orderBy) {
				best = s
			}
		}
		rows = append(rows, results[best].Rows[pos[best]])
		pos[best]++
	}
	return rows, nil
}

// sortRows sorts merged rows globally (aggregate path — shard output
// arrives grouped, not ordered).
func sortRows(rows [][]interface{}, orderBy []sqlparser.OrderItem, columns []string) error {
	keys, err := orderKeyIndexes(orderBy, columns)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rowLess(rows[i], rows[j], keys, orderBy) })
	return nil
}

// orderKeyIndexes resolves ORDER BY columns against output column names.
func orderKeyIndexes(orderBy []sqlparser.OrderItem, columns []string) ([]int, error) {
	keys := make([]int, len(orderBy))
	for i, o := range orderBy {
		idx := findColumnIndex(columns, o.Col)
		if idx < 0 {
			return nil, unsupportedf("ORDER BY column %s not present in merged output columns %v", o.Col, columns)
		}
		keys[i] = idx
	}
	return keys, nil
}

// findColumnIndex matches a column reference against output column
// names. The engine emits plain columns as "binding.column", so an
// exact (qualified) match is tried first, then the bare column name,
// then a ".column" suffix match against qualified names.
func findColumnIndex(columns []string, col sqlparser.ColumnRef) int {
	for i, c := range columns {
		if strings.EqualFold(c, col.String()) {
			return i
		}
	}
	for i, c := range columns {
		if strings.EqualFold(c, col.Column) {
			return i
		}
	}
	if col.Qualifier == "" {
		suffix := "." + strings.ToLower(col.Column)
		for i, c := range columns {
			if strings.HasSuffix(strings.ToLower(c), suffix) {
				return i
			}
		}
	}
	return -1
}

// rowLess compares two rows on the order keys.
func rowLess(a, b []interface{}, keys []int, orderBy []sqlparser.OrderItem) bool {
	for i, k := range keys {
		av, bv := a[k], b[k]
		if valueLess(av, bv) {
			return !orderBy[i].Desc
		}
		if valueLess(bv, av) {
			return orderBy[i].Desc
		}
	}
	return false
}

// valueLess orders result values: numerics numerically (int64 and
// float64 compare through float64, matching the engine's mixed-type
// comparison), strings byte-wise.
func valueLess(a, b interface{}) bool {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return x < y
		case float64:
			return float64(x) < y
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return x < float64(y)
		case float64:
			return x < y
		}
	case string:
		if y, ok := b.(string); ok {
			return x < y
		}
	}
	return false
}

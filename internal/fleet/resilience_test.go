package fleet

import (
	"errors"
	"fmt"
	"testing"

	"progressdb/internal/storage"
)

// resilientFleet builds an n-shard paper-workload fleet with explicit
// retry/breaker tuning so the tests don't depend on defaults.
func resilientFleet(t *testing.T, n int, cfg Config) *Fleet {
	t.Helper()
	cfg.Shards = n
	cfg.Shard = shardCfg
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.LoadPaperWorkload(0.002, false); err != nil {
		t.Fatal(err)
	}
	// Drop the pool caches the load left warm: the fault schedules these
	// tests install target disk reads, so the queries must actually read.
	if err := f.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return f
}

// transientSpec is a seeded transient-only schedule sized to stay inside
// the coordinator's retry budget: readerr=1 makes every targeted access
// fault until the max= cap is spent, transient=1 keeps every fault
// retryable, and max=10 burns down as 4 (attempt 1 surfaces after the
// bufferpool's 4 tries) + 4 (attempt 2) + 2 (absorbed inside attempt 3)
// — exactly two coordinator retries, then success.
const transientSpec = "seed=42,readerr=1,transient=1,max=10,target=base"

// runQuerySet executes the query list sequentially and returns, per
// query, the result multiset and retry count. Any error fails the test:
// transient faults must never surface to the fleet's caller.
func runQuerySet(t *testing.T, f *Fleet, queries []string) (sets []map[string]int, retries []int) {
	t.Helper()
	for _, q := range queries {
		lastDone := -1.0
		res, err := f.Exec(q, func(rep Report) {
			if rep.DoneU < lastDone-1e-9 {
				t.Errorf("%q: global DoneU regressed %g -> %g across a retry", q, lastDone, rep.DoneU)
			}
			lastDone = rep.DoneU
		})
		if err != nil {
			t.Fatalf("%q: transient-only schedule surfaced an error: %v", q, err)
		}
		sets = append(sets, multiset(res.Rows))
		retries = append(retries, res.Retries)
	}
	return sets, retries
}

// TestFleetDeterministicTransientFailover is the acceptance scenario for
// retry determinism: two fleets with identical shard seeds and an
// identical transient-fault schedule on shard 1 must run the same query
// set to identical results with identical retry counts, and no query may
// see an error — the coordinator's retry loop absorbs every transient
// fault, with backoff charged to the shard's virtual clock.
func TestFleetDeterministicTransientFailover(t *testing.T) {
	queries := []string{
		`select * from customer where nationkey < 12`,
		`select count(*), sum(quantity) from lineitem`,
		`select nationkey, count(*) from customer group by nationkey`,
	}
	cfg := Config{MaxSubqueryRetries: 2, RetryBackoffSeconds: 0.05}

	var sets [2][]map[string]int
	var retries [2][]int
	for run := 0; run < 2; run++ {
		f := resilientFleet(t, 3, cfg)
		if err := f.SetShardFaultSpec(1, transientSpec); err != nil {
			t.Fatal(err)
		}
		sets[run], retries[run] = runQuerySet(t, f, queries)
		if err := f.CheckLeaks(); err != nil {
			t.Fatalf("run %d: leaks after transient failover: %v", run, err)
		}
	}

	totalRetries := 0
	for qi := range queries {
		if retries[0][qi] != retries[1][qi] {
			t.Errorf("query %d: run 0 took %d retries, run 1 took %d — failover is not deterministic",
				qi, retries[0][qi], retries[1][qi])
		}
		totalRetries += retries[0][qi]
		if len(sets[0][qi]) != len(sets[1][qi]) {
			t.Fatalf("query %d: result cardinality differs across runs", qi)
		}
		for k, n := range sets[0][qi] {
			if sets[1][qi][k] != n {
				t.Fatalf("query %d: row %q ×%d in run 0, ×%d in run 1", qi, k, n, sets[1][qi][k])
			}
		}
	}
	if totalRetries == 0 {
		t.Fatal("schedule induced no retries; the test exercised nothing")
	}

	// The retried queries must also be *correct*, not merely stable.
	ref := referenceDB(t)
	for qi, q := range queries {
		res, err := ref.Exec(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := multiset(res.Rows)
		if len(want) != len(sets[0][qi]) {
			t.Fatalf("query %d: fleet result differs from single-engine reference", qi)
		}
		for k, n := range want {
			if sets[0][qi][k] != n {
				t.Fatalf("query %d: row %q ×%d reference, ×%d fleet", qi, k, n, sets[0][qi][k])
			}
		}
	}
}

// TestFleetRetryAccounting pins where retry attribution lands: the
// per-shard ShardResult names the faulted shard, healthy shards report
// zero retries, and the shard's DoneU includes the failed attempts' work.
func TestFleetRetryAccounting(t *testing.T) {
	f := resilientFleet(t, 3, Config{MaxSubqueryRetries: 2, RetryBackoffSeconds: 0.05})
	if err := f.SetShardFaultSpec(1, transientSpec); err != nil {
		t.Fatal(err)
	}
	res, err := f.Exec(`select count(*) from customer`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	for _, sr := range res.Shards {
		if sr.Shard == 1 {
			if sr.Retries != res.Retries {
				t.Errorf("shard 1 retries = %d, total = %d", sr.Retries, res.Retries)
			}
			if sr.DoneU <= 0 {
				t.Errorf("shard 1 DoneU = %g after retried attempts", sr.DoneU)
			}
		} else if sr.Retries != 0 {
			t.Errorf("healthy shard %d charged %d retries", sr.Shard, sr.Retries)
		}
	}
	hs := f.Health()
	if hs[1].Retries == 0 || hs[0].Retries != 0 {
		t.Errorf("health retries = [%d %d %d], want only shard 1 > 0", hs[0].Retries, hs[1].Retries, hs[2].Retries)
	}
}

// permanentSpec fails every targeted read with a permanent fault: the
// storage layer does not retry it and neither does the coordinator.
const permanentSpec = "seed=7,readerr=1,transient=0,target=base"

// subqueriesExecuted reads the coordinator's executed-subquery counter.
func subqueriesExecuted(t *testing.T, f *Fleet) float64 {
	t.Helper()
	for _, sm := range f.Metrics() {
		if sm.Name == "fleet_subqueries_total" {
			return sm.Value
		}
	}
	t.Fatal("fleet_subqueries_total not registered")
	return 0
}

// TestFleetBreakerTripAndRecovery walks the breaker state machine end to
// end under a permanently sick shard: threshold consecutive failures trip
// it open (queries fail with shard attribution), subsequent queries fail
// fast without executing a subquery on the sick shard, and after the
// probe quota a half-open probe against the healed shard closes it again.
func TestFleetBreakerTripAndRecovery(t *testing.T) {
	f := resilientFleet(t, 3, Config{
		MaxSubqueryRetries: 2,
		BreakerThreshold:   3,
		BreakerProbeAfter:  2,
	})
	if err := f.SetShardFaultSpec(1, permanentSpec); err != nil {
		t.Fatal(err)
	}
	const q = `select count(*) from customer`

	// Three consecutive permanent failures: each must attribute shard 1
	// with a typed I/O fault and exactly one executed attempt.
	for i := 0; i < 3; i++ {
		_, err := f.Exec(q, nil)
		var se *ShardError
		if !errors.As(err, &se) {
			t.Fatalf("query %d: %v, want *ShardError", i, err)
		}
		if se.Shard != 1 || se.Attempts != 1 {
			t.Fatalf("query %d: shard %d after %d attempts, want shard 1 after 1", i, se.Shard, se.Attempts)
		}
		var iof *storage.IOFault
		if !errors.As(err, &iof) {
			t.Fatalf("query %d: error chain lost the injected fault: %v", i, err)
		}
		if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("query %d: breaker opened before the threshold", i)
		}
	}
	if hs := f.Health(); hs[1].Breaker != "open" || hs[1].Trips != 1 {
		t.Fatalf("after threshold failures: shard 1 health %+v, want open with 1 trip", hs[1])
	}

	// While open: fail fast. No subquery may be executed on any shard for
	// the rejected fan-out (the sick shard is skipped, the siblings are
	// canceled before the error surfaces), and the error says so.
	before := subqueriesExecuted(t, f)
	_, err := f.Exec(q, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker open: err = %v, want errors.Is ErrBreakerOpen", err)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 1 || se.Attempts != 0 || se.Breaker != "open" {
		t.Fatalf("fast-fail attribution: %+v", se)
	}
	fastFailed := subqueriesExecuted(t, f)
	if got := fastFailed - before; got > 2 {
		t.Fatalf("fast-failed query executed %g subqueries on the sick shard's account", got)
	}
	if hs := f.Health(); hs[1].FastFails == 0 {
		t.Fatal("fast-fail not counted in shard health")
	}

	// Heal the shard, then spend the probe quota: one more fast-fail,
	// then the next fan-out is admitted as a half-open probe, succeeds,
	// and closes the breaker.
	if err := f.SetShardFaultSpec(1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec(q, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe quota not yet spent: err = %v, want fast-fail", err)
	}
	res, err := f.Exec(q, nil)
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	ref := referenceDB(t)
	refRes, err := ref.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(res.Rows[0][0]), fmt.Sprint(refRes.Rows[0][0]); got != want {
		t.Fatalf("post-recovery count = %s, want %s", got, want)
	}
	if hs := f.Health(); hs[1].Breaker != "closed" || hs[1].ConsecutiveFailures != 0 {
		t.Fatalf("after successful probe: shard 1 health %+v, want closed", hs[1])
	}
	if err := f.CheckLeaks(); err != nil {
		t.Fatalf("leaks after breaker cycle: %v", err)
	}
}

// TestFleetBreakerDisabled: BreakerThreshold < 0 turns the breaker off —
// a permanently sick shard fails every query the slow way, with real
// attempts, and never fast-fails.
func TestFleetBreakerDisabled(t *testing.T) {
	f := resilientFleet(t, 2, Config{BreakerThreshold: -1, MaxSubqueryRetries: -1})
	if err := f.SetShardFaultSpec(1, permanentSpec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, err := f.Exec(`select count(*) from customer`, nil)
		if err == nil {
			t.Fatalf("query %d: sick shard did not fail", i)
		}
		if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("query %d: disabled breaker fast-failed: %v", i, err)
		}
	}
	if hs := f.Health(); hs[1].Trips != 0 || hs[1].FastFails != 0 {
		t.Fatalf("disabled breaker recorded activity: %+v", hs[1])
	}
}

// TestFleetEstimateCostU: the fleet estimate is the sum of per-shard
// optimizer estimates, it prices without executing, and unsupported
// queries are rejected the same way exec rejects them.
func TestFleetEstimateCostU(t *testing.T) {
	f := paperFleet(t, 3)
	u, err := f.EstimateCostU(`select count(*) from lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 {
		t.Fatalf("estimate = %g, want > 0", u)
	}
	var perShard float64
	for i := 0; i < f.Shards(); i++ {
		su, err := f.shards[i].db.EstimateCostU(`select count(*) from lineitem`)
		if err != nil {
			t.Fatal(err)
		}
		perShard += su
	}
	if diff := u - perShard; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("fleet estimate %g != sum of shard estimates %g", u, perShard)
	}
	if _, err := f.EstimateCostU(`select * from customer c, lineitem l where c.nationkey = l.orderkey`); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("estimate of non-co-partitioned join: %v, want ErrUnsupported", err)
	}
	if subqueriesExecuted(t, f) != 0 {
		t.Fatal("EstimateCostU executed a subquery")
	}
}

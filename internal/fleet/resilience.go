// Per-shard failure containment: a closed/open/half-open circuit
// breaker in front of every shard, and the retry/breaker bookkeeping the
// coordinator's fan-out consults.
//
// The breaker's job is latency containment, not correctness: a fleet
// query needs every shard, so a sick shard still fails the query — but
// an open breaker fails it *fast*, before the fan-out pays the shard's
// full retry-and-backoff budget again. Trip happens after a configured
// number of consecutive subquery failures that survived the retry
// policy; while open, fan-outs are rejected immediately until a probe
// quota is spent, at which point one subquery is admitted as a
// half-open probe — success closes the breaker, failure re-opens it.
//
// State transitions are driven purely by query outcomes (counted
// probes, not timers): the fleet's clocks are virtual and only advance
// when work is charged, so a wall-time cooldown would never elapse on
// an idle shard and a vclock cooldown would be load-dependent. Counting
// rejected fan-outs keeps recovery deterministic under test.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Breaker states, in gauge order (fleet_shard_breaker_state values).
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breaker outcome classes.
const (
	outcomeSuccess = iota
	outcomeFailure
	// outcomeNeutral marks context-canceled subqueries: a sibling's
	// failure (or the user) tore the query down, which says nothing
	// about this shard's health.
	outcomeNeutral
)

// ErrBreakerOpen is the sentinel under every fast-fail rejection;
// errors.Is(err, ErrBreakerOpen) identifies them through *ShardError.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerOpenError is a fan-out rejected without touching the shard
// because its circuit breaker is open.
type BreakerOpenError struct {
	// Shard is the sick shard.
	Shard int
	// ConsecutiveFailures is the failure streak that tripped the breaker.
	ConsecutiveFailures int
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("shard %d failing fast: %v after %d consecutive subquery failures",
		e.Shard, ErrBreakerOpen, e.ConsecutiveFailures)
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// breaker is one shard's circuit breaker plus its resilience counters.
// All fields are guarded by mu; enabled is immutable after New.
type breaker struct {
	mu         sync.Mutex
	threshold  int // consecutive failures to trip; <= 0 disables
	probeAfter int // fast-fails while open before admitting a probe

	state       int32
	consecutive int // failure streak (resets on success)
	denied      int // fast-fails since the breaker last opened

	// Lifetime counters, surfaced by Fleet.Health.
	retries   int64
	trips     int64
	fastFails int64
}

// allow decides whether a fan-out may touch the shard. probe marks the
// admitted call as a half-open probe; when !ok, streak reports the
// failure streak for the rejection error.
func (b *breaker) allow() (ok, probe bool, streak int) {
	if b.threshold <= 0 {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false, 0
	case breakerHalfOpen:
		// A probe is already in flight; everyone else keeps failing fast.
		b.fastFails++
		return false, false, b.consecutive
	default: // breakerOpen
		b.denied++
		if b.denied > b.probeAfter {
			b.state = breakerHalfOpen
			return true, true, 0
		}
		b.fastFails++
		return false, false, b.consecutive
	}
}

// record folds one executed subquery's outcome back into the breaker and
// reports whether this outcome tripped it open.
func (b *breaker) record(probe bool, outcome int) (tripped bool) {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch outcome {
	case outcomeSuccess:
		b.state = breakerClosed
		b.consecutive = 0
		b.denied = 0
	case outcomeNeutral:
		if probe {
			// The probe never finished; re-open with the quota already
			// spent so the next fan-out probes again.
			b.state = breakerOpen
			b.denied = b.probeAfter
		}
	case outcomeFailure:
		b.consecutive++
		if probe {
			b.state = breakerOpen
			b.denied = 0
			return false
		}
		if b.state == breakerClosed && b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.denied = 0
			b.trips++
			return true
		}
	}
	return false
}

func (b *breaker) noteRetry() {
	b.mu.Lock()
	b.retries++
	b.mu.Unlock()
}

// stateValue returns the current state as the breaker-state gauge value.
func (b *breaker) stateValue() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(b.state)
}

func breakerStateName(v int32) string {
	switch v {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// ShardHealth is one shard's live resilience summary, exposed through
// Fleet.Health and the serving layer's /healthz.
type ShardHealth struct {
	// Shard is the shard id.
	Shard int
	// Breaker is the circuit breaker state: "closed", "open", or
	// "half_open".
	Breaker string
	// ConsecutiveFailures is the current subquery failure streak.
	ConsecutiveFailures int
	// Retries counts transient-fault subquery retries on this shard.
	Retries int64
	// Trips counts closed→open breaker transitions.
	Trips int64
	// FastFails counts fan-outs rejected without touching the shard.
	FastFails int64
}

// Health snapshots every shard's breaker state and resilience counters,
// in shard order.
func (f *Fleet) Health() []ShardHealth {
	out := make([]ShardHealth, len(f.shards))
	for i, b := range f.breakers {
		b.mu.Lock()
		out[i] = ShardHealth{
			Shard:               i,
			Breaker:             breakerStateName(b.state),
			ConsecutiveFailures: b.consecutive,
			Retries:             b.retries,
			Trips:               b.trips,
			FastFails:           b.fastFails,
		}
		b.mu.Unlock()
	}
	return out
}

// classifyOutcome maps a completed subquery's error to a breaker
// outcome class.
func classifyOutcome(err error) int {
	switch {
	case err == nil:
		return outcomeSuccess
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return outcomeNeutral
	default:
		return outcomeFailure
	}
}

// recordShardOutcome feeds one executed subquery's outcome to the
// shard's breaker and refreshes the breaker-state gauge.
func (f *Fleet) recordShardOutcome(id int, probe bool, err error) {
	b := f.breakers[id]
	if b.record(probe, classifyOutcome(err)) {
		f.met.trips.Inc()
	}
	f.met.breakerState[id].Set(b.stateValue())
}

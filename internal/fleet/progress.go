// Global progress aggregation: N per-shard indicator streams merged into
// one monotone fleet-level stream.
//
// The merge rule, in the paper's terms: work U is additive across
// partitions, so global DoneU and the global total estimate are sums of
// the latest per-shard figures; speed is the sum of the speeds of shards
// still running; elapsed time is the max across shards (parallel
// execution — the vclock barrier merge); remaining time is the max of
// the per-shard remaining estimates, because the fleet finishes when its
// slowest shard does. Percent is clamped monotone: per-shard DoneU never
// decreases, but per-shard total estimates are refined both up and down,
// so the raw ratio can regress — the coordinator publishes its running
// maximum, the same "don't walk backwards" discipline the single-engine
// indicator applies within a segment.
package fleet

import (
	"math"
	"sync"

	"progressdb"
)

// ShardReport is one shard's latest indicator refresh, tagged with the
// shard id.
type ShardReport struct {
	Shard  int
	Report progressdb.Report
}

// Report is one aggregated fleet-level progress refresh: the global
// figures plus the per-shard breakdown they were derived from.
type Report struct {
	progressdb.Report
	// Shards holds the latest refresh of every shard heard from so far,
	// in shard order.
	Shards []ShardReport
}

// aggregator folds per-shard refreshes into global reports. All merge
// state is guarded by mu; reports are built (and sequenced) under it,
// then handed to the observer outside it. Publishing used to happen
// under mu directly, which meant a slow observer — the server's paced
// subscriber fan-out sleeps between refreshes — stalled every shard
// goroutine trying to ingest an update; progresslint's lockdisc
// analyzer flagged the callback-under-mutex and the split below is the
// fix.
type aggregator struct {
	f          *Fleet
	onProgress func(Report)

	// pubMu serializes observer delivery, outside mu. pubSeq is the
	// sequence number of the newest report delivered: a report overtaken
	// while waiting for the observer is dropped, never delivered out of
	// order.
	//
	//lint:lockcoarse delivery lock: the observer callback paces/blocks by design
	pubMu  sync.Mutex
	pubSeq uint64

	mu         sync.Mutex
	seq        uint64
	latest     []progressdb.Report
	seen       []bool
	maxPercent float64
	history    []Report
	finished   bool

	// Retry base offsets, per shard: a retried subquery's indicator
	// stream restarts at zero, but the failed attempt's work was really
	// done — folding it into a base keeps the aggregated DoneU and
	// elapsed time monotone across retries. baseEst carries the spent
	// work into the total estimate (the retry's own estimate comes on
	// top); baseElapsed additionally accumulates retry backoff waits.
	baseDone, baseEst, baseElapsed []float64
	baseSegments                   []int
}

func newAggregator(f *Fleet, onProgress func(Report)) *aggregator {
	n := len(f.shards)
	return &aggregator{
		f:            f,
		onProgress:   onProgress,
		latest:       make([]progressdb.Report, n),
		seen:         make([]bool, n),
		baseDone:     make([]float64, n),
		baseEst:      make([]float64, n),
		baseElapsed:  make([]float64, n),
		baseSegments: make([]int, n),
	}
}

// shardUpdate ingests one shard refresh and publishes the new global
// report. Refreshes are shifted by the shard's retry base offsets, so
// the stored per-shard latest (and the breakdown on the wire) is always
// in cumulative across-attempts terms.
func (a *aggregator) shardUpdate(id int, r progressdb.Report) {
	rep, seq, ok := a.ingestUpdate(id, r)
	if ok {
		a.deliver(rep, seq)
	}
}

// ingestUpdate folds one refresh into the merge state and builds the
// resulting global report, entirely under mu.
func (a *aggregator) ingestUpdate(id int, r progressdb.Report) (Report, uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return Report{}, 0, false // terminal report already built; late stragglers are dropped
	}
	r.DoneU += a.baseDone[id]
	r.EstimatedCostU += a.baseEst[id]
	r.ElapsedSeconds += a.baseElapsed[id]
	r.SegmentsDone += a.baseSegments[id]
	a.latest[id] = r
	a.seen[id] = true
	a.f.met.shardPercent[id].Set(r.Percent)
	a.f.met.shardDone[id].Set(r.DoneU)
	rep, seq := a.buildLocked(false)
	return rep, seq, true
}

// shardRetry folds a failed attempt's cumulative progress into the
// shard's base offsets before the coordinator re-runs the subquery, and
// charges the upcoming backoff wait to the shard's elapsed base. The
// shard's latest is pinned at the fold point so the global stream stays
// consistent until the retry's first refresh arrives.
func (a *aggregator) shardRetry(id int, backoff float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.baseElapsed[id] += backoff
	if !a.seen[id] {
		return // failed before its first refresh; only the backoff counts
	}
	r := a.latest[id] // already cumulative
	a.baseDone[id] = r.DoneU
	a.baseEst[id] = r.DoneU
	a.baseElapsed[id] = r.ElapsedSeconds + backoff
	a.baseSegments[id] = r.SegmentsDone
	a.latest[id] = progressdb.Report{
		ElapsedSeconds: a.baseElapsed[id],
		EstimatedCostU: r.EstimatedCostU,
		DoneU:          r.DoneU,
		Percent:        r.Percent,
		SegmentsDone:   r.SegmentsDone,
		StepPercent:    r.StepPercent,
		CurrentSegment: -1,
	}
}

// doneBase exposes a shard's retry work offset for the coordinator's
// final per-shard summary.
func (a *aggregator) doneBase(id int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.baseDone[id]
}

// finish publishes the exactly-once terminal report. Only the success
// path calls it: like the single engine, a failed or canceled query ends
// without a Finished refresh and the error is the terminal signal.
func (a *aggregator) finish() {
	rep, seq, ok := a.ingestFinish()
	if ok {
		a.deliver(rep, seq)
	}
}

func (a *aggregator) ingestFinish() (Report, uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return Report{}, 0, false
	}
	a.finished = true
	rep, seq := a.buildLocked(true)
	return rep, seq, true
}

// deliver hands one built report to the observer. Delivery runs outside
// mu so a paced or otherwise slow observer never stalls shard
// goroutines; pubMu keeps observers single-file, and the sequence check
// drops a report that a newer one overtook while it waited. finished is
// set before the terminal report is sequenced, so that report carries
// the run's highest seq: it is never dropped and still arrives exactly
// once.
func (a *aggregator) deliver(rep Report, seq uint64) {
	if a.onProgress == nil {
		return
	}
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	if seq <= a.pubSeq {
		return
	}
	a.pubSeq = seq
	a.onProgress(rep)
}

// buildLocked merges the per-shard latest reports into the next global
// report, records it in the history, and assigns it the next sequence
// number. Callers hold mu.
func (a *aggregator) buildLocked(final bool) (Report, uint64) {
	g := progressdb.Report{CurrentSegment: -1, RemainingSeconds: math.NaN()}
	for i := range a.latest {
		if !a.seen[i] {
			continue
		}
		r := a.latest[i]
		g.DoneU += r.DoneU
		g.EstimatedCostU += r.EstimatedCostU
		g.SegmentsDone += r.SegmentsDone
		if r.ElapsedSeconds > g.ElapsedSeconds {
			g.ElapsedSeconds = r.ElapsedSeconds
		}
		g.StepPercent += r.StepPercent / float64(len(a.latest))
		if !r.Finished {
			g.SpeedU += r.SpeedU
			if rem := r.RemainingSeconds; !math.IsNaN(rem) && !math.IsInf(rem, 0) {
				if math.IsNaN(g.RemainingSeconds) || rem > g.RemainingSeconds {
					g.RemainingSeconds = rem
				}
			}
		}
	}
	if g.EstimatedCostU > 0 {
		if pct := math.Min(100*g.DoneU/g.EstimatedCostU, 100); pct > a.maxPercent {
			a.maxPercent = pct
		}
	}
	if final {
		a.maxPercent = 100
		g.Finished = true
		g.RemainingSeconds = 0
		g.SpeedU = 0
	}
	g.Percent = a.maxPercent

	rep := Report{Report: g, Shards: make([]ShardReport, 0, len(a.latest))}
	for i := range a.latest {
		if a.seen[i] {
			rep.Shards = append(rep.Shards, ShardReport{Shard: i, Report: a.latest[i]})
		}
	}
	a.history = append(a.history, rep)
	a.f.met.events.Inc()
	a.seq++
	return rep, a.seq
}

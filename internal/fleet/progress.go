// Global progress aggregation: N per-shard indicator streams merged into
// one monotone fleet-level stream.
//
// The merge rule, in the paper's terms: work U is additive across
// partitions, so global DoneU and the global total estimate are sums of
// the latest per-shard figures; speed is the sum of the speeds of shards
// still running; elapsed time is the max across shards (parallel
// execution — the vclock barrier merge); remaining time is the max of
// the per-shard remaining estimates, because the fleet finishes when its
// slowest shard does. Percent is clamped monotone: per-shard DoneU never
// decreases, but per-shard total estimates are refined both up and down,
// so the raw ratio can regress — the coordinator publishes its running
// maximum, the same "don't walk backwards" discipline the single-engine
// indicator applies within a segment.
package fleet

import (
	"math"
	"sync"

	"progressdb"
)

// ShardReport is one shard's latest indicator refresh, tagged with the
// shard id.
type ShardReport struct {
	Shard  int
	Report progressdb.Report
}

// Report is one aggregated fleet-level progress refresh: the global
// figures plus the per-shard breakdown they were derived from.
type Report struct {
	progressdb.Report
	// Shards holds the latest refresh of every shard heard from so far,
	// in shard order.
	Shards []ShardReport
}

// aggregator folds per-shard refreshes into global reports. All state is
// guarded by mu; publishing happens under the lock so observers see a
// totally ordered, monotone stream.
type aggregator struct {
	f          *Fleet
	onProgress func(Report)

	mu         sync.Mutex
	latest     []progressdb.Report
	seen       []bool
	maxPercent float64
	history    []Report
	finished   bool
}

func newAggregator(f *Fleet, onProgress func(Report)) *aggregator {
	return &aggregator{
		f:          f,
		onProgress: onProgress,
		latest:     make([]progressdb.Report, len(f.shards)),
		seen:       make([]bool, len(f.shards)),
	}
}

// shardUpdate ingests one shard refresh and publishes the new global
// report.
func (a *aggregator) shardUpdate(id int, r progressdb.Report) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return // terminal report already published; late stragglers are dropped
	}
	a.latest[id] = r
	a.seen[id] = true
	a.f.met.shardPercent[id].Set(r.Percent)
	a.f.met.shardDone[id].Set(r.DoneU)
	a.publishLocked(false)
}

// finish publishes the exactly-once terminal report. Only the success
// path calls it: like the single engine, a failed or canceled query ends
// without a Finished refresh and the error is the terminal signal.
func (a *aggregator) finish() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.finished = true
	a.publishLocked(true)
}

func (a *aggregator) publishLocked(final bool) {
	g := progressdb.Report{CurrentSegment: -1, RemainingSeconds: math.NaN()}
	for i := range a.latest {
		if !a.seen[i] {
			continue
		}
		r := a.latest[i]
		g.DoneU += r.DoneU
		g.EstimatedCostU += r.EstimatedCostU
		g.SegmentsDone += r.SegmentsDone
		if r.ElapsedSeconds > g.ElapsedSeconds {
			g.ElapsedSeconds = r.ElapsedSeconds
		}
		g.StepPercent += r.StepPercent / float64(len(a.latest))
		if !r.Finished {
			g.SpeedU += r.SpeedU
			if rem := r.RemainingSeconds; !math.IsNaN(rem) && !math.IsInf(rem, 0) {
				if math.IsNaN(g.RemainingSeconds) || rem > g.RemainingSeconds {
					g.RemainingSeconds = rem
				}
			}
		}
	}
	if g.EstimatedCostU > 0 {
		if pct := math.Min(100*g.DoneU/g.EstimatedCostU, 100); pct > a.maxPercent {
			a.maxPercent = pct
		}
	}
	if final {
		a.maxPercent = 100
		g.Finished = true
		g.RemainingSeconds = 0
		g.SpeedU = 0
	}
	g.Percent = a.maxPercent

	rep := Report{Report: g, Shards: make([]ShardReport, 0, len(a.latest))}
	for i := range a.latest {
		if a.seen[i] {
			rep.Shards = append(rep.Shards, ShardReport{Shard: i, Report: a.latest[i]})
		}
	}
	a.history = append(a.history, rep)
	a.f.met.events.Inc()
	if a.onProgress != nil {
		a.onProgress(rep)
	}
}

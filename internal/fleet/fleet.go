// Package fleet serves one logical database from N independent engine
// shards. Tables are hash-partitioned across the shards on a designated
// partition-key column; a coordinator rewrites each incoming query into
// per-shard subqueries, fans them out concurrently, merges the result
// streams, and aggregates per-shard progress reports into one global,
// monotone progress stream.
//
// Each shard is a complete progressdb.DB — its own buffer pool, virtual
// clock, statistics, and fault schedule. The paper's progress model
// composes across partitions: total work is the sum of per-shard U, speed
// is the sum of per-shard observed speeds, and elapsed/remaining time is
// the max across shards (shards run in parallel, so the fleet finishes
// when its slowest shard does — a max-merge of the per-shard vclocks at
// every barrier). Per-shard estimate ledgers are deliberately kept
// separate (König et al. motivate per-partition estimator selection);
// only the coordinator's own fleet_* instruments live on the fleet
// registry.
//
// A single-threaded engine shard admits one subquery at a time, enforced
// by a per-shard mutex. Distinct fleet queries interleave across shards;
// one fleet query's fan-out holds each shard's mutex exactly once, so
// there is no lock-ordering hazard.
package fleet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"progressdb"
	"progressdb/internal/obs"
	"progressdb/internal/tuple"
	"progressdb/internal/workload"
)

// Config configures a fleet.
type Config struct {
	// Shards is the number of engine shards (>= 1).
	Shards int
	// Shard is the per-shard engine configuration. Every shard gets an
	// identical copy (own buffer pool, own virtual clock).
	Shard progressdb.Config
	// ShardFaultSpecs optionally installs a per-shard fault schedule
	// (see progressdb.Config.FaultSpec for the grammar). Entry i applies
	// to shard i; missing entries leave the shard fault-free. A fleet's
	// shards failing independently is exactly what the distributed
	// cancellation path exists for, so chaos tests drive this.
	ShardFaultSpecs []string
	// MaxSubqueryRetries bounds how many times the coordinator re-runs a
	// shard subquery that failed with a transient I/O fault (default 2;
	// negative disables retries). Permanent faults never retry.
	MaxSubqueryRetries int
	// RetryBackoffSeconds is the virtual-seconds wait before the first
	// retry, doubling per attempt and charged to the shard's own vclock
	// via DB.Idle — so backoff is deterministic under faultinject seeds
	// (default 0.05).
	RetryBackoffSeconds float64
	// BreakerThreshold trips a shard's circuit breaker open after this
	// many consecutive subquery failures that survived the retry policy
	// (default 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerProbeAfter is how many fan-outs fail fast against an open
	// breaker before the next one is admitted as a half-open probe
	// (default 3).
	BreakerProbeAfter int
}

// Fleet is a sharded serving layer over N engine shards.
type Fleet struct {
	shards   []*shard
	breakers []*breaker
	reg      *obs.Registry
	met      metrics

	maxRetries   int     // transient-fault retries per shard subquery
	retryBackoff float64 // first retry's virtual-seconds backoff

	mu     sync.Mutex // guards tables
	tables map[string]*tableInfo
}

// tableInfo records how a table is partitioned.
type tableInfo struct {
	key    string // partition-key column name
	keyIdx int    // its position in the schema
}

// shard is one engine plus the mutex serializing subqueries onto it (a
// progressdb.DB is single-threaded by contract).
// A shard's engine invokes its progress callback mid-execution — i.e.
// with shard.mu held — and the callback feeds the aggregator, so the
// shard lock always sits above the aggregator's state and delivery
// locks. The callback edge is a function value the analyzer cannot see
// through, so the hierarchy is declared rather than inferred:
//
//lint:lockorder shard.mu < aggregator.mu
//lint:lockorder shard.mu < aggregator.pubMu

type shard struct {
	id int
	// mu serializes work onto the shard's embedded engine: one subquery
	// (or partition load, or fault-spec install) at a time, exactly like
	// a single-session database. The critical sections deliberately span
	// engine execution and storage I/O — blocking under this lock IS the
	// serialization.
	//
	//lint:lockcoarse a shard admits one subquery at a time; engine execution and storage I/O block under it by design
	mu sync.Mutex
	db *progressdb.DB
}

// metrics is the coordinator's own instrument set, registered on the
// fleet registry (not on any shard's).
type metrics struct {
	queries     *obs.Counter
	unsupported *obs.Counter
	failed      *obs.Counter
	subqueries  *obs.Counter
	cancels     *obs.Counter
	events      *obs.Counter
	rowsMerged  *obs.Counter
	shardsGauge *obs.Gauge

	retries   *obs.Counter
	trips     *obs.Counter
	fastFails *obs.Counter
	probes    *obs.Counter

	shardBusy    []*obs.Gauge
	shardPercent []*obs.Gauge
	shardDone    []*obs.Gauge
	shardQueries []*obs.Counter
	shardRetries []*obs.Counter
	breakerState []*obs.Gauge
}

// New creates a fleet of cfg.Shards engine shards.
func New(cfg Config) (*Fleet, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: shard count %d < 1", cfg.Shards)
	}
	if len(cfg.ShardFaultSpecs) > cfg.Shards {
		return nil, fmt.Errorf("fleet: %d fault specs for %d shards", len(cfg.ShardFaultSpecs), cfg.Shards)
	}
	f := &Fleet{
		reg:          obs.NewRegistry(),
		tables:       make(map[string]*tableInfo),
		maxRetries:   cfg.MaxSubqueryRetries,
		retryBackoff: cfg.RetryBackoffSeconds,
	}
	if f.maxRetries == 0 {
		f.maxRetries = 2
	} else if f.maxRetries < 0 {
		f.maxRetries = 0
	}
	if f.retryBackoff <= 0 {
		f.retryBackoff = 0.05
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	} else if threshold < 0 {
		threshold = 0 // disabled
	}
	probeAfter := cfg.BreakerProbeAfter
	if probeAfter <= 0 {
		probeAfter = 3
	}
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.Shard
		sc.FaultSpec = "" // installed via SetFaultSpec below so a bad spec errors instead of panicking
		db := progressdb.Open(sc)
		spec := cfg.Shard.FaultSpec
		if i < len(cfg.ShardFaultSpecs) && cfg.ShardFaultSpecs[i] != "" {
			spec = cfg.ShardFaultSpecs[i]
		}
		if spec != "" {
			if err := db.SetFaultSpec(spec); err != nil {
				return nil, fmt.Errorf("fleet: shard %d fault spec: %w", i, err)
			}
		}
		f.shards = append(f.shards, &shard{id: i, db: db})
		f.breakers = append(f.breakers, &breaker{threshold: threshold, probeAfter: probeAfter})
	}
	f.wireMetrics()
	return f, nil
}

func (f *Fleet) wireMetrics() {
	r := f.reg
	m := &f.met
	m.queries = r.Counter("fleet_queries_total", "queries submitted to the fleet coordinator")
	m.unsupported = r.Counter("fleet_queries_unsupported_total", "queries rejected as not shard-distributable")
	m.failed = r.Counter("fleet_queries_failed_total", "fleet queries that returned an error")
	m.subqueries = r.Counter("fleet_subqueries_total", "per-shard subqueries fanned out by the coordinator")
	m.cancels = r.Counter("fleet_cancels_propagated_total", "shard failures that triggered cancellation of sibling shards")
	m.events = r.Counter("fleet_progress_events_total", "aggregated global progress reports published")
	m.rowsMerged = r.Counter("fleet_rows_merged_total", "result rows merged by the coordinator across all shards")
	m.shardsGauge = r.Gauge("fleet_shards", "configured shard count")
	m.shardsGauge.Set(float64(len(f.shards)))
	m.retries = r.Counter("fleet_retries_total", "shard subquery retries after transient I/O faults")
	m.trips = r.Counter("fleet_breaker_trips_total", "circuit breakers tripped open (closed to open transitions)")
	m.fastFails = r.Counter("fleet_breaker_fast_fails_total", "fan-outs rejected without touching the shard because its breaker was open")
	m.probes = r.Counter("fleet_breaker_probes_total", "half-open probe subqueries admitted through an open breaker")
	for i := range f.shards {
		lv := strconv.Itoa(i)
		m.shardBusy = append(m.shardBusy, r.LabeledGauge("fleet_shard_busy", "shard", lv, "1 while the shard executes a subquery"))
		m.shardPercent = append(m.shardPercent, r.LabeledGauge("fleet_shard_percent", "shard", lv, "latest per-shard subquery progress percent"))
		m.shardDone = append(m.shardDone, r.LabeledGauge("fleet_shard_done_u", "shard", lv, "latest per-shard completed work in U"))
		m.shardQueries = append(m.shardQueries, r.LabeledCounter("fleet_shard_subqueries_total", "shard", lv, "subqueries executed by this shard"))
		m.shardRetries = append(m.shardRetries, r.LabeledCounter("fleet_shard_retries_total", "shard", lv, "transient-fault subquery retries on this shard"))
		m.breakerState = append(m.breakerState, r.LabeledGauge("fleet_shard_breaker_state", "shard", lv, "circuit breaker state: 0 closed, 1 open, 2 half-open"))
	}
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Registry exposes the coordinator's metrics registry (fleet_* series).
// Shard-internal engine instruments stay on their own registries.
func (f *Fleet) Registry() *obs.Registry { return f.reg }

// Metrics snapshots the coordinator instruments, sorted by series ID.
func (f *Fleet) Metrics() []obs.Sample { return f.reg.Snapshot() }

// MetricsText renders the coordinator instruments in the Prometheus text
// format.
func (f *Fleet) MetricsText() string { return f.reg.PrometheusText() }

// ShardMetricsText renders one shard's engine instruments (empty when
// the shard config has Metrics off). Exposed for per-shard inspection;
// the series names are identical across shards, which is why they are
// not merged into MetricsText.
func (f *Fleet) ShardMetricsText(shard int) (string, error) {
	if shard < 0 || shard >= len(f.shards) {
		return "", fmt.Errorf("fleet: no shard %d (have %d)", shard, len(f.shards))
	}
	sh := f.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.db.MetricsText(), nil
}

// ---- placement & routing ---------------------------------------------

// CreateTable creates the table on every shard and records its partition
// key. Rows subsequently Inserted route to the shard their key value
// hashes to.
func (f *Fleet) CreateTable(name, partitionKey string, cols ...progressdb.Column) error {
	keyIdx := -1
	for i, c := range cols {
		if strings.EqualFold(c.Name, partitionKey) {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return fmt.Errorf("fleet: partition key %q is not a column of table %q", partitionKey, name)
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		err := sh.db.CreateTable(name, cols...)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", sh.id, err)
		}
	}
	f.mu.Lock()
	f.tables[strings.ToLower(name)] = &tableInfo{key: partitionKey, keyIdx: keyIdx}
	f.mu.Unlock()
	return nil
}

// Insert routes one row to the shard owning its partition-key value.
func (f *Fleet) Insert(table string, values ...interface{}) error {
	ti := f.table(table)
	if ti == nil {
		return fmt.Errorf("fleet: table %q has no partition key registered", table)
	}
	if ti.keyIdx >= len(values) {
		return fmt.Errorf("fleet: insert into %q has %d values, partition key is column %d", table, len(values), ti.keyIdx)
	}
	p, err := partitionOfValue(values[ti.keyIdx], len(f.shards))
	if err != nil {
		return fmt.Errorf("fleet: insert into %q: %w", table, err)
	}
	sh := f.shards[p]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.db.Insert(table, values...)
}

func (f *Fleet) table(name string) *tableInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tables[strings.ToLower(name)]
}

// partitionOfValue routes a Go value of any insertable type through the
// workload hash.
func partitionOfValue(v interface{}, parts int) (int, error) {
	switch x := v.(type) {
	case int64:
		return workload.PartitionOf(x, parts), nil
	case int:
		return workload.PartitionOf(int64(x), parts), nil
	case float64:
		return workload.PartitionOfValue(tuple.NewFloat(x), parts), nil
	case string:
		return workload.PartitionOfValue(tuple.NewString(x), parts), nil
	default:
		return 0, fmt.Errorf("partition key value %v has unsupported type %T", v, v)
	}
}

// ---- fleet-wide admin -------------------------------------------------

// Analyze collects optimizer statistics on every shard.
func (f *Fleet) Analyze() error {
	return f.eachShard(func(sh *shard) error { return sh.db.Analyze() })
}

// ColdRestart empties every shard's buffer pool.
func (f *Fleet) ColdRestart() error {
	return f.eachShard(func(sh *shard) error { return sh.db.ColdRestart() })
}

// SetShardFaultSpec installs (or clears, with an empty spec) one shard's
// fault schedule at runtime — after bootstrap, so the faults hit queries
// rather than the load path. Chaos tests drive this.
func (f *Fleet) SetShardFaultSpec(shard int, spec string) error {
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d (have %d)", shard, len(f.shards))
	}
	sh := f.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.db.SetFaultSpec(spec)
}

// CheckLeaks verifies no shard holds leaked temp files or orphaned
// pages; errors from all shards are joined.
func (f *Fleet) CheckLeaks() error {
	var errs []error
	for _, sh := range f.shards {
		sh.mu.Lock()
		if err := sh.db.CheckLeaks(); err != nil {
			errs = append(errs, fmt.Errorf("fleet: shard %d: %w", sh.id, err))
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

func (f *Fleet) eachShard(fn func(*shard) error) error {
	for _, sh := range f.shards {
		sh.mu.Lock()
		err := fn(sh)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", sh.id, err)
		}
	}
	return nil
}

// ---- bootstrap --------------------------------------------------------

// LoadPaperWorkload loads hash partition i of the paper's Table 1 data
// set into shard i, concurrently, and registers the paper tables'
// partition keys. The union across shards is exactly the data set a
// single engine's LoadPaperWorkload produces.
func (f *Fleet) LoadPaperWorkload(scale float64, correlated bool) error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for _, sh := range f.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			errs[sh.id] = sh.db.LoadPaperWorkloadPartition(scale, correlated, sh.id, len(f.shards))
		}(sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fleet: shard %d load: %w", i, err)
		}
	}
	f.registerPaperTables()
	return nil
}

func (f *Fleet) registerPaperTables() {
	schemaOf := map[string]*tuple.Schema{
		"customer":         workload.CustomerSchema(),
		"orders":           workload.OrdersSchema(),
		"lineitem":         workload.LineitemSchema(),
		"customer_subset1": workload.CustomerSchema(),
		"customer_subset2": workload.CustomerSchema(),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for t, k := range workload.PartitionKeys() {
		f.tables[t] = &tableInfo{key: k, keyIdx: schemaOf[t].ColIndex(k)}
	}
}

// LoadDir bootstraps every shard from datagen -partitions output in dir
// (shard i reads the *.p<i>.tbl files) and registers each table's
// partition key from the file headers. The files' partition count must
// match the fleet's shard count.
func (f *Fleet) LoadDir(dir string) error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for _, sh := range f.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			parts, err := sh.db.LoadPartitionFiles(dir, sh.id)
			if err == nil && parts != len(f.shards) {
				err = fmt.Errorf("files are cut into %d partitions, fleet has %d shards", parts, len(f.shards))
			}
			errs[sh.id] = err
		}(sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fleet: shard %d bootstrap: %w", i, err)
		}
	}
	hdrs, err := workload.PartitionHeaders(dir, 0)
	if err != nil {
		return fmt.Errorf("fleet: bootstrap headers: %w", err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, h := range hdrs {
		keyIdx := -1
		for i, c := range h.Columns {
			if strings.EqualFold(c.Name, h.Key) {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return fmt.Errorf("fleet: bootstrap: table %q header names key %q not in its columns", h.Table, h.Key)
		}
		f.tables[strings.ToLower(h.Table)] = &tableInfo{key: h.Key, keyIdx: keyIdx}
	}
	return nil
}

// Package harness reproduces the paper's evaluation (Section 5): it runs
// Q1–Q5 under unloaded, I/O-interference, and CPU-interference scenarios
// and extracts the series behind every figure (4–7, 9–20), plus Table 1
// and the <1% overhead claim.
//
// All times are virtual seconds. The clock's base costs are divided by
// the data scale so that the time axes remain comparable to the paper's
// full-scale runs: a table that is 20x smaller is read at a 20x slower
// virtual rate, leaving scan durations — and therefore figure shapes —
// scale-invariant. CPU costs are not scaled: Q5's inputs (3000-row
// subsets) are fixed-size in the paper and remain so here.
package harness

import (
	"fmt"
	"time"

	"progressdb/internal/catalog"
	"progressdb/internal/core"
	"progressdb/internal/exec"
	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/vclock"
	"progressdb/internal/workload"
)

// Runner configures experiment execution.
type Runner struct {
	// Scale is the workload scale (see workload.Config); default 0.05.
	Scale float64
	// Seed for deterministic data.
	Seed int64
	// UpdatePeriod is the indicator refresh in virtual seconds (paper:
	// 10).
	UpdatePeriod float64
	// WorkMemPages is per-operator memory. The default scales the
	// 2004-era PostgreSQL sort_mem (≈512 KB at scale 1.0), which is what
	// forces the paper's Grace-style hash joins.
	WorkMemPages int
	// BufferPoolPages sizes the buffer pool; default scales 16 MB.
	BufferPoolPages int
	// SpeedWindow overrides the indicator's speed-monitoring window T.
	SpeedWindow float64
	// DecayAlpha enables the decaying-average speed smoother.
	DecayAlpha float64
	// PerSegmentSpeed enables the Section 4.6 per-segment conversion.
	PerSegmentSpeed bool
	// Estimator selects the current-segment output estimator (ablation).
	Estimator core.EstimatorMode
}

func (r Runner) withDefaults() Runner {
	if r.Scale <= 0 {
		r.Scale = 0.05
	}
	if r.UpdatePeriod <= 0 {
		r.UpdatePeriod = 10
	}
	if r.WorkMemPages <= 0 {
		// Scale the 2004-era PostgreSQL sort_mem (64 pages ≈ 512 KB at
		// scale 1.0), floored so partition counts — and therefore the
		// fraction of I/O spent seeking between partition files — stay
		// proportionate to the paper's at small scales.
		r.WorkMemPages = int(64*r.Scale + 0.5)
		if r.WorkMemPages < 16 {
			r.WorkMemPages = 16
		}
	}
	if r.BufferPoolPages <= 0 {
		r.BufferPoolPages = int(2048*r.Scale + 0.5)
		if r.BufferPoolPages < 64 {
			r.BufferPoolPages = 64
		}
	}
	return r
}

// costs returns clock costs calibrated so virtual durations match the
// paper's full-scale runs regardless of Scale.
func (r Runner) costs() vclock.Costs {
	base := vclock.DefaultCosts()
	return vclock.Costs{
		SeqPage:  base.SeqPage / r.Scale,
		RandPage: base.RandPage / r.Scale,
		CPUTuple: base.CPUTuple,
	}
}

// Interference describes a load scenario, specified relative to the
// query's unloaded duration D so that shapes survive recalibration (the
// paper's Q2 file copy ran from 190 s to 885 s of a 510 s unloaded query
// → StartFrac 0.37, EndFrac 1.74).
type Interference struct {
	// Kind is "io" or "cpu" ("" = unloaded).
	Kind string
	// StartFrac and EndFrac position the interval as fractions of the
	// unloaded duration. EndFrac <= StartFrac means "until far past the
	// end".
	StartFrac, EndFrac float64
	// Factor is the slowdown multiplier (4 means each unit takes 4x).
	Factor float64
}

// RunResult is one scenario execution.
type RunResult struct {
	Query         int
	Scenario      string
	Snapshots     []core.Snapshot
	ActualSeconds float64
	// InitialEstU is the optimizer's cost estimate before execution.
	InitialEstU float64
	// ExactCostU is the true query cost (work done at completion).
	ExactCostU float64
	Rows       int64
	// WallSeconds is real (not virtual) execution time, for overhead
	// reporting.
	WallSeconds float64
	// Interference bounds in elapsed virtual seconds (zero if unloaded).
	InterfStart, InterfEnd float64
}

// engine bundles one freshly loaded database.
type engine struct {
	clock *vclock.Clock
	cat   *catalog.Catalog
	ds    *workload.Dataset
}

func (r Runner) newEngine(correlated bool) (*engine, error) {
	clock := vclock.New(r.costs(), nil)
	pool := storage.NewBufferPool(storage.NewDisk(clock), r.BufferPoolPages)
	cat := catalog.New(pool)
	ds, err := workload.Load(cat, workload.Config{
		Scale:            r.Scale,
		Seed:             r.Seed,
		CorrelatedOrders: correlated,
	})
	if err != nil {
		return nil, err
	}
	return &engine{clock: clock, cat: cat, ds: ds}, nil
}

// Run executes query q (1–5) under the given interference and returns
// the collected snapshots and ground truth. Q3 automatically uses the
// correlated orders data, as in the paper.
func (r Runner) Run(q int, interf Interference) (*RunResult, error) {
	r = r.withDefaults()
	correlated := q == 3

	// Interference timing is relative to the unloaded duration; measure
	// that first on an identical engine when needed.
	var unloadedD float64
	if interf.Kind != "" {
		res, err := r.runOnce(q, correlated, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("harness: unloaded calibration run: %w", err)
		}
		unloadedD = res.ActualSeconds
	}
	return r.runOnce(q, correlated, &interf, unloadedD)
}

// RunSMJ runs a customer⋈orders join with a forced sort-merge join —
// the Section 4.5 two-dominant-input case (p = max(qA, qB)) that the
// paper describes but excluded from its prototype.
func (r Runner) RunSMJ() (*RunResult, error) {
	r = r.withDefaults()
	return r.runSQL(
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey",
		0, false, "merge", nil, 0)
}

func (r Runner) runOnce(q int, correlated bool, interf *Interference, unloadedD float64) (*RunResult, error) {
	sql, err := workload.QuerySQL(q)
	if err != nil {
		return nil, err
	}
	return r.runSQL(sql, q, correlated, "", interf, unloadedD)
}

func (r Runner) runSQL(sql string, q int, correlated bool, forceAlgo string, interf *Interference, unloadedD float64) (*RunResult, error) {
	eng, err := r.newEngine(correlated)
	if err != nil {
		return nil, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := optimizer.Plan(eng.cat, stmt, optimizer.Options{
		WorkMemPages:  r.WorkMemPages,
		ForceJoinAlgo: forceAlgo,
	})
	if err != nil {
		return nil, err
	}

	// Cold buffer pool: the paper restarts the machine before each test.
	if err := eng.cat.Pool().Flush(); err != nil {
		return nil, err
	}
	eng.cat.Pool().Clear()

	res := &RunResult{Query: q, Scenario: scenarioName(interf)}
	start := eng.clock.Now()
	if interf != nil && interf.Kind != "" {
		s := start + unloadedD*interf.StartFrac
		e := start + unloadedD*interf.EndFrac
		if interf.EndFrac <= interf.StartFrac {
			e = start + unloadedD*1000
		}
		iv := vclock.Interval{Start: s, End: e}
		switch interf.Kind {
		case "io":
			iv.IOFactor = interf.Factor
		case "cpu":
			iv.CPUFactor = interf.Factor
		default:
			return nil, fmt.Errorf("harness: unknown interference kind %q", interf.Kind)
		}
		prof, err := vclock.NewLoadProfile(iv)
		if err != nil {
			return nil, fmt.Errorf("harness: building load profile: %w", err)
		}
		eng.clock.SetProfile(prof)
		res.InterfStart = s - start
		res.InterfEnd = e - start
	}

	d := segment.Decompose(p, r.WorkMemPages)
	ind := core.New(eng.clock, d, core.Options{
		UpdatePeriod:    r.UpdatePeriod,
		SpeedWindow:     r.SpeedWindow,
		DecayAlpha:      r.DecayAlpha,
		PerSegmentSpeed: r.PerSegmentSpeed,
		Estimator:       r.Estimator,
	})
	res.InitialEstU = ind.InitialTotalU()
	ind.Start()

	env := &exec.Env{
		Pool:         eng.cat.Pool(),
		Clock:        eng.clock,
		WorkMemPages: r.WorkMemPages,
		Reporter:     ind,
		Decomp:       d,
	}
	wallStart := time.Now()
	rows, err := exec.Run(env, p, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: Q%d: %w", q, err)
	}
	res.WallSeconds = time.Since(wallStart).Seconds()
	res.Rows = rows
	res.ActualSeconds = eng.clock.Now() - start
	res.Snapshots = ind.Snapshots()
	if n := len(res.Snapshots); n > 0 {
		res.ExactCostU = res.Snapshots[n-1].DoneU
	}
	return res, nil
}

func scenarioName(interf *Interference) string {
	if interf == nil || interf.Kind == "" {
		return "unloaded"
	}
	return interf.Kind + "-interference"
}

// Plan compiles a workload query for inspection (EXPLAIN-style output in
// cmd/experiments).
func (r Runner) Plan(q int) (string, error) {
	r = r.withDefaults()
	eng, err := r.newEngine(q == 3)
	if err != nil {
		return "", err
	}
	sql, err := workload.QuerySQL(q)
	if err != nil {
		return "", err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := optimizer.Plan(eng.cat, stmt, optimizer.Options{WorkMemPages: r.WorkMemPages})
	if err != nil {
		return "", err
	}
	d := segment.Decompose(p, r.WorkMemPages)
	return plan.Format(p) + "\n" + d.String(), nil
}

// Table1 loads the data set and renders the paper's Table 1.
func (r Runner) Table1() (string, error) {
	r = r.withDefaults()
	eng, err := r.newEngine(false)
	if err != nil {
		return "", err
	}
	return eng.ds.Table1(eng.cat)
}

// OverheadProbe prepares one engine and plan for query q and returns a
// function that executes the query once, with or without the indicator —
// the benchmark form of Overhead (the per-run setup stays outside the
// timed region).
func (r Runner) OverheadProbe(q int) (func(withIndicator bool) error, error) {
	r = r.withDefaults()
	eng, err := r.newEngine(q == 3)
	if err != nil {
		return nil, err
	}
	sql, err := workload.QuerySQL(q)
	if err != nil {
		return nil, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := optimizer.Plan(eng.cat, stmt, optimizer.Options{WorkMemPages: r.WorkMemPages})
	if err != nil {
		return nil, err
	}
	d := segment.Decompose(p, r.WorkMemPages)
	return func(withIndicator bool) error {
		var rep segment.WorkReporter
		if withIndicator {
			ind := core.New(eng.clock, d, core.Options{UpdatePeriod: r.UpdatePeriod})
			ind.Start()
			defer ind.Stop()
			rep = ind
		}
		env := &exec.Env{
			Pool: eng.cat.Pool(), Clock: eng.clock,
			WorkMemPages: r.WorkMemPages, Reporter: rep, Decomp: d,
		}
		_, err := exec.Run(env, p, nil)
		return err
	}, nil
}

// Overhead measures the real (wall-clock) cost of the progress indicator
// by running query q with and without the reporter, returning the
// fractional overhead ((with-without)/without). The paper reports <1%;
// exact numbers vary by machine, the bench target reports both times.
func (r Runner) Overhead(q int, iters int) (withSec, withoutSec float64, err error) {
	r = r.withDefaults()
	eng, err := r.newEngine(q == 3)
	if err != nil {
		return 0, 0, err
	}
	sql, _ := workload.QuerySQL(q)
	stmt, _ := sqlparser.Parse(sql)
	p, err := optimizer.Plan(eng.cat, stmt, optimizer.Options{WorkMemPages: r.WorkMemPages})
	if err != nil {
		return 0, 0, err
	}
	d := segment.Decompose(p, r.WorkMemPages)
	run := func(withInd bool) (float64, error) {
		var rep segment.WorkReporter
		if withInd {
			ind := core.New(eng.clock, d, core.Options{UpdatePeriod: r.UpdatePeriod})
			ind.Start()
			defer ind.Stop()
			rep = ind
		}
		env := &exec.Env{
			Pool: eng.cat.Pool(), Clock: eng.clock,
			WorkMemPages: r.WorkMemPages, Reporter: rep, Decomp: d,
		}
		t0 := time.Now()
		if _, err := exec.Run(env, p, nil); err != nil {
			return 0, err
		}
		return time.Since(t0).Seconds(), nil
	}
	for i := 0; i < iters; i++ {
		w, err := run(true)
		if err != nil {
			return 0, 0, err
		}
		withSec += w
		wo, err := run(false)
		if err != nil {
			return 0, 0, err
		}
		withoutSec += wo
	}
	return withSec, withoutSec, nil
}

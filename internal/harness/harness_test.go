package harness

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// One shared session for all shape tests: seven scenarios behind the 16
// figures, run once.
var (
	sessOnce sync.Once
	sess     *Session
	sessErr  error
)

func session(t *testing.T) *Session {
	t.Helper()
	sessOnce.Do(func() {
		sess = NewSession(Runner{Scale: 0.02, Seed: 1})
		// Pre-run every distinct scenario; errors surface here once.
		for _, e := range Experiments {
			if _, err := sess.Result(e); err != nil {
				sessErr = err
				return
			}
		}
	})
	if sessErr != nil {
		t.Fatal(sessErr)
	}
	return sess
}

func result(t *testing.T, id string) (*RunResult, Experiment) {
	t.Helper()
	e, ok := ExperimentByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	res, err := session(t).Result(e)
	if err != nil {
		t.Fatal(err)
	}
	return res, e
}

// Figure 4: with accurate statistics Q1's cost estimate is a flat line at
// the exact cost.
func TestFig04Q1CostFlat(t *testing.T) {
	res, _ := result(t, "fig04")
	if math.Abs(res.InitialEstU-res.ExactCostU)/res.ExactCostU > 0.02 {
		t.Fatalf("Q1 initial estimate %g vs exact %g", res.InitialEstU, res.ExactCostU)
	}
	for _, s := range res.Snapshots {
		if math.Abs(s.EstTotalU-res.ExactCostU)/res.ExactCostU > 0.02 {
			t.Fatalf("Q1 estimate wandered: %g at t=%.0f (exact %g)", s.EstTotalU, s.Elapsed, res.ExactCostU)
		}
	}
}

// Figure 5: Q1's speed is stable (coefficient of variation small after
// warm-up).
func TestFig05Q1SpeedStable(t *testing.T) {
	res, _ := result(t, "fig05")
	var speeds []float64
	for _, s := range res.Snapshots {
		if s.Elapsed >= 20 && !s.Finished {
			speeds = append(speeds, s.SpeedU)
		}
	}
	if len(speeds) < 3 {
		t.Fatalf("too few speed points: %d", len(speeds))
	}
	m := meanOf(speeds)
	var varsum float64
	for _, v := range speeds {
		varsum += (v - m) * (v - m)
	}
	cv := math.Sqrt(varsum/float64(len(speeds))) / m
	if cv > 0.15 {
		t.Fatalf("Q1 speed CV = %.2f, want stable (< 0.15)", cv)
	}
}

// jumpAround returns the remaining-time estimate just before x and the
// first estimate at least 15 s after x.
func jumpAround(res *RunResult, x float64) (before, after float64) {
	for _, s := range res.Snapshots {
		if s.Elapsed <= x {
			before = s.RemainingSeconds
		} else if s.Elapsed >= x+15 && after == 0 {
			after = s.RemainingSeconds
		}
	}
	return before, after
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Figure 6: the indicator's remaining-time estimate tracks the actual
// remaining time more closely than the optimizer baseline.
func TestFig06Q1IndicatorBeatsOptimizer(t *testing.T) {
	res, _ := result(t, "fig06")
	assertIndicatorBeatsOptimizer(t, res, 20)
}

func assertIndicatorBeatsOptimizer(t *testing.T, res *RunResult, warmup float64) {
	t.Helper()
	var indMAE, optMAE float64
	n := 0
	for _, s := range res.Snapshots {
		if s.Elapsed < warmup || s.Finished {
			continue
		}
		actual := res.ActualSeconds - s.Elapsed
		indMAE += math.Abs(s.RemainingSeconds - actual)
		optMAE += math.Abs(s.OptimizerRemainingSeconds - actual)
		n++
	}
	if n == 0 {
		t.Fatal("no snapshots after warm-up")
	}
	if indMAE >= optMAE {
		t.Fatalf("indicator MAE %.1f not better than optimizer MAE %.1f", indMAE/float64(n), optMAE/float64(n))
	}
}

// Figure 7: Q1's completed percentage is near-linear.
func TestFig07Q1PercentLinear(t *testing.T) {
	res, _ := result(t, "fig07")
	for _, s := range res.Snapshots {
		want := 100 * s.Elapsed / res.ActualSeconds
		if math.Abs(s.Percent-want) > 10 {
			t.Fatalf("Q1 percent at t=%.0f: %.1f, want ~%.1f (linear)", s.Elapsed, s.Percent, want)
		}
	}
}

// Figure 9: Q2's cost estimate starts low (the 1/3 selectivity default),
// stays flat during the first join, rises while the lineitem partitioning
// runs, then holds at the exact cost.
func TestFig09Q2CostConvergence(t *testing.T) {
	res, _ := result(t, "fig09")
	if res.InitialEstU >= res.ExactCostU*0.97 {
		t.Fatalf("Q2 initial %g should underestimate exact %g", res.InitialEstU, res.ExactCostU)
	}
	snaps := res.Snapshots
	final := snaps[len(snaps)-1]
	if math.Abs(final.EstTotalU-res.ExactCostU)/res.ExactCostU > 0.01 {
		t.Fatalf("Q2 final estimate %g vs exact %g", final.EstTotalU, res.ExactCostU)
	}
	// Convergence happens before the final segment: find the first
	// snapshot within 2% of exact; it must not be the last one.
	firstConverged := -1
	for i, s := range snaps {
		if math.Abs(s.EstTotalU-res.ExactCostU)/res.ExactCostU < 0.02 {
			firstConverged = i
			break
		}
	}
	if firstConverged < 0 || firstConverged >= len(snaps)-1 {
		t.Fatalf("Q2 estimate converged too late (index %d of %d)", firstConverged, len(snaps))
	}
	// Monotone non-decreasing (the underestimate is only ever corrected
	// upward in this workload).
	for i := 1; i < len(snaps); i++ {
		if snaps[i].EstTotalU < snaps[i-1].EstTotalU*0.999 {
			t.Fatalf("Q2 estimate decreased at t=%.0f: %g -> %g",
				snaps[i].Elapsed, snaps[i-1].EstTotalU, snaps[i].EstTotalU)
		}
	}
}

// Figure 11: late in execution the Q2 remaining estimate is accurate,
// and the indicator beats the optimizer baseline overall.
func TestFig11Q2RemainingConverges(t *testing.T) {
	res, _ := result(t, "fig11")
	assertIndicatorBeatsOptimizer(t, res, 20)
	for _, s := range res.Snapshots {
		if s.Finished || s.Elapsed < res.ActualSeconds*0.7 {
			continue
		}
		actual := res.ActualSeconds - s.Elapsed
		if actual < 5 {
			continue
		}
		if math.Abs(s.RemainingSeconds-actual)/actual > 0.30 {
			t.Fatalf("late Q2 estimate at t=%.0f: %.1f vs actual %.1f",
				s.Elapsed, s.RemainingSeconds, actual)
		}
	}
}

// Figure 12: percent keeps increasing.
func TestFig12Q2PercentIncreases(t *testing.T) {
	res, _ := result(t, "fig12")
	last := -1.0
	for _, s := range res.Snapshots {
		if s.Percent < last-2 { // small dips allowed when the cost estimate grows
			t.Fatalf("Q2 percent fell sharply: %.1f -> %.1f", last, s.Percent)
		}
		last = s.Percent
	}
	if last != 100 {
		t.Fatalf("Q2 final percent %g", last)
	}
}

// Figures 13–16: under I/O interference the query slows, speed drops
// during the interval and recovers after, and the remaining-time estimate
// jumps at interference start.
func TestFig13to16IOInterference(t *testing.T) {
	loaded, _ := result(t, "fig13")
	unloaded, _ := result(t, "fig09")
	if loaded.ActualSeconds < unloaded.ActualSeconds*1.3 {
		t.Fatalf("I/O interference should stretch Q2: %.0f vs %.0f",
			loaded.ActualSeconds, unloaded.ActualSeconds)
	}
	if loaded.InterfStart <= 0 || loaded.InterfEnd <= loaded.InterfStart {
		t.Fatalf("interference bounds: %+v", loaded)
	}
	// Speed before vs during (Figure 14).
	var pre, mid, post []float64
	for _, s := range loaded.Snapshots {
		switch {
		case s.Elapsed > 15 && s.Elapsed < loaded.InterfStart:
			pre = append(pre, s.SpeedU)
		case s.Elapsed > loaded.InterfStart+15 && s.Elapsed < loaded.InterfEnd:
			mid = append(mid, s.SpeedU)
		case s.Elapsed > loaded.InterfEnd+15 && !s.Finished:
			post = append(post, s.SpeedU)
		}
	}
	if len(pre) == 0 || len(mid) == 0 {
		t.Fatalf("not enough snapshots around interference: pre=%d mid=%d", len(pre), len(mid))
	}
	if meanOf(mid) > meanOf(pre)*0.6 {
		t.Fatalf("speed did not drop: pre %.1f mid %.1f", meanOf(pre), meanOf(mid))
	}
	if len(post) > 0 && meanOf(post) < meanOf(mid)*1.2 {
		t.Fatalf("speed did not recover: mid %.1f post %.1f", meanOf(mid), meanOf(post))
	}
	// Remaining time jumps up at interference start (Figure 15).
	before, after := jumpAround(loaded, loaded.InterfStart)
	if after <= before {
		t.Fatalf("remaining estimate should rise at interference start: %.0f -> %.0f", before, after)
	}
	// Cost estimate still converges exactly (Figure 13).
	final := loaded.Snapshots[len(loaded.Snapshots)-1]
	if math.Abs(final.EstTotalU-loaded.ExactCostU)/loaded.ExactCostU > 0.01 {
		t.Fatalf("Q2 loaded final estimate %g vs exact %g", final.EstTotalU, loaded.ExactCostU)
	}
	// The exact cost is load-independent (U does not depend on speed).
	if math.Abs(loaded.ExactCostU-unloaded.ExactCostU)/unloaded.ExactCostU > 0.001 {
		t.Fatalf("interference changed U: %g vs %g", loaded.ExactCostU, unloaded.ExactCostU)
	}
}

// Figure 17: the Q3 correlation makes the optimizer underestimate; the
// indicator corrects during the first join.
func TestFig17Q3Correlation(t *testing.T) {
	res, _ := result(t, "fig17")
	if res.InitialEstU >= res.ExactCostU*0.98 {
		t.Fatalf("Q3 initial %g should underestimate exact %g", res.InitialEstU, res.ExactCostU)
	}
	final := res.Snapshots[len(res.Snapshots)-1]
	if math.Abs(final.EstTotalU-res.ExactCostU)/res.ExactCostU > 0.01 {
		t.Fatalf("Q3 final estimate %g vs exact %g", final.EstTotalU, res.ExactCostU)
	}
}

// Figure 18: Q4 has misestimates on both joins; the error exceeds Q2's
// (it grows with the number of joins) and the estimate adjusts more than
// once.
func TestFig18Q4TwoAdjustments(t *testing.T) {
	q4, _ := result(t, "fig18")
	q2, _ := result(t, "fig09")
	q4Err := q4.ExactCostU / q4.InitialEstU
	q2Err := q2.ExactCostU / q2.InitialEstU
	if q4Err <= q2Err {
		t.Fatalf("Q4 relative error %.3f should exceed Q2's %.3f", q4Err, q2Err)
	}
	// The paper: "the progress indicator adjusts to both optimizer
	// estimation errors twice as the query is being processed: first,
	// while the first join is running; second, during the second join."
	// Measure the estimate increase during the first-join phase and
	// during the lineitem/second-join phase separately.
	snaps := q4.Snapshots
	var riseEarly, riseLate float64
	for i := 1; i < len(snaps); i++ {
		d := snaps[i].EstTotalU - snaps[i-1].EstTotalU
		if d <= 0 {
			continue
		}
		if snaps[i].CurrentSegment <= 1 {
			riseEarly += d
		} else {
			riseLate += d
		}
	}
	if riseEarly <= 0 || riseLate <= 0 {
		t.Fatalf("Q4 must adjust in both phases: early rise %.1f, late rise %.1f", riseEarly, riseLate)
	}
}

// Figure 19: the CPU-bound Q5's remaining estimate tracks actual.
func TestFig19Q5Remaining(t *testing.T) {
	res, _ := result(t, "fig19")
	assertIndicatorBeatsOptimizer(t, res, 20)
	for _, s := range res.Snapshots {
		if s.Finished || s.Elapsed < 20 {
			continue
		}
		actual := res.ActualSeconds - s.Elapsed
		if actual < 10 {
			continue
		}
		if math.Abs(s.RemainingSeconds-actual)/actual > 0.25 {
			t.Fatalf("Q5 estimate at t=%.0f: %.1f vs actual %.1f", s.Elapsed, s.RemainingSeconds, actual)
		}
	}
}

// Figure 20: CPU interference raises the remaining estimate sharply at
// its start, after which the estimate re-converges.
func TestFig20Q5CPUInterference(t *testing.T) {
	res, _ := result(t, "fig20")
	unloaded, _ := result(t, "fig19")
	if res.ActualSeconds < unloaded.ActualSeconds*1.5 {
		t.Fatalf("CPU interference should stretch Q5: %.0f vs %.0f",
			res.ActualSeconds, unloaded.ActualSeconds)
	}
	// Jump at interference start.
	before, after := jumpAround(res, res.InterfStart)
	if after <= before*1.2 {
		t.Fatalf("Q5 remaining should jump at CPU interference: %.0f -> %.0f", before, after)
	}
	// Re-convergence (paper: within ~20 s of the start).
	for _, s := range res.Snapshots {
		if s.Finished || s.Elapsed < res.InterfStart+30 {
			continue
		}
		actual := res.ActualSeconds - s.Elapsed
		if actual < 10 {
			continue
		}
		if math.Abs(s.RemainingSeconds-actual)/actual > 0.3 {
			t.Fatalf("Q5 loaded estimate at t=%.0f: %.1f vs actual %.1f",
				s.Elapsed, s.RemainingSeconds, actual)
		}
	}
}

func TestFigureExtractionAndRendering(t *testing.T) {
	s := session(t)
	for _, e := range Experiments {
		fig, err := s.Figure(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) == 0 || len(fig.Series[0].X) == 0 {
			t.Fatalf("%s: empty figure", e.ID)
		}
		csv := fig.CSV()
		if !strings.HasPrefix(csv, "series,x,y\n") || strings.Count(csv, "\n") < 3 {
			t.Fatalf("%s: bad CSV:\n%s", e.ID, csv)
		}
		art := fig.ASCII(60, 12)
		if !strings.Contains(art, e.ID) {
			t.Fatalf("%s: ASCII missing header:\n%s", e.ID, art)
		}
	}
	if e, ok := ExperimentByID("fig09"); !ok || e.Query != 2 {
		t.Fatal("ExperimentByID broken")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
	if len(SortedIDs()) != len(Experiments) {
		t.Fatal("SortedIDs wrong length")
	}
}

func TestTable1AndPlan(t *testing.T) {
	r := Runner{Scale: 0.002, Seed: 1}
	tbl, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"customer", "orders", "lineitem"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table1 missing %s:\n%s", want, tbl)
		}
	}
	pl, err := r.Plan(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "SeqScan lineitem") || !strings.Contains(pl, "[dominant]") {
		t.Fatalf("Plan(2) output:\n%s", pl)
	}
}

func TestOverheadSmall(t *testing.T) {
	r := Runner{Scale: 0.01, Seed: 1}
	with, without, err := r.Overhead(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if with <= 0 || without <= 0 {
		t.Fatalf("overhead times: %g %g", with, without)
	}
	// The paper claims <1%; allow generous slack for machine noise but
	// catch gross regressions.
	if with > without*1.5 {
		t.Fatalf("indicator overhead too high: with=%.4fs without=%.4fs", with, without)
	}
}

// The SMJ extra experiment: two dominant inputs, converging estimate.
func TestRunSMJ(t *testing.T) {
	res, err := (Runner{Scale: 0.01, Seed: 1}).RunSMJ()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots")
	}
	final := res.Snapshots[len(res.Snapshots)-1]
	if !final.Finished || final.Percent != 100 {
		t.Fatalf("final: %+v", final)
	}
	if math.Abs(final.EstTotalU-res.ExactCostU) > 1e-6*res.ExactCostU {
		t.Fatalf("estimate %g vs exact %g", final.EstTotalU, res.ExactCostU)
	}
}

func TestOverheadProbe(t *testing.T) {
	probe, err := (Runner{Scale: 0.005, Seed: 1}).OverheadProbe(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe(true); err != nil {
		t.Fatal(err)
	}
	if err := probe(false); err != nil {
		t.Fatal(err)
	}
}

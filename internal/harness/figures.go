package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"progressdb/internal/core"
)

// Series is one named line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is the reproduction of one paper figure: series extracted from a
// scenario run, plus vertical event markers (interference start/end).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Events []Event
}

// Event is a vertical marker.
type Event struct {
	Name string
	X    float64
}

// Experiment maps one paper artifact to a scenario and metric.
type Experiment struct {
	ID     string
	Title  string
	Query  int
	Interf Interference
	// Metric is "cost", "speed", "remaining", or "percent".
	Metric string
}

// IOInterf reproduces the paper's Q2 file copy: start 190 s / end 885 s
// of a 510 s unloaded run.
var IOInterf = Interference{Kind: "io", StartFrac: 190.0 / 510, EndFrac: 885.0 / 510, Factor: 4}

// CPUInterf reproduces the paper's Q5 CPU hog: start 120 s of a 211 s
// unloaded run, running until the query finishes.
var CPUInterf = Interference{Kind: "cpu", StartFrac: 120.0 / 211, EndFrac: -1, Factor: 4}

// Experiments lists every figure of the paper's evaluation section.
var Experiments = []Experiment{
	{ID: "fig04", Title: "Q1 estimated query cost (unloaded)", Query: 1, Metric: "cost"},
	{ID: "fig05", Title: "Q1 execution speed (unloaded)", Query: 1, Metric: "speed"},
	{ID: "fig06", Title: "Q1 remaining time (unloaded)", Query: 1, Metric: "remaining"},
	{ID: "fig07", Title: "Q1 completed percentage (unloaded)", Query: 1, Metric: "percent"},
	{ID: "fig09", Title: "Q2 estimated query cost (unloaded)", Query: 2, Metric: "cost"},
	{ID: "fig10", Title: "Q2 execution speed (unloaded)", Query: 2, Metric: "speed"},
	{ID: "fig11", Title: "Q2 remaining time (unloaded)", Query: 2, Metric: "remaining"},
	{ID: "fig12", Title: "Q2 completed percentage (unloaded)", Query: 2, Metric: "percent"},
	{ID: "fig13", Title: "Q2 estimated query cost (I/O interference)", Query: 2, Interf: IOInterf, Metric: "cost"},
	{ID: "fig14", Title: "Q2 execution speed (I/O interference)", Query: 2, Interf: IOInterf, Metric: "speed"},
	{ID: "fig15", Title: "Q2 remaining time (I/O interference)", Query: 2, Interf: IOInterf, Metric: "remaining"},
	{ID: "fig16", Title: "Q2 completed percentage (I/O interference)", Query: 2, Interf: IOInterf, Metric: "percent"},
	{ID: "fig17", Title: "Q3 estimated query cost (correlation, unloaded)", Query: 3, Metric: "cost"},
	{ID: "fig18", Title: "Q4 estimated query cost (two misestimates, unloaded)", Query: 4, Metric: "cost"},
	{ID: "fig19", Title: "Q5 remaining time (unloaded)", Query: 5, Metric: "remaining"},
	{ID: "fig20", Title: "Q5 remaining time (CPU interference)", Query: 5, Interf: CPUInterf, Metric: "remaining"},
}

// scenarioKey identifies a run shared across figures (F4–F7 all come
// from one Q1 unloaded execution).
func (e Experiment) scenarioKey() string {
	return fmt.Sprintf("q%d-%s", e.Query, scenarioName(&e.Interf))
}

// Session caches scenario runs so that figures sharing a run reuse it.
type Session struct {
	Runner Runner
	cache  map[string]*RunResult
}

// NewSession creates a session over the given runner configuration.
func NewSession(r Runner) *Session {
	return &Session{Runner: r, cache: map[string]*RunResult{}}
}

// Result runs (or reuses) the scenario behind e.
func (s *Session) Result(e Experiment) (*RunResult, error) {
	key := e.scenarioKey()
	if res, ok := s.cache[key]; ok {
		return res, nil
	}
	res, err := s.Runner.Run(e.Query, e.Interf)
	if err != nil {
		return nil, err
	}
	s.cache[key] = res
	return res, nil
}

// Figure runs e and extracts its figure.
func (s *Session) Figure(e Experiment) (*Figure, error) {
	res, err := s.Result(e)
	if err != nil {
		return nil, err
	}
	return ExtractFigure(e, res), nil
}

// ExtractFigure builds the figure series from a run.
func ExtractFigure(e Experiment, res *RunResult) *Figure {
	f := &Figure{
		ID:     e.ID,
		Title:  e.Title,
		XLabel: "time (seconds)",
	}
	if res.InterfStart > 0 {
		f.Events = append(f.Events, Event{Name: "interference start", X: res.InterfStart})
		if res.InterfEnd < res.ActualSeconds {
			f.Events = append(f.Events, Event{Name: "interference end", X: res.InterfEnd})
		}
	}
	snaps := res.Snapshots
	xs := make([]float64, len(snaps))
	for i, s := range snaps {
		xs[i] = s.Elapsed
	}
	switch e.Metric {
	case "cost":
		f.YLabel = "estimated query cost (Us)"
		f.Series = append(f.Series,
			Series{Name: "estimated by progress indicator", X: xs, Y: pick(snaps, func(s core.Snapshot) float64 { return s.EstTotalU })},
			Series{Name: "exact query cost", X: []float64{0, res.ActualSeconds}, Y: []float64{res.ExactCostU, res.ExactCostU}},
		)
	case "speed":
		f.YLabel = "query execution speed (Us per second)"
		f.Series = append(f.Series,
			Series{Name: "monitored speed", X: xs, Y: pick(snaps, func(s core.Snapshot) float64 { return s.SpeedU })})
	case "remaining":
		f.YLabel = "estimated remaining query execution time (seconds)"
		actual := make([]float64, len(snaps))
		for i, s := range snaps {
			actual[i] = math.Max(0, res.ActualSeconds-s.Elapsed)
		}
		f.Series = append(f.Series,
			Series{Name: "estimated by progress indicator", X: xs, Y: pick(snaps, func(s core.Snapshot) float64 { return s.RemainingSeconds })},
			Series{Name: "actual remaining time", X: xs, Y: actual},
			Series{Name: "optimizer estimate", X: xs, Y: pick(snaps, func(s core.Snapshot) float64 { return s.OptimizerRemainingSeconds })},
		)
	case "percent":
		f.YLabel = "estimated completed percentage"
		f.Series = append(f.Series,
			Series{Name: "completed percentage", X: xs, Y: pick(snaps, func(s core.Snapshot) float64 { return s.Percent })})
	}
	return f
}

func pick(snaps []core.Snapshot, fn func(core.Snapshot) float64) []float64 {
	out := make([]float64, len(snaps))
	for i, s := range snaps {
		out[i] = fn(s)
	}
	return out
}

// CSV renders the figure as comma-separated series (long form: series,
// x, y).
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%q,%.4f,%.4f\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// ASCII renders the figure as a text plot (width×height characters).
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsInf(s.Y[i], 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX || minY > maxY {
		return f.Title + ": (no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			if math.IsInf(s.Y[i], 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[cy][cx] = m
		}
	}
	for _, ev := range f.Events {
		cx := int((ev.X - minX) / (maxX - minX) * float64(width-1))
		if cx < 0 || cx >= width {
			continue
		}
		for r := 0; r < height; r++ {
			if grid[r][cx] == ' ' {
				grid[r][cx] = '|'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "y: %s  [%.4g .. %.4g]\n", f.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "x: %s  [%.4g .. %.4g]\n", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	for _, ev := range f.Events {
		fmt.Fprintf(&b, "  | %s at %.1fs\n", ev.Name, ev.X)
	}
	return b.String()
}

// ExperimentByID looks up a registered experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// SortedIDs returns all experiment IDs in order.
func SortedIDs() []string {
	ids := make([]string, len(Experiments))
	for i, e := range Experiments {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

package faultinject

import (
	"errors"
	"testing"

	"progressdb/internal/storage"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7,readerr=0.01,writeerr=0.02,transient=0.5,latency=0.1:0.005,target=temp,nthwrite=5,panicnth=9,max=3"
	cfg, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.ReadErrProb != 0.01 || cfg.WriteErrProb != 0.02 ||
		cfg.TransientProb != 0.5 || cfg.LatencyProb != 0.1 || cfg.LatencySeconds != 0.005 ||
		cfg.Target != TargetTemp || cfg.FailNthWrite != 5 || cfg.PanicNth != 9 || cfg.MaxFaults != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// String must parse back to the same config.
	cfg2, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", cfg.String(), err)
	}
	if cfg2 != cfg {
		t.Fatalf("round trip: %+v != %+v", cfg2, cfg)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if cfg, err := Parse("  "); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{
		"readerr",         // not key=value
		"readerr=2",       // prob out of range
		"readerr=x",       // not a number
		"latency=0.5",     // missing seconds
		"latency=0.5:-1",  // negative seconds
		"target=spinning", // unknown target
		"nthwrite=-3",     // negative count
		"bogus=1",         // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) = nil error, want error", bad)
		}
	}
}

func TestDeterministicStream(t *testing.T) {
	cfg := Config{Seed: 42, ReadErrProb: 0.3, WriteErrProb: 0.3, TransientProb: 0.5, LatencyProb: 0.2, LatencySeconds: 0.001}
	run := func() []bool {
		in := New(cfg)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			op := storage.OpRead
			if i%3 == 0 {
				op = storage.OpWrite
			}
			_, err := in.BeforePageIO(op, storage.ClassTemp)
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at access %d", i)
		}
	}
}

func TestFailNthWriteIsPermanentAndTargeted(t *testing.T) {
	in := New(Config{Seed: 1, FailNthWrite: 3, Target: TargetTemp})
	// Base-class writes are not targeted and never counted.
	for i := 0; i < 10; i++ {
		if _, err := in.BeforePageIO(storage.OpWrite, storage.ClassBase); err != nil {
			t.Fatalf("base write %d faulted: %v", i, err)
		}
	}
	var got error
	for i := 1; i <= 5; i++ {
		_, err := in.BeforePageIO(storage.OpWrite, storage.ClassTemp)
		if (err != nil) != (i == 3) {
			t.Fatalf("temp write %d: err=%v", i, err)
		}
		if err != nil {
			got = err
		}
	}
	var f *storage.IOFault
	if !errors.As(got, &f) {
		t.Fatalf("fault type = %T", got)
	}
	if !f.Permanent || f.Op != storage.OpWrite || f.Class != storage.ClassTemp {
		t.Fatalf("fault = %+v", f)
	}
	if storage.IsTransient(got) {
		t.Fatal("ordinal fault must not be transient")
	}
	st := in.Stats()
	if st.WriteFaults != 1 || st.ReadFaults != 0 || st.Writes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	in := New(Config{Seed: 9, ReadErrProb: 1, MaxFaults: 2})
	faults := 0
	for i := 0; i < 50; i++ {
		if _, err := in.BeforePageIO(storage.OpRead, storage.ClassBase); err != nil {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("faults = %d, want 2 (capped)", faults)
	}
}

func TestPanicNth(t *testing.T) {
	in := New(Config{Seed: 1, PanicNth: 2})
	if _, err := in.BeforePageIO(storage.OpRead, storage.ClassBase); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic on the scheduled access")
		}
		if st := in.Stats(); st.Panics != 1 {
			t.Fatalf("panics = %d", st.Panics)
		}
	}()
	in.BeforePageIO(storage.OpWrite, storage.ClassBase)
}

func TestLatencyOnly(t *testing.T) {
	in := New(Config{Seed: 3, LatencyProb: 1, LatencySeconds: 0.25})
	lat, err := in.BeforePageIO(storage.OpRead, storage.ClassTemp)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0.25 {
		t.Fatalf("lat = %g", lat)
	}
	if st := in.Stats(); st.LatencyEvents != 1 || st.Faults() != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

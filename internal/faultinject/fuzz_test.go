package faultinject

import (
	"math"
	"testing"
)

// FuzzParse drives Parse with arbitrary specs and enforces two
// invariants on every input the parser accepts:
//
//  1. Well-formedness: no NaN/Inf probabilities or latencies survive
//     into the Config, probabilities stay in [0,1], and counts stay
//     non-negative — a malformed schedule must be an error, never a
//     silently-broken injector.
//  2. Round-trip fixpoint: re-parsing cfg.String() reproduces cfg
//     exactly, so a schedule logged by one run can be replayed
//     verbatim by the next (the subsystem's whole point is
//     deterministic reproduction).
//
// Historical catches, now seeds: "readerr=NaN" used to pass the
// negated range check, and "latency=0:5" used to keep dead seconds
// that String dropped, breaking the fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"seed=7",
		"seed=-3,readerr=0.01,writeerr=0.02,transient=0.5",
		"latency=0.1:0.005,target=temp",
		"latency=0:5",
		"latency=1:0",
		"readerr=NaN",
		"readerr=+Inf",
		"latency=0.5:+Inf",
		"nthread=0,nthwrite=5,panicnth=2,max=3",
		"target=base",
		"target=bogus",
		" seed = 9 , max = 1 ",
		"readerr=1e-300",
		"seed=9223372036854775807",
		"max=-1",
		"latency=0.5",
		"=,,=",
		"readerr=0.01,readerr=0.9",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if err != nil {
			return // rejection is always a valid outcome
		}
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"ReadErrProb", cfg.ReadErrProb},
			{"WriteErrProb", cfg.WriteErrProb},
			{"TransientProb", cfg.TransientProb},
			{"LatencyProb", cfg.LatencyProb},
		} {
			if !(p.v >= 0 && p.v <= 1) {
				t.Fatalf("Parse(%q): %s=%v escaped [0,1]", spec, p.name, p.v)
			}
		}
		if !(cfg.LatencySeconds >= 0) || math.IsInf(cfg.LatencySeconds, 1) {
			t.Fatalf("Parse(%q): LatencySeconds=%v not finite and >= 0", spec, cfg.LatencySeconds)
		}
		if cfg.FailNthRead < 0 || cfg.FailNthWrite < 0 || cfg.PanicNth < 0 || cfg.MaxFaults < 0 {
			t.Fatalf("Parse(%q): negative count in %+v", spec, cfg)
		}

		rendered := cfg.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", spec, rendered, err)
		}
		if again != cfg {
			t.Fatalf("round-trip mismatch for %q:\n first: %+v\n again: %+v\n via %q",
				spec, cfg, again, rendered)
		}
		// String must itself be a fixpoint (canonical form).
		if r2 := again.String(); r2 != rendered {
			t.Fatalf("String not canonical for %q: %q then %q", spec, rendered, r2)
		}
	})
}

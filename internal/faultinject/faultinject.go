// Package faultinject is the engine's chaos-testing subsystem: a
// deterministic, seedable fault injector that sits under the storage
// layer (via storage.Disk.SetFaultInjector) and perturbs physical page
// I/O the way the paper's evaluation perturbs its queries — failures,
// slowdowns, and crashes under which the progress indicator, and the
// engine around it, must stay correct.
//
// Three fault kinds are supported, independently configurable per file
// class (base relations vs. per-query temp/spill files):
//
//   - I/O errors: probabilistic read/write faults, each transient
//     (cleared by the buffer pool's bounded retry) or permanent, plus
//     deterministic schedules such as "fail the Nth write to a temp
//     file".
//   - Latency: probabilistic extra virtual seconds charged to the
//     vclock per access — the paper's I/O-interference experiments as
//     targeted chaos rather than a global load profile.
//   - Panics: "panic on the Nth access", simulating an executor crash
//     that the engine's panic boundary must convert into a typed error
//     without taking down the process.
//
// Everything is driven by one math/rand stream seeded from
// Config.Seed, so a failing schedule reproduces exactly.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"progressdb/internal/obs"
	"progressdb/internal/storage"
)

// Target selects which file classes faults apply to.
type Target int

// Targets.
const (
	// TargetAll faults base and temp files alike.
	TargetAll Target = iota
	// TargetBase faults only long-lived files (tables, indexes, log).
	TargetBase
	// TargetTemp faults only per-query scratch files (spills, runs).
	TargetTemp
)

// String returns the spec token for the target.
func (t Target) String() string {
	switch t {
	case TargetBase:
		return "base"
	case TargetTemp:
		return "temp"
	default:
		return "all"
	}
}

// Config is one fault schedule. The zero value injects nothing.
type Config struct {
	// Seed seeds the deterministic RNG (0 is treated as 1).
	Seed int64
	// ReadErrProb and WriteErrProb are per-access probabilities of an
	// injected I/O error on targeted reads / writes.
	ReadErrProb, WriteErrProb float64
	// TransientProb is the probability that an injected probabilistic
	// error is transient (retry may clear it); the rest are permanent.
	TransientProb float64
	// LatencyProb is the per-access probability of charging
	// LatencySeconds of extra virtual time to the clock.
	LatencyProb    float64
	LatencySeconds float64
	// Target restricts faults to a file class.
	Target Target
	// FailNthRead / FailNthWrite, when > 0, deterministically fail the
	// Nth targeted read / write with a permanent fault (1-based,
	// counted over the injector's lifetime).
	FailNthRead, FailNthWrite int64
	// PanicNth, when > 0, panics on the Nth targeted access (reads and
	// writes counted together) — the simulated executor crash.
	PanicNth int64
	// MaxFaults, when > 0, caps the number of injected errors (ordinal
	// and probabilistic combined); later accesses pass through. Latency
	// injections are not counted against the cap.
	MaxFaults int64
}

// Parse builds a Config from a compact comma-separated spec, the form
// taken by progressdb.Config.FaultSpec and progressd's -fault flag:
//
//	seed=7,readerr=0.01,writeerr=0.02,transient=0.5,latency=0.1:0.005,
//	target=temp,nthread=0,nthwrite=5,panicnth=0,max=3
//
// Unknown keys, malformed numbers, and out-of-range probabilities are
// errors. The empty spec parses to the zero Config (inject nothing).
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			// NaN fails every comparison, so test the valid range
			// positively instead of rejecting the invalid one.
			if !(p >= 0 && p <= 1) {
				return 0, fmt.Errorf("faultinject: %s=%g outside [0,1]", key, p)
			}
			return p, nil
		}
		count := func() (int64, error) {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			if n < 0 {
				return 0, fmt.Errorf("faultinject: %s=%d must be >= 0", key, n)
			}
			return n, nil
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: seed: %w", err)
			}
		case "readerr":
			cfg.ReadErrProb, err = prob()
		case "writeerr":
			cfg.WriteErrProb, err = prob()
		case "transient":
			cfg.TransientProb, err = prob()
		case "latency":
			p, s, found := strings.Cut(val, ":")
			if !found {
				return cfg, fmt.Errorf("faultinject: latency wants prob:seconds, got %q", val)
			}
			if cfg.LatencyProb, err = strconv.ParseFloat(p, 64); err != nil {
				return cfg, fmt.Errorf("faultinject: latency prob: %w", err)
			}
			if !(cfg.LatencyProb >= 0 && cfg.LatencyProb <= 1) { // NaN-proof range check
				return cfg, fmt.Errorf("faultinject: latency prob %g outside [0,1]", cfg.LatencyProb)
			}
			if cfg.LatencySeconds, err = strconv.ParseFloat(s, 64); err != nil {
				return cfg, fmt.Errorf("faultinject: latency seconds: %w", err)
			}
			if !(cfg.LatencySeconds >= 0) || math.IsInf(cfg.LatencySeconds, 1) {
				return cfg, fmt.Errorf("faultinject: latency seconds %g must be finite and >= 0", cfg.LatencySeconds)
			}
		case "target":
			switch val {
			case "all":
				cfg.Target = TargetAll
			case "base":
				cfg.Target = TargetBase
			case "temp":
				cfg.Target = TargetTemp
			default:
				return cfg, fmt.Errorf("faultinject: target must be all|base|temp, got %q", val)
			}
		case "nthread":
			cfg.FailNthRead, err = count()
		case "nthwrite":
			cfg.FailNthWrite, err = count()
		case "panicnth":
			cfg.PanicNth, err = count()
		case "max":
			cfg.MaxFaults, err = count()
		default:
			return cfg, fmt.Errorf("faultinject: unknown key %q", key)
		}
		if err != nil {
			return cfg, err
		}
	}
	// Canonicalize: latency seconds without a probability can never
	// fire, and String omits the latency clause entirely when the
	// probability is zero — dropping the dead seconds here keeps
	// Parse(cfg.String()) == cfg (the fuzzed round-trip invariant).
	if cfg.LatencyProb == 0 {
		cfg.LatencySeconds = 0
	}
	return cfg, nil
}

// String renders the config back as a parseable spec (empty for the
// zero config).
func (c Config) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if c.Seed != 0 {
		add(fmt.Sprintf("seed=%d", c.Seed))
	}
	if c.ReadErrProb > 0 {
		add(fmt.Sprintf("readerr=%g", c.ReadErrProb))
	}
	if c.WriteErrProb > 0 {
		add(fmt.Sprintf("writeerr=%g", c.WriteErrProb))
	}
	if c.TransientProb > 0 {
		add(fmt.Sprintf("transient=%g", c.TransientProb))
	}
	if c.LatencyProb > 0 {
		add(fmt.Sprintf("latency=%g:%g", c.LatencyProb, c.LatencySeconds))
	}
	if c.Target != TargetAll {
		add("target=" + c.Target.String())
	}
	if c.FailNthRead > 0 {
		add(fmt.Sprintf("nthread=%d", c.FailNthRead))
	}
	if c.FailNthWrite > 0 {
		add(fmt.Sprintf("nthwrite=%d", c.FailNthWrite))
	}
	if c.PanicNth > 0 {
		add(fmt.Sprintf("panicnth=%d", c.PanicNth))
	}
	if c.MaxFaults > 0 {
		add(fmt.Sprintf("max=%d", c.MaxFaults))
	}
	return strings.Join(parts, ",")
}

// Stats counts what the injector has done.
type Stats struct {
	// Reads and Writes count targeted accesses inspected.
	Reads, Writes int64
	// ReadFaults and WriteFaults count injected I/O errors by direction.
	ReadFaults, WriteFaults int64
	// TransientFaults is how many of the injected errors were transient.
	TransientFaults int64
	// LatencyEvents counts latency injections.
	LatencyEvents int64
	// Panics counts injected panics (0 or 1: a fired panic schedule
	// does not re-arm).
	Panics int64
}

// Faults returns the total injected error count.
func (s Stats) Faults() int64 { return s.ReadFaults + s.WriteFaults }

// Metrics are the injector's engine-wide instruments (faultinject_*
// series on the shared obs registry). The zero value is disabled; all
// increments are nil-safe.
type Metrics struct {
	ReadFaults      *obs.Counter
	WriteFaults     *obs.Counter
	TransientFaults *obs.Counter
	LatencyEvents   *obs.Counter
	Panics          *obs.Counter
}

// NewMetrics registers the faultinject_* instruments in reg (nil reg
// yields disabled metrics).
func NewMetrics(reg *obs.Registry) Metrics {
	if reg == nil {
		return Metrics{}
	}
	return Metrics{
		ReadFaults:      reg.Counter("faultinject_read_faults_total", "injected physical read errors"),
		WriteFaults:     reg.Counter("faultinject_write_faults_total", "injected physical write errors"),
		TransientFaults: reg.Counter("faultinject_transient_faults_total", "injected errors marked transient (retryable)"),
		LatencyEvents:   reg.Counter("faultinject_latency_events_total", "accesses stretched with injected latency"),
		Panics:          reg.Counter("faultinject_panics_total", "injected executor panics"),
	}
}

// Injector implements storage.FaultInjector over one Config. Safe for
// concurrent use (the engine is single-threaded, but /metrics scrapes
// and tests may read Stats from other goroutines).
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	st  Stats
	met Metrics
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Config returns the injector's schedule.
func (in *Injector) Config() Config { return in.cfg }

// SetMetrics installs engine-wide instruments.
func (in *Injector) SetMetrics(m Metrics) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.met = m
}

// Stats returns a snapshot of the injector's accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// targets reports whether the schedule applies to the class.
func (in *Injector) targets(class storage.FileClass) bool {
	switch in.cfg.Target {
	case TargetBase:
		return class == storage.ClassBase
	case TargetTemp:
		return class == storage.ClassTemp
	default:
		return true
	}
}

// BeforePageIO implements storage.FaultInjector: consulted before every
// physical page access, it may return latency (virtual seconds), return
// an injected *storage.IOFault, or panic per the schedule. Ordinal
// schedules (PanicNth, FailNthRead/Write) fire before probabilistic
// ones so they stay deterministic regardless of the RNG stream.
func (in *Injector) BeforePageIO(op storage.FaultOp, class storage.FileClass) (float64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.targets(class) {
		return 0, nil
	}
	var ordinal int64 // per-direction access count
	if op == storage.OpRead {
		in.st.Reads++
		ordinal = in.st.Reads
	} else {
		in.st.Writes++
		ordinal = in.st.Writes
	}

	// Injected crash: the panic unwinds through the executor and must be
	// contained at the engine's recover() boundary.
	if in.cfg.PanicNth > 0 && in.st.Reads+in.st.Writes == in.cfg.PanicNth {
		in.st.Panics++
		in.met.Panics.Inc()
		//lint:ignore errwrap sanctioned: the injected crash IS the fault being tested; the engine's recover boundary must contain it
		panic(fmt.Sprintf("faultinject: scheduled panic at access %d (%s, %s file)",
			in.cfg.PanicNth, op, class))
	}

	var lat float64
	if in.cfg.LatencyProb > 0 && in.rng.Float64() < in.cfg.LatencyProb {
		lat = in.cfg.LatencySeconds
		in.st.LatencyEvents++
		in.met.LatencyEvents.Inc()
	}

	if in.cfg.MaxFaults > 0 && in.st.Faults() >= in.cfg.MaxFaults {
		return lat, nil
	}

	// Deterministic ordinal faults are always permanent: retrying the
	// same operation must keep failing or the schedule would be a no-op
	// under the retry loop.
	if op == storage.OpRead && in.cfg.FailNthRead > 0 && ordinal == in.cfg.FailNthRead {
		return lat, in.fault(op, class, true)
	}
	if op == storage.OpWrite && in.cfg.FailNthWrite > 0 && ordinal == in.cfg.FailNthWrite {
		return lat, in.fault(op, class, true)
	}

	prob := in.cfg.ReadErrProb
	if op == storage.OpWrite {
		prob = in.cfg.WriteErrProb
	}
	if prob > 0 && in.rng.Float64() < prob {
		permanent := true
		if in.cfg.TransientProb > 0 && in.rng.Float64() < in.cfg.TransientProb {
			permanent = false
		}
		return lat, in.fault(op, class, permanent)
	}
	return lat, nil
}

// fault records and builds one injected error. Caller holds in.mu.
func (in *Injector) fault(op storage.FaultOp, class storage.FileClass, permanent bool) error {
	if op == storage.OpRead {
		in.st.ReadFaults++
		in.met.ReadFaults.Inc()
	} else {
		in.st.WriteFaults++
		in.met.WriteFaults.Inc()
	}
	if !permanent {
		in.st.TransientFaults++
		in.met.TransientFaults.Inc()
	}
	return &storage.IOFault{Op: op, Class: class, Seq: in.st.Faults(), Permanent: permanent}
}

package exec

import (
	"fmt"
	"strings"
	"testing"

	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
)

// In testDB: customers 0..99, orders have custkey = i%100 (every
// customer has orders), lineitem orderkey = i%1000.

func TestExistsCorrelated(t *testing.T) {
	cat, clock := testDB(t)
	// Every customer has orders; with a price filter only some qualify.
	rows := runSQL(t, cat, clock, `
		select c.custkey from customer c
		where exists (select * from orders o where o.custkey = c.custkey and o.totalprice > 1400)`,
		optimizer.Options{}, 512, nil)
	// totalprice = i*1.5 > 1400 → i > 933 → orders 934..999 → custkeys 34..99.
	if len(rows) != 66 {
		t.Fatalf("exists rows = %d, want 66", len(rows))
	}
	for _, r := range rows {
		var k int
		fmt.Sscanf(r, "(%d)", &k)
		if k < 34 {
			t.Fatalf("unexpected custkey %d", k)
		}
	}
}

func TestNotExistsAnti(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, `
		select c.custkey from customer c
		where not exists (select * from orders o where o.custkey = c.custkey and o.totalprice > 1400)`,
		optimizer.Options{}, 512, nil)
	if len(rows) != 34 {
		t.Fatalf("not-exists rows = %d, want 34", len(rows))
	}
}

func TestExistsAndNotExistsPartition(t *testing.T) {
	cat, clock := testDB(t)
	// EXISTS ∪ NOT EXISTS must cover every outer row exactly once.
	pos := runSQL(t, cat, clock, `
		select c.custkey from customer c
		where exists (select * from orders o where o.custkey = c.custkey and o.orderkey < 50)`,
		optimizer.Options{}, 512, nil)
	neg := runSQL(t, cat, clock, `
		select c.custkey from customer c
		where not exists (select * from orders o where o.custkey = c.custkey and o.orderkey < 50)`,
		optimizer.Options{}, 512, nil)
	if len(pos)+len(neg) != 100 {
		t.Fatalf("partition broken: %d + %d != 100", len(pos), len(neg))
	}
}

func TestInSubquery(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock,
		"select custkey from customer where custkey in (select custkey from orders where orderkey < 10)",
		optimizer.Options{}, 512, nil)
	// orders 0..9 have custkeys 0..9.
	if len(rows) != 10 {
		t.Fatalf("in rows = %d, want 10", len(rows))
	}
	rows = runSQL(t, cat, clock,
		"select custkey from customer where custkey not in (select custkey from orders where orderkey < 10)",
		optimizer.Options{}, 512, nil)
	if len(rows) != 90 {
		t.Fatalf("not-in rows = %d, want 90", len(rows))
	}
}

func TestExistsWithNonEquiCorrelation(t *testing.T) {
	cat, clock := testDB(t)
	// Equality correlation plus a range correlation (becomes the extra
	// predicate of the semi-join).
	rows := runSQL(t, cat, clock, `
		select c.custkey from customer c
		where exists (select * from orders o where o.custkey = c.custkey and o.orderkey > c.custkey)`,
		optimizer.Options{}, 512, nil)
	// Customer k has orders k, k+100, ..., k+900: orderkey > custkey
	// holds for all customers (k+100 > k), and for customer 0 order 100.
	if len(rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(rows))
	}
}

func TestExistsOverJoinedOuter(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, `
		select c.custkey, o.orderkey from customer c, orders o
		where c.custkey = o.custkey and o.orderkey < 20
		and exists (select * from lineitem l where l.orderkey = o.orderkey and l.quantity > 45)`,
		optimizer.Options{}, 512, nil)
	// lineitem quantity = i%50 > 45 → i%50 in 46..49; those lineitems'
	// orderkeys are i%1000. Verify against a reference count.
	want := 0
	for o := 0; o < 20; o++ {
		found := false
		for i := 0; i < 3000; i++ {
			if i%1000 == o && i%50 > 45 {
				found = true
				break
			}
		}
		if found {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestSemiJoinSegmentStructure(t *testing.T) {
	cat, clock := testDB(t)
	stmt, _ := sqlparser.Parse(`
		select c.custkey from customer c
		where exists (select * from orders o where o.custkey = c.custkey)`)
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Format(p), "HashSemiJoin") {
		t.Fatalf("plan:\n%s", plan.Format(p))
	}
	d := segment.Decompose(p, 512)
	if len(d.Segments) != 2 {
		t.Fatalf("segments:\n%s", d)
	}
	// The inner (subquery) segment runs first; the outer scan is the
	// final segment's dominant input.
	if d.Segments[0].Kind != segment.KindHashBuild {
		t.Fatalf("inner segment kind = %v", d.Segments[0].Kind)
	}
	final := d.Segments[1]
	dom := final.Inputs[final.Dominant[0]]
	if !dom.Base || dom.Table.Name != "customer" {
		t.Fatalf("dominant input:\n%s", d)
	}
	rec := newRecorder()
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Reporter: rec, Decomp: d}
	n, err := Run(env, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("rows = %d", n)
	}
	// The subquery segment emitted its output and completed first.
	if rec.done[0] != 0 || rec.outputCount[0] == 0 {
		t.Fatalf("subquery segment accounting: done=%v out=%v", rec.done, rec.outputCount)
	}
}

func TestSubqueryErrors(t *testing.T) {
	cat, clock := testDB(t)
	bad := []string{
		// Uncorrelated EXISTS.
		"select * from customer where exists (select * from orders)",
		// Nested subqueries.
		`select * from customer c where exists (
			select * from orders o where o.custkey = c.custkey and exists (
				select * from lineitem l where l.orderkey = o.orderkey))`,
		// IN subquery selecting multiple columns.
		"select * from customer where custkey in (select custkey, orderkey from orders)",
		// Aggregates in subqueries.
		"select * from customer c where custkey in (select count(*) from orders)",
		// Subquery with LIMIT.
		"select * from customer c where exists (select * from orders o where o.custkey = c.custkey limit 1)",
		// Predicate referencing only outer columns.
		"select * from customer c where exists (select * from orders o where c.custkey = c.nationkey)",
	}
	for _, sql := range bad {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := optimizer.Plan(cat, stmt, optimizer.Options{}); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", sql)
		}
	}
	_ = clock
}

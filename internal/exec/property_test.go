package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/optimizer"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// randDB builds two tables with random sizes and key distributions.
func randDB(t *testing.T, rng *rand.Rand) (*catalog.Catalog, *vclock.Clock, int, int) {
	t.Helper()
	clock := vclock.New(vclock.Costs{SeqPage: 1e-5, RandPage: 8e-5, CPUTuple: 1e-8}, nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 512))
	nr := rng.Intn(300) + 1
	ns := rng.Intn(300) + 1
	keyRange := rng.Intn(50) + 1

	r, err := cat.CreateTable("r", tuple.NewSchema(
		tuple.Column{Name: "k", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nr; i++ {
		cat.Insert(r, tuple.Tuple{tuple.NewInt(int64(rng.Intn(keyRange))), tuple.NewInt(int64(i))})
	}
	r.Heap.Sync()

	s, err := cat.CreateTable("s", tuple.NewSchema(
		tuple.Column{Name: "k", Type: tuple.Int},
		tuple.Column{Name: "b", Type: tuple.Int},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ns; i++ {
		cat.Insert(s, tuple.Tuple{tuple.NewInt(int64(rng.Intn(keyRange))), tuple.NewInt(int64(i))})
	}
	s.Heap.Sync()
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat, clock, nr, ns
}

func runAlgo(t *testing.T, cat *catalog.Catalog, clock *vclock.Clock, sql, algo string, workMem int) []string {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{ForceJoinAlgo: algo, WorkMemPages: workMem})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, workMem)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: workMem, Decomp: d}
	var rows []string
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		rows = append(rows, tp.String())
		return nil
	}); err != nil {
		t.Fatalf("%s join on %q: %v", algo, sql, err)
	}
	sort.Strings(rows)
	return rows
}

// referenceJoin computes the expected equijoin result naively.
func referenceJoin(t *testing.T, cat *catalog.Catalog) []string {
	t.Helper()
	read := func(name string) []tuple.Tuple {
		tb, _ := cat.Table(name)
		var out []tuple.Tuple
		sc := tb.Heap.NewScanner()
		for {
			rec, _, ok := sc.Next()
			if !ok {
				break
			}
			row, err := tuple.Decode(rec, 2)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, row)
		}
		return out
	}
	rs, ss := read("r"), read("s")
	var rows []string
	for _, a := range rs {
		for _, b := range ss {
			if a[0].I == b[0].I {
				rows = append(rows, fmt.Sprintf("(%d, %d, %d)", a[1].I, b[1].I, a[0].I))
			}
		}
	}
	sort.Strings(rows)
	return rows
}

// Property: hash (in-memory and spilled), Grace, nested-loops, and
// sort-merge joins all produce exactly the reference result on random
// inputs.
func TestPropertyJoinAlgorithmsAgreeOnRandomData(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cat, clock, nr, ns := randDB(t, rng)
		want := referenceJoin(t, cat)
		sql := "select r.a, s.b, r.k from r, s where r.k = s.k"
		for _, cfg := range []struct {
			algo    string
			workMem int
		}{
			{"hash", 512}, // in-memory hybrid
			{"hash", 1},   // Grace or runtime spill
			{"nl", 512},
			{"merge", 512},
			{"merge", 1}, // external sort
		} {
			got := runAlgo(t, cat, clock, sql, cfg.algo, cfg.workMem)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%d×%d rows) %s/wm=%d: %d rows, want %d",
					trial, nr, ns, cfg.algo, cfg.workMem, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s/wm=%d: row %d = %s, want %s",
						trial, cfg.algo, cfg.workMem, i, got[i], want[i])
				}
			}
		}
	}
}

// Property: the virtual clock never runs backwards across any execution,
// and the row count is deterministic across repeated runs.
func TestPropertyDeterministicExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cat, clock, _, _ := randDB(t, rng)
	sql := "select r.a, s.b, r.k from r, s where r.k = s.k"
	first := runAlgo(t, cat, clock, sql, "", 64)
	for i := 0; i < 3; i++ {
		before := clock.Now()
		again := runAlgo(t, cat, clock, sql, "", 64)
		if clock.Now() < before {
			t.Fatal("clock ran backwards")
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d rows vs %d", i, len(again), len(first))
		}
	}
}

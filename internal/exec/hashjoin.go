package exec

import (
	"fmt"

	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// hashJoin is a hybrid hash join.
//
// Build phase (part of the lower segment, which it terminates): the build
// child is drained into an in-memory table. If the table outgrows working
// memory the join degrades gracefully: tuples are partitioned into
// batches, batch 0 stays in memory, the rest spill to temp files. Every
// build tuple is a segment *output* of the build segment as it is
// produced, and a segment *input* of the consumer segment as the hash
// table is later consumed (the paper's double counting).
//
// Probe phase (the consumer segment's pipeline): probe tuples stream
// against batch 0; tuples of spilled batches are written to probe temp
// files (multi-stage Extra bytes) and re-read per batch (Extra again) —
// matching the cost model's 2 × spillFraction × probeBytes term.
type hashJoin struct {
	node     *plan.HashJoin
	env      *Env
	tag      segment.NodeInfo // Seg = consumer, Input = hash-table slot, ProducerSeg = build segment
	build    Iterator
	probe    Iterator
	predCost float64

	table      map[tuple.Value][]tuple.Tuple
	tableBytes float64

	spilled     bool
	nbatch      int
	buildFiles  []*storage.HeapFile
	probeFiles  []*storage.HeapFile
	buildClosed bool

	// emission state
	matches  []tuple.Tuple
	matchIdx int
	curProbe tuple.Tuple

	// batch-processing state
	probeExhausted bool
	batchIdx       int
	batchScan      *storage.Scanner

	buildArity, probeArity int
}

func (h *hashJoin) Open() error {
	h.table = make(map[tuple.Value][]tuple.Tuple)
	h.buildArity = h.node.Build.Schema().Arity()
	h.probeArity = h.node.Probe.Schema().Arity()

	if err := h.build.Open(); err != nil {
		return err
	}
	rep := h.env.rep()
	memLimit := h.env.workMemBytes()
	inMemTuples, inMemBytes := int64(0), 0.0
	for {
		t, ok, err := h.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sz := t.EncodedSize()
		h.env.Clock.ChargeCPU(cpuHashOp)
		rep.OutputTuple(h.tag.ProducerSeg, sz)

		if h.spilled {
			b := h.batchOf(t[h.node.BuildKey])
			if b == 0 {
				h.addToTable(t, sz)
				inMemTuples++
				inMemBytes += float64(sz)
			} else {
				if _, err := h.buildFiles[b].Append(t.Encode(nil)); err != nil {
					return err
				}
			}
			continue
		}
		h.addToTable(t, sz)
		inMemTuples++
		inMemBytes += float64(sz)
		if h.tableBytes > memLimit && memLimit > 0 {
			if err := h.startSpill(); err != nil {
				return err
			}
			inMemTuples, inMemBytes = h.countTable()
		}
	}
	if err := h.build.Close(); err != nil {
		return err
	}
	h.buildClosed = true
	for _, f := range h.buildFiles {
		if f != nil {
			if err := f.Sync(); err != nil {
				return err
			}
		}
	}
	rep.SegmentDone(h.tag.ProducerSeg)
	// The in-memory part of the hash table is consumed by this segment
	// now; spilled batches are consumed when loaded.
	rep.InputBulk(h.tag.Seg, h.tag.Input, inMemTuples, inMemBytes)
	if !h.spilled {
		rep.InputDone(h.tag.Seg, h.tag.Input)
	}

	return h.probe.Open()
}

func (h *hashJoin) addToTable(t tuple.Tuple, sz int) {
	k := t[h.node.BuildKey]
	h.table[k] = append(h.table[k], t)
	h.tableBytes += float64(sz)
}

func (h *hashJoin) countTable() (int64, float64) {
	var n int64
	var b float64
	for _, ts := range h.table {
		for _, t := range ts {
			n++
			b += float64(t.EncodedSize())
		}
	}
	return n, b
}

// startSpill switches to multi-batch mode, redistributing the current
// in-memory table so only batch 0 remains resident.
func (h *hashJoin) startSpill() error {
	est := h.node.Build.Est().Bytes()
	mem := h.env.workMemBytes()
	h.nbatch = 2
	if mem > 0 {
		for float64(h.nbatch) < est/mem && h.nbatch < 64 {
			h.nbatch *= 2
		}
	}
	h.spilled = true
	h.buildFiles = make([]*storage.HeapFile, h.nbatch)
	h.probeFiles = make([]*storage.HeapFile, h.nbatch)
	for i := 1; i < h.nbatch; i++ {
		h.buildFiles[i] = h.env.newTempFile()
		h.probeFiles[i] = h.env.newTempFile()
	}
	h.env.Met.SpillPartitions.Add(int64(h.nbatch - 1))
	h.env.Collect.Notef(h.node, "build exceeded work_mem: spilled to %d batches", h.nbatch)
	old := h.table
	h.table = make(map[tuple.Value][]tuple.Tuple)
	h.tableBytes = 0
	for _, ts := range old {
		for _, t := range ts {
			if b := h.batchOf(t[h.node.BuildKey]); b == 0 {
				h.addToTable(t, t.EncodedSize())
			} else {
				if _, err := h.buildFiles[b].Append(t.Encode(nil)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (h *hashJoin) batchOf(k tuple.Value) int {
	return int(hashValue(k) % uint64(h.nbatch))
}

// hashValue hashes a join key (FNV-1a over its encoded form).
func hashValue(v tuple.Value) uint64 {
	var buf [16]byte
	enc := tuple.Tuple{v}.Encode(buf[:0])
	var h uint64 = 14695981039346656037
	for _, b := range enc {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (h *hashJoin) Next() (tuple.Tuple, bool, error) {
	rep := h.env.rep()
	for {
		// Drain pending matches first.
		for h.matchIdx < len(h.matches) {
			b := h.matches[h.matchIdx]
			h.matchIdx++
			out := b.Concat(h.curProbe)
			h.env.Clock.ChargeCPU(cpuTuple + h.predCost)
			if h.node.ExtraPred != nil {
				pass, err := expr.EvalBool(h.node.ExtraPred, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}

		if !h.probeExhausted {
			t, ok, err := h.probe.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				h.probeExhausted = true
				for _, f := range h.probeFiles {
					if f != nil {
						if err := f.Sync(); err != nil {
							return nil, false, err
						}
					}
				}
				continue
			}
			h.env.Clock.ChargeCPU(cpuHashOp)
			if h.spilled {
				if b := h.batchOf(t[h.node.ProbeKey]); b != 0 {
					// Multi-stage write: counted once now, once on re-read.
					enc := t.Encode(nil)
					rep.Extra(h.tag.Seg, float64(len(enc)))
					if _, err := h.probeFiles[b].Append(enc); err != nil {
						return nil, false, err
					}
					continue
				}
			}
			h.curProbe = t
			h.matches = h.table[t[h.node.ProbeKey]]
			h.matchIdx = 0
			continue
		}

		// Spilled-batch processing.
		if !h.spilled {
			return nil, false, nil
		}
		if h.batchScan == nil {
			h.batchIdx++
			if h.batchIdx >= h.nbatch {
				return nil, false, nil
			}
			if err := h.loadBatch(h.batchIdx); err != nil {
				return nil, false, err
			}
			h.batchScan = h.probeFiles[h.batchIdx].NewScanner()
		}
		rec, _, ok := h.batchScan.Next()
		if !ok {
			if err := h.batchScan.Err(); err != nil {
				return nil, false, err
			}
			h.batchScan = nil
			continue
		}
		t, err := tuple.Decode(rec, h.probeArity)
		if err != nil {
			return nil, false, err
		}
		// Multi-stage re-read of a spilled probe tuple.
		rep.Extra(h.tag.Seg, float64(len(rec)))
		h.env.Clock.ChargeCPU(cpuHashOp)
		h.curProbe = t
		h.matches = h.table[t[h.node.ProbeKey]]
		h.matchIdx = 0
	}
}

// loadBatch replaces the in-memory table with spilled build batch b; the
// read is the consumer segment finally consuming that part of the table.
func (h *hashJoin) loadBatch(b int) error {
	h.table = make(map[tuple.Value][]tuple.Tuple)
	h.tableBytes = 0
	sc := h.buildFiles[b].NewScanner()
	rep := h.env.rep()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		// Safe point: reloading a spilled build batch streams from a raw
		// scanner, outside any child Iterator's yield chain (found by
		// progresslint's safepoint analyzer).
		if err := h.env.yield(); err != nil {
			return err
		}
		t, err := tuple.Decode(rec, h.buildArity)
		if err != nil {
			return err
		}
		h.env.Clock.ChargeCPU(cpuHashOp)
		rep.InputTuple(h.tag.Seg, h.tag.Input, len(rec))
		h.addToTable(t, len(rec))
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if b == h.nbatch-1 {
		rep.InputDone(h.tag.Seg, h.tag.Input)
	}
	return nil
}

func (h *hashJoin) Close() error {
	var firstErr error
	if !h.buildClosed {
		// Open failed mid-build: the build child (which may itself hold
		// spilled temp files, e.g. a sort) still needs its unwind.
		h.buildClosed = true
		if err := h.build.Close(); err != nil {
			firstErr = err
		}
	}
	if err := h.probe.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, fs := range [][]*storage.HeapFile{h.buildFiles, h.probeFiles} {
		for _, f := range fs {
			if f == nil {
				continue
			}
			if err := f.Drop(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("exec: dropping hash-join temp: %w", err)
			}
		}
	}
	h.buildFiles, h.probeFiles = nil, nil
	h.table = nil
	return firstErr
}

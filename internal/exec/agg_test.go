package exec

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/tuple"
)

func TestGlobalAggregates(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock,
		"select count(*), sum(totalprice), min(orderkey), max(orderkey), avg(totalprice) from orders",
		optimizer.Options{}, 512, nil)
	if len(rows) != 1 {
		t.Fatalf("global aggregate rows = %d", len(rows))
	}
	// orders: 1000 rows, totalprice = i*1.5 → sum = 1.5*999*1000/2.
	wantSum := 1.5 * 999 * 1000 / 2
	want := fmt.Sprintf("(1000, %g, 0, 999, %g)", wantSum, wantSum/1000)
	if rows[0] != want {
		t.Fatalf("aggregates = %s, want %s", rows[0], want)
	}
}

func TestGroupByCorrectness(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock,
		"select nationkey, count(*) from customer group by nationkey order by nationkey",
		optimizer.Options{}, 512, nil)
	// 100 customers, nationkey = i%25 → 25 groups of 4. (runSQL sorts
	// result strings, so compare as a set.)
	if len(rows) != 25 {
		t.Fatalf("groups = %d", len(rows))
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[r] = true
	}
	for i := 0; i < 25; i++ {
		if !got[fmt.Sprintf("(%d, 4)", i)] {
			t.Fatalf("missing group %d in %v", i, rows)
		}
	}
}

func TestGroupByOverJoin(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, `
		select c.custkey, count(*), sum(o.totalprice)
		from customer c, orders o
		where c.custkey = o.custkey
		group by c.custkey order by c.custkey`,
		optimizer.Options{}, 512, nil)
	if len(rows) != 100 {
		t.Fatalf("groups = %d, want 100", len(rows))
	}
	// Every customer has exactly 10 orders.
	if !strings.HasPrefix(rows[0], "(0, 10, ") {
		t.Fatalf("group 0 = %s", rows[0])
	}
}

func TestDistinctViaGroupBy(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock,
		"select nationkey from customer group by nationkey", optimizer.Options{}, 512, nil)
	if len(rows) != 25 {
		t.Fatalf("distinct nationkeys = %d", len(rows))
	}
}

func TestOrderByAscDesc(t *testing.T) {
	cat, clock := testDB(t)
	// runSQL sorts results, hiding order; run manually.
	stmt, err := sqlparser.Parse("select custkey from customer where custkey < 10 order by custkey desc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 512)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Decomp: d}
	var got []int64
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		got = append(got, tp[0].I)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("rows = %d", len(got))
	}
	for i, v := range got {
		if v != int64(9-i) {
			t.Fatalf("descending order broken: %v", got)
		}
	}
}

func TestLimitStopsEarly(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, "select * from lineitem limit 7", optimizer.Options{}, 512, nil)
	if len(rows) != 7 {
		t.Fatalf("limit rows = %d", len(rows))
	}
	// Limit larger than the result is a no-op.
	rows = runSQL(t, cat, clock, "select * from customer limit 100000", optimizer.Options{}, 512, nil)
	if len(rows) != 100 {
		t.Fatalf("big limit rows = %d", len(rows))
	}
	rows = runSQL(t, cat, clock, "select * from customer limit 0", optimizer.Options{}, 512, nil)
	if len(rows) != 0 {
		t.Fatalf("limit 0 rows = %d", len(rows))
	}
}

func TestOrderByWithLimitTopN(t *testing.T) {
	cat, clock := testDB(t)
	stmt, _ := sqlparser.Parse("select orderkey, totalprice from orders order by totalprice desc limit 3")
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 512)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Decomp: d}
	var got []float64
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		got = append(got, tp[1].F)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// totalprice = i*1.5 → top three are 999, 998, 997 × 1.5.
	want := []float64{1498.5, 1497, 1495.5}
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("top-n = %v, want %v", got, want)
		}
	}
}

// Aggregation is a blocking operator: it must form its own segment whose
// outputs are counted, and work accounting must stay consistent.
func TestAggSegmentAccounting(t *testing.T) {
	cat, clock := testDB(t)
	rec := newRecorder()
	stmt, _ := sqlparser.Parse(
		"select nationkey, count(*) from customer group by nationkey")
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The plan: Project? over HashAgg over scan; HashAgg is blocking.
	foundAgg := false
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if _, ok := n.(*plan.HashAgg); ok {
			foundAgg = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if !foundAgg {
		t.Fatalf("no HashAgg in plan:\n%s", plan.Format(p))
	}
	d := segment.Decompose(p, 512)
	if len(d.Segments) != 2 {
		t.Fatalf("agg query wants 2 segments:\n%s", d)
	}
	if d.Segments[0].Kind != segment.KindAggregate {
		t.Fatalf("producer kind = %v", d.Segments[0].Kind)
	}
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Reporter: rec, Decomp: d}
	if _, err := Run(env, p, nil); err != nil {
		t.Fatal(err)
	}
	// 25 groups emitted as segment output, consumed as final input.
	if rec.outputCount[0] != 25 {
		t.Fatalf("agg segment emitted %d groups", rec.outputCount[0])
	}
	if rec.inputTuples[[2]int{1, 0}] != 25 {
		t.Fatalf("final segment read %d groups", rec.inputTuples[[2]int{1, 0}])
	}
	if len(rec.done) != 2 {
		t.Fatalf("segment completions: %v", rec.done)
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	cat, clock := testDB(t)
	// Predicate selects nothing.
	rows := runSQL(t, cat, clock,
		"select count(*) from customer where custkey < 0", optimizer.Options{}, 512, nil)
	// No groups → no rows (SQL would return one row for a global
	// aggregate over an empty input; our grouping-by-nothing yields no
	// groups — documented engine behaviour).
	if len(rows) > 1 {
		t.Fatalf("rows = %v", rows)
	}
	rows = runSQL(t, cat, clock,
		"select nationkey, count(*) from customer where custkey < 0 group by nationkey",
		optimizer.Options{}, 512, nil)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

package exec

import (
	"fmt"

	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/tuple"
)

// hashAgg groups its input in an in-memory table. Like every blocking
// operator it terminates its segment: the drain happens at Open, each
// result group is a segment-output tuple, and the consumer's reads are
// segment-input tuples.
type hashAgg struct {
	node  *plan.HashAgg
	env   *Env
	child Iterator
	tag   segment.NodeInfo

	groups      []tuple.Tuple
	idx         int
	done        bool
	childOpen   bool
	childClosed bool
}

// aggAcc accumulates one group.
type aggAcc struct {
	key    tuple.Tuple // group column values
	counts []int64     // per agg: rows seen (for count/avg)
	sums   []float64   // per agg: running sum
	minmax []tuple.Value
	seen   []bool
}

func (h *hashAgg) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	h.childOpen = true
	accs := make(map[string]*aggAcc)
	var order []string // deterministic output: first-seen group order
	naggs := len(h.node.Aggs)

	var keyBuf []byte
	for {
		t, ok, err := h.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.env.Clock.ChargeCPU(cpuHashOp)
		keyBuf = keyBuf[:0]
		keyVals := make(tuple.Tuple, len(h.node.GroupCols))
		for i, g := range h.node.GroupCols {
			keyVals[i] = t[g]
		}
		keyBuf = keyVals.Encode(keyBuf)
		k := string(keyBuf)
		acc, okk := accs[k]
		if !okk {
			acc = &aggAcc{
				key:    keyVals.Clone(),
				counts: make([]int64, naggs),
				sums:   make([]float64, naggs),
				minmax: make([]tuple.Value, naggs),
				seen:   make([]bool, naggs),
			}
			accs[k] = acc
			order = append(order, k)
		}
		for i, sp := range h.node.Aggs {
			var v tuple.Value
			if sp.Col >= 0 {
				v = t[sp.Col]
			}
			acc.counts[i]++
			switch sp.Kind {
			case plan.AggCount:
				// counts already incremented
			case plan.AggSum, plan.AggAvg:
				acc.sums[i] += v.AsFloat()
			case plan.AggMin, plan.AggMax:
				if !acc.seen[i] {
					acc.minmax[i] = v
					acc.seen[i] = true
					continue
				}
				c, err := v.Compare(acc.minmax[i])
				if err != nil {
					return err
				}
				if (sp.Kind == plan.AggMin && c < 0) || (sp.Kind == plan.AggMax && c > 0) {
					acc.minmax[i] = v
				}
			default:
				return fmt.Errorf("exec: unknown aggregate %q", sp.Kind)
			}
		}
	}
	if err := h.child.Close(); err != nil {
		return err
	}
	h.childClosed = true

	rep := h.env.rep()
	for _, k := range order {
		acc := accs[k]
		out := make(tuple.Tuple, 0, len(h.node.GroupCols)+naggs)
		out = append(out, acc.key...)
		for i, sp := range h.node.Aggs {
			switch sp.Kind {
			case plan.AggCount:
				out = append(out, tuple.NewInt(acc.counts[i]))
			case plan.AggSum:
				out = append(out, tuple.NewFloat(acc.sums[i]))
			case plan.AggAvg:
				out = append(out, tuple.NewFloat(acc.sums[i]/float64(acc.counts[i])))
			case plan.AggMin, plan.AggMax:
				out = append(out, acc.minmax[i])
			}
		}
		h.env.Clock.ChargeCPU(cpuTuple)
		rep.OutputTuple(h.tag.ProducerSeg, out.EncodedSize())
		h.groups = append(h.groups, out)
	}
	rep.SegmentDone(h.tag.ProducerSeg)
	h.idx = 0
	return nil
}

func (h *hashAgg) Next() (tuple.Tuple, bool, error) {
	if h.idx >= len(h.groups) {
		if !h.done {
			h.done = true
			h.env.rep().InputDone(h.tag.Seg, h.tag.Input)
		}
		return nil, false, nil
	}
	t := h.groups[h.idx]
	h.idx++
	h.env.Clock.ChargeCPU(cpuTuple)
	h.env.rep().InputTuple(h.tag.Seg, h.tag.Input, t.EncodedSize())
	return t, true, nil
}

func (h *hashAgg) Close() error {
	h.groups = nil
	if h.childOpen && !h.childClosed {
		// Open failed mid-drain: unwind the child so any temp files it
		// holds (spilled sorts, joins) are released.
		h.childClosed = true
		return h.child.Close()
	}
	return nil
}

// limitIter passes through at most N rows.
type limitIter struct {
	node  *plan.Limit
	env   *Env
	child Iterator
	n     int64
}

func (l *limitIter) Open() error {
	l.n = 0
	return l.child.Open()
}

func (l *limitIter) Next() (tuple.Tuple, bool, error) {
	if l.n >= l.node.N {
		return nil, false, nil
	}
	t, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return t, true, nil
}

func (l *limitIter) Close() error { return l.child.Close() }

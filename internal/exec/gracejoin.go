package exec

import (
	"fmt"
	"math"

	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// partitionIter hash-partitions its child into batch files on disk — the
// "hash" operators of the paper's Figures 3 and 8. It is fully blocking:
// run drains the child at once, ending the producer segment. The files
// are then consumed batch-by-batch by the owning graceJoin.
type partitionIter struct {
	node        *plan.Partition
	env         *Env
	tag         segment.NodeInfo
	child       Iterator
	files       []*storage.HeapFile
	childOpen   bool
	childClosed bool
}

// run partitions the whole input into nbatch files. Partition nodes are
// driven directly by the owning graceJoin (not through Build), so actuals
// collection is inlined here.
func (p *partitionIter) run(nbatch int) error {
	st := p.env.Collect.Stats(p.node)
	if st != nil {
		st.StartT = p.env.Clock.Now()
		st.Loops++
	}
	rows := p.env.Met.RowsOut(opName(p.node))
	if err := p.child.Open(); err != nil {
		return err
	}
	p.childOpen = true
	p.files = make([]*storage.HeapFile, nbatch)
	for i := range p.files {
		p.files[i] = p.env.newTempFile()
	}
	p.env.Met.SpillPartitions.Add(int64(nbatch))
	rep := p.env.rep()
	for {
		t, ok, err := p.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		enc := t.Encode(nil)
		p.env.Clock.ChargeCPU(cpuHashOp)
		rep.OutputTuple(p.tag.ProducerSeg, len(enc))
		rows.Inc()
		if st != nil {
			st.Rows++
			st.Bytes += float64(len(enc))
		}
		b := int(hashValue(t[p.node.Key]) % uint64(nbatch))
		if _, err := p.files[b].Append(enc); err != nil {
			return err
		}
	}
	if err := p.child.Close(); err != nil {
		return err
	}
	p.childClosed = true
	for _, f := range p.files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	rep.SegmentDone(p.tag.ProducerSeg)
	if st != nil {
		st.EndT = p.env.Clock.Now()
	}
	p.env.Collect.Notef(p.node, "partitioned into %d batches", nbatch)
	return nil
}

func (p *partitionIter) drop() error {
	var firstErr error
	if p.childOpen && !p.childClosed {
		// run failed mid-drain: unwind the child so its own temp files
		// (spilled sorts, nested joins) are released.
		p.childClosed = true
		if err := p.child.Close(); err != nil {
			firstErr = err
		}
	}
	for _, f := range p.files {
		if f == nil {
			continue
		}
		if err := f.Drop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.files = nil
	return firstErr
}

// graceJoin executes a Grace hash join over two partition sets: for each
// batch b, build partition b is loaded into an in-memory table and probe
// partition b streams against it. Both partition reads are inputs of the
// join's segment; the probe partitions are the dominant input.
type graceJoin struct {
	node      *plan.HashJoin
	env       *Env
	buildPart *partitionIter
	probePart *partitionIter
	predCost  float64

	nbatch int
	batch  int

	table      map[tuple.Value][]tuple.Tuple
	probeScan  *storage.Scanner
	matches    []tuple.Tuple
	matchIdx   int
	curProbe   tuple.Tuple
	buildArity int
	probeArity int
}

func (g *graceJoin) Open() error {
	g.buildArity = g.node.Build.Schema().Arity()
	g.probeArity = g.node.Probe.Schema().Arity()

	// Batch count: enough that one build partition fits in memory, per
	// the optimizer's estimate.
	mem := g.env.workMemBytes()
	est := g.node.Build.Est().Bytes()
	g.nbatch = 2
	if mem > 0 {
		g.nbatch = int(math.Ceil(est / mem))
		if g.nbatch < 2 {
			g.nbatch = 2
		}
		if g.nbatch > 256 {
			g.nbatch = 256
		}
	}
	if err := g.buildPart.run(g.nbatch); err != nil {
		return err
	}
	if err := g.probePart.run(g.nbatch); err != nil {
		return err
	}
	g.batch = -1
	return nil
}

func (g *graceJoin) Next() (tuple.Tuple, bool, error) {
	rep := g.env.rep()
	for {
		for g.matchIdx < len(g.matches) {
			b := g.matches[g.matchIdx]
			g.matchIdx++
			out := b.Concat(g.curProbe)
			g.env.Clock.ChargeCPU(cpuTuple + g.predCost)
			if g.node.ExtraPred != nil {
				pass, err := expr.EvalBool(g.node.ExtraPred, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}

		if g.probeScan != nil {
			rec, _, ok := g.probeScan.Next()
			if ok {
				t, err := tuple.Decode(rec, g.probeArity)
				if err != nil {
					return nil, false, err
				}
				g.env.Clock.ChargeCPU(cpuHashOp)
				if err := g.env.yield(); err != nil {
					return nil, false, err
				}
				rep.InputTuple(g.probePart.tag.Seg, g.probePart.tag.Input, len(rec))
				g.curProbe = t
				g.matches = g.table[t[g.node.ProbeKey]]
				g.matchIdx = 0
				continue
			}
			if err := g.probeScan.Err(); err != nil {
				return nil, false, err
			}
			g.probeScan = nil
		}

		// Advance to the next batch.
		g.batch++
		if g.batch >= g.nbatch {
			rep.InputDone(g.buildPart.tag.Seg, g.buildPart.tag.Input)
			rep.InputDone(g.probePart.tag.Seg, g.probePart.tag.Input)
			return nil, false, nil
		}
		if err := g.loadBuildBatch(g.batch); err != nil {
			return nil, false, err
		}
		g.probeScan = g.probePart.files[g.batch].NewScanner()
	}
}

func (g *graceJoin) loadBuildBatch(b int) error {
	g.table = make(map[tuple.Value][]tuple.Tuple)
	rep := g.env.rep()
	sc := g.buildPart.files[b].NewScanner()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		// Safe point: rebuilding a spilled batch table is unbounded work
		// driven by a raw scanner, so it must poll for cancellation
		// itself (found by progresslint's safepoint analyzer).
		if err := g.env.yield(); err != nil {
			return err
		}
		t, err := tuple.Decode(rec, g.buildArity)
		if err != nil {
			return err
		}
		g.env.Clock.ChargeCPU(cpuHashOp)
		rep.InputTuple(g.buildPart.tag.Seg, g.buildPart.tag.Input, len(rec))
		k := t[g.node.BuildKey]
		g.table[k] = append(g.table[k], t)
	}
	return sc.Err()
}

func (g *graceJoin) Close() error {
	err1 := g.buildPart.drop()
	err2 := g.probePart.drop()
	g.table = nil
	if err1 != nil {
		return fmt.Errorf("exec: dropping grace-join build partitions: %w", err1)
	}
	if err2 != nil {
		return fmt.Errorf("exec: dropping grace-join probe partitions: %w", err2)
	}
	return nil
}

package exec

import (
	"math"
	"sort"

	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// sortIter is an external merge sort. Run formation (and any intermediate
// merge passes) happens at Open and belongs to the producer segment,
// which it terminates — the paper's Figure 3, where S3/S4 sort their
// outputs "into multiple sorted runs" consumed by S5. The final merge
// streams tuples to the consumer, reported as consumer-segment input.
type sortIter struct {
	node  *plan.Sort
	env   *Env
	child Iterator
	tag   segment.NodeInfo

	mem  []tuple.Tuple // single in-memory run when nothing spilled
	runs []*storage.HeapFile

	memIdx      int
	merge       *runMerger
	arity       int
	inputDone   bool
	childOpen   bool
	childClosed bool
}

// finishInput marks the sorted stream fully consumed by the parent
// segment.
func (s *sortIter) finishInput() {
	if !s.inputDone {
		s.inputDone = true
		s.env.rep().InputDone(s.tag.Seg, s.tag.Input)
	}
}

func (s *sortIter) Open() error {
	s.arity = s.node.Schema().Arity()
	if err := s.child.Open(); err != nil {
		return err
	}
	s.childOpen = true
	rep := s.env.rep()
	memLimit := s.env.workMemBytes()

	var buf []tuple.Tuple
	bufBytes := 0.0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := s.sortTuples(buf); err != nil {
			return err
		}
		f := s.env.newTempFile()
		for _, t := range buf {
			if _, err := f.Append(t.Encode(nil)); err != nil {
				return err
			}
		}
		if err := f.Sync(); err != nil {
			return err
		}
		s.runs = append(s.runs, f)
		s.env.Met.SortRuns.Inc()
		buf, bufBytes = nil, 0
		return nil
	}

	for {
		t, ok, err := s.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sz := t.EncodedSize()
		s.env.Clock.ChargeCPU(cpuTuple)
		rep.OutputTuple(s.tag.ProducerSeg, sz)
		buf = append(buf, t)
		bufBytes += float64(sz)
		if memLimit > 0 && bufBytes >= memLimit {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := s.child.Close(); err != nil {
		return err
	}
	s.childClosed = true

	if len(s.runs) == 0 {
		// Everything fit: keep the single run in memory.
		if err := s.sortTuples(buf); err != nil {
			return err
		}
		s.mem = buf
	} else {
		if err := flush(); err != nil {
			return err
		}
		spilled := len(s.runs)
		if err := s.intermediateMerges(); err != nil {
			return err
		}
		s.env.Collect.Notef(s.node, "external sort: %d run(s) spilled", spilled)
	}
	rep.SegmentDone(s.tag.ProducerSeg)
	return nil
}

// sortTuples sorts in place by the sort keys, charging ~n·log2(n) CPU.
func (s *sortIter) sortTuples(ts []tuple.Tuple) error {
	if len(ts) > 1 {
		s.env.Clock.ChargeCPU(float64(len(ts)) * math.Log2(float64(len(ts))))
	}
	var sortErr error
	sort.SliceStable(ts, func(i, j int) bool {
		c, err := s.compare(ts[i], ts[j])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	return sortErr
}

func (s *sortIter) compare(a, b tuple.Tuple) (int, error) {
	for _, k := range s.node.Keys {
		c, err := a[k.Col].Compare(b[k.Col])
		if err != nil {
			return 0, err
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// intermediateMerges reduces the run count below the merge fan-in,
// charging each moved byte twice (read + write) as multi-stage Extra.
func (s *sortIter) intermediateMerges() error {
	fanin := s.env.WorkMemPages - 1
	if fanin < 2 {
		fanin = 2
	}
	rep := s.env.rep()
	for len(s.runs) > fanin {
		group := s.runs[:fanin]
		rest := s.runs[fanin:]
		s.env.Met.MergePasses.Inc()
		s.env.Collect.Notef(s.node, "intermediate merge: %d runs -> 1", len(group))
		m, err := newRunMerger(s, group)
		if err != nil {
			return err
		}
		out := s.env.newTempFile()
		mergeErr := func() error {
			for {
				t, ok, err := m.next()
				if err != nil {
					return err
				}
				if !ok {
					return out.Sync()
				}
				// Safe point: intermediate merges re-stream every spilled
				// byte without touching a child Iterator, so a cancel
				// mid-merge would otherwise go unseen until all passes
				// finish (found by progresslint's safepoint analyzer).
				if err := s.env.yield(); err != nil {
					return err
				}
				sz := t.EncodedSize()
				s.env.Clock.ChargeCPU(cpuTuple * 2)
				rep.Extra(s.tag.ProducerSeg, 2*float64(sz))
				if _, err := out.Append(t.Encode(nil)); err != nil {
					return err
				}
			}
		}()
		if mergeErr != nil {
			out.Drop() // best effort; the original error wins
			return mergeErr
		}
		for _, f := range group {
			if err := f.Drop(); err != nil {
				return err
			}
		}
		s.runs = append(rest, out)
	}
	return nil
}

func (s *sortIter) Next() (tuple.Tuple, bool, error) {
	rep := s.env.rep()
	if s.mem != nil {
		if s.memIdx >= len(s.mem) {
			s.finishInput()
			return nil, false, nil
		}
		t := s.mem[s.memIdx]
		s.memIdx++
		s.env.Clock.ChargeCPU(cpuTuple)
		rep.InputTuple(s.tag.Seg, s.tag.Input, t.EncodedSize())
		return t, true, nil
	}
	if s.merge == nil {
		m, err := newRunMerger(s, s.runs)
		if err != nil {
			return nil, false, err
		}
		s.merge = m
	}
	t, ok, err := s.merge.next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		s.finishInput()
		return nil, false, nil
	}
	s.env.Clock.ChargeCPU(cpuTuple + math.Log2(float64(len(s.runs))+1))
	rep.InputTuple(s.tag.Seg, s.tag.Input, t.EncodedSize())
	return t, true, nil
}

func (s *sortIter) Close() error {
	var firstErr error
	if s.childOpen && !s.childClosed {
		// Open failed mid-drain: unwind the child too.
		s.childClosed = true
		if err := s.child.Close(); err != nil {
			firstErr = err
		}
	}
	disk := s.env.Pool.Disk()
	for _, f := range s.runs {
		if !disk.Exists(f.ID()) {
			continue // already dropped by a failed intermediate merge
		}
		if err := f.Drop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.runs = nil
	s.mem = nil
	return firstErr
}

// runMerger streams the k-way merge of sorted runs. k is bounded by the
// merge fan-in, so a linear minimum scan per tuple is fine.
type runMerger struct {
	s     *sortIter
	scans []*storage.Scanner
	heads []tuple.Tuple
}

func newRunMerger(s *sortIter, runs []*storage.HeapFile) (*runMerger, error) {
	m := &runMerger{s: s}
	for _, f := range runs {
		sc := f.NewScanner()
		m.scans = append(m.scans, sc)
		m.heads = append(m.heads, nil)
	}
	for i := range m.scans {
		if err := m.advance(i); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *runMerger) advance(i int) error {
	rec, _, ok := m.scans[i].Next()
	if !ok {
		m.heads[i] = nil
		return m.scans[i].Err()
	}
	t, err := tuple.Decode(rec, m.s.arity)
	if err != nil {
		return err
	}
	m.heads[i] = t
	return nil
}

func (m *runMerger) next() (tuple.Tuple, bool, error) {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		c, err := m.s.compare(h, m.heads[best])
		if err != nil {
			return nil, false, err
		}
		if c < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	t := m.heads[best]
	if err := m.advance(best); err != nil {
		return nil, false, err
	}
	return t, true, nil
}

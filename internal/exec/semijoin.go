package exec

import (
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/tuple"
)

// semiJoin executes EXISTS/IN (and NOT EXISTS/NOT IN as anti-joins). The
// inner side is drained at Open into a hash table keyed by the equality
// correlation column (or a plain cache when there is none); each outer
// tuple is emitted when a match exists (anti: does not exist). The inner
// drain terminates the subquery's segment; the outer is this segment's
// dominant input.
type semiJoin struct {
	node     *plan.SemiJoin
	env      *Env
	tag      segment.NodeInfo
	outer    Iterator
	inner    Iterator
	predCost float64

	table map[tuple.Value][]tuple.Tuple // keyed path
	cache []tuple.Tuple                 // keyless (pure NL) path

	innerOpen   bool
	innerClosed bool
	outerOpen   bool
}

func (j *semiJoin) Open() error {
	if err := j.inner.Open(); err != nil {
		return err
	}
	j.innerOpen = true
	rep := j.env.rep()
	keyed := j.node.OuterKey >= 0
	if keyed {
		j.table = make(map[tuple.Value][]tuple.Tuple)
	}
	var tuples int64
	var bytes float64
	for {
		t, ok, err := j.inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sz := t.EncodedSize()
		j.env.Clock.ChargeCPU(cpuHashOp)
		rep.OutputTuple(j.tag.ProducerSeg, sz)
		tuples++
		bytes += float64(sz)
		if keyed {
			k := t[j.node.InnerKey]
			// Without an extra predicate only key presence matters; keep
			// one witness tuple per key.
			if j.node.ExtraPred == nil {
				if _, dup := j.table[k]; dup {
					continue
				}
				j.table[k] = j.table[k][:0]
			}
			j.table[k] = append(j.table[k], t)
		} else {
			j.cache = append(j.cache, t)
		}
	}
	if err := j.inner.Close(); err != nil {
		return err
	}
	j.innerClosed = true
	rep.SegmentDone(j.tag.ProducerSeg)
	rep.InputBulk(j.tag.Seg, j.tag.Input, tuples, bytes)
	rep.InputDone(j.tag.Seg, j.tag.Input)
	if err := j.outer.Open(); err != nil {
		return err
	}
	j.outerOpen = true
	return nil
}

func (j *semiJoin) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := j.outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.env.Clock.ChargeCPU(cpuHashOp)
		if err := j.env.yield(); err != nil {
			return nil, false, err
		}
		matched, err := j.matches(t)
		if err != nil {
			return nil, false, err
		}
		if matched != j.node.Anti {
			return t, true, nil
		}
	}
}

func (j *semiJoin) matches(outer tuple.Tuple) (bool, error) {
	var candidates []tuple.Tuple
	if j.node.OuterKey >= 0 {
		candidates = j.table[outer[j.node.OuterKey]]
	} else {
		candidates = j.cache
	}
	if j.node.ExtraPred == nil {
		return len(candidates) > 0, nil
	}
	for _, c := range candidates {
		j.env.Clock.ChargeCPU(j.predCost)
		pass, err := expr.EvalBool(j.node.ExtraPred, outer.Concat(c))
		if err != nil {
			return false, err
		}
		if pass {
			return true, nil
		}
	}
	return false, nil
}

func (j *semiJoin) Close() error {
	j.table = nil
	j.cache = nil
	var firstErr error
	if j.innerOpen && !j.innerClosed {
		// Open failed mid-drain: unwind the inner so any temp files it
		// holds are released.
		j.innerClosed = true
		if err := j.inner.Close(); err != nil {
			firstErr = err
		}
	}
	if j.outerOpen {
		if err := j.outer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

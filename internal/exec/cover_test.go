package exec

import (
	"sort"
	"testing"

	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/tuple"
)

// hasIndexScan reports whether the plan uses an index scan.
func hasIndexScan(n plan.Node) bool {
	if _, ok := n.(*plan.IndexScan); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasIndexScan(c) {
			return true
		}
	}
	return false
}

// With a low random-I/O penalty the optimizer picks the index scan; the
// executor's B+-tree path must return the same rows as a table scan.
func TestIndexScanPathExecutes(t *testing.T) {
	cat, clock := testDB(t)
	li, _ := cat.Table("lineitem")
	if _, err := cat.CreateIndex(li, "orderkey"); err != nil {
		t.Fatal(err)
	}
	opt := optimizer.Options{RandFactor: 0.01}

	stmt, _ := sqlparser.Parse("select * from lineitem where orderkey = 17")
	p, err := optimizer.Plan(cat, stmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasIndexScan(p) {
		t.Fatalf("index scan not chosen:\n%s", plan.Format(p))
	}
	rec := newRecorder()
	d := segment.Decompose(p, 512)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Reporter: rec, Decomp: d}
	n, err := Run(env, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// lineitem orderkey = i%1000: rows 17, 1017, 2017.
	if n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	if len(rec.inputDone) == 0 {
		t.Fatal("index scan must fire InputDone at exhaustion")
	}

	// Range form (exercises the Hi-bound cutoff).
	viaIndex := runSQL(t, cat, clock, "select * from lineitem where orderkey <= 5", opt, 512, nil)
	viaScan := runSQL(t, cat, clock, "select * from lineitem where orderkey <= 5",
		optimizer.Options{DisableIndexScan: true}, 512, nil)
	if len(viaIndex) != len(viaScan) || len(viaIndex) != 18 {
		t.Fatalf("index rows %d vs scan rows %d (want 18)", len(viaIndex), len(viaScan))
	}
	for i := range viaIndex {
		if viaIndex[i] != viaScan[i] {
			t.Fatalf("row %d differs between access paths", i)
		}
	}
}

// One page of work_mem forces many sort runs, and the run count exceeds
// the merge fan-in, so intermediate merge passes execute; order must
// still be exact.
func TestExternalSortIntermediateMergePasses(t *testing.T) {
	cat, clock := testDB(t)
	rec := newRecorder()
	stmt, _ := sqlparser.Parse("select orderkey, partkey from lineitem order by partkey")
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{WorkMemPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 1)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 1, Reporter: rec, Decomp: d}
	var got []int64
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		got = append(got, tp[1].I)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3000 {
		t.Fatalf("rows = %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("external sort output not ordered")
	}
	// The intermediate merges reported multi-stage Extra bytes on the
	// sort's producer segment.
	total := 0.0
	for _, b := range rec.extraBytes {
		total += b
	}
	if total <= 0 {
		t.Fatal("intermediate merge passes must report Extra bytes")
	}
}

// Filters below an NL join's materialized inner exercise innerBoundary's
// Filter case.
func TestNLInnerWithFilter(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, `
		select c1.custkey, c2.custkey from customer c1, customer c2
		where c1.custkey <> c2.custkey and c2.nationkey < 2 and c1.nationkey < 2`,
		optimizer.Options{}, 512, nil)
	// nationkey = custkey%25 < 2 → 8 customers per side; exclude equal keys.
	if len(rows) != 8*8-8 {
		t.Fatalf("rows = %d, want %d", len(rows), 8*8-8)
	}
}

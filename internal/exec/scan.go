package exec

import (
	"progressdb/internal/btree"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// seqScan reads a base relation front to back. Each tuple read is a
// segment-input event; physical page I/O is charged by the heap scanner
// through the buffer pool.
type seqScan struct {
	node *plan.SeqScan
	env  *Env
	tag  segment.NodeInfo
	sc   *storage.Scanner
	done bool
}

func (s *seqScan) Open() error {
	s.sc = s.env.newBaseScanner(s.node.Table.Heap)
	s.done = false
	return nil
}

func (s *seqScan) Next() (tuple.Tuple, bool, error) {
	rec, _, ok := s.sc.Next()
	if !ok {
		if err := s.sc.Err(); err != nil {
			return nil, false, err
		}
		if !s.done {
			s.done = true
			s.env.rep().InputDone(s.tag.Seg, s.tag.Input)
		}
		return nil, false, nil
	}
	row, err := tuple.Decode(rec, s.node.Table.Schema.Arity())
	if err != nil {
		return nil, false, err
	}
	s.env.Clock.ChargeCPU(cpuTuple)
	s.env.rep().InputTuple(s.tag.Seg, s.tag.Input, len(rec))
	if err := s.env.yield(); err != nil {
		return nil, false, err
	}
	return row, true, nil
}

func (s *seqScan) Close() error {
	if s.sc != nil {
		s.sc.Close()
	}
	return nil
}

// indexScan walks a B+-tree range and fetches matching heap tuples. Tree
// and heap page I/O are charged through the buffer pool; heap fetches are
// typically random.
type indexScan struct {
	node *plan.IndexScan
	env  *Env
	tag  segment.NodeInfo
	it   *btree.Iterator
	done bool
}

func (s *indexScan) finish() {
	if !s.done {
		s.done = true
		s.env.rep().InputDone(s.tag.Seg, s.tag.Input)
	}
}

func (s *indexScan) Open() error {
	lo := int64(-1 << 63)
	if s.node.Lo != nil {
		lo = *s.node.Lo
	}
	it, err := s.node.Index.Tree.SeekGEOn(s.env.Clock, lo)
	if err != nil {
		return err
	}
	s.it = it
	s.done = false
	return nil
}

func (s *indexScan) Next() (tuple.Tuple, bool, error) {
	for {
		e, ok, err := s.it.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.finish()
			return nil, false, nil
		}
		if s.node.Hi != nil && e.Key > *s.node.Hi {
			s.finish()
			return nil, false, nil
		}
		rec, err := s.node.Table.Heap.FetchOn(s.env.Clock, e.RID)
		if err != nil {
			return nil, false, err
		}
		row, err := tuple.Decode(rec, s.node.Table.Schema.Arity())
		if err != nil {
			return nil, false, err
		}
		s.env.Clock.ChargeCPU(cpuTuple + 1)
		s.env.rep().InputTuple(s.tag.Seg, s.tag.Input, len(rec))
		if err := s.env.yield(); err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

func (s *indexScan) Close() error { return nil }

package exec

import (
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/tuple"
)

// nlJoin is a nested-loops join. The inner is read once through its own
// iterator (which reports its first-pass input bytes) and cached; each
// further outer tuple replays the cache, reported as one bulk input pass
// — the paper's "bytes counted once each time they are logically read"
// rule for multi-pass leaf operators. The replay is CPU work only, like a
// buffer-pool-resident inner in a real system.
type nlJoin struct {
	node     *plan.NLJoin
	env      *Env
	outer    Iterator
	inner    Iterator
	innerTag segment.NodeInfo
	predCost float64

	cache      []tuple.Tuple
	cacheBytes float64
	firstPass  bool
	curOuter   tuple.Tuple
	innerIdx   int
}

func (j *nlJoin) Open() error {
	if err := j.outer.Open(); err != nil {
		return err
	}
	if err := j.inner.Open(); err != nil {
		return err
	}
	j.firstPass = true
	j.curOuter = nil
	return nil
}

func (j *nlJoin) Next() (tuple.Tuple, bool, error) {
	for {
		if j.curOuter == nil {
			t, ok, err := j.outer.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			j.curOuter = t
			j.innerIdx = 0
			if !j.firstPass {
				// One full logical pass over the cached inner.
				j.env.rep().InputRepeat(j.innerTag.Seg, j.innerTag.Input,
					int64(len(j.cache)), j.cacheBytes)
			}
		}

		var innerTuple tuple.Tuple
		if j.firstPass {
			t, ok, err := j.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				// Inner exhausted: first outer tuple done.
				j.firstPass = false
				j.curOuter = nil
				continue
			}
			j.cache = append(j.cache, t)
			j.cacheBytes += float64(t.EncodedSize())
			innerTuple = t
		} else {
			if j.innerIdx >= len(j.cache) {
				j.curOuter = nil
				continue
			}
			innerTuple = j.cache[j.innerIdx]
			j.innerIdx++
		}

		out := j.curOuter.Concat(innerTuple)
		j.env.Clock.ChargeCPU(cpuPairBase + j.predCost)
		if err := j.env.yield(); err != nil {
			return nil, false, err
		}
		if j.node.Pred != nil {
			pass, err := expr.EvalBool(j.node.Pred, out)
			if err != nil {
				return nil, false, err
			}
			if !pass {
				continue
			}
		}
		return out, true, nil
	}
}

func (j *nlJoin) Close() error {
	err1 := j.outer.Close()
	err2 := j.inner.Close()
	j.cache = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// materialize drains its child at Open (terminating the child's segment)
// and streams the buffered tuples once, reporting each as a consumer
// input read.
type materialize struct {
	env   *Env
	child Iterator
	tag   segment.NodeInfo

	buf         []tuple.Tuple
	idx         int
	inputDone   bool
	childOpen   bool
	childClosed bool
}

func (m *materialize) Open() error {
	if err := m.child.Open(); err != nil {
		return err
	}
	m.childOpen = true
	rep := m.env.rep()
	for {
		t, ok, err := m.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		m.env.Clock.ChargeCPU(cpuTuple)
		rep.OutputTuple(m.tag.ProducerSeg, t.EncodedSize())
		m.buf = append(m.buf, t)
	}
	if err := m.child.Close(); err != nil {
		return err
	}
	m.childClosed = true
	rep.SegmentDone(m.tag.ProducerSeg)
	m.idx = 0
	return nil
}

func (m *materialize) Next() (tuple.Tuple, bool, error) {
	if m.idx >= len(m.buf) {
		if !m.inputDone {
			m.inputDone = true
			m.env.rep().InputDone(m.tag.Seg, m.tag.Input)
		}
		return nil, false, nil
	}
	t := m.buf[m.idx]
	m.idx++
	m.env.Clock.ChargeCPU(cpuTuple)
	m.env.rep().InputTuple(m.tag.Seg, m.tag.Input, t.EncodedSize())
	return t, true, nil
}

func (m *materialize) Close() error {
	m.buf = nil
	if m.childOpen && !m.childClosed {
		// Open failed mid-drain: unwind the child so any temp files it
		// holds are released.
		m.childClosed = true
		return m.child.Close()
	}
	return nil
}

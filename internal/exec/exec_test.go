package exec

import (
	"fmt"
	"sort"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// recorder captures all WorkReporter events for assertions.
type recorder struct {
	inputBytes  map[[2]int]float64 // (seg, input) -> bytes
	inputTuples map[[2]int]int64
	outputBytes map[int]float64
	outputCount map[int]int64
	extraBytes  map[int]float64
	done        []int
	inputDone   [][2]int
}

func newRecorder() *recorder {
	return &recorder{
		inputBytes:  map[[2]int]float64{},
		inputTuples: map[[2]int]int64{},
		outputBytes: map[int]float64{},
		outputCount: map[int]int64{},
		extraBytes:  map[int]float64{},
	}
}

func (r *recorder) InputTuple(seg, input int, bytes int) {
	r.inputBytes[[2]int{seg, input}] += float64(bytes)
	r.inputTuples[[2]int{seg, input}]++
}

func (r *recorder) InputBulk(seg, input int, tuples int64, bytes float64) {
	r.inputBytes[[2]int{seg, input}] += bytes
	r.inputTuples[[2]int{seg, input}] += tuples
}

func (r *recorder) OutputTuple(seg int, bytes int) {
	r.outputBytes[seg] += float64(bytes)
	r.outputCount[seg]++
}

func (r *recorder) InputRepeat(seg, input int, tuples int64, bytes float64) {
	r.inputBytes[[2]int{seg, input}] += bytes
	r.inputTuples[[2]int{seg, input}] += tuples
}

func (r *recorder) InputDone(seg, input int) {
	r.inputDone = append(r.inputDone, [2]int{seg, input})
}

func (r *recorder) Extra(seg int, bytes float64) { r.extraBytes[seg] += bytes }
func (r *recorder) SegmentDone(seg int)          { r.done = append(r.done, seg) }

// testDB builds the standard small catalog: 100 customers × 10 orders
// each × 3 lineitems per order.
func testDB(t *testing.T) (*catalog.Catalog, *vclock.Clock) {
	t.Helper()
	clock := vclock.New(vclock.Costs{SeqPage: 1e-4, RandPage: 8e-4, CPUTuple: 1e-7}, nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 1024))
	mk := func(name string, sch *tuple.Schema, n int, row func(i int) tuple.Tuple) {
		tb, err := cat.CreateTable(name, sch)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := cat.Insert(tb, row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.Heap.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	mk("customer", tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "nationkey", Type: tuple.Int},
		tuple.Column{Name: "name", Type: tuple.String},
	), 100, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 25)),
			tuple.NewString(fmt.Sprintf("Customer#%03d", i))}
	})
	mk("orders", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "totalprice", Type: tuple.Float},
	), 1000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 100)),
			tuple.NewFloat(float64(i) * 1.5)}
	})
	mk("lineitem", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "partkey", Type: tuple.Int},
		tuple.Column{Name: "quantity", Type: tuple.Int},
	), 3000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i % 1000)), tuple.NewInt(int64(i - 1500)),
			tuple.NewInt(int64(i % 50))}
	})
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat, clock
}

// runSQL plans and executes sql, returning all result rows rendered as
// strings (order-insensitive comparisons sort them).
func runSQL(t *testing.T, cat *catalog.Catalog, clock *vclock.Clock, sql string,
	opt optimizer.Options, workMem int, rep segment.WorkReporter) []string {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Plan(cat, stmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, workMem)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: workMem, Reporter: rep, Decomp: d}
	var rows []string
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		rows = append(rows, tp.String())
		return nil
	}); err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	sort.Strings(rows)
	return rows
}

func TestSeqScanAllRows(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, "select * from customer", optimizer.Options{}, 512, nil)
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestFilterCorrectness(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, "select custkey from customer where nationkey < 10",
		optimizer.Options{}, 512, nil)
	// nationkey = custkey % 25 < 10 → custkey % 25 in 0..9 → 40 rows.
	if len(rows) != 40 {
		t.Fatalf("got %d rows, want 40", len(rows))
	}
}

func TestFunctionPredicateRuntime(t *testing.T) {
	cat, clock := testDB(t)
	// absolute(partkey) > 0: partkey = i-1500 for i in 0..2999; zero at i=1500.
	rows := runSQL(t, cat, clock, "select partkey from lineitem where absolute(partkey) > 0",
		optimizer.Options{}, 512, nil)
	if len(rows) != 2999 {
		t.Fatalf("got %d rows, want 2999", len(rows))
	}
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	cat, clock := testDB(t)
	sql := "select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey"
	hash := runSQL(t, cat, clock, sql, optimizer.Options{ForceJoinAlgo: "hash"}, 512, nil)
	nl := runSQL(t, cat, clock, sql, optimizer.Options{ForceJoinAlgo: "nl"}, 512, nil)
	merge := runSQL(t, cat, clock, sql, optimizer.Options{ForceJoinAlgo: "merge"}, 512, nil)
	if len(hash) != 1000 {
		t.Fatalf("hash join rows = %d, want 1000", len(hash))
	}
	if len(nl) != len(hash) || len(merge) != len(hash) {
		t.Fatalf("row counts differ: hash=%d nl=%d merge=%d", len(hash), len(nl), len(merge))
	}
	for i := range hash {
		if hash[i] != nl[i] || hash[i] != merge[i] {
			t.Fatalf("row %d differs: hash=%s nl=%s merge=%s", i, hash[i], nl[i], merge[i])
		}
	}
}

func TestThreeWayJoinCardinality(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`,
		optimizer.Options{}, 512, nil)
	// Every order matches exactly 3 lineitems → 3000 rows.
	if len(rows) != 3000 {
		t.Fatalf("got %d rows, want 3000", len(rows))
	}
}

func TestHashJoinSpillAgreesWithInMemory(t *testing.T) {
	cat, clock := testDB(t)
	// The top join's build side (customer⋈orders intermediate, ~18 KB)
	// exceeds one page of work_mem and must spill.
	sql := `select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`
	inMem := runSQL(t, cat, clock, sql, optimizer.Options{}, 512, nil)
	rec := newRecorder()
	spilled := runSQL(t, cat, clock, sql, optimizer.Options{}, 1, rec)
	if len(spilled) != len(inMem) {
		t.Fatalf("spill changed row count: %d vs %d", len(spilled), len(inMem))
	}
	for i := range inMem {
		if spilled[i] != inMem[i] {
			t.Fatalf("row %d differs under spill", i)
		}
	}
	// Spill traffic must be recorded as multi-stage Extra bytes.
	total := 0.0
	for _, b := range rec.extraBytes {
		total += b
	}
	if total <= 0 {
		t.Fatal("spilled hash join reported no Extra bytes")
	}
}

// When the planner knows memory is tight it emits a Grace hash join:
// both sides partitioned to disk as separate segments. Results must be
// identical and the partition segments must report output bytes.
func TestGraceHashJoinAgreesAndReports(t *testing.T) {
	cat, clock := testDB(t)
	sql := `select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`
	inMem := runSQL(t, cat, clock, sql, optimizer.Options{}, 512, nil)

	stmt, _ := sqlparser.Parse(sql)
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{WorkMemPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	hasGrace := false
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.HashJoin); ok && j.Grace {
			hasGrace = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if !hasGrace {
		t.Fatalf("tiny work_mem must produce a Grace join:\n%s", plan.Format(p))
	}
	rec := newRecorder()
	d := segment.Decompose(p, 1)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 1, Reporter: rec, Decomp: d}
	var rows []string
	if _, err := Run(env, p, func(tp tuple.Tuple) error {
		rows = append(rows, tp.String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	if len(rows) != len(inMem) {
		t.Fatalf("grace join rows = %d, want %d", len(rows), len(inMem))
	}
	for i := range rows {
		if rows[i] != inMem[i] {
			t.Fatalf("row %d differs under grace join", i)
		}
	}
	// Every partition segment reported output and was consumed equally.
	for _, s := range d.Segments {
		for i, in := range s.Inputs {
			if in.Base {
				continue
			}
			prodOut := rec.outputBytes[in.Child.ID]
			consIn := rec.inputBytes[[2]int{s.ID, i}]
			if prodOut <= 0 || prodOut != consIn {
				t.Errorf("grace: segment %d output %.0fB != consumer input %.0fB (seg %d in %d)",
					in.Child.ID, prodOut, consIn, s.ID, i)
			}
		}
	}
}

func TestExternalSortSpillAgrees(t *testing.T) {
	cat, clock := testDB(t)
	sql := "select c.custkey from customer c, orders o where c.custkey = o.custkey"
	inMem := runSQL(t, cat, clock, sql, optimizer.Options{ForceJoinAlgo: "merge"}, 512, nil)
	spilled := runSQL(t, cat, clock, sql, optimizer.Options{ForceJoinAlgo: "merge"}, 1, nil)
	if len(inMem) != len(spilled) {
		t.Fatalf("external sort changed results: %d vs %d", len(inMem), len(spilled))
	}
	for i := range inMem {
		if inMem[i] != spilled[i] {
			t.Fatalf("row %d differs under external sort", i)
		}
	}
}

func TestNLJoinNotEquals(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock,
		"select c1.custkey, c2.custkey from customer c1, customer c2 where c1.custkey <> c2.custkey",
		optimizer.Options{}, 512, nil)
	if len(rows) != 100*99 {
		t.Fatalf("got %d rows, want %d", len(rows), 100*99)
	}
}

func TestIndexScanExecution(t *testing.T) {
	cat, clock := testDB(t)
	orders, _ := cat.Table("orders")
	if _, err := cat.CreateIndex(orders, "orderkey"); err != nil {
		t.Fatal(err)
	}
	rows := runSQL(t, cat, clock, "select * from orders where orderkey = 17", optimizer.Options{}, 512, nil)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	// Range scan.
	rows = runSQL(t, cat, clock, "select * from orders where orderkey < 50", optimizer.Options{}, 512, nil)
	if len(rows) != 50 {
		t.Fatalf("range: got %d rows, want 50", len(rows))
	}
}

// The reporter's structural invariants: build-segment output equals the
// consumer's hash-table input; base-input tuple counts equal relation
// cardinalities; segments complete in execution order.
func TestWorkAccountingStructure(t *testing.T) {
	cat, clock := testDB(t)
	rec := newRecorder()
	stmt, _ := sqlparser.Parse(`
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`)
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 512)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Reporter: rec, Decomp: d}
	if _, err := Run(env, p, nil); err != nil {
		t.Fatal(err)
	}

	if len(rec.done) != len(d.Segments) {
		t.Fatalf("done events: %v for %d segments", rec.done, len(d.Segments))
	}
	for i, seg := range rec.done {
		if seg != i {
			t.Fatalf("segments must complete in execution order: %v", rec.done)
		}
	}

	// Base inputs saw exactly the relation cardinalities.
	for _, s := range d.Segments {
		for i, in := range s.Inputs {
			if in.Base {
				got := rec.inputTuples[[2]int{s.ID, i}]
				want := in.Table.Heap.Len()
				if got != want {
					t.Errorf("segment %d input %d (%s): %d tuples, want %d",
						s.ID, i, in.Table.Name, got, want)
				}
			}
		}
	}

	// Each non-final segment's output equals its consumer's input bytes.
	for _, s := range d.Segments {
		for i, in := range s.Inputs {
			if in.Base {
				continue
			}
			prodOut := rec.outputBytes[in.Child.ID]
			consIn := rec.inputBytes[[2]int{s.ID, i}]
			if prodOut <= 0 || prodOut != consIn {
				t.Errorf("segment %d output %.0fB != consumer %d input %.0fB",
					in.Child.ID, prodOut, s.ID, consIn)
			}
		}
	}
}

// Work accounting for NL joins: inner input bytes = cache bytes × outer
// cardinality (one pass per outer tuple).
func TestNLJoinPassAccounting(t *testing.T) {
	cat, clock := testDB(t)
	rec := newRecorder()
	stmt, _ := sqlparser.Parse(
		"select c1.custkey, c2.custkey from customer c1, customer c2 where c1.custkey <> c2.custkey")
	p, err := optimizer.Plan(cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 512)
	env := &Env{Pool: cat.Pool(), Clock: clock, WorkMemPages: 512, Reporter: rec, Decomp: d}
	if _, err := Run(env, p, nil); err != nil {
		t.Fatal(err)
	}
	// The projected inner is materialized, so the NL join lives in the
	// final segment with inputs (outer scan, materialized inner).
	s := d.Segments[len(d.Segments)-1]
	if len(s.Inputs) != 2 {
		t.Fatalf("final segment inputs: %s", d)
	}
	domIdx := s.Dominant[0]
	innerIdx := 1 - domIdx
	outerTuples := rec.inputTuples[[2]int{s.ID, domIdx}]
	innerTuples := rec.inputTuples[[2]int{s.ID, innerIdx}]
	if outerTuples != 100 {
		t.Fatalf("outer input = %d tuples", outerTuples)
	}
	// 100 logical passes over 100 cached inner tuples.
	if innerTuples != 100*100 {
		t.Fatalf("inner input = %d tuple-reads, want 10000", innerTuples)
	}
}

func TestRunWithoutReporterMatches(t *testing.T) {
	cat, clock := testDB(t)
	sql := "select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey"
	with := runSQL(t, cat, clock, sql, optimizer.Options{}, 512, newRecorder())
	without := runSQL(t, cat, clock, sql, optimizer.Options{}, 512, nil)
	if len(with) != len(without) {
		t.Fatal("reporter changed results")
	}
}

func TestClockAdvancesDuringExecution(t *testing.T) {
	cat, clock := testDB(t)
	before := clock.Now()
	runSQL(t, cat, clock, "select * from lineitem", optimizer.Options{}, 4, nil)
	if clock.Now() <= before {
		t.Fatal("execution must advance the virtual clock")
	}
}

func TestProjectionSchemaAndValues(t *testing.T) {
	cat, clock := testDB(t)
	rows := runSQL(t, cat, clock, "select name, custkey from customer where custkey = 7",
		optimizer.Options{}, 512, nil)
	if len(rows) != 1 || rows[0] != "(Customer#007, 7)" {
		t.Fatalf("rows = %v", rows)
	}
}

var _ plan.Node = (*plan.SeqScan)(nil) // keep plan import if assertions above change

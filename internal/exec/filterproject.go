package exec

import (
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/tuple"
)

// filterIter drops tuples failing the predicate.
type filterIter struct {
	node     *plan.Filter
	env      *Env
	child    Iterator
	predCost float64
}

func (f *filterIter) Open() error { return f.child.Open() }

func (f *filterIter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.Clock.ChargeCPU(f.predCost)
		pass, err := expr.EvalBool(f.node.Pred, t)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return t, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.child.Close() }

// projectIter keeps a subset of columns.
type projectIter struct {
	node  *plan.Project
	env   *Env
	child Iterator
}

func (p *projectIter) Open() error { return p.child.Open() }

func (p *projectIter) Next() (tuple.Tuple, bool, error) {
	t, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(tuple.Tuple, len(p.node.Cols))
	for i, c := range p.node.Cols {
		out[i] = t[c]
	}
	p.env.Clock.ChargeCPU(cpuTuple)
	return out, true, nil
}

func (p *projectIter) Close() error { return p.child.Close() }

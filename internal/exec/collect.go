package exec

import (
	"fmt"

	"progressdb/internal/obs"
	"progressdb/internal/plan"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// Metrics are the executor's engine-wide instruments, shared by every
// query the engine runs. The zero value is the disabled state: all
// counters are nil and every increment is a nil-safe no-op, so the hot
// path pays only a nil check when observability is off.
type Metrics struct {
	reg *obs.Registry
	// SpillPartitions counts partition batch files created by hash joins
	// (hybrid spill batches and Grace partition batches).
	SpillPartitions *obs.Counter
	// SortRuns counts sorted runs written to disk by external sorts.
	SortRuns *obs.Counter
	// MergePasses counts intermediate merge passes (beyond the final
	// merge) performed by external sorts.
	MergePasses *obs.Counter
}

// NewMetrics registers the executor's instruments in reg. A nil registry
// yields the zero (disabled) Metrics.
func NewMetrics(reg *obs.Registry) Metrics {
	if reg == nil {
		return Metrics{}
	}
	return Metrics{
		reg:             reg,
		SpillPartitions: reg.Counter("exec_spill_partitions_total", "hash-join partition batch files spilled to disk"),
		SortRuns:        reg.Counter("exec_sort_runs_total", "sorted runs written to disk by external sorts"),
		MergePasses:     reg.Counter("exec_merge_passes_total", "intermediate sort merge passes beyond the final merge"),
	}
}

// Enabled reports whether the metrics are wired to a registry.
func (m Metrics) Enabled() bool { return m.reg != nil }

// RowsOut returns the engine-wide tuples-emitted counter for the given
// operator label (nil, and therefore a no-op, when metrics are disabled).
func (m Metrics) RowsOut(op string) *obs.Counter {
	return m.reg.LabeledCounter("exec_rows_out_total", "op", op, "tuples emitted, by operator")
}

// opName is the metrics label for a plan operator.
func opName(n plan.Node) string {
	switch node := n.(type) {
	case *plan.SeqScan:
		return "seqscan"
	case *plan.IndexScan:
		return "indexscan"
	case *plan.Filter:
		return "filter"
	case *plan.Project:
		return "project"
	case *plan.HashJoin:
		if node.Grace {
			return "gracehashjoin"
		}
		return "hashjoin"
	case *plan.Partition:
		return "partition"
	case *plan.NLJoin:
		return "nljoin"
	case *plan.MergeJoin:
		return "mergejoin"
	case *plan.SemiJoin:
		return "semijoin"
	case *plan.Sort:
		return "sort"
	case *plan.Materialize:
		return "materialize"
	case *plan.HashAgg:
		return "hashagg"
	case *plan.Limit:
		return "limit"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// NodeStats are the actuals recorded for one plan operator during one
// query execution, feeding EXPLAIN ANALYZE and the per-query trace.
type NodeStats struct {
	// Node is the plan operator these stats describe.
	Node plan.Node
	// Rows and Bytes count tuples (and their encoded bytes) the operator
	// emitted to its parent.
	Rows  int64
	Bytes float64
	// Loops counts how many times the operator was opened.
	Loops int64
	// StartT and EndT are the virtual times of the first Open and the
	// last Close.
	StartT, EndT float64
	// Notes are free-form operator annotations (spills, batch counts,
	// run counts, merge passes).
	Notes []string
}

// Collector accumulates per-operator actuals for one query. A nil
// Collector is the disabled state: every method no-ops, mirroring the
// paper's statistics-collection flag.
type Collector struct {
	clock *vclock.Clock
	stats map[plan.Node]*NodeStats
	order []*NodeStats
}

// NewCollector returns an empty collector timestamping against clock.
func NewCollector(clock *vclock.Clock) *Collector {
	return &Collector{clock: clock, stats: make(map[plan.Node]*NodeStats)}
}

// Stats returns the stats record for n, creating it on first use.
// Returns nil on a nil collector.
func (c *Collector) Stats(n plan.Node) *NodeStats {
	if c == nil {
		return nil
	}
	st, ok := c.stats[n]
	if !ok {
		st = &NodeStats{Node: n}
		c.stats[n] = st
		c.order = append(c.order, st)
	}
	return st
}

// Get returns the stats record for n, or nil if none was collected.
func (c *Collector) Get(n plan.Node) *NodeStats {
	if c == nil {
		return nil
	}
	return c.stats[n]
}

// Notef appends a formatted annotation to n's record.
func (c *Collector) Notef(n plan.Node, format string, args ...any) {
	if c == nil {
		return
	}
	st := c.Stats(n)
	st.Notes = append(st.Notes, fmt.Sprintf(format, args...))
}

// All returns the collected records in first-touch order.
func (c *Collector) All() []*NodeStats {
	if c == nil {
		return nil
	}
	return c.order
}

// statsIter wraps an operator's iterator with actuals collection: rows
// and bytes out, open/close virtual times, and the engine-wide
// per-operator rows counter. Build inserts it only when collection or
// metrics are enabled, so the disabled path keeps direct iterator calls.
type statsIter struct {
	inner Iterator
	env   *Env
	st    *NodeStats   // nil when per-query collection is off
	rows  *obs.Counter // nil when engine metrics are off
}

func (s *statsIter) Open() error {
	if s.st != nil {
		if s.st.Loops == 0 {
			s.st.StartT = s.env.Clock.Now()
		}
		s.st.Loops++
	}
	return s.inner.Open()
}

func (s *statsIter) Next() (tuple.Tuple, bool, error) {
	t, ok, err := s.inner.Next()
	if ok {
		s.rows.Inc()
		if s.st != nil {
			s.st.Rows++
			s.st.Bytes += float64(t.EncodedSize())
		}
	}
	return t, ok, err
}

func (s *statsIter) Close() error {
	if s.st != nil {
		s.st.EndT = s.env.Clock.Now()
	}
	return s.inner.Close()
}

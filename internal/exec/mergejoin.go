package exec

import (
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/tuple"
)

// mergeJoin joins two inputs sorted on their join keys. It buffers each
// group of equal-keyed right tuples and replays it for every left tuple
// with the same key. Both inputs are dominant inputs of the enclosing
// segment: execution ends as soon as either side is exhausted, which is
// exactly why the paper uses p = max(qA, qB) for this operator.
type mergeJoin struct {
	node     *plan.MergeJoin
	env      *Env
	left     Iterator
	right    Iterator
	predCost float64

	lTuple tuple.Tuple
	rTuple tuple.Tuple // lookahead past the current group
	lOk    bool
	rOk    bool

	group    []tuple.Tuple
	haveKey  bool
	groupKey tuple.Value
	gIdx     int
}

func (m *mergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	var err error
	if m.lTuple, m.lOk, err = m.left.Next(); err != nil {
		return err
	}
	if m.rTuple, m.rOk, err = m.right.Next(); err != nil {
		return err
	}
	return nil
}

func (m *mergeJoin) Next() (tuple.Tuple, bool, error) {
	for {
		// Emit pending (left × group) pairs.
		for m.haveKey && m.lOk && m.gIdx < len(m.group) {
			r := m.group[m.gIdx]
			m.gIdx++
			out := m.lTuple.Concat(r)
			m.env.Clock.ChargeCPU(cpuTuple + m.predCost)
			if m.node.ExtraPred != nil {
				pass, err := expr.EvalBool(m.node.ExtraPred, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}

		if m.haveKey && m.lOk {
			// Current left tuple exhausted the group; advance left and
			// see if it still matches the group key.
			var err error
			if m.lTuple, m.lOk, err = m.left.Next(); err != nil {
				return nil, false, err
			}
			if m.lOk {
				m.env.Clock.ChargeCPU(cpuTuple)
				c, err := m.lTuple[m.node.LeftKey].Compare(m.groupKey)
				if err != nil {
					return nil, false, err
				}
				if c == 0 {
					m.gIdx = 0
					continue
				}
			}
			m.haveKey = false
			m.group = m.group[:0]
			continue
		}

		if !m.lOk || !m.rOk {
			return nil, false, nil
		}

		// Align keys.
		c, err := m.lTuple[m.node.LeftKey].Compare(m.rTuple[m.node.RightKey])
		if err != nil {
			return nil, false, err
		}
		m.env.Clock.ChargeCPU(cpuTuple)
		switch {
		case c < 0:
			if m.lTuple, m.lOk, err = m.left.Next(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if m.rTuple, m.rOk, err = m.right.Next(); err != nil {
				return nil, false, err
			}
		default:
			// Collect the full right group for this key.
			m.groupKey = m.rTuple[m.node.RightKey]
			m.haveKey = true
			m.group = m.group[:0]
			m.gIdx = 0
			for m.rOk {
				cc, err := m.rTuple[m.node.RightKey].Compare(m.groupKey)
				if err != nil {
					return nil, false, err
				}
				if cc != 0 {
					break
				}
				m.group = append(m.group, m.rTuple)
				if m.rTuple, m.rOk, err = m.right.Next(); err != nil {
					return nil, false, err
				}
				m.env.Clock.ChargeCPU(cpuTuple)
			}
		}
	}
}

func (m *mergeJoin) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

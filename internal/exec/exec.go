// Package exec is the Volcano-style query executor. Every operator
// charges the virtual clock for its physical I/O (through the buffer
// pool) and per-tuple CPU work, and reports boundary bytes to the
// progress indicator's WorkReporter exactly where the paper's counting
// rules dictate: base inputs as they are read, segment outputs as the
// blocking operator materializes them, and multi-stage bytes once per
// logical pass.
package exec

import (
	"context"
	"fmt"

	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// CPU work constants, in clock units (one unit ≈ one simple per-tuple
// operation).
const (
	cpuTuple    = 1.0 // streaming a tuple through an operator
	cpuHashOp   = 2.0 // hash insert or probe
	cpuPairBase = 8.0 // nested-loops pair evaluation overhead
)

// Env is the execution context shared by all operators of one query.
type Env struct {
	Pool         *storage.BufferPool
	Clock        *vclock.Clock
	WorkMemPages int
	// Reporter receives boundary-byte events; nil disables statistics
	// collection (the paper's per-plan flag).
	Reporter segment.WorkReporter
	// Decomp supplies segment tags for every boundary node.
	Decomp *segment.Decomposition
	// Yield, when non-nil, is called at safe points (between tuples) so
	// a scheduler can interleave concurrently executing queries on the
	// shared virtual clock.
	Yield func()
	// Ctx, when non-nil, is polled for cancellation at the executor's
	// yield safe points (and at the root tuple loop). When it is
	// canceled, execution unwinds promptly mid-pipeline with a
	// *CanceledError; operators release their resources through the
	// normal error path. Leave nil (or pass a context whose Done channel
	// is nil) to run without cancellation checks.
	Ctx context.Context
	// Met are the engine-wide executor instruments; the zero value is
	// disabled (all increments are nil-safe no-ops).
	Met Metrics
	// Collect accumulates per-operator actuals for EXPLAIN ANALYZE and
	// tracing; nil disables collection.
	Collect *Collector

	// nyield counts safe-point passes so the (comparatively expensive)
	// context poll is amortized over cancelEvery tuples.
	nyield uint

	// temps tracks every temp file created by this query's operators so
	// ReclaimTemps can guarantee cleanup even when an error or panic
	// bypasses the iterator Close chain.
	temps []storage.FileID

	// scans tracks the pinning base-table scanners opened by this
	// query's scan operators so ReleaseScans can drop their buffer-pool
	// pins even when an error or panic bypasses the Close chain.
	scans []*storage.Scanner
}

// newTempFile allocates a per-query scratch heap file, bound to this
// query's clock, and registers it for end-of-query reclamation. All
// operators must create their spill files through this helper, never
// storage.CreateHeapFile directly.
func (e *Env) newTempFile() *storage.HeapFile {
	f := storage.CreateTempHeapFileOn(e.Pool, e.Clock)
	e.temps = append(e.temps, f.ID())
	return f
}

// newBaseScanner opens a pinning scanner over a base-table heap on this
// query's clock and registers it for end-of-query pin release.
func (e *Env) newBaseScanner(hf *storage.HeapFile) *storage.Scanner {
	sc := hf.NewScannerOn(e.Clock)
	e.scans = append(e.scans, sc)
	return sc
}

// ReleaseScans closes every tracked base-table scanner, releasing any
// buffer-pool pins still held. On clean execution the operators' Close
// chain has already done this (Close is idempotent); after an error or
// recovered panic this is the guarantee that the query pins nothing.
// Safe to call multiple times.
func (e *Env) ReleaseScans() {
	for _, sc := range e.scans {
		sc.Close()
	}
	e.scans = nil
}

// ReclaimTemps force-drops any tracked temp files still allocated,
// returning how many were reclaimed. On clean execution (success,
// error, or cancel through the normal unwind) every operator has
// already dropped its files and this is a no-op; after a recovered
// panic it is the guarantee that the query leaked nothing. Safe to call
// multiple times.
func (e *Env) ReclaimTemps() int {
	disk := e.Pool.Disk()
	n := 0
	for _, id := range e.temps {
		if !disk.Exists(id) {
			continue
		}
		if err := e.Pool.RemoveFile(id); err == nil {
			n++
		}
	}
	e.temps = nil
	return n
}

// cancelEvery is how many safe-point passes elapse between context
// polls. Cancellation latency is therefore bounded by cancelEvery
// tuples of work — microseconds of real time — while the per-tuple hot
// path pays only a counter increment and a branch.
const cancelEvery = 64

// CanceledError reports that execution stopped at a safe point because
// Env.Ctx was canceled. It unwraps to the context's cause, so
// errors.Is(err, context.Canceled) (or DeadlineExceeded) holds.
type CanceledError struct{ Cause error }

func (e *CanceledError) Error() string {
	return "exec: query canceled: " + e.Cause.Error()
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// InternalError is a panic recovered at an engine boundary (DB.Exec*,
// the group scheduler, or a progressd worker): an executor or segment
// invariant violation that failed one query instead of the process.
// The engine remains usable; the job transitions to failed.
type InternalError struct {
	// PanicValue is the recovered value.
	PanicValue interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// NewInternalError wraps a recovered panic value and its stack.
func NewInternalError(v interface{}, stack []byte) *InternalError {
	return &InternalError{PanicValue: v, Stack: stack}
}

// Error describes the contained panic.
func (e *InternalError) Error() string {
	return fmt.Sprintf("exec: internal error (recovered panic): %v", e.PanicValue)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As keep working through the boundary.
func (e *InternalError) Unwrap() error {
	if err, ok := e.PanicValue.(error); ok {
		return err
	}
	return nil
}

// yield runs the scheduler yield hook (if any) and polls for
// cancellation. Operators must propagate a non-nil return.
func (e *Env) yield() error {
	if e.Yield != nil {
		e.Yield()
	}
	return e.checkCancel()
}

// checkCancel polls Env.Ctx every cancelEvery calls.
func (e *Env) checkCancel() error {
	if e.Ctx == nil {
		return nil
	}
	e.nyield++
	if e.nyield%cancelEvery != 0 {
		return nil
	}
	select {
	case <-e.Ctx.Done():
		return &CanceledError{Cause: context.Cause(e.Ctx)}
	default:
		return nil
	}
}

func (e *Env) workMemBytes() float64 {
	return float64(e.WorkMemPages) * storage.PageSize
}

func (e *Env) rep() segment.WorkReporter {
	if e.Reporter == nil {
		return nopReporter{}
	}
	return e.Reporter
}

func (e *Env) info(n plan.Node) (segment.NodeInfo, error) {
	info, ok := e.Decomp.Info[n]
	if !ok {
		return segment.NodeInfo{}, fmt.Errorf("exec: node %s has no segment tag", n.Label())
	}
	return info, nil
}

type nopReporter struct{}

func (nopReporter) InputTuple(int, int, int)             {}
func (nopReporter) InputBulk(int, int, int64, float64)   {}
func (nopReporter) InputRepeat(int, int, int64, float64) {}
func (nopReporter) InputDone(int, int)                   {}
func (nopReporter) OutputTuple(int, int)                 {}
func (nopReporter) Extra(int, float64)                   {}
func (nopReporter) SegmentDone(int)                      {}

// Iterator is the executor's pull interface.
type Iterator interface {
	Open() error
	Next() (tuple.Tuple, bool, error)
	Close() error
}

// Build constructs the iterator tree for a physical plan. When per-query
// collection or engine metrics are enabled, every operator is wrapped
// with a statistics iterator recording rows/bytes out, open/close virtual
// times, and per-operator row counters; when both are disabled the bare
// iterators are returned unchanged.
func Build(n plan.Node, env *Env) (Iterator, error) {
	it, err := buildNode(n, env)
	if err != nil {
		return nil, err
	}
	if env.Collect == nil && !env.Met.Enabled() {
		return it, nil
	}
	return &statsIter{
		inner: it,
		env:   env,
		st:    env.Collect.Stats(n),
		rows:  env.Met.RowsOut(opName(n)),
	}, nil
}

// buildNode constructs the bare iterator for one plan node, recursing
// through Build so children pick up stats wrapping.
func buildNode(n plan.Node, env *Env) (Iterator, error) {
	switch node := n.(type) {
	case *plan.SeqScan:
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &seqScan{node: node, env: env, tag: info}, nil
	case *plan.IndexScan:
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &indexScan{node: node, env: env, tag: info}, nil
	case *plan.Filter:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		return &filterIter{node: node, env: env, child: child, predCost: exprCost(node.Pred)}, nil
	case *plan.Project:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		return &projectIter{node: node, env: env, child: child}, nil
	case *plan.HashJoin:
		if node.Grace {
			return buildGraceJoin(node, env)
		}
		build, err := Build(node.Build, env)
		if err != nil {
			return nil, err
		}
		probe, err := Build(node.Probe, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &hashJoin{
			node: node, env: env, tag: info,
			build: build, probe: probe,
			predCost: exprCost(node.ExtraPred),
		}, nil
	case *plan.Partition:
		return nil, fmt.Errorf("exec: Partition outside a Grace hash join")
	case *plan.NLJoin:
		outer, err := Build(node.Outer, env)
		if err != nil {
			return nil, err
		}
		inner, err := Build(node.Inner, env)
		if err != nil {
			return nil, err
		}
		// The inner's boundary tag (scan or materialize) is used to
		// attribute replay passes to the right segment input.
		innerTag, err := env.info(innerBoundary(node.Inner))
		if err != nil {
			return nil, err
		}
		return &nlJoin{
			node: node, env: env,
			outer: outer, inner: inner, innerTag: innerTag,
			predCost: exprCost(node.Pred),
		}, nil
	case *plan.MergeJoin:
		left, err := Build(node.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := Build(node.Right, env)
		if err != nil {
			return nil, err
		}
		return &mergeJoin{
			node: node, env: env, left: left, right: right,
			predCost: exprCost(node.ExtraPred),
		}, nil
	case *plan.Sort:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &sortIter{node: node, env: env, child: child, tag: info}, nil
	case *plan.Materialize:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &materialize{env: env, child: child, tag: info}, nil
	case *plan.HashAgg:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &hashAgg{node: node, env: env, child: child, tag: info}, nil
	case *plan.Limit:
		child, err := Build(node.Child, env)
		if err != nil {
			return nil, err
		}
		return &limitIter{node: node, env: env, child: child}, nil
	case *plan.SemiJoin:
		outer, err := Build(node.Outer, env)
		if err != nil {
			return nil, err
		}
		inner, err := Build(node.Inner, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(node)
		if err != nil {
			return nil, err
		}
		return &semiJoin{
			node: node, env: env, tag: info,
			outer: outer, inner: inner,
			predCost: exprCost(node.ExtraPred),
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

// buildGraceJoin wires the partitioned form: each Partition child becomes
// a partitionIter run at Open, then the join streams batch pairs.
func buildGraceJoin(node *plan.HashJoin, env *Env) (Iterator, error) {
	mk := func(pn plan.Node) (*partitionIter, error) {
		part, ok := pn.(*plan.Partition)
		if !ok {
			return nil, fmt.Errorf("exec: Grace hash join child is %T, want *plan.Partition", pn)
		}
		child, err := Build(part.Child, env)
		if err != nil {
			return nil, err
		}
		info, err := env.info(part)
		if err != nil {
			return nil, err
		}
		return &partitionIter{node: part, env: env, tag: info, child: child}, nil
	}
	buildPart, err := mk(node.Build)
	if err != nil {
		return nil, err
	}
	probePart, err := mk(node.Probe)
	if err != nil {
		return nil, err
	}
	return &graceJoin{
		node: node, env: env,
		buildPart: buildPart, probePart: probePart,
		predCost: exprCost(node.ExtraPred),
	}, nil
}

// innerBoundary finds the node carrying the segment-input tag for an NL
// join's inner subtree: the scan itself, or the Materialize boundary.
func innerBoundary(n plan.Node) plan.Node {
	switch node := n.(type) {
	case *plan.Filter:
		return innerBoundary(node.Child)
	case *plan.Project:
		return innerBoundary(node.Child)
	default:
		return n
	}
}

// Run executes a plan to completion, invoking fn (if non-nil) per result
// tuple, and returns the result cardinality. It fires the final segment's
// completion event.
func Run(env *Env, root plan.Node, fn func(tuple.Tuple) error) (int64, error) {
	it, err := Build(root, env)
	if err != nil {
		return 0, err
	}
	if err := it.Open(); err != nil {
		// A failed Open can leave partially opened children holding temp
		// files (e.g. a sort that spilled runs before its parent join
		// errored); Close is the operators' cleanup path and must run.
		it.Close()
		return 0, err
	}
	var count int64
	for {
		t, ok, err := it.Next()
		if err != nil {
			it.Close()
			return count, err
		}
		if !ok {
			break
		}
		count++
		env.Clock.ChargeCPU(cpuTuple)
		// Root-level cancellation check: covers pipelines whose inner
		// operators stream without reaching a scan-side safe point (e.g.
		// a sort's output phase feeding a merge join).
		if err := env.checkCancel(); err != nil {
			it.Close()
			return count, err
		}
		if fn != nil {
			if err := fn(t); err != nil {
				it.Close()
				return count, err
			}
		}
	}
	if err := it.Close(); err != nil {
		return count, err
	}
	final := env.Decomp.Segments[len(env.Decomp.Segments)-1]
	env.rep().SegmentDone(final.ID)
	return count, nil
}

// exprCost estimates the CPU units needed to evaluate e once: one unit
// per expression node. The interpreter really does walk every node, so
// this keeps virtual CPU time roughly proportional to real work.
func exprCost(e expr.Expr) float64 {
	if e == nil {
		return 0
	}
	switch n := e.(type) {
	case *expr.ColRef, *expr.Const:
		return 1
	case *expr.Cmp:
		return 1 + exprCost(n.L) + exprCost(n.R)
	case *expr.And:
		c := 1.0
		for _, t := range n.Terms {
			c += exprCost(t)
		}
		return c
	case *expr.Func:
		c := 2.0
		for _, a := range n.Args {
			c += exprCost(a)
		}
		return c
	default:
		return 1
	}
}

package storage

import (
	"errors"
	"testing"

	"progressdb/internal/vclock"
)

// stubInjector is a scripted FaultInjector: it fails the first
// transientN targeted accesses transiently, then optionally returns one
// permanent fault, then passes everything through.
type stubInjector struct {
	transientN int // fail this many accesses transiently
	permanent  bool
	calls      int
	latency    float64
}

func (s *stubInjector) BeforePageIO(op FaultOp, class FileClass) (float64, error) {
	s.calls++
	if s.calls <= s.transientN {
		return s.latency, &IOFault{Op: op, Class: class, Seq: int64(s.calls), Permanent: false}
	}
	if s.permanent {
		s.permanent = false
		return s.latency, &IOFault{Op: op, Class: class, Seq: int64(s.calls), Permanent: true}
	}
	return s.latency, nil
}

func writeNPages(t *testing.T, bp *BufferPool, f FileID, n int) {
	t.Helper()
	page := make([]byte, PageSize)
	for i := int32(0); i < int32(n); i++ {
		page[0] = byte(i)
		if err := bp.Put(PageID{File: f, Num: i}, page); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoveFileInvalidatesPool is the regression test for the bug where
// Disk.Remove left the removed file's pages cached: a later eviction of
// such an orphaned dirty page tried to write back into a nonexistent
// file. RemoveFile must drop the frames first.
func TestRemoveFileInvalidatesPool(t *testing.T) {
	bp, _ := testPool(8)
	f := bp.Disk().CreateTemp()
	writeNPages(t, bp, f, 4)

	// Dirty a cached page so a writeback would be attempted.
	page := make([]byte, PageSize)
	page[0] = 0xff
	if err := bp.Put(PageID{File: f, Num: 2}, page); err != nil {
		t.Fatal(err)
	}

	if err := bp.RemoveFile(f); err != nil {
		t.Fatal(err)
	}
	if bp.Disk().Exists(f) {
		t.Fatal("file still exists after RemoveFile")
	}
	if orphans := bp.OrphanedPages(); len(orphans) != 0 {
		t.Fatalf("orphaned pages after RemoveFile: %v", orphans)
	}
	// No orphaned dirty frame may surface later: Flush must be clean.
	if err := bp.Flush(); err != nil {
		t.Fatalf("flush after RemoveFile: %v", err)
	}
}

// TestOrphanedPagesDetection shows what the leak-check API catches: a
// bare Disk.Remove (the old, buggy order) strands cached pages.
func TestOrphanedPagesDetection(t *testing.T) {
	bp, _ := testPool(8)
	f := bp.Disk().CreateTemp()
	writeNPages(t, bp, f, 3)

	if err := bp.Disk().Remove(f); err != nil { // wrong order on purpose
		t.Fatal(err)
	}
	orphans := bp.OrphanedPages()
	if len(orphans) != 3 {
		t.Fatalf("orphans = %v, want 3 pages of file %v", orphans, f)
	}
	for i, pid := range orphans {
		if pid.File != f || pid.Num != int32(i) {
			t.Fatalf("orphans not sorted: %v", orphans)
		}
	}
	// DropFile repairs the pool.
	bp.DropFile(f)
	if orphans := bp.OrphanedPages(); len(orphans) != 0 {
		t.Fatalf("orphans after DropFile: %v", orphans)
	}
}

func TestOpenFilesByClass(t *testing.T) {
	clock := vclock.New(vclock.Costs{SeqPage: 1, RandPage: 1, CPUTuple: 0}, nil)
	d := NewDisk(clock)
	base := d.Create()
	t1 := d.CreateTemp()
	t2 := d.CreateTemp()

	if got := d.OpenFiles(); len(got) != 3 {
		t.Fatalf("OpenFiles = %v", got)
	}
	if got := d.OpenFilesOfClass(ClassTemp); len(got) != 2 || got[0] != t1 || got[1] != t2 {
		t.Fatalf("temp files = %v, want [%v %v]", got, t1, t2)
	}
	if got := d.OpenFilesOfClass(ClassBase); len(got) != 1 || got[0] != base {
		t.Fatalf("base files = %v, want [%v]", got, base)
	}
	if c := d.ClassOf(t1); c != ClassTemp {
		t.Fatalf("ClassOf(temp) = %v", c)
	}
	if err := d.Remove(t1); err != nil {
		t.Fatal(err)
	}
	if got := d.OpenFilesOfClass(ClassTemp); len(got) != 1 || got[0] != t2 {
		t.Fatalf("temp files after remove = %v", got)
	}
	if d.Exists(t1) {
		t.Fatal("removed file still Exists")
	}
}

// TestRetryAbsorbsTransientFaults: a fault that clears within the retry
// budget is invisible to the caller except for the backoff time charged
// to the clock and the retry counters.
func TestRetryAbsorbsTransientFaults(t *testing.T) {
	bp, clock := testPool(4)
	f := bp.Disk().Create()
	writeNPages(t, bp, f, 1)
	bp.Clear() // force the next Get to hit the disk

	inj := &stubInjector{transientN: 2}
	bp.Disk().SetFaultInjector(inj)
	before := clock.Now()
	if _, err := bp.Get(PageID{File: f, Num: 0}); err != nil {
		t.Fatalf("transient faults within budget must be absorbed: %v", err)
	}
	if st := bp.Stats(); st.Retries != 2 || st.RetryGiveups != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 0 giveups", st)
	}
	// Two backoffs: base + 2*base.
	if got := clock.Now() - before; got < 3*retryBackoffBase {
		t.Fatalf("backoff not charged: elapsed %g", got)
	}
}

// TestRetryStopsOnPermanentFault: permanent faults are not retried.
func TestRetryStopsOnPermanentFault(t *testing.T) {
	bp, _ := testPool(4)
	f := bp.Disk().Create()
	writeNPages(t, bp, f, 1)
	bp.Clear()

	bp.Disk().SetFaultInjector(&stubInjector{permanent: true})
	_, err := bp.Get(PageID{File: f, Num: 0})
	var fault *IOFault
	if !errors.As(err, &fault) || fault.Transient() {
		t.Fatalf("err = %v, want permanent *IOFault", err)
	}
	if st := bp.Stats(); st.Retries != 0 {
		t.Fatalf("permanent fault must not be retried: %+v", st)
	}
}

// TestRetryBudgetExhaustion: a fault that never clears fails the access
// after maxIOAttempts tries and counts a giveup.
func TestRetryBudgetExhaustion(t *testing.T) {
	bp, _ := testPool(4)
	f := bp.Disk().Create()
	writeNPages(t, bp, f, 1)
	bp.Clear()

	bp.Disk().SetFaultInjector(&stubInjector{transientN: 1 << 30})
	_, err := bp.Get(PageID{File: f, Num: 0})
	if err == nil {
		t.Fatal("unclearing transient fault must eventually fail")
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted-retry error should unwrap to the transient fault: %v", err)
	}
	if st := bp.Stats(); st.Retries != maxIOAttempts-1 || st.RetryGiveups != 1 {
		t.Fatalf("stats = %+v, want %d retries, 1 giveup", st, maxIOAttempts-1)
	}
}

// TestInjectedLatencyChargesClock: latency-only injection advances the
// virtual clock without failing the access.
func TestInjectedLatencyChargesClock(t *testing.T) {
	bp, clock := testPool(4)
	f := bp.Disk().Create()
	writeNPages(t, bp, f, 1)
	bp.Clear()

	bp.Disk().SetFaultInjector(&stubInjector{latency: 0.5})
	before := clock.Now()
	if _, err := bp.Get(PageID{File: f, Num: 0}); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - before; got < 0.5 {
		t.Fatalf("injected latency not charged: elapsed %g", got)
	}
}

package storage

import (
	"testing"

	"progressdb/internal/obs"
	"progressdb/internal/vclock"
)

// TestBufferPoolEvictionAccounting drives a scripted access pattern
// through a 2-frame pool and asserts that every counter — hits, misses,
// evictions, dirty write-backs — lands exactly where LRU semantics say
// it must, both in the pool's own accounting and in the wired obs
// instruments.
func TestBufferPoolEvictionAccounting(t *testing.T) {
	clock := vclock.New(vclock.Costs{SeqPage: 1, RandPage: 1, CPUTuple: 0}, nil)
	disk := NewDisk(clock)
	pool := NewBufferPool(disk, 2)

	reg := obs.NewRegistry()
	pm := PoolMetrics{
		Hits:            reg.Counter("bufferpool_hits_total", ""),
		Misses:          reg.Counter("bufferpool_misses_total", ""),
		Evictions:       reg.Counter("bufferpool_evictions_total", ""),
		DirtyWritebacks: reg.Counter("bufferpool_dirty_writebacks_total", ""),
	}
	pool.SetMetrics(pm)
	dm := DiskMetrics{
		SeqReads:  reg.Counter("disk_seq_reads_total", ""),
		RandReads: reg.Counter("disk_rand_reads_total", ""),
	}
	disk.SetMetrics(dm)

	f := disk.Create()
	page := make([]byte, PageSize)
	pid := func(n int32) PageID { return PageID{File: f, Num: n} }

	put := func(n int32) {
		t.Helper()
		if err := pool.Put(pid(n), page); err != nil {
			t.Fatal(err)
		}
	}
	get := func(n int32) {
		t.Helper()
		if _, err := pool.Get(pid(n)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(step string, want PoolStats) {
		t.Helper()
		if got := pool.Stats(); got != want {
			t.Fatalf("%s: stats = %+v, want %+v", step, got, want)
		}
	}

	// Fill: Put 0..3 through a 2-frame pool. Puts of uncached pages write
	// through (clean insert), so the two displacements are clean.
	put(0)
	put(1)
	put(2) // evicts 0 (clean)
	put(3) // evicts 1 (clean)
	check("after fill", PoolStats{Evictions: 2})

	get(3) // hit          lru=[3,2]
	get(2) // hit          lru=[2,3]
	get(0) // miss, evicts 3 (clean)      lru=[0,2]
	check("after first reads", PoolStats{Hits: 2, Misses: 1, Evictions: 3})

	put(2) // cached: marks dirty in place lru=[2,0]
	get(1) // miss, evicts 0 (clean)      lru=[1,2]
	get(2) // hit                          lru=[2,1]
	get(1) // hit                          lru=[1,2]
	get(0) // miss, evicts dirty 2 -> write-back   lru=[0,1]
	check("after dirty eviction", PoolStats{Hits: 4, Misses: 3, Evictions: 5, Writebacks: 1})

	// Nothing dirty remains; Flush is a no-op.
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	check("after no-op flush", PoolStats{Hits: 4, Misses: 3, Evictions: 5, Writebacks: 1})

	// Dirty a cached page and flush: one more write-back, no eviction.
	put(1)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	check("after flush", PoolStats{Hits: 4, Misses: 3, Evictions: 5, Writebacks: 2})

	if got := pool.HitRate(); got != 4.0/7.0 {
		t.Fatalf("hit rate = %g, want 4/7", got)
	}

	// The obs instruments must agree exactly with the pool's accounting.
	for name, want := range map[string]int64{
		"bufferpool_hits_total":             4,
		"bufferpool_misses_total":           3,
		"bufferpool_evictions_total":        5,
		"bufferpool_dirty_writebacks_total": 2,
	} {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Fatalf("metric %s = %d, want %d", name, got, want)
		}
	}
	// Physical reads happen only on misses.
	reads := dm.SeqReads.Value() + dm.RandReads.Value()
	if reads != 3 {
		t.Fatalf("physical reads = %d, want 3 (one per miss)", reads)
	}
	if ds := disk.Stats(); ds.Reads() != 3 {
		t.Fatalf("disk stats reads = %d, want 3", ds.Reads())
	}

	// Clear resets per-restart accounting but not the monotonic counters.
	pool.Clear()
	if got := pool.Stats(); got != (PoolStats{}) {
		t.Fatalf("stats after Clear = %+v", got)
	}
	if got := pm.Hits.Value(); got != 4 {
		t.Fatalf("obs counter reset by Clear: %d", got)
	}
}

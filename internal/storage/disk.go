// Package storage implements the simulated storage substrate: a paged
// disk whose I/O is charged to the virtual clock, an LRU buffer pool, and
// tuple-oriented heap files and temp files built on top.
//
// The paper's progress indicator defines its work unit U as "one page of
// bytes processed"; this package is where pages, and the sequential/random
// I/O cost distinction that shapes the execution-speed figures, live.
package storage

import (
	"fmt"

	"progressdb/internal/obs"
	"progressdb/internal/vclock"
)

// PageSize is the size of a disk page in bytes. U in the progress
// indicator is one page of bytes.
const PageSize = 8192

// FileID identifies a file on the simulated disk.
type FileID int32

// PageID identifies one page of one file.
type PageID struct {
	File FileID
	Num  int32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.Num) }

// RID is a record identifier: a page plus a slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// DiskStats counts physical I/Os actually performed (buffer-pool misses
// and write-backs), split by access pattern.
type DiskStats struct {
	SeqReads   int64
	RandReads  int64
	SeqWrites  int64
	RandWrites int64
}

// Reads returns total physical page reads.
func (s DiskStats) Reads() int64 { return s.SeqReads + s.RandReads }

// Writes returns total physical page writes.
func (s DiskStats) Writes() int64 { return s.SeqWrites + s.RandWrites }

// file is one simulated on-disk file: a growable array of pages.
type file struct {
	pages    [][]byte
	lastRead int32 // last physically read page number, for sequential detection
	lastWrit int32
}

// Disk simulates a disk drive. Every physical page access charges the
// virtual clock: sequential accesses (page N+1 after page N of the same
// file) at the sequential rate, others at the random rate.
type Disk struct {
	clock *vclock.Clock
	files map[FileID]*file
	next  FileID
	stats DiskStats
	met   DiskMetrics
}

// DiskMetrics are the disk's engine-wide instruments (physical page I/O
// by access pattern). The zero value is the disabled state; increments
// are nil-safe.
type DiskMetrics struct {
	SeqReads, RandReads   *obs.Counter
	SeqWrites, RandWrites *obs.Counter
}

// SetMetrics installs observability instruments; pass the zero value to
// disable.
func (d *Disk) SetMetrics(m DiskMetrics) { d.met = m }

// NewDisk creates an empty simulated disk charging I/O to clock.
func NewDisk(clock *vclock.Clock) *Disk {
	return &Disk{clock: clock, files: make(map[FileID]*file)}
}

// Clock returns the clock this disk charges.
func (d *Disk) Clock() *vclock.Clock { return d.clock }

// Stats returns a copy of the physical I/O counters.
func (d *Disk) Stats() DiskStats { return d.stats }

// Create allocates a new empty file.
func (d *Disk) Create() FileID {
	id := d.next
	d.next++
	d.files[id] = &file{lastRead: -2, lastWrit: -2}
	return id
}

// Remove deletes a file and frees its pages. Removing a nonexistent file
// is an error (it indicates an executor bug).
func (d *Disk) Remove(id FileID) error {
	if _, ok := d.files[id]; !ok {
		return fmt.Errorf("storage: remove of unknown file %d", id)
	}
	delete(d.files, id)
	return nil
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(id FileID) (int, error) {
	f, ok := d.files[id]
	if !ok {
		return 0, fmt.Errorf("storage: unknown file %d", id)
	}
	return len(f.pages), nil
}

// readPage performs a physical read, charging the clock.
func (d *Disk) readPage(pid PageID) ([]byte, error) {
	f, ok := d.files[pid.File]
	if !ok {
		return nil, fmt.Errorf("storage: read from unknown file %d", pid.File)
	}
	if int(pid.Num) >= len(f.pages) || pid.Num < 0 {
		return nil, fmt.Errorf("storage: read past EOF: page %v of %d", pid, len(f.pages))
	}
	if pid.Num == f.lastRead+1 {
		d.clock.ChargeSeqIO(1)
		d.stats.SeqReads++
		d.met.SeqReads.Inc()
	} else {
		d.clock.ChargeRandIO(1)
		d.stats.RandReads++
		d.met.RandReads.Inc()
	}
	f.lastRead = pid.Num
	return f.pages[pid.Num], nil
}

// writePage performs a physical write, charging the clock. Writing at
// page == NumPages extends the file.
func (d *Disk) writePage(pid PageID, data []byte) error {
	f, ok := d.files[pid.File]
	if !ok {
		return fmt.Errorf("storage: write to unknown file %d", pid.File)
	}
	if len(data) != PageSize {
		return fmt.Errorf("storage: write of %d bytes, want %d", len(data), PageSize)
	}
	switch {
	case int(pid.Num) < len(f.pages):
		// Overwrite in place.
	case int(pid.Num) == len(f.pages):
		f.pages = append(f.pages, nil)
	default:
		return fmt.Errorf("storage: write creates hole: page %v of %d", pid, len(f.pages))
	}
	if pid.Num == f.lastWrit+1 {
		d.clock.ChargeSeqIO(1)
		d.stats.SeqWrites++
		d.met.SeqWrites.Inc()
	} else {
		d.clock.ChargeRandIO(1)
		d.stats.RandWrites++
		d.met.RandWrites.Inc()
	}
	f.lastWrit = pid.Num
	f.pages[pid.Num] = data
	return nil
}

// Package storage implements the simulated storage substrate: a paged
// disk whose I/O is charged to the virtual clock, an LRU buffer pool, and
// tuple-oriented heap files and temp files built on top.
//
// The paper's progress indicator defines its work unit U as "one page of
// bytes processed"; this package is where pages, and the sequential/random
// I/O cost distinction that shapes the execution-speed figures, live.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"progressdb/internal/obs"
	"progressdb/internal/vclock"
)

// PageSize is the size of a disk page in bytes. U in the progress
// indicator is one page of bytes.
const PageSize = 8192

// FileID identifies a file on the simulated disk.
type FileID int32

// FileClass distinguishes long-lived files (base relations, indexes,
// logs) from per-query scratch files (spill partitions, sort runs).
// Fault injection targets classes independently, and the leak checker's
// invariant is that no ClassTemp file survives a query — success, error,
// cancel, or timeout alike.
type FileClass int

// File classes.
const (
	// ClassBase marks durable files: table heaps, indexes, the txn log.
	ClassBase FileClass = iota
	// ClassTemp marks per-query scratch files that must be removed on
	// every exit path.
	ClassTemp
)

// String returns "base" or "temp".
func (c FileClass) String() string {
	if c == ClassTemp {
		return "temp"
	}
	return "base"
}

// FaultOp is the access direction presented to a FaultInjector.
type FaultOp int

// Fault operations.
const (
	// OpRead is a physical page read.
	OpRead FaultOp = iota
	// OpWrite is a physical page write.
	OpWrite
)

// String returns "read" or "write".
func (o FaultOp) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// FaultInjector is consulted before every physical page access. It may
// stretch the access (latency, in virtual seconds, charged to the
// clock), fail it (the returned error aborts the access before any
// state changes), or panic (simulating an executor crash that the
// engine's panic boundary must contain). Implementations live in
// internal/faultinject; production disks carry a nil injector and pay
// only a nil check per physical I/O.
type FaultInjector interface {
	BeforePageIO(op FaultOp, class FileClass) (latencySeconds float64, err error)
}

// IOFault is an injected I/O error. Transient faults may succeed when
// the operation is retried (the buffer pool's bounded retry loop);
// permanent faults fail every attempt.
type IOFault struct {
	// Op and Class identify the faulted access.
	Op    FaultOp
	Class FileClass
	// Seq is the 1-based ordinal of this fault among all injected
	// faults.
	Seq int64
	// Permanent marks faults that retrying cannot clear.
	Permanent bool
}

// Error describes the fault.
func (f *IOFault) Error() string {
	kind := "transient"
	if f.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("storage: injected %s %s fault #%d (%s file)", kind, f.Op, f.Seq, f.Class)
}

// Transient reports whether a retry may succeed.
func (f *IOFault) Transient() bool { return !f.Permanent }

// transienter lets retry loops classify errors without knowing their
// concrete type.
type transienter interface{ Transient() bool }

// IsTransient reports whether err (or anything it wraps) is a transient
// I/O fault worth retrying.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// PageID identifies one page of one file.
type PageID struct {
	File FileID
	Num  int32
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.File, p.Num) }

// RID is a record identifier: a page plus a slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// DiskStats counts physical I/Os actually performed (buffer-pool misses
// and write-backs), split by access pattern.
type DiskStats struct {
	SeqReads   int64
	RandReads  int64
	SeqWrites  int64
	RandWrites int64
}

// Reads returns total physical page reads.
func (s DiskStats) Reads() int64 { return s.SeqReads + s.RandReads }

// Writes returns total physical page writes.
func (s DiskStats) Writes() int64 { return s.SeqWrites + s.RandWrites }

// file is one simulated on-disk file: a growable array of pages.
type file struct {
	pages    [][]byte
	class    FileClass
	lastRead int32 // last physically read page number, for sequential detection
	lastWrit int32
}

// Disk simulates a disk drive. Every physical page access charges a
// virtual clock: sequential accesses (page N+1 after page N of the same
// file) at the sequential rate, others at the random rate.
//
// Disk is safe for concurrent use: a single mutex serializes the file
// table and every physical access, modeling the drive as the serial
// resource it is. Each access charges the clock passed in by the caller
// (the per-worker query clock, or the disk's base clock via the bound
// convenience APIs).
type Disk struct {
	clock *vclock.Clock // base clock for the bound single-threaded API

	// Page access charges the virtual clock while holding mu so the
	// (seq-vs-rand, fault-injection, stats) decision and the charge are
	// one atomic step; the clock's synchronous tickers look like
	// callbacks under lock, but nothing inside waits or does real I/O.
	//lint:lockcoarse simulated page I/O and its clock charge are one atomic step; tickers are synchronous compute
	mu    sync.Mutex // guards files, next, stats, met, inj
	files map[FileID]*file
	next  FileID
	stats DiskStats
	met   DiskMetrics
	inj   FaultInjector
}

// DiskMetrics are the disk's engine-wide instruments (physical page I/O
// by access pattern). The zero value is the disabled state; increments
// are nil-safe.
type DiskMetrics struct {
	SeqReads, RandReads   *obs.Counter
	SeqWrites, RandWrites *obs.Counter
}

// SetMetrics installs observability instruments; pass the zero value to
// disable.
func (d *Disk) SetMetrics(m DiskMetrics) {
	d.mu.Lock()
	d.met = m
	d.mu.Unlock()
}

// SetFaultInjector installs (or, with nil, removes) the fault injector
// consulted before every physical page access.
func (d *Disk) SetFaultInjector(inj FaultInjector) {
	d.mu.Lock()
	d.inj = inj
	d.mu.Unlock()
}

// injectFault runs the installed injector for one access of class fc,
// charging any injected latency to clk before returning the injected
// error (nil when no fault fires). Called with d.mu held.
func (d *Disk) injectFault(clk *vclock.Clock, op FaultOp, fc FileClass) error {
	if d.inj == nil {
		return nil
	}
	lat, err := d.inj.BeforePageIO(op, fc)
	if lat > 0 {
		clk.Idle(lat)
	}
	return err
}

// NewDisk creates an empty simulated disk charging I/O to clock.
func NewDisk(clock *vclock.Clock) *Disk {
	return &Disk{clock: clock, files: make(map[FileID]*file)}
}

// Clock returns the base clock the bound (single-threaded) API charges.
func (d *Disk) Clock() *vclock.Clock { return d.clock }

// Stats returns a copy of the physical I/O counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	return s
}

// Create allocates a new empty ClassBase file.
func (d *Disk) Create() FileID { return d.CreateClass(ClassBase) }

// CreateTemp allocates a new empty ClassTemp (per-query scratch) file.
func (d *Disk) CreateTemp() FileID { return d.CreateClass(ClassTemp) }

// CreateClass allocates a new empty file of the given class. FileIDs are
// never reused, so a stale reference to a removed file can only miss —
// it can never alias a newer file.
func (d *Disk) CreateClass(class FileClass) FileID {
	d.mu.Lock()
	id := d.next
	d.next++
	d.files[id] = &file{class: class, lastRead: -2, lastWrit: -2}
	d.mu.Unlock()
	return id
}

// Remove deletes a file and frees its pages. Removing a nonexistent file
// is an error (it indicates an executor bug). Callers that may hold the
// file's pages in a buffer pool must invalidate them first (see
// BufferPool.RemoveFile), or a later eviction will try to write back an
// orphaned dirty page.
func (d *Disk) Remove(id FileID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[id]; !ok {
		return fmt.Errorf("storage: remove of unknown file %d", id)
	}
	delete(d.files, id)
	return nil
}

// Exists reports whether the file is currently allocated.
func (d *Disk) Exists(id FileID) bool {
	d.mu.Lock()
	_, ok := d.files[id]
	d.mu.Unlock()
	return ok
}

// ClassOf returns the file's class (ClassBase for unknown files).
func (d *Disk) ClassOf(id FileID) FileClass {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[id]; ok {
		return f.class
	}
	return ClassBase
}

// OpenFiles returns the ids of all currently allocated files, sorted.
// This is the leak-check API: after a query finishes — successfully or
// not — OpenFiles(ClassTemp) must be empty.
func (d *Disk) OpenFiles() []FileID {
	d.mu.Lock()
	ids := make([]FileID, 0, len(d.files))
	for id := range d.files {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OpenFilesOfClass returns the sorted ids of allocated files of one
// class.
func (d *Disk) OpenFilesOfClass(class FileClass) []FileID {
	d.mu.Lock()
	var ids []FileID
	for id, f := range d.files {
		if f.class == class {
			ids = append(ids, id)
		}
	}
	d.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(id FileID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[id]
	if !ok {
		return 0, fmt.Errorf("storage: unknown file %d", id)
	}
	return len(f.pages), nil
}

// readPage performs a physical read, charging clk. The whole access —
// fault injection, clock charge, sequential detection — happens under
// d.mu, so concurrent accesses see a consistent head position. The
// returned slice is the on-disk page; pages are replaced, never mutated
// in place, so reading it after d.mu is released is safe.
func (d *Disk) readPage(clk *vclock.Clock, pid PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[pid.File]
	if !ok {
		return nil, fmt.Errorf("storage: read from unknown file %d", pid.File)
	}
	if int(pid.Num) >= len(f.pages) || pid.Num < 0 {
		return nil, fmt.Errorf("storage: read past EOF: page %v of %d", pid, len(f.pages))
	}
	if err := d.injectFault(clk, OpRead, f.class); err != nil {
		return nil, fmt.Errorf("storage: reading page %v: %w", pid, err)
	}
	if pid.Num == f.lastRead+1 {
		clk.ChargeSeqIO(1)
		d.stats.SeqReads++
		d.met.SeqReads.Inc()
	} else {
		clk.ChargeRandIO(1)
		d.stats.RandReads++
		d.met.RandReads.Inc()
	}
	f.lastRead = pid.Num
	return f.pages[pid.Num], nil
}

// writePage performs a physical write, charging clk. Writing at
// page == NumPages extends the file. The page slice is stored as given
// and must not be mutated by the caller afterward (the buffer pool's
// copy-on-write discipline guarantees this).
func (d *Disk) writePage(clk *vclock.Clock, pid PageID, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[pid.File]
	if !ok {
		return fmt.Errorf("storage: write to unknown file %d", pid.File)
	}
	if len(data) != PageSize {
		return fmt.Errorf("storage: write of %d bytes, want %d", len(data), PageSize)
	}
	if err := d.injectFault(clk, OpWrite, f.class); err != nil {
		return fmt.Errorf("storage: writing page %v: %w", pid, err)
	}
	switch {
	case int(pid.Num) < len(f.pages):
		// Overwrite in place.
	case int(pid.Num) == len(f.pages):
		f.pages = append(f.pages, nil)
	default:
		return fmt.Errorf("storage: write creates hole: page %v of %d", pid, len(f.pages))
	}
	if pid.Num == f.lastWrit+1 {
		clk.ChargeSeqIO(1)
		d.stats.SeqWrites++
		d.met.SeqWrites.Inc()
	} else {
		clk.ChargeRandIO(1)
		d.stats.RandWrites++
		d.met.RandWrites.Inc()
	}
	f.lastWrit = pid.Num
	f.pages[pid.Num] = data
	return nil
}

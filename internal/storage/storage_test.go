package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"progressdb/internal/vclock"
)

func testPool(capacity int) (*BufferPool, *vclock.Clock) {
	clock := vclock.New(vclock.Costs{SeqPage: 1, RandPage: 10, CPUTuple: 0}, nil)
	disk := NewDisk(clock)
	return NewBufferPool(disk, capacity), clock
}

func TestDiskReadWriteSequentialCosts(t *testing.T) {
	clock := vclock.New(vclock.Costs{SeqPage: 1, RandPage: 10, CPUTuple: 0}, nil)
	d := NewDisk(clock)
	f := d.Create()
	page := make([]byte, PageSize)

	// Appending pages 0,1,2: page 0 is "random" (no predecessor), 1 and 2 sequential.
	for i := int32(0); i < 3; i++ {
		if err := d.writePage(d.Clock(), PageID{File: f, Num: i}, page); err != nil {
			t.Fatal(err)
		}
	}
	if got := clock.Now(); got != 12 {
		t.Fatalf("3 appends cost %g, want 12 (10 rand + 2 seq)", got)
	}
	st := d.Stats()
	if st.SeqWrites != 2 || st.RandWrites != 1 {
		t.Fatalf("write stats = %+v", st)
	}

	// Sequential read of 0,1,2 then re-read of 0 (random).
	before := clock.Now()
	for i := int32(0); i < 3; i++ {
		if _, err := d.readPage(d.Clock(), PageID{File: f, Num: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.readPage(d.Clock(), PageID{File: f, Num: 0}); err != nil {
		t.Fatal(err)
	}
	// read 0: rand(10); 1,2: seq(2); reread 0: rand(10)
	if got := clock.Now() - before; got != 22 {
		t.Fatalf("reads cost %g, want 22", got)
	}
}

func TestDiskErrors(t *testing.T) {
	_, clock := testPool(4)
	d := NewDisk(clock)
	f := d.Create()
	if _, err := d.readPage(d.Clock(), PageID{File: f, Num: 0}); err == nil {
		t.Fatal("read past EOF must fail")
	}
	if err := d.writePage(d.Clock(), PageID{File: f, Num: 5}, make([]byte, PageSize)); err == nil {
		t.Fatal("write creating a hole must fail")
	}
	if err := d.writePage(d.Clock(), PageID{File: f, Num: 0}, make([]byte, 10)); err == nil {
		t.Fatal("short write must fail")
	}
	if _, err := d.readPage(d.Clock(), PageID{File: 99, Num: 0}); err == nil {
		t.Fatal("read of unknown file must fail")
	}
	if err := d.Remove(f); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(f); err == nil {
		t.Fatal("double remove must fail")
	}
}

func TestBufferPoolHitAvoidsIO(t *testing.T) {
	pool, clock := testPool(4)
	f := pool.Disk().Create()
	page := make([]byte, PageSize)
	page[0] = 42
	pid := PageID{File: f, Num: 0}
	if err := pool.Put(pid, page); err != nil {
		t.Fatal(err)
	}
	costAfterWrite := clock.Now()
	for i := 0; i < 10; i++ {
		got, err := pool.Get(pid)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 42 {
			t.Fatal("wrong page data")
		}
	}
	if clock.Now() != costAfterWrite {
		t.Fatalf("cached reads must be free; cost grew by %g", clock.Now()-costAfterWrite)
	}
	if pool.HitRate() != 1.0 {
		t.Fatalf("hit rate = %g, want 1", pool.HitRate())
	}
}

func TestBufferPoolEvictionChargesIO(t *testing.T) {
	pool, clock := testPool(2)
	f := pool.Disk().Create()
	page := make([]byte, PageSize)
	for i := int32(0); i < 3; i++ {
		if err := pool.Put(PageID{File: f, Num: i}, page); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 was evicted clean (Put writes through); re-reading it is a miss.
	before := clock.Now()
	if _, err := pool.Get(PageID{File: f, Num: 0}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == before {
		t.Fatal("miss after eviction must charge I/O")
	}
}

func TestBufferPoolDirtyEvictionWritesBack(t *testing.T) {
	pool, _ := testPool(2)
	f := pool.Disk().Create()
	blank := make([]byte, PageSize)
	// Establish pages 0 and 1 on disk and in pool.
	pool.Put(PageID{File: f, Num: 0}, blank)
	pool.Put(PageID{File: f, Num: 1}, blank)
	// Dirty page 0 in place.
	mod := make([]byte, PageSize)
	mod[7] = 9
	if err := pool.Put(PageID{File: f, Num: 0}, mod); err != nil {
		t.Fatal(err)
	}
	// Force eviction of page 1 then page 0 by touching two new pages.
	pool.Put(PageID{File: f, Num: 2}, blank)
	pool.Put(PageID{File: f, Num: 3}, blank)
	pool.Clear()
	got, err := pool.Get(PageID{File: f, Num: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 9 {
		t.Fatal("dirty eviction lost the write")
	}
}

func TestBufferPoolFlushAndClear(t *testing.T) {
	pool, _ := testPool(8)
	f := pool.Disk().Create()
	blank := make([]byte, PageSize)
	pool.Put(PageID{File: f, Num: 0}, blank)
	mod := make([]byte, PageSize)
	mod[0] = 1
	pool.Put(PageID{File: f, Num: 0}, mod) // cached dirty
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	pool.Clear()
	got, err := pool.Get(PageID{File: f, Num: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("flush did not persist dirty page")
	}
	if pool.HitRate() == 1 {
		t.Fatal("clear must reset hit statistics")
	}
}

func TestHeapFileAppendScan(t *testing.T) {
	pool, _ := testPool(64)
	hf := CreateHeapFile(pool)
	var want [][]byte
	for i := 0; i < 5000; i++ {
		rec := []byte(fmt.Sprintf("record-%06d-%s", i, bytes.Repeat([]byte{'x'}, i%200)))
		want = append(want, rec)
		if _, err := hf.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := hf.Sync(); err != nil {
		t.Fatal(err)
	}
	if hf.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", hf.Len())
	}
	sc := hf.NewScanner()
	i := 0
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if i != 5000 {
		t.Fatalf("scanned %d records, want 5000", i)
	}
}

func TestHeapFileFetchByRID(t *testing.T) {
	pool, _ := testPool(64)
	hf := CreateHeapFile(pool)
	rids := make([]RID, 0, 1000)
	for i := 0; i < 1000; i++ {
		rid, err := hf.Append([]byte(fmt.Sprintf("v%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	hf.Sync()
	r := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		i := r.Intn(1000)
		rec, err := hf.Fetch(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("fetch %v = %q", rids[i], rec)
		}
	}
	if _, err := hf.Fetch(RID{Page: rids[0].Page, Slot: 60000}); err == nil {
		t.Fatal("fetch of bad slot must fail")
	}
}

func TestHeapFileOversizeRecord(t *testing.T) {
	pool, _ := testPool(4)
	hf := CreateHeapFile(pool)
	if _, err := hf.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversize record must fail")
	}
	if _, err := hf.Append(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size record must fit: %v", err)
	}
}

func TestHeapFileDrop(t *testing.T) {
	pool, _ := testPool(4)
	hf := CreateHeapFile(pool)
	hf.Append([]byte("x"))
	hf.Sync()
	if err := hf.Drop(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Disk().NumPages(hf.ID()); err == nil {
		t.Fatal("dropped file must be gone")
	}
}

func TestOpenHeapFile(t *testing.T) {
	pool, _ := testPool(64)
	hf := CreateHeapFile(pool)
	for i := 0; i < 100; i++ {
		hf.Append([]byte(fmt.Sprintf("row%d", i)))
	}
	hf.Sync()
	re, err := OpenHeapFile(pool, hf.ID())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 100 {
		t.Fatalf("reopened Len = %d, want 100", re.Len())
	}
	sc := re.NewScanner()
	n := 0
	for {
		_, _, ok := sc.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("reopened scan saw %d", n)
	}
}

// Property: for any batch of records, append-then-scan returns exactly the
// same records in order, regardless of record sizes and pool capacity.
func TestPropertyHeapFileRoundTrip(t *testing.T) {
	f := func(sizes []uint16, cap8 uint8) bool {
		pool, _ := testPool(int(cap8%16) + 1)
		hf := CreateHeapFile(pool)
		var want [][]byte
		for i, sz := range sizes {
			if len(want) >= 300 {
				break
			}
			rec := bytes.Repeat([]byte{byte(i)}, int(sz)%1000+1)
			want = append(want, rec)
			if _, err := hf.Append(rec); err != nil {
				return false
			}
		}
		if err := hf.Sync(); err != nil {
			return false
		}
		sc := hf.NewScanner()
		i := 0
		for {
			rec, _, ok := sc.Next()
			if !ok {
				break
			}
			if i >= len(want) || !bytes.Equal(rec, want[i]) {
				return false
			}
			i++
		}
		return sc.Err() == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPageIDString(t *testing.T) {
	if got := (PageID{File: 3, Num: 17}).String(); got != "3:17" {
		t.Fatalf("PageID.String = %q", got)
	}
}

func TestHeapFileUpdateAt(t *testing.T) {
	pool, _ := testPool(16)
	hf := CreateHeapFile(pool)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := hf.Append([]byte(fmt.Sprintf("value-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	hf.Sync()
	if err := hf.UpdateAt(rids[42], []byte("VALUE-042")); err != nil {
		t.Fatal(err)
	}
	rec, err := hf.Fetch(rids[42])
	if err != nil || string(rec) != "VALUE-042" {
		t.Fatalf("after update: %q %v", rec, err)
	}
	// Neighbours untouched.
	rec, _ = hf.Fetch(rids[41])
	if string(rec) != "value-041" {
		t.Fatalf("neighbour corrupted: %q", rec)
	}
	// Length change rejected.
	if err := hf.UpdateAt(rids[42], []byte("short")); err == nil {
		t.Fatal("length-changing update must fail")
	}
	// Bad slot rejected.
	if err := hf.UpdateAt(RID{Page: rids[0].Page, Slot: 9999}, []byte("VALUE-042")); err == nil {
		t.Fatal("bad slot must fail")
	}
}

func TestAccessorsAndCounters(t *testing.T) {
	pool, clock := testPool(4)
	_ = clock
	d := pool.Disk()
	if pool.Capacity() != 4 {
		t.Fatalf("capacity = %d", pool.Capacity())
	}
	if d.Clock() == nil {
		t.Fatal("disk clock accessor")
	}
	f := d.Create()
	page := make([]byte, PageSize)
	for i := int32(0); i < 3; i++ {
		if err := d.writePage(d.Clock(), PageID{File: f, Num: i}, page); err != nil {
			t.Fatal(err)
		}
	}
	d.readPage(d.Clock(), PageID{File: f, Num: 0})
	st := d.Stats()
	if st.Writes() != 3 || st.Reads() != 1 {
		t.Fatalf("stats: %+v", st)
	}
	hf := CreateHeapFile(pool)
	if hf.NumPages() != 0 {
		t.Fatalf("empty heap NumPages = %d", hf.NumPages())
	}
	hf.Append([]byte("x"))
	if hf.NumPages() != 1 { // partially filled append page counts
		t.Fatalf("NumPages = %d", hf.NumPages())
	}
	hf.Sync()
	if hf.NumPages() != 1 {
		t.Fatalf("NumPages after sync = %d", hf.NumPages())
	}
}

func TestBufferPoolCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity pool must panic")
		}
	}()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	NewBufferPool(NewDisk(clock), 0)
}

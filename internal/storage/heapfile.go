package storage

import (
	"encoding/binary"
	"fmt"

	"progressdb/internal/vclock"
)

// Heap-file page layout:
//
//	[0:2]  uint16 tuple count
//	[2:4]  uint16 end of used space
//	[4:]   records, back to back: uint16 length + payload
//
// Records are addressed by ordinal slot within the page; pages never
// contain holes (this engine does not delete individual tuples, matching
// the read-only workloads of the paper's evaluation).
const pageHeaderSize = 4

// recordOverhead is the per-record length prefix.
const recordOverhead = 2

// MaxRecordSize is the largest payload that fits in one page.
const MaxRecordSize = PageSize - pageHeaderSize - recordOverhead

// HeapFile stores variable-length records in pages, accessed through the
// buffer pool. It serves both base relations and the engine's temp files
// (sort runs, hash-join partitions).
//
// A HeapFile is bound to a clock at creation: base files to the disk's
// base clock (DDL and loads are single-threaded by contract), temp files
// created with CreateTempHeapFileOn to the owning query's worker clock,
// so every append, sync, and scan of per-query scratch data charges that
// query. One HeapFile value must not be used from multiple goroutines;
// concurrent queries reading one base table each wrap its id in their
// own scanner via NewScannerOn.
type HeapFile struct {
	pool  *BufferPool
	id    FileID
	clock *vclock.Clock

	// Append state: the page being filled, not yet written.
	cur      []byte
	curCount uint16
	curUsed  uint16
	curPage  int32
	nrecords int64
}

// CreateHeapFile allocates a new empty ClassBase heap file on the
// pool's disk (table heaps, the txn log — files that outlive queries).
func CreateHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, id: pool.Disk().Create(), clock: pool.Disk().Clock(), curPage: -1}
}

// CreateTempHeapFile allocates a new empty ClassTemp heap file (spill
// partitions, sort runs) charging the disk's base clock. Temp files must
// be Dropped on every query exit path; Disk.OpenFilesOfClass(ClassTemp)
// is the leak check.
func CreateTempHeapFile(pool *BufferPool) *HeapFile {
	return CreateTempHeapFileOn(pool, pool.Disk().Clock())
}

// CreateTempHeapFileOn allocates a new empty ClassTemp heap file bound
// to the given worker clock: all I/O through the returned HeapFile —
// appends, Sync, scans — charges that clock, so a query's spill traffic
// lands on the query's own timeline.
func CreateTempHeapFileOn(pool *BufferPool, clk *vclock.Clock) *HeapFile {
	return &HeapFile{pool: pool, id: pool.Disk().CreateTemp(), clock: clk, curPage: -1}
}

// OpenHeapFile reopens an existing file for scanning, bound to the
// disk's base clock. Appending to a reopened file is not supported.
func OpenHeapFile(pool *BufferPool, id FileID) (*HeapFile, error) {
	n, err := pool.Disk().NumPages(id)
	if err != nil {
		return nil, err
	}
	hf := &HeapFile{pool: pool, id: id, clock: pool.Disk().Clock(), curPage: -1}
	// Recount records for Len; cheap because it reads headers via the pool.
	for p := 0; p < n; p++ {
		page, err := pool.Get(PageID{File: id, Num: int32(p)})
		if err != nil {
			return nil, err
		}
		hf.nrecords += int64(binary.LittleEndian.Uint16(page[0:2]))
	}
	return hf, nil
}

// ID returns the underlying file id.
func (hf *HeapFile) ID() FileID { return hf.id }

// Len returns the number of records appended so far.
func (hf *HeapFile) Len() int64 { return hf.nrecords }

// NumPages returns the number of pages, counting the partially filled
// append page.
func (hf *HeapFile) NumPages() int {
	n, err := hf.pool.Disk().NumPages(hf.id)
	if err != nil {
		return 0
	}
	if hf.cur != nil {
		n++
	}
	return n
}

// Append adds a record and returns its RID.
func (hf *HeapFile) Append(rec []byte) (RID, error) {
	if len(rec) > MaxRecordSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	need := uint16(len(rec) + recordOverhead)
	if hf.cur == nil {
		hf.startPage()
	}
	if PageSize-int(hf.curUsed) < int(need) {
		if err := hf.flushCur(); err != nil {
			return RID{}, err
		}
		hf.startPage()
	}
	binary.LittleEndian.PutUint16(hf.cur[hf.curUsed:], uint16(len(rec)))
	copy(hf.cur[hf.curUsed+recordOverhead:], rec)
	rid := RID{Page: PageID{File: hf.id, Num: hf.curPage}, Slot: hf.curCount}
	hf.curUsed += need
	hf.curCount++
	hf.nrecords++
	return rid, nil
}

func (hf *HeapFile) startPage() {
	hf.cur = make([]byte, PageSize)
	hf.curCount = 0
	hf.curUsed = pageHeaderSize
	n, _ := hf.pool.Disk().NumPages(hf.id)
	hf.curPage = int32(n)
}

func (hf *HeapFile) flushCur() error {
	if hf.cur == nil {
		return nil
	}
	binary.LittleEndian.PutUint16(hf.cur[0:2], hf.curCount)
	binary.LittleEndian.PutUint16(hf.cur[2:4], hf.curUsed)
	err := hf.pool.PutOn(hf.clock, PageID{File: hf.id, Num: hf.curPage}, hf.cur)
	hf.cur = nil
	return err
}

// Sync flushes the partially filled append page so all records are
// readable. Call once after loading; further appends start a new page.
func (hf *HeapFile) Sync() error { return hf.flushCur() }

// Drop removes the file from disk and the buffer pool (frames first, so
// no orphaned dirty page can be written back later). Dropping twice is
// an error, matching Disk.Remove.
func (hf *HeapFile) Drop() error {
	hf.cur = nil
	return hf.pool.RemoveFile(hf.id)
}

// Fetch returns the record stored at rid (a copy), charging the file's
// bound clock.
func (hf *HeapFile) Fetch(rid RID) ([]byte, error) {
	return hf.FetchOn(hf.clock, rid)
}

// FetchOn is Fetch charging the given worker clock.
func (hf *HeapFile) FetchOn(clk *vclock.Clock, rid RID) ([]byte, error) {
	page, err := hf.pool.GetOn(clk, rid.Page)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint16(page[0:2])
	if rid.Slot >= count {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", rid.Slot, count)
	}
	off := pageHeaderSize
	for s := uint16(0); ; s++ {
		l := int(binary.LittleEndian.Uint16(page[off:]))
		if s == rid.Slot {
			rec := make([]byte, l)
			copy(rec, page[off+recordOverhead:off+recordOverhead+l])
			return rec, nil
		}
		off += recordOverhead + l
	}
}

// UpdateAt overwrites the record at rid in place. The new record must
// have exactly the original's length (fixed-width updates, e.g. numeric
// fields, satisfy this; the transaction layer enforces it).
func (hf *HeapFile) UpdateAt(rid RID, rec []byte) error {
	page, err := hf.pool.GetOn(hf.clock, rid.Page)
	if err != nil {
		return err
	}
	count := binary.LittleEndian.Uint16(page[0:2])
	if rid.Slot >= count {
		return fmt.Errorf("storage: update of slot %d out of range (page has %d)", rid.Slot, count)
	}
	buf := make([]byte, PageSize)
	copy(buf, page)
	off := pageHeaderSize
	for s := uint16(0); ; s++ {
		l := int(binary.LittleEndian.Uint16(buf[off:]))
		if s == rid.Slot {
			if len(rec) != l {
				return fmt.Errorf("storage: update changes record length (%d -> %d)", l, len(rec))
			}
			copy(buf[off+recordOverhead:], rec)
			return hf.pool.PutOn(hf.clock, rid.Page, buf)
		}
		off += recordOverhead + l
	}
}

// Scanner iterates over all records of a heap file in storage order.
// Pinning scanners (NewScannerOn) hold a pin on their current page so it
// cannot be evicted mid-page; Close releases the pin and is safe to call
// more than once.
type Scanner struct {
	hf      *HeapFile
	clk     *vclock.Clock
	pin     bool
	hasPin  bool
	npages  int
	pageNum int32
	page    []byte
	count   uint16
	slot    uint16
	off     int
	err     error
}

// NewScanner returns a scanner positioned before the first record,
// charging the file's bound clock, without page pinning (single-threaded
// DDL/load/stats paths and per-query temp files). The file must be
// Synced.
func (hf *HeapFile) NewScanner() *Scanner {
	n, err := hf.pool.Disk().NumPages(hf.id)
	return &Scanner{hf: hf, clk: hf.clock, npages: n, pageNum: -1, err: err}
}

// NewScannerOn returns a scanner charging the given worker clock and
// pinning its current page in the buffer pool. Callers must Close it on
// every exit path; the executor tracks these in exec.Env so the unwind
// releases pins even on panic.
func (hf *HeapFile) NewScannerOn(clk *vclock.Clock) *Scanner {
	n, err := hf.pool.Disk().NumPages(hf.id)
	return &Scanner{hf: hf, clk: clk, pin: true, npages: n, pageNum: -1, err: err}
}

// Next returns the next record and its RID, or ok=false at end of file or
// on error (check Err).
func (s *Scanner) Next() (rec []byte, rid RID, ok bool) {
	if s.err != nil {
		return nil, RID{}, false
	}
	for s.page == nil || s.slot >= s.count {
		s.releasePin()
		s.pageNum++
		if int(s.pageNum) >= s.npages {
			return nil, RID{}, false
		}
		pid := PageID{File: s.hf.id, Num: s.pageNum}
		var page []byte
		var err error
		if s.pin {
			page, err = s.hf.pool.getPinned(s.clk, pid)
			s.hasPin = err == nil
		} else {
			page, err = s.hf.pool.GetOn(s.clk, pid)
		}
		if err != nil {
			s.err = err
			return nil, RID{}, false
		}
		s.page = page
		s.count = binary.LittleEndian.Uint16(page[0:2])
		s.slot = 0
		s.off = pageHeaderSize
	}
	l := int(binary.LittleEndian.Uint16(s.page[s.off:]))
	rec = s.page[s.off+recordOverhead : s.off+recordOverhead+l]
	rid = RID{Page: PageID{File: s.hf.id, Num: s.pageNum}, Slot: s.slot}
	s.off += recordOverhead + l
	s.slot++
	return rec, rid, true
}

// releasePin drops the pin on the current page, if any.
func (s *Scanner) releasePin() {
	if s.hasPin {
		s.hf.pool.unpin(PageID{File: s.hf.id, Num: s.pageNum})
		s.hasPin = false
	}
}

// Close releases the scanner's page pin and exhausts the scanner (a
// later Next reports end of file). Idempotent; required for pinning
// scanners, a no-op otherwise.
func (s *Scanner) Close() {
	s.releasePin()
	s.page = nil
	s.count = 0
	s.slot = 0
	s.pageNum = int32(s.npages)
}

// Err returns the first error encountered while scanning.
func (s *Scanner) Err() error { return s.err }

package storage

import (
	"container/list"
	"fmt"
	"sort"

	"progressdb/internal/obs"
)

// Bounded retry policy for transient physical I/O faults (see
// Disk.SetFaultInjector). Each retry charges an exponentially growing
// backoff to the virtual clock — retrying is not free, it just beats
// failing the query on a blip.
const (
	// maxIOAttempts is the total number of tries per physical page
	// access (1 initial + maxIOAttempts-1 retries).
	maxIOAttempts = 4
	// retryBackoffBase is the virtual-seconds backoff before the first
	// retry; it doubles per attempt.
	retryBackoffBase = 1e-3
)

// BufferPool is a page cache with LRU replacement in front of the
// simulated disk. Reads that hit the pool cost nothing (the page is
// memory-resident); misses charge disk I/O. Dirty pages charge a write
// when evicted or flushed. A cold pool is how the paper's restart-per-test
// methodology is reproduced; warm-cache variants simply reuse the pool.
type BufferPool struct {
	disk     *Disk
	capacity int

	frames map[PageID]*list.Element
	lru    *list.List // front = most recently used

	hits, misses          int64
	evictions, writebacks int64
	retries, giveups      int64

	met PoolMetrics
}

// PoolMetrics are the buffer pool's engine-wide instruments. The zero
// value (all-nil counters) is the disabled state; every increment is
// nil-safe.
type PoolMetrics struct {
	// Hits and Misses count page lookups served from / read through the
	// pool.
	Hits, Misses *obs.Counter
	// Evictions counts frames displaced by the LRU policy.
	Evictions *obs.Counter
	// DirtyWritebacks counts dirty pages written back to disk on eviction
	// or flush.
	DirtyWritebacks *obs.Counter
	// IORetries counts physical page accesses retried after a transient
	// fault; IORetryGiveups counts accesses that still failed after the
	// bounded retry budget.
	IORetries, IORetryGiveups *obs.Counter
}

// SetMetrics installs observability instruments; pass the zero value to
// disable. Counters are cumulative for the pool's lifetime and are not
// reset by Clear (Prometheus counters must be monotonic).
func (bp *BufferPool) SetMetrics(m PoolMetrics) { bp.met = m }

// PoolStats is a snapshot of the pool's access accounting since the last
// Clear (the paper's cold restart).
type PoolStats struct {
	Hits, Misses          int64
	Evictions, Writebacks int64
	// Retries and RetryGiveups count transient-fault retries and
	// exhausted retry budgets (zero unless fault injection is active).
	Retries, RetryGiveups int64
}

// Stats returns the pool's access accounting since the last Clear.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits: bp.hits, Misses: bp.misses,
		Evictions: bp.evictions, Writebacks: bp.writebacks,
		Retries: bp.retries, RetryGiveups: bp.giveups,
	}
}

// readPage reads through to disk with bounded retry on transient faults.
func (bp *BufferPool) readPage(pid PageID) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < maxIOAttempts; attempt++ {
		if attempt > 0 {
			bp.retries++
			bp.met.IORetries.Inc()
			bp.disk.Clock().Idle(retryBackoffBase * float64(int64(1)<<(attempt-1)))
		}
		data, err := bp.disk.readPage(pid)
		if err == nil {
			return data, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	bp.giveups++
	bp.met.IORetryGiveups.Inc()
	return nil, fmt.Errorf("storage: read of %v failed after %d attempts: %w", pid, maxIOAttempts, lastErr)
}

// writePage writes to disk with bounded retry on transient faults.
func (bp *BufferPool) writePage(pid PageID, data []byte) error {
	var lastErr error
	for attempt := 0; attempt < maxIOAttempts; attempt++ {
		if attempt > 0 {
			bp.retries++
			bp.met.IORetries.Inc()
			bp.disk.Clock().Idle(retryBackoffBase * float64(int64(1)<<(attempt-1)))
		}
		err := bp.disk.writePage(pid, data)
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		lastErr = err
	}
	bp.giveups++
	bp.met.IORetryGiveups.Inc()
	return fmt.Errorf("storage: write of %v failed after %d attempts: %w", pid, maxIOAttempts, lastErr)
}

type frame struct {
	pid   PageID
	data  []byte
	dirty bool
}

// NewBufferPool creates a pool of capacity pages over disk.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		//lint:ignore errwrap sanctioned: constructor misuse is a wiring bug, not a runtime condition; fail fast at startup
		panic("storage: buffer pool capacity must be >= 1")
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (bp *BufferPool) HitRate() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}

// Get returns the page's contents, reading through to disk on a miss.
// The returned slice is the cached page; callers must not retain it across
// further pool operations if they will mutate it (use Put for writes).
func (bp *BufferPool) Get(pid PageID) ([]byte, error) {
	if el, ok := bp.frames[pid]; ok {
		bp.hits++
		bp.met.Hits.Inc()
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	bp.misses++
	bp.met.Misses.Inc()
	data, err := bp.readPage(pid)
	if err != nil {
		return nil, err
	}
	// Cache a private copy so in-pool mutation never aliases disk state.
	buf := make([]byte, PageSize)
	copy(buf, data)
	if err := bp.insert(&frame{pid: pid, data: buf}); err != nil {
		return nil, err
	}
	return buf, nil
}

// Put stores data as the new contents of pid, marking it dirty. data must
// be PageSize bytes. The write reaches disk on eviction or Flush; a write
// at pid.Num == NumPages extends the file immediately (so the file length
// is visible to readers) but still counts its I/O on the initial write.
func (bp *BufferPool) Put(pid PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: Put of %d bytes, want %d", len(data), PageSize)
	}
	if el, ok := bp.frames[pid]; ok {
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		bp.lru.MoveToFront(el)
		return nil
	}
	// Write through to establish the page on disk (this is where the write
	// I/O is charged), then cache it clean.
	buf := make([]byte, PageSize)
	copy(buf, data)
	if err := bp.writePage(pid, buf); err != nil {
		return err
	}
	return bp.insert(&frame{pid: pid, data: append([]byte(nil), buf...)})
}

func (bp *BufferPool) insert(fr *frame) error {
	el := bp.lru.PushFront(fr)
	bp.frames[fr.pid] = el
	if bp.lru.Len() > bp.capacity {
		victim := bp.lru.Back()
		if victim == nil {
			return nil
		}
		vf := victim.Value.(*frame)
		bp.lru.Remove(victim)
		delete(bp.frames, vf.pid)
		bp.evictions++
		bp.met.Evictions.Inc()
		if vf.dirty {
			bp.writebacks++
			bp.met.DirtyWritebacks.Inc()
			if err := bp.writePage(vf.pid, vf.data); err != nil {
				return fmt.Errorf("storage: evicting %v: %w", vf.pid, err)
			}
		}
	}
	return nil
}

// Flush writes back all dirty pages, leaving them cached clean.
func (bp *BufferPool) Flush() error {
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		fr := el.Value.(*frame)
		if fr.dirty {
			bp.writebacks++
			bp.met.DirtyWritebacks.Inc()
			if err := bp.writePage(fr.pid, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// DropFile removes all cached pages of a file without writing them back;
// used when temp files are deleted.
func (bp *BufferPool) DropFile(id FileID) {
	for el := bp.lru.Front(); el != nil; {
		next := el.Next()
		if fr := el.Value.(*frame); fr.pid.File == id {
			bp.lru.Remove(el)
			delete(bp.frames, fr.pid)
		}
		el = next
	}
}

// RemoveFile atomically invalidates the file's cached pages and removes
// it from disk — the only safe order: dropping the frames first
// guarantees no later eviction can try to write back an orphaned dirty
// page of a file that no longer exists.
func (bp *BufferPool) RemoveFile(id FileID) error {
	bp.DropFile(id)
	return bp.disk.Remove(id)
}

// OrphanedPages returns the PageIDs of cached frames whose file no
// longer exists on disk — evidence that someone called Disk.Remove
// without DropFile/RemoveFile. Part of the engine's leak-check API;
// always empty in a healthy engine.
func (bp *BufferPool) OrphanedPages() []PageID {
	var orphans []PageID
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if fr := el.Value.(*frame); !bp.disk.Exists(fr.pid.File) {
			orphans = append(orphans, fr.pid)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].File != orphans[j].File {
			return orphans[i].File < orphans[j].File
		}
		return orphans[i].Num < orphans[j].Num
	})
	return orphans
}

// Clear empties the pool without write-back (a simulated restart, for the
// paper's cold-buffer-pool methodology). Dirty page loss is intentional:
// callers Flush first if they care.
func (bp *BufferPool) Clear() {
	bp.frames = make(map[PageID]*list.Element)
	bp.lru = list.New()
	bp.hits, bp.misses = 0, 0
	bp.evictions, bp.writebacks = 0, 0
	bp.retries, bp.giveups = 0, 0
}

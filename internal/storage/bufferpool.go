package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"progressdb/internal/obs"
	"progressdb/internal/vclock"
)

// Bounded retry policy for transient physical I/O faults (see
// Disk.SetFaultInjector). Each retry charges an exponentially growing
// backoff to the virtual clock — retrying is not free, it just beats
// failing the query on a blip.
const (
	// maxIOAttempts is the total number of tries per physical page
	// access (1 initial + maxIOAttempts-1 retries).
	maxIOAttempts = 4
	// retryBackoffBase is the virtual-seconds backoff before the first
	// retry; it doubles per attempt.
	retryBackoffBase = 1e-3
)

// The buffer pool's latch hierarchy: a shard latch may be held across
// the physical disk access it covers (the disk is the lower layer).
//
//lint:lockorder poolShard.mu < Disk.mu

// poolShard is one partition of the page table: a latch, a frame map,
// and an LRU list bounded by the shard's share of the pool capacity.
// The latch is held across a miss's physical read, so concurrent
// requests for one page perform the read exactly once.
type poolShard struct {
	// Held across a miss's simulated physical read so concurrent
	// requests for one page read it exactly once; the virtual clock's
	// synchronous tickers make that look like a callback under lock,
	// but no real I/O or waiting happens inside.
	//lint:lockcoarse latch covers the simulated miss-read by design; clock tickers are synchronous compute, not blocking
	mu       sync.Mutex // guards frames, lru, and every frame in them
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used
}

// frame is one resident page. pins counts scanners currently latched
// onto the page; pinned frames are skipped by eviction. All fields are
// guarded by the owning shard's mu; data is replaced, never mutated in
// place (copy-on-write), so a reader may keep using a data slice it
// obtained under the latch.
type frame struct {
	pid   PageID
	data  []byte
	dirty bool
	pins  int
}

// BufferPool is a page cache with sharded LRU replacement in front of
// the simulated disk. Reads that hit the pool cost nothing (the page is
// memory-resident); misses charge disk I/O. Dirty pages charge a write
// when evicted or flushed. A cold pool is how the paper's
// restart-per-test methodology is reproduced; warm-cache variants simply
// reuse the pool.
//
// The pool is safe for concurrent use: the page table is sharded by
// PageID hash, each shard protected by its own latch, and frames carry
// pin counts so a scanner's current page cannot be evicted under it.
// The bound methods (Get, Put, Flush) charge the disk's base clock and
// serve the single-threaded DDL/load paths; the On variants take the
// calling worker's clock.
type BufferPool struct {
	disk     *Disk
	capacity int
	shards   []*poolShard
	mask     uint32

	hits, misses          atomic.Int64
	evictions, writebacks atomic.Int64
	retries, giveups      atomic.Int64
	pinned                atomic.Int64

	met PoolMetrics
}

// PoolMetrics are the buffer pool's engine-wide instruments. The zero
// value (all-nil counters) is the disabled state; every increment is
// nil-safe.
type PoolMetrics struct {
	// Hits and Misses count page lookups served from / read through the
	// pool.
	Hits, Misses *obs.Counter
	// Evictions counts frames displaced by the LRU policy.
	Evictions *obs.Counter
	// DirtyWritebacks counts dirty pages written back to disk on eviction
	// or flush.
	DirtyWritebacks *obs.Counter
	// IORetries counts physical page accesses retried after a transient
	// fault; IORetryGiveups counts accesses that still failed after the
	// bounded retry budget.
	IORetries, IORetryGiveups *obs.Counter
}

// SetMetrics installs observability instruments; pass the zero value to
// disable. Counters are cumulative for the pool's lifetime and are not
// reset by Clear (Prometheus counters must be monotonic). Install
// before concurrent use begins.
func (bp *BufferPool) SetMetrics(m PoolMetrics) { bp.met = m }

// PoolStats is a snapshot of the pool's access accounting since the last
// Clear (the paper's cold restart).
type PoolStats struct {
	Hits, Misses          int64
	Evictions, Writebacks int64
	// Retries and RetryGiveups count transient-fault retries and
	// exhausted retry budgets (zero unless fault injection is active).
	Retries, RetryGiveups int64
}

// Stats returns the pool's access accounting since the last Clear.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits: bp.hits.Load(), Misses: bp.misses.Load(),
		Evictions: bp.evictions.Load(), Writebacks: bp.writebacks.Load(),
		Retries: bp.retries.Load(), RetryGiveups: bp.giveups.Load(),
	}
}

// readPage reads through to disk with bounded retry on transient faults.
func (bp *BufferPool) readPage(clk *vclock.Clock, pid PageID) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < maxIOAttempts; attempt++ {
		if attempt > 0 {
			bp.retries.Add(1)
			bp.met.IORetries.Inc()
			clk.Idle(retryBackoffBase * float64(int64(1)<<(attempt-1)))
		}
		data, err := bp.disk.readPage(clk, pid)
		if err == nil {
			return data, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	bp.giveups.Add(1)
	bp.met.IORetryGiveups.Inc()
	return nil, fmt.Errorf("storage: read of %v failed after %d attempts: %w", pid, maxIOAttempts, lastErr)
}

// writePage writes to disk with bounded retry on transient faults.
func (bp *BufferPool) writePage(clk *vclock.Clock, pid PageID, data []byte) error {
	var lastErr error
	for attempt := 0; attempt < maxIOAttempts; attempt++ {
		if attempt > 0 {
			bp.retries.Add(1)
			bp.met.IORetries.Inc()
			clk.Idle(retryBackoffBase * float64(int64(1)<<(attempt-1)))
		}
		err := bp.disk.writePage(clk, pid, data)
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		lastErr = err
	}
	bp.giveups.Add(1)
	bp.met.IORetryGiveups.Inc()
	return fmt.Errorf("storage: write of %v failed after %d attempts: %w", pid, maxIOAttempts, lastErr)
}

// numShards picks the page-table shard count for a pool of the given
// capacity: a power of two, 1 for small pools (so unit-test-sized pools
// keep exact global LRU behavior), up to 8 for production-sized pools.
func numShards(capacity int) int {
	n := 1
	for n*2 <= capacity/64 && n < 8 {
		n *= 2
	}
	return n
}

// NewBufferPool creates a pool of capacity pages over disk.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		//lint:ignore errwrap sanctioned: constructor misuse is a wiring bug, not a runtime condition; fail fast at startup
		panic("storage: buffer pool capacity must be >= 1")
	}
	n := numShards(capacity)
	bp := &BufferPool{
		disk:     disk,
		capacity: capacity,
		shards:   make([]*poolShard, n),
		mask:     uint32(n - 1),
	}
	for i := range bp.shards {
		cap := capacity / n
		if i < capacity%n {
			cap++
		}
		bp.shards[i] = &poolShard{
			capacity: cap,
			frames:   make(map[PageID]*list.Element),
			lru:      list.New(),
		}
	}
	return bp
}

// shard maps a page to its page-table partition with a deterministic
// hash (no map-iteration or per-process randomness, so runs replay).
func (bp *BufferPool) shard(pid PageID) *poolShard {
	h := uint32(pid.File)*2654435761 ^ uint32(pid.Num)*2246822519
	return bp.shards[h&bp.mask]
}

// Disk returns the underlying disk.
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (bp *BufferPool) HitRate() float64 {
	hits, misses := bp.hits.Load(), bp.misses.Load()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PinnedFrames returns the number of outstanding frame pins. Part of the
// engine's leak-check API: zero whenever no scanner is mid-flight.
func (bp *BufferPool) PinnedFrames() int64 { return bp.pinned.Load() }

// Get returns the page's contents, reading through to disk on a miss and
// charging the disk's base clock. The returned slice is the cached page
// image; it is never mutated in place (Put replaces it), so the caller
// may read it after the call returns but must use Put for writes.
func (bp *BufferPool) Get(pid PageID) ([]byte, error) {
	return bp.getOn(bp.disk.clock, pid, false)
}

// GetOn is Get charging the given worker clock.
func (bp *BufferPool) GetOn(clk *vclock.Clock, pid PageID) ([]byte, error) {
	return bp.getOn(clk, pid, false)
}

// getPinned is GetOn plus a pin on the frame: the page cannot be
// evicted until the matching unpin. Scanners pin their current page.
func (bp *BufferPool) getPinned(clk *vclock.Clock, pid PageID) ([]byte, error) {
	return bp.getOn(clk, pid, true)
}

// unpin releases one pin on pid. Unpinning a page that has since been
// dropped (temp-file cleanup) is a no-op; DropFile already settled the
// pin accounting for its frames.
func (bp *BufferPool) unpin(pid PageID) {
	sh := bp.shard(pid)
	sh.mu.Lock()
	if el, ok := sh.frames[pid]; ok {
		if fr := el.Value.(*frame); fr.pins > 0 {
			fr.pins--
			bp.pinned.Add(-1)
		}
	}
	sh.mu.Unlock()
}

func (bp *BufferPool) getOn(clk *vclock.Clock, pid PageID, pin bool) ([]byte, error) {
	sh := bp.shard(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[pid]; ok {
		bp.hits.Add(1)
		bp.met.Hits.Inc()
		sh.lru.MoveToFront(el)
		fr := el.Value.(*frame)
		if pin {
			fr.pins++
			bp.pinned.Add(1)
		}
		return fr.data, nil
	}
	bp.misses.Add(1)
	bp.met.Misses.Inc()
	// The latch is held across the physical read: concurrent requests
	// for this page queue here and then hit the freshly inserted frame,
	// so each page is read from disk exactly once per residency.
	data, err := bp.readPage(clk, pid)
	if err != nil {
		return nil, err
	}
	// Cache a private copy so in-pool state never aliases disk state.
	buf := make([]byte, PageSize)
	copy(buf, data)
	fr := &frame{pid: pid, data: buf}
	if pin {
		fr.pins++
		bp.pinned.Add(1)
	}
	if err := bp.insertLocked(clk, sh, fr); err != nil {
		return nil, err
	}
	return buf, nil
}

// Put stores data as the new contents of pid, marking it dirty and
// charging the disk's base clock for any physical I/O. data must be
// PageSize bytes. The write reaches disk on eviction or Flush; a write
// at pid.Num == NumPages extends the file immediately (so the file
// length is visible to readers) but still counts its I/O on the initial
// write.
func (bp *BufferPool) Put(pid PageID, data []byte) error {
	return bp.PutOn(bp.disk.clock, pid, data)
}

// PutOn is Put charging the given worker clock. The update is
// copy-on-write: the frame gets a fresh page image, so readers holding
// the previous image (scanners mid-page) are unaffected.
func (bp *BufferPool) PutOn(clk *vclock.Clock, pid PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: Put of %d bytes, want %d", len(data), PageSize)
	}
	sh := bp.shard(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[pid]; ok {
		fr := el.Value.(*frame)
		buf := make([]byte, PageSize)
		copy(buf, data)
		fr.data = buf
		fr.dirty = true
		sh.lru.MoveToFront(el)
		return nil
	}
	// Write through to establish the page on disk (this is where the write
	// I/O is charged), then cache it clean.
	buf := make([]byte, PageSize)
	copy(buf, data)
	if err := bp.writePage(clk, pid, buf); err != nil {
		return err
	}
	return bp.insertLocked(clk, sh, &frame{pid: pid, data: append([]byte(nil), buf...)})
}

// insertLocked adds fr to the shard, evicting the least recently used
// unpinned frame if the shard is over its share of the capacity. If
// every frame is pinned the shard runs over capacity rather than fail —
// pins are short-lived (a scanner's current page). Called with sh.mu
// held.
func (bp *BufferPool) insertLocked(clk *vclock.Clock, sh *poolShard, fr *frame) error {
	el := sh.lru.PushFront(fr)
	sh.frames[fr.pid] = el
	if sh.lru.Len() <= sh.capacity {
		return nil
	}
	for victim := sh.lru.Back(); victim != nil; victim = victim.Prev() {
		vf := victim.Value.(*frame)
		if vf.pins > 0 {
			continue
		}
		sh.lru.Remove(victim)
		delete(sh.frames, vf.pid)
		bp.evictions.Add(1)
		bp.met.Evictions.Inc()
		if vf.dirty {
			bp.writebacks.Add(1)
			bp.met.DirtyWritebacks.Inc()
			if err := bp.writePage(clk, vf.pid, vf.data); err != nil {
				return fmt.Errorf("storage: evicting %v: %w", vf.pid, err)
			}
		}
		return nil
	}
	return nil
}

// Flush writes back all dirty pages, leaving them cached clean, charging
// the disk's base clock.
func (bp *BufferPool) Flush() error { return bp.FlushOn(bp.disk.clock) }

// FlushOn is Flush charging the given worker clock.
func (bp *BufferPool) FlushOn(clk *vclock.Clock) error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			fr := el.Value.(*frame)
			if fr.dirty {
				bp.writebacks.Add(1)
				bp.met.DirtyWritebacks.Inc()
				if err := bp.writePage(clk, fr.pid, fr.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				fr.dirty = false
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// DropFile removes all cached pages of a file without writing them back;
// used when temp files are deleted. Pins held on dropped frames are
// settled here so a scanner abandoned by an error unwind cannot leak
// pin accounting.
func (bp *BufferPool) DropFile(id FileID) {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			if fr := el.Value.(*frame); fr.pid.File == id {
				if fr.pins > 0 {
					bp.pinned.Add(int64(-fr.pins))
					fr.pins = 0
				}
				sh.lru.Remove(el)
				delete(sh.frames, fr.pid)
			}
			el = next
		}
		sh.mu.Unlock()
	}
}

// RemoveFile atomically invalidates the file's cached pages and removes
// it from disk — the only safe order: dropping the frames first
// guarantees no later eviction can try to write back an orphaned dirty
// page of a file that no longer exists.
func (bp *BufferPool) RemoveFile(id FileID) error {
	bp.DropFile(id)
	return bp.disk.Remove(id)
}

// OrphanedPages returns the PageIDs of cached frames whose file no
// longer exists on disk — evidence that someone called Disk.Remove
// without DropFile/RemoveFile. Part of the engine's leak-check API;
// always empty in a healthy engine.
func (bp *BufferPool) OrphanedPages() []PageID {
	var orphans []PageID
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			if fr := el.Value.(*frame); !bp.disk.Exists(fr.pid.File) {
				orphans = append(orphans, fr.pid)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].File != orphans[j].File {
			return orphans[i].File < orphans[j].File
		}
		return orphans[i].Num < orphans[j].Num
	})
	return orphans
}

// Clear empties the pool without write-back (a simulated restart, for the
// paper's cold-buffer-pool methodology). Dirty page loss is intentional:
// callers Flush first if they care. Clear must not race a running query
// (the engine only cold-restarts while idle).
func (bp *BufferPool) Clear() {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		sh.frames = make(map[PageID]*list.Element)
		sh.lru = list.New()
		sh.mu.Unlock()
	}
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.writebacks.Store(0)
	bp.retries.Store(0)
	bp.giveups.Store(0)
	bp.pinned.Store(0)
}

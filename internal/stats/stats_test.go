package stats

import (
	"math"
	"testing"
	"testing/quick"

	"progressdb/internal/expr"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func loadTable(t *testing.T, schema *tuple.Schema, rows []tuple.Tuple) *storage.HeapFile {
	t.Helper()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	pool := storage.NewBufferPool(storage.NewDisk(clock), 128)
	hf := storage.CreateHeapFile(pool)
	for _, r := range rows {
		if _, err := hf.Append(r.Encode(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := hf.Sync(); err != nil {
		t.Fatal(err)
	}
	return hf
}

func intCol(name string) tuple.Column { return tuple.Column{Name: name, Type: tuple.Int} }

func TestAnalyzeBasics(t *testing.T) {
	schema := tuple.NewSchema(intCol("k"), tuple.Column{Name: "s", Type: tuple.String})
	var rows []tuple.Tuple
	for i := 0; i < 1000; i++ {
		rows = append(rows, tuple.Tuple{tuple.NewInt(int64(i % 50)), tuple.NewString("const")})
	}
	hf := loadTable(t, schema, rows)
	ts, err := Analyze(hf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if ts.RowCount != 1000 {
		t.Fatalf("RowCount = %d", ts.RowCount)
	}
	wantWidth := float64(rows[0].EncodedSize())
	if math.Abs(ts.AvgWidth-wantWidth) > 0.01 {
		t.Fatalf("AvgWidth = %g, want %g", ts.AvgWidth, wantWidth)
	}
	k := ts.Col("k")
	if k == nil || k.NDV != 50 {
		t.Fatalf("k stats: %+v", k)
	}
	if k.Min != 0 || k.Max != 49 {
		t.Fatalf("k min/max = %g/%g", k.Min, k.Max)
	}
	s := ts.Col("S") // case-insensitive
	if s == nil || s.NDV != 1 || s.Numeric {
		t.Fatalf("s stats: %+v", s)
	}
	if ts.TotalBytes() != wantWidth*1000 {
		t.Fatalf("TotalBytes = %g", ts.TotalBytes())
	}
	if ts.Col("missing") != nil {
		t.Fatal("missing column stats must be nil")
	}
}

func TestHistogramFracBelow(t *testing.T) {
	var sample []float64
	for i := 0; i < 10000; i++ {
		sample = append(sample, float64(i))
	}
	h := NewHistogram(sample, 100)
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {9999, 1}, {20000, 1}, {5000, 0.5}, {2500, 0.25},
	}
	for _, c := range cases {
		if got := h.FracBelow(c.x); math.Abs(got-c.want) > 0.02 {
			t.Fatalf("FracBelow(%g) = %g, want ~%g", c.x, got, c.want)
		}
	}
	if NewHistogram(nil, 10) != nil {
		t.Fatal("empty sample must yield nil histogram")
	}
	var nilH *Histogram
	if nilH.FracBelow(5) != DefaultIneqSel {
		t.Fatal("nil histogram must return default")
	}
}

func selTestTable(t *testing.T) (*tuple.Schema, *TableStats) {
	t.Helper()
	schema := tuple.NewSchema(intCol("nationkey"), intCol("custkey"))
	var rows []tuple.Tuple
	for i := 0; i < 2500; i++ {
		rows = append(rows, tuple.Tuple{tuple.NewInt(int64(i % 25)), tuple.NewInt(int64(i))})
	}
	hf := loadTable(t, schema, rows)
	ts, err := Analyze(hf, schema)
	if err != nil {
		t.Fatal(err)
	}
	return schema, ts
}

func TestPredicateSelectivityEquality(t *testing.T) {
	schema, ts := selTestTable(t)
	e := &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(3)}}
	if got := PredicateSelectivity(e, schema, ts); math.Abs(got-1.0/25) > 1e-9 {
		t.Fatalf("eq sel = %g, want 1/25", got)
	}
	ne := &expr.Cmp{Op: expr.NE, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(3)}}
	if got := PredicateSelectivity(ne, schema, ts); math.Abs(got-(1-1.0/25)) > 1e-9 {
		t.Fatalf("ne sel = %g", got)
	}
}

func TestPredicateSelectivityRange(t *testing.T) {
	schema, ts := selTestTable(t)
	// nationkey < 10 over uniform 0..24 → ~0.4
	e := &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(10)}}
	if got := PredicateSelectivity(e, schema, ts); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("range sel = %g, want ~0.4", got)
	}
	// Reversed operand order: 10 > nationkey is the same predicate.
	rev := &expr.Cmp{Op: expr.GT, L: &expr.Const{V: tuple.NewInt(10)}, R: &expr.ColRef{Index: 0}}
	if got := PredicateSelectivity(rev, schema, ts); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("reversed range sel = %g, want ~0.4", got)
	}
	gt := &expr.Cmp{Op: expr.GT, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(10)}}
	if got := PredicateSelectivity(gt, schema, ts); math.Abs(got-0.56) > 0.08 {
		t.Fatalf("gt sel = %g, want ~0.56", got)
	}
}

// The load-bearing behaviour for Q2/Q4: function predicates get 1/3.
func TestFunctionPredicateGetsDefaultOneThird(t *testing.T) {
	schema, ts := selTestTable(t)
	e := &expr.Cmp{
		Op: expr.GT,
		L:  &expr.Func{Name: "absolute", Args: []expr.Expr{&expr.ColRef{Index: 1}}},
		R:  &expr.Const{V: tuple.NewInt(0)},
	}
	if got := PredicateSelectivity(e, schema, ts); got != DefaultFuncSel {
		t.Fatalf("function predicate sel = %g, want %g", got, DefaultFuncSel)
	}
}

func TestConjunctionMultiplies(t *testing.T) {
	schema, ts := selTestTable(t)
	a := &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(3)}}
	b := &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(4)}}
	and := &expr.And{Terms: []expr.Expr{a, b}}
	got := PredicateSelectivity(and, schema, ts)
	want := (1.0 / 25) * (1.0 / 25)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("and sel = %g, want %g", got, want)
	}
}

func TestSelectivityDefaultsWithoutStats(t *testing.T) {
	schema := tuple.NewSchema(intCol("x"))
	ts := &TableStats{Cols: map[string]*ColStats{}}
	eq := &expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(1)}}
	if got := PredicateSelectivity(eq, schema, ts); got != DefaultEqSel {
		t.Fatalf("eq default = %g", got)
	}
	lt := &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Index: 0}, R: &expr.Const{V: tuple.NewInt(1)}}
	if got := PredicateSelectivity(lt, schema, ts); got != DefaultIneqSel {
		t.Fatalf("ineq default = %g", got)
	}
	// col op col within one table: not a col/const pattern → default.
	cc := &expr.Cmp{Op: expr.LT, L: &expr.ColRef{Index: 0}, R: &expr.ColRef{Index: 0}}
	if got := PredicateSelectivity(cc, schema, ts); got != DefaultIneqSel {
		t.Fatalf("col-col default = %g", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	l := &ColStats{NDV: 150000}
	r := &ColStats{NDV: 100000}
	if got := JoinSelectivity(expr.EQ, l, r); math.Abs(got-1.0/150000) > 1e-15 {
		t.Fatalf("equijoin sel = %g", got)
	}
	if got := JoinSelectivity(expr.NE, l, r); math.Abs(got-(1-1.0/150000)) > 1e-12 {
		t.Fatalf("<> join sel = %g", got)
	}
	if got := JoinSelectivity(expr.LT, l, r); got != DefaultIneqSel {
		t.Fatalf("range join sel = %g", got)
	}
	if got := JoinSelectivity(expr.EQ, nil, nil); got != DefaultEqSel {
		t.Fatalf("no-stats join sel = %g", got)
	}
}

// Property: selectivities are always within [0, 1].
func TestPropertySelectivityBounds(t *testing.T) {
	schema, ts := selTestTable(t)
	ops := []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
	f := func(c int16, opIdx uint8, colIdx uint8) bool {
		e := &expr.Cmp{
			Op: ops[int(opIdx)%len(ops)],
			L:  &expr.ColRef{Index: int(colIdx) % 2},
			R:  &expr.Const{V: tuple.NewInt(int64(c))},
		}
		s := PredicateSelectivity(e, schema, ts)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram FracBelow is monotone non-decreasing.
func TestPropertyHistogramMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		h := NewHistogram(append([]float64(nil), clean...), 10)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return h.FracBelow(lo) <= h.FracBelow(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package stats implements the statistics-collection program ("before we
// ran queries, we ran the PostgreSQL statistics collection program on all
// the five relations") and the selectivity estimator whose systematic
// errors drive the paper's experiments.
//
// The estimator intentionally reproduces the PostgreSQL 7.3 behaviours the
// paper leans on:
//
//   - a predicate containing any function call (absolute(l.partkey) > 0)
//     gets the default selectivity 1/3 (DefaultFuncSel), even though the
//     true selectivity may be 1 — the source of the Q2/Q4 cost errors;
//   - join selectivity assumes independence and uniformity
//     (1/max(NDV_l, NDV_r)) — the source of the Q3 correlation error.
package stats

import (
	"fmt"
	"math"
	"sort"

	"progressdb/internal/expr"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// Default selectivities, matching PostgreSQL's historical constants where
// the paper depends on them.
const (
	// DefaultFuncSel is used for any predicate over a function result.
	DefaultFuncSel = 1.0 / 3.0
	// DefaultIneqSel is used for range predicates with no usable stats.
	DefaultIneqSel = 1.0 / 3.0
	// DefaultEqSel is used for equality predicates with no usable stats.
	DefaultEqSel = 0.005
)

// HistogramBuckets is the number of equi-depth buckets collected per
// numeric column.
const HistogramBuckets = 100

// Histogram is an equi-depth histogram over a numeric column: Bounds has
// B+1 entries; bucket i covers [Bounds[i], Bounds[i+1]] and holds ~1/B of
// the rows.
type Histogram struct {
	Bounds []float64
}

// NewHistogram builds an equi-depth histogram from a sample of values.
func NewHistogram(sample []float64, buckets int) *Histogram {
	if len(sample) == 0 || buckets < 1 {
		return nil
	}
	sort.Float64s(sample)
	if buckets > len(sample) {
		buckets = len(sample)
	}
	bounds := make([]float64, 0, buckets+1)
	for i := 0; i <= buckets; i++ {
		idx := i * (len(sample) - 1) / buckets
		bounds = append(bounds, sample[idx])
	}
	return &Histogram{Bounds: bounds}
}

// FracBelow estimates the fraction of rows with value < x.
func (h *Histogram) FracBelow(x float64) float64 {
	if h == nil || len(h.Bounds) < 2 {
		return DefaultIneqSel
	}
	b := len(h.Bounds) - 1
	if x <= h.Bounds[0] {
		return 0
	}
	if x >= h.Bounds[b] {
		return 1
	}
	// Find bucket containing x and interpolate within it.
	i := sort.SearchFloat64s(h.Bounds, x) - 1
	if i < 0 {
		i = 0
	}
	lo, hi := h.Bounds[i], h.Bounds[i+1]
	frac := float64(i) / float64(b)
	if hi > lo {
		// Guard the interpolation against float overflow (hi-lo may be
		// +Inf for extreme bounds, making the ratio NaN).
		t := (x - lo) / (hi - lo)
		if math.IsNaN(t) || math.IsInf(t, 0) {
			t = 0.5
		}
		frac += math.Min(1, math.Max(0, t)) / float64(b)
	}
	return math.Min(1, math.Max(0, frac))
}

// ColStats holds per-column statistics.
type ColStats struct {
	// NDV is the estimated number of distinct values.
	NDV int64
	// Min and Max are observed bounds (numeric columns only).
	Min, Max float64
	// Numeric reports whether Min/Max/Hist are meaningful.
	Numeric bool
	// Hist is an equi-depth histogram (numeric columns only).
	Hist *Histogram
	// AvgWidth is the average encoded size of this column's values in
	// bytes; the optimizer sums these to estimate projection widths.
	AvgWidth float64
}

// TableStats holds per-table statistics, as produced by Analyze.
type TableStats struct {
	// RowCount is the exact number of rows at analyze time.
	RowCount int64
	// AvgWidth is the average encoded tuple size in bytes.
	AvgWidth float64
	// Pages is the heap file size in pages.
	Pages int
	// Cols maps lower-cased column name to its stats.
	Cols map[string]*ColStats
}

// TotalBytes returns the estimated total relation size in bytes.
func (ts *TableStats) TotalBytes() float64 {
	return float64(ts.RowCount) * ts.AvgWidth
}

// Col returns stats for the named column, or nil.
func (ts *TableStats) Col(name string) *ColStats {
	if ts == nil {
		return nil
	}
	return ts.Cols[lower(name)]
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// Analyze scans a heap file and computes table statistics: exact row count
// and average width, and per-column NDV, min/max, and an equi-depth
// histogram from a bounded reservoir sample. It mirrors running the
// statistics collector before the experiments, as the paper does.
//
// Analyze charges the clock for its I/O like any scan; run it before
// starting the measured query (the paper collects statistics ahead of
// time).
func Analyze(hf *storage.HeapFile, schema *tuple.Schema) (*TableStats, error) {
	const sampleCap = 30000
	ts := &TableStats{Cols: make(map[string]*ColStats, schema.Arity())}
	type colAcc struct {
		distinct map[tuple.Value]struct{}
		sample   []float64
		min, max float64
		numeric  bool
		seen     int64
		widthSum int64
	}
	accs := make([]*colAcc, schema.Arity())
	for i, c := range schema.Cols {
		accs[i] = &colAcc{
			distinct: make(map[tuple.Value]struct{}),
			numeric:  c.Type == tuple.Int || c.Type == tuple.Float,
			min:      math.Inf(1),
			max:      math.Inf(-1),
		}
	}
	var widthSum int64
	sc := hf.NewScanner()
	// Deterministic "random" for reservoir sampling: a simple LCG keyed by
	// row number keeps Analyze reproducible without math/rand state.
	lcg := uint64(88172645463325252)
	nextRand := func(n int64) int64 {
		lcg ^= lcg << 13
		lcg ^= lcg >> 7
		lcg ^= lcg << 17
		return int64(lcg % uint64(n))
	}
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		row, err := tuple.Decode(rec, schema.Arity())
		if err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
		ts.RowCount++
		widthSum += int64(row.EncodedSize())
		for i, v := range row {
			a := accs[i]
			a.seen++
			a.widthSum += int64(valueWidth(v))
			a.distinct[v] = struct{}{}
			if a.numeric {
				f := v.AsFloat()
				if f < a.min {
					a.min = f
				}
				if f > a.max {
					a.max = f
				}
				if len(a.sample) < sampleCap {
					a.sample = append(a.sample, f)
				} else if j := nextRand(a.seen); j < sampleCap {
					a.sample[j] = f
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ts.RowCount > 0 {
		ts.AvgWidth = float64(widthSum) / float64(ts.RowCount)
	}
	ts.Pages = hf.NumPages()
	for i, c := range schema.Cols {
		a := accs[i]
		cs := &ColStats{NDV: int64(len(a.distinct)), Numeric: a.numeric}
		if a.seen > 0 {
			cs.AvgWidth = float64(a.widthSum) / float64(a.seen)
		}
		if a.numeric && a.seen > 0 {
			cs.Min, cs.Max = a.min, a.max
			cs.Hist = NewHistogram(a.sample, HistogramBuckets)
		}
		ts.Cols[lower(c.Name)] = cs
	}
	return ts, nil
}

// valueWidth is the encoded size of one value (see tuple.EncodedSize).
func valueWidth(v tuple.Value) int {
	if v.Kind == tuple.String {
		return 5 + len(v.S)
	}
	return 9
}

// PredicateSelectivity estimates the fraction of rows of a single table
// that satisfy conjunct e. Column indexes in e refer to schema positions.
func PredicateSelectivity(e expr.Expr, schema *tuple.Schema, ts *TableStats) float64 {
	// Conjunctions multiply under the independence assumption.
	if a, ok := e.(*expr.And); ok {
		sel := 1.0
		for _, t := range a.Terms {
			sel *= PredicateSelectivity(t, schema, ts)
		}
		return sel
	}
	// PostgreSQL-style: any function call defeats estimation.
	if expr.ContainsFunc(e) {
		return DefaultFuncSel
	}
	c, ok := e.(*expr.Cmp)
	if !ok {
		return DefaultIneqSel
	}
	col, cnst, op, ok := colConstCmp(c)
	if !ok {
		return DefaultIneqSel
	}
	var cs *ColStats
	if col.Index >= 0 && col.Index < schema.Arity() {
		cs = ts.Col(schema.Cols[col.Index].Name)
	}
	switch op {
	case expr.EQ:
		if cs != nil && cs.NDV > 0 {
			return 1 / float64(cs.NDV)
		}
		return DefaultEqSel
	case expr.NE:
		if cs != nil && cs.NDV > 0 {
			return 1 - 1/float64(cs.NDV)
		}
		return 1 - DefaultEqSel
	case expr.LT, expr.LE:
		if cs != nil && cs.Numeric {
			return rangeSel(cs, cnst.AsFloat(), true)
		}
		return DefaultIneqSel
	case expr.GT, expr.GE:
		if cs != nil && cs.Numeric {
			return rangeSel(cs, cnst.AsFloat(), false)
		}
		return DefaultIneqSel
	default:
		return DefaultIneqSel
	}
}

// rangeSel estimates P(col < x) (below=true) or P(col > x) from histogram
// or min/max interpolation.
func rangeSel(cs *ColStats, x float64, below bool) float64 {
	var frac float64
	switch {
	case cs.Hist != nil:
		frac = cs.Hist.FracBelow(x)
	case cs.Max > cs.Min:
		frac = math.Min(1, math.Max(0, (x-cs.Min)/(cs.Max-cs.Min)))
	default:
		frac = DefaultIneqSel
	}
	if below {
		return clampSel(frac)
	}
	return clampSel(1 - frac)
}

func clampSel(s float64) float64 {
	return math.Min(1, math.Max(0, s))
}

// colConstCmp matches e as (column op constant) or (constant op column),
// normalizing so the column is on the left.
func colConstCmp(c *expr.Cmp) (*expr.ColRef, tuple.Value, expr.CmpOp, bool) {
	if col, ok := c.L.(*expr.ColRef); ok {
		if k, ok2 := c.R.(*expr.Const); ok2 {
			return col, k.V, c.Op, true
		}
	}
	if col, ok := c.R.(*expr.ColRef); ok {
		if k, ok2 := c.L.(*expr.Const); ok2 {
			return col, k.V, flipOp(c.Op), true
		}
	}
	return nil, tuple.Value{}, 0, false
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// JoinSelectivity estimates the selectivity of a join predicate between
// two relations. For an equijoin it is 1/max(NDV_l, NDV_r) under the
// uniformity and containment assumptions — the estimate that Q3's
// correlated data violates. For <> it is the complement; other operators
// get the range default.
func JoinSelectivity(op expr.CmpOp, left, right *ColStats) float64 {
	maxNDV := int64(0)
	if left != nil && left.NDV > maxNDV {
		maxNDV = left.NDV
	}
	if right != nil && right.NDV > maxNDV {
		maxNDV = right.NDV
	}
	eq := DefaultEqSel
	if maxNDV > 0 {
		eq = 1 / float64(maxNDV)
	}
	switch op {
	case expr.EQ:
		return eq
	case expr.NE:
		return 1 - eq
	default:
		return DefaultIneqSel
	}
}

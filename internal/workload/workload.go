// Package workload generates the paper's test data set (Table 1) and
// defines its five queries.
//
// The schemas follow the TPC-R subset the paper lists; row widths are
// padded so the relation sizes land on Table 1's figures (customer 23 MB
// / 0.15 M rows, orders 114 MB / 1.5 M rows, lineitem 755 MB / 6 M rows
// at scale 1.0). Match rates reproduce the paper's: each customer matches
// ten orders on custkey, each order matches four lineitems on orderkey.
//
// For the Q3 experiment the paper modifies orders so that the per-
// customer order count correlates with nationkey (r = 20 for nationkey
// 0–9, r = 0 for 10–19, r = 10 for 20–24); CorrelatedOrders reproduces
// that variant, which breaks the optimizer's independence assumption.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"progressdb/internal/catalog"
	"progressdb/internal/tuple"
)

// Config controls data generation.
type Config struct {
	// Scale is the fraction of Table 1's cardinalities (1.0 = the
	// paper's sizes). Experiments default to a laptop-friendly scale;
	// relative sizes and fanouts are scale-invariant.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
	// CorrelatedOrders switches orders to the Q3 variant where the
	// per-customer fanout depends on the customer's nationkey.
	CorrelatedOrders bool
	// SubsetRows is the size of customer_subset1/2 (paper: 3000). These
	// do not scale: Q5 is CPU-bound at any data scale.
	SubsetRows int
	// Partition, when non-nil, loads only the rows whose partition key
	// hashes to Partition.Index of Partition.Count shards (see
	// PartitionKeys for each table's key). Generation still produces
	// every row in the same order, so the union of all partitions is
	// exactly the unpartitioned data set.
	Partition *PartitionSpec
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.SubsetRows == 0 {
		c.SubsetRows = 3000
	}
	return c
}

// Paper cardinalities at scale 1.0.
const (
	BaseCustomers = 150000
	OrdersPerCust = 10
	LinesPerOrder = 4
	nations       = 25
)

// Dataset describes what was loaded.
type Dataset struct {
	Config    Config
	Customers int
	Orders    int
	Lineitems int
	Subset    int
}

// CustomerSchema returns the paper's customer schema.
func CustomerSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "name", Type: tuple.String},
		tuple.Column{Name: "address", Type: tuple.String},
		tuple.Column{Name: "nationkey", Type: tuple.Int},
		tuple.Column{Name: "phone", Type: tuple.String},
		tuple.Column{Name: "acctbal", Type: tuple.Float},
		tuple.Column{Name: "mktsegment", Type: tuple.String},
	)
}

// OrdersSchema returns the paper's orders schema.
func OrdersSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "orderstatus", Type: tuple.String},
		tuple.Column{Name: "totalprice", Type: tuple.Float},
		tuple.Column{Name: "orderdate", Type: tuple.String},
		tuple.Column{Name: "shippriority", Type: tuple.Int},
	)
}

// LineitemSchema returns the paper's lineitem schema.
func LineitemSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "partkey", Type: tuple.Int},
		tuple.Column{Name: "suppkey", Type: tuple.Int},
		tuple.Column{Name: "linenumber", Type: tuple.Int},
		tuple.Column{Name: "quantity", Type: tuple.Int},
		tuple.Column{Name: "extendedprice", Type: tuple.Float},
		tuple.Column{Name: "discount", Type: tuple.Float},
		tuple.Column{Name: "tax", Type: tuple.Float},
		tuple.Column{Name: "returnflag", Type: tuple.String},
		tuple.Column{Name: "linestatus", Type: tuple.String},
	)
}

var (
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	statuses = []string{"O", "F", "P"}
	// Width padding calibrated against Table 1 (see package comment).
	addressPad    = strings.Repeat("a", 58)
	linestatusPad = strings.Repeat("s", 36)
)

// Load generates and loads all five relations into cat, then analyzes
// them (the paper runs the statistics collector before the experiments).
// With cfg.Partition set, only the owned slice of each relation is
// inserted; the Dataset counts then reflect the loaded partition, not the
// full data set.
func Load(cat *catalog.Catalog, cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Partition.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ds := &Dataset{Config: cfg}
	for _, g := range cfg.generators(rng) {
		t, err := cat.CreateTable(g.name, g.schema)
		if err != nil {
			return nil, err
		}
		kept := 0
		for i := 0; i < g.n; i++ {
			row := g.row(i) // always generated: the rng sequence must not depend on ownership
			if !cfg.Partition.owns(g.key(i)) {
				continue
			}
			if err := cat.Insert(t, row); err != nil {
				return nil, err
			}
			kept++
		}
		if err := t.Heap.Sync(); err != nil {
			return nil, err
		}
		switch g.name {
		case "customer":
			ds.Customers = kept
		case "orders":
			ds.Orders = kept
		case "lineitem":
			ds.Lineitems = kept
		case "customer_subset1":
			ds.Subset = kept
		}
	}

	if err := cat.AnalyzeAll(); err != nil {
		return nil, err
	}
	return ds, nil
}

// orderCustkeys returns the custkey of every order. Uniform: each
// customer has exactly OrdersPerCust orders. Correlated (the Q3
// variant): nationkey 0–9 → 20 orders, 10–19 → 0, 20–24 → 10; the
// average stays OrdersPerCust.
func orderCustkeys(ncust int, correlated bool) []int64 {
	var out []int64
	if !correlated {
		out = make([]int64, 0, ncust*OrdersPerCust)
		for o := 0; o < ncust*OrdersPerCust; o++ {
			out = append(out, int64(o%ncust))
		}
		return out
	}
	for c := 0; c < ncust; c++ {
		r := 0
		switch nation := c % nations; {
		case nation < 10:
			r = 20
		case nation < 20:
			r = 0
		default:
			r = 10
		}
		for k := 0; k < r; k++ {
			out = append(out, int64(c))
		}
	}
	return out
}

func customerRow(i int, rng *rand.Rand) tuple.Tuple {
	return tuple.Tuple{
		tuple.NewInt(int64(i)),
		tuple.NewString(fmt.Sprintf("Customer#%09d", i)),
		tuple.NewString(addressPad),
		tuple.NewInt(int64(i % nations)),
		tuple.NewString(fmt.Sprintf("%02d-%03d-%03d-%04d", i%34+10, rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000)),
		tuple.NewFloat(float64(rng.Intn(1000000))/100 - 999.99),
		tuple.NewString(segments[i%len(segments)]),
	}
}

func orderRow(i int, custkey int64, rng *rand.Rand) tuple.Tuple {
	return tuple.Tuple{
		tuple.NewInt(int64(i)),
		tuple.NewInt(custkey),
		tuple.NewString(statuses[i%len(statuses)] + "-STATUS-CODE"),
		tuple.NewFloat(float64(rng.Intn(50000000))/100 + 1),
		tuple.NewString(fmt.Sprintf("199%d-%02d-%02d", i%7, i%12+1, i%28+1)),
		tuple.NewInt(int64(i % 5)),
	}
}

func lineitemRow(i int, rng *rand.Rand) tuple.Tuple {
	return tuple.Tuple{
		tuple.NewInt(int64(i / LinesPerOrder)),
		tuple.NewInt(int64(rng.Intn(200000) + 1)), // strictly positive: absolute(partkey) > 0 is always true
		tuple.NewInt(int64(rng.Intn(10000) + 1)),
		tuple.NewInt(int64(i%LinesPerOrder + 1)),
		tuple.NewInt(int64(rng.Intn(50) + 1)),
		tuple.NewFloat(float64(rng.Intn(10000000))/100 + 1),
		tuple.NewFloat(float64(rng.Intn(11)) / 100),
		tuple.NewFloat(float64(rng.Intn(9)) / 100),
		tuple.NewString(statuses[i%len(statuses)]),
		tuple.NewString(linestatusPad),
	}
}

// QuerySQL returns the paper's query text, verbatim from Section 5.1.
func QuerySQL(n int) (string, error) {
	switch n {
	case 1:
		return `select * from lineitem`, nil
	case 2:
		return `select c.custkey, c.acctbal, o.orderkey, o.totalprice, l.discount, l.extendedprice
			from customer c, orders o, lineitem l
			where c.custkey=o.custkey and o.orderkey=l.orderkey and absolute(l.partkey)>0`, nil
	case 3:
		return `select c.custkey, c.acctbal, o1.orderkey, o1.totalprice, o2.totalprice
			from customer c, orders o1, orders o2
			where c.custkey=o1.custkey and o1.orderkey=o2.orderkey and c.nationkey<10`, nil
	case 4:
		return `select c.custkey, c.acctbal, o.orderkey, o.totalprice, o.shippriority, l.discount, l.extendedprice
			from customer c, orders o, lineitem l
			where c.custkey=o.custkey and o.orderkey=l.orderkey and absolute(o.totalprice)>0 and absolute(l.partkey)>0`, nil
	case 5:
		return `select * from customer_subset1 c1, customer_subset2 c2 where c1.custkey<>c2.custkey`, nil
	default:
		return "", fmt.Errorf("workload: no query Q%d (paper defines Q1–Q5)", n)
	}
}

// Table1 renders the loaded data set in the format of the paper's
// Table 1, with both the configured-scale and scale-1.0 numbers.
func (ds *Dataset) Table1(cat *catalog.Catalog) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %15s %12s\n", "", "number of tuples", "total size")
	for _, name := range []string{"customer", "orders", "lineitem", "customer_subset1", "customer_subset2"} {
		t, err := cat.Table(name)
		if err != nil {
			return "", err
		}
		size := "?"
		if t.Stats != nil {
			size = fmt.Sprintf("%.1fMB", t.Stats.TotalBytes()/1e6)
		}
		fmt.Fprintf(&b, "%-18s %15d %12s\n", name, t.Heap.Len(), size)
	}
	fmt.Fprintf(&b, "(scale %.3f; scale 1.0 reproduces the paper's 0.15M/23MB, 1.5M/114MB, 6M/755MB)\n", ds.Config.Scale)
	return b.String(), nil
}

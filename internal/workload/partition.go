// Hash partitioning of the paper workload across fleet shards.
//
// Every table carries a designated partition key (PartitionKeys). A row
// lives on shard PartitionOf(key, N). The assignment is chosen so the
// paper's customer⋈orders join (on custkey) is co-partitioned and can be
// answered shard-locally, while orders⋈lineitem (on orderkey, with orders
// hashed by custkey) deliberately is not — the fleet coordinator must
// detect and reject it rather than silently return partial join results.
//
// Determinism contract: partition filtering never changes the random
// sequence. Generation always produces every row in the identical order
// Load uses, and partitioning only decides where (or whether) each row is
// kept, so the union of the N partitions is byte-identical to the
// unpartitioned data set.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"progressdb/internal/tuple"
)

// PartitionSpec selects one hash partition of the generated data set.
// The zero Count (or a nil *PartitionSpec) means "everything".
type PartitionSpec struct {
	// Index is the partition to keep, in [0, Count).
	Index int
	// Count is the total number of partitions.
	Count int
}

func (p *PartitionSpec) validate() error {
	if p == nil {
		return nil
	}
	if p.Count < 1 {
		return fmt.Errorf("workload: partition count %d < 1", p.Count)
	}
	if p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("workload: partition index %d out of range [0,%d)", p.Index, p.Count)
	}
	return nil
}

// owns reports whether the spec keeps a row with the given partition-key
// value. A nil spec keeps everything.
func (p *PartitionSpec) owns(key int64) bool {
	return p == nil || p.Count <= 1 || PartitionOf(key, p.Count) == p.Index
}

// FNV-1a, the stdlib hash/fnv constants. Inlined so the routing decision
// is a handful of integer ops with no allocation per row.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PartitionOf maps an integer partition-key value to a shard in
// [0, parts). It hashes the key's 8 little-endian bytes with FNV-1a
// rather than taking key % parts directly: the workload's keys are dense
// sequential integers, and a modulo scheme would stripe co-resident rows
// pathologically (e.g. every r-th customer on the same shard).
func PartitionOf(key int64, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	k := uint64(key)
	for i := 0; i < 8; i++ {
		h ^= k & 0xff
		h *= fnvPrime64
		k >>= 8
	}
	return int(h % uint64(parts))
}

// PartitionOfValue routes a tuple value: ints hash their value, strings
// hash their bytes, floats hash their IEEE bits. Fleet inserts route
// through this so user tables can partition on any column type.
func PartitionOfValue(v tuple.Value, parts int) int {
	if parts <= 1 {
		return 0
	}
	switch v.Kind {
	case tuple.String:
		h := uint64(fnvOffset64)
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= fnvPrime64
		}
		return int(h % uint64(parts))
	case tuple.Float:
		return PartitionOf(int64(math.Float64bits(v.F)), parts)
	default:
		return PartitionOf(v.I, parts)
	}
}

// PartitionKeys returns the partition-key column of every paper table.
func PartitionKeys() map[string]string {
	return map[string]string{
		"customer":         "custkey",
		"orders":           "custkey", // co-partitioned with customer
		"lineitem":         "orderkey",
		"customer_subset1": "custkey",
		"customer_subset2": "custkey",
	}
}

// tableGen is one relation's deterministic row stream: n rows, the i-th
// row's partition-key value, and the i-th row itself. The row closures
// share one *rand.Rand, so callers must drain tables in slice order and
// rows in index order — exactly what Load has always done.
type tableGen struct {
	name   string
	schema *tuple.Schema
	n      int
	key    func(i int) int64
	row    func(i int) tuple.Tuple
}

// generators returns the five relations' row streams in load order. The
// caller owns rng; cfg must already have defaults applied.
func (cfg Config) generators(rng *rand.Rand) []tableGen {
	ncust := int(float64(BaseCustomers) * cfg.Scale)
	if ncust < nations {
		ncust = nations
	}
	orderCust := orderCustkeys(ncust, cfg.CorrelatedOrders)
	nline := len(orderCust) * LinesPerOrder

	gens := []tableGen{
		{
			name:   "customer",
			schema: CustomerSchema(),
			n:      ncust,
			key:    func(i int) int64 { return int64(i) },
			row:    func(i int) tuple.Tuple { return customerRow(i, rng) },
		},
		{
			name:   "orders",
			schema: OrdersSchema(),
			n:      len(orderCust),
			key:    func(i int) int64 { return orderCust[i] },
			row:    func(i int) tuple.Tuple { return orderRow(i, orderCust[i], rng) },
		},
		{
			name:   "lineitem",
			schema: LineitemSchema(),
			n:      nline,
			key:    func(i int) int64 { return int64(i / LinesPerOrder) },
			row:    func(i int) tuple.Tuple { return lineitemRow(i, rng) },
		},
	}
	for _, name := range []string{"customer_subset1", "customer_subset2"} {
		gens = append(gens, tableGen{
			name:   name,
			schema: CustomerSchema(),
			n:      cfg.SubsetRows,
			key:    func(i int) int64 { return int64(i) },
			row:    func(i int) tuple.Tuple { return customerRow(i, rng) },
		})
	}
	return gens
}

// Hash-partitioned table files: the interchange format between
// `datagen -partitions N` and fleet shard bootstrap.
//
// One file per (table, partition), named <table>.p<index>.tbl. The first
// line is a JSON header describing the table, partition, and schema; each
// subsequent line is one row as a JSON array in schema column order. JSON
// keeps the format stdlib-only and self-describing; the files are a
// bootstrap path, not a storage engine, so write amplification is fine.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"progressdb/internal/catalog"
	"progressdb/internal/tuple"
)

// FileHeader is the first line of a partition file.
type FileHeader struct {
	Table      string `json:"table"`
	Partition  int    `json:"partition"`
	Partitions int    `json:"partitions"`
	// Key is the partition-key column the rows were hashed on.
	Key     string       `json:"key"`
	Columns []FileColumn `json:"columns"`
	Rows    int          `json:"rows"`
}

// FileColumn is one schema column in a FileHeader.
type FileColumn struct {
	Name string `json:"name"`
	Type string `json:"type"` // INT, FLOAT, or TEXT (tuple.Type.String)
}

// PartitionFileName returns the on-disk name for one table partition.
func PartitionFileName(table string, index int) string {
	return fmt.Sprintf("%s.p%d.tbl", table, index)
}

// WritePartitionFiles generates the full data set once (same seed, same
// row order as Load) and splits every table into parts hash-partitioned
// files under dir. It returns the full-dataset counts.
func WritePartitionFiles(dir string, cfg Config, parts int) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if parts < 1 {
		return nil, fmt.Errorf("workload: partitions %d < 1", parts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := PartitionKeys()

	ds := &Dataset{Config: cfg}
	for _, g := range cfg.generators(rng) {
		counts, err := writeTableFiles(dir, g, keys[g.name], parts)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		switch g.name {
		case "customer":
			ds.Customers = total
		case "orders":
			ds.Orders = total
		case "lineitem":
			ds.Lineitems = total
		case "customer_subset1":
			ds.Subset = total
		}
	}
	return ds, nil
}

// writeTableFiles drains one generator into parts files. Rows are
// buffered per partition and the header (which records the row count) is
// written first, so readers can preallocate and validate truncation.
func writeTableFiles(dir string, g tableGen, key string, parts int) ([]int, error) {
	bufs := make([][]json.RawMessage, parts)
	for i := 0; i < g.n; i++ {
		row := g.row(i)
		p := PartitionOf(g.key(i), parts)
		enc, err := encodeRow(row)
		if err != nil {
			return nil, fmt.Errorf("workload: encode %s row %d: %w", g.name, i, err)
		}
		bufs[p] = append(bufs[p], enc)
	}

	counts := make([]int, parts)
	for p := 0; p < parts; p++ {
		counts[p] = len(bufs[p])
		hdr := FileHeader{
			Table:      g.name,
			Partition:  p,
			Partitions: parts,
			Key:        key,
			Rows:       len(bufs[p]),
		}
		for _, c := range g.schema.Cols {
			hdr.Columns = append(hdr.Columns, FileColumn{Name: c.Name, Type: c.Type.String()})
		}
		if err := writeOneFile(filepath.Join(dir, PartitionFileName(g.name, p)), hdr, bufs[p]); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

func writeOneFile(path string, hdr FileHeader, rows []json.RawMessage) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	hb, err := json.Marshal(hdr)
	if err == nil {
		_, err = w.Write(append(hb, '\n'))
	}
	for _, r := range rows {
		if err != nil {
			break
		}
		if _, err = w.Write(r); err == nil {
			err = w.WriteByte('\n')
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("workload: write %s: %w", path, err)
	}
	return nil
}

// encodeRow renders a tuple as a JSON array in column order.
func encodeRow(row tuple.Tuple) (json.RawMessage, error) {
	vals := make([]interface{}, len(row))
	for i, v := range row {
		switch v.Kind {
		case tuple.Int:
			vals[i] = v.I
		case tuple.Float:
			vals[i] = v.F
		default:
			vals[i] = v.S
		}
	}
	return json.Marshal(vals)
}

// ReadPartitionFile loads one partition file. The returned rows are in
// file order (which is generation order).
func ReadPartitionFile(path string) (*FileHeader, []tuple.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("workload: read %s: %w", path, err)
		}
		return nil, nil, fmt.Errorf("workload: %s: empty partition file", path)
	}
	var hdr FileHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, fmt.Errorf("workload: %s: bad header: %w", path, err)
	}
	types := make([]tuple.Type, len(hdr.Columns))
	for i, c := range hdr.Columns {
		switch strings.ToUpper(c.Type) {
		case "INT":
			types[i] = tuple.Int
		case "FLOAT":
			types[i] = tuple.Float
		case "TEXT":
			types[i] = tuple.String
		default:
			return nil, nil, fmt.Errorf("workload: %s: unknown column type %q", path, c.Type)
		}
	}

	rows := make([]tuple.Tuple, 0, hdr.Rows)
	line := 1
	for sc.Scan() {
		line++
		row, err := decodeFileRow(sc.Bytes(), types)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: %s line %d: %w", path, line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("workload: read %s: %w", path, err)
	}
	if len(rows) != hdr.Rows {
		return nil, nil, fmt.Errorf("workload: %s: header promises %d rows, file has %d (truncated?)", path, hdr.Rows, len(rows))
	}
	return &hdr, rows, nil
}

// decodeFileRow parses one JSON-array line against the header's column
// types. json.Number round-trips int64 exactly where float64 would not.
func decodeFileRow(b []byte, types []tuple.Type) (tuple.Tuple, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.UseNumber()
	var raw []interface{}
	if err := dec.Decode(&raw); err != nil {
		return nil, err
	}
	if len(raw) != len(types) {
		return nil, fmt.Errorf("row has %d values, schema has %d columns", len(raw), len(types))
	}
	row := make(tuple.Tuple, len(raw))
	for i, rv := range raw {
		switch types[i] {
		case tuple.Int:
			n, ok := rv.(json.Number)
			if !ok {
				return nil, fmt.Errorf("column %d: expected number, got %T", i, rv)
			}
			v, err := n.Int64()
			if err != nil {
				return nil, fmt.Errorf("column %d: %w", i, err)
			}
			row[i] = tuple.NewInt(v)
		case tuple.Float:
			n, ok := rv.(json.Number)
			if !ok {
				return nil, fmt.Errorf("column %d: expected number, got %T", i, rv)
			}
			v, err := n.Float64()
			if err != nil {
				return nil, fmt.Errorf("column %d: %w", i, err)
			}
			row[i] = tuple.NewFloat(v)
		default:
			s, ok := rv.(string)
			if !ok {
				return nil, fmt.Errorf("column %d: expected string, got %T", i, rv)
			}
			row[i] = tuple.NewString(s)
		}
	}
	return row, nil
}

// PartitionHeaders reads only the header line of every *.p<index>.tbl
// file in dir — enough for a coordinator to learn table names, schemas,
// and partition keys without streaming the rows.
func PartitionHeaders(dir string, index int) ([]FileHeader, error) {
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("*.p%d.tbl", index)))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("workload: no *.p%d.tbl files in %s", index, dir)
	}
	var out []FileHeader
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		var hdr FileHeader
		if !sc.Scan() {
			err = sc.Err()
			if err == nil {
				err = fmt.Errorf("workload: %s: empty partition file", path)
			}
		} else {
			err = json.Unmarshal(sc.Bytes(), &hdr)
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("workload: %s: bad header: %w", path, err)
		}
		out = append(out, hdr)
	}
	return out, nil
}

// LoadPartitionFiles bootstraps one shard's catalog from the partition
// files in dir: every table whose .p<index>.tbl file exists is created,
// filled, and analyzed. It returns the partition count recorded in the
// headers so callers can validate it against their shard topology.
func LoadPartitionFiles(cat *catalog.Catalog, dir string, index int) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("*.p%d.tbl", index)))
	if err != nil {
		return 0, err
	}
	if len(matches) == 0 {
		return 0, fmt.Errorf("workload: no *.p%d.tbl files in %s", index, dir)
	}
	parts := 0
	for _, path := range matches {
		hdr, rows, err := ReadPartitionFile(path)
		if err != nil {
			return 0, err
		}
		if hdr.Partition != index {
			return 0, fmt.Errorf("workload: %s: header partition %d, want %d", path, hdr.Partition, index)
		}
		if parts == 0 {
			parts = hdr.Partitions
		} else if hdr.Partitions != parts {
			return 0, fmt.Errorf("workload: %s: header partitions %d disagrees with %d", path, hdr.Partitions, parts)
		}
		cols := make([]tuple.Column, len(hdr.Columns))
		for i, c := range hdr.Columns {
			switch strings.ToUpper(c.Type) {
			case "INT":
				cols[i] = tuple.Column{Name: c.Name, Type: tuple.Int}
			case "FLOAT":
				cols[i] = tuple.Column{Name: c.Name, Type: tuple.Float}
			default:
				cols[i] = tuple.Column{Name: c.Name, Type: tuple.String}
			}
		}
		t, err := cat.CreateTable(hdr.Table, tuple.NewSchema(cols...))
		if err != nil {
			return 0, err
		}
		for _, row := range rows {
			if err := cat.Insert(t, row); err != nil {
				return 0, err
			}
		}
		if err := t.Heap.Sync(); err != nil {
			return 0, err
		}
	}
	if err := cat.AnalyzeAll(); err != nil {
		return 0, err
	}
	return parts, nil
}

package workload

import (
	"path/filepath"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func newCat() *catalog.Catalog {
	clock := vclock.New(vclock.DefaultCosts(), nil)
	return catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))
}

// tableMultiset returns every encoded row of a table, as a count map (the
// multiset comparison the acceptance criteria phrase things in).
func tableMultiset(t *testing.T, cat *catalog.Catalog, name string) map[string]int {
	t.Helper()
	tb, err := cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	sc := tb.Heap.NewScanner()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		out[string(rec)]++
	}
	return out
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

var paperTables = []string{"customer", "orders", "lineitem", "customer_subset1", "customer_subset2"}

// The union of the N partitions must be exactly the unpartitioned data
// set, table by table — this is what makes a fleet query's input equal a
// single engine's.
func TestPartitionUnionEqualsFull(t *testing.T) {
	base := Config{Scale: 0.002, SubsetRows: 40, Seed: 3}
	full, _ := load(t, base)

	const parts = 4
	var shards []*catalog.Catalog
	loaded := map[string]int{}
	for p := 0; p < parts; p++ {
		cfg := base
		cfg.Partition = &PartitionSpec{Index: p, Count: parts}
		cat, ds := load(t, cfg)
		shards = append(shards, cat)
		loaded["customer"] += ds.Customers
		loaded["orders"] += ds.Orders
		loaded["lineitem"] += ds.Lineitems
	}

	for _, name := range paperTables {
		want := tableMultiset(t, full, name)
		got := map[string]int{}
		for _, cat := range shards {
			for rec, n := range tableMultiset(t, cat, name) {
				got[rec] += n
			}
		}
		if !sameMultiset(want, got) {
			t.Errorf("%s: union of %d partitions differs from full data set", name, parts)
		}
	}
	if loaded["orders"] != 300*OrdersPerCust {
		t.Errorf("partition order counts sum to %d, want %d", loaded["orders"], 300*OrdersPerCust)
	}

	// Co-partitioning: every order must land on the shard of its customer.
	for p, cat := range shards {
		tb, _ := cat.Table("orders")
		sc := tb.Heap.NewScanner()
		for {
			rec, _, ok := sc.Next()
			if !ok {
				break
			}
			row, err := tuple.Decode(rec, OrdersSchema().Arity())
			if err != nil {
				t.Fatal(err)
			}
			if PartitionOf(row[1].I, parts) != p {
				t.Fatalf("order with custkey %d on shard %d, want %d", row[1].I, p, PartitionOf(row[1].I, parts))
			}
		}
	}
}

func TestPartitionSpecValidate(t *testing.T) {
	cat := newCat()
	if _, err := Load(cat, Config{Scale: 0.002, SubsetRows: 10, Partition: &PartitionSpec{Index: 4, Count: 4}}); err == nil {
		t.Fatal("out-of-range partition index accepted")
	}
	if _, err := Load(newCat(), Config{Scale: 0.002, SubsetRows: 10, Partition: &PartitionSpec{Index: 0, Count: 0}}); err == nil {
		t.Fatal("zero partition count accepted")
	}
}

func TestPartitionOfProperties(t *testing.T) {
	const parts = 4
	counts := make([]int, parts)
	for k := int64(0); k < 4000; k++ {
		p := PartitionOf(k, parts)
		if p < 0 || p >= parts {
			t.Fatalf("PartitionOf(%d, %d) = %d out of range", k, parts, p)
		}
		if p != PartitionOf(k, parts) {
			t.Fatalf("PartitionOf(%d) not deterministic", k)
		}
		counts[p]++
	}
	// Dense sequential keys must spread: every shard within 2x of fair share.
	for p, n := range counts {
		if n < 4000/parts/2 || n > 4000/parts*2 {
			t.Fatalf("shard %d got %d of 4000 keys — pathological skew: %v", p, n, counts)
		}
	}
	if PartitionOf(123, 1) != 0 {
		t.Fatal("single partition must own everything")
	}
	// Value routing: ints agree with PartitionOf, strings/floats in range.
	if PartitionOfValue(tuple.NewInt(77), parts) != PartitionOf(77, parts) {
		t.Fatal("PartitionOfValue(int) disagrees with PartitionOf")
	}
	for _, v := range []tuple.Value{tuple.NewString("abc"), tuple.NewFloat(3.25)} {
		if p := PartitionOfValue(v, parts); p < 0 || p >= parts {
			t.Fatalf("PartitionOfValue(%v) = %d out of range", v, p)
		}
	}
}

// Round trip: datagen writes partition files, shard bootstrap reads them,
// and the union matches a direct full Load of the same config.
func TestPartitionFilesRoundTrip(t *testing.T) {
	base := Config{Scale: 0.002, SubsetRows: 25, Seed: 11}
	dir := t.TempDir()

	const parts = 3
	ds, err := WritePartitionFiles(dir, base, parts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Customers != 300 || ds.Orders != 3000 {
		t.Fatalf("writer dataset counts = %d customers / %d orders, want 300/3000", ds.Customers, ds.Orders)
	}

	hdr, rows, err := ReadPartitionFile(filepath.Join(dir, PartitionFileName("orders", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Key != "custkey" || hdr.Partitions != parts || hdr.Rows != len(rows) {
		t.Fatalf("orders header = %+v (%d rows)", hdr, len(rows))
	}

	full, _ := load(t, base)
	union := map[string]map[string]int{}
	for p := 0; p < parts; p++ {
		cat := newCat()
		gotParts, err := LoadPartitionFiles(cat, dir, p)
		if err != nil {
			t.Fatal(err)
		}
		if gotParts != parts {
			t.Fatalf("LoadPartitionFiles reports %d partitions, want %d", gotParts, parts)
		}
		for _, name := range paperTables {
			if union[name] == nil {
				union[name] = map[string]int{}
			}
			for rec, n := range tableMultiset(t, cat, name) {
				union[name][rec] += n
			}
		}
	}
	for _, name := range paperTables {
		if !sameMultiset(tableMultiset(t, full, name), union[name]) {
			t.Errorf("%s: file-bootstrapped union differs from direct Load", name)
		}
	}

	if _, err := LoadPartitionFiles(newCat(), dir, parts); err == nil {
		t.Fatal("missing partition index must error")
	}
}

package workload

import (
	"math"
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

func load(t *testing.T, cfg Config) (*catalog.Catalog, *Dataset) {
	t.Helper()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))
	ds, err := Load(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cat, ds
}

func TestCardinalitiesAndFanouts(t *testing.T) {
	cat, ds := load(t, Config{Scale: 0.002, SubsetRows: 50})
	if ds.Customers != 300 {
		t.Fatalf("customers = %d, want 300", ds.Customers)
	}
	if ds.Orders != ds.Customers*OrdersPerCust {
		t.Fatalf("orders = %d, want 10x customers", ds.Orders)
	}
	if ds.Lineitems != ds.Orders*LinesPerOrder {
		t.Fatalf("lineitems = %d, want 4x orders", ds.Lineitems)
	}
	for name, want := range map[string]int64{
		"customer": 300, "orders": 3000, "lineitem": 12000,
		"customer_subset1": 50, "customer_subset2": 50,
	} {
		tb, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Heap.Len() != want {
			t.Fatalf("%s: %d rows, want %d", name, tb.Heap.Len(), want)
		}
		if tb.Stats == nil {
			t.Fatalf("%s not analyzed", name)
		}
	}
}

// Row widths must land near Table 1's: customer ≈153B, orders ≈76B,
// lineitem ≈126B (within 10%).
func TestTable1Widths(t *testing.T) {
	cat, _ := load(t, Config{Scale: 0.002, SubsetRows: 10})
	want := map[string]float64{
		"customer": 23e6 / 150000.0,
		"orders":   114e6 / 1.5e6,
		"lineitem": 755e6 / 6e6,
	}
	for name, w := range want {
		tb, _ := cat.Table(name)
		got := tb.Stats.AvgWidth
		if math.Abs(got-w)/w > 0.10 {
			t.Errorf("%s width = %.1fB, want %.1fB ±10%%", name, got, w)
		}
	}
}

func TestUniformFanoutExactly10(t *testing.T) {
	cat, _ := load(t, Config{Scale: 0.002, SubsetRows: 10})
	orders, _ := cat.Table("orders")
	counts := map[int64]int{}
	sc := orders.Heap.NewScanner()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		row, err := decodeRow(rec, OrdersSchema().Arity())
		if err != nil {
			t.Fatal(err)
		}
		counts[row[1].I]++
	}
	for ck, n := range counts {
		if n != OrdersPerCust {
			t.Fatalf("custkey %d has %d orders, want %d", ck, n, OrdersPerCust)
		}
	}
}

func TestCorrelatedOrdersFanout(t *testing.T) {
	cat, ds := load(t, Config{Scale: 0.002, SubsetRows: 10, CorrelatedOrders: true})
	// Average fanout stays 10 → same total order count.
	if ds.Orders != ds.Customers*OrdersPerCust {
		t.Fatalf("correlated orders = %d, want %d", ds.Orders, ds.Customers*OrdersPerCust)
	}
	orders, _ := cat.Table("orders")
	counts := map[int64]int{}
	sc := orders.Heap.NewScanner()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		row, err := decodeRow(rec, OrdersSchema().Arity())
		if err != nil {
			t.Fatal(err)
		}
		counts[row[1].I]++
	}
	for c := 0; c < ds.Customers; c++ {
		want := 0
		switch nation := c % 25; {
		case nation < 10:
			want = 20
		case nation < 20:
			want = 0
		default:
			want = 10
		}
		if counts[int64(c)] != want {
			t.Fatalf("correlated custkey %d (nation %d): %d orders, want %d",
				c, c%25, counts[int64(c)], want)
		}
	}
}

func TestPartkeyAlwaysPositive(t *testing.T) {
	cat, _ := load(t, Config{Scale: 0.002, SubsetRows: 10})
	li, _ := cat.Table("lineitem")
	sc := li.Heap.NewScanner()
	for {
		rec, _, ok := sc.Next()
		if !ok {
			break
		}
		row, err := decodeRow(rec, LineitemSchema().Arity())
		if err != nil {
			t.Fatal(err)
		}
		if row[1].I <= 0 {
			t.Fatalf("partkey %d not positive: absolute(partkey)>0 must be selectivity 1", row[1].I)
		}
	}
}

func TestQueriesParse(t *testing.T) {
	for q := 1; q <= 5; q++ {
		sql, err := QuerySQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sqlparser.Parse(sql); err != nil {
			t.Fatalf("Q%d does not parse: %v", q, err)
		}
	}
	if _, err := QuerySQL(6); err == nil {
		t.Fatal("Q6 must not exist")
	}
}

func TestTable1Rendering(t *testing.T) {
	cat, ds := load(t, Config{Scale: 0.002, SubsetRows: 10})
	s, err := ds.Table1(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"customer", "orders", "lineitem", "customer_subset1", "number of tuples"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cat1, _ := load(t, Config{Scale: 0.002, SubsetRows: 10, Seed: 7})
	cat2, _ := load(t, Config{Scale: 0.002, SubsetRows: 10, Seed: 7})
	t1, _ := cat1.Table("lineitem")
	t2, _ := cat2.Table("lineitem")
	s1 := t1.Heap.NewScanner()
	s2 := t2.Heap.NewScanner()
	for {
		r1, _, ok1 := s1.Next()
		r2, _, ok2 := s2.Next()
		if ok1 != ok2 {
			t.Fatal("different row counts")
		}
		if !ok1 {
			break
		}
		if string(r1) != string(r2) {
			t.Fatal("same seed produced different rows")
		}
	}
}

// decodeRow is a tiny test helper around tuple.Decode.
func decodeRow(rec []byte, arity int) (tuple.Tuple, error) {
	return tuple.Decode(rec, arity)
}

package optimizer

import (
	"fmt"
	"math"

	"progressdb/internal/catalog"
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/sqlparser"
	"progressdb/internal/stats"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
)

// Options control plan selection.
type Options struct {
	// WorkMemPages is the per-operator memory budget in pages, used by
	// the cost model to predict hash-join spills and sort runs. Default
	// 2048 (16 MiB).
	WorkMemPages int
	// ForceJoinAlgo forces every join to one algorithm where valid:
	// "hash", "nl", or "merge". Empty means cost-based choice. Used by
	// tests and by the sort-merge-join experiment (the paper describes
	// SMJ progress handling but left it out of its prototype).
	ForceJoinAlgo string
	// DisableIndexScan restricts base access to table scans.
	DisableIndexScan bool
	// RandFactor is the assumed cost ratio of random to sequential page
	// I/O for access-path choice. Default 8.
	RandFactor float64
}

func (o Options) withDefaults() Options {
	if o.WorkMemPages <= 0 {
		o.WorkMemPages = 2048
	}
	if o.RandFactor <= 0 {
		o.RandFactor = 8
	}
	return o
}

// workMemBytes is the memory budget in bytes.
func (o Options) workMemBytes() float64 {
	return float64(o.WorkMemPages) * storage.PageSize
}

// Plan compiles stmt into a physical plan.
func Plan(cat *catalog.Catalog, stmt *sqlparser.SelectStmt, opt Options) (plan.Node, error) {
	opt = opt.withDefaults()
	bq, err := bind(cat, stmt)
	if err != nil {
		return nil, err
	}
	o := &planner{bq: bq, opt: opt}
	return o.run()
}

// dpEntry is one memoized subplan: the plan node, the global column index
// behind each schema position, and the choice cost (U bytes, with a
// random-I/O penalty applied to index scans).
type dpEntry struct {
	node plan.Node
	cols []int
	cost float64
}

func (e *dpEntry) posOf(global int) int {
	for i, g := range e.cols {
		if g == global {
			return i
		}
	}
	return -1
}

// remap rewrites a global-index expression to this entry's schema positions.
func (e *dpEntry) remap(x expr.Expr) (expr.Expr, error) {
	m := make(map[int]int, len(e.cols))
	for i, g := range e.cols {
		m[g] = i
	}
	return expr.Remap(x, m)
}

type planner struct {
	bq  *boundQuery
	opt Options
}

func (p *planner) run() (plan.Node, error) {
	best, err := p.joinDP()
	if err != nil {
		return nil, err
	}
	// Apply semi-joins for subqueries before projection/aggregation:
	// EXISTS/IN filter rows, so they act at the joined-row level.
	for _, spec := range p.bq.subqueries {
		best, err = p.applySemiJoin(best, spec)
		if err != nil {
			return nil, err
		}
	}
	var node plan.Node
	if p.bq.hasAgg {
		node, err = p.buildAggregate(best)
	} else {
		node, err = p.finalize(best)
	}
	if err != nil {
		return nil, err
	}
	return p.orderLimit(node)
}

// joinDP enumerates left-deep join orders over the query's tables and
// returns the cheapest full plan entry.
func (p *planner) joinDP() (*dpEntry, error) {
	n := len(p.bq.tables)
	full := uint32(1<<uint(n)) - 1

	// Columns needed above the base level: the select list, every column
	// referenced by a multi-table conjunct, and any outer columns that
	// correlated subqueries compare against.
	need := map[int]bool{}
	for _, g := range p.bq.selectCols {
		need[g] = true
	}
	for _, c := range p.bq.conjuncts {
		if bits(c.tables) >= 2 {
			for _, g := range expr.ColumnsUsed(c.e) {
				need[g] = true
			}
		}
	}
	for _, g := range p.bq.subqueryOuterCols() {
		need[g] = true
	}

	dp := make(map[uint32]*dpEntry)
	for i, ts := range p.bq.tables {
		e, err := p.accessPath(ts, need)
		if err != nil {
			return nil, err
		}
		dp[1<<uint(i)] = e
	}

	// Left-deep enumeration: extend each subset with one base table.
	// Subsets are visited in numeric order so that cost ties always break
	// the same way — plan choice must be deterministic (the virtual clock
	// makes whole experiments reproducible only if plans are).
	for size := 1; size < n; size++ {
		for s := uint32(1); s <= full; s++ {
			left, ok := dp[s]
			if !ok || bits(s) != size {
				continue
			}
			for r := 0; r < n; r++ {
				rm := uint32(1 << uint(r))
				if s&rm != 0 {
					continue
				}
				right := dp[rm]
				cand, err := p.joinCandidates(s, left, rm, right, need)
				if err != nil {
					return nil, err
				}
				key := s | rm
				for _, c := range cand {
					if best, ok := dp[key]; !ok || c.cost < best.cost {
						dp[key] = c
					}
				}
			}
		}
	}

	best, ok := dp[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: no plan found (unsupported join structure)")
	}
	return best, nil
}

// outputPos returns the position of a global column in the final output,
// or -1 (aggregate outputs have no global column).
func (p *planner) outputPos(global int) int {
	if len(p.bq.items) == 0 { // SELECT *
		return global
	}
	for i, it := range p.bq.items {
		if it.agg == "" && it.col == global {
			return i
		}
	}
	return -1
}

// orderLimit applies ORDER BY (a top-level Sort — one more blocking
// segment, handled by the progress indicator like any other) and LIMIT.
func (p *planner) orderLimit(node plan.Node) (plan.Node, error) {
	if len(p.bq.orderBy) > 0 {
		keys := make([]plan.SortKey, len(p.bq.orderBy))
		for i, o := range p.bq.orderBy {
			pos := p.outputPos(o.col)
			if pos < 0 {
				return nil, fmt.Errorf("optimizer: ORDER BY column %s must appear in the select list",
					p.bq.global.Cols[o.col].Name)
			}
			keys[i] = plan.SortKey{Col: pos, Desc: o.desc}
		}
		node = &plan.Sort{Child: node, Keys: keys, OutEst: node.Est()}
	}
	if p.bq.limit != nil {
		n := *p.bq.limit
		card := math.Min(node.Est().Card, float64(n))
		node = &plan.Limit{Child: node, N: n, OutEst: plan.Est{Card: card, Width: node.Est().Width}}
	}
	return node, nil
}

// buildAggregate wraps the join result in a HashAgg and reorders its
// output to the select list.
func (p *planner) buildAggregate(e *dpEntry) (plan.Node, error) {
	bq := p.bq
	// Project the join output to [group columns..., aggregate args...]
	// (bq.selectCols is already deduplicated in that order).
	child, err := p.projectTo(e, bq.selectCols)
	if err != nil {
		return nil, err
	}

	groupPos := make([]int, len(bq.groupBy))
	for i, g := range bq.groupBy {
		groupPos[i] = child.posOf(g)
	}
	var aggs []plan.AggSpec
	var aggItems []boundItem
	for _, it := range bq.items {
		if it.agg == "" {
			continue
		}
		col := -1
		if !it.aggStar {
			col = child.posOf(it.col)
		}
		aggs = append(aggs, plan.AggSpec{Kind: plan.AggKind(it.agg), Col: col})
		aggItems = append(aggItems, it)
	}

	// Estimated group count: product of grouping-column NDVs, capped by
	// the input cardinality (1 for a global aggregate).
	groups := 1.0
	for _, g := range bq.groupBy {
		if cs := bq.colStatsFor(g); cs != nil && cs.NDV > 0 {
			groups *= float64(cs.NDV)
		} else {
			groups *= 100
		}
	}
	groups = math.Min(groups, math.Max(1, child.node.Est().Card))

	// Output schema: group columns then aggregates.
	sch := &tuple.Schema{}
	width := 0.0
	for _, g := range bq.groupBy {
		sch.Cols = append(sch.Cols, bq.global.Cols[g])
		width += bq.colWidth(g)
	}
	for i, sp := range aggs {
		typ := tuple.Float
		switch sp.Kind {
		case plan.AggCount:
			typ = tuple.Int
		case plan.AggMin, plan.AggMax:
			if sp.Col >= 0 {
				typ = child.node.Schema().Cols[sp.Col].Type
			}
		}
		sch.Cols = append(sch.Cols, tuple.Column{Name: aggItems[i].name, Type: typ})
		width += 9
	}

	agg := &plan.HashAgg{
		Child:     child.node,
		GroupCols: groupPos,
		Aggs:      aggs,
		GroupsEst: groups,
		Sch:       sch,
		OutEst:    plan.Est{Card: groups, Width: width},
	}

	// Reorder to the select list: position of each item in agg output.
	keep := make([]int, len(bq.items))
	outSch := &tuple.Schema{Cols: make([]tuple.Column, len(bq.items))}
	identity := true
	aggIdx := 0
	for i, it := range bq.items {
		if it.agg == "" {
			pos := -1
			for gi, g := range bq.groupBy {
				if g == it.col {
					pos = gi
					break
				}
			}
			keep[i] = pos
		} else {
			keep[i] = len(bq.groupBy) + aggIdx
			aggIdx++
		}
		outSch.Cols[i] = sch.Cols[keep[i]]
		if keep[i] != i {
			identity = false
		}
	}
	if identity && len(bq.items) == sch.Arity() {
		return agg, nil
	}
	return &plan.Project{
		Child:  agg,
		Cols:   keep,
		Sch:    outSch,
		OutEst: plan.Est{Card: groups, Width: width},
	}, nil
}

// accessPath builds the best base access for one table, applying its
// single-table predicates and projecting to needed columns.
func (p *planner) accessPath(ts *tableSource, need map[int]bool) (*dpEntry, error) {
	rows := float64(ts.tbl.Heap.Len())
	width := 64.0
	if ts.tbl.Stats != nil {
		rows = float64(ts.tbl.Stats.RowCount)
		width = ts.tbl.Stats.AvgWidth
	}
	cols := make([]int, ts.tbl.Schema.Arity())
	for i := range cols {
		cols[i] = ts.offset + i
	}

	// Single-table conjuncts for this table.
	var preds []*conjunct
	for _, c := range p.bq.conjuncts {
		if c.tables == 1<<uint(ts.idx) {
			preds = append(preds, c)
		}
	}

	// Default: sequential scan.
	scan := &plan.SeqScan{
		Table:  ts.tbl,
		Alias:  ts.binding(),
		OutEst: plan.Est{Card: rows, Width: width},
	}
	entry := &dpEntry{node: scan, cols: cols, cost: rows * width}

	// Index-scan alternative: a range or equality predicate on an
	// indexed column, costed with the random-I/O penalty.
	if !p.opt.DisableIndexScan {
		if alt := p.indexPath(ts, preds, cols, rows, width); alt != nil && alt.cost < entry.cost {
			entry = alt
			// The predicate used for the index range is still applied as
			// a filter below (it is included in preds); re-filtering is
			// harmless and keeps selectivity accounting uniform.
		}
	}

	// Apply filters.
	if len(preds) > 0 {
		terms := make([]expr.Expr, 0, len(preds))
		sel := 1.0
		for _, c := range preds {
			t, err := entry.remap(c.e)
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
			sel *= p.singleTableSel(ts, c)
		}
		f := &plan.Filter{
			Child: entry.node,
			Pred:  expr.Conjoin(terms),
			Sel:   sel,
			OutEst: plan.Est{
				Card:  entry.node.Est().Card * sel,
				Width: entry.node.Est().Width,
			},
		}
		entry = &dpEntry{node: f, cols: entry.cols, cost: entry.cost}
	}

	return p.project(entry, need), nil
}

// indexPath returns an index-scan entry if one of the predicates is a
// col-op-const range on an indexed column and the estimated cost beats a
// sequential scan.
func (p *planner) indexPath(ts *tableSource, preds []*conjunct, cols []int, rows, width float64) *dpEntry {
	for _, c := range preds {
		cmp, ok := c.e.(*expr.Cmp)
		if !ok || expr.ContainsFunc(c.e) {
			continue
		}
		col, cnst, op := matchColConst(cmp)
		if col == nil || cnst.Kind != tuple.Int {
			continue
		}
		ci := col.Index - ts.offset
		if ci < 0 || ci >= ts.tbl.Schema.Arity() {
			continue
		}
		ix := ts.tbl.IndexOn(ts.tbl.Schema.Cols[ci].Name)
		if ix == nil {
			continue
		}
		var lo, hi *int64
		v := cnst.I
		switch op {
		case expr.EQ:
			lo, hi = &v, &v
		case expr.LT:
			x := v - 1
			hi = &x
		case expr.LE:
			hi = &v
		case expr.GT:
			x := v + 1
			lo = &x
		case expr.GE:
			lo = &v
		default:
			continue
		}
		var sel float64 = stats.DefaultIneqSel
		if ts.tbl.Stats != nil {
			local, err := expr.Remap(c.e, offsetMap(ts))
			if err == nil {
				sel = stats.PredicateSelectivity(local, ts.tbl.Schema, ts.tbl.Stats)
			}
		}
		scan := &plan.IndexScan{
			Table:  ts.tbl,
			Alias:  ts.binding(),
			Index:  ix,
			Lo:     lo,
			Hi:     hi,
			Sel:    sel,
			OutEst: plan.Est{Card: rows * sel, Width: width},
		}
		// One random page fetch per matching tuple.
		cost := rows * sel * storage.PageSize * p.opt.RandFactor
		return &dpEntry{node: scan, cols: cols, cost: cost}
	}
	return nil
}

func offsetMap(ts *tableSource) map[int]int {
	m := make(map[int]int, ts.tbl.Schema.Arity())
	for i := 0; i < ts.tbl.Schema.Arity(); i++ {
		m[ts.offset+i] = i
	}
	return m
}

func matchColConst(c *expr.Cmp) (*expr.ColRef, tuple.Value, expr.CmpOp) {
	if col, ok := c.L.(*expr.ColRef); ok {
		if k, ok2 := c.R.(*expr.Const); ok2 {
			return col, k.V, c.Op
		}
	}
	if col, ok := c.R.(*expr.ColRef); ok {
		if k, ok2 := c.L.(*expr.Const); ok2 {
			op := c.Op
			switch c.Op {
			case expr.LT:
				op = expr.GT
			case expr.LE:
				op = expr.GE
			case expr.GT:
				op = expr.LT
			case expr.GE:
				op = expr.LE
			}
			return col, k.V, op
		}
	}
	return nil, tuple.Value{}, 0
}

// singleTableSel estimates a single-table conjunct's selectivity.
func (p *planner) singleTableSel(ts *tableSource, c *conjunct) float64 {
	local, err := expr.Remap(c.e, offsetMap(ts))
	if err != nil {
		return stats.DefaultIneqSel
	}
	var tstats *stats.TableStats
	if ts.tbl.Stats != nil {
		tstats = ts.tbl.Stats
	}
	return stats.PredicateSelectivity(local, ts.tbl.Schema, tstats)
}

// joinSel estimates the selectivity of a multi-table conjunct.
func (p *planner) joinSel(c *conjunct) float64 {
	if expr.ContainsFunc(c.e) {
		return stats.DefaultFuncSel
	}
	cmp, ok := c.e.(*expr.Cmp)
	if !ok {
		return stats.DefaultIneqSel
	}
	lc, lok := cmp.L.(*expr.ColRef)
	rc, rok := cmp.R.(*expr.ColRef)
	if !lok || !rok {
		return stats.DefaultIneqSel
	}
	return stats.JoinSelectivity(cmp.Op, p.bq.colStatsFor(lc.Index), p.bq.colStatsFor(rc.Index))
}

// project narrows an entry to needed columns (keeping entry order). Never
// drops everything: if no column is needed (SELECT count-free cross
// products do not occur in this dialect) the entry is returned unchanged.
func (p *planner) project(e *dpEntry, need map[int]bool) *dpEntry {
	var keep []int
	for pos, g := range e.cols {
		if need[g] {
			keep = append(keep, pos)
		}
	}
	if len(keep) == 0 || len(keep) == len(e.cols) {
		return e
	}
	newCols := make([]int, len(keep))
	sch := &tuple.Schema{Cols: make([]tuple.Column, len(keep))}
	width := 0.0
	for i, pos := range keep {
		newCols[i] = e.cols[pos]
		sch.Cols[i] = tuple.Column{Name: p.bq.global.Cols[e.cols[pos]].Name, Type: p.bq.global.Cols[e.cols[pos]].Type}
		width += p.bq.colWidth(e.cols[pos])
	}
	proj := &plan.Project{
		Child:  e.node,
		Cols:   keep,
		Sch:    sch,
		OutEst: plan.Est{Card: e.node.Est().Card, Width: width},
	}
	return &dpEntry{node: proj, cols: newCols, cost: e.cost}
}

// joinCandidates builds all legal joins of left (covering subset s) with
// the single table entry right (mask rm).
func (p *planner) joinCandidates(s uint32, left *dpEntry, rm uint32, right *dpEntry, need map[int]bool) ([]*dpEntry, error) {
	// Conjuncts newly applicable at this join.
	var applied []*conjunct
	for _, c := range p.bq.conjuncts {
		if bits(c.tables) < 2 && c.tables != 0 {
			continue // single-table, applied at base
		}
		if c.tables&^(s|rm) != 0 {
			continue // references tables outside this subset
		}
		if c.tables&s == 0 || c.tables&rm == 0 {
			continue // does not connect left and right
		}
		applied = append(applied, c)
	}

	selProduct := 1.0
	for _, c := range applied {
		selProduct *= p.joinSel(c)
	}

	// Locate an equijoin predicate usable by hash/merge join.
	var eqConj *conjunct
	eqL, eqR := -1, -1 // global column indexes, eqL on left side
	for _, c := range applied {
		l, r, ok := expr.EquiJoinCols(c.e)
		if !ok {
			continue
		}
		switch {
		case left.posOf(l) >= 0 && right.posOf(r) >= 0:
			eqConj, eqL, eqR = c, l, r
		case left.posOf(r) >= 0 && right.posOf(l) >= 0:
			eqConj, eqL, eqR = c, r, l
		}
		if eqConj != nil {
			break
		}
	}

	outCard := selProduct * left.node.Est().Card * right.node.Est().Card
	algo := p.opt.ForceJoinAlgo

	var out []*dpEntry
	add := func(e *dpEntry, err error) error {
		if err != nil {
			return err
		}
		if e != nil {
			out = append(out, p.project(e, p.upstreamNeed(s|rm, need)))
		}
		return nil
	}

	if eqConj != nil && (algo == "" || algo == "hash") {
		// Left-deep convention (and the shape of the paper's Figure 8):
		// the accumulated side is hashed (build), the new base relation
		// streams as the probe. Orders that want the new relation hashed
		// are reachable by enumerating it earlier in the join order.
		if err := add(p.hashJoin(left, right, eqConj, eqL, eqR, applied, outCard)); err != nil {
			return nil, err
		}
	}
	if eqConj != nil && (algo == "" || algo == "merge") {
		if err := add(p.mergeJoin(left, right, eqConj, eqL, eqR, applied, outCard)); err != nil {
			return nil, err
		}
	}
	if algo == "" || algo == "nl" || len(out) == 0 {
		if err := add(p.nlJoin(left, right, applied, selProduct, outCard)); err != nil {
			return nil, err
		}
		if err := add(p.nlJoin(right, left, applied, selProduct, outCard)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// upstreamNeed is the set of columns needed above a subset: select-list
// columns plus columns of conjuncts not yet fully applied.
func (p *planner) upstreamNeed(covered uint32, base map[int]bool) map[int]bool {
	need := map[int]bool{}
	for _, g := range p.bq.selectCols {
		need[g] = true
	}
	for _, c := range p.bq.conjuncts {
		if c.tables&^covered != 0 { // not yet applied
			for _, g := range expr.ColumnsUsed(c.e) {
				need[g] = true
			}
		}
	}
	for _, g := range p.bq.subqueryOuterCols() {
		need[g] = true
	}
	_ = base
	return need
}

// concatEntry builds the joined entry metadata: schema = a ++ b.
func concatEntry(bq *boundQuery, a, b *dpEntry) (cols []int, sch *tuple.Schema) {
	cols = append(append([]int{}, a.cols...), b.cols...)
	sch = a.node.Schema().Concat(b.node.Schema())
	// Rename to global names for readability.
	out := &tuple.Schema{Cols: make([]tuple.Column, len(cols))}
	for i, g := range cols {
		out.Cols[i] = tuple.Column{Name: bq.global.Cols[g].Name, Type: sch.Cols[i].Type}
	}
	return cols, out
}

func remapOverConcat(cols []int, x expr.Expr) (expr.Expr, error) {
	m := make(map[int]int, len(cols))
	for i, g := range cols {
		m[g] = i
	}
	return expr.Remap(x, m)
}

func (p *planner) widthOf(cols []int) float64 {
	w := 0.0
	for _, g := range cols {
		w += p.bq.colWidth(g)
	}
	return w
}

func (p *planner) hashJoin(build, probe *dpEntry, eq *conjunct, eqBuildCol, eqProbeCol int, applied []*conjunct, outCard float64) (*dpEntry, error) {
	cols, sch := concatEntry(p.bq, build, probe)
	var extras []expr.Expr
	for _, c := range applied {
		if c == eq {
			continue
		}
		e, err := remapOverConcat(cols, c.e)
		if err != nil {
			return nil, err
		}
		extras = append(extras, e)
	}
	sel := outCard / math.Max(1, build.node.Est().Card*probe.node.Est().Card)
	buildBytes := build.node.Est().Bytes()
	probeBytes := probe.node.Est().Bytes()
	grace := buildBytes > p.opt.workMemBytes()

	buildNode, probeNode := build.node, probe.node
	buildKey, probeKey := build.posOf(eqBuildCol), probe.posOf(eqProbeCol)
	if grace {
		// Both sides are hash-partitioned to disk first (the paper's
		// Figure 3/8 shape on a machine whose work_mem cannot hold the
		// build side).
		buildNode = &plan.Partition{Child: build.node, Key: buildKey, OutEst: build.node.Est()}
		probeNode = &plan.Partition{Child: probe.node, Key: probeKey, OutEst: probe.node.Est()}
	}
	j := &plan.HashJoin{
		Build:     buildNode,
		Probe:     probeNode,
		Grace:     grace,
		BuildKey:  buildKey,
		ProbeKey:  probeKey,
		ExtraPred: expr.Conjoin(extras),
		Sel:       sel,
		Sch:       sch,
		OutEst:    plan.Est{Card: outCard, Width: p.widthOf(cols)},
	}
	cost := build.cost + probe.cost + hashJoinLocalCost(buildBytes, probeBytes, p.opt.workMemBytes())
	return &dpEntry{node: j, cols: cols, cost: cost}, nil
}

// hashJoinLocalCost is the U cost added by a hash join beyond its
// children. In-memory hybrid: the hash table is written once and read
// once (the paper's double counting at the build boundary). Grace: both
// partition sets are written and read once each.
func hashJoinLocalCost(buildBytes, probeBytes, memBytes float64) float64 {
	if buildBytes > memBytes {
		return 2*buildBytes + 2*probeBytes
	}
	return 2 * buildBytes
}

func (p *planner) mergeJoin(left, right *dpEntry, eq *conjunct, eqLeftCol, eqRightCol int, applied []*conjunct, outCard float64) (*dpEntry, error) {
	lSort := &plan.Sort{
		Child:  left.node,
		Keys:   []plan.SortKey{{Col: left.posOf(eqLeftCol)}},
		OutEst: left.node.Est(),
	}
	rSort := &plan.Sort{
		Child:  right.node,
		Keys:   []plan.SortKey{{Col: right.posOf(eqRightCol)}},
		OutEst: right.node.Est(),
	}
	lEntry := &dpEntry{node: lSort, cols: left.cols}
	rEntry := &dpEntry{node: rSort, cols: right.cols}
	cols, sch := concatEntry(p.bq, lEntry, rEntry)
	var extras []expr.Expr
	for _, c := range applied {
		if c == eq {
			continue
		}
		e, err := remapOverConcat(cols, c.e)
		if err != nil {
			return nil, err
		}
		extras = append(extras, e)
	}
	sel := outCard / math.Max(1, left.node.Est().Card*right.node.Est().Card)
	j := &plan.MergeJoin{
		Left:      lSort,
		Right:     rSort,
		LeftKey:   left.posOf(eqLeftCol),
		RightKey:  right.posOf(eqRightCol),
		ExtraPred: expr.Conjoin(extras),
		Sel:       sel,
		Sch:       sch,
		OutEst:    plan.Est{Card: outCard, Width: p.widthOf(cols)},
	}
	mem := p.opt.workMemBytes()
	cost := left.cost + right.cost +
		sortLocalCost(left.node.Est().Bytes(), mem, p.opt.WorkMemPages) +
		sortLocalCost(right.node.Est().Bytes(), mem, p.opt.WorkMemPages)
	return &dpEntry{node: j, cols: cols, cost: cost}, nil
}

// sortLocalCost is the U cost added by an external sort: runs written and
// read once, plus any intermediate merge passes.
func sortLocalCost(childBytes, memBytes float64, memPages int) float64 {
	c := 2 * childBytes
	if childBytes > memBytes && memBytes > 0 {
		runs := math.Ceil(childBytes / memBytes)
		fanin := math.Max(2, float64(memPages-1))
		passes := math.Ceil(math.Log(runs) / math.Log(fanin))
		if passes > 1 {
			c += (passes - 1) * 2 * childBytes
		}
	}
	return c
}

func (p *planner) nlJoin(outer, inner *dpEntry, applied []*conjunct, selProduct, outCard float64) (*dpEntry, error) {
	innerEntry := inner
	innerCost := inner.cost
	// A non-scan inner must be materialized to be rescanned.
	if !isScan(inner.node) {
		m := &plan.Materialize{Child: inner.node, OutEst: inner.node.Est()}
		innerEntry = &dpEntry{node: m, cols: inner.cols}
		innerCost += 2 * inner.node.Est().Bytes()
	}
	cols, sch := concatEntry(p.bq, outer, innerEntry)
	var terms []expr.Expr
	for _, c := range applied {
		e, err := remapOverConcat(cols, c.e)
		if err != nil {
			return nil, err
		}
		terms = append(terms, e)
	}
	j := &plan.NLJoin{
		Outer:  outer.node,
		Inner:  innerEntry.node,
		Pred:   expr.Conjoin(terms),
		Sel:    selProduct,
		Sch:    sch,
		OutEst: plan.Est{Card: outCard, Width: p.widthOf(cols)},
	}
	// Each outer tuple after the first rescans the inner.
	rescans := math.Max(0, outer.node.Est().Card-1)
	cost := outer.cost + innerCost + rescans*innerEntry.node.Est().Bytes()
	return &dpEntry{node: j, cols: cols, cost: cost}, nil
}

func isScan(n plan.Node) bool {
	switch n.(type) {
	case *plan.SeqScan, *plan.IndexScan:
		return true
	default:
		return false
	}
}

// finalize applies the final projection to the select list.
func (p *planner) finalize(e *dpEntry) (plan.Node, error) {
	out, err := p.projectTo(e, p.bq.selectCols)
	if err != nil {
		return nil, err
	}
	return out.node, nil
}

// projectTo narrows an entry to exactly the given global columns, in
// order (identity projections are elided).
func (p *planner) projectTo(e *dpEntry, globals []int) (*dpEntry, error) {
	identity := len(globals) == len(e.cols)
	if identity {
		for i, g := range globals {
			if e.cols[i] != g {
				identity = false
				break
			}
		}
	}
	if identity {
		return e, nil
	}
	keep := make([]int, len(globals))
	sch := &tuple.Schema{Cols: make([]tuple.Column, len(globals))}
	width := 0.0
	for i, g := range globals {
		pos := e.posOf(g)
		if pos < 0 {
			return nil, fmt.Errorf("optimizer: column %s lost during planning", p.bq.global.Cols[g].Name)
		}
		keep[i] = pos
		sch.Cols[i] = p.bq.global.Cols[g]
		width += p.bq.colWidth(g)
	}
	node := &plan.Project{
		Child:  e.node,
		Cols:   keep,
		Sch:    sch,
		OutEst: plan.Est{Card: e.node.Est().Card, Width: width},
	}
	return &dpEntry{node: node, cols: append([]int(nil), globals...), cost: e.cost}, nil
}

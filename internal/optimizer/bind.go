// Package optimizer turns parsed SPJ statements into physical plans: it
// binds names against the catalog, estimates selectivities and
// cardinalities from statistics, enumerates left-deep join orders with
// dynamic programming, and chooses join algorithms and access paths by
// estimated cost measured in U (bytes processed at segment boundaries —
// the same unit the progress indicator tracks).
package optimizer

import (
	"fmt"
	"strings"

	"progressdb/internal/catalog"
	"progressdb/internal/expr"
	"progressdb/internal/sqlparser"
	"progressdb/internal/stats"
	"progressdb/internal/tuple"
)

// tableSource is one bound FROM entry.
type tableSource struct {
	ref    sqlparser.TableRef
	tbl    *catalog.Table
	idx    int // position in FROM list
	offset int // first global column index
}

func (t *tableSource) binding() string { return t.ref.Binding() }

// conjunct is one bound WHERE term.
type conjunct struct {
	e      expr.Expr // over global column indexes
	tables uint32    // bitmask of referenced table positions
}

// boundItem is one bound select-list entry.
type boundItem struct {
	agg     string // "" for a plain column
	aggStar bool   // count(*)
	col     int    // global column index; -1 for count(*)
	name    string // output column name
}

// boundOrder is one bound ORDER BY key.
type boundOrder struct {
	col  int // global column index
	desc bool
}

// boundQuery is the binder's output.
type boundQuery struct {
	tables    []*tableSource
	conjuncts []*conjunct
	// items are the select-list entries (empty means SELECT *).
	items []boundItem
	// selectCols are the global columns the join phase must deliver: the
	// plain item columns, grouping columns, and aggregate arguments.
	selectCols []int
	groupBy    []int
	orderBy    []boundOrder
	limit      *int64
	hasAgg     bool
	subqueries []*subquerySpec
	global     *tuple.Schema
}

// numTables in a conjunct's bitmask.
func bits(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// bind resolves stmt against the catalog.
func bind(cat *catalog.Catalog, stmt *sqlparser.SelectStmt) (*boundQuery, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("optimizer: empty FROM list")
	}
	if len(stmt.From) > 31 {
		return nil, fmt.Errorf("optimizer: too many tables (%d > 31)", len(stmt.From))
	}
	bq := &boundQuery{global: &tuple.Schema{}}
	seen := map[string]bool{}
	for i, ref := range stmt.From {
		tbl, err := cat.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		ts := &tableSource{ref: ref, tbl: tbl, idx: i, offset: bq.global.Arity()}
		if seen[ts.binding()] {
			return nil, fmt.Errorf("optimizer: duplicate table binding %q", ts.binding())
		}
		seen[ts.binding()] = true
		for _, c := range tbl.Schema.Cols {
			bq.global.Cols = append(bq.global.Cols, tuple.Column{
				Name: ts.binding() + "." + strings.ToLower(c.Name),
				Type: c.Type,
			})
		}
		bq.tables = append(bq.tables, ts)
	}

	// GROUP BY columns.
	for _, g := range stmt.GroupBy {
		gi, _, err := bq.resolveColumn(g)
		if err != nil {
			return nil, err
		}
		bq.groupBy = append(bq.groupBy, gi)
	}
	bq.hasAgg = len(stmt.GroupBy) > 0

	// Select list.
	if stmt.Star {
		if len(stmt.GroupBy) > 0 {
			return nil, fmt.Errorf("optimizer: SELECT * cannot be combined with GROUP BY")
		}
		for i := range bq.global.Cols {
			bq.selectCols = append(bq.selectCols, i)
		}
	} else {
		for _, item := range stmt.Items {
			bi := boundItem{agg: item.Agg, aggStar: item.AggStar, col: -1, name: item.String()}
			if !item.AggStar {
				g, _, err := bq.resolveColumn(item.Col)
				if err != nil {
					return nil, err
				}
				bi.col = g
			}
			if bi.agg != "" {
				bq.hasAgg = true
			}
			bq.items = append(bq.items, bi)
		}
		// With aggregation, plain columns must be grouping columns.
		if bq.hasAgg {
			for _, bi := range bq.items {
				if bi.agg == "" && !containsInt(bq.groupBy, bi.col) {
					return nil, fmt.Errorf("optimizer: column %s must appear in GROUP BY or inside an aggregate",
						bq.global.Cols[bi.col].Name)
				}
			}
		}
		// selectCols: what the join phase must deliver.
		seen := map[int]bool{}
		add := func(g int) {
			if g >= 0 && !seen[g] {
				seen[g] = true
				bq.selectCols = append(bq.selectCols, g)
			}
		}
		if bq.hasAgg {
			for _, g := range bq.groupBy {
				add(g)
			}
			for _, bi := range bq.items {
				add(bi.col)
			}
		} else {
			for _, bi := range bq.items {
				// Preserve select-list order including duplicates for
				// plain projections.
				bq.selectCols = append(bq.selectCols, bi.col)
			}
		}
	}

	// WHERE conjuncts; EXISTS/IN subqueries become semi-join specs.
	if stmt.Where != nil {
		for _, t := range splitAnd(stmt.Where) {
			switch n := t.(type) {
			case sqlparser.ExistsExpr:
				spec, err := bindSubquery(cat, bq, n.Sub, n.Not, -1)
				if err != nil {
					return nil, err
				}
				bq.subqueries = append(bq.subqueries, spec)
			case sqlparser.InExpr:
				g, _, err := bq.resolveColumn(n.Col)
				if err != nil {
					return nil, err
				}
				spec, err := bindSubquery(cat, bq, n.Sub, n.Not, g)
				if err != nil {
					return nil, err
				}
				bq.subqueries = append(bq.subqueries, spec)
			default:
				e, mask, err := bq.bindExpr(t)
				if err != nil {
					return nil, err
				}
				bq.conjuncts = append(bq.conjuncts, &conjunct{e: e, tables: mask})
			}
		}
	}

	// ORDER BY and LIMIT.
	for _, o := range stmt.OrderBy {
		gi, _, err := bq.resolveColumn(o.Col)
		if err != nil {
			return nil, err
		}
		bq.orderBy = append(bq.orderBy, boundOrder{col: gi, desc: o.Desc})
	}
	bq.limit = stmt.Limit
	return bq, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if a, ok := e.(sqlparser.AndExpr); ok {
		return append(splitAnd(a.L), splitAnd(a.R)...)
	}
	return []sqlparser.Expr{e}
}

// resolveColumn finds the global index of a column reference.
func (bq *boundQuery) resolveColumn(ref sqlparser.ColumnRef) (global int, table int, err error) {
	if ref.Qualifier != "" {
		for _, ts := range bq.tables {
			if ts.binding() == ref.Qualifier {
				ci := ts.tbl.Schema.ColIndex(ref.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("optimizer: table %q has no column %q", ref.Qualifier, ref.Column)
				}
				return ts.offset + ci, ts.idx, nil
			}
		}
		return 0, 0, fmt.Errorf("optimizer: unknown table %q", ref.Qualifier)
	}
	found := -1
	foundTable := -1
	for _, ts := range bq.tables {
		if ci := ts.tbl.Schema.ColIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("optimizer: ambiguous column %q", ref.Column)
			}
			found = ts.offset + ci
			foundTable = ts.idx
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("optimizer: unknown column %q", ref.Column)
	}
	return found, foundTable, nil
}

// bindExpr converts a source expression to a bound expr.Expr plus the
// bitmask of tables it references.
func (bq *boundQuery) bindExpr(e sqlparser.Expr) (expr.Expr, uint32, error) {
	switch n := e.(type) {
	case sqlparser.ColumnRef:
		g, tbl, err := bq.resolveColumn(n)
		if err != nil {
			return nil, 0, err
		}
		return &expr.ColRef{Index: g, Name: bq.global.Cols[g].Name}, 1 << uint(tbl), nil
	case sqlparser.IntLit:
		return &expr.Const{V: tuple.NewInt(n.V)}, 0, nil
	case sqlparser.FloatLit:
		return &expr.Const{V: tuple.NewFloat(n.V)}, 0, nil
	case sqlparser.StrLit:
		return &expr.Const{V: tuple.NewString(n.V)}, 0, nil
	case sqlparser.FuncCall:
		var args []expr.Expr
		var mask uint32
		for _, a := range n.Args {
			ba, m, err := bq.bindExpr(a)
			if err != nil {
				return nil, 0, err
			}
			args = append(args, ba)
			mask |= m
		}
		return &expr.Func{Name: n.Name, Args: args}, mask, nil
	case sqlparser.Comparison:
		l, ml, err := bq.bindExpr(n.L)
		if err != nil {
			return nil, 0, err
		}
		r, mr, err := bq.bindExpr(n.R)
		if err != nil {
			return nil, 0, err
		}
		op, err := cmpOp(n.Op)
		if err != nil {
			return nil, 0, err
		}
		return &expr.Cmp{Op: op, L: l, R: r}, ml | mr, nil
	case sqlparser.AndExpr:
		l, ml, err := bq.bindExpr(n.L)
		if err != nil {
			return nil, 0, err
		}
		r, mr, err := bq.bindExpr(n.R)
		if err != nil {
			return nil, 0, err
		}
		return &expr.And{Terms: []expr.Expr{l, r}}, ml | mr, nil
	default:
		return nil, 0, fmt.Errorf("optimizer: unsupported expression %T", e)
	}
}

func cmpOp(op string) (expr.CmpOp, error) {
	switch op {
	case "=":
		return expr.EQ, nil
	case "<>":
		return expr.NE, nil
	case "<":
		return expr.LT, nil
	case "<=":
		return expr.LE, nil
	case ">":
		return expr.GT, nil
	case ">=":
		return expr.GE, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown operator %q", op)
	}
}

// colStatsFor returns the column statistics behind a global column index.
func (bq *boundQuery) colStatsFor(global int) *stats.ColStats {
	ts := bq.tableOf(global)
	if ts == nil || ts.tbl.Stats == nil {
		return nil
	}
	return ts.tbl.Stats.Col(ts.tbl.Schema.Cols[global-ts.offset].Name)
}

// tableOf returns the table source providing a global column.
func (bq *boundQuery) tableOf(global int) *tableSource {
	for _, ts := range bq.tables {
		if global >= ts.offset && global < ts.offset+ts.tbl.Schema.Arity() {
			return ts
		}
	}
	return nil
}

// colWidth estimates the encoded width of a global column.
func (bq *boundQuery) colWidth(global int) float64 {
	if cs := bq.colStatsFor(global); cs != nil && cs.AvgWidth > 0 {
		return cs.AvgWidth
	}
	if bq.global.Cols[global].Type == tuple.String {
		return 20 // default guess for unanalyzed strings
	}
	return 9
}

package optimizer

import (
	"fmt"
	"math"

	"progressdb/internal/catalog"
	"progressdb/internal/expr"
	"progressdb/internal/plan"
	"progressdb/internal/sqlparser"
	"progressdb/internal/stats"
	"progressdb/internal/tuple"
)

// corrPred is one correlation predicate of a subquery: a comparison
// between a subquery column and an outer-query column. Indexes are in
// the combined global space (outer columns first, then subquery
// columns).
type corrPred struct {
	op       expr.CmpOp
	outerCol int
	subCol   int
}

// subquerySpec is one bound EXISTS/IN subquery.
type subquerySpec struct {
	anti bool
	// sub is the subquery's own bound query; its tables live in the
	// combined global space at offsets past the outer query's columns.
	sub *boundQuery
	// corr are the correlation predicates (at least one equality is
	// required for the hash semi-join path; others become extra
	// predicates; a subquery with none is uncorrelated — IN provides the
	// equality instead).
	corr []corrPred
	// neededSubCols are the subquery output columns the semi-join needs
	// (correlation columns plus the IN key), in a fixed order.
	neededSubCols []int
}

// subqueryOuterCols returns every outer column referenced by any
// subquery's correlation predicates.
func (bq *boundQuery) subqueryOuterCols() []int {
	var out []int
	for _, s := range bq.subqueries {
		for _, c := range s.corr {
			out = append(out, c.outerCol)
		}
	}
	return out
}

// bindSubquery binds one EXISTS/IN subquery against the outer query.
// inCol is the outer IN column (-1 for EXISTS).
func bindSubquery(cat *catalog.Catalog, outer *boundQuery, stmt *sqlparser.SelectStmt, anti bool, inCol int) (*subquerySpec, error) {
	if len(stmt.GroupBy) > 0 || len(stmt.OrderBy) > 0 || stmt.Limit != nil {
		return nil, fmt.Errorf("optimizer: subqueries do not support GROUP BY, ORDER BY, or LIMIT")
	}
	for _, it := range stmt.Items {
		if it.Agg != "" {
			return nil, fmt.Errorf("optimizer: aggregates in subqueries are not supported")
		}
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("optimizer: subquery needs a FROM clause")
	}

	spec := &subquerySpec{anti: anti}
	outerArity := outer.global.Arity()

	// Build the subquery's bound query in the combined column space:
	// outer columns occupy [0, outerArity); subquery columns follow.
	sub := &boundQuery{global: &tuple.Schema{}}
	sub.global.Cols = append(sub.global.Cols, outer.global.Cols...)
	seen := map[string]bool{}
	for i, ref := range stmt.From {
		tbl, err := cat.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		ts := &tableSource{ref: ref, tbl: tbl, idx: i, offset: sub.global.Arity()}
		if seen[ts.binding()] {
			return nil, fmt.Errorf("optimizer: duplicate table binding %q in subquery", ts.binding())
		}
		seen[ts.binding()] = true
		for _, c := range tbl.Schema.Cols {
			sub.global.Cols = append(sub.global.Cols, tuple.Column{
				Name: ts.binding() + "." + c.Name,
				Type: c.Type,
			})
		}
		sub.tables = append(sub.tables, ts)
	}
	spec.sub = sub

	// resolve finds a column: subquery tables first, then the outer
	// query's (a correlated reference).
	resolve := func(ref sqlparser.ColumnRef) (int, bool, error) {
		if g, _, err := sub.resolveColumn(ref); err == nil {
			return g, false, nil
		}
		g, _, err := outer.resolveColumn(ref)
		if err != nil {
			return 0, false, fmt.Errorf("optimizer: subquery column %s not found in subquery or outer query", ref)
		}
		return g, true, nil
	}

	// The IN key: the subquery's single select item.
	if inCol >= 0 {
		if stmt.Star || len(stmt.Items) != 1 {
			return nil, fmt.Errorf("optimizer: an IN subquery must select exactly one column")
		}
		g, isOuter, err := resolve(stmt.Items[0].Col)
		if err != nil {
			return nil, err
		}
		if isOuter {
			return nil, fmt.Errorf("optimizer: the IN subquery's select column must come from the subquery")
		}
		spec.corr = append(spec.corr, corrPred{op: expr.EQ, outerCol: inCol, subCol: g})
	}

	// Classify the subquery's WHERE conjuncts.
	if stmt.Where != nil {
		for _, t := range splitAnd(stmt.Where) {
			switch t.(type) {
			case sqlparser.ExistsExpr, sqlparser.InExpr:
				return nil, fmt.Errorf("optimizer: nested subqueries are not supported")
			}
			cp, isCorr, err := classifyCorr(t, sub, outer, resolve, outerArity)
			if err != nil {
				return nil, err
			}
			if isCorr {
				spec.corr = append(spec.corr, cp)
				continue
			}
			e, mask, err := sub.bindExpr(t)
			if err != nil {
				return nil, err
			}
			sub.conjuncts = append(sub.conjuncts, &conjunct{e: e, tables: mask})
		}
	}

	if len(spec.corr) == 0 && inCol < 0 {
		// An uncorrelated EXISTS is constant per query; without a
		// correlation there is nothing for the semi-join to match on.
		return nil, fmt.Errorf("optimizer: EXISTS subquery must be correlated with the outer query")
	}

	// Subquery output columns the semi-join must see.
	need := map[int]bool{}
	for _, c := range spec.corr {
		if !need[c.subCol] {
			need[c.subCol] = true
			spec.neededSubCols = append(spec.neededSubCols, c.subCol)
		}
	}
	sub.selectCols = spec.neededSubCols
	return spec, nil
}

// classifyCorr reports whether conjunct t is a correlation predicate
// (one side a subquery column, the other an outer column), returning it
// normalized with the outer column first.
func classifyCorr(t sqlparser.Expr, sub, outer *boundQuery,
	resolve func(sqlparser.ColumnRef) (int, bool, error), outerArity int) (corrPred, bool, error) {
	cmp, ok := t.(sqlparser.Comparison)
	if !ok {
		return corrPred{}, false, nil
	}
	lc, lok := cmp.L.(sqlparser.ColumnRef)
	rc, rok := cmp.R.(sqlparser.ColumnRef)
	if !lok || !rok {
		return corrPred{}, false, nil
	}
	lg, lOuter, lerr := resolve(lc)
	rg, rOuter, rerr := resolve(rc)
	if lerr != nil || rerr != nil {
		// Let bindExpr produce the error with full context.
		return corrPred{}, false, nil
	}
	if lOuter == rOuter {
		if lOuter {
			return corrPred{}, false, fmt.Errorf(
				"optimizer: subquery predicate %s references only outer columns", cmp)
		}
		return corrPred{}, false, nil // pure subquery predicate
	}
	op, err := cmpOp(cmp.Op)
	if err != nil {
		return corrPred{}, false, err
	}
	if lOuter {
		return corrPred{op: op, outerCol: lg, subCol: rg}, true, nil
	}
	// Flip so the outer column is on the left.
	return corrPred{op: flipCmp(op), outerCol: rg, subCol: lg}, true, nil
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

// applySemiJoin plans one subquery and attaches it as a semi-join over
// the outer entry.
func (p *planner) applySemiJoin(outer *dpEntry, spec *subquerySpec) (*dpEntry, error) {
	pi := &planner{bq: spec.sub, opt: p.opt}
	innerBest, err := pi.joinDP()
	if err != nil {
		return nil, fmt.Errorf("optimizer: planning subquery: %w", err)
	}
	inner, err := pi.projectTo(innerBest, spec.neededSubCols)
	if err != nil {
		return nil, err
	}

	// Pick the first equality correlation as the hash key.
	outerKey, innerKey := -1, -1
	var extras []expr.Expr
	outerArity := len(outer.cols)
	usedHash := false
	for _, c := range spec.corr {
		opos := outer.posOf(c.outerCol)
		ipos := inner.posOf(c.subCol)
		if opos < 0 || ipos < 0 {
			return nil, fmt.Errorf("optimizer: correlation column lost during planning")
		}
		if c.op == expr.EQ && !usedHash {
			usedHash = true
			outerKey, innerKey = opos, ipos
			continue
		}
		extras = append(extras, &expr.Cmp{
			Op: c.op,
			L:  &expr.ColRef{Index: opos, Name: p.bq.global.Cols[c.outerCol].Name},
			R:  &expr.ColRef{Index: outerArity + ipos, Name: spec.sub.global.Cols[c.subCol].Name},
		})
	}

	sel := p.semiSelectivity(spec, outerKey, innerKey, outer, inner)
	if spec.anti {
		sel = 1 - sel
	}
	outEst := plan.Est{
		Card:  math.Max(0, sel) * outer.node.Est().Card,
		Width: outer.node.Est().Width,
	}
	j := &plan.SemiJoin{
		Outer:     outer.node,
		Inner:     inner.node,
		OuterKey:  outerKey,
		InnerKey:  innerKey,
		ExtraPred: expr.Conjoin(extras),
		Anti:      spec.anti,
		Sel:       math.Max(0, sel),
		OutEst:    outEst,
	}
	innerBytes := inner.node.Est().Bytes()
	cost := outer.cost + inner.cost + 2*innerBytes
	if outerKey < 0 {
		// Pure NL semi: the cached inner is logically re-read per outer
		// tuple.
		cost += math.Max(0, outer.node.Est().Card-1) * innerBytes
	}
	return &dpEntry{node: j, cols: outer.cols, cost: cost}, nil
}

// semiSelectivity estimates the fraction of outer tuples with at least
// one match: the containment assumption gives ndv(inner)/ndv(outer) for
// an equality correlation, capped at 1.
func (p *planner) semiSelectivity(spec *subquerySpec, outerKey, innerKey int, outer, inner *dpEntry) float64 {
	if outerKey < 0 {
		return 0.5
	}
	var outerNDV, innerNDV float64
	for _, c := range spec.corr {
		if c.op != expr.EQ {
			continue
		}
		if cs := p.bq.colStatsFor(c.outerCol); cs != nil && cs.NDV > 0 {
			outerNDV = float64(cs.NDV)
		}
		if cs := spec.sub.colStatsFor(c.subCol); cs != nil && cs.NDV > 0 {
			innerNDV = math.Min(float64(cs.NDV), inner.node.Est().Card)
		}
		break
	}
	if outerNDV <= 0 || innerNDV <= 0 {
		return stats.DefaultIneqSel
	}
	return math.Min(1, innerNDV/outerNDV)
}

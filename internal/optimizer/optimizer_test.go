package optimizer

import (
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/plan"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// testCatalog builds a small customer/orders/lineitem trio with the same
// relative sizes and fanouts as the paper's Table 1 (scaled way down).
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))

	cust, err := cat.CreateTable("customer", tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "name", Type: tuple.String},
		tuple.Column{Name: "nationkey", Type: tuple.Int},
		tuple.Column{Name: "acctbal", Type: tuple.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		cat.Insert(cust, tuple.Tuple{
			tuple.NewInt(int64(i)), tuple.NewString("customer-name-padding"),
			tuple.NewInt(int64(i % 25)), tuple.NewFloat(float64(i)),
		})
	}
	cust.Heap.Sync()

	orders, err := cat.CreateTable("orders", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "totalprice", Type: tuple.Float},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		cat.Insert(orders, tuple.Tuple{
			tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 300)), tuple.NewFloat(float64(i) * 1.5),
		})
	}
	orders.Heap.Sync()

	line, err := cat.CreateTable("lineitem", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "partkey", Type: tuple.Int},
		tuple.Column{Name: "extendedprice", Type: tuple.Float},
		tuple.Column{Name: "comment", Type: tuple.String},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12000; i++ {
		cat.Insert(line, tuple.Tuple{
			tuple.NewInt(int64(i % 3000)), tuple.NewInt(int64(i)), tuple.NewFloat(2.5),
			tuple.NewString("padding-padding-padding-padding"),
		})
	}
	line.Heap.Sync()

	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustPlan(t *testing.T, cat *catalog.Catalog, sql string, opt Options) plan.Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Plan(cat, stmt, opt)
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return p
}

func TestPlanSingleTableScan(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, "select * from lineitem", Options{})
	scan, ok := p.(*plan.SeqScan)
	if !ok {
		t.Fatalf("Q1-style plan should be a bare SeqScan, got:\n%s", plan.Format(p))
	}
	if scan.Est().Card != 12000 {
		t.Fatalf("card = %g", scan.Est().Card)
	}
}

func TestPlanFilterAndProjection(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, "select custkey from customer where nationkey < 10", Options{})
	// Expect Project over Filter over SeqScan.
	proj, ok := p.(*plan.Project)
	if !ok {
		t.Fatalf("want Project at root:\n%s", plan.Format(p))
	}
	f, ok := proj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("want Filter under Project:\n%s", plan.Format(p))
	}
	// nationkey < 10 over uniform 0..24 ≈ 0.4.
	if f.Sel < 0.3 || f.Sel > 0.5 {
		t.Fatalf("filter sel = %g, want ~0.4", f.Sel)
	}
	if card := f.Est().Card; card < 90 || card > 150 {
		t.Fatalf("filtered card = %g, want ~120", card)
	}
}

func TestPlanTwoWayHashJoin(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat,
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey", Options{})
	var join *plan.HashJoin
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.HashJoin); ok {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if join == nil {
		t.Fatalf("equijoin should pick hash join:\n%s", plan.Format(p))
	}
	// Build side should be the smaller (customer).
	if join.Build.Est().Bytes() > join.Probe.Est().Bytes() {
		t.Fatalf("build side larger than probe:\n%s", plan.Format(p))
	}
	// Estimated output: key/foreign-key join → ~|orders|.
	if c := join.Est().Card; c < 2000 || c > 4500 {
		t.Fatalf("join card = %g, want ~3000", c)
	}
}

func TestPlanThreeWayJoinOrder(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, `
		select c.custkey, o.orderkey, l.extendedprice
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`, Options{})
	// The cheapest order joins the two small tables first, with lineitem
	// probing the intermediate result (the paper's Figure 8 shape).
	top, ok := findTopJoin(p).(*plan.HashJoin)
	if !ok {
		t.Fatalf("top join not hash:\n%s", plan.Format(p))
	}
	if !subtreeScans(top.Probe, "lineitem") {
		t.Fatalf("lineitem should be the probe of the top join:\n%s", plan.Format(p))
	}
	if !subtreeScans(top.Build, "customer") || !subtreeScans(top.Build, "orders") {
		t.Fatalf("customer⋈orders should be the build side:\n%s", plan.Format(p))
	}
}

func findTopJoin(n plan.Node) plan.Node {
	switch n.(type) {
	case *plan.HashJoin, *plan.NLJoin, *plan.MergeJoin:
		return n
	}
	for _, c := range n.Children() {
		if j := findTopJoin(c); j != nil {
			return j
		}
	}
	return nil
}

func subtreeScans(n plan.Node, table string) bool {
	switch s := n.(type) {
	case *plan.SeqScan:
		if s.Table.Name == table {
			return true
		}
	case *plan.IndexScan:
		if s.Table.Name == table {
			return true
		}
	}
	for _, c := range n.Children() {
		if subtreeScans(c, table) {
			return true
		}
	}
	return false
}

func TestPlanNonEquiJoinUsesNL(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat,
		"select * from customer c1, customer c2 where c1.custkey <> c2.custkey", Options{})
	if _, ok := findTopJoin(p).(*plan.NLJoin); !ok {
		t.Fatalf("<> join must use nested loops:\n%s", plan.Format(p))
	}
}

func TestPlanSelfJoinAliases(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, `
		select c.custkey, o1.orderkey, o2.orderkey
		from customer c, orders o1, orders o2
		where c.custkey = o1.custkey and o1.orderkey = o2.orderkey`, Options{})
	if p == nil {
		t.Fatal("self-join must plan")
	}
	count := 0
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.SeqScan); ok && s.Table.Name == "orders" {
			count++
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if count != 2 {
		t.Fatalf("self-join must scan orders twice, got %d:\n%s", count, plan.Format(p))
	}
}

func TestForceMergeJoin(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat,
		"select c.custkey from customer c, orders o where c.custkey = o.custkey",
		Options{ForceJoinAlgo: "merge"})
	mj, ok := findTopJoin(p).(*plan.MergeJoin)
	if !ok {
		t.Fatalf("forced merge join not used:\n%s", plan.Format(p))
	}
	if _, ok := mj.Left.(*plan.Sort); !ok {
		t.Fatalf("merge join left must be sorted:\n%s", plan.Format(p))
	}
	if _, ok := mj.Right.(*plan.Sort); !ok {
		t.Fatalf("merge join right must be sorted:\n%s", plan.Format(p))
	}
}

func TestForceNLJoin(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat,
		"select c.custkey from customer c, orders o where c.custkey = o.custkey",
		Options{ForceJoinAlgo: "nl"})
	if _, ok := findTopJoin(p).(*plan.NLJoin); !ok {
		t.Fatalf("forced NL join not used:\n%s", plan.Format(p))
	}
}

func TestIndexScanChosenForSelectivePredicate(t *testing.T) {
	cat := testCatalog(t)
	orders, _ := cat.Table("orders")
	if _, err := cat.CreateIndex(orders, "orderkey"); err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, cat, "select * from orders where orderkey = 17", Options{})
	found := false
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if _, ok := n.(*plan.IndexScan); ok {
			found = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if !found {
		t.Fatalf("equality on indexed key should use index scan:\n%s", plan.Format(p))
	}
	// And with index scans disabled it must fall back.
	p2 := mustPlan(t, cat, "select * from orders where orderkey = 17", Options{DisableIndexScan: true})
	walk2Found := false
	walk = func(n plan.Node) {
		if _, ok := n.(*plan.IndexScan); ok {
			walk2Found = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p2)
	if walk2Found {
		t.Fatal("DisableIndexScan ignored")
	}
}

func TestFunctionPredicateDefaultSelectivity(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, "select * from lineitem where absolute(partkey) > 0", Options{})
	var f *plan.Filter
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if x, ok := n.(*plan.Filter); ok {
			f = x
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if f == nil {
		t.Fatalf("no filter:\n%s", plan.Format(p))
	}
	if f.Sel < 0.33 || f.Sel > 0.34 {
		t.Fatalf("function predicate sel = %g, want 1/3 (the PostgreSQL default the paper leans on)", f.Sel)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"select * from nosuchtable",
		"select nosuchcol from customer",
		"select x.custkey from customer c",
		"select custkey from customer c, orders o",  // ambiguous
		"select * from customer c, orders c",        // duplicate binding
		"select * from customer where orderkey = 1", // column of other table
	}
	for _, sql := range bad {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Plan(cat, stmt, Options{}); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", sql)
		}
	}
}

func TestCrossProductPlans(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, "select * from customer c1, customer c2", Options{})
	j, ok := findTopJoin(p).(*plan.NLJoin)
	if !ok {
		t.Fatalf("cross product must be NL:\n%s", plan.Format(p))
	}
	if j.Pred != nil {
		t.Fatal("cross product must have nil predicate")
	}
	if c := j.Est().Card; c != 300*300 {
		t.Fatalf("cross card = %g", c)
	}
}

func TestPlanFormatContainsEstimates(t *testing.T) {
	cat := testCatalog(t)
	p := mustPlan(t, cat, "select * from lineitem", Options{})
	s := plan.Format(p)
	if !strings.Contains(s, "rows=12000") {
		t.Fatalf("Format missing estimates: %s", s)
	}
}

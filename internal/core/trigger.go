package core

import "fmt"

// Trigger is an automatic-administration hook (the paper's Section 6:
// "the user may embed triggers in a progress indicator ... send an email
// to the user if after a whole day's execution, the query finishes less
// than 10% of the work").
type Trigger struct {
	// Name identifies the trigger in logs.
	Name string
	// Cond is evaluated on every snapshot.
	Cond func(Snapshot) bool
	// Action runs when Cond first becomes true.
	Action func(Snapshot)
	// Repeat re-arms the trigger after firing; default is fire-once.
	Repeat bool

	fired bool
}

// AddTrigger registers a trigger; it is evaluated on every snapshot.
func (ind *Indicator) AddTrigger(t *Trigger) error {
	if t == nil || t.Cond == nil || t.Action == nil {
		return fmt.Errorf("core: trigger needs Cond and Action")
	}
	ind.triggers = append(ind.triggers, t)
	return nil
}

// SlowProgressTrigger builds the paper's example: fire when, after
// elapsed seconds, less than pct percent of the work is finished.
func SlowProgressTrigger(name string, elapsed, pct float64, action func(Snapshot)) *Trigger {
	return &Trigger{
		Name: name,
		Cond: func(s Snapshot) bool {
			return s.Elapsed >= elapsed && s.Percent < pct
		},
		Action: action,
	}
}

func (ind *Indicator) fireTriggers(s Snapshot) {
	for _, t := range ind.triggers {
		if t.fired && !t.Repeat {
			continue
		}
		if t.Cond(s) {
			t.fired = true
			t.Action(s)
		}
	}
}

package core

import (
	"fmt"
	"strings"

	"progressdb/internal/storage"
)

// pageBytes converts byte counts to U.
const pageBytes = float64(storage.PageSize)

// SegmentReport summarizes one segment after execution — the raw material
// for the paper's Section 6 "performance tuning" use: "we can see whether
// the originally estimated query cost is precise enough and where time
// goes during query execution".
type SegmentReport struct {
	// ID is the segment's execution-order index.
	ID int
	// Root labels the segment's top operator.
	Root string
	// EstCostU and ActualCostU compare the optimizer's initial segment
	// cost with the work actually done, in U.
	EstCostU, ActualCostU float64
	// EstOutRows and ActualOutRows compare output cardinalities.
	EstOutRows, ActualOutRows float64
	// Seconds is the segment's active time on the virtual clock.
	Seconds float64
	// StartT and EndT bound the segment's active period in virtual time
	// (both zero if the segment never started; EndT is the current time
	// for a segment still running).
	StartT, EndT float64
	// Done reports whether the segment completed (false only if the
	// query failed or was cut short).
	Done bool
}

// SegmentReports returns per-segment estimated-versus-actual figures.
// Call after execution completes.
func (ind *Indicator) SegmentReports() []SegmentReport {
	out := make([]SegmentReport, len(ind.segs))
	for i, ss := range ind.segs {
		r := SegmentReport{
			ID:          i,
			Root:        ss.seg.Root.Label(),
			EstCostU:    ss.seg.InitCost / pageBytes,
			ActualCostU: ss.doneBytes / pageBytes,
			EstOutRows:  ss.seg.InitOut.Card,
			Done:        ss.done,
		}
		if ss.done {
			r.ActualOutRows = float64(ss.outTuples)
			r.Seconds = ss.endT - ss.startT
			r.StartT, r.EndT = ss.startT, ss.endT
		} else if ss.started {
			r.ActualOutRows = float64(ss.outTuples)
			r.Seconds = ind.clock.Now() - ss.startT
			r.StartT, r.EndT = ss.startT, ss.startT+r.Seconds
		}
		if ss.seg.Final {
			// The final segment's output is the result set: not counted
			// in U and not observed here (exec.Run returns the row
			// count). Mark it unavailable.
			r.ActualOutRows = -1
		}
		out[i] = r
	}
	return out
}

// FormatSegmentReports renders the reports as an EXPLAIN ANALYZE-style
// table.
func FormatSegmentReports(reports []SegmentReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-11s %-11s %-12s %-12s %-9s %s\n",
		"seg", "est U", "actual U", "est rows", "actual rows", "seconds", "root")
	for _, r := range reports {
		actRows := fmt.Sprintf("%.0f", r.ActualOutRows)
		if r.ActualOutRows < 0 {
			actRows = "(result)"
		}
		fmt.Fprintf(&b, "%-3d %-11.0f %-11.0f %-12.0f %-12s %-9.1f %s\n",
			r.ID, r.EstCostU, r.ActualCostU, r.EstOutRows, actRows, r.Seconds, r.Root)
	}
	return b.String()
}

package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FormatDuration renders seconds as "5 hour 3 min 7 sec", the style of
// the paper's Figure 2. The value is rounded to the nearest whole second
// BEFORE being split into fields, so a round-up carries through the
// units: 59.7 renders as "1 min 0 sec" (not "60 sec"), and
// 3599.6 as "1 hour 0 min 0 sec". NaN, negative, infinite, or absurdly
// large estimates render as "unknown".
func FormatDuration(seconds float64) string {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 || seconds > 1e9 {
		return "unknown"
	}
	s := int64(math.Round(seconds))
	h := s / 3600
	m := (s % 3600) / 60
	sec := s % 60
	var parts []string
	if h > 0 {
		parts = append(parts, fmt.Sprintf("%d hour", h))
	}
	if m > 0 || h > 0 {
		parts = append(parts, fmt.Sprintf("%d min", m))
	}
	parts = append(parts, fmt.Sprintf("%d sec", sec))
	return strings.Join(parts, " ")
}

// Format renders a snapshot as the paper's Figure 2 progress-indicator
// box.
func Format(name string, s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SQL name         %s\n", name)
	fmt.Fprintf(&b, "Elapsed time     %s\n", FormatDuration(s.Elapsed))
	fmt.Fprintf(&b, "Estimated time left  %s (%.0f%% done)\n",
		FormatDuration(s.RemainingSeconds), s.Percent)
	fmt.Fprintf(&b, "Estimated cost   %.0f U\n", s.EstTotalU)
	fmt.Fprintf(&b, "Execution speed  %.0f U/Sec\n", s.SpeedU)
	return b.String()
}

// RankByRemaining implements the paper's Section 6 load-management use:
// given the latest snapshot of each running query, return the query names
// ordered by estimated remaining execution time, longest first — the
// candidates a DBA would block to relieve the system.
//
// An unknown estimate (NaN) sorts as +Inf — a query whose remaining time
// cannot be bounded is the first candidate to block. Ties (including
// multiple NaNs) break deterministically by name. The NaN normalization
// matters for correctness, not just presentation: NaN compares unequal
// to everything, so using it raw in the comparator breaks sort's strict
// weak ordering and yields map-iteration-order-dependent output.
func RankByRemaining(latest map[string]Snapshot) []string {
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	key := func(name string) float64 {
		r := latest[name].RemainingSeconds
		if math.IsNaN(r) {
			return math.Inf(1)
		}
		return r
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := key(names[i]), key(names[j])
		if a != b {
			return a > b
		}
		return names[i] < names[j]
	})
	return names
}

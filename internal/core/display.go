package core

import (
	"fmt"
	"sort"
	"strings"
)

// FormatDuration renders seconds as "5 hour 3 min 7 sec", the style of
// the paper's Figure 2.
func FormatDuration(seconds float64) string {
	if seconds < 0 || seconds != seconds { // negative or NaN
		return "unknown"
	}
	if seconds > 1e9 {
		return "unknown"
	}
	s := int64(seconds + 0.5)
	h := s / 3600
	m := (s % 3600) / 60
	sec := s % 60
	var parts []string
	if h > 0 {
		parts = append(parts, fmt.Sprintf("%d hour", h))
	}
	if m > 0 || h > 0 {
		parts = append(parts, fmt.Sprintf("%d min", m))
	}
	parts = append(parts, fmt.Sprintf("%d sec", sec))
	return strings.Join(parts, " ")
}

// Format renders a snapshot as the paper's Figure 2 progress-indicator
// box.
func Format(name string, s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SQL name         %s\n", name)
	fmt.Fprintf(&b, "Elapsed time     %s\n", FormatDuration(s.Elapsed))
	fmt.Fprintf(&b, "Estimated time left  %s (%.0f%% done)\n",
		FormatDuration(s.RemainingSeconds), s.Percent)
	fmt.Fprintf(&b, "Estimated cost   %.0f U\n", s.EstTotalU)
	fmt.Fprintf(&b, "Execution speed  %.0f U/Sec\n", s.SpeedU)
	return b.String()
}

// RankByRemaining implements the paper's Section 6 load-management use:
// given the latest snapshot of each running query, return the query names
// ordered by estimated remaining execution time, longest first — the
// candidates a DBA would block to relieve the system.
func RankByRemaining(latest map[string]Snapshot) []string {
	names := make([]string, 0, len(latest))
	for n := range latest {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := latest[names[i]], latest[names[j]]
		if a.RemainingSeconds != b.RemainingSeconds {
			return a.RemainingSeconds > b.RemainingSeconds
		}
		return names[i] < names[j]
	})
	return names
}

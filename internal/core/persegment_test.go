package core

import (
	"math"
	"testing"

	"progressdb/internal/optimizer"
)

// The Section 4.6 two-segment problem: while an I/O-bound segment runs,
// the naive conversion prices all remaining U at the slow observed rate,
// overestimating memory-fast future segments. Per-segment mode must give
// finite, convergent estimates and never be wildly worse than the naive
// mode.
func TestPerSegmentSpeedMode(t *testing.T) {
	sql := `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`

	run := func(perSeg bool) (mae float64, actual float64) {
		te := buildEnv(t, nil)
		opts := fastOpts
		opts.PerSegmentSpeed = perSeg
		ind, dur := runWithIndicatorMem(t, te, sql, opts, optimizer.Options{}, 8)
		n := 0
		for _, s := range ind.Snapshots() {
			if s.Finished || s.Elapsed < 2 {
				continue
			}
			if math.IsInf(s.RemainingSeconds, 0) {
				t.Fatalf("per-seg=%v: infinite remaining at t=%.1f", perSeg, s.Elapsed)
			}
			mae += math.Abs(s.RemainingSeconds - (dur - s.Elapsed))
			n++
		}
		if n == 0 {
			t.Fatal("no snapshots")
		}
		return mae / float64(n), dur
	}

	naiveMAE, dur1 := run(false)
	segMAE, dur2 := run(true)
	if math.Abs(dur1-dur2) > 1e-6 {
		t.Fatalf("the estimator mode must not change execution: %g vs %g", dur1, dur2)
	}
	// Both must be sane; per-segment must not be dramatically worse.
	if segMAE > naiveMAE*2+5 {
		t.Fatalf("per-segment mode much worse: %.2f vs naive %.2f", segMAE, naiveMAE)
	}
	t.Logf("remaining-time MAE: naive %.2fs, per-segment %.2fs (duration %.1fs)", naiveMAE, segMAE, dur1)
}

// Final convergence holds in per-segment mode too.
func TestPerSegmentModeFinalConvergence(t *testing.T) {
	te := buildEnv(t, nil)
	opts := fastOpts
	opts.PerSegmentSpeed = true
	ind, _ := runWithIndicatorMem(t, te,
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey",
		opts, optimizer.Options{}, 8)
	snaps := ind.Snapshots()
	final := snaps[len(snaps)-1]
	if !final.Finished || final.Percent != 100 || final.RemainingSeconds != 0 {
		t.Fatalf("final: %+v", final)
	}
}

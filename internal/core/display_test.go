package core

import (
	"math"
	"reflect"
	"testing"
)

// TestFormatDurationTable exercises FormatDuration's rounding-carry
// behavior: the value is rounded to a whole second before splitting into
// hour/min/sec fields, so a round-up near a unit boundary carries into
// the next unit.
func TestFormatDurationTable(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 sec"},
		{0.4, "0 sec"},
		{1, "1 sec"},
		{42, "42 sec"},
		{59.4, "59 sec"},
		// Round-up carry: 59.7 -> 60 s -> 1 min 0 sec, never "60 sec".
		{59.7, "1 min 0 sec"},
		{60, "1 min 0 sec"},
		{61, "1 min 1 sec"},
		{119.6, "2 min 0 sec"},
		{3 * 60, "3 min 0 sec"},
		// Carry across two units: 3599.6 -> 3600 s -> 1 hour 0 min 0 sec.
		{3599.6, "1 hour 0 min 0 sec"},
		{3600, "1 hour 0 min 0 sec"},
		{3600 + 59.7, "1 hour 1 min 0 sec"},
		{5*3600 + 3*60 + 7, "5 hour 3 min 7 sec"},
		// An hour with zero minutes still prints the minutes field.
		{3600 + 7, "1 hour 0 min 7 sec"},
		// Not-a-duration inputs.
		{math.NaN(), "unknown"},
		{math.Inf(1), "unknown"},
		{math.Inf(-1), "unknown"},
		{-1, "unknown"},
		{-0.2, "unknown"},
		{2e9, "unknown"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRankByRemainingTieBreak checks that equal estimates order
// deterministically by name.
func TestRankByRemainingTieBreak(t *testing.T) {
	latest := map[string]Snapshot{
		"qc": {RemainingSeconds: 50},
		"qa": {RemainingSeconds: 50},
		"qb": {RemainingSeconds: 50},
		"qd": {RemainingSeconds: 90},
	}
	want := []string{"qd", "qa", "qb", "qc"}
	for i := 0; i < 10; i++ { // map iteration order must not leak through
		if got := RankByRemaining(latest); !reflect.DeepEqual(got, want) {
			t.Fatalf("RankByRemaining = %v, want %v", got, want)
		}
	}
}

// TestRankByRemainingNaN checks that NaN estimates sort as +Inf
// (longest-first, so ahead of every finite estimate) and that multiple
// NaNs tie-break by name instead of inheriting map iteration order.
func TestRankByRemainingNaN(t *testing.T) {
	latest := map[string]Snapshot{
		"finite-long":  {RemainingSeconds: 1e6},
		"nan-b":        {RemainingSeconds: math.NaN()},
		"nan-a":        {RemainingSeconds: math.NaN()},
		"finite-short": {RemainingSeconds: 3},
		"inf":          {RemainingSeconds: math.Inf(1)},
	}
	want := []string{"inf", "nan-a", "nan-b", "finite-long", "finite-short"}
	for i := 0; i < 10; i++ {
		if got := RankByRemaining(latest); !reflect.DeepEqual(got, want) {
			t.Fatalf("RankByRemaining = %v, want %v", got, want)
		}
	}
}

// TestRankByRemainingNegative checks that negative estimates (possible
// transiently when the blend overshoots) sort after all positive ones.
func TestRankByRemainingNegative(t *testing.T) {
	latest := map[string]Snapshot{
		"neg":  {RemainingSeconds: -5},
		"zero": {RemainingSeconds: 0},
		"pos":  {RemainingSeconds: 10},
	}
	want := []string{"pos", "zero", "neg"}
	if got := RankByRemaining(latest); !reflect.DeepEqual(got, want) {
		t.Fatalf("RankByRemaining = %v, want %v", got, want)
	}
}

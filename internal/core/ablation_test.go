package core

import (
	"math"
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/optimizer"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// costMAE is the mean absolute error of the running cost estimate
// against the exact (final) cost, over non-final snapshots.
func costMAE(ind *Indicator) float64 {
	snaps := ind.Snapshots()
	exact := snaps[len(snaps)-1].EstTotalU
	mae, n := 0.0, 0
	for _, s := range snaps {
		if s.Finished {
			continue
		}
		mae += math.Abs(s.EstTotalU - exact)
		n++
	}
	if n == 0 {
		return 0
	}
	return mae / float64(n)
}

// Ablation of the Section 4.5 blend on the Q2-style misestimated
// workload: refining (blend or linear) must beat never refining
// (static), and all modes converge once segments complete.
func TestEstimatorModeAblation(t *testing.T) {
	sql := `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey and absolute(l.partkey) > 0`
	run := func(mode EstimatorMode) *Indicator {
		te := buildEnv(t, nil)
		opts := fastOpts
		opts.Estimator = mode
		ind, _ := runWithIndicatorMem(t, te, sql, opts, optimizer.Options{}, 2)
		return ind
	}

	blend := run(EstimatorBlend)
	static := run(EstimatorStatic)
	linear := run(EstimatorLinear)

	blendMAE, staticMAE, linearMAE := costMAE(blend), costMAE(static), costMAE(linear)
	t.Logf("cost-estimate MAE: blend %.1fU static %.1fU linear %.1fU", blendMAE, staticMAE, linearMAE)

	if blendMAE >= staticMAE {
		t.Fatalf("the blend must beat the never-refine baseline: %.1f vs %.1f", blendMAE, staticMAE)
	}
	if linearMAE >= staticMAE {
		t.Fatalf("pure extrapolation must also beat never-refine: %.1f vs %.1f", linearMAE, staticMAE)
	}
	// All converge at completion (done segments are exact regardless).
	for _, ind := range []*Indicator{blend, static, linear} {
		snaps := ind.Snapshots()
		final := snaps[len(snaps)-1]
		if math.Abs(final.EstTotalU-final.DoneU) > 1e-6*final.DoneU {
			t.Fatalf("mode did not converge: %+v", final)
		}
	}
}

// On clustered data, pure extrapolation is misled mid-segment: here the
// first half of the build relation passes the filter and the second half
// does not, so at p = 0.5 E2 predicts double the true output. The blend
// hedges toward E1 and must track the exact cost better — the paper's
// stated reason for blending ("this assumption may not be valid and we
// also want to consider the initial estimate E1").
func TestBlendBeatsLinearOnClusteredData(t *testing.T) {
	build := func() *testEnv {
		clock := vclock.New(vclock.Costs{SeqPage: 0.05, RandPage: 0.4, CPUTuple: 2e-5}, nil)
		cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 2048))
		pad := strings.Repeat("p", 60)
		tt, err := cat.CreateTable("t", tuple.NewSchema(
			tuple.Column{Name: "k", Type: tuple.Int},
			tuple.Column{Name: "v", Type: tuple.Int},
			tuple.Column{Name: "pad", Type: tuple.String},
		))
		if err != nil {
			t.Fatal(err)
		}
		const n = 6000
		for i := 0; i < n; i++ {
			// v = i: the first half satisfies v < n/2, clustered at the
			// front of the scan.
			cat.Insert(tt, tuple.Tuple{tuple.NewInt(int64(i % 100)), tuple.NewInt(int64(i)), tuple.NewString(pad)})
		}
		tt.Heap.Sync()
		uu, err := cat.CreateTable("u", tuple.NewSchema(
			tuple.Column{Name: "k", Type: tuple.Int},
			tuple.Column{Name: "pad", Type: tuple.String},
		))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4*n; i++ {
			cat.Insert(uu, tuple.Tuple{tuple.NewInt(int64(i % 100)), tuple.NewString(pad)})
		}
		uu.Heap.Sync()
		if err := cat.AnalyzeAll(); err != nil {
			t.Fatal(err)
		}
		return &testEnv{cat: cat, clock: clock}
	}
	// The function predicate hides the true selectivity (estimate 1/3,
	// truth 1/2) and the filtered t becomes the hash-join build side,
	// whose output IS counted.
	sql := "select t.k, u.k from t, u where t.k = u.k and absolute(t.v) < 3000"
	run := func(mode EstimatorMode) float64 {
		te := build()
		opts := fastOpts
		opts.Estimator = mode
		ind, _ := runWithIndicatorMem(t, te, sql, opts, optimizer.Options{}, 1024)
		return costMAE(ind)
	}
	blendMAE := run(EstimatorBlend)
	linearMAE := run(EstimatorLinear)
	t.Logf("clustered data cost MAE: blend %.2fU linear %.2fU", blendMAE, linearMAE)
	if blendMAE >= linearMAE {
		t.Fatalf("blend should beat pure extrapolation on clustered data: %.2f vs %.2f",
			blendMAE, linearMAE)
	}
}

// In static mode the estimate must stay at the optimizer's value for the
// whole duration of the mispredicted segment, only jumping at segment
// completion — the coarse staircase the paper's refinement avoids.
func TestStaticModeIsStaircase(t *testing.T) {
	sql := `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey and absolute(l.partkey) > 0`
	te := buildEnv(t, nil)
	opts := fastOpts
	opts.Estimator = EstimatorStatic
	ind, _ := runWithIndicatorMem(t, te, sql, opts, optimizer.Options{}, 2)
	snaps := ind.Snapshots()
	// Count distinct estimate values: a staircase has very few.
	distinct := map[float64]bool{}
	for _, s := range snaps {
		distinct[math.Round(s.EstTotalU)] = true
	}
	if len(distinct) > len(ind.segs)+2 {
		t.Fatalf("static mode produced %d distinct estimates for %d segments (not a staircase)",
			len(distinct), len(ind.segs))
	}
}

// SegmentReports compares estimates with actuals after execution — the
// performance-tuning post-mortem of Section 6.
func TestSegmentReports(t *testing.T) {
	te := buildEnv(t, nil)
	sql := `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey and absolute(l.partkey) > 0`
	ind, _ := runWithIndicatorMem(t, te, sql, fastOpts, optimizer.Options{}, 2)
	reports := ind.SegmentReports()
	if len(reports) < 3 {
		t.Fatalf("reports: %d", len(reports))
	}
	misestimated := false
	for _, r := range reports {
		if !r.Done {
			t.Fatalf("segment %d not done: %+v", r.ID, r)
		}
		if r.Seconds < 0 {
			t.Fatalf("segment %d negative time", r.ID)
		}
		if r.ActualCostU <= 0 {
			t.Fatalf("segment %d no work recorded", r.ID)
		}
		// The lineitem partition segment's actual must exceed its
		// estimate (the 1/3 selectivity default).
		if r.ActualCostU > r.EstCostU*1.5 {
			misestimated = true
		}
	}
	if !misestimated {
		t.Fatal("expected at least one badly underestimated segment")
	}
	table := FormatSegmentReports(reports)
	for _, want := range []string{"seg", "est U", "actual U", "seconds"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// Package core implements the paper's contribution: a continuously
// refined progress indicator for SPJ queries.
//
// The Indicator is a segment.WorkReporter wired into the executor. As
// boundary bytes flow it maintains, per segment:
//
//   - refined input estimates (Section 4.3): a base input keeps the
//     optimizer's cardinality Ne until the running count exceeds it, then
//     uses the running count; after the scan finishes the count is exact;
//     upper-level inputs become exact when the producing segment ends;
//   - the refined output-cardinality estimate (Section 4.5):
//     E = p·E2 + (1−p)·E1, where p is the dominant-input fraction
//     processed (p = max(qA, qB) for a sort-merge join's two dominant
//     inputs), E1 the optimizer's estimate at segment start, and
//     E2 = y/p the linear extrapolation of the y output tuples seen;
//   - upward propagation: future segments are re-costed by re-invoking
//     the optimizer's cost-estimation module (segment.EvalSegment) with
//     the refined estimates.
//
// Execution speed is monitored over the trailing T-second window
// (Section 4.6, T = 10 s by default), with an optional decaying-average
// smoother (the paper's suggested extension). Remaining time is the
// estimated remaining U divided by the observed speed.
package core

import (
	"math"

	"progressdb/internal/obs"
	"progressdb/internal/segment"
	"progressdb/internal/storage"
	"progressdb/internal/vclock"
)

// Options configure an Indicator.
type Options struct {
	// UpdatePeriod is the snapshot interval in virtual seconds
	// (default 10, the paper's refresh rate).
	UpdatePeriod float64
	// SpeedWindow is T, the trailing window for speed monitoring in
	// virtual seconds (default 10, the paper's choice).
	SpeedWindow float64
	// SamplePeriod is how often the work counter is sampled for the
	// speed window (default 1 s).
	SamplePeriod float64
	// DecayAlpha, if in (0, 1], replaces the plain window speed with an
	// exponentially decayed average of window speeds — the smoothing the
	// paper suggests as future work in Section 4.6. 0 disables it.
	DecayAlpha float64
	// OptimizerBytesPerSec is the unloaded-system processing rate the
	// trivial optimizer-only baseline assumes (the paper's dotted line:
	// estimated I/Os ÷ assumed disk speed). If 0 it is derived from the
	// clock's sequential page cost.
	OptimizerBytesPerSec float64
	// PerSegmentSpeed enables the Section 4.6 future-work refinement:
	// instead of dividing all remaining U by the single observed speed,
	// future segments are timed with a predicted per-segment rate (from
	// their disk-vs-memory byte mix) scaled by the currently observed
	// load. This fixes the paper's two-segment example, where an
	// I/O-bound running segment makes the naive conversion overestimate
	// a fast memory-bound successor.
	PerSegmentSpeed bool
	// MemSpeedup is the assumed ratio of memory-resident to sequential-
	// disk byte processing rates for PerSegmentSpeed (default 8).
	MemSpeedup float64
	// Estimator selects the current-segment output estimator; the
	// default is the paper's blend. The alternatives exist for ablation
	// (see bench_test.go).
	Estimator EstimatorMode
	// Refine holds the engine-wide refinement instruments; the zero value
	// is disabled (every update is a nil-safe no-op).
	Refine RefinementMetrics
	// Events, when non-nil, receives a structured JSONL event for every
	// progress refresh and segment completion.
	Events *obs.EventWriter
}

// EstimatorMode is an ablation knob for the Section 4.5 refinement
// formula.
type EstimatorMode int

const (
	// EstimatorBlend is the paper's E = p·E2 + (1−p)·E1.
	EstimatorBlend EstimatorMode = iota
	// EstimatorStatic never refines the current segment's output
	// estimate: E = E1 until the segment completes (what a plain
	// optimizer-estimate indicator would do).
	EstimatorStatic
	// EstimatorLinear uses the raw extrapolation E = E2 = y/p as soon as
	// any dominant-input progress exists; it converges too, but without
	// the blend's smoothing it fluctuates early, which is exactly why
	// the paper blends.
	EstimatorLinear
)

func (o Options) withDefaults(clock *vclock.Clock) Options {
	if o.UpdatePeriod <= 0 {
		o.UpdatePeriod = 10
	}
	if o.SpeedWindow <= 0 {
		o.SpeedWindow = 10
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 1
	}
	if o.OptimizerBytesPerSec <= 0 {
		if c := clock.Costs().SeqPage; c > 0 {
			o.OptimizerBytesPerSec = storage.PageSize / c
		} else {
			o.OptimizerBytesPerSec = storage.PageSize * 1000
		}
	}
	if o.MemSpeedup <= 0 {
		o.MemSpeedup = 8
	}
	return o
}

// Snapshot is one refresh of the progress display (the paper's Figure 2
// fields, plus the baselines the evaluation section compares against).
type Snapshot struct {
	// Time is the virtual time of the snapshot (seconds since clock 0).
	Time float64
	// Elapsed is seconds since the query started.
	Elapsed float64
	// EstTotalU is the continuously refined estimate of the query cost,
	// in U (pages).
	EstTotalU float64
	// DoneU is the work completed so far, in U.
	DoneU float64
	// Percent is the estimated completed percentage in [0, 100].
	Percent float64
	// SpeedU is the monitored execution speed in U per second.
	SpeedU float64
	// RemainingSeconds is the estimated remaining execution time.
	RemainingSeconds float64
	// CurrentSegment is the index of the segment now executing (-1 after
	// completion).
	CurrentSegment int
	// SegmentsDone counts completed segments.
	SegmentsDone int
	// StepPercent is the trivial step-counting baseline: completed
	// segments over total segments (the "steps completed" indicators the
	// paper's introduction criticizes).
	StepPercent float64
	// OptimizerRemainingSeconds is the trivial optimizer-only baseline:
	// the initial cost estimate divided by an assumed unloaded speed,
	// minus elapsed time (floored at zero).
	OptimizerRemainingSeconds float64
	// CurrentP is the current segment's dominant-input fraction p, and
	// CurrentE1/CurrentE the blend's inputs E1 and output E (rows); all
	// zero when no segment is mid-execution.
	CurrentP, CurrentE1, CurrentE float64
	// Finished is true for the final snapshot.
	Finished bool
}

// inputState tracks one segment input at runtime.
type inputState struct {
	firstTuples int64
	firstBytes  float64
	totalBytes  float64
	exact       bool
}

// segState tracks one segment at runtime.
type segState struct {
	seg *segment.Segment

	started bool
	done    bool

	inputs []inputState

	outTuples int64
	outBytes  float64

	// doneBytes is all U work attributed to this segment so far (inputs
	// over all passes + outputs + multi-stage extra).
	doneBytes float64

	// startT and endT bound the segment's active period (virtual time);
	// segments execute one at a time, so observed per-segment speeds are
	// doneBytes over that span.
	startT, endT float64

	// e1 is the output-cardinality estimate fixed at segment start.
	e1      float64
	e1Valid bool

	// lastDom is the dominant-input slot that most recently supplied p
	// (-1 before any dominant progress); a change is a dominant-input
	// switch, observable only for two-dominant (sort-merge) segments.
	lastDom int
}

// Indicator is the progress indicator. It implements
// segment.WorkReporter; wire it into exec.Env.Reporter.
type Indicator struct {
	clock  *vclock.Clock
	decomp *segment.Decomposition
	opts   Options

	segs      []*segState
	startTime float64
	finished  bool

	totalDone float64 // bytes of U work done, all segments

	samples []sample // trailing work samples for speed
	ewma    float64
	ewmaOK  bool

	initTotalBytes float64

	snapshots   []Snapshot
	subscribers []func(Snapshot)
	triggers    []*Trigger

	updateTicker *vclock.Ticker
	sampleTicker *vclock.Ticker
}

type sample struct {
	t   float64
	cum float64
}

// New builds an Indicator for one decomposed plan. Call Start just before
// executing the query.
func New(clock *vclock.Clock, decomp *segment.Decomposition, opts Options) *Indicator {
	ind := &Indicator{
		clock:  clock,
		decomp: decomp,
		opts:   opts.withDefaults(clock),
	}
	for _, s := range decomp.Segments {
		ind.segs = append(ind.segs, &segState{
			seg:     s,
			inputs:  make([]inputState, len(s.Inputs)),
			lastDom: -1,
		})
	}
	ind.initTotalBytes = decomp.TotalInitCost()
	return ind
}

// Start begins monitoring: records the start time and registers the
// snapshot and speed-sampling tickers.
func (ind *Indicator) Start() {
	ind.startTime = ind.clock.Now()
	ind.samples = append(ind.samples[:0], sample{t: ind.startTime, cum: 0})
	ind.sampleTicker = ind.clock.AddTicker(ind.opts.SamplePeriod, ind.onSample)
	ind.updateTicker = ind.clock.AddTicker(ind.opts.UpdatePeriod, ind.onUpdate)
}

// Stop detaches the tickers; called automatically when the final segment
// completes.
func (ind *Indicator) Stop() {
	if ind.updateTicker != nil {
		ind.clock.RemoveTicker(ind.updateTicker)
		ind.updateTicker = nil
	}
	if ind.sampleTicker != nil {
		ind.clock.RemoveTicker(ind.sampleTicker)
		ind.sampleTicker = nil
	}
}

// Snapshots returns the recorded history (the paper's Section 6 notes
// that keeping this history enables performance tuning and triggers).
func (ind *Indicator) Snapshots() []Snapshot { return ind.snapshots }

// Subscribe registers fn to receive every snapshot as it is taken.
func (ind *Indicator) Subscribe(fn func(Snapshot)) {
	ind.subscribers = append(ind.subscribers, fn)
}

// InitialTotalU returns the optimizer's initial query cost estimate in U.
func (ind *Indicator) InitialTotalU() float64 {
	return ind.initTotalBytes / storage.PageSize
}

// --- WorkReporter implementation ---

func (ind *Indicator) addWork(b float64) { ind.totalDone += b }

func (ind *Indicator) markStarted(ss *segState) {
	if !ss.started {
		ss.started = true
		ss.startT = ind.clock.Now()
	}
}

// InputTuple implements segment.WorkReporter.
func (ind *Indicator) InputTuple(seg, input int, bytes int) {
	ss := ind.segs[seg]
	ind.markStarted(ss)
	in := &ss.inputs[input]
	in.firstTuples++
	in.firstBytes += float64(bytes)
	in.totalBytes += float64(bytes)
	ss.doneBytes += float64(bytes)
	ind.addWork(float64(bytes))
}

// InputBulk implements segment.WorkReporter.
func (ind *Indicator) InputBulk(seg, input int, tuples int64, bytes float64) {
	ss := ind.segs[seg]
	ind.markStarted(ss)
	in := &ss.inputs[input]
	in.firstTuples += tuples
	in.firstBytes += bytes
	in.totalBytes += bytes
	ss.doneBytes += bytes
	ind.addWork(bytes)
}

// InputRepeat implements segment.WorkReporter.
func (ind *Indicator) InputRepeat(seg, input int, tuples int64, bytes float64) {
	ss := ind.segs[seg]
	ind.markStarted(ss)
	in := &ss.inputs[input]
	in.totalBytes += bytes
	ss.doneBytes += bytes
	ind.addWork(bytes)
}

// InputDone implements segment.WorkReporter.
func (ind *Indicator) InputDone(seg, input int) {
	ind.segs[seg].inputs[input].exact = true
}

// OutputTuple implements segment.WorkReporter.
func (ind *Indicator) OutputTuple(seg int, bytes int) {
	ss := ind.segs[seg]
	ind.markStarted(ss)
	ss.outTuples++
	ss.outBytes += float64(bytes)
	ss.doneBytes += float64(bytes)
	ind.addWork(float64(bytes))
}

// Extra implements segment.WorkReporter.
func (ind *Indicator) Extra(seg int, bytes float64) {
	ss := ind.segs[seg]
	ind.markStarted(ss)
	ss.doneBytes += bytes
	ind.addWork(bytes)
}

// SegmentDone implements segment.WorkReporter. Segment boundaries are
// the vclock multi-worker sync points: the per-query worker clock
// publishes into the shared clock group here, so the engine-wide
// timeline max-merges at exactly the paper's pipeline-segment
// granularity.
func (ind *Indicator) SegmentDone(seg int) {
	ind.clock.Sync()
	ss := ind.segs[seg]
	ss.done = true
	ss.endT = ind.clock.Now()
	for i := range ss.inputs {
		ss.inputs[i].exact = true
	}
	ind.opts.Refine.SegmentsCompleted.Inc()
	ind.opts.Events.Emit("segment_done", ss.endT, map[string]any{
		"segment":  seg,
		"out_rows": ss.outTuples,
		"out_b":    ss.outBytes,
		"done_u":   ss.doneBytes / storage.PageSize,
		"start_t":  ss.startT,
	})
	if seg == len(ind.segs)-1 && !ind.finished {
		ind.finished = true
		ind.takeSnapshot()
		ind.Stop()
	}
}

// --- estimation (Sections 4.3 and 4.5) ---

// inputEst returns the current refined estimate for one input of segment
// ss, given the already-propagated output estimates of lower segments.
func (ind *Indicator) inputEst(ss *segState, idx int, outEsts []segment.Est) segment.Est {
	in := &ss.inputs[idx]
	si := ss.seg.Inputs[idx]
	if !si.Base {
		child := ind.segs[si.Child.ID]
		if child.done {
			// Exact: the lower segment's observed output.
			return segment.Est{Card: float64(child.outTuples), Width: avg(child.outBytes, child.outTuples, si.Init.Width)}
		}
		return outEsts[si.Child.ID]
	}
	// Base input: the two-case rule of Section 4.3.
	card := si.Init.Card
	if in.exact {
		card = float64(in.firstTuples)
	} else if float64(in.firstTuples) > card {
		card = float64(in.firstTuples)
	}
	width := si.Init.Width
	if in.firstTuples > 0 {
		width = in.firstBytes / float64(in.firstTuples)
	}
	return segment.Est{Card: card, Width: width}
}

func avg(bytes float64, tuples int64, fallback float64) float64 {
	if tuples > 0 {
		return bytes / float64(tuples)
	}
	return fallback
}

// dominantFraction computes p, the fraction of the dominant input(s)
// processed, using refined input cardinalities (max of the per-input
// fractions for two dominant inputs, per the paper's sort-merge rule).
func (ind *Indicator) dominantFraction(ss *segState, outEsts []segment.Est) float64 {
	p := 0.0
	best := -1
	for _, di := range ss.seg.Dominant {
		est := ind.inputEst(ss, di, outEsts)
		var q float64
		if est.Card > 0 {
			q = float64(ss.inputs[di].firstTuples) / est.Card
		} else if ss.inputs[di].firstTuples > 0 {
			q = 1
		}
		if q > 1 {
			q = 1
		}
		if q > p || best < 0 {
			p = q
			best = di
		}
	}
	if best >= 0 && ss.inputs[best].firstTuples > 0 {
		if ss.lastDom >= 0 && best != ss.lastDom {
			ind.opts.Refine.DominantSwitches.Inc()
		}
		ss.lastDom = best
	}
	return p
}

// estimate recomputes, in execution order, every segment's output
// estimate and cost, and returns the total estimated query cost in bytes.
// This is the paper's refinement procedure: exact costs for finished
// segments, the blended E = p·E2 + (1−p)·E1 for the current segment, and
// re-invocation of the cost module for future segments with propagated
// estimates.
// estimation is the result of one refinement pass.
type estimation struct {
	totalBytes float64
	current    int
	// segCost is the estimated total cost (bytes) per segment.
	segCost []float64
	// ioShare is each segment's estimated fraction of disk-resident
	// bytes (filled only when PerSegmentSpeed is enabled).
	ioShare []float64
	// p, e1 and e are the current segment's blend internals: the
	// dominant-input fraction, the optimizer estimate fixed at segment
	// start, and the blended output-cardinality estimate.
	p, e1, e float64
}

func (ind *Indicator) estimate() estimation {
	outEsts := make([]segment.Est, len(ind.segs))
	est := estimation{
		current: -1,
		segCost: make([]float64, len(ind.segs)),
	}
	if ind.opts.PerSegmentSpeed {
		est.ioShare = make([]float64, len(ind.segs))
	}
	for i, ss := range ind.segs {
		inputs := make([]segment.Est, len(ss.inputs))
		for j := range inputs {
			inputs[j] = ind.inputEst(ss, j, outEsts)
		}
		if est.ioShare != nil {
			est.ioShare[i] = ind.decomp.IOShare(ss.seg, inputs)
		}
		switch {
		case ss.done:
			est.segCost[i] = ss.doneBytes
			outEsts[i] = segment.Est{
				Card:  float64(ss.outTuples),
				Width: avg(ss.outBytes, ss.outTuples, ss.seg.InitOut.Width),
			}
		case ss.started:
			if est.current < 0 {
				est.current = i
			}
			evalOut, evalCost := ind.decomp.EvalSegment(ss.seg, inputs)
			if !ss.e1Valid {
				// E1 is fixed when the segment starts (the optimizer's
				// estimate given what was known at that moment).
				ss.e1 = evalOut.Card
				ss.e1Valid = true
			}
			p := ind.dominantFraction(ss, outEsts)
			e := ss.e1
			if p > 0 {
				e2 := float64(ss.outTuples) / p
				switch ind.opts.Estimator {
				case EstimatorStatic:
					// keep E1
				case EstimatorLinear:
					e = e2
				default:
					e = p*e2 + (1-p)*ss.e1
				}
			}
			width := avg(ss.outBytes, ss.outTuples, evalOut.Width)
			if est.current == i {
				est.p, est.e1, est.e = p, ss.e1, e
			}
			outEsts[i] = segment.Est{Card: e, Width: width}
			cost := evalCost
			if !ss.seg.Final {
				// Replace the module's output term with the blended one.
				cost = evalCost - evalOut.Bytes() + e*width
			}
			if cost < ss.doneBytes {
				cost = ss.doneBytes
			}
			est.segCost[i] = cost
		default:
			evalOut, evalCost := ind.decomp.EvalSegment(ss.seg, inputs)
			outEsts[i] = evalOut
			est.segCost[i] = evalCost
		}
		est.totalBytes += est.segCost[i]
	}
	return est
}

// remainingSeconds converts remaining U to time. The default is the
// paper's conversion: all remaining bytes at the single observed speed.
// With PerSegmentSpeed, future segments use a predicted rate from their
// disk/memory byte mix scaled by the currently observed load (Section
// 4.6's suggested refinement).
func (ind *Indicator) remainingSeconds(est estimation, speed float64) float64 {
	if speed <= 0 {
		return math.Inf(1)
	}
	if !ind.opts.PerSegmentSpeed || est.ioShare == nil {
		return (est.totalBytes - ind.totalDone) / speed
	}
	ioTPB := ind.clock.Costs().SeqPage / storage.PageSize // seconds per byte from disk
	memTPB := ioTPB / ind.opts.MemSpeedup
	pred := func(i int) float64 {
		s := est.ioShare[i]
		return s*ioTPB + (1-s)*memTPB
	}
	// The load factor compares the observed time-per-byte of the current
	// segment against its unloaded prediction, capturing both system
	// load and model miscalibration.
	load := 1.0
	if est.current >= 0 {
		if p := pred(est.current); p > 0 {
			load = (1 / speed) / p
		}
	}
	rem := 0.0
	for i, ss := range ind.segs {
		if ss.done {
			continue
		}
		segRem := math.Max(0, est.segCost[i]-ss.doneBytes)
		if i == est.current {
			rem += segRem / speed
		} else {
			rem += segRem * pred(i) * load
		}
	}
	return rem
}

// --- speed monitoring (Section 4.6) ---

func (ind *Indicator) onSample(now float64) {
	if len(ind.samples) > 0 && ind.opts.DecayAlpha > 0 {
		last := ind.samples[len(ind.samples)-1]
		if dt := now - last.t; dt > 0 {
			inst := (ind.totalDone - last.cum) / dt
			if ind.ewmaOK {
				ind.ewma = ind.opts.DecayAlpha*inst + (1-ind.opts.DecayAlpha)*ind.ewma
			} else {
				ind.ewma = inst
				ind.ewmaOK = true
			}
		}
	}
	ind.samples = append(ind.samples, sample{t: now, cum: ind.totalDone})
	// Prune samples older than the window (keep one beyond the edge for
	// interpolation).
	cutoff := now - ind.opts.SpeedWindow
	firstKeep := 0
	for i := len(ind.samples) - 1; i >= 0; i-- {
		if ind.samples[i].t <= cutoff {
			firstKeep = i
			break
		}
	}
	ind.samples = ind.samples[firstKeep:]
}

// speed returns the monitored execution speed in bytes per virtual
// second: work done in the trailing SpeedWindow seconds (or the overall
// average before a full window has elapsed), or the decayed average when
// enabled.
func (ind *Indicator) speed(now float64) float64 {
	if ind.opts.DecayAlpha > 0 && ind.ewmaOK {
		return ind.ewma
	}
	elapsed := now - ind.startTime
	if elapsed <= 0 {
		return 0
	}
	if len(ind.samples) == 0 || elapsed < ind.opts.SpeedWindow {
		return ind.totalDone / elapsed
	}
	base := ind.samples[0]
	dt := now - base.t
	if dt <= 0 {
		return ind.totalDone / elapsed
	}
	return (ind.totalDone - base.cum) / dt
}

// --- snapshots ---

func (ind *Indicator) onUpdate(float64) {
	if !ind.finished {
		ind.takeSnapshot()
	}
}

func (ind *Indicator) takeSnapshot() {
	// Publishing a report is a sync point for the shared clock group
	// (no-op on a groupless clock): Report always reflects this worker's
	// latest progress in the merged timeline.
	ind.clock.Sync()
	snap := ind.buildSnapshot()
	ind.snapshots = append(ind.snapshots, snap)
	ind.observe(snap)
	for _, fn := range ind.subscribers {
		fn(snap)
	}
	ind.fireTriggers(snap)
}

// observe publishes one snapshot to the refinement instruments and the
// structured event log; all sinks are nil-safe no-ops when disabled.
func (ind *Indicator) observe(snap Snapshot) {
	m := ind.opts.Refine
	m.Refreshes.Inc()
	m.SegmentP.Set(snap.CurrentP)
	m.BlendE1.Set(snap.CurrentE1)
	m.BlendE.Set(snap.CurrentE)
	m.EstTotalU.Set(snap.EstTotalU)
	m.RemainingSeconds.Set(snap.RemainingSeconds)
	m.RefreshU.Observe(snap.EstTotalU)
	ind.opts.Events.Emit("progress", snap.Time, map[string]any{
		"percent":       snap.Percent,
		"done_u":        snap.DoneU,
		"est_total_u":   snap.EstTotalU,
		"speed_u":       snap.SpeedU,
		"remaining_s":   snap.RemainingSeconds,
		"segment":       snap.CurrentSegment,
		"segments_done": snap.SegmentsDone,
		"p":             snap.CurrentP,
		"e1":            snap.CurrentE1,
		"e":             snap.CurrentE,
		"finished":      snap.Finished,
	})
}

// Current returns an on-demand snapshot without recording it.
func (ind *Indicator) Current() Snapshot { return ind.buildSnapshot() }

func (ind *Indicator) buildSnapshot() Snapshot {
	now := ind.clock.Now()
	est := ind.estimate()
	if est.totalBytes < ind.totalDone {
		est.totalBytes = ind.totalDone
	}
	speed := ind.speed(now)

	done := 0
	for _, ss := range ind.segs {
		if ss.done {
			done++
		}
	}

	snap := Snapshot{
		Time:           now,
		Elapsed:        now - ind.startTime,
		EstTotalU:      est.totalBytes / storage.PageSize,
		DoneU:          ind.totalDone / storage.PageSize,
		SpeedU:         speed / storage.PageSize,
		CurrentSegment: est.current,
		SegmentsDone:   done,
		CurrentP:       est.p,
		CurrentE1:      est.e1,
		CurrentE:       est.e,
		Finished:       ind.finished,
	}
	if est.totalBytes > 0 {
		snap.Percent = 100 * ind.totalDone / est.totalBytes
	}
	if ind.finished {
		snap.Percent = 100
		snap.RemainingSeconds = 0
		snap.CurrentSegment = -1
	} else {
		snap.RemainingSeconds = ind.remainingSeconds(est, speed)
	}
	if n := len(ind.segs); n > 0 {
		snap.StepPercent = 100 * float64(done) / float64(n)
	}
	optTotal := ind.initTotalBytes / ind.opts.OptimizerBytesPerSec
	snap.OptimizerRemainingSeconds = math.Max(0, optTotal-snap.Elapsed)
	return snap
}

package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/exec"
	"progressdb/internal/optimizer"
	"progressdb/internal/segment"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// testEnv bundles a loaded catalog with its clock.
type testEnv struct {
	cat   *catalog.Catalog
	clock *vclock.Clock
}

// buildEnv loads customer (300 × ~60B), orders (3000), lineitem (9000
// with padding so scans take pages), analyzed.
func buildEnv(t *testing.T, profile *vclock.LoadProfile) *testEnv {
	t.Helper()
	clock := vclock.New(vclock.Costs{SeqPage: 0.05, RandPage: 0.4, CPUTuple: 2e-5}, profile)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 2048))
	mk := func(name string, sch *tuple.Schema, n int, row func(i int) tuple.Tuple) {
		tb, err := cat.CreateTable(name, sch)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := cat.Insert(tb, row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.Heap.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	pad := strings.Repeat("x", 80)
	mk("customer", tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "nationkey", Type: tuple.Int},
		tuple.Column{Name: "filler", Type: tuple.String},
	), 300, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 25)), tuple.NewString(pad)}
	})
	mk("orders", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "filler", Type: tuple.String},
	), 3000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 300)), tuple.NewString(pad)}
	})
	mk("lineitem", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "partkey", Type: tuple.Int},
		tuple.Column{Name: "filler", Type: tuple.String},
	), 9000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i % 3000)), tuple.NewInt(int64(i + 1)), tuple.NewString(pad)}
	})
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return &testEnv{cat: cat, clock: clock}
}

// runWithIndicator plans sql, executes it with an Indicator, and returns
// the indicator plus the actual virtual duration.
func runWithIndicator(t *testing.T, te *testEnv, sql string, opts Options,
	planOpts optimizer.Options) (*Indicator, float64) {
	return runWithIndicatorMem(t, te, sql, opts, planOpts, 1024)
}

// runWithIndicatorMem is runWithIndicator with an explicit work_mem (in
// pages) used for both planning and execution.
func runWithIndicatorMem(t *testing.T, te *testEnv, sql string, opts Options,
	planOpts optimizer.Options, workMem int) (*Indicator, float64) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if planOpts.WorkMemPages == 0 {
		planOpts.WorkMemPages = workMem
	}
	p, err := optimizer.Plan(te.cat, stmt, planOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Cold buffer pool, as in the paper's restart-per-test methodology.
	if err := te.cat.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	te.cat.Pool().Clear()
	d := segment.Decompose(p, workMem)
	ind := New(te.clock, d, opts)
	ind.Start()
	start := te.clock.Now()
	env := &exec.Env{
		Pool: te.cat.Pool(), Clock: te.clock, WorkMemPages: workMem,
		Reporter: ind, Decomp: d,
	}
	if _, err := exec.Run(env, p, nil); err != nil {
		t.Fatal(err)
	}
	return ind, te.clock.Now() - start
}

var fastOpts = Options{UpdatePeriod: 0.5, SpeedWindow: 1, SamplePeriod: 0.1}

func TestQ1AccurateEstimatesStayFlat(t *testing.T) {
	te := buildEnv(t, nil)
	ind, _ := runWithIndicator(t, te, "select * from lineitem", fastOpts, optimizer.Options{})
	snaps := ind.Snapshots()
	if len(snaps) < 5 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	// With exact statistics the cost estimate never moves (Figure 4).
	first := snaps[0].EstTotalU
	for _, s := range snaps {
		if math.Abs(s.EstTotalU-first)/first > 0.02 {
			t.Fatalf("cost estimate moved: %g -> %g", first, s.EstTotalU)
		}
	}
	// Percent increases monotonically to 100 (Figure 7).
	last := -1.0
	for _, s := range snaps {
		if s.Percent < last-1e-9 {
			t.Fatalf("percent regressed: %g -> %g", last, s.Percent)
		}
		last = s.Percent
	}
	final := snaps[len(snaps)-1]
	if !final.Finished || final.Percent != 100 || final.RemainingSeconds != 0 {
		t.Fatalf("final snapshot: %+v", final)
	}
	// At completion the estimate equals the work done.
	if math.Abs(final.EstTotalU-final.DoneU) > 1e-6*final.DoneU+1e-9 {
		t.Fatalf("final estimate %g != done %g", final.EstTotalU, final.DoneU)
	}
}

func TestQ1RemainingTimeTracksActual(t *testing.T) {
	te := buildEnv(t, nil)
	ind, actual := runWithIndicator(t, te, "select * from lineitem", fastOpts, optimizer.Options{})
	snaps := ind.Snapshots()
	// Skip the first snapshot (speed warm-up); afterwards the estimated
	// remaining time should track actual remaining within 25% (Figure 6:
	// the dashed line almost coincides).
	for _, s := range snaps[1 : len(snaps)-1] {
		if s.Elapsed < 2 {
			continue // speed warm-up: the window still includes the
			// expensive initial random I/O
		}
		wantRemaining := actual - s.Elapsed
		if wantRemaining <= 1 {
			continue
		}
		rel := math.Abs(s.RemainingSeconds-wantRemaining) / wantRemaining
		if rel > 0.25 {
			t.Fatalf("at t=%.1f: est remaining %.1f vs actual %.1f (%.0f%% off)",
				s.Elapsed, s.RemainingSeconds, wantRemaining, rel*100)
		}
	}
}

// The Figure 9 behaviour: a function predicate (selectivity guessed 1/3,
// truly 1) makes the initial cost too low; the estimate rises while the
// mispredicted scan runs and converges to the exact cost.
func TestQ2StyleCostConvergence(t *testing.T) {
	te := buildEnv(t, nil)
	sql := `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey and absolute(l.partkey) > 0`
	// Work_mem of 2 pages: the joins go Grace, so the σ(lineitem)
	// partitioning is its own counted segment — the paper's Figure 8/9
	// situation on 2004-era PostgreSQL with sub-megabyte sort_mem.
	ind, _ := runWithIndicatorMem(t, te, sql, fastOpts, optimizer.Options{}, 2)
	snaps := ind.Snapshots()
	if len(snaps) < 6 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	first, final := snaps[0], snaps[len(snaps)-1]
	if final.EstTotalU <= first.EstTotalU*1.1 {
		t.Fatalf("estimate should grow markedly: %g -> %g", first.EstTotalU, final.EstTotalU)
	}
	if math.Abs(final.EstTotalU-final.DoneU) > 1e-6*final.DoneU {
		t.Fatalf("final estimate %g != done %g", final.EstTotalU, final.DoneU)
	}
	// The indicator's initial estimate equals the optimizer's.
	if math.Abs(first.EstTotalU-ind.InitialTotalU())/ind.InitialTotalU() > 0.25 {
		t.Fatalf("first snapshot %g far from initial optimizer estimate %g",
			first.EstTotalU, ind.InitialTotalU())
	}
}

// Section 4.3 case (b): when the real base-input cardinality exceeds the
// optimizer's Ne, the estimate switches to the running count.
func TestBaseInputUnderestimateCorrected(t *testing.T) {
	te := buildEnv(t, nil)
	// Make the stats stale: double lineitem after ANALYZE.
	li, _ := te.cat.Table("lineitem")
	pad := strings.Repeat("x", 80)
	for i := 0; i < 9000; i++ {
		te.cat.Insert(li, tuple.Tuple{
			tuple.NewInt(int64(i % 3000)), tuple.NewInt(int64(i + 1)), tuple.NewString(pad)})
	}
	li.Heap.Sync()
	ind, _ := runWithIndicator(t, te, "select * from lineitem", fastOpts, optimizer.Options{})
	snaps := ind.Snapshots()
	first, final := snaps[0], snaps[len(snaps)-1]
	// Early: estimate sticks to Ne. Late: roughly double.
	if final.EstTotalU < first.EstTotalU*1.7 {
		t.Fatalf("stale-stats estimate did not grow: %g -> %g", first.EstTotalU, final.EstTotalU)
	}
	if final.Percent != 100 {
		t.Fatalf("final percent %g", final.Percent)
	}
}

// I/O interference (Figure 14/15 shape): speed drops during the loaded
// interval and the remaining-time estimate rises sharply at its start.
func TestIOInterferenceShapes(t *testing.T) {
	// First measure the unloaded duration to size the interference window.
	base := buildEnv(t, nil)
	_, unloaded := runWithIndicator(t, base, "select * from lineitem", fastOpts, optimizer.Options{})

	te := buildEnv(t, nil)
	// Interference begins 30% into the (unloaded) duration, measured
	// from the query's start on this clock, and lasts past its end.
	start := te.clock.Now()
	prof, err := vclock.NewLoadProfile(vclock.Interval{
		Start: start + unloaded*0.3, End: start + unloaded*10, IOFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	te.clock.SetProfile(prof)
	ind, loaded := runWithIndicator(t, te, "select * from lineitem", fastOpts, optimizer.Options{})
	if loaded < unloaded*1.5 {
		t.Fatalf("interference should slow the query: %.1f vs %.1f", loaded, unloaded)
	}
	snaps := ind.Snapshots()
	// Find average speed before and during interference.
	var preSpeed, midSpeed []float64
	for _, s := range snaps {
		switch {
		case s.Elapsed < unloaded*0.3 && s.Elapsed > unloaded*0.1:
			preSpeed = append(preSpeed, s.SpeedU)
		case s.Elapsed > unloaded*0.5 && !s.Finished:
			midSpeed = append(midSpeed, s.SpeedU)
		}
	}
	if len(preSpeed) == 0 || len(midSpeed) == 0 {
		t.Fatalf("not enough snapshots: %d", len(snaps))
	}
	if mean(midSpeed) > mean(preSpeed)*0.5 {
		t.Fatalf("speed should drop under 4x I/O interference: pre %.1f mid %.1f",
			mean(preSpeed), mean(midSpeed))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestDecayingAverageSmoothing(t *testing.T) {
	te := buildEnv(t, nil)
	opts := fastOpts
	opts.DecayAlpha = 0.3
	ind, _ := runWithIndicator(t, te, "select * from lineitem", opts, optimizer.Options{})
	snaps := ind.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	for _, s := range snaps[1:] {
		if s.SpeedU <= 0 && !s.Finished {
			t.Fatalf("decayed speed should be positive: %+v", s)
		}
	}
}

func TestTriggersFire(t *testing.T) {
	te := buildEnv(t, nil)
	stmt, _ := sqlparser.Parse("select * from lineitem")
	p, err := optimizer.Plan(te.cat, stmt, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := segment.Decompose(p, 1024)
	te.cat.Pool().Flush()
	te.cat.Pool().Clear()
	ind := New(te.clock, d, fastOpts)
	fired := 0
	// "Alert if after 1 virtual second less than 99% done" — will fire.
	ind.AddTrigger(SlowProgressTrigger("slow", 1.0, 99, func(Snapshot) { fired++ }))
	// Fire-once semantics.
	if err := ind.AddTrigger(&Trigger{}); err == nil {
		t.Fatal("trigger without Cond/Action must be rejected")
	}
	ind.Start()
	env := &exec.Env{Pool: te.cat.Pool(), Clock: te.clock, WorkMemPages: 1024, Reporter: ind, Decomp: d}
	if _, err := exec.Run(env, p, nil); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fire-once trigger fired %d times", fired)
	}
}

func TestRepeatingTrigger(t *testing.T) {
	te := buildEnv(t, nil)
	stmt, _ := sqlparser.Parse("select * from lineitem")
	p, _ := optimizer.Plan(te.cat, stmt, optimizer.Options{})
	d := segment.Decompose(p, 1024)
	te.cat.Pool().Flush()
	te.cat.Pool().Clear()
	ind := New(te.clock, d, fastOpts)
	fired := 0
	ind.AddTrigger(&Trigger{
		Name:   "every-snapshot",
		Cond:   func(Snapshot) bool { return true },
		Action: func(Snapshot) { fired++ },
		Repeat: true,
	})
	ind.Start()
	env := &exec.Env{Pool: te.cat.Pool(), Clock: te.clock, WorkMemPages: 1024, Reporter: ind, Decomp: d}
	exec.Run(env, p, nil)
	if fired < 3 {
		t.Fatalf("repeating trigger fired %d times", fired)
	}
}

func TestStepBaselineCoarseness(t *testing.T) {
	te := buildEnv(t, nil)
	sql := `select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`
	ind, _ := runWithIndicator(t, te, sql, fastOpts, optimizer.Options{})
	snaps := ind.Snapshots()
	// The step baseline only takes a few discrete values (the paper's
	// point: step counting is too coarse).
	values := map[float64]bool{}
	for _, s := range snaps {
		values[s.StepPercent] = true
	}
	if len(values) > 4 {
		t.Fatalf("step baseline took %d distinct values for a 3-segment plan", len(values))
	}
}

func TestCurrentSnapshotOnDemand(t *testing.T) {
	te := buildEnv(t, nil)
	stmt, _ := sqlparser.Parse("select * from customer")
	p, _ := optimizer.Plan(te.cat, stmt, optimizer.Options{})
	d := segment.Decompose(p, 1024)
	te.cat.Pool().Flush()
	te.cat.Pool().Clear()
	ind := New(te.clock, d, fastOpts)
	ind.Start()
	pre := ind.Current()
	if pre.Percent != 0 || pre.Finished {
		t.Fatalf("pre-execution snapshot: %+v", pre)
	}
	env := &exec.Env{Pool: te.cat.Pool(), Clock: te.clock, WorkMemPages: 1024, Reporter: ind, Decomp: d}
	exec.Run(env, p, nil)
	post := ind.Current()
	if !post.Finished || post.Percent != 100 {
		t.Fatalf("post-execution snapshot: %+v", post)
	}
}

func TestSubscribersReceiveSnapshots(t *testing.T) {
	te := buildEnv(t, nil)
	stmt, _ := sqlparser.Parse("select * from lineitem")
	p, _ := optimizer.Plan(te.cat, stmt, optimizer.Options{})
	d := segment.Decompose(p, 1024)
	te.cat.Pool().Flush()
	te.cat.Pool().Clear()
	ind := New(te.clock, d, fastOpts)
	var got []Snapshot
	ind.Subscribe(func(s Snapshot) { got = append(got, s) })
	ind.Start()
	env := &exec.Env{Pool: te.cat.Pool(), Clock: te.clock, WorkMemPages: 1024, Reporter: ind, Decomp: d}
	exec.Run(env, p, nil)
	if len(got) != len(ind.Snapshots()) {
		t.Fatalf("subscriber saw %d of %d snapshots", len(got), len(ind.Snapshots()))
	}
}

// Every query shape must end with estimate == done and percent 100.
func TestInvariantFinalConvergence(t *testing.T) {
	queries := []struct {
		sql string
		opt optimizer.Options
	}{
		{"select * from customer", optimizer.Options{}},
		{"select custkey from customer where nationkey < 10", optimizer.Options{}},
		{"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey", optimizer.Options{}},
		{"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey", optimizer.Options{ForceJoinAlgo: "merge"}},
		{"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey", optimizer.Options{ForceJoinAlgo: "nl"}},
		{`select c.custkey, o.orderkey, l.partkey from customer c, orders o, lineitem l
		  where c.custkey = o.custkey and o.orderkey = l.orderkey and absolute(l.partkey) > 0`, optimizer.Options{}},
	}
	for _, q := range queries {
		te := buildEnv(t, nil)
		ind, _ := runWithIndicator(t, te, q.sql, fastOpts, q.opt)
		snaps := ind.Snapshots()
		if len(snaps) == 0 {
			t.Fatalf("%q: no snapshots", q.sql)
		}
		final := snaps[len(snaps)-1]
		if !final.Finished {
			t.Fatalf("%q: final snapshot not finished", q.sql)
		}
		if math.Abs(final.EstTotalU-final.DoneU) > 1e-6*final.DoneU+1e-9 {
			t.Fatalf("%q: final estimate %g != done %g", q.sql, final.EstTotalU, final.DoneU)
		}
		for _, s := range snaps {
			if s.Percent < 0 || s.Percent > 100.0001 {
				t.Fatalf("%q: percent out of range: %g", q.sql, s.Percent)
			}
			if s.DoneU > s.EstTotalU*1.0001 {
				t.Fatalf("%q: done %g exceeds estimate %g", q.sql, s.DoneU, s.EstTotalU)
			}
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatDuration(5*3600 + 3*60 + 7); got != "5 hour 3 min 7 sec" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatDuration(42); got != "42 sec" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatDuration(math.Inf(1)); got != "unknown" {
		t.Fatalf("FormatDuration(inf) = %q", got)
	}
	s := Format("Query 1", Snapshot{Elapsed: 65, RemainingSeconds: 10, Percent: 86.6, EstTotalU: 1502831, SpeedU: 22})
	for _, want := range []string{"Query 1", "1 min 5 sec", "1502831 U", "22 U/Sec", "87% done"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestRankByRemaining(t *testing.T) {
	latest := map[string]Snapshot{
		"fast":   {RemainingSeconds: 10},
		"slow":   {RemainingSeconds: 1000},
		"medium": {RemainingSeconds: 100},
	}
	got := RankByRemaining(latest)
	want := []string{"slow", "medium", "fast"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankByRemaining = %v", got)
		}
	}
}

func TestFormatIncludesDurationStyle(t *testing.T) {
	// Sanity check the Figure 2 style end to end.
	snap := Snapshot{Elapsed: 18187, RemainingSeconds: 51916, Percent: 24, EstTotalU: 1502831, SpeedU: 22}
	s := Format("Query 1", snap)
	if !strings.Contains(s, "5 hour 3 min 7 sec") || !strings.Contains(s, "14 hour 25 min 16 sec") {
		t.Fatalf("Figure 2 durations wrong:\n%s", s)
	}
	_ = fmt.Sprintf
}

// Aggregation and ORDER BY introduce new blocking segment kinds; the
// indicator must handle them like any other segment and converge.
func TestProgressOverAggregationAndSort(t *testing.T) {
	queries := []string{
		"select nationkey, count(*) from customer group by nationkey",
		"select c.nationkey, count(*) from customer c, orders o where c.custkey = o.custkey group by c.nationkey",
		"select custkey from customer order by custkey desc",
		"select custkey from customer order by custkey limit 5",
	}
	for _, sql := range queries {
		te := buildEnv(t, nil)
		ind, _ := runWithIndicator(t, te, sql, fastOpts, optimizer.Options{})
		snaps := ind.Snapshots()
		if len(snaps) == 0 {
			t.Fatalf("%q: no snapshots", sql)
		}
		final := snaps[len(snaps)-1]
		if !final.Finished || final.Percent != 100 {
			t.Fatalf("%q: final snapshot %+v", sql, final)
		}
		for _, s := range snaps {
			if s.Percent < 0 || s.Percent > 100.0001 {
				t.Fatalf("%q: percent %g", sql, s.Percent)
			}
		}
	}
}

// Correlated subqueries (the paper's Section 6 future-work item) become
// semi-join segments; progress must converge over them too.
func TestProgressOverCorrelatedSubquery(t *testing.T) {
	queries := []string{
		`select c.custkey from customer c
		 where exists (select * from orders o where o.custkey = c.custkey)`,
		`select c.custkey from customer c
		 where not exists (select * from orders o where o.custkey = c.custkey and o.orderkey < 100)`,
		`select custkey from customer where custkey in (select custkey from orders)`,
	}
	for _, sql := range queries {
		te := buildEnv(t, nil)
		ind, _ := runWithIndicator(t, te, sql, fastOpts, optimizer.Options{})
		snaps := ind.Snapshots()
		if len(snaps) == 0 {
			t.Fatalf("%q: no snapshots", sql)
		}
		final := snaps[len(snaps)-1]
		if !final.Finished || final.Percent != 100 {
			t.Fatalf("%q: final %+v", sql, final)
		}
		if math.Abs(final.EstTotalU-final.DoneU) > 1e-6*final.DoneU {
			t.Fatalf("%q: estimate %g != done %g", sql, final.EstTotalU, final.DoneU)
		}
	}
}

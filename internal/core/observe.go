package core

import (
	"progressdb/internal/obs"
)

// RefinementMetrics are the indicator's engine-wide instruments: they
// expose the Section 4.5 refinement internals (the E = p·E2 + (1−p)·E1
// blend inputs, the dominant-input fraction p, dominant-input switches)
// and the refresh cadence. The zero value is the disabled state; every
// update is a nil-safe no-op.
type RefinementMetrics struct {
	// Refreshes counts progress snapshots taken.
	Refreshes *obs.Counter
	// SegmentsCompleted counts segment completions.
	SegmentsCompleted *obs.Counter
	// DominantSwitches counts changes of which dominant input currently
	// supplies p (possible only for sort-merge segments with two dominant
	// inputs).
	DominantSwitches *obs.Counter
	// SegmentP is the current segment's dominant-input fraction p.
	SegmentP *obs.Gauge
	// BlendE1 and BlendE are the current segment's optimizer estimate E1
	// and blended output-cardinality estimate E.
	BlendE1, BlendE *obs.Gauge
	// EstTotalU is the refined total query cost estimate, in U.
	EstTotalU *obs.Gauge
	// RemainingSeconds is the latest remaining-time estimate.
	RemainingSeconds *obs.Gauge
	// RefreshU is a histogram of the refined total-U estimate at each
	// refresh, showing how the estimate distribution evolves.
	RefreshU *obs.Histogram
}

// NewRefinementMetrics registers the indicator's instruments in reg. A
// nil registry yields the zero (disabled) metrics.
func NewRefinementMetrics(reg *obs.Registry) RefinementMetrics {
	if reg == nil {
		return RefinementMetrics{}
	}
	return RefinementMetrics{
		Refreshes:         reg.Counter("indicator_refreshes_total", "progress snapshots taken"),
		SegmentsCompleted: reg.Counter("indicator_segments_completed_total", "segments completed"),
		DominantSwitches:  reg.Counter("indicator_dominant_switches_total", "dominant-input switches within a segment"),
		SegmentP:          reg.Gauge("indicator_segment_p", "current segment's dominant-input fraction p"),
		BlendE1:           reg.Gauge("indicator_blend_e1", "current segment's optimizer output estimate E1 (rows)"),
		BlendE:            reg.Gauge("indicator_blend_e", "current segment's blended output estimate E (rows)"),
		EstTotalU:         reg.Gauge("indicator_est_total_u", "refined total query cost estimate in U"),
		RemainingSeconds:  reg.Gauge("indicator_remaining_seconds", "estimated remaining execution time"),
		RefreshU:          reg.Histogram("progress_refresh_u", "refined total-U estimate at each refresh", []float64{10, 100, 1000, 10000, 100000}),
	}
}

// Package tsdb is the observability plane's in-process timeseries
// store: a fixed-capacity ring buffer per metric series, fed by
// periodically sampling an obs.Registry snapshot, and queried as
// windowed, downsampled point lists for dashboards and tests.
//
// The store is deliberately clock-agnostic: every Record call carries
// its own timestamp (seconds, as a float64). The daemon's sampler
// stamps samples with wall-clock time; tests stamp them with the
// engine's virtual clock, which keeps the whole plane deterministic
// under `go test` — the same split the rest of the repository uses
// (wall time belongs to the serving layer, virtual time to the engine).
//
// Concurrency: the store is written by one sampler and read by many
// HTTP handlers. The series map is guarded by an RWMutex taken only to
// look up or create series; each series has its own small mutex around
// its ring, so a Record pass over N series takes N brief uncontended
// locks and readers never block the sampler for long ("lock-cheap"
// rather than lock-free — the sampler runs at ~1 Hz, not in a query
// hot loop).
package tsdb

import (
	"sort"
	"strings"
	"sync"

	"progressdb/internal/obs"
)

// Ref marks a string literal as a reference to a registered metric
// series name (e.g. the dashboard's sparkline list). It is the identity
// function at runtime; its value is that the obsnames analyzer resolves
// every Ref call site against the module's actual registrations, so a
// dashboard or sampler list cannot silently name a series that nothing
// registers. Histogram-derived series may be referenced with a _count
// or _sum suffix on the registered histogram name.
func Ref(name string) string { return name }

// Point is one timestamped sample value.
type Point struct {
	// T is the sample time in seconds (wall clock in the daemon,
	// virtual clock in tests — whatever the Record caller supplied).
	T float64 `json:"t"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// series is one metric's ring buffer.
type series struct {
	kind obs.Kind
	help string

	mu   sync.Mutex
	buf  []Point // fixed capacity
	head int     // next write slot
	n    int     // filled entries (≤ cap)
}

// append adds one point, overwriting the oldest when full.
func (s *series) append(p Point) {
	s.mu.Lock()
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// points returns the ring's contents in time order.
func (s *series) points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// Store holds one ring buffer per metric series.
type Store struct {
	capacity int

	mu     sync.RWMutex
	series map[string]*series
}

// New creates a store whose rings hold capacity points per series
// (minimum 2; a typical daemon setting is 720 = 12 minutes at 1 Hz).
func New(capacity int) *Store {
	if capacity < 2 {
		capacity = 2
	}
	return &Store{capacity: capacity, series: make(map[string]*series)}
}

// Capacity returns the per-series ring capacity.
func (st *Store) Capacity() int { return st.capacity }

// Record appends one point per sample at time now. Counters and gauges
// record their value under the sample's series ID (name plus label);
// histograms record two derived series, <name>_count and <name>_sum,
// which is what a sparkline can plot (bucket vectors don't fit a ring
// of scalars). Samples the store has never seen allocate their ring on
// first use; the set of series is in practice fixed after the first
// Record, so steady-state Record allocates nothing but the point grid.
func (st *Store) Record(now float64, samples []obs.Sample) {
	for _, s := range samples {
		switch s.Kind {
		case obs.KindHistogram:
			st.get(s.ID()+"_count", s.Kind, s.Help).append(Point{T: now, V: float64(s.Count)})
			st.get(s.ID()+"_sum", s.Kind, s.Help).append(Point{T: now, V: s.Sum})
		default:
			st.get(s.ID(), s.Kind, s.Help).append(Point{T: now, V: s.Value})
		}
	}
}

func (st *Store) get(id string, kind obs.Kind, help string) *series {
	st.mu.RLock()
	sr := st.series[id]
	st.mu.RUnlock()
	if sr != nil {
		return sr
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if sr = st.series[id]; sr != nil {
		return sr
	}
	sr = &series{kind: kind, help: help, buf: make([]Point, st.capacity)}
	st.series[id] = sr
	return sr
}

// Names returns every series ID the store has recorded, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.series))
	for id := range st.series {
		out = append(out, id)
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Series is one queried series: its identity and windowed points.
type Series struct {
	Name string   `json:"name"`
	Kind obs.Kind `json:"kind"`
	Help string   `json:"help,omitempty"`
	// Points are in time order, downsampled to the query's budget.
	Points []Point `json:"points"`
}

// Query returns the named series (every recorded series when names is
// empty) restricted to timestamps in [from, to] and downsampled to at
// most maxPoints points each (0 means no downsampling). Series are
// returned sorted by name; a requested name with no recorded points
// yields a series with an empty Points slice, so callers can tell
// "unknown series" apart from "no data in window".
func (st *Store) Query(names []string, from, to float64, maxPoints int) []Series {
	if len(names) == 0 {
		names = st.Names()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	out := make([]Series, 0, len(names))
	for _, id := range names {
		st.mu.RLock()
		sr := st.series[id]
		st.mu.RUnlock()
		if sr == nil {
			continue
		}
		pts := sr.points()
		lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= from })
		hi := sort.Search(len(pts), func(i int) bool { return pts[i].T > to })
		windowed := pts[lo:hi]
		out = append(out, Series{
			Name:   id,
			Kind:   sr.kind,
			Help:   sr.help,
			Points: downsample(windowed, maxPoints),
		})
	}
	return out
}

// downsample reduces pts to at most max points by averaging fixed-width
// time buckets (each emitted point carries the bucket's mean value at
// the bucket's last sample time). Averaging is the right default for
// sparklines: gauges smooth, and cumulative counters keep their slope.
func downsample(pts []Point, max int) []Point {
	out := make([]Point, 0, len(pts))
	if max <= 0 || len(pts) <= max {
		return append(out, pts...)
	}
	span := pts[len(pts)-1].T - pts[0].T
	if span <= 0 {
		// All points share one timestamp; keep the last.
		return append(out, pts[len(pts)-1])
	}
	width := span / float64(max)
	bucket := 0
	var sum float64
	var n int
	var last Point
	for _, p := range pts {
		b := int((p.T - pts[0].T) / width)
		if b >= max {
			b = max - 1
		}
		if n > 0 && b != bucket {
			out = append(out, Point{T: last.T, V: sum / float64(n)})
			sum, n = 0, 0
		}
		bucket = b
		sum += p.V
		n++
		last = p
	}
	if n > 0 {
		out = append(out, Point{T: last.T, V: sum / float64(n)})
	}
	return out
}

// HasPrefix reports whether the series ID's metric name (the part
// before any label brace) starts with prefix — a convenience for tests
// asserting coverage of a subsystem's series.
func HasPrefix(id, prefix string) bool {
	name := id
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name = id[:i]
	}
	return strings.HasPrefix(name, prefix)
}

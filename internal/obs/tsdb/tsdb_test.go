package tsdb

import (
	"math"
	"sync"
	"testing"

	"progressdb/internal/obs"
)

func sampleSet(reg *obs.Registry) []obs.Sample { return reg.Snapshot() }

func TestRecordAndQueryWindow(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("engine_queries_total", "queries")
	g := reg.Gauge("server_queue_depth", "depth")

	st := New(16)
	for i := 0; i < 10; i++ {
		c.Inc()
		g.Set(float64(i * 2))
		st.Record(float64(i), sampleSet(reg))
	}

	got := st.Query([]string{"server_queue_depth"}, 3, 7, 0)
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	pts := got[0].Points
	if len(pts) != 5 {
		t.Fatalf("windowed points = %d, want 5 (t=3..7)", len(pts))
	}
	for i, p := range pts {
		wantT := float64(3 + i)
		if p.T != wantT || p.V != wantT*2 {
			t.Fatalf("point %d = (%g,%g), want (%g,%g)", i, p.T, p.V, wantT, wantT*2)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("server_queue_depth", "depth")
	st := New(4)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		st.Record(float64(i), sampleSet(reg))
	}
	got := st.Query(nil, math.Inf(-1), math.Inf(1), 0)
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	pts := got[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.T != want {
			t.Fatalf("point %d at t=%g, want %g (oldest must be evicted)", i, p.T, want)
		}
	}
}

func TestDownsampleBudget(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("server_queue_depth", "depth")
	st := New(256)
	for i := 0; i < 100; i++ {
		g.Set(float64(i))
		st.Record(float64(i), sampleSet(reg))
	}
	got := st.Query(nil, 0, 99, 10)
	pts := got[0].Points
	if len(pts) == 0 || len(pts) > 10 {
		t.Fatalf("downsampled to %d points, want 1..10", len(pts))
	}
	// Bucket means of a strictly increasing gauge stay strictly increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].V <= pts[i-1].V || pts[i].T <= pts[i-1].T {
			t.Fatalf("downsampled points not increasing: %+v", pts)
		}
	}
}

func TestHistogramDerivedSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("server_query_wall_seconds", "wall", []float64{1, 10})
	st := New(8)
	h.Observe(0.5)
	h.Observe(5)
	st.Record(1, sampleSet(reg))
	names := st.Names()
	want := []string{"server_query_wall_seconds_count", "server_query_wall_seconds_sum"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("names = %v, want %v", names, want)
	}
	got := st.Query([]string{"server_query_wall_seconds_count"}, 0, 2, 0)
	if got[0].Points[0].V != 2 {
		t.Fatalf("histogram count sample = %g, want 2", got[0].Points[0].V)
	}
}

func TestLabeledSeriesKeepIdentity(t *testing.T) {
	reg := obs.NewRegistry()
	reg.LabeledGauge("vclock_units", "kind", "cpu", "units").Set(3)
	reg.LabeledGauge("vclock_units", "kind", "seq-io", "units").Set(7)
	st := New(8)
	st.Record(0, sampleSet(reg))
	if got := len(st.Names()); got != 2 {
		t.Fatalf("labeled series = %d, want 2 (%v)", got, st.Names())
	}
	if !HasPrefix(`vclock_units{kind="cpu"}`, "vclock_") {
		t.Fatal("HasPrefix must strip the label part")
	}
}

func TestUnknownSeriesOmitted(t *testing.T) {
	st := New(8)
	if got := st.Query([]string{"server_nonexistent_total"}, 0, 1, 0); len(got) != 0 {
		t.Fatalf("unknown series returned %v, want none", got)
	}
}

// TestConcurrentRecordQuery exercises the sampler-vs-readers locking
// under the race detector.
func TestConcurrentRecordQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("engine_queries_total", "queries")
	st := New(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st.Query(nil, math.Inf(-1), math.Inf(1), 16)
					st.Names()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		c.Inc()
		st.Record(float64(i), sampleSet(reg))
	}
	close(stop)
	wg.Wait()
}

func TestRefIsIdentity(t *testing.T) {
	if Ref("server_queue_depth") != "server_queue_depth" {
		t.Fatal("Ref must be the identity function")
	}
}

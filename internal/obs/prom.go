package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusText renders the registry's snapshot in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE comment lines
// followed by one sample line per series. Histograms expand to
// _bucket{le=...}, _sum, and _count series. The output is deterministic
// (sorted by metric name, then label).
func (r *Registry) PrometheusText() string {
	return FormatPrometheusText(r.Snapshot())
}

// FormatPrometheusText renders samples (as returned by Registry.Snapshot
// or ParsePrometheusText) to the text exposition format.
func FormatPrometheusText(samples []Sample) string {
	// Group series by metric name so HELP/TYPE headers appear once.
	byName := map[string][]Sample{}
	var names []string
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			names = append(names, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		group := byName[name]
		if h := group[0].Help; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, group[0].Kind)
		for _, s := range group {
			switch s.Kind {
			case KindHistogram:
				for _, bk := range s.Buckets {
					fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, formatLE(bk.LE), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count %d\n", name, s.Count)
			default:
				fmt.Fprintf(&b, "%s %s\n", s.ID(), formatFloat(s.Value))
			}
		}
	}
	return b.String()
}

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsePrometheusText parses text in the exposition format produced by
// PrometheusText back into samples, reassembling histogram bucket/sum/
// count series. It understands the subset of the format this package
// emits (one optional label pair per series) — enough for round-trip
// tests and for scraping the engine's own output.
func ParsePrometheusText(text string) ([]Sample, error) {
	metas := map[string]seriesMeta{}
	// partial histograms being reassembled, keyed by base metric name.
	hists := map[string]*Sample{}
	var out []Sample

	flushHist := func(name string) {
		if h, ok := hists[name]; ok {
			out = append(out, *h)
			delete(hists, name)
		}
	}

	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "HELP":
					m := metas[fields[2]]
					if len(fields) == 4 {
						m.help = fields[3]
					}
					metas[fields[2]] = m
				case "TYPE":
					m := metas[fields[2]]
					if len(fields) >= 4 {
						m.kind = Kind(fields[3])
					}
					metas[fields[2]] = m
				}
			}
			continue
		}
		// Sample line: name[{k="v"}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: line %d: no value in %q", lineNo+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %w", lineNo+1, valStr, err)
		}
		name := series
		var lk, lv string
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("obs: line %d: unterminated label in %q", lineNo+1, series)
			}
			name = series[:i]
			label := series[i+1 : len(series)-1]
			eq := strings.IndexByte(label, '=')
			if eq < 0 {
				return nil, fmt.Errorf("obs: line %d: bad label %q", lineNo+1, label)
			}
			lk = label[:eq]
			lv = strings.Trim(label[eq+1:], "\"")
		}

		// Histogram component series?
		base, comp := histComponent(name, metas)
		if comp != "" {
			h := hists[base]
			if h == nil {
				m := metas[base]
				h = &Sample{Name: base, Kind: KindHistogram, Help: m.help}
				hists[base] = h
			}
			switch comp {
			case "bucket":
				if lk != "le" {
					return nil, fmt.Errorf("obs: line %d: histogram bucket without le label", lineNo+1)
				}
				le, err := parseLE(lv)
				if err != nil {
					return nil, fmt.Errorf("obs: line %d: %w", lineNo+1, err)
				}
				h.Buckets = append(h.Buckets, Bucket{LE: le, Count: int64(val)})
			case "sum":
				h.Sum = val
			case "count":
				h.Count = int64(val)
				flushHist(base) // _count is emitted last
			}
			continue
		}

		m := metas[name]
		kind := m.kind
		if kind == "" {
			kind = KindGauge // untyped: treat as gauge
		}
		out = append(out, Sample{
			Name: name, LabelKey: lk, LabelVal: lv,
			Kind: kind, Help: m.help, Value: val,
		})
	}
	// Flush any histogram missing its _count line.
	for name := range hists {
		flushHist(name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out, nil
}

// seriesMeta is the HELP/TYPE metadata accumulated while parsing.
type seriesMeta struct {
	help string
	kind Kind
}

// histComponent reports whether name is a histogram component series
// (base_bucket, base_sum, base_count for a base declared as TYPE
// histogram), returning the base name and the component.
func histComponent(name string, metas map[string]seriesMeta) (base, comp string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			b := strings.TrimSuffix(name, suffix)
			if metas[b].kind == KindHistogram {
				return b, strings.TrimPrefix(suffix, "_")
			}
		}
	}
	return "", ""
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// Package obs is the engine's observability substrate: a lightweight
// metrics registry (counters, gauges, histograms) and a per-query tracer
// (span trees plus a JSONL structured event log).
//
// Design constraints, in the spirit of the paper's "< 1% penalty on the
// running time of queries" budget (Section 5.4):
//
//   - Zero allocation on the hot path. Instruments are resolved once at
//     wiring time; Inc/Add/Set/Observe touch a single atomic word.
//   - Nil-safe. Every instrument method no-ops on a nil receiver, so
//     "observability disabled" is simply a nil *Registry propagated
//     through the wiring — the paper's statistics-collection flag turned
//     off — with only a nil check left behind on the hot path.
//   - Snapshot-able. Registry state renders to a Prometheus-style text
//     exposition and to JSON; see prom.go.
//
// The registry is safe for concurrent use (the group scheduler may touch
// instruments from several goroutines).
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued instrument that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, tracking the total count and sum as Prometheus histograms do.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    Gauge
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~12) and branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Kind is an instrument type.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// instrument is one registered metric series.
type instrument struct {
	name     string
	labelKey string
	labelVal string
	help     string
	kind     Kind

	c *Counter
	g *Gauge
	h *Histogram
}

func (in *instrument) id() string { return seriesID(in.name, in.labelKey, in.labelVal) }

func seriesID(name, lk, lv string) string {
	if lk == "" {
		return name
	}
	return name + "{" + lk + "=\"" + lv + "\"}"
}

// Registry holds named instruments. The zero value is not usable; create
// with NewRegistry. A nil *Registry is the disabled state: all lookups
// return nil instruments, whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	byID  map[string]*instrument
	insts []*instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

func (r *Registry) lookup(name, lk, lv, help string, kind Kind) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := seriesID(name, lk, lv)
	if in, ok := r.byID[id]; ok {
		if in.kind != kind {
			//lint:ignore errwrap sanctioned: a kind collision on one series name is a wiring bug; failing fast beats silently merging two meanings
			panic("obs: instrument " + id + " re-registered as " + string(kind) +
				", previously registered as " + string(in.kind))
		}
		return in
	}
	in := &instrument{name: name, labelKey: lk, labelVal: lv, help: help, kind: kind}
	switch kind {
	case KindCounter:
		in.c = &Counter{}
	case KindGauge:
		in.g = &Gauge{}
	}
	r.byID[id] = in
	r.insts = append(r.insts, in)
	return in
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, "", "", help, KindCounter).c
}

// LabeledCounter is Counter with one label pair, e.g.
// exec_rows_out_total{op="hashjoin"}.
func (r *Registry) LabeledCounter(name, labelKey, labelVal, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labelKey, labelVal, help, KindCounter).c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, "", "", help, KindGauge).g
}

// LabeledGauge is Gauge with one label pair.
func (r *Registry) LabeledGauge(name, labelKey, labelVal, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labelKey, labelVal, help, KindGauge).g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds (sorted ascending) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	in := r.lookup(name, "", "", help, KindHistogram)
	if in.h == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		in.h = h
	}
	return in.h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound (+Inf for the last bucket).
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count int64 `json:"count"`
}

// MarshalJSON renders the +Inf upper bound as the string "+Inf"
// (Prometheus's convention; JSON numbers cannot express infinity).
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return json.Marshal(struct {
			LE    string `json:"le"`
			Count int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	type alias Bucket // methodless copy avoids recursion
	return json.Marshal(alias(b))
}

// UnmarshalJSON accepts both a numeric bound and the "+Inf" string.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.LE, &s); err == nil {
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// Sample is the snapshot of one instrument.
type Sample struct {
	Name     string   `json:"name"`
	LabelKey string   `json:"label_key,omitempty"`
	LabelVal string   `json:"label_val,omitempty"`
	Kind     Kind     `json:"kind"`
	Help     string   `json:"help,omitempty"`
	Value    float64  `json:"value"`
	Count    int64    `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// ID returns the sample's series identity (name plus label).
func (s Sample) ID() string { return seriesID(s.Name, s.LabelKey, s.LabelVal) }

// MarshalJSON renders the sample with non-finite floats mapped to null
// (JSON has no NaN or Inf; a gauge mirroring an unbounded estimate may
// legitimately hold either).
func (s Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name     string    `json:"name"`
		LabelKey string    `json:"label_key,omitempty"`
		LabelVal string    `json:"label_val,omitempty"`
		Kind     Kind      `json:"kind"`
		Help     string    `json:"help,omitempty"`
		Value    jsonFloat `json:"value"`
		Count    int64     `json:"count,omitempty"`
		Sum      jsonFloat `json:"sum,omitempty"`
		Buckets  []Bucket  `json:"buckets,omitempty"`
	}{s.Name, s.LabelKey, s.LabelVal, s.Kind, s.Help,
		jsonFloat(s.Value), s.Count, jsonFloat(s.Sum), s.Buckets})
}

// jsonFloat is a float64 whose non-finite values marshal as null.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Snapshot returns the current value of every instrument, sorted by
// series identity. Nil registries return nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	insts := append([]*instrument(nil), r.insts...)
	r.mu.Unlock()
	out := make([]Sample, 0, len(insts))
	for _, in := range insts {
		s := Sample{
			Name: in.name, LabelKey: in.labelKey, LabelVal: in.labelVal,
			Kind: in.kind, Help: in.help,
		}
		switch in.kind {
		case KindCounter:
			s.Value = float64(in.c.Value())
		case KindGauge:
			s.Value = in.g.Value()
		case KindHistogram:
			s.Count = in.h.Count()
			s.Sum = in.h.Sum()
			cum := int64(0)
			for i := range in.h.counts {
				cum += in.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(in.h.bounds) {
					le = in.h.bounds[i]
				}
				s.Buckets = append(s.Buckets, Bucket{LE: le, Count: cum})
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// JSON renders the snapshot as a JSON array of samples.
func (r *Registry) JSON() ([]byte, error) {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Sample{}
	}
	return json.MarshalIndent(snap, "", "  ")
}

package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpanTree(t *testing.T) {
	root := &Span{Name: "select 1", Kind: "query", Start: 0, End: 100}
	seg := root.AddChild(&Span{Name: "S0", Kind: "segment", Start: 0, End: 60})
	op := seg.AddChild(&Span{Name: "SeqScan t", Kind: "operator", Start: 0, End: 60})
	op.SetAttr("rows_actual", 42)
	op.SetAttr("rows_est", 40)
	tr := &Trace{Root: root}

	if tr.SpanCount() != 3 {
		t.Fatalf("span count = %d, want 3", tr.SpanCount())
	}
	if root.Duration() != 100 {
		t.Fatalf("duration = %g", root.Duration())
	}
	s := tr.String()
	for _, want := range []string{"[query] select 1", "[segment] S0", "[operator] SeqScan t", "rows_actual=42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace text missing %q:\n%s", want, s)
		}
	}
	// Children must be indented deeper than parents.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("unexpected indentation:\n%s", s)
	}

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SpanCount() != 3 || back.Root.Children[0].Children[0].Attrs["rows_actual"] != 42 {
		t.Fatalf("JSON round-trip lost spans: %s", data)
	}
}

func TestEventWriterJSONL(t *testing.T) {
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	ew.Emit("progress", 10, map[string]any{"percent": 12.5, "segment": 1})
	ew.Emit("progress", 20, map[string]any{"percent": 25.0, "segment": 1, "note": "spill"})
	if ew.Events() != 2 || ew.Err() != nil {
		t.Fatalf("events=%d err=%v", ew.Events(), ew.Err())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	// Each line is standalone JSON with type and t first.
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `{"type":"progress","t":`) {
			t.Fatalf("line does not lead with type/t: %s", ln)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
	}
	// Field keys are sorted for determinism.
	if !strings.Contains(lines[1], `"note":"spill","percent":25,"segment":1`) {
		t.Fatalf("fields not in sorted order: %s", lines[1])
	}
}

func TestEventWriterNilAndNaN(t *testing.T) {
	var ew *EventWriter
	ew.Emit("x", 0, nil) // must not panic
	if ew.Events() != 0 || ew.Err() != nil {
		t.Fatal("nil writer recorded events")
	}
	if NewEventWriter(nil) != nil {
		t.Fatal("NewEventWriter(nil) should be nil")
	}
	var sb strings.Builder
	w := NewEventWriter(&sb)
	w.Emit("p", 5, map[string]any{"remaining": math.Inf(1)})
	if !strings.Contains(sb.String(), `"remaining":null`) {
		t.Fatalf("Inf not encoded as null: %s", sb.String())
	}
}

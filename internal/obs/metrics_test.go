package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "number of widgets")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name returns the same instrument.
	if c2 := r.Counter("widgets_total", ""); c2 != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "current depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestLabeledCounters(t *testing.T) {
	r := NewRegistry()
	a := r.LabeledCounter("rows_total", "op", "scan", "rows by operator")
	b := r.LabeledCounter("rows_total", "op", "join", "rows by operator")
	if a == b {
		t.Fatalf("distinct labels share an instrument")
	}
	a.Add(10)
	b.Add(20)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	if snap[0].ID() != `rows_total{op="join"}` || snap[0].Value != 20 {
		t.Fatalf("sample 0 = %s %g", snap[0].ID(), snap[0].Value)
	}
	if snap[1].ID() != `rows_total{op="scan"}` || snap[1].Value != 10 {
		t.Fatalf("sample 1 = %s %g", snap[1].ID(), snap[1].Value)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	want := []Bucket{{0.1, 1}, {1, 3}, {10, 4}, {math.Inf(1), 5}}
	got := snap[0].Buckets
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestNilSafety is the "statistics collection flag off" contract: every
// instrument and registry method must no-op on nil receivers.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("z", "", []float64{1})
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed something")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if got := r.PrometheusText(); got != "" {
		t.Fatalf("nil registry renders %q", got)
	}
}

// TestPrometheusRoundTrip renders a mixed registry to the text format and
// parses it back, requiring every series to survive unchanged — the
// acceptance criterion's round-trip.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bufferpool_hits_total", "buffer pool hits").Add(1234)
	r.Counter("bufferpool_misses_total", "buffer pool misses").Add(56)
	r.LabeledCounter("exec_rows_out_total", "op", "seqscan", "rows emitted per operator").Add(9)
	r.LabeledCounter("exec_rows_out_total", "op", "hashjoin", "rows emitted per operator").Add(7)
	r.Gauge("indicator_segment_p", "dominant-input fraction").Set(0.625)
	h := r.Histogram("progress_refresh_u", "estimated U at refresh", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	text := r.PrometheusText()
	parsed, err := ParsePrometheusText(text)
	if err != nil {
		t.Fatalf("parse: %v\ntext:\n%s", err, text)
	}
	orig := r.Snapshot()
	if len(parsed) != len(orig) {
		t.Fatalf("parsed %d series, want %d\ntext:\n%s", len(parsed), len(orig), text)
	}
	for i := range orig {
		o, p := orig[i], parsed[i]
		if o.ID() != p.ID() || o.Kind != p.Kind {
			t.Fatalf("series %d: got %s (%s), want %s (%s)", i, p.ID(), p.Kind, o.ID(), o.Kind)
		}
		if o.Value != p.Value || o.Count != p.Count || o.Sum != p.Sum {
			t.Fatalf("series %s: got value=%g count=%d sum=%g, want value=%g count=%d sum=%g",
				o.ID(), p.Value, p.Count, p.Sum, o.Value, o.Count, o.Sum)
		}
		if len(o.Buckets) != len(p.Buckets) {
			t.Fatalf("series %s: %d buckets, want %d", o.ID(), len(p.Buckets), len(o.Buckets))
		}
		for j := range o.Buckets {
			ob, pb := o.Buckets[j], p.Buckets[j]
			if ob.Count != pb.Count || (ob.LE != pb.LE && !(math.IsInf(ob.LE, 1) && math.IsInf(pb.LE, 1))) {
				t.Fatalf("series %s bucket %d: got %+v, want %+v", o.ID(), j, pb, ob)
			}
		}
	}
	// Text must re-render identically from the parsed samples (except
	// HELP lines, which the renderer re-groups identically anyway).
	if re := FormatPrometheusText(parsed); re != text {
		t.Fatalf("re-render differs:\n--- original\n%s\n--- re-rendered\n%s", text, re)
	}
}

func TestPrometheusTextShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total", "queries run").Inc()
	text := r.PrometheusText()
	for _, want := range []string{"# HELP q_total queries run", "# TYPE q_total counter", "q_total 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []Sample
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != 1 || back[0].Name != "a_total" || back[0].Value != 3 {
		t.Fatalf("round-trip = %+v", back)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Span is one timed node of a query trace: the whole query, one segment,
// or one plan operator. Times are virtual seconds on the engine clock.
type Span struct {
	// Name labels the span (SQL text, "S2", or an operator label).
	Name string `json:"name"`
	// Kind is "query", "segment", or "operator".
	Kind string `json:"kind"`
	// Start and End are virtual times; End < Start means "never closed".
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Attrs carry numeric span attributes (u_done, rows_est, rows_actual,
	// loops, ...). Keys are snake_case.
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Notes are free-form annotations ("spilled 4 partitions", ...).
	Notes []string `json:"notes,omitempty"`
	// Children are sub-spans in execution order.
	Children []*Span `json:"children,omitempty"`
}

// Duration returns End - Start (0 if the span never closed).
func (s *Span) Duration() float64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SetAttr records one numeric attribute, allocating the map lazily.
func (s *Span) SetAttr(key string, v float64) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]float64)
	}
	s.Attrs[key] = v
}

// AddChild appends a sub-span and returns it.
func (s *Span) AddChild(c *Span) *Span {
	s.Children = append(s.Children, c)
	return c
}

// Trace is one query's span tree.
type Trace struct {
	Root *Span `json:"root"`
}

// JSON renders the trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// String renders the span tree as an indented text outline, attributes
// sorted by key for determinism.
func (t *Trace) String() string {
	if t == nil || t.Root == nil {
		return ""
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s[%s] %s (%.1fs..%.1fs", strings.Repeat("  ", depth), s.Kind, s.Name, s.Start, s.End)
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.6g", k, s.Attrs[k])
		}
		b.WriteString(")")
		for _, n := range s.Notes {
			fmt.Fprintf(&b, " [%s]", n)
		}
		b.WriteString("\n")
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// SpanCount returns the total number of spans in the trace.
func (t *Trace) SpanCount() int {
	if t == nil || t.Root == nil {
		return 0
	}
	n := 0
	var walk func(*Span)
	walk = func(s *Span) {
		n++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return n
}

// EventWriter emits a JSONL structured event log: one JSON object per
// line, each with at least {"type": ..., "t": <virtual seconds>}. It is
// nil-safe (a nil writer drops events) and safe for concurrent use.
type EventWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int64
}

// NewEventWriter wraps w. A nil w yields a writer that drops everything,
// so callers can emit unconditionally.
func NewEventWriter(w io.Writer) *EventWriter {
	if w == nil {
		return nil
	}
	return &EventWriter{w: w}
}

// Emit writes one event line. Field keys are emitted in sorted order
// after "type" and "t", so the output is byte-deterministic. The first
// write error sticks and suppresses further output.
func (ew *EventWriter) Emit(typ string, t float64, fields map[string]any) {
	if ew == nil {
		return
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	if ew.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString("{\"type\":")
	b.Write(mustJSON(typ))
	fmt.Fprintf(&b, ",\"t\":%s", mustJSON(t))
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(",")
		b.Write(mustJSON(k))
		b.WriteString(":")
		b.Write(mustJSON(fields[k]))
	}
	b.WriteString("}\n")
	_, ew.err = io.WriteString(ew.w, b.String())
	if ew.err == nil {
		ew.n++
	}
}

// Events returns the number of events successfully written.
func (ew *EventWriter) Events() int64 {
	if ew == nil {
		return 0
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.n
}

// Err returns the first write error, if any.
func (ew *EventWriter) Err() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.err
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Only reachable with exotic values (NaN/Inf floats); encode as null.
		return []byte("null")
	}
	return b
}

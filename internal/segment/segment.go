// Package segment implements the paper's central abstraction (Section
// 4.2): dividing a physical plan into pipelined segments bounded by
// blocking operators, identifying each segment's inputs and dominant
// input(s), and costing segments in U (bytes processed at segment
// boundaries).
//
// The cost evaluation here is "the optimizer's cost estimation module"
// that the progress indicator re-invokes with refined input estimates
// (Section 4.5): given (cardinality, width) estimates for every segment
// input, EvalSegment returns the segment's output estimate and its cost.
package segment

import (
	"fmt"
	"math"
	"strings"

	"progressdb/internal/catalog"
	"progressdb/internal/plan"
	"progressdb/internal/storage"
)

// WorkReporter receives the executor's boundary-byte events. The paper
// embeds statistics collection inside operator code guarded by a flag;
// passing a nil reporter is the flag turned off.
type WorkReporter interface {
	// InputTuple records one first-pass tuple read from a segment input.
	InputTuple(seg, input int, bytes int)
	// InputBulk records a first-pass bulk read from a segment input
	// (e.g. the in-memory hash table consumed at probe start).
	InputBulk(seg, input int, tuples int64, bytes float64)
	// InputRepeat records an additional logical pass over data already
	// counted for this input (a nested-loops inner replay). It counts as
	// work done but not toward the input's cardinality estimate.
	InputRepeat(seg, input int, tuples int64, bytes float64)
	// InputDone marks an input fully read once: its cardinality and size
	// are exact from now on (the paper's Section 4.3 "after finishing
	// the scan" case).
	InputDone(seg, input int)
	// OutputTuple records one tuple emitted at a segment's blocking root.
	OutputTuple(seg int, bytes int)
	// Extra records multi-stage bytes (hash-join probe spill traffic,
	// intermediate sort merge passes) attributed to a segment.
	Extra(seg int, bytes float64)
	// SegmentDone marks a segment finished; its output statistics are
	// exact from this point on.
	SegmentDone(seg int)
}

// Est is a (cardinality, average width) estimate.
type Est struct {
	Card  float64
	Width float64
}

// Bytes is Card × Width.
func (e Est) Bytes() float64 { return e.Card * e.Width }

// Input is one input of a segment: either a base relation access or the
// output of a lower-level segment.
type Input struct {
	// Node is the plan node at the boundary: a scan (base) or the
	// blocking producer (Sort, Materialize, or a HashJoin's build child).
	Node plan.Node
	// Base reports whether this is a base-relation input.
	Base bool
	// Table is the base relation (Base only).
	Table *catalog.Table
	// Child is the producing segment (non-base only).
	Child *Segment
	// Init is the optimizer's initial estimate for this input.
	Init Est
}

// Kind classifies a segment by its blocking root, which determines
// whether its output is materialized to disk (partitions, sorted runs)
// or handled in memory (hash tables, materialize buffers) — the
// distinction behind per-segment speed prediction (Section 4.6's
// suggested refinement).
type Kind int

const (
	// KindFinal is the last segment; its output goes to the user.
	KindFinal Kind = iota
	// KindHashBuild ends at an in-memory hash-table build.
	KindHashBuild
	// KindPartition ends at a hash partitioning to disk.
	KindPartition
	// KindSort ends at sorted-run formation on disk.
	KindSort
	// KindMaterialize ends at an in-memory materialization.
	KindMaterialize
	// KindAggregate ends at a hash aggregation.
	KindAggregate
)

// Segment is one pipelined piece of the plan.
type Segment struct {
	// ID is the segment's index in execution order.
	ID int
	// Kind classifies the segment's blocking root.
	Kind Kind
	// Root is the top plan node whose processing belongs to this
	// segment: the Sort/Materialize producer, a HashJoin's build subtree
	// root, or the query root for the final segment.
	Root plan.Node
	// Inputs are the segment's inputs, in discovery order.
	Inputs []*Input
	// Dominant lists the indexes of the dominant input(s): one for most
	// segments, two for a segment whose lowest join is a sort-merge join
	// (Section 4.5).
	Dominant []int
	// Final marks the last segment; its output is the query result and
	// is not counted in U (Section 4.4).
	Final bool
	// InitOut is the optimizer's initial output estimate.
	InitOut Est
	// InitCost is the initial segment cost in bytes.
	InitCost float64

	inputByNode map[plan.Node]int
}

// InputIndex returns the input slot fed by the given boundary node, or -1.
func (s *Segment) InputIndex(n plan.Node) int {
	i, ok := s.inputByNode[n]
	if !ok {
		return -1
	}
	return i
}

// NodeInfo tells the executor how to tag a node's boundary events.
type NodeInfo struct {
	// Seg is the segment whose pipeline processes this node's output.
	Seg int
	// Input is the input slot within Seg (scans and boundary reads).
	Input int
	// ProducerSeg is the segment that ends at this node (blocking
	// operators and hash-join builds); -1 otherwise.
	ProducerSeg int
}

// Decomposition is the segment view of one plan.
type Decomposition struct {
	// Segments in execution order (lower segments before consumers).
	Segments []*Segment
	// Info maps boundary-relevant plan nodes to their tags.
	Info map[plan.Node]NodeInfo
	// NodeSeg maps every plan node to the segment whose pipeline performs
	// its work: blocking producers (Sort, Materialize, Partition, HashAgg)
	// map to the producer segment they terminate; everything else maps to
	// the consuming segment. Used by tracing and EXPLAIN ANALYZE to nest
	// operator spans under segment spans.
	NodeSeg map[plan.Node]int
	// WorkMemBytes is the memory budget used for spill/merge cost terms.
	WorkMemBytes float64

	// segIDByOld maps creation-order segment IDs to execution-order IDs.
	segIDByOld map[int]int
}

// Decompose splits a plan into segments and computes initial estimates.
// workMemPages is the executor's per-operator memory budget.
func Decompose(root plan.Node, workMemPages int) *Decomposition {
	d := &Decomposition{
		Info:         make(map[plan.Node]NodeInfo),
		NodeSeg:      make(map[plan.Node]int),
		WorkMemBytes: float64(workMemPages) * storage.PageSize,
	}
	final := d.newSegment(root, true, KindFinal)
	d.attach(root, final)
	// Execution order: segments were created consumer-first by the
	// recursion; reverse creation order is not quite execution order —
	// instead order by a DFS that mirrors the executor: producers run
	// when their consumer opens. Compute by post-order over the segment
	// DAG from the final segment.
	ordered := make([]*Segment, 0, len(d.Segments))
	seen := make(map[*Segment]bool)
	var visit func(s *Segment)
	visit = func(s *Segment) {
		if seen[s] {
			return
		}
		seen[s] = true
		for _, in := range s.Inputs {
			if in.Child != nil {
				visit(in.Child)
			}
		}
		ordered = append(ordered, s)
	}
	visit(final)
	for i, s := range ordered {
		d.segIDByOld[s.ID] = i
	}
	for i, s := range ordered {
		s.ID = i
	}
	// Re-tag Info and NodeSeg with final IDs.
	for n, info := range d.Info {
		info.Seg = d.segIDByOld[info.Seg]
		if info.ProducerSeg >= 0 {
			info.ProducerSeg = d.segIDByOld[info.ProducerSeg]
		}
		d.Info[n] = info
	}
	for n, id := range d.NodeSeg {
		d.NodeSeg[n] = d.segIDByOld[id]
	}
	d.Segments = ordered

	for _, s := range d.Segments {
		s.Dominant = dominantInputs(s)
		ests := make([]Est, len(s.Inputs))
		for i, in := range s.Inputs {
			ests[i] = in.Init
		}
		out, cost := d.EvalSegment(s, ests)
		s.InitOut = out
		s.InitCost = cost
	}
	return d
}

func (d *Decomposition) newSegment(root plan.Node, final bool, kind Kind) *Segment {
	s := &Segment{
		ID:          len(d.Segments),
		Kind:        kind,
		Root:        root,
		Final:       final,
		inputByNode: make(map[plan.Node]int),
	}
	d.Segments = append(d.Segments, s)
	if d.segIDByOld == nil {
		d.segIDByOld = map[int]int{}
	}
	return s
}

func (d *Decomposition) addBaseInput(s *Segment, n plan.Node, tbl *catalog.Table) int {
	idx := len(s.Inputs)
	s.Inputs = append(s.Inputs, &Input{
		Node:  n,
		Base:  true,
		Table: tbl,
		Init:  Est{Card: n.Est().Card, Width: n.Est().Width},
	})
	s.inputByNode[n] = idx
	return idx
}

func (d *Decomposition) addSegInput(s *Segment, n plan.Node, child *Segment, est Est) int {
	idx := len(s.Inputs)
	s.Inputs = append(s.Inputs, &Input{Node: n, Child: child, Init: est})
	s.inputByNode[n] = idx
	return idx
}

// attach assigns node's output processing to segment s, recursing into
// children and creating producer segments at blocking boundaries.
func (d *Decomposition) attach(n plan.Node, s *Segment) {
	// Default: the node's work happens in the consuming segment's
	// pipeline. Blocking cases below override with their producer segment.
	d.NodeSeg[n] = s.ID
	switch node := n.(type) {
	case *plan.SeqScan:
		idx := d.addBaseInput(s, node, node.Table)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: -1}
	case *plan.IndexScan:
		idx := d.addBaseInput(s, node, node.Table)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: -1}
	case *plan.Filter:
		d.attach(node.Child, s)
	case *plan.Project:
		d.attach(node.Child, s)
	case *plan.HashJoin:
		if node.Grace {
			// Both partition sets are inputs of the join's segment
			// (Figure 3: S3 reads PA and PB). The Partition children
			// register themselves as boundary inputs.
			d.attach(node.Build, s)
			d.attach(node.Probe, s)
			return
		}
		// In-memory hybrid: the build child plus the hash-table build
		// form a producer segment; the hash table is an input of s; the
		// probe side pipelines within s.
		p := d.newSegment(node.Build, false, KindHashBuild)
		d.attach(node.Build, p)
		est := Est{Card: node.Build.Est().Card, Width: node.Build.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
		d.attach(node.Probe, s)
	case *plan.Partition:
		p := d.newSegment(node, false, KindPartition)
		d.NodeSeg[node] = p.ID
		d.attach(node.Child, p)
		est := Est{Card: node.Est().Card, Width: node.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
	case *plan.Sort:
		p := d.newSegment(node, false, KindSort)
		d.NodeSeg[node] = p.ID
		d.attach(node.Child, p)
		est := Est{Card: node.Est().Card, Width: node.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
	case *plan.Materialize:
		p := d.newSegment(node, false, KindMaterialize)
		d.NodeSeg[node] = p.ID
		d.attach(node.Child, p)
		est := Est{Card: node.Est().Card, Width: node.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
	case *plan.HashAgg:
		p := d.newSegment(node, false, KindAggregate)
		d.NodeSeg[node] = p.ID
		d.attach(node.Child, p)
		est := Est{Card: node.Est().Card, Width: node.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
	case *plan.Limit:
		d.attach(node.Child, s)
	case *plan.NLJoin:
		d.attach(node.Outer, s)
		d.attach(node.Inner, s)
	case *plan.SemiJoin:
		// The inner (subquery) side is consumed fully into a match set —
		// a blocking boundary, so it forms its own segment whose output
		// is an input of s; the outer pipelines within s.
		p := d.newSegment(node.Inner, false, KindHashBuild)
		d.attach(node.Inner, p)
		est := Est{Card: node.Inner.Est().Card, Width: node.Inner.Est().Width}
		idx := d.addSegInput(s, node, p, est)
		d.Info[node] = NodeInfo{Seg: s.ID, Input: idx, ProducerSeg: p.ID}
		d.attach(node.Outer, s)
	case *plan.MergeJoin:
		d.attach(node.Left, s)
		d.attach(node.Right, s)
	default:
		//lint:ignore errwrap sanctioned: plan-shape invariant checked at decomposition time; recovered at the DB.Exec boundary as *exec.InternalError
		panic(fmt.Sprintf("segment: unknown plan node %T", n))
	}
}

// dominantInputs applies the paper's Section 4.5 rules: descend from the
// segment's root through the pipelined side of each join; the join at the
// lowest level decides. NL join → outer side; hash join → probe side;
// merge join → both inputs.
func dominantInputs(s *Segment) []int {
	var at plan.Node = s.Root
	for {
		switch node := at.(type) {
		case *plan.SeqScan, *plan.IndexScan:
			if idx, ok := s.inputByNode[at]; ok {
				return []int{idx}
			}
			//lint:ignore errwrap sanctioned: decomposition invariant (every scan is a segment input); recovered at the DB.Exec boundary
			panic("segment: scan not registered as segment input")
		case *plan.Filter:
			at = node.Child
		case *plan.Project:
			at = node.Child
		case *plan.Sort:
			// Registered: a boundary read from a lower segment. Not
			// registered: this segment's own producer root.
			if idx, ok := s.inputByNode[at]; ok {
				return []int{idx}
			}
			at = node.Child
		case *plan.Materialize:
			if idx, ok := s.inputByNode[at]; ok {
				return []int{idx}
			}
			at = node.Child
		case *plan.Partition:
			if idx, ok := s.inputByNode[at]; ok {
				return []int{idx}
			}
			at = node.Child
		case *plan.HashAgg:
			if idx, ok := s.inputByNode[at]; ok {
				return []int{idx}
			}
			at = node.Child
		case *plan.Limit:
			at = node.Child
		case *plan.HashJoin:
			// The hash join itself marks the build input boundary; the
			// dominant side is the probe pipeline (Section 4.5 rule 2b).
			at = node.Probe
		case *plan.NLJoin:
			// Rule 2a: the outer relation dominates.
			at = node.Outer
		case *plan.SemiJoin:
			// Like a hash join's probe: the outer side dominates.
			at = node.Outer
		case *plan.MergeJoin:
			// Rule 2c: both inputs dominate.
			l, lok := s.inputByNode[node.Left]
			r, rok := s.inputByNode[node.Right]
			if lok && rok {
				return []int{l, r}
			}
			at = node.Left
		default:
			//lint:ignore errwrap sanctioned: dominant-input walk only sees nodes the decomposer placed; recovered at the DB.Exec boundary
			panic(fmt.Sprintf("segment: dominant-input walk hit unexpected node %T", at))
		}
	}
}

// EvalSegment computes the segment's output estimate and cost in bytes,
// given estimates for each input. This is the cost-estimation module the
// progress indicator re-invokes during refinement; the executor's U
// accounting mirrors these formulas exactly so that work done converges
// to the estimated cost as estimates converge to truth.
func (d *Decomposition) EvalSegment(s *Segment, inputs []Est) (out Est, costBytes float64) {
	if len(inputs) != len(s.Inputs) {
		//lint:ignore errwrap sanctioned: caller passes the segment's own input slice; recovered at the DB.Exec boundary
		panic("segment: EvalSegment input arity mismatch")
	}
	cost := 0.0
	// inputEst reads a registered input, charging its bytes passMul times.
	inputEst := func(n plan.Node, passMul float64) (Est, bool) {
		idx, ok := s.inputByNode[n]
		if !ok {
			return Est{}, false
		}
		est := inputs[idx]
		cost += est.Bytes() * passMul
		return est, true
	}
	var eval func(n plan.Node, passMul float64) Est
	eval = func(n plan.Node, passMul float64) Est {
		switch node := n.(type) {
		case *plan.SeqScan, *plan.IndexScan:
			est, ok := inputEst(n, passMul)
			if !ok {
				//lint:ignore errwrap sanctioned: decomposition invariant (every scan is a segment input); recovered at the DB.Exec boundary
				panic("segment: scan not registered as segment input")
			}
			return est
		case *plan.Filter:
			in := eval(node.Child, passMul)
			return Est{Card: in.Card * node.Sel, Width: in.Width}
		case *plan.Project:
			in := eval(node.Child, passMul)
			// Scale the optimizer's projected width by the ratio of the
			// refined input width to the optimizer's input width.
			ratio := 1.0
			if cw := node.Child.Est().Width; cw > 0 {
				ratio = in.Width / cw
			}
			return Est{Card: in.Card, Width: node.OutEst.Width * ratio}
		case *plan.HashJoin:
			// Grace form: both Partition children are registered inputs
			// of this segment. In-memory form: the join node itself is
			// registered as the consumer's build input and the probe
			// side pipelines within this segment.
			var build Est
			if node.Grace {
				build = eval(node.Build, passMul)
			} else if est, ok := inputEst(n, passMul); ok {
				build = est
			} else {
				build = eval(node.Build, passMul)
			}
			probe := eval(node.Probe, passMul)
			outEst := Est{
				Card:  node.Sel * build.Card * probe.Card,
				Width: build.Width + probe.Width,
			}
			// Probe-side spill traffic when an in-memory build
			// unexpectedly exceeds memory (the planned spill case is
			// Grace, whose partition traffic is counted at boundaries).
			if bb := build.Bytes(); !node.Grace && bb > d.WorkMemBytes && bb > 0 {
				spillFrac := 1 - d.WorkMemBytes/bb
				cost += 2 * spillFrac * probe.Bytes() * passMul
			}
			return outEst
		case *plan.Partition:
			if est, ok := inputEst(n, passMul); ok {
				return est
			}
			return eval(node.Child, passMul)
		case *plan.NLJoin:
			outer := eval(node.Outer, passMul)
			// The inner is read once through its own pipeline, then its
			// (filtered, cached) output is logically re-read once per
			// further outer tuple — matching the executor's caching.
			inner := eval(node.Inner, passMul)
			cost += (math.Max(1, outer.Card) - 1) * inner.Bytes() * passMul
			return Est{Card: node.Sel * outer.Card * inner.Card, Width: outer.Width + inner.Width}
		case *plan.MergeJoin:
			l := eval(node.Left, passMul)
			r := eval(node.Right, passMul)
			return Est{Card: node.Sel * l.Card * r.Card, Width: l.Width + r.Width}
		case *plan.Sort:
			// Registered: a sorted stream read from a lower segment.
			// Unregistered: this segment's own producer root.
			if est, ok := inputEst(n, passMul); ok {
				return est
			}
			in := eval(node.Child, passMul)
			// Intermediate merge passes beyond the final merge.
			if b := in.Bytes(); b > d.WorkMemBytes && d.WorkMemBytes > 0 {
				runs := math.Ceil(b / d.WorkMemBytes)
				fanin := math.Max(2, d.WorkMemBytes/storage.PageSize-1)
				passes := math.Ceil(math.Log(runs) / math.Log(fanin))
				if passes > 1 {
					cost += (passes - 1) * 2 * b * passMul
				}
			}
			return in
		case *plan.Materialize:
			if est, ok := inputEst(n, passMul); ok {
				return est
			}
			return eval(node.Child, passMul)
		case *plan.HashAgg:
			if est, ok := inputEst(n, passMul); ok {
				return est
			}
			in := eval(node.Child, passMul)
			card := math.Min(math.Max(1, node.GroupsEst), math.Max(1, in.Card))
			return Est{Card: card, Width: node.OutEst.Width}
		case *plan.Limit:
			in := eval(node.Child, passMul)
			return Est{Card: math.Min(in.Card, float64(node.N)), Width: in.Width}
		case *plan.SemiJoin:
			inner, ok := inputEst(n, passMul)
			if !ok {
				inner = eval(node.Inner, passMul)
			}
			outer := eval(node.Outer, passMul)
			if node.OuterKey < 0 {
				// NL semi: the cached inner is re-read per outer tuple.
				cost += (math.Max(1, outer.Card) - 1) * inner.Bytes() * passMul
			}
			return Est{Card: node.Sel * outer.Card, Width: outer.Width}
		default:
			//lint:ignore errwrap sanctioned: cost walk mirrors the decomposition walk above; recovered at the DB.Exec boundary
			panic(fmt.Sprintf("segment: unknown node %T in EvalSegment", n))
		}
	}
	out = eval(s.Root, 1)
	if !s.Final {
		cost += out.Bytes()
	}
	return out, cost
}

// IOShare estimates the fraction of a segment's boundary bytes that are
// physical disk traffic, given current input estimates. Base inputs and
// partition/sort boundaries move through disk; hash tables and
// materialize buffers are memory-resident. This feeds the per-segment
// speed prediction suggested as future work in the paper's Section 4.6
// ("this conversion should take into account both the expected
// processing speed for the segments and the current system load").
func (d *Decomposition) IOShare(s *Segment, inputs []Est) float64 {
	io, total := 0.0, 0.0
	for i, in := range s.Inputs {
		b := inputs[i].Bytes()
		total += b
		if in.Base {
			io += b
			continue
		}
		switch in.Child.Kind {
		case KindPartition, KindSort:
			io += b
		}
	}
	if !s.Final {
		out, _ := d.EvalSegment(s, inputs)
		b := out.Bytes()
		total += b
		switch s.Kind {
		case KindPartition, KindSort:
			io += b
		}
	}
	if total <= 0 {
		return 1
	}
	return io / total
}

// TotalInitCost sums the initial segment costs — the optimizer's estimate
// of the query's total U (in bytes).
func (d *Decomposition) TotalInitCost() float64 {
	t := 0.0
	for _, s := range d.Segments {
		t += s.InitCost
	}
	return t
}

// String renders the decomposition for debugging, in the style of the
// paper's Figure 3 discussion.
func (d *Decomposition) String() string {
	var b strings.Builder
	for _, s := range d.Segments {
		fmt.Fprintf(&b, "S%d root=%s final=%v cost=%.0fB out=(%.0f rows × %.0fB)\n",
			s.ID, s.Root.Label(), s.Final, s.InitCost, s.InitOut.Card, s.InitOut.Width)
		for i, in := range s.Inputs {
			dom := ""
			for _, di := range s.Dominant {
				if di == i {
					dom = " [dominant]"
				}
			}
			kind := "segment"
			src := ""
			if in.Base {
				kind = "base"
				src = in.Table.Name
			} else {
				src = fmt.Sprintf("S%d", in.Child.ID)
			}
			fmt.Fprintf(&b, "  in[%d] %s %s est=(%.0f × %.0fB)%s\n", i, kind, src, in.Init.Card, in.Init.Width, dom)
		}
	}
	return b.String()
}

package segment

import (
	"math"
	"strings"
	"testing"

	"progressdb/internal/catalog"
	"progressdb/internal/optimizer"
	"progressdb/internal/plan"
	"progressdb/internal/sqlparser"
	"progressdb/internal/storage"
	"progressdb/internal/tuple"
	"progressdb/internal/vclock"
)

// buildCatalog makes a small customer/orders/lineitem catalog with
// Table 1-like relative sizes.
func buildCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	clock := vclock.New(vclock.DefaultCosts(), nil)
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(clock), 4096))
	mk := func(name string, sch *tuple.Schema, n int, row func(i int) tuple.Tuple) {
		tb, err := cat.CreateTable(name, sch)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := cat.Insert(tb, row(i)); err != nil {
				t.Fatal(err)
			}
		}
		tb.Heap.Sync()
	}
	mk("customer", tuple.NewSchema(
		tuple.Column{Name: "custkey", Type: tuple.Int},
		tuple.Column{Name: "nationkey", Type: tuple.Int},
	), 200, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 25))}
	})
	mk("orders", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "custkey", Type: tuple.Int},
	), 2000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i)), tuple.NewInt(int64(i % 200))}
	})
	mk("lineitem", tuple.NewSchema(
		tuple.Column{Name: "orderkey", Type: tuple.Int},
		tuple.Column{Name: "partkey", Type: tuple.Int},
	), 8000, func(i int) tuple.Tuple {
		return tuple.Tuple{tuple.NewInt(int64(i % 2000)), tuple.NewInt(int64(i))}
	})
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func planFor(t *testing.T, cat *catalog.Catalog, sql string, opt optimizer.Options) plan.Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Plan(cat, stmt, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleSegmentScan(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, "select * from lineitem", optimizer.Options{})
	d := Decompose(p, 2048)
	if len(d.Segments) != 1 {
		t.Fatalf("Q1-style plan must be one segment:\n%s", d)
	}
	s := d.Segments[0]
	if !s.Final || len(s.Inputs) != 1 || !s.Inputs[0].Base {
		t.Fatalf("segment: %s", d)
	}
	if len(s.Dominant) != 1 || s.Dominant[0] != 0 {
		t.Fatalf("dominant: %v", s.Dominant)
	}
	// Final segment output is not counted: cost = input bytes only.
	want := s.Inputs[0].Init.Bytes()
	if math.Abs(s.InitCost-want) > 1 {
		t.Fatalf("cost = %g, want input bytes %g", s.InitCost, want)
	}
}

// The paper's Figure 8 shape: two hybrid hash joins → three segments.
func TestQ2StyleThreeSegments(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`, optimizer.Options{})
	d := Decompose(p, 2048)
	if len(d.Segments) != 3 {
		t.Fatalf("want 3 segments, got %d:\n%s", len(d.Segments), d)
	}
	// Execution order: S0 = customer build, S1 = orders probe + build,
	// S2 = lineitem probe (final).
	s0, s1, s2 := d.Segments[0], d.Segments[1], d.Segments[2]
	if s0.Final || s1.Final || !s2.Final {
		t.Fatalf("final flags wrong:\n%s", d)
	}
	if len(s0.Inputs) != 1 || !s0.Inputs[0].Base || s0.Inputs[0].Table.Name != "customer" {
		t.Fatalf("S0 must read customer:\n%s", d)
	}
	// S1: inputs = hash table (from S0) + orders scan; dominant = orders.
	if len(s1.Inputs) != 2 {
		t.Fatalf("S1 inputs: %s", d)
	}
	dom := s1.Inputs[s1.Dominant[0]]
	if !dom.Base || dom.Table.Name != "orders" {
		t.Fatalf("S1 dominant must be the probe (orders):\n%s", d)
	}
	// S2: inputs = hash table (from S1) + lineitem scan; dominant = lineitem.
	dom2 := s2.Inputs[s2.Dominant[0]]
	if !dom2.Base || dom2.Table.Name != "lineitem" {
		t.Fatalf("S2 dominant must be lineitem:\n%s", d)
	}
}

func TestNLJoinDominantIsOuter(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat,
		"select * from customer c1, customer c2 where c1.custkey <> c2.custkey",
		optimizer.Options{})
	d := Decompose(p, 2048)
	if len(d.Segments) != 1 {
		t.Fatalf("NL of two scans must be one segment:\n%s", d)
	}
	s := d.Segments[0]
	if len(s.Inputs) != 2 || len(s.Dominant) != 1 {
		t.Fatalf("inputs/dominant: %s", d)
	}
	nl := findNL(p)
	if nl == nil {
		t.Fatal("no NL join in plan")
	}
	domNode := s.Inputs[s.Dominant[0]].Node
	if domNode != nl.Outer && !descendantOf(nl.Outer, domNode) {
		t.Fatalf("dominant input must be the outer:\n%s", d)
	}
	// Cost must include inner rescans: ≈ outer + outerCard × inner + 0 (final).
	outer := s.Inputs[s.Dominant[0]].Init
	innerIdx := 1 - s.Dominant[0]
	inner := s.Inputs[innerIdx].Init
	want := outer.Bytes() + math.Max(1, outer.Card)*inner.Bytes()
	if math.Abs(s.InitCost-want)/want > 0.01 {
		t.Fatalf("NL cost = %g, want %g (with rescans)", s.InitCost, want)
	}
}

func findNL(n plan.Node) *plan.NLJoin {
	if j, ok := n.(*plan.NLJoin); ok {
		return j
	}
	for _, c := range n.Children() {
		if j := findNL(c); j != nil {
			return j
		}
	}
	return nil
}

func descendantOf(root plan.Node, target plan.Node) bool {
	if root == target {
		return true
	}
	for _, c := range root.Children() {
		if descendantOf(c, target) {
			return true
		}
	}
	return false
}

// The paper's two-dominant-input rule for sort-merge joins.
func TestMergeJoinTwoDominantInputs(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat,
		"select c.custkey from customer c, orders o where c.custkey = o.custkey",
		optimizer.Options{ForceJoinAlgo: "merge"})
	d := Decompose(p, 2048)
	// Segments: sort(customer), sort(orders), merge (final) = 3.
	if len(d.Segments) != 3 {
		t.Fatalf("want 3 segments:\n%s", d)
	}
	final := d.Segments[2]
	if !final.Final {
		t.Fatalf("last segment must be final:\n%s", d)
	}
	if len(final.Dominant) != 2 {
		t.Fatalf("merge-join segment must have two dominant inputs, got %v:\n%s", final.Dominant, d)
	}
}

func TestEvalSegmentRespondsToRefinedInputs(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`, optimizer.Options{})
	d := Decompose(p, 2048)
	s1 := d.Segments[1]
	base := make([]Est, len(s1.Inputs))
	for i, in := range s1.Inputs {
		base[i] = in.Init
	}
	out0, cost0 := d.EvalSegment(s1, base)
	// Doubling the probe-side input cardinality roughly doubles the
	// output cardinality and increases the cost.
	refined := make([]Est, len(base))
	copy(refined, base)
	di := s1.Dominant[0]
	refined[di] = Est{Card: base[di].Card * 2, Width: base[di].Width}
	out1, cost1 := d.EvalSegment(s1, refined)
	if out1.Card < out0.Card*1.9 {
		t.Fatalf("refined card %g, want ~2x %g", out1.Card, out0.Card)
	}
	if cost1 <= cost0 {
		t.Fatalf("refined cost %g must exceed %g", cost1, cost0)
	}
}

func TestTotalInitCostIsSumOfSegments(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`, optimizer.Options{})
	d := Decompose(p, 2048)
	sum := 0.0
	for _, s := range d.Segments {
		sum += s.InitCost
	}
	if math.Abs(sum-d.TotalInitCost()) > 1e-6 {
		t.Fatal("TotalInitCost mismatch")
	}
	if sum <= 0 {
		t.Fatal("cost must be positive")
	}
}

func TestInfoTagsCoverScansAndBoundaries(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`, optimizer.Options{})
	d := Decompose(p, 2048)
	scans, joins := 0, 0
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		switch n.(type) {
		case *plan.SeqScan, *plan.IndexScan:
			scans++
			if _, ok := d.Info[n]; !ok {
				t.Fatalf("scan %s missing Info tag", n.Label())
			}
		case *plan.HashJoin:
			joins++
			info, ok := d.Info[n]
			if !ok || info.ProducerSeg < 0 {
				t.Fatalf("hash join %s missing producer tag", n.Label())
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if scans != 3 || joins != 2 {
		t.Fatalf("walked %d scans %d joins", scans, joins)
	}
}

func TestDecompositionStringMentionsDominant(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat, "select * from lineitem", optimizer.Options{})
	d := Decompose(p, 2048)
	if !strings.Contains(d.String(), "[dominant]") {
		t.Fatalf("String output: %s", d)
	}
}

func TestSpillCostAppearsWithTinyWorkMem(t *testing.T) {
	cat := buildCatalog(t)
	p := planFor(t, cat,
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey",
		optimizer.Options{})
	big := Decompose(p, 4096)
	small := Decompose(p, 0) // no memory: the build side always spills
	if small.TotalInitCost() <= big.TotalInitCost() {
		t.Fatalf("spill must raise cost: small-mem %g vs big-mem %g",
			small.TotalInitCost(), big.TotalInitCost())
	}
}

package segment

import (
	"testing"

	"progressdb/internal/optimizer"
)

func TestSegmentKinds(t *testing.T) {
	cat := buildCatalog(t)

	// In-memory hybrid join (big work_mem): build segment is KindHashBuild.
	p := planFor(t, cat,
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey",
		optimizer.Options{WorkMemPages: 4096})
	d := Decompose(p, 4096)
	if len(d.Segments) != 2 {
		t.Fatalf("want 2 segments:\n%s", d)
	}
	if d.Segments[0].Kind != KindHashBuild {
		t.Fatalf("build segment kind = %v", d.Segments[0].Kind)
	}
	if d.Segments[1].Kind != KindFinal {
		t.Fatalf("final segment kind = %v", d.Segments[1].Kind)
	}

	// Grace join: the top join's build (the c⋈o intermediate, ~36 KB)
	// exceeds one page of work_mem, so both of its sides partition.
	pg := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`,
		optimizer.Options{WorkMemPages: 1})
	dg := Decompose(pg, 1)
	nPart := 0
	for _, s := range dg.Segments {
		if s.Kind == KindPartition {
			nPart++
		}
	}
	if nPart < 2 {
		t.Fatalf("grace join wants >=2 partition segments:\n%s", dg)
	}

	// Forced merge join: sort segments.
	pm := planFor(t, cat,
		"select c.custkey from customer c, orders o where c.custkey = o.custkey",
		optimizer.Options{ForceJoinAlgo: "merge"})
	dm := Decompose(pm, 2048)
	if dm.Segments[0].Kind != KindSort || dm.Segments[1].Kind != KindSort {
		t.Fatalf("sort kinds: %v %v", dm.Segments[0].Kind, dm.Segments[1].Kind)
	}

	// NL with projected inner: materialize segment.
	pn := planFor(t, cat,
		"select c1.custkey, c2.custkey from customer c1, customer c2 where c1.custkey <> c2.custkey",
		optimizer.Options{})
	dn := Decompose(pn, 2048)
	foundMat := false
	for _, s := range dn.Segments {
		if s.Kind == KindMaterialize {
			foundMat = true
		}
	}
	if !foundMat {
		t.Fatalf("expected a materialize segment:\n%s", dn)
	}
}

func TestIOShare(t *testing.T) {
	cat := buildCatalog(t)

	// A single-segment scan: all bytes come from disk, output is final.
	p1 := planFor(t, cat, "select * from lineitem", optimizer.Options{})
	d1 := Decompose(p1, 2048)
	s := d1.Segments[0]
	share := d1.IOShare(s, []Est{s.Inputs[0].Init})
	if share != 1 {
		t.Fatalf("scan segment IO share = %g, want 1", share)
	}

	// In-memory hybrid join: the final segment reads the hash table from
	// memory and the probe relation from disk → share strictly between
	// 0 and 1.
	p2 := planFor(t, cat,
		"select c.custkey, o.orderkey from customer c, orders o where c.custkey = o.custkey",
		optimizer.Options{WorkMemPages: 4096})
	d2 := Decompose(p2, 4096)
	final := d2.Segments[len(d2.Segments)-1]
	ests := make([]Est, len(final.Inputs))
	for i, in := range final.Inputs {
		ests[i] = in.Init
	}
	share2 := d2.IOShare(final, ests)
	if share2 <= 0 || share2 >= 1 {
		t.Fatalf("hybrid final segment IO share = %g, want in (0,1)", share2)
	}

	// Grace join: the final join segment reads both partition sets from
	// disk → share 1.
	p3 := planFor(t, cat, `
		select c.custkey, o.orderkey, l.partkey
		from customer c, orders o, lineitem l
		where c.custkey = o.custkey and o.orderkey = l.orderkey`,
		optimizer.Options{WorkMemPages: 1})
	d3 := Decompose(p3, 1)
	gfinal := d3.Segments[len(d3.Segments)-1]
	ests3 := make([]Est, len(gfinal.Inputs))
	for i, in := range gfinal.Inputs {
		ests3[i] = in.Init
	}
	if share3 := d3.IOShare(gfinal, ests3); share3 != 1 {
		t.Fatalf("grace final segment IO share = %g, want 1\n%s", share3, d3)
	}

	// Degenerate input: zero estimates default to 1.
	zero := make([]Est, len(gfinal.Inputs))
	if got := d3.IOShare(gfinal, zero); got != 1 {
		t.Fatalf("zero-byte IO share = %g", got)
	}
}

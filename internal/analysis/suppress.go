package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses one analyzer on
// one line: //lint:ignore <analyzer> <reason>.
const ignoreDirective = "lint:ignore"

// suppression is one parsed //lint:ignore directive. It silences
// diagnostics from the named analyzer on the directive's own line
// (trailing-comment form) or the line immediately below it
// (preceding-comment form).
type suppression struct {
	pos      token.Position // of the directive comment
	analyzer string
	reason   string
	used     bool
}

// covers reports whether the suppression applies to a diagnostic at p.
func (s *suppression) covers(p token.Position, analyzer string) bool {
	return s.analyzer == analyzer &&
		s.pos.Filename == p.Filename &&
		(s.pos.Line == p.Line || s.pos.Line+1 == p.Line)
}

// collectSuppressions extracts every lint:ignore directive from the
// files' comments.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var sups []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				sups = append(sups, &suppression{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return sups
}

// applySuppressions drops diagnostics covered by a suppression, marking
// each matching suppression used.
func applySuppressions(diags []Diagnostic, sups []*suppression) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.covers(d.Pos, d.Analyzer) {
				s.used = true
				suppressed = true
				// Keep scanning so every matching directive is marked
				// used (duplicates are then not reported as unused).
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// suppressionDiagnostics audits the directives themselves: a
// suppression naming an unknown analyzer, missing its reason, or
// silencing nothing is reported under the reserved analyzer name
// "suppress". This keeps the ignore inventory honest — a stale
// directive outlives its violation and would otherwise hide the next
// real one on that line.
func suppressionDiagnostics(sups []*suppression, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(s *suppression, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Pos:      s.pos,
			Analyzer: "suppress",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, s := range sups {
		switch {
		case s.analyzer == "":
			report(s, "lint:ignore needs an analyzer name and a reason")
		case !known[s.analyzer]:
			names := make([]string, 0, len(known))
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			report(s, "lint:ignore names unknown analyzer %q (known: %s)", s.analyzer, strings.Join(names, ", "))
		case s.reason == "":
			report(s, "lint:ignore %s needs a reason", s.analyzer)
		case !s.used:
			report(s, "unused lint:ignore %s (nothing suppressed on this or the next line)", s.analyzer)
		}
	}
	return out
}

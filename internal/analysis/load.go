package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (or assumed path for fixture packages)
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded set of target packages plus the export-data index
// needed to type-check them (and any extra fixture sources) from
// source. Loading shells out to `go list -export -deps`, so it needs a
// working go toolchain but no network and no third-party modules: the
// standard library's gc importer reads the toolchain's own export data.
type Module struct {
	Fset     *token.FileSet
	Dir      string
	Packages []*Package

	exports   map[string]string // import path -> export data file
	importMap map[string]string // vendored/renamed import -> real path
	imp       types.Importer
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns (e.g. "./...") in dir, builds the export-data
// index for every transitive dependency, and parses + type-checks each
// non-dependency-only package from source. Test files are excluded:
// the invariants checked by progresslint constrain engine code, and
// tests legitimately use wall clocks, panics, and ad-hoc metric names.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,ImportMap,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}

	m := &Module{
		Fset:      token.NewFileSet(),
		Dir:       dir,
		exports:   make(map[string]string),
		importMap: make(map[string]string),
	}
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			m.exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			m.importMap[from] = to
		}
		if !lp.DepOnly {
			cp := lp
			targets = append(targets, &cp)
		}
	}
	m.imp = importer.ForCompiler(m.Fset, "gc", m.lookup)

	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(m.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := m.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// lookup resolves an import path to its export data, honoring any
// vendor/module import remapping reported by go list.
func (m *Module) lookup(path string) (io.ReadCloser, error) {
	if to, ok := m.importMap[path]; ok {
		path = to
	}
	file, ok := m.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q (is it imported by the module?)", path)
	}
	return os.Open(file)
}

// check type-checks a set of parsed files as one package under the
// given import path.
func (m *Module) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: m.imp}
	pkg, err := conf.Check(path, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: pkg, Info: info}, nil
}

// CheckFiles parses and type-checks standalone fixture files as a
// synthetic package with the given assumed import path. The fixtures
// may import the standard library and this module's packages (anything
// with export data in the index).
func (m *Module) CheckFiles(assumedPath string, filenames ...string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(m.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
	}
	return m.check(assumedPath, files)
}

// CheckSource type-checks in-memory source as a synthetic package with
// the given assumed import path. filename is used for positions only.
func (m *Module) CheckSource(assumedPath, filename, src string) (*Package, error) {
	f, err := parser.ParseFile(m.Fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", filename, err)
	}
	return m.check(assumedPath, []*ast.File{f})
}

// ModuleRoot locates the enclosing module's root directory by asking
// the go tool for the active go.mod, starting from dir ("" = cwd).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysis: not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// testAnalyzers returns two toy analyzers: "callflag" reports every
// call to a function named flagged(), "litflag" reports every string
// literal "flagged". Two analyzers are needed to prove a suppression
// silences exactly the named one.
func testAnalyzers() (callflag, litflag *Analyzer) {
	callflag = &Analyzer{
		Name: "callflag",
		Doc:  "reports calls to flagged()",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "flagged" {
						pass.Reportf(call.Pos(), "call to flagged")
					}
					return true
				})
			}
			return nil
		},
	}
	litflag = &Analyzer{
		Name: "litflag",
		Doc:  "reports the string literal \"flagged\"",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.BasicLit)
					if ok && lit.Value == `"flagged"` {
						pass.Reportf(lit.Pos(), "flagged literal")
					}
					return true
				})
			}
			return nil
		},
	}
	return callflag, litflag
}

// runOn runs both toy analyzers over one source file and returns the
// surviving diagnostics.
func runOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	m, err := FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.CheckSource("progressdb/internal/suppressfixture", "sup_fixture.go", src)
	if err != nil {
		t.Fatal(err)
	}
	callflag, litflag := testAnalyzers()
	diags, err := Run(m.Fset, []*Package{pkg}, []*Analyzer{callflag, litflag})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const supHeader = `
package suppressfixture

func flagged() string { return "ok" }
`

// TestSuppressionSilencesExactlyNamedAnalyzer: one line violates both
// analyzers; suppressing callflag must leave litflag's diagnostic (and
// the suppression must count as used).
func TestSuppressionSilencesExactlyNamedAnalyzer(t *testing.T) {
	diags := runOn(t, supHeader+`
func both() (string, string) {
	//lint:ignore callflag reason: exercising selective suppression
	return flagged(), "flagged"
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (litflag only): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "litflag" {
		t.Errorf("surviving diagnostic is from %s, want litflag", diags[0].Analyzer)
	}
}

// TestTrailingSuppression: the directive also works as an end-of-line
// comment on the offending line itself.
func TestTrailingSuppression(t *testing.T) {
	diags := runOn(t, supHeader+`
func trailing() string {
	return flagged() //lint:ignore callflag reason: trailing form
}
`)
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestMisspelledSuppressionReported: naming an unknown analyzer is
// itself a finding, and the original diagnostic survives.
func TestMisspelledSuppressionReported(t *testing.T) {
	diags := runOn(t, supHeader+`
func misspelled() string {
	//lint:ignore callflagg oops, typo in the analyzer name
	return flagged()
}
`)
	var sawMeta, sawOriginal bool
	for _, d := range diags {
		switch d.Analyzer {
		case "suppress":
			sawMeta = true
			if !strings.Contains(d.Message, `unknown analyzer "callflagg"`) {
				t.Errorf("meta diagnostic %q does not name the misspelling", d.Message)
			}
			if !strings.Contains(d.Message, "callflag, litflag") {
				t.Errorf("meta diagnostic %q does not list known analyzers", d.Message)
			}
		case "callflag":
			sawOriginal = true
		}
	}
	if !sawMeta {
		t.Error("misspelled suppression was not reported")
	}
	if !sawOriginal {
		t.Error("original diagnostic was swallowed by a misspelled suppression")
	}
}

// TestUnusedSuppressionReported: a directive that silences nothing is
// stale and must be flagged.
func TestUnusedSuppressionReported(t *testing.T) {
	diags := runOn(t, supHeader+`
func clean() int {
	//lint:ignore callflag reason: nothing wrong on the next line anymore
	return 42
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "suppress" || !strings.Contains(d.Message, "unused lint:ignore callflag") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSuppressionDoesNotReachTwoLinesDown: the directive covers its own
// line and the one immediately below, never further — a blank line (or
// any other line) between directive and violation breaks the link, the
// violation survives, and the directive is flagged unused.
func TestSuppressionDoesNotReachTwoLinesDown(t *testing.T) {
	diags := runOn(t, supHeader+`
func farApart() string {
	//lint:ignore callflag reason: one line too far up

	return flagged()
}
`)
	var sawUnused, sawOriginal bool
	for _, d := range diags {
		switch d.Analyzer {
		case "suppress":
			if strings.Contains(d.Message, "unused lint:ignore callflag") {
				sawUnused = true
			}
		case "callflag":
			sawOriginal = true
		}
	}
	if !sawOriginal {
		t.Error("a directive two lines up suppressed the violation; it must only cover the adjacent line")
	}
	if !sawUnused {
		t.Error("the out-of-range directive was not reported unused")
	}
}

// TestSuppressionLastLineOfCommentGroup: a directive works as the final
// line of a multi-line comment block sitting directly on the code —
// the usual shape when the suppression needs a paragraph of
// justification above it.
func TestSuppressionLastLineOfCommentGroup(t *testing.T) {
	diags := runOn(t, supHeader+`
func documented() string {
	// The next call is sanctioned for this test; the full story
	// takes more than one line to tell.
	//lint:ignore callflag reason: documented at length above
	return flagged()
}
`)
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestSuppressionBuriedInCommentGroup: a directive in the middle of a
// comment block is more than one line from the code, so it suppresses
// nothing — adjacency is measured in lines, not comment groups.
func TestSuppressionBuriedInCommentGroup(t *testing.T) {
	diags := runOn(t, supHeader+`
func buried() string {
	//lint:ignore callflag reason: buried mid-comment, off target
	// trailing prose pushes the directive out of range
	return flagged()
}
`)
	var sawUnused, sawOriginal bool
	for _, d := range diags {
		switch d.Analyzer {
		case "suppress":
			sawUnused = sawUnused || strings.Contains(d.Message, "unused lint:ignore callflag")
		case "callflag":
			sawOriginal = true
		}
	}
	if !sawOriginal {
		t.Error("a directive buried mid-comment-group suppressed a violation two lines down")
	}
	if !sawUnused {
		t.Error("the buried directive was not reported unused")
	}
}

// TestBlockCommentDirectiveInert: only line comments carry directives;
// /* lint:ignore */ is prose, not a suppression, and is not audited.
func TestBlockCommentDirectiveInert(t *testing.T) {
	diags := runOn(t, supHeader+`
func blockForm() string {
	/* lint:ignore callflag reason: wrong comment form */
	return flagged()
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "callflag" {
		t.Fatalf("got %v, want exactly the callflag diagnostic (block comments are inert)", diags)
	}
}

// TestEmptyDirectiveReported: //lint:ignore with nothing after it names
// no analyzer and is reported as malformed.
func TestEmptyDirectiveReported(t *testing.T) {
	diags := runOn(t, supHeader+`
func empty() int {
	//lint:ignore
	return 42
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "suppress" || !strings.Contains(d.Message, "needs an analyzer name and a reason") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestPrecedingAndTrailingCombine: one line violating two analyzers can
// be fully silenced by a preceding directive for one and a trailing
// directive for the other; both count as used.
func TestPrecedingAndTrailingCombine(t *testing.T) {
	diags := runOn(t, supHeader+`
func both2() (string, string) {
	//lint:ignore callflag reason: preceding form for the call
	return flagged(), "flagged" //lint:ignore litflag reason: trailing form for the literal
}
`)
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestReasonRequired: a bare directive without a reason is flagged but
// still suppresses (so fixing the reason is a one-line edit, not a
// two-failure cascade).
func TestReasonRequired(t *testing.T) {
	diags := runOn(t, supHeader+`
func bare() string {
	//lint:ignore callflag
	return flagged()
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "suppress" || !strings.Contains(d.Message, "needs a reason") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository. It exists
// because the engine's correctness arguments — monotone U accounting on
// a deterministic virtual clock, cancellation at Yield safe points,
// leak-free error unwinding, a stable metrics namespace, reliable error
// unwrapping — rest on *conventions* that ordinary tests cannot see
// being eroded. The checks in internal/analysis/checks turn those
// conventions into machine-checked invariants; cmd/progresslint runs
// them over the whole module in CI.
//
// The framework deliberately mirrors the x/tools API shape (Analyzer,
// Pass, Reportf, analysistest-style fixtures with "// want" comments)
// so that if the x/tools dependency is ever vendored, the checks can be
// ported mechanically and exposed through `go vet -vettool`. Until
// then, everything here builds with the standard library only: package
// loading shells out to `go list -export` and type-checks from source
// against the toolchain's export data (see load.go).
//
// Suppressions use staticcheck's syntax:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line above it. A suppression with
// an unknown analyzer name, a missing reason, or that silences nothing
// is itself reported (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run is invoked once per
// package with a fully type-checked Pass.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:ignore
	// suppressions. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant: what it
	// checks and why the engine needs it.
	Doc string
	// Run reports violations through pass.Reportf. A returned error
	// aborts the whole lint run (reserved for internal failures, not
	// findings).
	Run func(pass *Pass) error
	// End, when non-nil, is invoked once after every package's Run,
	// with a package-less Pass (Files/Path/Pkg/TypesInfo are zero; Fset
	// and State are the run's). It is where module-wide facts
	// accumulated in State are resolved — e.g. obsnames checking that
	// every referenced series name was registered *somewhere*, which no
	// single package's Run can decide. Report positions recorded during
	// Run; the shared Fset resolves them.
	End func(pass *Pass) error
}

// Pass carries one package's syntax and types to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded),
	// in deterministic (file name) order.
	Files []*ast.File
	// Path is the package's effective import path. Fixture packages
	// assume the path of the package whose rules they exercise (e.g. a
	// safepoint fixture runs with Path "progressdb/internal/exec").
	Path string
	// Pkg and TypesInfo hold the full go/types results.
	Pkg       *types.Package
	TypesInfo *types.Info
	// State is shared by all passes of one Run, letting analyzers
	// accumulate module-wide facts (e.g. obsnames' duplicate-name map).
	// Packages are visited in sorted import-path order, so cross-package
	// state is deterministic.
	State *State
	// Facts is the run's interprocedural fact store — the module-wide
	// call graph and field/variable access index built over every
	// package before any analyzer runs (see facts.go). It is available
	// to Run and End passes alike.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// State is a string-keyed scratch space shared across an entire Run.
type State struct{ m map[string]interface{} }

// NewState returns an empty shared state.
func NewState() *State { return &State{m: make(map[string]interface{})} }

// Get returns the value stored under key, or nil.
func (s *State) Get(key string) interface{} { return s.m[key] }

// Set stores v under key.
func (s *State) Set(key string, v interface{}) { s.m[key] = v }

// Run applies every analyzer to every package, applies //lint:ignore
// suppressions, appends meta-diagnostics for bad or unused
// suppressions, and returns the surviving diagnostics sorted by
// position. Packages are visited in sorted Path order.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithState(fset, pkgs, analyzers)
	return diags, err
}

// RunWithState is Run exposing the run's shared State, so callers can
// extract module-wide artifacts an analyzer leaves behind — e.g. the
// sharedstate analyzer's concurrency-readiness inventory, which
// cmd/progresslint serializes as a machine-readable report.
func RunWithState(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *State, error) {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// The interprocedural pre-pass: every Run pass already sees the
	// whole module's call graph and access index, not just the packages
	// visited so far.
	facts := BuildFacts(fset, sorted)

	state := NewState()
	var raw []Diagnostic
	var sups []*suppression
	for _, pkg := range sorted {
		sups = append(sups, collectSuppressions(fset, pkg.Files)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				State:     state,
				Facts:     facts,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.End == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, State: state, Facts: facts, diags: &raw}
		if err := a.End(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s end: %w", a.Name, err)
		}
	}

	kept := applySuppressions(raw, sups)
	kept = append(kept, suppressionDiagnostics(sups, known)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, state, nil
}

package analysis

// Module-wide interprocedural facts. Run builds one Facts store over
// every package of a run before any analyzer executes, so Run-phase
// analyzers already see the complete call graph — the same "collect
// everywhere, resolve once" shape the obsnames End hook pioneered, but
// computed by the framework instead of each analyzer.
//
// Identity is by string key, never by types.Object: a package that is
// type-checked from source and the same package imported through gc
// export data produce distinct *types.Package values, so object
// identity does not survive package boundaries. (*types.Func).FullName
// does — "pkg.Fn", "(pkg.T).M", "(*pkg.T).M" — and function literals
// get a derived key "<enclosing>$lit<N>" numbered in source order.
//
// Interface calls are recorded against the interface method's own key
// and then expanded ("devirtualized") to every named type in the run
// whose method set covers the interface by method name and arity. The
// structural match is deliberate: types.Implements would demand
// identical named types across the source/export-data divide. The
// expansion over-approximates (a type may match by shape without being
// used behind that interface), which is the right direction for lint.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// AccessMode classifies one field or package-variable access.
type AccessMode int

const (
	// ModeRead is a plain read.
	ModeRead AccessMode = iota
	// ModeWrite is a plain write (assignment, ++/--, container mutation
	// through an index expression).
	ModeWrite
	// ModeAddr is an address-taking &x.f not consumed by a sync/atomic
	// call: the pointer escapes, so any access may happen through it.
	ModeAddr
)

func (m AccessMode) String() string {
	switch m {
	case ModeWrite:
		return "write"
	case ModeAddr:
		return "address-taken"
	default:
		return "read"
	}
}

// Access is one recorded access to a struct field or package-level
// variable.
type Access struct {
	// Key identifies the accessed site: "pkg.Type.field" for struct
	// fields (receiver-named, so promoted accesses key on the outer
	// type) or "pkg.var" for package-level variables.
	Key string
	// Func is the enclosing function's key; "" for package-level
	// initializer expressions.
	Func string
	// Pkg is the import path of the package the access occurs in.
	Pkg string
	Pos token.Pos
	// Field distinguishes struct fields from package-level variables.
	Field bool
	Mode  AccessMode
	// Atomic marks accesses made through the sync/atomic package: the
	// address passed to an atomic.* function, or a method call on an
	// atomic.Int64-style typed field.
	Atomic bool
	// AtomicType marks sites whose declared type lives in sync/atomic
	// (atomic.Int64 etc.); a plain Mode access to one of those copies
	// the value, bypassing the atomic API.
	AtomicType bool
}

// Call is one static call edge.
type Call struct {
	Caller string
	// Callee is the static callee key; interface calls use the
	// interface method's key, which Facts expands with edges to every
	// shape-compatible named type's method.
	Callee string
	Pos    token.Pos
	// Go marks a `go` launch: the callee runs asynchronously, so
	// synchronous-behavior queries (FindPath) skip these edges.
	Go bool
	// Defer marks a deferred call.
	Defer bool
}

// Facts is the module-wide fact store shared by all passes of one Run.
type Facts struct {
	// Calls maps a caller key to its call sites, in source order.
	Calls map[string][]Call
	// Accesses maps a field/variable key to every access in the run.
	Accesses map[string][]Access
	// Funcs holds every function key with a body in the run.
	Funcs map[string]token.Pos

	funcKeyAt map[token.Pos]string
	reach     map[string]map[string]bool
}

// FuncKeyAt returns the key of the function or function literal
// declared at pos ("" if unknown). Analyzers use it to share the
// framework's key scheme when they walk syntax themselves.
func (f *Facts) FuncKeyAt(pos token.Pos) string { return f.funcKeyAt[pos] }

// FindPath does a breadth-first search from the function key `from`
// through synchronous call edges (go-launch edges are skipped; deferred
// calls are followed) and returns the first path — as the sequence of
// call sites taken — to a function satisfying target. It returns nil if
// none is reachable. from itself is tested first with an empty path.
func (f *Facts) FindPath(from string, target func(key string) bool) ([]Call, bool) {
	if target(from) {
		return nil, true
	}
	type node struct {
		key  string
		path []Call
	}
	seen := map[string]bool{from: true}
	queue := []node{{key: from}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range f.Calls[n.key] {
			if c.Go || c.Callee == "" || seen[c.Callee] {
				continue
			}
			seen[c.Callee] = true
			path := append(append([]Call(nil), n.path...), c)
			if target(c.Callee) {
				return path, true
			}
			queue = append(queue, node{key: c.Callee, path: path})
		}
	}
	return nil, false
}

// Reachable returns the set of function keys synchronously reachable
// from key (including key itself), memoized across calls.
func (f *Facts) Reachable(key string) map[string]bool {
	if f.reach == nil {
		f.reach = make(map[string]map[string]bool)
	}
	if r, ok := f.reach[key]; ok {
		return r
	}
	seen := map[string]bool{key: true}
	queue := []string{key}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, c := range f.Calls[k] {
			if c.Go || c.Callee == "" || seen[c.Callee] {
				continue
			}
			seen[c.Callee] = true
			queue = append(queue, c.Callee)
		}
	}
	f.reach[key] = seen
	return seen
}

// CalleeKey resolves a call expression to its static callee key: the
// FullName of the called function or method, the derived key of an
// immediately invoked function literal, or "" for dynamic calls through
// function values (and for conversions and builtins).
func (f *Facts) CalleeKey(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return f.funcKeyAt[fun.Pos()]
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.FullName()
			}
			return ""
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}

// BuildFacts walks every package and assembles the run's fact store.
// Packages are processed in sorted import-path order so keys and site
// lists are deterministic.
func BuildFacts(fset *token.FileSet, pkgs []*Package) *Facts {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	f := &Facts{
		Calls:     make(map[string][]Call),
		Accesses:  make(map[string][]Access),
		Funcs:     make(map[string]token.Pos),
		funcKeyAt: make(map[token.Pos]string),
	}
	b := &factsBuilder{
		facts:  f,
		ifaces: make(map[string]ifaceCallee),
	}
	for _, pkg := range sorted {
		b.pkg = pkg
		for _, file := range pkg.Files {
			b.file(file)
		}
	}
	b.expandInterfaces(sorted)
	return f
}

// ifaceCallee remembers one interface method that was called somewhere
// in the run, for devirtualization.
type ifaceCallee struct {
	iface  *types.Interface
	method string
}

type factsBuilder struct {
	facts  *Facts
	pkg    *Package
	fn     string         // enclosing function key; "" at package level
	litSeq map[string]int // FuncLit counter per enclosing function
	ifaces map[string]ifaceCallee
}

func (b *factsBuilder) file(file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			key := b.pkg.Path + "." + d.Name.Name
			if fn, ok := b.pkg.Info.Defs[d.Name].(*types.Func); ok {
				key = fn.FullName()
			}
			b.facts.Funcs[key] = d.Pos()
			b.facts.funcKeyAt[d.Pos()] = key
			b.inFunc(key, func() { b.stmt(d.Body) })
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					b.inFunc("", func() { b.expr(v, ModeRead) })
				}
			}
		}
	}
}

func (b *factsBuilder) inFunc(key string, body func()) {
	prevFn, prevSeq := b.fn, b.litSeq
	b.fn, b.litSeq = key, make(map[string]int)
	body()
	b.fn, b.litSeq = prevFn, prevSeq
}

// funcLit assigns the literal its derived key, records the definition
// edge from the enclosing function (skipped for go-launched literals,
// which callers record as Go edges instead), and walks the body.
func (b *factsBuilder) funcLit(lit *ast.FuncLit, launched bool) string {
	b.litSeq[b.fn]++
	key := b.fn + "$lit" + strconv.Itoa(b.litSeq[b.fn])
	b.facts.Funcs[key] = lit.Pos()
	b.facts.funcKeyAt[lit.Pos()] = key
	if !launched && b.fn != "" {
		b.addCall(Call{Caller: b.fn, Callee: key, Pos: lit.Pos()})
	}
	b.inFunc(key, func() { b.stmt(lit.Body) })
	return key
}

func (b *factsBuilder) addCall(c Call) {
	b.facts.Calls[c.Caller] = append(b.facts.Calls[c.Caller], c)
}

func (b *factsBuilder) record(a Access) {
	if a.Key == "" {
		return
	}
	a.Func = b.fn
	a.Pkg = b.pkg.Path
	b.facts.Accesses[a.Key] = append(b.facts.Accesses[a.Key], a)
}

// ---- statements ----

func (b *factsBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.ExprStmt:
		b.expr(s.X, ModeRead)
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			b.assignTarget(l)
		}
		for _, r := range s.Rhs {
			b.expr(r, ModeRead)
		}
	case *ast.IncDecStmt:
		b.assignTarget(s.X)
	case *ast.SendStmt:
		b.expr(s.Chan, ModeRead)
		b.expr(s.Value, ModeRead)
	case *ast.GoStmt:
		b.call(s.Call, true, false)
	case *ast.DeferStmt:
		b.call(s.Call, false, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.expr(r, ModeRead)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.expr(s.Cond, ModeRead)
		b.stmt(s.Body)
		b.stmt(s.Else)
	case *ast.ForStmt:
		b.stmt(s.Init)
		if s.Cond != nil {
			b.expr(s.Cond, ModeRead)
		}
		b.stmt(s.Post)
		b.stmt(s.Body)
	case *ast.RangeStmt:
		if s.Key != nil {
			b.assignTarget(s.Key)
		}
		if s.Value != nil {
			b.assignTarget(s.Value)
		}
		b.expr(s.X, ModeRead)
		b.stmt(s.Body)
	case *ast.SwitchStmt:
		b.stmt(s.Init)
		if s.Tag != nil {
			b.expr(s.Tag, ModeRead)
		}
		b.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init)
		b.stmt(s.Assign)
		b.stmt(s.Body)
	case *ast.SelectStmt:
		b.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			b.expr(e, ModeRead)
		}
		for _, st := range s.Body {
			b.stmt(st)
		}
	case *ast.CommClause:
		b.stmt(s.Comm)
		for _, st := range s.Body {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.expr(v, ModeRead)
					}
				}
			}
		}
	}
}

// assignTarget records the write side of an assignment. Writes through
// an index expression count against the container (mutating a map or
// slice element mutates shared state the container owns); writes
// through a dereferenced pointer only read the pointer.
func (b *factsBuilder) assignTarget(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		b.ident(e, ModeWrite)
	case *ast.SelectorExpr:
		b.sel(e, ModeWrite)
	case *ast.IndexExpr:
		b.expr(e.X, ModeWrite)
		b.expr(e.Index, ModeRead)
	case *ast.StarExpr:
		b.expr(e.X, ModeRead)
	default:
		b.expr(e, ModeRead)
	}
}

// ---- expressions ----

func (b *factsBuilder) expr(e ast.Expr, mode AccessMode) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		b.ident(e, mode)
	case *ast.SelectorExpr:
		b.sel(e, mode)
	case *ast.CallExpr:
		b.call(e, false, false)
	case *ast.FuncLit:
		b.funcLit(e, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			b.addrOf(e.X)
			return
		}
		b.expr(e.X, ModeRead)
	case *ast.StarExpr:
		b.expr(e.X, ModeRead)
	case *ast.ParenExpr:
		b.expr(e.X, mode)
	case *ast.IndexExpr:
		b.expr(e.X, mode)
		b.expr(e.Index, ModeRead)
	case *ast.IndexListExpr:
		b.expr(e.X, mode)
		for _, i := range e.Indices {
			b.expr(i, ModeRead)
		}
	case *ast.SliceExpr:
		b.expr(e.X, ModeRead)
		b.expr(e.Low, ModeRead)
		b.expr(e.High, ModeRead)
		b.expr(e.Max, ModeRead)
	case *ast.TypeAssertExpr:
		b.expr(e.X, ModeRead)
	case *ast.BinaryExpr:
		b.expr(e.X, ModeRead)
		b.expr(e.Y, ModeRead)
	case *ast.KeyValueExpr:
		b.expr(e.Key, ModeRead)
		b.expr(e.Value, ModeRead)
	case *ast.CompositeLit:
		// Struct literal field keys are initialization, not shared-state
		// access: `T{f: v}` builds a fresh value that is not yet visible
		// to anyone else, so the keys are skipped and only the values are
		// walked.
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					if _, isField := b.pkg.Info.Uses[kv.Key.(*ast.Ident)].(*types.Var); isField {
						b.expr(kv.Value, ModeRead)
						continue
					}
				}
			}
			b.expr(elt, ModeRead)
		}
	}
}

// addrOf records &target as an address-taken access.
func (b *factsBuilder) addrOf(e ast.Expr) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		b.ident(e, ModeAddr)
	case *ast.SelectorExpr:
		b.sel(e, ModeAddr)
	default:
		b.expr(e, ModeRead)
	}
}

// ident records an access if the identifier names a package-level
// variable (of any package in or out of the run).
func (b *factsBuilder) ident(e *ast.Ident, mode AccessMode) {
	obj := b.pkg.Info.Uses[e]
	if obj == nil {
		obj = b.pkg.Info.Defs[e]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	b.record(Access{
		Key:        v.Pkg().Path() + "." + v.Name(),
		Pos:        e.Pos(),
		Mode:       mode,
		AtomicType: isAtomicType(v.Type()),
	})
}

// sel records a struct-field access (or a qualified package-variable
// access) and walks the base expression as a read.
func (b *factsBuilder) sel(e *ast.SelectorExpr, mode AccessMode) {
	if sel, ok := b.pkg.Info.Selections[e]; ok {
		if sel.Kind() == types.FieldVal {
			if key := fieldKey(sel); key != "" {
				b.record(Access{
					Key:        key,
					Pos:        e.Sel.Pos(),
					Mode:       mode,
					Field:      true,
					AtomicType: isAtomicType(sel.Obj().Type()),
				})
			}
		}
		b.expr(e.X, ModeRead)
		return
	}
	// No selection: a qualified identifier pkg.Name.
	b.ident(e.Sel, mode)
}

// fieldKey names a field by its receiver's named type:
// "pkg.Type.field". Accesses through an anonymous struct type have no
// stable name and return "".
func fieldKey(sel *types.Selection) string {
	t := sel.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
}

// isAtomicType reports whether t (or its pointee) is a named type from
// sync/atomic, e.g. atomic.Int64.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// ---- calls ----

// atomicWriters maps sync/atomic function and method name prefixes to
// the access mode they imply. Load* is a read; everything else mutates.
func atomicAccessMode(name string) AccessMode {
	if strings.HasPrefix(name, "Load") {
		return ModeRead
	}
	return ModeWrite
}

func (b *factsBuilder) call(call *ast.CallExpr, goLaunch, deferred bool) {
	info := b.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x) walks x and records no edge.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			b.expr(a, ModeRead)
		}
		return
	}

	switch fn := fun.(type) {
	case *ast.FuncLit:
		key := b.funcLit(fn, goLaunch)
		if b.fn != "" {
			b.addCall(Call{Caller: b.fn, Callee: key, Pos: call.Pos(), Go: goLaunch, Defer: deferred})
		}
		b.callArgs(call)
		return
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			b.edge(f, call, goLaunch, deferred)
		}
		b.callArgs(call)
		return
	case *ast.SelectorExpr:
		// atomic.AddInt64(&s.f, 1) and friends: the addressed selector
		// is an atomic access, not an escape.
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok && f.Pkg() != nil &&
			f.Pkg().Path() == "sync/atomic" && info.Selections[fn] == nil {
			mode := atomicAccessMode(f.Name())
			for i, a := range call.Args {
				if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND && i == 0 {
					b.atomicTarget(u.X, mode)
					continue
				}
				b.expr(a, ModeRead)
			}
			return
		}
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			m, _ := sel.Obj().(*types.Func)
			if m != nil {
				// s.total.Add(1): a method on an atomic.T-typed field is
				// an atomic access to that field.
				if isAtomicType(sel.Recv()) {
					b.atomicMethodRecv(fn.X, atomicAccessMode(m.Name()))
					b.callArgs(call)
					return
				}
				b.edge(m, call, goLaunch, deferred)
				if types.IsInterface(sel.Recv()) {
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						b.ifaces[m.FullName()] = ifaceCallee{iface: iface, method: m.Name()}
					}
				}
			}
			b.expr(fn.X, ModeRead)
			b.callArgs(call)
			return
		}
		// Qualified function pkg.F, or a method expression/value.
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			b.edge(f, call, goLaunch, deferred)
		} else {
			b.expr(fn, ModeRead) // function-typed package var: dynamic
		}
		b.callArgs(call)
		return
	}
	// Dynamic call through an arbitrary expression.
	b.expr(fun, ModeRead)
	b.callArgs(call)
}

func (b *factsBuilder) callArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		b.expr(a, ModeRead)
	}
}

func (b *factsBuilder) edge(f *types.Func, call *ast.CallExpr, goLaunch, deferred bool) {
	if b.fn == "" {
		return
	}
	b.addCall(Call{Caller: b.fn, Callee: f.FullName(), Pos: call.Pos(), Go: goLaunch, Defer: deferred})
}

// atomicTarget records the &x passed to a sync/atomic function.
func (b *factsBuilder) atomicTarget(e ast.Expr, mode AccessMode) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := b.pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			b.record(Access{Key: v.Pkg().Path() + "." + v.Name(), Pos: e.Pos(), Mode: mode, Atomic: true})
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if key := fieldKey(sel); key != "" {
				b.record(Access{Key: key, Pos: e.Sel.Pos(), Mode: mode, Field: true, Atomic: true})
			}
			b.expr(e.X, ModeRead)
			return
		}
		b.expr(e, ModeRead)
	default:
		b.expr(e, ModeRead)
	}
}

// atomicMethodRecv records the receiver of an atomic.T method call as
// an atomic access to the underlying field or variable.
func (b *factsBuilder) atomicMethodRecv(recv ast.Expr, mode AccessMode) {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		if v, ok := b.pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			b.record(Access{Key: v.Pkg().Path() + "." + v.Name(), Pos: e.Pos(), Mode: mode, Atomic: true, AtomicType: true})
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if key := fieldKey(sel); key != "" {
				b.record(Access{Key: key, Pos: e.Sel.Pos(), Mode: mode, Field: true, Atomic: true, AtomicType: true})
			}
			b.expr(e.X, ModeRead)
			return
		}
	}
	b.expr(recv, ModeRead)
}

// ---- interface devirtualization ----

// expandInterfaces adds edges from every called interface method to the
// same-named method of every named type in the run whose method set
// covers the interface by name and arity.
func (b *factsBuilder) expandInterfaces(pkgs []*Package) {
	if len(b.ifaces) == 0 {
		return
	}
	type method struct {
		fn     *types.Func
		params int
		result int
	}
	// Collect the full (pointer) method set of every named type.
	var typeNames []string
	methodSets := make(map[string]map[string]method)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(named))
			if ms.Len() == 0 {
				continue
			}
			key := pkg.Path + "." + name
			set := make(map[string]method, ms.Len())
			for i := 0; i < ms.Len(); i++ {
				fn, ok := ms.At(i).Obj().(*types.Func)
				if !ok {
					continue
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					continue
				}
				set[fn.Name()] = method{fn: fn, params: sig.Params().Len(), result: sig.Results().Len()}
			}
			methodSets[key] = set
			typeNames = append(typeNames, key)
		}
	}
	sort.Strings(typeNames)

	ifaceKeys := make([]string, 0, len(b.ifaces))
	for k := range b.ifaces {
		ifaceKeys = append(ifaceKeys, k)
	}
	sort.Strings(ifaceKeys)

	seen := make(map[string]bool)
	for _, ik := range ifaceKeys {
		ic := b.ifaces[ik]
		for _, tn := range typeNames {
			set := methodSets[tn]
			covers := true
			for i := 0; i < ic.iface.NumMethods(); i++ {
				im := ic.iface.Method(i)
				sig := im.Type().(*types.Signature)
				m, ok := set[im.Name()]
				if !ok || m.params != sig.Params().Len() || m.result != sig.Results().Len() {
					covers = false
					break
				}
			}
			if !covers {
				continue
			}
			target, ok := set[ic.method]
			if !ok {
				continue
			}
			callee := target.fn.FullName()
			if callee == ik || seen[ik+"→"+callee] {
				continue
			}
			seen[ik+"→"+callee] = true
			b.facts.Calls[ik] = append(b.facts.Calls[ik], Call{Caller: ik, Callee: callee})
		}
	}
}

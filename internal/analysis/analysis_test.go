package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadModule proves the stdlib-only loader round-trips the real
// module: go list -export supplies export data, and every non-test
// package type-checks from source against it.
func TestLoadModule(t *testing.T) {
	m, err := FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Packages) == 0 {
		t.Fatal("no packages loaded")
	}
	wantPkgs := map[string]bool{
		"progressdb":                  false,
		"progressdb/internal/exec":    false,
		"progressdb/internal/obs":     false,
		"progressdb/internal/storage": false,
		"progressdb/cmd/progresslint": false,
	}
	for _, pkg := range m.Packages {
		if _, ok := wantPkgs[pkg.Path]; ok {
			wantPkgs[pkg.Path] = true
		}
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("%s: missing type information", pkg.Path)
		}
		if len(pkg.Files) == 0 {
			t.Errorf("%s: no files", pkg.Path)
		}
		for _, f := range pkg.Files {
			name := m.Fset.Position(f.Pos()).Filename
			if base := filepath.Base(name); len(base) > len("_test.go") &&
				base[len(base)-len("_test.go"):] == "_test.go" {
				t.Errorf("%s: test file %s was loaded; analysis must skip tests", pkg.Path, base)
			}
		}
	}
	for path, seen := range wantPkgs {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}

// TestModuleRoot sanity-checks module root discovery.
func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Abs(root); err != nil {
		t.Fatalf("root %q not a path: %v", root, err)
	}
}

// TestRunDeterministic: two runs over the same packages produce
// identical diagnostics in identical order (the suite runs in CI, so
// flaky ordering would be a build-breaking bug).
func TestRunDeterministic(t *testing.T) {
	m, err := FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.CheckSource("progressdb/internal/detfixture", "det_fixture.go", `
package detfixture

func flagged() int { return 0 }

func a() int { return flagged() }
func b() int { return flagged() }
`)
	if err != nil {
		t.Fatal(err)
	}
	callflag, _ := testAnalyzers()
	run := func() []Diagnostic {
		diags, err := Run(m.Fset, []*Package{pkg}, []*Analyzer{callflag})
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}
	first, second := run(), run()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("got %d and %d diagnostics, want 2 and 2", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("diagnostic %d differs between runs: %v vs %v", i, first[i], second[i])
		}
	}
	if first[0].Pos.Line >= first[1].Pos.Line {
		t.Errorf("diagnostics not sorted by position: %v", first)
	}
}

package analysis

import (
	"strings"
	"testing"
)

// TestFactsCallGraphAndAccess pins the fact-store key scheme and edge
// semantics on a synthetic package: FullName keys for functions and
// methods, $litN keys for literals, go-launch edges excluded from
// synchronous reachability, interface calls devirtualized to structural
// implementors, and the field-access index with modes.
func TestFactsCallGraphAndAccess(t *testing.T) {
	m, err := FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	const path = "progressdb/internal/factsfixture"
	pkg, err := m.CheckSource(path, "facts_fixture.go", `
package fixture

type counterI interface{ Bump() }

type impl struct{ n int }

func (i *impl) Bump() { i.n++ }

func callIface(c counterI) { c.Bump() }

func a() { b() }

func b() { go c() }

func c() {}

func lits() {
	f := func() {}
	f()
	go func() {}()
}
`)
	if err != nil {
		t.Fatal(err)
	}
	facts := BuildFacts(m.Fset, []*Package{pkg})

	keyA, keyB, keyC := path+".a", path+".b", path+".c"
	for _, key := range []string{keyA, keyB, keyC, path + ".lits$lit1", path + ".lits$lit2",
		"(*" + path + ".impl).Bump"} {
		if _, ok := facts.Funcs[key]; !ok {
			t.Errorf("function key %s missing from Facts.Funcs", key)
		}
	}

	// a→b is a synchronous edge; b→c is a go launch and must not count
	// as synchronous reachability.
	if _, ok := facts.FindPath(keyA, func(k string) bool { return k == keyB }); !ok {
		t.Errorf("no synchronous path a→b")
	}
	if _, ok := facts.FindPath(keyA, func(k string) bool { return k == keyC }); ok {
		t.Errorf("go-launched edge b→c leaked into synchronous reachability")
	}
	if !facts.Reachable(keyA)[keyB] || facts.Reachable(keyA)[keyC] {
		t.Errorf("Reachable(a) = %v, want b but not go-launched c", facts.Reachable(keyA))
	}

	// lits defines $lit1 synchronously and go-launches $lit2.
	var defEdge, goEdge bool
	for _, c := range facts.Calls[path+".lits"] {
		switch c.Callee {
		case path + ".lits$lit1":
			defEdge = !c.Go
		case path + ".lits$lit2":
			goEdge = c.Go
		}
	}
	if !defEdge || !goEdge {
		t.Errorf("lits edges: defEdge=%v goEdge=%v, want both true", defEdge, goEdge)
	}

	// The interface call is recorded under the interface method's key and
	// devirtualized to the structural implementor.
	ifaceKey := "(" + path + ".counterI).Bump"
	implKey := "(*" + path + ".impl).Bump"
	if _, ok := facts.FindPath(path+".callIface", func(k string) bool { return k == implKey }); !ok {
		t.Errorf("interface call not devirtualized: no path callIface → %s (calls: %v, %v)",
			implKey, facts.Calls[path+".callIface"], facts.Calls[ifaceKey])
	}

	// The access index records the field write with its enclosing
	// function.
	accesses := facts.Accesses[path+".impl.n"]
	if len(accesses) != 1 {
		t.Fatalf("impl.n accesses = %v, want exactly one", accesses)
	}
	if a := accesses[0]; a.Mode != ModeWrite || !a.Field || a.Func != implKey {
		t.Errorf("impl.n access = %+v, want field write inside %s", a, implKey)
	}
}

// TestFactsModuleWide builds facts over the real module and checks the
// properties progresslint's interprocedural analyzers rely on: a
// populated graph with cross-package edges resolved through export
// data, and every function key resolvable back from its position.
func TestFactsModuleWide(t *testing.T) {
	m, err := FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	facts := BuildFacts(m.Fset, m.Packages)
	if len(facts.Funcs) == 0 || len(facts.Calls) == 0 || len(facts.Accesses) == 0 {
		t.Fatalf("empty fact store over the module: %d funcs, %d callers, %d access keys",
			len(facts.Funcs), len(facts.Calls), len(facts.Accesses))
	}
	for key, pos := range facts.Funcs {
		if got := facts.FuncKeyAt(pos); got != key {
			t.Fatalf("FuncKeyAt(%v) = %q, want %q", pos, got, key)
		}
	}
	// At least one call edge must cross between two internal packages —
	// the property that makes lockdisc/goleak interprocedural.
	crossPkg := false
	for caller, calls := range facts.Calls {
		callerPkg := internalPkgOf(caller)
		if callerPkg == "" {
			continue
		}
		for _, c := range calls {
			if calleePkg := internalPkgOf(c.Callee); calleePkg != "" && calleePkg != callerPkg {
				crossPkg = true
			}
		}
	}
	if !crossPkg {
		t.Error("no cross-package call edge found in the module graph")
	}
}

// internalPkgOf extracts the progressdb/internal/<pkg> prefix of a
// function key, tolerating the "(" and "(*" receiver forms.
func internalPkgOf(key string) string {
	key = strings.TrimLeft(key, "(*")
	const prefix = "progressdb/internal/"
	if !strings.HasPrefix(key, prefix) {
		return ""
	}
	rest := strings.TrimPrefix(key, prefix)
	if i := strings.IndexAny(rest, "./"); i >= 0 {
		return rest[:i]
	}
	return rest
}

package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// This file is the fixture harness: a small reimplementation of
// x/tools' analysistest. Fixture files live under a package's testdata
// directory (so the go tool ignores them), carry trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments on lines where diagnostics are expected, and are
// type-checked as a synthetic package under an assumed import path so
// path-scoped analyzers (e.g. safepoint, which only fires inside
// progressdb/internal/exec) can be exercised from anywhere. A fixture
// fails the test both when an expected diagnostic is missing (the
// analyzer is broken) and when an unexpected one appears (the analyzer
// over-reports), so every fixture is also the "fails without the
// analyzer" proof the CI contract asks for.

var (
	fixtureOnce sync.Once
	fixtureMod  *Module
	fixtureErr  error
)

// FixtureModule loads the enclosing module once per test binary; all
// fixture packages type-check against its export-data index. Exposed
// so tests can synthesize multi-package runs (e.g. cross-package
// duplicate detection).
func FixtureModule() (*Module, error) {
	fixtureOnce.Do(func() {
		root, err := ModuleRoot("")
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureMod, fixtureErr = Load(root, "./...")
	})
	return fixtureMod, fixtureErr
}

// RunFixtures type-checks the fixture files as one synthetic package
// with the assumed import path, runs the analyzers over it (including
// suppression handling and the suppress meta-check), and matches the
// diagnostics against the fixtures' want comments.
func RunFixtures(t *testing.T, analyzers []*Analyzer, assumedPath string, fixtures ...string) {
	t.Helper()
	m, err := FixtureModule()
	if err != nil {
		t.Fatalf("loading module for fixtures: %v", err)
	}
	pkg, err := m.CheckFiles(assumedPath, fixtures...)
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}
	diags, err := Run(m.Fset, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWants(t, m.Fset, pkg, diags)
}

// RunFixture runs a single analyzer over fixture files.
func RunFixture(t *testing.T, a *Analyzer, assumedPath string, fixtures ...string) {
	t.Helper()
	RunFixtures(t, []*Analyzer{a}, assumedPath, fixtures...)
}

// RunSource is RunFixtures over in-memory source, for table-driven
// tests that synthesize small packages inline.
func RunSource(t *testing.T, analyzers []*Analyzer, assumedPath, filename, src string) {
	t.Helper()
	m, err := FixtureModule()
	if err != nil {
		t.Fatalf("loading module for fixtures: %v", err)
	}
	pkg, err := m.CheckSource(assumedPath, filename, src)
	if err != nil {
		t.Fatalf("type-checking source: %v", err)
	}
	diags, err := Run(m.Fset, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWants(t, m.Fset, pkg, diags)
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRE matches one pattern in a want comment: either "double quoted"
// (with backslash escapes) or `backquoted` (taken literally).
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants extracts expectations from the package's comments.
func parseWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, match := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := match[2] // backquoted: literal
					if match[2] == "" && match[1] != "" {
						var err error
						if pat, err = unquoteWant(match[1]); err != nil {
							t.Fatalf("%s: bad want pattern: %v", pos, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// unquoteWant undoes the minimal escaping allowed inside want strings.
func unquoteWant(s string) (string, error) {
	if !strings.Contains(s, `\`) {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			if i >= len(s) {
				return "", fmt.Errorf("trailing backslash in %q", s)
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, fset *token.FileSet, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

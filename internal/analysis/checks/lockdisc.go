package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"progressdb/internal/analysis"
)

// Lockdisc checks mutex discipline, module-wide. Three rules:
//
//  1. Release on every path. A sync.Mutex/RWMutex Lock (or RLock) must
//     be released on all paths out of its critical section — either by
//     an immediate `defer mu.Unlock()` or by explicit unwinding like
//     the closepath analyzer accepts: a statement between Lock and the
//     fall-through Unlock that returns must itself unlock first.
//
//  2. No blocking under a lock. While a mutex is held, the critical
//     section must not block: channel sends/receives outside a select
//     with a default case, selects without a default, sync.Cond.Wait,
//     sync.WaitGroup.Wait, time.Sleep, or os.File I/O — directly, or
//     transitively through any function the module-wide call graph
//     says the section reaches. Calls through bare function values are
//     flagged too: the analyzer cannot see behind them, and the one
//     real bug this rule caught (the fleet aggregator invoking its
//     paced progress callback under the state mutex) hid exactly there.
//     A lock that intentionally serializes a long region (the fleet's
//     per-shard coarse lock) opts out with //lint:lockcoarse <reason>
//     on the field declaration.
//
//  3. Ordered acquisition. Nested acquisitions — direct or through the
//     call graph — form an acquisition graph. //lint:lockorder A < B
//     declares that A may be held while taking B; taking A while
//     holding B is reported, as is any cycle in the observed graph
//     (two locks taken in both orders deadlock under concurrency even
//     if today's single-threaded engine never trips it).
//
// The analysis is syntactic and deliberately conservative in known
// ways: lock identity is the receiver's final field ("pkg.Type.field"),
// so two instances of one type share an identity; go-launched literals
// do not inherit held locks; deferred calls other than Unlock are not
// treated as part of the critical section.
var Lockdisc = &analysis.Analyzer{
	Name: "lockdisc",
	Doc: "every Lock has an Unlock on all paths; no blocking call " +
		"(directly or via the call graph) while a lock is held; lock " +
		"acquisition respects //lint:lockorder declarations and is " +
		"cycle-free",
	Run: runLockdisc,
	End: endLockdisc,
}

const (
	lockdiscStateKey = "lockdisc.state"
	// lockorderDirective declares a pairwise acquisition order:
	// //lint:lockorder before < after (keys matched by suffix).
	lockorderDirective = "lint:lockorder"
	// lockcoarseDirective on a mutex field declaration exempts that
	// lock from the no-blocking rule: //lint:lockcoarse <reason>.
	lockcoarseDirective = "lint:lockcoarse"
)

// lockdiscState accumulates module-wide facts across Run passes.
type lockdiscState struct {
	// heldCalls: static calls made while a lock is held.
	heldCalls []heldCall
	// dynCalls: function-value calls made while a lock is held.
	dynCalls []heldSite
	// directBlocks: blocking operations lexically inside a held region.
	directBlocks []heldSite
	// funcBlocks: first directly blocking operation per function.
	funcBlocks map[string]blockOp
	// funcDyn: first call through a function value per function — an
	// opaque site that may block, resolved transitively like funcBlocks.
	funcDyn map[string]blockOp
	// funcAcquires: locks each function acquires anywhere in its body.
	funcAcquires map[string][]acquireSite
	// edges: direct nested acquisitions (lock held while taking another).
	edges []lockEdge
	// orders: declared //lint:lockorder pairs.
	orders []orderDecl
	// coarse: lock keys carrying //lint:lockcoarse.
	coarse map[string]bool
}

type heldCall struct {
	lock   string
	callee string
	pos    token.Pos
}

type heldSite struct {
	lock string
	desc string
	pos  token.Pos
}

type blockOp struct {
	desc string
	pos  token.Pos
}

type acquireSite struct {
	lock string
	pos  token.Pos
}

type lockEdge struct {
	from, to string
	pos      token.Pos
}

type orderDecl struct {
	before, after string
	pos           token.Pos
}

func lockdiscStateOf(pass *analysis.Pass) *lockdiscState {
	if st, ok := pass.State.Get(lockdiscStateKey).(*lockdiscState); ok {
		return st
	}
	st := &lockdiscState{
		funcBlocks:   make(map[string]blockOp),
		funcDyn:      make(map[string]blockOp),
		funcAcquires: make(map[string][]acquireSite),
		coarse:       make(map[string]bool),
	}
	pass.State.Set(lockdiscStateKey, st)
	return st
}

func runLockdisc(pass *analysis.Pass) error {
	st := lockdiscStateOf(pass)
	collectLockDirectives(pass, st)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockFunc(pass, st, fd.Pos(), fd.Body)
		}
	}
	return nil
}

// collectLockDirectives parses //lint:lockorder comments anywhere and
// //lint:lockcoarse comments on mutex field declarations.
func collectLockDirectives(pass *analysis.Pass, st *lockdiscState) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, lockorderDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, lockorderDirective))
				before, after, ok := strings.Cut(rest, "<")
				before, after = strings.TrimSpace(before), strings.TrimSpace(after)
				if !ok || before == "" || after == "" {
					pass.Reportf(c.Pos(), "malformed lock-order directive: want //lint:lockorder <lockA> < <lockB>")
					continue
				}
				st.orders = append(st.orders, orderDecl{before: before, after: after, pos: c.Pos()})
			}
		}
	}
	// lockcoarse rides on struct fields of mutex type.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			stype, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stype.Fields.List {
				reason, found := fieldDirective(field, lockcoarseDirective)
				if !found {
					continue
				}
				if reason == "" {
					pass.Reportf(field.Pos(), "lint:lockcoarse needs a reason")
					continue
				}
				tv, ok := pass.TypesInfo.Types[field.Type]
				if !ok || !isMutexType(tv.Type) {
					pass.Reportf(field.Pos(), "lint:lockcoarse on a non-mutex field has no effect")
					continue
				}
				for _, name := range field.Names {
					key := pass.Path + "." + ts.Name.Name + "." + name.Name
					st.coarse[key] = true
				}
			}
			return true
		})
	}
}

// fieldDirective finds a directive in a struct field's doc or line
// comment and returns its argument text.
func fieldDirective(field *ast.Field, directive string) (arg string, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, directive) {
				return strings.TrimSpace(strings.TrimPrefix(text, directive)), true
			}
		}
	}
	return "", false
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockCall classifies a statement as a mutex Lock/Unlock call.
type lockCall struct {
	key    string // lock identity
	method string // Lock, RLock, Unlock, RUnlock
}

// classifyLockCall returns the lock call a call expression performs.
func classifyLockCall(pass *analysis.Pass, call *ast.CallExpr) (lockCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockCall{}, false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return lockCall{}, false
	}
	if !isMutexType(s.Recv()) {
		return lockCall{}, false
	}
	key := lockKeyOf(pass, sel.X)
	if key == "" {
		return lockCall{}, false
	}
	return lockCall{key: key, method: method}, true
}

// lockKeyOf names the lock receiver: the final field of the selector
// chain ("pkg.Type.field"), a package-level variable ("pkg.var"), a
// local variable ("local:name"), or the embedding struct when the mutex
// is embedded.
func lockKeyOf(pass *analysis.Pass, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return "local:" + v.Name()
		}
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			t := s.Recv()
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
			}
		}
		return lockKeyOf(pass, e.Sel)
	case *ast.IndexExpr:
		return lockKeyOf(pass, e.X)
	case *ast.StarExpr:
		return lockKeyOf(pass, e.X)
	}
	return ""
}

func unlockFor(method string) string {
	if method == "RLock" || method == "TryRLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// scanLockFunc analyzes one function body (literals are scanned when
// encountered, with their own keys) for lock regions, per-function
// blocking facts, and acquisitions.
func scanLockFunc(pass *analysis.Pass, st *lockdiscState, fnPos token.Pos, body *ast.BlockStmt) {
	key := pass.Facts.FuncKeyAt(fnPos)
	if key == "" {
		return
	}

	// Per-function facts for the End phase: the first blocking op, and
	// every lock acquired.
	if op, ok := firstBlockingOp(pass, body); ok {
		if _, seen := st.funcBlocks[key]; !seen {
			st.funcBlocks[key] = op
		}
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if lc, ok := classifyLockCall(pass, call); ok && (lc.method == "Lock" || lc.method == "RLock") {
			st.funcAcquires[key] = append(st.funcAcquires[key], acquireSite{lock: lc.key, pos: call.Pos()})
		}
		if pass.Facts.CalleeKey(pass.TypesInfo, call) == "" && isDynamicCall(pass, call) {
			if _, seen := st.funcDyn[key]; !seen {
				st.funcDyn[key] = blockOp{desc: callSource(call), pos: call.Pos()}
			}
		}
	})

	// Nested literals get their own scan (immediately invoked ones were
	// handled above; the rest here).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanLockFunc(pass, st, lit.Pos(), lit.Body)
			return false
		}
		return true
	})

	// Lock regions: statement lists in this function, literals excluded.
	forEachStmtList(body, func(list []ast.Stmt, isFuncBody bool) {
		for i, s := range list {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			lc, ok := classifyLockCall(pass, call)
			if !ok || (lc.method != "Lock" && lc.method != "RLock") {
				continue
			}
			analyzeLockRegion(pass, st, key, lc, call.Pos(), list, i, isFuncBody)
		}
	})
}

// forEachStmtList visits every statement list of the body — the body
// itself, nested blocks, case and comm clause bodies — skipping
// function literals (scanned separately under their own keys).
func forEachStmtList(body *ast.BlockStmt, visit func(list []ast.Stmt, isFuncBody bool)) {
	visit(body.List, true)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				if m != body {
					visit(m.List, false)
				}
			case *ast.CaseClause:
				visit(m.Body, false)
			case *ast.CommClause:
				visit(m.Body, false)
			}
			return true
		})
	}
	walk(body)
}

// inspectSkippingFuncLits is ast.Inspect with function-literal subtrees
// pruned.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// analyzeLockRegion checks release-on-all-paths for the Lock at
// list[lockIdx] and records the held region's calls, dynamic calls,
// direct blocking ops, and nested acquisitions.
func analyzeLockRegion(pass *analysis.Pass, st *lockdiscState, fnKey string, lc lockCall, lockPos token.Pos, list []ast.Stmt, lockIdx int, isFuncBody bool) {
	unlock := unlockFor(lc.method)
	var held []ast.Stmt
	satisfied := false
scan:
	for j := lockIdx + 1; j < len(list); j++ {
		s := list[j]
		switch {
		case isDeferStmt(pass, s, lc.key, unlock):
			// defer unlock: the rest of this list runs under the lock.
			held = append(held, list[j+1:]...)
			satisfied = true
			break scan
		case isBareUnlock(pass, s, lc.key, unlock):
			satisfied = true
			break scan
		case containsUnlock(pass, s, lc.key, unlock):
			// A branch unlocks inside (e.g. unlock-then-return error
			// unwinding); accept the statement and stop — the remaining
			// paths are beyond this syntactic check.
			held = append(held, s)
			satisfied = true
			break scan
		default:
			if ret := findReturn(s); ret != nil {
				pass.Reportf(ret.Pos(),
					"return inside %s critical section without %s: unlock on this path or use defer %s",
					lc.key, unlock, unlock)
				satisfied = true
				break scan
			}
			held = append(held, s)
		}
	}
	if !satisfied && isFuncBody {
		pass.Reportf(lockPos,
			"%s is locked but never released on the fall-through path: add defer %s",
			lc.key, unlock)
	}
	collectHeldRegion(pass, st, fnKey, lc.key, held)
}

// isDeferStmt reports whether s is `defer <lock>.<method>()`.
func isDeferStmt(pass *analysis.Pass, s ast.Stmt, key, method string) bool {
	d, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	lc, ok := classifyLockCall(pass, d.Call)
	return ok && lc.key == key && lc.method == method
}

// isBareUnlock reports whether s is the expression statement
// `<lock>.<method>()`.
func isBareUnlock(pass *analysis.Pass, s ast.Stmt, key, method string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	lc, ok := classifyLockCall(pass, call)
	return ok && lc.key == key && lc.method == method
}

// containsUnlock reports whether the statement's subtree (literals
// excluded) releases the lock, by call or defer.
func containsUnlock(pass *analysis.Pass, s ast.Stmt, key, method string) bool {
	found := false
	inspectSkippingFuncLits(s, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if lc, ok := classifyLockCall(pass, call); ok && lc.key == key && lc.method == method {
			found = true
		}
	})
	return found
}

// findReturn returns the first return statement in the subtree
// (literals excluded), or nil.
func findReturn(s ast.Stmt) *ast.ReturnStmt {
	var ret *ast.ReturnStmt
	inspectSkippingFuncLits(s, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok && ret == nil {
			ret = r
		}
	})
	return ret
}

// collectHeldRegion records what happens while lock is held: static
// calls (resolved through Facts), dynamic calls, direct blocking
// operations, and nested acquisitions. Deferred calls, go statements,
// and function-literal bodies are excluded — they run outside the
// critical section (or on their own goroutine).
func collectHeldRegion(pass *analysis.Pass, st *lockdiscState, fnKey, lock string, held []ast.Stmt) {
	for _, s := range held {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				if !insideSelectComm(s, n.Pos()) {
					st.directBlocks = append(st.directBlocks, heldSite{lock: lock, desc: "channel send", pos: n.Pos()})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !insideSelectComm(s, n.Pos()) {
					st.directBlocks = append(st.directBlocks, heldSite{lock: lock, desc: "channel receive", pos: n.Pos()})
				}
			case *ast.SelectStmt:
				if !hasDefaultClause(n) {
					st.directBlocks = append(st.directBlocks, heldSite{lock: lock, desc: "select without default", pos: n.Pos()})
				}
			case *ast.CallExpr:
				if lc, ok := classifyLockCall(pass, n); ok {
					if lc.method == "Lock" || lc.method == "RLock" {
						st.edges = append(st.edges, lockEdge{from: lock, to: lc.key, pos: n.Pos()})
					}
					return true
				}
				key := pass.Facts.CalleeKey(pass.TypesInfo, n)
				if key == "" {
					if isDynamicCall(pass, n) {
						st.dynCalls = append(st.dynCalls, heldSite{lock: lock, desc: callSource(n), pos: n.Pos()})
					}
					return true
				}
				if desc, ok := blockingCallee(key); ok {
					st.directBlocks = append(st.directBlocks, heldSite{lock: lock, desc: desc, pos: n.Pos()})
					return true
				}
				st.heldCalls = append(st.heldCalls, heldCall{lock: lock, callee: key, pos: n.Pos()})
			}
			return true
		}
		ast.Inspect(s, walk)
	}
}

// isDynamicCall reports whether call goes through a function value
// (not a conversion, builtin, or method/function reference).
func isDynamicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[f].(type) {
		case *types.Builtin, *types.TypeName, *types.Func:
			return false
		}
		return true
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[f]; ok {
			// A method call is static (already keyed); selecting a
			// func-typed field is the canonical dynamic callback.
			_, isMethod := sel.Obj().(*types.Func)
			return !isMethod
		}
		if _, ok := pass.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			return false
		}
		return true
	case *ast.FuncLit:
		return false
	}
	return true
}

func callSource(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "function value"
}

// blockingCallee reports whether a static callee is in the known
// blocking set.
func blockingCallee(key string) (string, bool) {
	switch key {
	case "time.Sleep":
		return "time.Sleep", true
	case "(*sync.Cond).Wait":
		return "sync.Cond.Wait", true
	case "(*sync.WaitGroup).Wait":
		return "sync.WaitGroup.Wait", true
	}
	if strings.HasPrefix(key, "(*os.File).") {
		return "os.File I/O (" + strings.TrimPrefix(key, "(*os.File).") + ")", true
	}
	switch key {
	case "os.Open", "os.Create", "os.OpenFile", "os.ReadFile", "os.WriteFile",
		"os.Remove", "os.RemoveAll", "os.Rename", "os.Stat", "os.ReadDir",
		"os.Mkdir", "os.MkdirAll", "os.Truncate":
		return "file I/O (" + key + ")", true
	}
	return "", false
}

// firstBlockingOp finds the first directly blocking operation in a
// function body (literals excluded), for the call-graph fact map.
func firstBlockingOp(pass *analysis.Pass, body *ast.BlockStmt) (blockOp, bool) {
	var op blockOp
	found := false
	record := func(desc string, pos token.Pos) {
		if !found {
			op, found = blockOp{desc: desc, pos: pos}, true
		}
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !insideSelectComm(body, n.Pos()) {
				record("channel send", n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !insideSelectComm(body, n.Pos()) {
				record("channel receive", n.Pos())
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				record("select without default", n.Pos())
			}
		case *ast.CallExpr:
			if _, ok := classifyLockCall(pass, n); ok {
				return
			}
			key := pass.Facts.CalleeKey(pass.TypesInfo, n)
			if desc, ok := blockingCallee(key); ok {
				record(desc, n.Pos())
			}
		}
	})
	return op, found
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// insideSelectComm reports whether pos lies in a communication clause
// of any select under root. Such sends/receives are not reported
// individually: with a default case they are non-blocking attempts, and
// without one the select itself is the single blocking site.
func insideSelectComm(root ast.Node, pos token.Pos) bool {
	inComm := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if cc.Comm.Pos() <= pos && pos <= cc.Comm.End() {
				inComm = true
			}
		}
		return true
	})
	return inComm
}

// ---- End: interprocedural resolution ----

func endLockdisc(pass *analysis.Pass) error {
	st := lockdiscStateOf(pass)

	// Direct blocking operations and dynamic calls under a lock.
	for _, site := range st.directBlocks {
		if st.coarse[site.lock] {
			continue
		}
		pass.Reportf(site.pos,
			"blocking %s while %s is held: move it out of the critical section "+
				"or declare the lock //lint:lockcoarse <reason>",
			site.desc, site.lock)
	}
	for _, site := range st.dynCalls {
		if st.coarse[site.lock] {
			continue
		}
		pass.Reportf(site.pos,
			"call through function value %s while %s is held may block: "+
				"invoke callbacks outside the critical section or declare the "+
				"lock //lint:lockcoarse <reason>",
			site.desc, site.lock)
	}

	// Transitive blocking through the call graph, and interprocedural
	// acquisitions.
	edges := append([]lockEdge(nil), st.edges...)
	for _, hc := range st.heldCalls {
		reach := pass.Facts.Reachable(hc.callee)
		if !st.coarse[hc.lock] {
			if path, ok := pass.Facts.FindPath(hc.callee, func(k string) bool {
				_, blocks := st.funcBlocks[k]
				return blocks
			}); ok {
				end := hc.callee
				if len(path) > 0 {
					end = path[len(path)-1].Callee
				}
				op := st.funcBlocks[end]
				pass.Reportf(hc.pos,
					"%s is held across a call to %s, which transitively blocks (%s in %s): "+
						"shrink the critical section or declare the lock //lint:lockcoarse <reason>",
					hc.lock, shortKey(hc.callee), op.desc, shortKey(end))
			} else if path, ok := pass.Facts.FindPath(hc.callee, func(k string) bool {
				_, dyn := st.funcDyn[k]
				return dyn
			}); ok {
				end := hc.callee
				if len(path) > 0 {
					end = path[len(path)-1].Callee
				}
				op := st.funcDyn[end]
				pass.Reportf(hc.pos,
					"%s is held across a call to %s, which calls through the function "+
						"value %s (in %s) and may block: invoke callbacks outside the "+
						"critical section or declare the lock //lint:lockcoarse <reason>",
					hc.lock, shortKey(hc.callee), op.desc, shortKey(end))
			}
		}
		for k := range reach {
			for _, acq := range st.funcAcquires[k] {
				if strings.HasPrefix(acq.lock, "local:") {
					continue
				}
				edges = append(edges, lockEdge{from: hc.lock, to: acq.lock, pos: hc.pos})
			}
		}
	}

	reportLockOrder(pass, st, edges)
	return nil
}

// shortKey trims the module path prefix for readable diagnostics.
func shortKey(key string) string {
	return strings.ReplaceAll(key, "progressdb/internal/", "")
}

// matchLockPattern reports whether a declared-order pattern names the
// lock key (exact, or as a '.'-separated suffix).
func matchLockPattern(key, pattern string) bool {
	return key == pattern || strings.HasSuffix(key, "."+pattern) || strings.HasSuffix(key, "/"+pattern)
}

// reportLockOrder applies declared //lint:lockorder pairs to the
// observed acquisition graph and then looks for cycles among the
// remaining edges.
func reportLockOrder(pass *analysis.Pass, st *lockdiscState, edges []lockEdge) {
	// Dedupe to one representative (earliest-seen) edge per from→to
	// pair; self-edges are immediate deadlocks.
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	uniq := make(map[string]lockEdge)
	var order []string
	for _, e := range edges {
		if strings.HasPrefix(e.from, "local:") || strings.HasPrefix(e.to, "local:") {
			continue
		}
		id := e.from + "→" + e.to
		if _, ok := uniq[id]; !ok {
			uniq[id] = e
			order = append(order, id)
		}
	}

	declaredPair := make(map[string]bool) // pairs covered by a declaration
	for _, id := range order {
		e := uniq[id]
		if e.from == e.to {
			pass.Reportf(e.pos, "lock %s acquired while already held (self-deadlock)", e.from)
			delete(uniq, id)
			continue
		}
		for _, d := range st.orders {
			fm, tm := matchLockPattern(e.from, d.after), matchLockPattern(e.to, d.before)
			if fm && tm {
				pass.Reportf(e.pos,
					"acquiring %s while holding %s violates the declared order //lint:lockorder %s < %s",
					e.to, e.from, d.before, d.after)
				delete(uniq, id)
			}
			if (matchLockPattern(e.from, d.before) && matchLockPattern(e.to, d.after)) || (fm && tm) {
				declaredPair[pairID(e.from, e.to)] = true
			}
		}
	}

	// Cycle detection over the surviving edges. Pairs a declaration
	// already covers are skipped: the violation report above is the
	// actionable finding.
	adj := make(map[string][]lockEdge)
	var nodes []string
	seenNode := make(map[string]bool)
	for _, id := range order {
		e, ok := uniq[id]
		if !ok {
			continue
		}
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []string{e.from, e.to} {
			if !seenNode[n] {
				seenNode[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []lockEdge
	reported := make(map[string]bool)
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = grey
		for _, e := range adj[n] {
			if color[e.to] == grey {
				// Found a cycle: the chain from e.to around to e.
				cycle := []lockEdge{e}
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i].from == e.to {
						break
					}
				}
				id := pairID(e.from, e.to)
				if !declaredPair[id] && !reported[id] {
					reported[id] = true
					var names []string
					for i := len(cycle) - 1; i >= 0; i-- {
						names = append(names, cycle[i].from)
					}
					names = append(names, e.to)
					pass.Reportf(e.pos,
						"lock-order cycle (deadlock risk): %s — declare a hierarchy with //lint:lockorder and acquire in one order",
						strings.Join(names, " → "))
				}
				continue
			}
			if color[e.to] == white {
				stack = append(stack, e)
				dfs(e.to)
				stack = stack[:len(stack)-1]
			}
		}
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

func pairID(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

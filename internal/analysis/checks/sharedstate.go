package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"progressdb/internal/analysis"
)

// Sharedstate is the concurrency-readiness audit for ROADMAP item 1
// (the multi-core engine): it inventories every piece of mutable state
// in the engine-core packages that more than one worker could reach,
// and fails the build on the indefensible subset.
//
// Two outputs:
//
//   - Diagnostics: a mutable package-level variable in an engine-core
//     package that is written outside init (or whose address escapes)
//     is an error — package-level singletons are exactly what breaks
//     per-query isolation when workers multiply. Variables only
//     written during initialization, sync.*-typed variables, and
//     atomic-typed variables pass.
//
//   - Inventory: every package-level variable and every struct type
//     with mutable fields in scope is recorded into the run's State,
//     with its guard situation (mutex field, atomic fields, or
//     nothing). cmd/progresslint serializes it with -sharedstate as
//     the machine-readable worklist: each "unguarded" entry is a site
//     the multi-core engine must fence, refactor, or prove
//     single-writer.
//
// Scope: internal/{core,exec,catalog,stats,storage,segment,vclock} —
// the packages a concurrent executor would share. The serving layers
// (server, fleet) already run concurrent and are covered by lockdisc,
// atomicfield, and goleak.
var Sharedstate = &analysis.Analyzer{
	Name: "sharedstate",
	Doc: "mutable package-level state in engine-core packages must be " +
		"init-only or guarded; all shared-mutable sites are inventoried " +
		"for the concurrency-readiness report",
	Run: runSharedstate,
	End: endSharedstate,
}

const sharedstateStateKey = "sharedstate.report"

// sharedStatePackages are the engine-core packages a multi-worker
// executor would share.
var sharedStatePackages = []string{
	"progressdb/internal/core",
	"progressdb/internal/exec",
	"progressdb/internal/catalog",
	"progressdb/internal/stats",
	"progressdb/internal/storage",
	"progressdb/internal/segment",
	"progressdb/internal/vclock",
}

func isSharedStatePackage(path string) bool {
	for _, p := range sharedStatePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// VarSite is one package-level variable in the inventory.
type VarSite struct {
	Package string `json:"package"`
	Name    string `json:"name"`
	Type    string `json:"type"`
	Pos     string `json:"pos"`
	// Guard is "sync", "atomic", or "none".
	Guard string `json:"guard"`
	// WrittenOutsideInit marks variables mutated (or address-escaped)
	// after initialization — the racy subset.
	WrittenOutsideInit bool `json:"written_outside_init"`

	pos token.Pos
	key string
}

// StructSite is one struct type in the inventory.
type StructSite struct {
	Package string `json:"package"`
	Type    string `json:"type"`
	Pos     string `json:"pos"`
	// Guards lists the mutex fields, if any.
	Guards []string `json:"guards,omitempty"`
	// AtomicFields lists fields of sync/atomic type.
	AtomicFields []string `json:"atomic_fields,omitempty"`
	// PlainFields lists the mutable fields not individually atomic.
	PlainFields []string `json:"plain_fields,omitempty"`
	// Unguarded marks structs with plain mutable fields and no mutex:
	// safe only while a single worker owns each instance.
	Unguarded bool `json:"unguarded"`
}

// ConcurrencyReport is the machine-readable sharedstate inventory.
type ConcurrencyReport struct {
	// Scope lists the audited package patterns.
	Scope []string `json:"scope"`
	// PackageVars inventories package-level variables in scope.
	PackageVars []VarSite `json:"package_vars"`
	// Structs inventories struct types with mutable fields in scope.
	Structs []StructSite `json:"structs"`
}

// SharedStateReport extracts the inventory a sharedstate run left in
// the shared State (ok is false if the analyzer did not run).
func SharedStateReport(state *analysis.State) (*ConcurrencyReport, bool) {
	r, ok := state.Get(sharedstateStateKey).(*ConcurrencyReport)
	return r, ok
}

func sharedstateReportOf(pass *analysis.Pass) *ConcurrencyReport {
	if r, ok := pass.State.Get(sharedstateStateKey).(*ConcurrencyReport); ok {
		return r
	}
	r := &ConcurrencyReport{Scope: sharedStatePackages}
	pass.State.Set(sharedstateStateKey, r)
	return r
}

func runSharedstate(pass *analysis.Pass) error {
	if !isSharedStatePackage(pass.Path) {
		return nil
	}
	report := sharedstateReportOf(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						v, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						report.PackageVars = append(report.PackageVars, VarSite{
							Package: pass.Path,
							Name:    name.Name,
							Type:    types.TypeString(v.Type(), shortQualifier),
							Pos:     pass.Fset.Position(name.Pos()).String(),
							Guard:   varGuard(v.Type()),
							pos:     name.Pos(),
							key:     pass.Path + "." + name.Name,
						})
					}
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					stype, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					site := structSite(pass, ts, stype)
					if len(site.PlainFields)+len(site.AtomicFields) > 0 {
						report.Structs = append(report.Structs, site)
					}
				}
			}
		}
	}
	return nil
}

// shortQualifier renders cross-package type names with the bare
// package name, keeping the report readable.
func shortQualifier(p *types.Package) string { return p.Name() }

// varGuard classifies a package variable's type: "sync" (sync.Mutex,
// sync.Once, sync.Map, ...), "atomic" (atomic.Int64, ...), or "none".
func varGuard(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() {
		case "sync":
			return "sync"
		case "sync/atomic":
			return "atomic"
		}
	}
	return "none"
}

// structSite classifies one struct type's fields.
func structSite(pass *analysis.Pass, ts *ast.TypeSpec, stype *ast.StructType) StructSite {
	site := StructSite{
		Package: pass.Path,
		Type:    ts.Name.Name,
		Pos:     pass.Fset.Position(ts.Pos()).String(),
	}
	for _, field := range stype.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		names := make([]string, 0, len(field.Names))
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
		if len(names) == 0 {
			names = []string{types.TypeString(tv.Type, shortQualifier)} // embedded
		}
		switch {
		case isMutexType(tv.Type):
			site.Guards = append(site.Guards, names...)
		case varGuard(tv.Type) == "atomic":
			site.AtomicFields = append(site.AtomicFields, names...)
		case immutableFieldType(tv.Type):
			// Functions and channels are referenced, not mutated in
			// place; they do not make the struct racy by themselves.
		default:
			site.PlainFields = append(site.PlainFields, names...)
		}
	}
	site.Unguarded = len(site.Guards) == 0 && len(site.PlainFields) > 0
	return site
}

// immutableFieldType reports field types that are not themselves
// mutable cells: funcs and channels (the chan structure is internally
// synchronized).
func immutableFieldType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return true
	}
	return false
}

func endSharedstate(pass *analysis.Pass) error {
	report, ok := SharedStateReport(pass.State)
	if !ok {
		return nil
	}
	sort.Slice(report.PackageVars, func(i, j int) bool {
		a, b := report.PackageVars[i], report.PackageVars[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	sort.Slice(report.Structs, func(i, j int) bool {
		a, b := report.Structs[i], report.Structs[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Type < b.Type
	})
	for i := range report.PackageVars {
		v := &report.PackageVars[i]
		for _, a := range pass.Facts.Accesses[v.key] {
			if a.Mode == analysis.ModeRead {
				continue
			}
			if a.Func == "" || a.Func == v.Package+".init" {
				continue // initialization
			}
			v.WrittenOutsideInit = true
			if v.Guard == "none" {
				pass.Reportf(v.pos,
					"unguarded mutable package-level variable %s (%s at %s): a "+
						"multi-worker engine races on it — move it into the engine "+
						"instance, guard it, or make it init-only",
					v.Name, a.Mode, pass.Fset.Position(a.Pos))
				break
			}
		}
	}
	return nil
}

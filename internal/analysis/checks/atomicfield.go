package checks

import (
	"sort"

	"progressdb/internal/analysis"
)

// Atomicfield enforces all-or-nothing atomicity per field: once any
// access to a struct field or package-level variable goes through
// sync/atomic — atomic.AddInt64(&s.n, 1), or a method call on an
// atomic.Int64-style typed field — every other access module-wide must
// too. A single plain read can observe a torn or stale value and a
// single plain write can lose a concurrent atomic increment, so the
// mixed pattern is a data race even when today's callers are
// single-threaded; the whole point of using the atomic API is that the
// next concurrent caller does not need to re-audit every access.
//
// For fields declared with an atomic.T type the plain-access shapes are
// copying the value (`x := s.total` — the copy is not sharable and vet
// flags it too) and overwriting it wholesale; taking its address is
// fine (that is how the value is shared without copying).
//
// The check runs over the framework's module-wide access index, so the
// atomic use and the plain use may live in different packages.
var Atomicfield = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a field or package variable accessed through sync/atomic " +
		"anywhere must never be read or written plainly anywhere else " +
		"in the module",
	Run: func(pass *analysis.Pass) error { return nil },
	End: endAtomicfield,
}

func endAtomicfield(pass *analysis.Pass) error {
	keys := make([]string, 0, len(pass.Facts.Accesses))
	for k := range pass.Facts.Accesses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		accesses := pass.Facts.Accesses[key]
		var firstAtomic *analysis.Access
		atomicTyped := false
		for i := range accesses {
			a := &accesses[i]
			if a.Atomic && firstAtomic == nil {
				firstAtomic = a
			}
			if a.AtomicType {
				atomicTyped = true
			}
		}
		if firstAtomic == nil && !atomicTyped {
			continue
		}
		kind := "field"
		if !accesses[0].Field {
			kind = "package variable"
		}
		for i := range accesses {
			a := &accesses[i]
			if a.Atomic {
				continue
			}
			switch {
			case a.AtomicType && a.Mode == analysis.ModeAddr:
				// Sharing a pointer to an atomic.T is the intended way to
				// avoid copying it.
			case a.AtomicType:
				pass.Reportf(a.Pos,
					"%s of atomic %s %s copies/overwrites the atomic value: use its "+
						"Load/Store methods", a.Mode, kind, shortKey(key))
			case firstAtomic != nil:
				pass.Reportf(a.Pos,
					"plain %s of %s %s, which is accessed via sync/atomic elsewhere: "+
						"mixed access races — use the atomic API on every access",
					a.Mode, kind, shortKey(key))
			}
		}
	}
	return nil
}

package checks

import (
	"go/ast"
	"go/types"

	"progressdb/internal/analysis"
)

// VclockTime forbids wall-clock time in engine packages. The paper's
// progress math (monotone U, remaining-time = remaining-U / speed) and
// this reproduction's determinism (replayable fault schedules, virtual
// load profiles, figure regeneration) hold only if every engine-visible
// second flows through internal/vclock. A single stray time.Now in a
// cost model or retry loop silently reintroduces nondeterminism that no
// unit test will catch on a fast machine.
var VclockTime = &analysis.Analyzer{
	Name: "vclocktime",
	Doc: "forbid time.Now/Sleep/Since and friends in engine packages; " +
		"all engine time must flow through internal/vclock so progress " +
		"accounting and injected latency stay deterministic",
	Run: runVclockTime,
}

// forbiddenTimeFuncs are the package-level functions of "time" that
// observe or consume wall-clock time. Pure constructors and constants
// (time.Duration, time.Second, time.Unix) remain available for wire
// formats and config parsing.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runVclockTime(pass *analysis.Pass) error {
	if !isEnginePackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !forbiddenTimeFuncs[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in engine package %s: engine time must flow through internal/vclock "+
					"(wall-clock reads break deterministic progress accounting and fault replay)",
				sel.Sel.Name, pass.Path)
			return true
		})
	}
	return nil
}

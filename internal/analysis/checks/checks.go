// Package checks holds the progresslint analyzers: the engine's
// conventions — deterministic time, cancellable loops, leak-free error
// unwinding, a disciplined metrics namespace, reliable error wrapping —
// expressed as machine-checked invariants over the module's syntax and
// types. DESIGN.md §7 documents each invariant and why the paper's
// guarantees depend on it; cmd/progresslint runs the suite in CI.
package checks

import (
	"strings"

	"progressdb/internal/analysis"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		VclockTime,
		Safepoint,
		Closepath,
		Obsnames,
		Errwrap,
		Lockdisc,
		Atomicfield,
		Sharedstate,
		Goleak,
	}
}

// enginePackages are the packages whose "time" is the virtual clock:
// everything that charges work, accounts U, or is replayed by the
// deterministic fault/chaos harnesses. internal/server and
// internal/harness intentionally sit outside the list — the daemon's
// wall-clock latencies and the harness's real-time measurements are
// about the outside world, not engine time.
var enginePackages = []string{
	"progressdb/internal/storage",
	"progressdb/internal/exec",
	"progressdb/internal/segment",
	"progressdb/internal/core",
	"progressdb/internal/optimizer",
	"progressdb/internal/txn",
	"progressdb/internal/btree",
	// The fleet coordinator charges retry backoff to shard vclocks so
	// failover replays deterministically under seeded fault schedules; a
	// wall-clock sleep in the retry loop would break that replay.
	"progressdb/internal/fleet",
}

// isEnginePackage reports whether path is (or is nested under) one of
// the engine packages.
func isEnginePackage(path string) bool {
	for _, e := range enginePackages {
		if path == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// isExecPackage reports whether path is the executor package, whose
// loops and operators carry the safe-point and close-path invariants.
func isExecPackage(path string) bool {
	return path == "progressdb/internal/exec"
}

// isFleetPackage reports whether path is the fleet coordinator, whose
// retry loops carry the context-liveness invariant.
func isFleetPackage(path string) bool {
	return path == "progressdb/internal/fleet"
}

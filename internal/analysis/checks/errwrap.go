package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"progressdb/internal/analysis"
)

// Errwrap keeps the engine's error taxonomy unwrappable. The failure
// model (DESIGN.md §6) routes everything through errors.Is/As:
// *storage.IOFault drives the buffer pool's transient-retry decision,
// *exec.CanceledError unwraps to context.Canceled for the server's
// canceled-vs-failed distinction, and *exec.InternalError carries
// recovered panics across the containment boundary. A single
// fmt.Errorf("...: %v", err) in that chain flattens the typed error
// into text and silently breaks every downstream inspection. Likewise,
// a panic outside the sanctioned containment sites either crashes the
// daemon or, if recovered, masquerades as an engine invariant
// violation; sanctioned sites carry a //lint:ignore errwrap directive
// whose reason documents why panicking is correct there.
var Errwrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf over an error value must wrap with %w so errors.Is/As " +
		"keep seeing IOFault/CanceledError/InternalError, and panic is " +
		"forbidden outside sanctioned (suppressed and documented) sites",
	Run: runErrwrap,
}

func runErrwrap(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorf(pass, call, errType)
			checkPanic(pass, call)
			return true
		})
	}
	return nil
}

// checkErrorf flags error-typed arguments formatted with a verb other
// than %w in fmt.Errorf calls whose format string is a literal.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, errType *types.Interface) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) || verbs[i] == 'w' || verbs[i] == '*' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if !types.Implements(tv.Type, errType) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error formatted with %%%c instead of %%w: wrapping keeps errors.Is/As "+
				"working for IOFault, CanceledError, and context cancellation", verbs[i])
	}
}

// formatVerbs returns, for each argument consumed by the format string
// in order, the verb that consumes it ('*' for a width/precision
// argument). %% consumes nothing.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	spec:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break spec // literal %%
			case c == '*':
				verbs = append(verbs, '*')
			case c == '#' || c == '0' || c == '-' || c == ' ' || c == '+' ||
				c == '.' || (c >= '0' && c <= '9') ||
				c == '[' || c == ']': // explicit arg indexes are rare; treat digits as modifiers
				// flag/width/precision/index character: keep scanning
			default:
				verbs = append(verbs, rune(c))
				break spec
			}
		}
	}
	return verbs
}

// checkPanic flags panic calls outside package main. Tests are never
// analyzed, and main packages (examples, cmd smoke paths) may fail
// fast; library panics must be suppressed with a reason naming them a
// sanctioned containment site.
func checkPanic(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.Pkg.Name() == "main" {
		return
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "panic" {
		return
	}
	if obj, found := pass.TypesInfo.Uses[ident]; !found || obj != types.Universe.Lookup("panic") {
		return
	}
	pass.Reportf(call.Pos(),
		"panic outside a sanctioned containment site: return an error (the engine's "+
			"recover boundaries are for invariant violations, not control flow), or mark "+
			"the site sanctioned with //lint:ignore errwrap <why panicking is correct here>")
}

package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"progressdb/internal/analysis"
)

// Obsnames disciplines the metrics namespace. The obs registry is the
// engine's single pane of glass — dashboards, the chaos suite, and the
// <1%-overhead benchmark all address series by name — so names must be
// greppable literals (no runtime concatenation), snake_case with a
// known subsystem prefix, and unique across the module: the registry
// panics at runtime on a kind collision, and silently aliases two
// call sites that pick the same name for different meanings. This
// analyzer moves both failure modes to lint time, module-wide.
// The analyzer also resolves *references*: any series name marked with
// tsdb.Ref — the dashboard's sparkline list, the profile counter set —
// must be registered somewhere in the module (directly, or as the
// _count/_sum series derived from a registered histogram). Registrations
// are collected per package and references resolved in the End hook,
// so a reference may legally precede its registration in visit order.
var Obsnames = &analysis.Analyzer{
	Name: "obsnames",
	Doc: "obs registry metric names must be literal snake_case strings " +
		"with a known subsystem prefix and no duplicate registrations " +
		"across the module; tsdb.Ref-marked series references must " +
		"resolve to a registration",
	Run: runObsnames,
	End: endObsnames,
}

// knownSubsystems are the approved metric name prefixes (the segment
// before the first underscore). Adding a subsystem is a deliberate,
// reviewed act: extend this list and DESIGN.md §7 together.
var knownSubsystems = map[string]bool{
	"engine":      true, // whole-DB counters (queries, leaks)
	"bufferpool":  true,
	"storage":     true,
	"disk":        true,
	"vclock":      true,
	"exec":        true,
	"segment":     true,
	"txn":         true,
	"server":      true,
	"fleet":       true, // sharded-serving coordinator (merge, fan-out, per-shard gauges)
	"faultinject": true,
	"indicator":   true, // progress-indicator gauges
	"progress":    true, // progress-estimate distributions
}

// registryMethods maps obs.Registry instrument constructors to whether
// they register labeled families.
var registryMethods = map[string]bool{
	"Counter":        false,
	"Gauge":          false,
	"Histogram":      false,
	"LabeledCounter": true,
	"LabeledGauge":   true,
}

var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// obsSeen tracks registrations across the whole run (module-wide).
type obsSeen struct {
	pos     token.Position
	labeled bool
}

const obsStateKey = "obsnames.seen"

// obsRef is one tsdb.Ref call site awaiting module-wide resolution.
type obsRef struct {
	name string
	pos  token.Pos
}

const obsRefsKey = "obsnames.refs"

func runObsnames(pass *analysis.Pass) error {
	seen, _ := pass.State.Get(obsStateKey).(map[string]obsSeen)
	if seen == nil {
		seen = make(map[string]obsSeen)
		pass.State.Set(obsStateKey, seen)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isTsdbRef(pass, sel) && len(call.Args) == 1 {
				collectRef(pass, call)
				return true
			}
			labeled, isReg := registryMethods[sel.Sel.Name]
			if !isReg || !isObsRegistry(pass, sel.X) || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to Registry.%s must be a literal string "+
						"(computed names defeat grep, dashboards, and duplicate detection)",
					sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkMetricName(pass, lit, sel.Sel.Name, name, labeled, seen)
			return true
		})
	}
	return nil
}

// checkMetricName applies the naming and uniqueness rules to one
// registration site.
func checkMetricName(pass *analysis.Pass, lit *ast.BasicLit, method, name string, labeled bool, seen map[string]obsSeen) {
	if !snakeCaseRE.MatchString(name) {
		pass.Reportf(lit.Pos(),
			"metric name %q is not snake_case (want lowercase words joined by underscores, "+
				"e.g. storage_io_retries_total)", name)
		return
	}
	subsystem := name[:strings.IndexByte(name, '_')]
	if !knownSubsystems[subsystem] {
		known := make([]string, 0, len(knownSubsystems))
		for s := range knownSubsystems {
			known = append(known, s)
		}
		sort.Strings(known)
		pass.Reportf(lit.Pos(),
			"metric name %q has unknown subsystem prefix %q (known: %s); "+
				"new subsystems are added in internal/analysis/checks/obsnames.go "+
				"alongside DESIGN.md §7", name, subsystem, strings.Join(known, ", "))
		return
	}
	if prev, dup := seen[name]; dup {
		// Labeled families are registered per label value, so repeated
		// labeled registrations of the same name are the normal idiom;
		// everything else aliases two meanings under one series.
		if labeled && prev.labeled {
			return
		}
		pass.Reportf(lit.Pos(),
			"metric %q is already registered at %s:%d: duplicate names alias two "+
				"meanings under one series (the registry would panic on a kind mismatch "+
				"and silently merge otherwise)", name, prev.pos.Filename, prev.pos.Line)
		return
	}
	seen[name] = obsSeen{pos: pass.Fset.Position(lit.Pos()), labeled: labeled}
}

// collectRef records one tsdb.Ref("...") site for End-time resolution,
// reporting immediately when the argument is not a literal (a computed
// reference can't be resolved at lint time, which defeats the marker's
// whole purpose).
func collectRef(pass *analysis.Pass, call *ast.CallExpr) {
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(call.Args[0].Pos(),
			"series name passed to tsdb.Ref must be a literal string "+
				"(Ref exists so the reference can be lint-resolved against registrations)")
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	refs, _ := pass.State.Get(obsRefsKey).([]obsRef)
	pass.State.Set(obsRefsKey, append(refs, obsRef{name: name, pos: lit.Pos()}))
}

// endObsnames resolves every collected tsdb.Ref against the module-wide
// registration set: a reference must name a registered metric (label
// selectors stripped), or the _count/_sum series derived from a
// registered histogram.
func endObsnames(pass *analysis.Pass) error {
	seen, _ := pass.State.Get(obsStateKey).(map[string]obsSeen)
	refs, _ := pass.State.Get(obsRefsKey).([]obsRef)
	for _, r := range refs {
		name := r.name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if _, ok := seen[name]; ok {
			continue
		}
		if base, ok := trimDerived(name); ok {
			if _, ok := seen[base]; ok {
				continue
			}
		}
		pass.Reportf(r.pos,
			"tsdb.Ref(%q) references a metric series nothing in the module registers "+
				"(a dashboard or sampler list naming an unregistered series renders "+
				"forever-empty panels; register the metric or fix the name)", r.name)
	}
	return nil
}

// trimDerived strips the histogram-derived _count/_sum suffix.
func trimDerived(name string) (string, bool) {
	for _, suffix := range []string{"_count", "_sum"} {
		if strings.HasSuffix(name, suffix) {
			return name[:len(name)-len(suffix)], true
		}
	}
	return name, false
}

// isTsdbRef reports whether sel resolves to the Ref function of
// progressdb/internal/obs/tsdb (robust to import aliasing).
func isTsdbRef(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Ref" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "progressdb/internal/obs/tsdb"
}

// isObsRegistry reports whether expr's static type is
// *progressdb/internal/obs.Registry (or the value form).
func isObsRegistry(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "progressdb/internal/obs"
}

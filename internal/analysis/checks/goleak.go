package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"progressdb/internal/analysis"
)

// Goleak is the static complement of the runtime leak checks: every
// goroutine launched in the engine, server, or fleet packages must
// observe a shutdown path. The serving layer's liveness story depends
// on it — a worker that never selects on its quit channel outlives
// Close, keeps the engine pinned, and turns every drain/restart test
// flaky.
//
// A launch passes if the launched function — or anything it reaches
// through the module-wide call graph, go-edges excluded — does one of:
//
//   - receive from a channel (quit/queue channels, <-ctx.Done());
//   - call ctx.Err() or ctx.Done() on a context.Context;
//   - call (*sync.WaitGroup).Done, i.e. the launcher joins it.
//
// Receiving from any channel counts: a receive is a rendezvous the
// launcher controls (close it, send to it), which is exactly the
// property a leaked goroutine lacks. Bounded helper goroutines that
// compute and exit without any rendezvous are rare in these packages
// and explicit enough to carry a //lint:ignore goleak <reason>.
var Goleak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every go statement in engine/server/fleet packages must reach " +
		"a shutdown observation (channel receive, ctx.Done/Err, or " +
		"WaitGroup.Done) through the call graph",
	Run: runGoleak,
	End: endGoleak,
}

const goleakStateKey = "goleak.state"

type goleakState struct {
	// observes: function keys whose bodies directly observe a shutdown
	// signal.
	observes map[string]bool
	// launches: go statements in scoped packages, resolved to the
	// launched function's key.
	launches []goLaunch
}

type goLaunch struct {
	key string
	pos token.Pos
}

func goleakStateOf(pass *analysis.Pass) *goleakState {
	if st, ok := pass.State.Get(goleakStateKey).(*goleakState); ok {
		return st
	}
	st := &goleakState{observes: make(map[string]bool)}
	pass.State.Set(goleakStateKey, st)
	return st
}

// isGoleakScope: the packages whose goroutines must be joinable — the
// engine set plus the serving layer. cmd/ binaries are out of scope:
// their accept-loop goroutines live for the process.
func isGoleakScope(path string) bool {
	return isEnginePackage(path) ||
		path == "progressdb/internal/server" ||
		strings.HasPrefix(path, "progressdb/internal/server/")
}

func runGoleak(pass *analysis.Pass) error {
	st := goleakStateOf(pass)

	// Trait collection runs over every package (a scoped goroutine may
	// call helpers anywhere in the module); launch collection only in
	// scope.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			collectObserves(pass, st, fd.Pos(), fd.Body)
		}
	}
	if !isGoleakScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			key := pass.Facts.CalleeKey(pass.TypesInfo, g.Call)
			st.launches = append(st.launches, goLaunch{key: key, pos: g.Pos()})
			return true
		})
	}
	return nil
}

// collectObserves marks fn (and, recursively, its literals under their
// own keys) if its body directly observes a shutdown signal.
func collectObserves(pass *analysis.Pass, st *goleakState, fnPos token.Pos, body *ast.BlockStmt) {
	key := pass.Facts.FuncKeyAt(fnPos)
	if key == "" {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			collectObserves(pass, st, n.Pos(), n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.observes[key] = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					st.observes[key] = true
				}
			}
		case *ast.CallExpr:
			switch pass.Facts.CalleeKey(pass.TypesInfo, n) {
			case "(*sync.WaitGroup).Done":
				st.observes[key] = true
			case "(context.Context).Done", "(context.Context).Err":
				st.observes[key] = true
			default:
				// Err/Done on a concrete context implementation.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") &&
					len(n.Args) == 0 && isContextValue(pass, sel.X) {
					st.observes[key] = true
				}
			}
		}
		return true
	})
}

func endGoleak(pass *analysis.Pass) error {
	st := goleakStateOf(pass)
	for _, l := range st.launches {
		if l.key == "" {
			// A `go value()` through a function variable: unresolvable,
			// left to the runtime leak checks.
			continue
		}
		if _, ok := pass.Facts.FindPath(l.key, func(k string) bool { return st.observes[k] }); ok {
			continue
		}
		pass.Reportf(l.pos,
			"goroutine %s observes no shutdown signal: select on a quit "+
				"channel or ctx.Done(), poll ctx.Err(), or join it with a "+
				"WaitGroup (//lint:ignore goleak <reason> if its lifetime is "+
				"provably bounded)", shortKey(l.key))
	}
	return nil
}

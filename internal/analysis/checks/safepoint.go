package checks

import (
	"go/ast"
	"go/types"

	"progressdb/internal/analysis"
)

// Safepoint guards the executor's cancellation latency bound. PR 2's
// contract is that a canceled query unwinds within a bounded amount of
// work because every unbounded tuple loop passes through a safe point —
// either directly (env.yield / env.checkCancel) or transitively, by
// pumping a child Iterator whose leaf scans yield. A drain loop that
// pumps a raw scanner or an unexported helper instead (e.g. an
// intermediate merge reading spilled runs) silently exempts itself from
// cancellation for its whole duration.
//
// The rule: inside progressdb/internal/exec, every condition-less
// `for {}` loop that performs per-tuple work — a no-arg .Next()/.next()
// pump or a Clock charge — must contain one of:
//
//   - a direct safe point: a call to yield, checkCancel, or Yield; or
//   - a transitively safe pump: a call to an *exported* method Next
//     with the Iterator shape `func() (T, bool, error)`. Exported
//     Iterator.Next is safe because the pull chain bottoms out at a
//     scan, and scans yield per tuple; unexported helpers and raw
//     storage scanners carry no such guarantee.
//
// Bounded loops (range loops, condition loops over in-memory state) are
// exempt: their work per entry is limited by what an enclosing safe
// loop handed them.
//
// The fleet coordinator carries a sibling invariant: every condition-less
// retry loop that re-executes a shard subquery (an Exec*Context call) must
// consult its context — ctx.Err() or ctx.Done() — between attempts.
// Without the poll, a canceled fleet query keeps replaying a faulting
// subquery until the retry budget runs out, and the cancellation latency
// bound the executor fought for is lost one layer up.
var Safepoint = &analysis.Analyzer{
	Name: "safepoint",
	Doc: "every unbounded tuple loop in internal/exec must reach a " +
		"cancellation safe point (env.yield/checkCancel) directly or by " +
		"pumping an exported Iterator.Next; every subquery retry loop in " +
		"internal/fleet must poll ctx.Err/ctx.Done between attempts",
	Run: runSafepoint,
}

func runSafepoint(pass *analysis.Pass) error {
	switch {
	case isExecPackage(pass.Path):
		return runExecSafepoint(pass)
	case isFleetPackage(pass.Path):
		return runFleetSafepoint(pass)
	}
	return nil
}

func runExecSafepoint(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			works, safe := scanLoopBody(pass, loop.Body)
			if works && !safe {
				pass.Reportf(loop.Pos(),
					"unbounded tuple loop without a cancellation safe point: "+
						"call env.yield()/checkCancel() in the loop, pump an exported "+
						"Iterator.Next, or suppress with //lint:ignore safepoint <reason>")
			}
			return true
		})
	}
	return nil
}

// runFleetSafepoint flags condition-less fleet retry loops that
// re-execute a shard subquery without polling their context.
func runFleetSafepoint(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			retries, polls := scanRetryLoopBody(pass, loop.Body)
			if retries && !polls {
				pass.Reportf(loop.Pos(),
					"fleet retry loop re-executes a subquery without a context "+
						"liveness check: poll ctx.Err() or ctx.Done() between attempts "+
						"so cancellation is not deferred past the retry budget, or "+
						"suppress with //lint:ignore safepoint <reason>")
			}
			return true
		})
	}
	return nil
}

// scanRetryLoopBody walks one loop body and reports whether it
// re-executes a shard subquery and whether it polls a context.Context.
func scanRetryLoopBody(pass *analysis.Pass, body *ast.BlockStmt) (retries, polls bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "ExecContext", "ExecDiscardContext":
			retries = true
		case "Err", "Done":
			if len(call.Args) == 0 && isContextValue(pass, sel.X) {
				polls = true
			}
		}
		return true
	})
	return retries, polls
}

// isContextValue reports whether expr is a context.Context.
func isContextValue(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// scanLoopBody walks one loop body and reports whether it performs
// per-tuple work and whether it reaches a safe point.
func scanLoopBody(pass *analysis.Pass, body *ast.BlockStmt) (works, safe bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch name {
		case "yield", "checkCancel", "Yield":
			safe = true
		case "ChargeCPU", "ChargeSeqIO", "ChargeRandIO", "Charge":
			works = true
		case "Next", "next":
			if len(call.Args) == 0 {
				works = true
				if name == "Next" && isIteratorShape(pass, call) {
					safe = true
				}
			}
		}
		return true
	})
	return works, safe
}

// isIteratorShape reports whether the called method has the executor's
// Iterator.Next signature: func() (T, bool, error).
func isIteratorShape(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if sig.Params().Len() != 0 || res.Len() != 3 {
		return false
	}
	if b, ok := res.At(1).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	return types.Identical(res.At(2).Type(), types.Universe.Lookup("error").Type())
}

// Shared-state audit fixtures: package-level mutables in an engine-core
// package. Only unguarded variables written outside init are errors;
// everything lands in the -sharedstate inventory.
package fixture

import (
	"sync"
	"sync/atomic"
)

var cache = map[string]int{} // want `unguarded mutable package-level variable cache`

func remember(k string, v int) {
	cache[k] = v
}

var registry []string // want `unguarded mutable package-level variable registry`

func register(name string) {
	registry = append(registry, name)
}

// defaults is only ever read: init-only state passes.
var defaults = map[string]int{"a": 1}

func lookup(k string) int { return defaults[k] }

// once is sync-guarded by type.
var once sync.Once

func doOnce(f func()) { once.Do(f) }

// hits is written after init but atomically.
var hits atomic.Int64

func hit() { hits.Add(1) }

// initialized is only written during package initialization.
var initialized bool

func init() {
	initialized = true
}

// table/cursor exist for the struct inventory: table is guarded,
// cursor is per-worker state with no guard (reported, not flagged).
type table struct {
	mu   sync.Mutex
	rows []int
}

type cursor struct {
	pos int
}

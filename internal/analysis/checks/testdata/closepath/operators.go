// Fixture for the closepath analyzer, type-checked under the assumed
// import path progressdb/internal/exec. It models the operator unwind
// protocol: every receiver field opened in Open must be closed in
// Close, and spill files must come from Env.newTempFile rather than
// storage.CreateTempHeapFile / CreateHeapFile directly.
package fixture

import "progressdb/internal/storage"

type child struct{}

func (child) Open() error  { return nil }
func (child) Close() error { return nil }

// goodOp closes everything it opens, including a nested field.
type goodOp struct {
	left  child
	right child
	inner struct{ src child }
}

func (o *goodOp) Open() error {
	if err := o.left.Open(); err != nil {
		return err
	}
	if err := o.inner.src.Open(); err != nil {
		return err
	}
	return o.right.Open()
}

func (o *goodOp) Close() error {
	if err := o.left.Close(); err != nil {
		return err
	}
	if err := o.inner.src.Close(); err != nil {
		return err
	}
	return o.right.Close()
}

// leakyOp opens two children but only closes one: a failed Open above
// it unwinds through Close, which would leak the probe child.
type leakyOp struct {
	build child
	probe child
}

func (o *leakyOp) Open() error {
	if err := o.build.Open(); err != nil {
		return err
	}
	return o.probe.Open() // want `leakyOp\.Open opens probe but leakyOp\.Close never closes it`
}

func (o *leakyOp) Close() error {
	return o.build.Close()
}

// noCloseOp has no Close method at all.
type noCloseOp struct {
	src child
}

func (o *noCloseOp) Open() error {
	return o.src.Open() // want `noCloseOp\.Open opens src but noCloseOp\.Close never closes it`
}

// suppressedOp documents why its child needs no unwind.
type suppressedOp struct {
	src child
}

func (o *suppressedOp) Open() error {
	//lint:ignore closepath fixture: child is borrowed, owner closes it
	return o.src.Open()
}

// tempFiles exercises the provenance rule.
func tempFiles(pool *storage.BufferPool) {
	_ = storage.CreateTempHeapFile(pool) // want `direct storage\.CreateTempHeapFile in internal/exec`
	//lint:ignore closepath fixture: base-relation file, not a query spill
	_ = storage.CreateHeapFile(pool)
}

// Fixture for the obsnames analyzer's tsdb.Ref resolution: every
// Ref-marked series name must resolve to a registration somewhere in
// the analyzed set (here: metrics.go's registrations), directly or as a
// histogram's derived _count/_sum series. Unresolvable references are
// reported at the End hook — note the valid forward reference below to
// a metric registered in the *other* fixture file.
package fixture

import "progressdb/internal/obs/tsdb"

func dashboardLists(dynamic string) []string {
	return []string{
		// Registered directly in metrics.go.
		tsdb.Ref("storage_io_retries_total"),
		tsdb.Ref("server_queue_depth"),
		// Labeled family: the label selector is stripped before lookup.
		tsdb.Ref(`exec_rows_out_total{op="scan"}`),
		// The heatmap's per-shard selector resolves the same way.
		tsdb.Ref(`fleet_shard_percent{shard="0"}`),
		// Resilience series: shed-reason and breaker-state selectors
		// resolve against their labeled family registrations.
		tsdb.Ref(`server_shed_total{reason="budget"}`),
		tsdb.Ref(`fleet_shard_breaker_state{shard="0"}`),
		tsdb.Ref("fleet_retries_total"),
		// Histogram-derived series resolve via their base registration.
		tsdb.Ref("progress_refresh_u_count"),
		tsdb.Ref("progress_refresh_u_sum"),

		tsdb.Ref(dynamic),                     // want `must be a literal string`
		tsdb.Ref("storage_io_reties_total"),   // want `nothing in the module registers`
		tsdb.Ref("progress_refresh_u_counts"), // want `nothing in the module registers`
	}
}

// Fixture for the obsnames analyzer. The assumed import path is
// arbitrary (the rule applies module-wide); what matters is that the
// registrations target *progressdb/internal/obs.Registry.
package fixture

import "progressdb/internal/obs"

func register(reg *obs.Registry, dynamic string) {
	// Well-formed names.
	reg.Counter("storage_io_retries_total", "retried page accesses")
	reg.Gauge("server_queue_depth", "waiting queries")
	reg.Histogram("progress_refresh_u", "estimate at refresh", []float64{1, 10})
	reg.LabeledCounter("exec_rows_out_total", "op", "scan", "rows by operator")
	// Labeled families may be registered from several sites.
	reg.LabeledCounter("exec_rows_out_total", "op", "sort", "rows by operator")
	// Coordinator metrics: the fleet subsystem covers both plain
	// counters and the per-shard labeled gauges behind the heatmap.
	reg.Counter("fleet_subqueries_total", "per-shard subqueries launched")
	reg.LabeledGauge("fleet_shard_percent", "shard", "0", "per-shard progress")
	reg.LabeledGauge("fleet_shard_percent", "shard", "1", "per-shard progress")
	// Resilience metrics: shed reasons are a labeled counter family,
	// breaker state a per-shard labeled gauge, retries a plain counter.
	reg.LabeledCounter("server_shed_total", "reason", "budget", "sheds by reason")
	reg.LabeledCounter("server_shed_total", "reason", "draining", "sheds by reason")
	reg.LabeledGauge("fleet_shard_breaker_state", "shard", "0", "0 closed, 1 open, 2 half-open")
	reg.Counter("fleet_retries_total", "subquery retries across shards")

	reg.Counter(dynamic, "computed name")                   // want `must be a literal string`
	reg.Counter("storageIoRetries", "camel case")           // want `not snake_case`
	reg.Counter("exec_", "dangling underscore")             // want `not snake_case`
	reg.Counter("query_wall_seconds", "bad subsystem")      // want `unknown subsystem prefix "query"`
	reg.Gauge("server_queue_depth", "duplicate meaning")    // want `already registered at`
	reg.Counter("exec_rows_out_total", "labeled collision") // want `already registered at`

	//lint:ignore obsnames fixture: legacy dashboard series kept during migration
	reg.Counter("legacy_scan_rate", "grandfathered name")
}

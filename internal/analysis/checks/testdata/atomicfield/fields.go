// Mixed atomic/plain access fixtures. Field identity is module-wide
// ("pkg.Type.field"), so one sync/atomic access anywhere poisons plain
// access everywhere.
package fixture

import "sync/atomic"

type stats struct {
	hits  int64
	total atomic.Int64
	plain int
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	s.total.Add(1)
}

func (s *stats) readHits() int64 {
	return s.hits // want `plain read of field obs\.stats\.hits, which is accessed via sync/atomic elsewhere`
}

func (s *stats) reset() {
	s.hits = 0 // want `plain write of field obs\.stats\.hits`
}

func (s *stats) snapshotTotal() int64 {
	t := s.total // want `read of atomic field obs\.stats\.total copies/overwrites the atomic value`
	return t.Load()
}

// okTotal uses the atomic API on the atomic-typed field.
func (s *stats) okTotal() int64 {
	return s.total.Load()
}

// okPlain: a field never touched atomically may be accessed plainly.
func (s *stats) okPlain() {
	s.plain++
}

// totalOf: taking the address of an atomic.T is how the value is shared
// without copying, and passes.
func totalOf(s *stats) *atomic.Int64 {
	return &s.total
}

var refreshes int64

func tick() {
	atomic.AddInt64(&refreshes, 1)
}

func lastRefreshes() int64 {
	return refreshes // want `plain read of package variable obs\.refreshes`
}

// Fixture for the safepoint analyzer, type-checked under the assumed
// import path progressdb/internal/exec. It models the executor's loop
// shapes: drain loops pumping exported Iterator.Next are transitively
// safe, loops with a direct yield/checkCancel are safe, and unbounded
// loops pumping raw scanners or unexported helpers must be flagged.
package fixture

type row []byte

// iter has the executor Iterator shape: Next() (T, bool, error).
type iter struct{}

func (iter) Next() (row, bool, error) { return nil, false, nil }

// scanner mimics storage.Scanner: exported Next without the Iterator
// shape (no trailing error result), so pumping it is not a safe point.
type scanner struct{}

func (scanner) Next() (row, int, bool) { return nil, 0, false }

// merger mimics an unexported spill-merge helper: Iterator-shaped
// results but unexported, so no transitive safety guarantee.
type merger struct{}

func (merger) next() (row, bool, error) { return nil, false, nil }

type env struct{}

func (env) yield() error       { return nil }
func (env) checkCancel() error { return nil }

type clock struct{}

func (clock) ChargeCPU(n float64) {}

func drainChild(it iter) error {
	for { // exported Iterator.Next pump: transitively safe
		_, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func scanWithYield(sc scanner, e env) error {
	for { // raw scanner pump with a direct safe point: fine
		_, _, ok := sc.Next()
		if !ok {
			return nil
		}
		if err := e.yield(); err != nil {
			return err
		}
	}
}

func scanWithoutYield(sc scanner, c clock) {
	for { // want `unbounded tuple loop without a cancellation safe point`
		_, _, ok := sc.Next()
		if !ok {
			return
		}
		c.ChargeCPU(1)
	}
}

func mergeWithoutYield(m merger) error {
	for { // want `unbounded tuple loop without a cancellation safe point`
		_, ok, err := m.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

func mergeWithCheckCancel(m merger, e env) error {
	for { // unexported pump but direct ctx poll: fine
		_, ok, err := m.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := e.checkCancel(); err != nil {
			return err
		}
	}
}

func boundedLoop(rows []row, c clock) {
	// Bounded loops (condition or range) are exempt: their per-entry
	// work is limited by what an enclosing safe loop handed them.
	for i := 0; i < len(rows); i++ {
		c.ChargeCPU(1)
	}
	for range rows {
		c.ChargeCPU(1)
	}
}

func suppressedScan(sc scanner, c clock) {
	//lint:ignore safepoint fixture: bounded by construction, checked by caller
	for {
		_, _, ok := sc.Next()
		if !ok {
			return
		}
		c.ChargeCPU(1)
	}
}

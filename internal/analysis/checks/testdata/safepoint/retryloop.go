// Fixture for the safepoint analyzer's fleet rule: condition-less retry
// loops that re-execute a shard subquery (Exec*Context) must poll their
// context between attempts — ctx.Err() or ctx.Done() — so cancellation
// is not deferred past the retry budget. Checked under the assumed path
// progressdb/internal/fleet.
package fixture

import (
	"context"
	"errors"
)

type shardDB struct{}

func (shardDB) ExecContext(ctx context.Context, sql string) (int, error)        { return 0, nil }
func (shardDB) ExecDiscardContext(ctx context.Context, sql string) (int, error) { return 0, nil }
func (shardDB) Idle(seconds float64)                                            {}

var errTransient = errors.New("transient io fault")

// goodRetry is the coordinator's shape: the exit test polls ctx.Err()
// every attempt, so a canceled query stops retrying immediately.
func goodRetry(ctx context.Context, db shardDB, sql string) (int, error) {
	backoff := 0.01
	for attempt := 1; ; attempt++ {
		n, err := db.ExecContext(ctx, sql)
		if err == nil {
			return n, nil
		}
		if attempt > 2 || !errors.Is(err, errTransient) || ctx.Err() != nil {
			return 0, err
		}
		db.Idle(backoff)
		backoff *= 2
	}
}

// goodDone drains the Done channel instead of calling Err; also safe.
func goodDone(ctx context.Context, db shardDB, sql string) error {
	for {
		if _, err := db.ExecDiscardContext(ctx, sql); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
}

// badRetry never consults the context: a canceled query keeps replaying
// the faulting subquery until the transient classification changes.
func badRetry(ctx context.Context, db shardDB, sql string) (int, error) {
	for { // want `fleet retry loop re-executes a subquery without a context liveness check`
		n, err := db.ExecContext(ctx, sql)
		if err == nil {
			return n, nil
		}
		if !errors.Is(err, errTransient) {
			return 0, err
		}
		db.Idle(0.01)
	}
}

// notErrOnContext calls an Err() that is not context.Context's — the
// type check must not mistake it for a liveness poll.
type fakeCtx struct{}

func (fakeCtx) Err() error { return nil }

func badFakePoll(ctx context.Context, fc fakeCtx, db shardDB, sql string) error {
	for { // want `fleet retry loop re-executes a subquery without a context liveness check`
		if _, err := db.ExecContext(ctx, sql); err == nil {
			return nil
		}
		if fc.Err() != nil {
			return nil
		}
	}
}

// boundedRetry has a loop condition: per the exec rule, bounded loops
// are out of scope — the budget itself bounds the deferred cancellation.
func boundedRetry(ctx context.Context, db shardDB, sql string) {
	for i := 0; i < 3; i++ {
		db.ExecContext(ctx, sql)
	}
}

// mergeLoop performs no subquery execution; condition-less loops over
// in-memory merge state are not retry loops.
func mergeLoop(rows []int) int {
	total, i := 0, 0
	for {
		if i >= len(rows) {
			return total
		}
		total += rows[i]
		i++
	}
}

// Fixture for the vclocktime analyzer, type-checked under the assumed
// import path progressdb/internal/storage (an engine package). Each
// trailing "want" comment is a diagnostic the analyzer must produce;
// the fixture fails the test if the analyzer misses one or adds one.
package fixture

import (
	"time"
)

// retryDelay is allowed: pure duration arithmetic reads no clocks.
const retryDelay = 50 * time.Millisecond

func forbiddenCalls() time.Duration {
	start := time.Now()            // want `time\.Now in engine package .*internal/vclock`
	time.Sleep(retryDelay)         // want `time\.Sleep in engine package`
	elapsed := time.Since(start)   // want `time\.Since in engine package`
	<-time.After(retryDelay)       // want `time\.After in engine package`
	t := time.NewTimer(retryDelay) // want `time\.NewTimer in engine package`
	defer t.Stop()
	return elapsed
}

func allowedUses() time.Duration {
	// Constructing and formatting durations/instants is fine; only
	// observing or consuming wall-clock time is forbidden.
	d := 3 * time.Second
	epoch := time.Unix(0, 0)
	_ = epoch.String()
	return d
}

func suppressed() {
	//lint:ignore vclocktime fixture: demonstrating a sanctioned wall-clock read
	_ = time.Now()
}

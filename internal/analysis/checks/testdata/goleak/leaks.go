// Goroutine shutdown-observation fixtures: every launch in a scoped
// package must reach a channel receive, a ctx.Done/Err observation, or
// a WaitGroup.Done through the call graph.
package fixture

import (
	"context"
	"sync"
)

type srv struct {
	quit chan struct{}
	work chan int
	n    int
}

func (s *srv) step() { s.n++ }

// okSelect: the worker selects on its quit channel.
func (s *srv) okSelect() {
	go func() {
		for {
			select {
			case w := <-s.work:
				_ = w
			case <-s.quit:
				return
			}
		}
	}()
}

// okRange: ranging over a channel ends when the launcher closes it.
func (s *srv) okRange() {
	go func() {
		for w := range s.work {
			_ = w
		}
	}()
}

func poll(ctx context.Context) bool { return ctx.Err() == nil }

func (s *srv) loop(ctx context.Context) {
	for poll(ctx) {
		s.step()
	}
}

// okCtxTransitive: the shutdown observation sits two calls deep.
func (s *srv) okCtxTransitive(ctx context.Context) {
	go s.loop(ctx)
}

// okWait: the launcher joins the goroutine with a WaitGroup.
func (s *srv) okWait(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		s.step()
	}()
}

// leak: loops forever with no rendezvous the launcher could use.
func (s *srv) leak() {
	go func() { // want `observes no shutdown signal`
		for {
			s.step()
		}
	}()
}

func (s *srv) spin() {
	for {
		s.step()
	}
}

// leakNamed: the leak is a named method, resolved through the graph.
func (s *srv) leakNamed() {
	go s.spin() // want `observes no shutdown signal`
}

// launchDyn: launches through function values are unresolvable and left
// to the runtime leak checks.
func launchDyn(fn func()) {
	go fn()
}

// Fixture for the errwrap analyzer: fmt.Errorf over an error value
// must use %w, and panic is forbidden outside sanctioned sites.
package fixture

import (
	"errors"
	"fmt"
	"strconv"
)

var errSentinel = errors.New("sentinel")

func wrapping(name string) error {
	n, err := strconv.Atoi(name)
	if err != nil {
		return fmt.Errorf("fixture: parsing %q: %v", name, err) // want `error formatted with %v instead of %w`
	}
	if n < 0 {
		return fmt.Errorf("fixture: %s: %w", name, errSentinel) // correct wrap
	}
	if n == 0 {
		return fmt.Errorf("fixture: got %s", errSentinel) // want `error formatted with %s instead of %w`
	}
	// Non-error arguments take any verb.
	return fmt.Errorf("fixture: n=%d width=%*d", n, 8, n)
}

type fault struct{ op string }

func (f *fault) Error() string { return "fault: " + f.op }

func typedError(f *fault) error {
	// Concrete error types flatten just as badly as interface values.
	return fmt.Errorf("fixture: io failed: %v", f) // want `error formatted with %v instead of %w`
}

func panics(ok bool) {
	if !ok {
		panic("invariant violated") // want `panic outside a sanctioned containment site`
	}
	//lint:ignore errwrap fixture: sanctioned containment site, recovered at the boundary
	panic("sanctioned")
}

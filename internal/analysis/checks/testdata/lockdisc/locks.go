// The lockdisc release-on-all-paths and no-blocking-under-lock rules.
// Lock identity in the diagnostics is the receiver's final field
// ("<pkg>.counter.mu" here).
package fixture

import (
	"errors"
	"os"
	"sync"
	"time"
)

var errFixture = errors.New("fixture")

type counter struct {
	mu sync.Mutex
	n  int
}

// ok: the canonical defer pattern.
func (c *counter) ok() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// okExplicit: closepath-style explicit unwinding — the error branch
// unlocks before returning, the fall-through path unlocks at the end.
func (c *counter) okExplicit(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errFixture
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// missingOnError leaks the lock on the error path.
func (c *counter) missingOnError(fail bool) error {
	c.mu.Lock()
	if fail {
		return errFixture // want `return inside .*counter\.mu critical section without Unlock`
	}
	c.mu.Unlock()
	return nil
}

// fallThrough never releases at all.
func (c *counter) fallThrough() {
	c.mu.Lock() // want `counter\.mu is locked but never released on the fall-through path`
	c.n++
}

// sleepUnderLock blocks directly in the critical section.
func (c *counter) sleepUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking time\.Sleep while .*counter\.mu is held`
}

// writeUnderLock does storage I/O in the critical section.
func (c *counter) writeUnderLock(f *os.File) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f.Sync() // want `blocking os\.File I/O \(Sync\) while .*counter\.mu is held`
}

func persist(f *os.File) error { return f.Sync() }

func save(f *os.File) error { return persist(f) }

// transitiveBlock reaches the I/O through one call.
func (c *counter) transitiveBlock(f *os.File) {
	c.mu.Lock()
	defer c.mu.Unlock()
	persist(f) // want `counter\.mu is held across a call to .*persist, which transitively blocks`
}

// transitiveBlockDeep reaches it through two calls.
func (c *counter) transitiveBlockDeep(f *os.File) {
	c.mu.Lock()
	defer c.mu.Unlock()
	save(f) // want `counter\.mu is held across a call to .*save, which transitively blocks`
}

// chanUnderLock / recvUnderLock / selectUnderLock: channel rendezvous
// in the critical section.
func (c *counter) chanUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- 1 // want `blocking channel send while .*counter\.mu is held`
}

func (c *counter) recvUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	<-ch // want `blocking channel receive while .*counter\.mu is held`
}

func (c *counter) selectUnderLock(ch chan int, quit chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `blocking select without default while .*counter\.mu is held`
	case ch <- 1:
	case <-quit:
	}
}

// nonBlockingSelect: a select with default is a non-blocking attempt
// and passes.
func (c *counter) nonBlockingSelect(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// dynamicUnderLock: calls through bare function values may block and
// cannot be seen through.
func (c *counter) dynamicUnderLock(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn() // want `call through function value fn while .*counter\.mu is held may block`
}

// notifier: a func-typed field is as dynamic as a bare function value.
type notifier struct {
	mu      sync.Mutex
	onEvent func(int)
	n       int
}

func (nf *notifier) fire() {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	nf.onEvent(nf.n) // want `call through function value nf\.onEvent while .*notifier\.mu is held may block`
}

func invoke(fn func()) { fn() }

// transitiveDynamic: the opaque callback invocation hides one call away
// — the shape of the fleet aggregator bug this analyzer caught.
func (c *counter) transitiveDynamic(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	invoke(fn) // want `counter\.mu is held across a call to .*invoke, which calls through the function value fn`
}

func (c *counter) waitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `blocking sync\.WaitGroup\.Wait while .*counter\.mu is held`
}

// goUnderLock: a goroutine launched in the critical section does not
// inherit the lock; its blocking body is not a finding here.
func (c *counter) goUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() { <-ch }()
	c.n++
}

// coarse opts its lock out of the blocking rule: deliberate whole-region
// serialization, like the fleet's per-shard lock.
type coarse struct {
	//lint:lockcoarse the fixture's lock serializes slow work on purpose
	mu sync.Mutex
}

func (c *coarse) slow(f *os.File) {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond)
	persist(f)
}

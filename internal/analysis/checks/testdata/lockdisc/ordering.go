// Lock-ordering rules: declared hierarchies, inversions, cycles seen
// through the call graph, self-deadlocks, and directive hygiene.
package fixture

import "sync"

//lint:lockorder pair.a < pair.b

type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// good acquires in the declared order.
func (p *pair) good() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// bad inverts it.
func (p *pair) bad() {
	p.b.Lock()
	p.a.Lock() // want `acquiring .*pair\.a while holding .*pair\.b violates the declared order`
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// duo's locks have no declared order; taking them in both orders — one
// of the nested acquisitions hiding behind a call — is a cycle.
type duo struct {
	x sync.Mutex
	y sync.Mutex
}

func (d *duo) lockY() {
	d.y.Lock()
	d.y.Unlock()
}

func (d *duo) xThenY() {
	d.x.Lock()
	d.lockY()
	d.x.Unlock()
}

func (d *duo) yThenX() {
	d.y.Lock()
	d.x.Lock() // want `lock-order cycle \(deadlock risk\)`
	d.x.Unlock()
	d.y.Unlock()
}

// relock re-acquires a lock the function already holds.
func (d *duo) relock() {
	d.x.Lock()
	d.x.Lock() // want `acquired while already held \(self-deadlock\)`
	d.x.Unlock()
	d.x.Unlock()
}

// badcoarse: the lockcoarse directive must carry a reason and sit on a
// mutex field.
type badcoarse struct {
	//lint:lockcoarse
	mu sync.Mutex // want `lint:lockcoarse needs a reason`
	//lint:lockcoarse the counter is not a lock
	n int // want `lint:lockcoarse on a non-mutex field has no effect`
}

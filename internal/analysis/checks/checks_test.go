package checks

import (
	"strings"
	"testing"

	"progressdb/internal/analysis"
)

// Each fixture both proves the analyzer fires (a missed want fails the
// test, so the fixture fails without the analyzer) and pins down what
// it must NOT flag (any extra diagnostic fails the test too).

func TestVclockTimeFixture(t *testing.T) {
	analysis.RunFixture(t, VclockTime,
		"progressdb/internal/storage",
		"testdata/vclocktime/engine.go")
}

// TestVclockTimeOutsideEngine re-checks the same wall-clock-using
// source under a non-engine path: the server's wall timings are
// legitimate, so nothing may be reported.
func TestVclockTimeOutsideEngine(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{VclockTime},
		"progressdb/internal/server", "server_fixture.go", `
package fixture

import "time"

func wallLatency() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
`)
}

func TestSafepointFixture(t *testing.T) {
	analysis.RunFixture(t, Safepoint,
		"progressdb/internal/exec",
		"testdata/safepoint/loops.go")
}

// TestSafepointOutsideExec: the same unsafe loop shape in another
// package is out of scope (only the executor carries the invariant),
// so a loop that would be flagged in internal/exec reports nothing.
func TestSafepointOutsideExec(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{Safepoint},
		"progressdb/internal/btree", "btree_fixture.go", `
package fixture

type scanner struct{}

func (scanner) Next() ([]byte, int, bool) { return nil, 0, false }

type clock struct{}

func (clock) ChargeCPU(n float64) {}

func drain(sc scanner, c clock) {
	for {
		_, _, ok := sc.Next()
		if !ok {
			return
		}
		c.ChargeCPU(1)
	}
}
`)
}

// TestSafepointFleetFixture exercises the fleet rule: condition-less
// retry loops re-executing a shard subquery must poll ctx between
// attempts.
func TestSafepointFleetFixture(t *testing.T) {
	analysis.RunFixture(t, Safepoint,
		"progressdb/internal/fleet",
		"testdata/safepoint/retryloop.go")
}

// TestSafepointFleetRuleScoped: the same unpolled retry loop outside
// internal/fleet is out of scope and reports nothing.
func TestSafepointFleetRuleScoped(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{Safepoint},
		"progressdb/internal/harness", "harness_fixture.go", `
package fixture

import "context"

type db struct{}

func (db) ExecContext(ctx context.Context, sql string) (int, error) { return 0, nil }

func hammer(ctx context.Context, d db, sql string) {
	for {
		if _, err := d.ExecContext(ctx, sql); err == nil {
			return
		}
	}
}
`)
}

func TestClosepathFixture(t *testing.T) {
	analysis.RunFixture(t, Closepath,
		"progressdb/internal/exec",
		"testdata/closepath/operators.go")
}

func TestObsnamesFixture(t *testing.T) {
	analysis.RunFixture(t, Obsnames,
		"progressdb/internal/server",
		"testdata/obsnames/metrics.go",
		"testdata/obsnames/refs.go")
}

// TestObsnamesCrossPackageRef proves Ref resolution spans packages in
// either direction: a reference in a sorted-earlier package resolves
// against a registration in a sorted-later one (the End hook runs after
// every package), and an unresolvable reference is reported.
func TestObsnamesCrossPackageRef(t *testing.T) {
	m, err := analysis.FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg1, err := m.CheckSource("progressdb/internal/aaa", "aaa_ref_fixture.go", `
package aaa

import "progressdb/internal/obs/tsdb"

var dash = []string{
	tsdb.Ref("exec_fixture_fwd_total"), // registered later in visit order
	tsdb.Ref("exec_fixture_missing_total"),
}
`)
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := m.CheckSource("progressdb/internal/bbb", "bbb_ref_fixture.go", `
package bbb

import "progressdb/internal/obs"

func wire(reg *obs.Registry) {
	reg.Counter("exec_fixture_fwd_total", "registered after the reference")
}
`)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(m.Fset, []*analysis.Package{pkg1, pkg2}, []*analysis.Analyzer{Obsnames})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, `"exec_fixture_missing_total"`) {
		t.Errorf("diagnostic %q should name the unresolved reference", d.Message)
	}
	if d.Pos.Filename != "aaa_ref_fixture.go" {
		t.Errorf("reported at %s, want the Ref site aaa_ref_fixture.go", d.Pos.Filename)
	}
}

// TestObsnamesCrossPackageDuplicate proves duplicate detection spans
// packages: the same unlabeled name registered in two packages of one
// run is flagged at the second site.
func TestObsnamesCrossPackageDuplicate(t *testing.T) {
	m, err := analysis.FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg1, err := m.CheckSource("progressdb/internal/aaa", "aaa_fixture.go", `
package aaa

import "progressdb/internal/obs"

func wire(reg *obs.Registry) {
	reg.Counter("exec_fixture_dup_total", "first site")
}
`)
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := m.CheckSource("progressdb/internal/bbb", "bbb_fixture.go", `
package bbb

import "progressdb/internal/obs"

func wire(reg *obs.Registry) {
	reg.Counter("exec_fixture_dup_total", "second site") // duplicate
}
`)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(m.Fset, []*analysis.Package{pkg1, pkg2}, []*analysis.Analyzer{Obsnames})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Filename != "bbb_fixture.go" {
		t.Errorf("duplicate reported at %s, want the second (sorted-later) site bbb_fixture.go", d.Pos.Filename)
	}
	if want := "already registered at aaa_fixture.go"; !strings.Contains(d.Message, want) {
		t.Errorf("message %q does not mention %q", d.Message, want)
	}
}

func TestErrwrapFixture(t *testing.T) {
	analysis.RunFixture(t, Errwrap,
		"progressdb/internal/faultinject",
		"testdata/errwrap/wrap.go")
}

// TestErrwrapMainExempt: package main may fail fast with panic.
func TestErrwrapMainExempt(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{Errwrap},
		"progressdb/examples/fixture", "main_fixture.go", `
package main

func run(err error) {
	if err != nil {
		panic(err)
	}
}
`)
}

func TestLockdiscFixture(t *testing.T) {
	analysis.RunFixture(t, Lockdisc,
		"progressdb/internal/server",
		"testdata/lockdisc/locks.go")
}

func TestLockdiscOrderingFixture(t *testing.T) {
	analysis.RunFixture(t, Lockdisc,
		"progressdb/internal/server",
		"testdata/lockdisc/ordering.go")
}

// TestLockdiscDirectiveErrors: a lockorder directive without the
// `A < B` shape is itself a finding.
func TestLockdiscDirectiveErrors(t *testing.T) {
	m, err := analysis.FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.CheckSource("progressdb/internal/server", "order_directive_fixture.go", `
package fixture

//lint:lockorder job.mu subscriber.mu
`)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(m.Fset, []*analysis.Package{pkg}, []*analysis.Analyzer{Lockdisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed lock-order directive") {
		t.Fatalf("got %v, want one malformed-directive diagnostic", diags)
	}
}

func TestAtomicfieldFixture(t *testing.T) {
	analysis.RunFixture(t, Atomicfield,
		"progressdb/internal/obs",
		"testdata/atomicfield/fields.go")
}

func TestSharedstateFixture(t *testing.T) {
	analysis.RunFixture(t, Sharedstate,
		"progressdb/internal/core",
		"testdata/sharedstate/vars.go")
}

// TestSharedstateOutsideScope: the same mutable singletons outside the
// engine-core packages are out of scope.
func TestSharedstateOutsideScope(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{Sharedstate},
		"progressdb/internal/harness", "harness_state_fixture.go", `
package fixture

var cache = map[string]int{}

func remember(k string, v int) { cache[k] = v }
`)
}

// TestSharedstateReportInventory pins the machine-readable inventory a
// run leaves in the shared State: guards classified, written-outside-init
// detected, structs sorted into guarded and unguarded.
func TestSharedstateReportInventory(t *testing.T) {
	m, err := analysis.FixtureModule()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := m.CheckFiles("progressdb/internal/core", "testdata/sharedstate/vars.go")
	if err != nil {
		t.Fatal(err)
	}
	_, state, err := analysis.RunWithState(m.Fset, []*analysis.Package{pkg}, []*analysis.Analyzer{Sharedstate})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := SharedStateReport(state)
	if !ok {
		t.Fatal("no sharedstate report in the run state")
	}
	vars := make(map[string]VarSite)
	for _, v := range rep.PackageVars {
		vars[v.Name] = v
	}
	for name, want := range map[string]struct {
		guard   string
		written bool
	}{
		"cache":       {"none", true},
		"registry":    {"none", true},
		"defaults":    {"none", false},
		"once":        {"sync", false},
		"hits":        {"atomic", true},
		"initialized": {"none", false},
	} {
		v, ok := vars[name]
		if !ok {
			t.Errorf("package var %s missing from inventory", name)
			continue
		}
		if v.Guard != want.guard || v.WrittenOutsideInit != want.written {
			t.Errorf("%s: guard=%q written=%v, want guard=%q written=%v",
				name, v.Guard, v.WrittenOutsideInit, want.guard, want.written)
		}
	}
	structs := make(map[string]StructSite)
	for _, s := range rep.Structs {
		structs[s.Type] = s
	}
	if s, ok := structs["table"]; !ok || s.Unguarded || len(s.Guards) != 1 {
		t.Errorf("table inventoried as %+v, want guarded struct with one mutex", s)
	}
	if s, ok := structs["cursor"]; !ok || !s.Unguarded {
		t.Errorf("cursor inventoried as %+v, want unguarded struct", s)
	}
}

func TestGoleakFixture(t *testing.T) {
	analysis.RunFixture(t, Goleak,
		"progressdb/internal/server",
		"testdata/goleak/leaks.go")
}

// TestGoleakOutsideScope: goroutines outside engine/server/fleet (the
// harness's measurement helpers, cmd binaries) are not checked.
func TestGoleakOutsideScope(t *testing.T) {
	analysis.RunSource(t, []*analysis.Analyzer{Goleak},
		"progressdb/internal/harness", "harness_goroutine_fixture.go", `
package fixture

type job struct{ n int }

func (j *job) spin() {
	for {
		j.n++
	}
}

func (j *job) launch() {
	go j.spin()
}
`)
}

// TestAllCleanOnFixturelessSource is a smoke check that the full suite
// coexists on one innocuous package.
func TestAllCleanOnFixturelessSource(t *testing.T) {
	analysis.RunSource(t, All(),
		"progressdb/internal/plan", "plan_fixture.go", `
package fixture

import "fmt"

func describe(n int) (string, error) {
	if n < 0 {
		return "", fmt.Errorf("fixture: negative %d", n)
	}
	return fmt.Sprintf("n=%d", n), nil
}
`)
}

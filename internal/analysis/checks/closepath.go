package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"progressdb/internal/analysis"
)

// Closepath guards the executor's leak-freedom contract (PR 3). The
// engine's unwind protocol is: exec.Run guarantees it.Close() on every
// failed Open, each operator's Close must release whatever its Open
// acquired (tracked with open/closed flags), and every spill file is
// allocated through Env.newTempFile so ReclaimTemps can sweep what a
// panic bypassed. Two mechanically checkable consequences:
//
//  1. Child pairing: if an operator's Open method opens a child held in
//     a receiver field (recv.f.Open()), its Close method must close the
//     same field (recv.f.Close()). An operator that forgets leaks the
//     child's resources on every early-error unwind.
//  2. Temp-file provenance: inside internal/exec, spill files must be
//     created via (*Env).newTempFile, never storage.CreateTempHeapFile
//     or storage.CreateHeapFile directly — a direct allocation is
//     invisible to ReclaimTemps and survives a recovered panic.
var Closepath = &analysis.Analyzer{
	Name: "closepath",
	Doc: "operators' Close must unwind what Open acquired: every child " +
		"opened through a receiver field must be closed in Close, and " +
		"temp files must come from Env.newTempFile so ReclaimTemps can " +
		"guarantee cleanup",
	Run: runClosepath,
}

func runClosepath(pass *analysis.Pass) error {
	if !isExecPackage(pass.Path) {
		return nil
	}
	type openCall struct {
		path string
		pos  ast.Node
	}
	opened := map[string][]openCall{} // receiver type -> fields opened in Open
	closed := map[string]map[string]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Temp-file provenance applies to every function body,
			// method or not.
			checkTempProvenance(pass, fn)

			if fn.Recv == nil {
				continue
			}
			recvType, recvName := receiverInfo(fn)
			if recvType == "" || recvName == "" {
				continue
			}
			switch fn.Name.Name {
			case "Open":
				for _, c := range receiverMethodCalls(fn.Body, recvName, "Open") {
					opened[recvType] = append(opened[recvType], openCall{path: c.path, pos: c.node})
				}
			case "Close":
				set := closed[recvType]
				if set == nil {
					set = map[string]bool{}
					closed[recvType] = set
				}
				for _, c := range receiverMethodCalls(fn.Body, recvName, "Close") {
					set[c.path] = true
				}
			}
		}
	}

	for recvType, calls := range opened {
		for _, c := range calls {
			if !closed[recvType][c.path] {
				pass.Reportf(c.pos.Pos(),
					"%s.Open opens %s but %s.Close never closes it: a failed Open unwinds "+
						"through Close, which must release every acquired child "+
						"(or suppress with //lint:ignore closepath <reason>)",
					recvType, c.path, recvType)
			}
		}
	}
	return nil
}

// receiverInfo extracts the receiver's type and binding names.
func receiverInfo(fn *ast.FuncDecl) (typeName, bindName string) {
	field := fn.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	ident, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(field.Names) == 0 {
		return ident.Name, ""
	}
	return ident.Name, field.Names[0].Name
}

type fieldCall struct {
	path string
	node ast.Node
}

// receiverMethodCalls finds calls of the form recv.<field...>.method()
// in body and returns the dotted field paths.
func receiverMethodCalls(body *ast.BlockStmt, recvName, method string) []fieldCall {
	var out []fieldCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		path, ok := fieldPath(sel.X, recvName)
		if ok && path != "" {
			out = append(out, fieldCall{path: path, node: call})
		}
		return true
	})
	return out
}

// fieldPath flattens expr into a dotted path rooted at the receiver
// identifier: s.child -> "child", g.buildPart.child -> "buildPart.child".
// Index expressions and calls make the path dynamic; those are skipped
// (ok=false) rather than guessed at.
func fieldPath(expr ast.Expr, recvName string) (string, bool) {
	var parts []string
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if e.Name != recvName {
				return "", false
			}
			// Reverse-accumulated: parts were appended leaf-first.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return "", false
		}
	}
}

// checkTempProvenance reports direct heap-file creation in exec outside
// the sanctioned Env.newTempFile helper.
func checkTempProvenance(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name == "newTempFile" {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "CreateTempHeapFile", "CreateTempHeapFileOn", "CreateHeapFile":
		default:
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "progressdb/internal/storage" {
			return true
		}
		pass.Reportf(call.Pos(),
			"direct storage.%s in internal/exec: spill files must be created via "+
				"Env.newTempFile so ReclaimTemps can guarantee cleanup after a panic",
			sel.Sel.Name)
		return true
	})
}

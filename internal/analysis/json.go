package analysis

import (
	"bytes"
	"encoding/json"
)

// JSONDiagnostic is the stable machine-readable encoding of one
// Diagnostic: what `progresslint -json` emits, one element per finding.
// The schema is a documented interface (README "Machine-readable
// output") that downstream tooling may parse: fields may be added in
// later versions, but the existing names, types, and meanings do not
// change.
type JSONDiagnostic struct {
	// File is the path as the loader saw it (relative to the module
	// root when progresslint runs from there).
	File string `json:"file"`
	// Line and Column are 1-based.
	Line   int `json:"line"`
	Column int `json:"column"`
	// Analyzer is the reporting analyzer's name, as listed by -list.
	Analyzer string `json:"analyzer"`
	// Message is the human-readable finding.
	Message string `json:"message"`
}

// JSON converts a resolved Diagnostic to its stable wire form.
func (d Diagnostic) JSON() JSONDiagnostic {
	return JSONDiagnostic{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// DiagnosticsJSON encodes diagnostics as an indented JSON array
// followed by a newline, without HTML escaping (messages quote source
// and directives like //lint:lockcoarse <reason> verbatim). The result
// is always an array — an empty run encodes as [], never null — so
// `-json` consumers can index unconditionally.
func DiagnosticsJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.JSON())
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestDiagnosticsJSONGolden pins the -json wire format against a
// committed golden file. The schema is documented in the README as a
// stable interface: if this test fails because a field was renamed,
// retyped, or removed, that is a breaking change for downstream
// parsers — add fields instead.
func TestDiagnosticsJSONGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/core/iterator.go", Line: 42, Column: 7},
			Analyzer: "vclocktime",
			Message:  "wall-clock time.Now in an engine package: use the virtual clock",
		},
		{
			Pos:      token.Position{Filename: "internal/fleet/progress.go", Line: 96, Column: 2},
			Analyzer: "lockdisc",
			Message: "fleet.aggregator.mu is held across a call to buildLocked, " +
				"which calls through the function value a.onProgress (in " +
				"fleet.aggregator.buildLocked) and may block: invoke callbacks " +
				"outside the critical section or declare the lock " +
				"//lint:lockcoarse <reason>",
		},
	}
	got, err := DiagnosticsJSON(diags)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "diagnostics.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("DiagnosticsJSON output drifted from %s — the -json schema is documented as stable.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestDiagnosticsJSONEmptyIsArray guards the always-an-array contract:
// a clean run must encode as [], never null, so consumers can index
// the result unconditionally.
func TestDiagnosticsJSONEmptyIsArray(t *testing.T) {
	for _, diags := range [][]Diagnostic{nil, {}} {
		got, err := DiagnosticsJSON(diags)
		if err != nil {
			t.Fatal(err)
		}
		var decoded []JSONDiagnostic
		if err := json.Unmarshal(got, &decoded); err != nil {
			t.Fatalf("output does not round-trip: %v\n%s", err, got)
		}
		if string(bytes.TrimSpace(got)) != "[]" {
			t.Errorf("empty diagnostics encoded as %q, want []", got)
		}
	}
}

// TestJSONDiagnosticFieldSet walks the encoded object and asserts the
// exact documented key set, catching accidental tag edits that the
// golden byte comparison would attribute to formatting.
func TestJSONDiagnosticFieldSet(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "f.go", Line: 1, Column: 2},
		Analyzer: "a",
		Message:  "m",
	}
	data, err := json.Marshal(d.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{"file", "line", "column", "analyzer", "message"}
	if len(m) != len(want) {
		t.Fatalf("encoded object has %d keys %v, want exactly %v", len(m), m, want)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("documented key %q missing from encoded object %v", k, m)
		}
	}
}

package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"progressdb"
	"progressdb/client"
	"progressdb/internal/obs/tsdb"
)

// smallDB is syntheticDB at 1/10 size, for tests that run many queries.
func smallDB(t testing.TB) *progressdb.DB {
	t.Helper()
	db := progressdb.Open(progressdb.Config{
		ProgressUpdateSeconds: 0.25,
		SpeedWindowSeconds:    1,
		SeqPageCost:           0.05,
		BufferPoolPages:       64,
		Metrics:               true,
	})
	db.MustCreateTable("t", progressdb.Col("k", progressdb.Int), progressdb.Col("pad", progressdb.Text))
	pad := strings.Repeat("x", 100)
	for i := 0; i < 2000; i++ {
		db.MustInsert("t", int64(i), pad)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdRestart(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestHistoryProfileMatchesLiveSSE is the plane's core acceptance
// check: a completed query's retained profile must reproduce, event for
// event, the exact progress curve a live SSE subscriber saw — same
// sequence numbers, same DoneU/Percent figures, monotone, terminal
// event last.
func TestHistoryProfileMatchesLiveSSE(t *testing.T) {
	db := syntheticDB(t)
	_, cl := testServer(t, db, Config{SampleInterval: -1, KeepAlive: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t where k < 15000", Name: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	var live []client.ProgressEvent
	if err := cl.Stream(ctx, sub.ID, func(ev client.ProgressEvent) error {
		live = append(live, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(live) < 3 {
		t.Fatalf("only %d live events; need a multi-refresh query", len(live))
	}
	if got := live[len(live)-1].State; got != client.StateDone {
		t.Fatalf("terminal state = %s, want done", got)
	}

	prof, err := cl.HistoryProfile(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof.Events, live) {
		t.Fatalf("retained event ledger diverges from the live SSE stream:\nlive:     %+v\nretained: %+v", live, prof.Events)
	}
	// The replayed curve must be monotone in DoneU and elapsed time.
	for i := 1; i < len(prof.Events); i++ {
		if prof.Events[i].DoneU < prof.Events[i-1].DoneU {
			t.Fatalf("DoneU regressed at event %d: %g -> %g", i, prof.Events[i-1].DoneU, prof.Events[i].DoneU)
		}
		if prof.Events[i].ElapsedSeconds < prof.Events[i-1].ElapsedSeconds {
			t.Fatalf("ElapsedSeconds regressed at event %d", i)
		}
	}
	if len(prof.Segments) == 0 {
		t.Fatal("done profile has no segment ledger")
	}
	for _, seg := range prof.Segments {
		if !seg.Done {
			t.Fatalf("segment %d not marked done in a completed query", seg.Index)
		}
		if seg.EndSeconds < seg.StartSeconds {
			t.Fatalf("segment %d spans backwards", seg.Index)
		}
	}
	// Non-terminal refreshes must each carry a remaining-time score.
	if got, want := len(prof.RemainingQError), len(live)-1; got != want {
		t.Fatalf("len(RemainingQError) = %d, want %d (one per non-terminal event)", got, want)
	}
	// The listing must surface the same query, newest first.
	hr, err := cl.History(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Retained != 1 || hr.Profiles[0].ID != sub.ID {
		t.Fatalf("history listing = %+v, want exactly %s", hr, sub.ID)
	}
	if hr.Profiles[0].Events != len(live) {
		t.Fatalf("summary events = %d, want %d", hr.Profiles[0].Events, len(live))
	}
}

// TestTimeseriesWindowedDownsampled drives the sampler on virtual
// timestamps (the wall-clock sampler is disabled) and asserts the
// /api/timeseries contract: ≥10 distinct engine_*/server_* series with
// windowed points, and a downsample budget that is actually enforced.
func TestTimeseriesWindowedDownsampled(t *testing.T) {
	db := smallDB(t)
	s, cl := testServer(t, db, Config{SampleInterval: -1, KeepAlive: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Stream(ctx, sub.ID, func(client.ProgressEvent) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		s.sampleOnce(float64(i))
	}

	resp, err := cl.Timeseries(ctx, client.TimeseriesRequest{WindowSeconds: 100, MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Now != 59 {
		t.Fatalf("now = %g, want 59 (the last virtual sample)", resp.Now)
	}
	engine, server := 0, 0
	for _, sr := range resp.Series {
		if len(sr.Points) == 0 {
			continue
		}
		if len(sr.Points) > 10 {
			t.Fatalf("series %s has %d points, budget was 10", sr.Name, len(sr.Points))
		}
		switch {
		case tsdb.HasPrefix(sr.Name, "engine_"):
			engine++
		case tsdb.HasPrefix(sr.Name, "server_"):
			server++
		}
	}
	if engine+server < 10 {
		t.Fatalf("engine_*+server_* series with data = %d+%d, want >= 10", engine, server)
	}
	if engine == 0 || server == 0 {
		t.Fatalf("want both engine (%d) and server (%d) series", engine, server)
	}

	// Window restriction: a window covering only the tail excludes the
	// early samples.
	tail, err := cl.Timeseries(ctx, client.TimeseriesRequest{
		Metrics:       []string{"vclock_seconds"},
		WindowSeconds: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Series) != 1 {
		t.Fatalf("metrics filter returned %d series, want 1", len(tail.Series))
	}
	for _, p := range tail.Series[0].Points {
		if p.T < 50 {
			t.Fatalf("point at t=%g leaked into a [50,59] window", p.T)
		}
	}
	if n := len(tail.Series[0].Points); n != 10 {
		t.Fatalf("tail window has %d points, want 10", n)
	}

	// Bad parameters are rejected.
	for _, path := range []string{"window=-1", "points=zero"} {
		hresp, err := http.Get(cl.BaseURL() + "/api/timeseries?" + path)
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET ?%s = %d, want 400", path, hresp.StatusCode)
		}
	}
}

// TestSSEKeepAlivePing stalls a paced query between refreshes and
// asserts the raw SSE stream carries `: ping` comment lines while idle —
// and that the Go client's Stream keeps working straight through them.
func TestSSEKeepAlivePing(t *testing.T) {
	db := syntheticDB(t)
	s, cl := testServer(t, db, Config{SampleInterval: -1, KeepAlive: 25 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// pace_ms=2000 stalls the stream for 2 s after the first refresh —
	// two orders of magnitude past the keep-alive interval.
	sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select * from t", PaceMS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL()+"/queries/"+sub.ID+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	pings, events := 0, 0
	for sc.Scan() && pings < 3 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": ping"):
			pings++
		case strings.HasPrefix(line, "data:"):
			events++
		}
	}
	if pings < 3 {
		t.Fatalf("saw %d keep-alive pings on a stalled stream, want >= 3 (events seen: %d)", pings, events)
	}

	// The typed client must be ping-transparent: cancel the stalled query
	// and stream to the terminal event without parse errors.
	done := make(chan error, 1)
	go func() {
		done <- cl.Stream(ctx, sub.ID, func(client.ProgressEvent) error { return nil })
	}()
	if _, err := cl.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("client stream through pings: %v", err)
	}
	waitState(t, cl, sub.ID, client.StateCanceled)
	if got := s.met.pings.Value(); got < 3 {
		t.Fatalf("server_sse_keepalives_total = %d, want >= 3", got)
	}
}

// TestHistoryConcurrentTrafficRace runs many queries to terminal states
// while concurrent clients page the history API — the -race coverage for
// the capture path. Afterwards the bounded store must hold the newest
// terminal profiles in order, each replaying a monotone DoneU curve.
func TestHistoryConcurrentTrafficRace(t *testing.T) {
	db := smallDB(t)
	_, cl := testServer(t, db, Config{
		QueueDepth:     32,
		HistoryDepth:   4,
		SampleInterval: -1,
		KeepAlive:      -1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const queries = 12
	ids := make([]string, 0, queries)
	for i := 0; i < queries; i++ {
		sub, err := cl.Submit(ctx, client.SubmitRequest{SQL: "select count(*) from t", Name: fmt.Sprintf("n%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}

	// M clients page the listing and fetch profiles while the queries
	// drain; invariants checked under -race.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for m := 0; m < 4; m++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hr, err := cl.History(ctx, "", 0)
				if err != nil {
					t.Error(err)
					return
				}
				if hr.Retained > hr.Capacity {
					t.Errorf("retained %d > capacity %d", hr.Retained, hr.Capacity)
					return
				}
				for _, sum := range hr.Profiles {
					if !sum.State.Terminal() {
						t.Errorf("history listed non-terminal state %s", sum.State)
						return
					}
					// Eviction may race the fetch; a 404 is legal here.
					if p, err := cl.HistoryProfile(ctx, sum.ID); err == nil {
						for i := 1; i < len(p.Events); i++ {
							if p.Events[i].DoneU < p.Events[i-1].DoneU {
								t.Errorf("profile %s: DoneU regressed", sum.ID)
								return
							}
						}
					}
				}
			}
		}()
	}

	for _, id := range ids {
		waitState(t, cl, id, client.StateDone)
	}
	close(stop)
	readers.Wait()

	hr, err := cl.History(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Retained != 4 {
		t.Fatalf("retained = %d, want the HistoryDepth bound of 4", hr.Retained)
	}
	// Newest-terminal-first: the retained set is the last four to finish,
	// in reverse finish order (FinishedAtMS non-increasing breaks ties by
	// capture order, which waitState's sequential drain makes strict).
	for i := 1; i < len(hr.Profiles); i++ {
		if hr.Profiles[i].FinishedAtMS > hr.Profiles[i-1].FinishedAtMS {
			t.Fatalf("listing not newest-first at %d: %+v", i, hr.Profiles)
		}
	}
	want := map[string]bool{}
	for _, id := range ids[len(ids)-4:] {
		want[id] = true
	}
	for _, sum := range hr.Profiles {
		if !want[sum.ID] {
			t.Fatalf("retained %s, want only the newest four %v", sum.ID, ids[len(ids)-4:])
		}
	}
}

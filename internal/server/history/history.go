// Package history is the observability plane's per-query profile
// store: a bounded, newest-terminal-first record of every query that
// reached a terminal state, retaining the full progress-event ledger,
// the per-segment estimated-vs-actual figures, engine counter deltas,
// and the trace span tree.
//
// The paper's indicator is something a user watches live; König et
// al.'s critique (judging an estimator needs the whole progress-vs-time
// trajectory of *completed* queries) is why finished queries must leave
// a profile behind instead of evaporating with their SSE stream. The
// store is bounded because progressd is long-running: profiles carry
// whole event ledgers, so an unbounded map is a slow memory leak. When
// full, the oldest terminal profile is evicted — the retained set is
// always the N most recently finished queries.
//
// Profiles are immutable once added; the store hands out the same
// pointer to every reader, which is what makes concurrent dashboard
// paging cheap.
package history

import (
	"sync"

	"progressdb/client"
)

// Store is a bounded, concurrency-safe profile store.
type Store struct {
	mu       sync.RWMutex
	capacity int
	byID     map[string]*client.QueryProfile
	order    []*client.QueryProfile // newest terminal first
}

// New creates a store bounded to capacity profiles (minimum 1).
func New(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{capacity: capacity, byID: make(map[string]*client.QueryProfile)}
}

// Capacity returns the store's bound.
func (s *Store) Capacity() int { return s.capacity }

// Len returns the number of retained profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Add retains p, evicting the oldest profile when the store is full.
// The caller must not mutate p afterwards. A profile whose query ID is
// already retained replaces the old entry (terminal transitions are
// exactly-once upstream, so this only happens if an ID is reused).
func (s *Store) Add(p *client.QueryProfile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := p.Query.ID
	if old, ok := s.byID[id]; ok {
		for i, q := range s.order {
			if q == old {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.byID[id] = p
	s.order = append([]*client.QueryProfile{p}, s.order...)
	for len(s.order) > s.capacity {
		evicted := s.order[len(s.order)-1]
		s.order = s.order[:len(s.order)-1]
		delete(s.byID, evicted.Query.ID)
	}
}

// Get returns the retained profile for id, if any.
func (s *Store) Get(id string) (*client.QueryProfile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.byID[id]
	return p, ok
}

// Sort orders for List.
const (
	// SortFinished ranks newest-terminal-first (the default).
	SortFinished = "finished"
	// SortDuration ranks by virtual execution time, longest first.
	SortDuration = "duration"
	// SortQError ranks by mean remaining-time q-error, worst first —
	// the "which queries did the estimator fail on" view.
	SortQError = "qerror"
)

// List returns ranked summaries of the retained profiles. sortBy is one
// of the Sort constants (unknown values fall back to SortFinished);
// limit caps the result length (<= 0 means all retained).
func (s *Store) List(sortBy string, limit int) []client.HistorySummary {
	s.mu.RLock()
	profiles := append([]*client.QueryProfile(nil), s.order...)
	s.mu.RUnlock()

	out := make([]client.HistorySummary, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, Summarize(p))
	}
	switch sortBy {
	case SortDuration:
		stableSort(out, func(a, b client.HistorySummary) bool { return a.VirtualSecs > b.VirtualSecs })
	case SortQError:
		stableSort(out, func(a, b client.HistorySummary) bool {
			return a.MeanRemainingQError > b.MeanRemainingQError
		})
	default:
		// Already newest-terminal-first by construction.
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// stableSort is insertion sort: result sets are bounded by the store
// capacity (hundreds), and stability keeps equal-keyed profiles in
// their newest-first order.
func stableSort(s []client.HistorySummary, less func(a, b client.HistorySummary) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Summarize reduces a profile to its listing row.
func Summarize(p *client.QueryProfile) client.HistorySummary {
	sum := client.HistorySummary{
		ID:                  p.Query.ID,
		Name:                p.Query.Name,
		State:               p.Query.State,
		FinishedAtMS:        p.Query.FinishedAtMS,
		VirtualSecs:         p.Query.VirtualSeconds,
		Events:              len(p.Events),
		Segments:            len(p.Segments),
		MeanRemainingQError: MeanQError(p.RemainingQError),
		Error:               p.Query.Error,
	}
	return sum
}

// MeanQError averages the defined (>= 1) entries of a q-error
// trajectory, returning -1 when none are defined.
func MeanQError(qerrs []float64) float64 {
	var sum float64
	n := 0
	for _, q := range qerrs {
		if q >= 1 {
			sum += q
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

package history

import (
	"fmt"
	"sync"
	"testing"

	"progressdb/client"
)

func profile(id string, finishedMS int64, vsecs float64, qerrs ...float64) *client.QueryProfile {
	return &client.QueryProfile{
		Query: client.QueryInfo{
			ID:             id,
			Name:           id,
			State:          client.StateDone,
			FinishedAtMS:   finishedMS,
			VirtualSeconds: vsecs,
		},
		Events:          []client.ProgressEvent{{Seq: 1}, {Seq: 2, State: client.StateDone}},
		RemainingQError: qerrs,
	}
}

func TestEvictionKeepsNewestTerminalFirst(t *testing.T) {
	s := New(3)
	for i := 1; i <= 5; i++ {
		s.Add(profile(fmt.Sprintf("q%d", i), int64(i*1000), float64(i)))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.List(SortFinished, 0)
	want := []string{"q5", "q4", "q3"}
	for i, w := range want {
		if got[i].ID != w {
			t.Fatalf("List[%d] = %s, want %s (full: %+v)", i, got[i].ID, w, got)
		}
	}
	for _, evicted := range []string{"q1", "q2"} {
		if _, ok := s.Get(evicted); ok {
			t.Fatalf("%s should have been evicted", evicted)
		}
	}
	if _, ok := s.Get("q4"); !ok {
		t.Fatal("q4 should be retained")
	}
}

func TestRankedListings(t *testing.T) {
	s := New(8)
	s.Add(profile("fast", 1000, 5, 1.1, 1.2))
	s.Add(profile("slow", 2000, 500, 1.05))
	s.Add(profile("wrong", 3000, 50, 9, 11))
	byDur := s.List(SortDuration, 0)
	if byDur[0].ID != "slow" {
		t.Fatalf("duration rank = %s, want slow", byDur[0].ID)
	}
	byQ := s.List(SortQError, 2)
	if len(byQ) != 2 || byQ[0].ID != "wrong" {
		t.Fatalf("qerror rank = %+v, want wrong first, 2 entries", byQ)
	}
	if got := byQ[0].MeanRemainingQError; got != 10 {
		t.Fatalf("mean q-error = %g, want 10", got)
	}
}

func TestMeanQErrorUndefined(t *testing.T) {
	if got := MeanQError(nil); got != -1 {
		t.Fatalf("MeanQError(nil) = %g, want -1", got)
	}
	if got := MeanQError([]float64{-1, -1}); got != -1 {
		t.Fatalf("MeanQError(all undefined) = %g, want -1", got)
	}
}

func TestReplaceSameID(t *testing.T) {
	s := New(4)
	s.Add(profile("q1", 1000, 1))
	s.Add(profile("q2", 2000, 2))
	s.Add(profile("q1", 3000, 3))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after replace", s.Len())
	}
	p, _ := s.Get("q1")
	if p.Query.FinishedAtMS != 3000 {
		t.Fatal("replacement must win")
	}
	if got := s.List(SortFinished, 0)[0].ID; got != "q1" {
		t.Fatalf("newest first = %s, want q1", got)
	}
}

// TestConcurrentAddList hammers the store from writers and readers
// under -race; invariants: Len never exceeds capacity, every listed
// profile Gets successfully.
func TestConcurrentAddList(t *testing.T) {
	s := New(16)
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A listed profile may be evicted before the Get (writers
				// race with us) — exercise both paths, assert only that a
				// still-present profile round-trips intact.
				for _, sum := range s.List(SortFinished, 0) {
					if p, ok := s.Get(sum.ID); ok && p.Query.ID != sum.ID {
						t.Error("Get returned a profile with a foreign ID")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				s.Add(profile(fmt.Sprintf("w%d-q%d", w, i), int64(i), float64(i)))
				if s.Len() > 16 {
					t.Error("store exceeded capacity")
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"progressdb"
	"progressdb/client"
)

// job is one submitted query's lifecycle record: its state machine
// (queued → running → done/failed/canceled), its progress-event history,
// and its fan-out subscriber set.
//
// Locking: j.mu guards every mutable field. publish and finish assign
// event sequence numbers and append to history under the lock, then
// push to each subscriber's private buffer — so a subscriber that
// replays history at subscribe time and then drains its buffer sees
// every event exactly once, in order, with exactly one terminal event.
// The push into a subscriber's buffer nests its lock inside the job's;
// progresslint enforces that the order never inverts:
//
//lint:lockorder job.mu < subscriber.mu
type job struct {
	id       string
	name     string
	sql      string
	keepRows bool
	pace     time.Duration

	// ctx is canceled by DELETE /queries/{id} or server shutdown; the
	// executor observes it at its safe points.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     client.State
	err       error
	res       *progressdb.Result
	counters  map[string]float64
	seq       int
	history   []client.ProgressEvent
	subs      map[int]*subscriber
	nextSub   int
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id, name, sql string, keepRows bool, pace time.Duration) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id: id, name: name, sql: sql, keepRows: keepRows, pace: pace,
		ctx: ctx, cancel: cancel,
		state: client.StateQueued, subs: make(map[int]*subscriber),
		submitted: time.Now(),
	}
}

// publish appends one progress event (assigning its sequence number)
// and fans it out. Events published after the terminal event are
// dropped — the terminal event is always last.
func (j *job) publish(ev client.ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.publishLocked(ev)
}

func (j *job) publishLocked(ev client.ProgressEvent) {
	j.seq++
	ev.Seq = j.seq
	ev.QueryID = j.id
	j.history = append(j.history, ev)
	for _, sub := range j.subs {
		sub.push(ev)
	}
}

// setRunning transitions queued → running; returns false if the job is
// already terminal (lost a race with cancellation).
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != client.StateQueued {
		return false
	}
	j.state = client.StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once, records the
// outcome, and publishes the terminal event. Returns true only for the
// call that performed the transition (callers bump metrics on true).
func (j *job) finish(state client.State, err error, res *progressdb.Result) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.err = err
	j.res = res
	j.finished = time.Now()

	// Terminal event: carry the last refresh's figures forward so late
	// subscribers still see how far the query got.
	var ev client.ProgressEvent
	if n := len(j.history); n > 0 {
		ev = j.history[n-1]
		ev.Segment = nil
	}
	ev.State = state
	if state == client.StateDone {
		ev.Percent = 100
		ev.RemainingSeconds = 0
		ev.Finished = true
		if res != nil {
			ev.ElapsedSeconds = res.VirtualSeconds
		}
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.publishLocked(ev)
	return true
}

// subscribe registers a new subscriber and atomically returns the event
// history so far; the subscriber's buffer receives everything published
// afterwards. If the job is already terminal the replay ends with the
// terminal event and the buffer stays silent.
func (j *job) subscribe() (replay []client.ProgressEvent, sub *subscriber, id int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]client.ProgressEvent(nil), j.history...)
	sub = &subscriber{wake: make(chan struct{}, 1)}
	id = j.nextSub
	j.nextSub++
	j.subs[id] = sub
	return replay, sub, id
}

func (j *job) unsubscribe(id int) {
	j.mu.Lock()
	delete(j.subs, id)
	j.mu.Unlock()
}

// info snapshots the job for the REST surface. queuePos is computed by
// the registry (0 when not queued).
func (j *job) info(queuePos int) client.QueryInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	qi := client.QueryInfo{
		ID:            j.id,
		Name:          j.name,
		SQL:           j.sql,
		State:         j.state,
		SubmittedAtMS: j.submitted.UnixMilli(),
	}
	if j.state == client.StateQueued {
		qi.QueuePosition = queuePos
	}
	if !j.started.IsZero() {
		qi.StartedAtMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		qi.FinishedAtMS = j.finished.UnixMilli()
	}
	if n := len(j.history); n > 0 {
		ev := j.history[n-1]
		qi.Progress = &ev
	}
	if j.err != nil {
		qi.Error = j.err.Error()
	}
	if j.res != nil {
		qi.VirtualSeconds = j.res.VirtualSeconds
		qi.RowCount = j.res.RowCount()
	}
	return qi
}

// setCounters records the engine counter deltas attributable to this
// job's execution, for its history profile. Called by the worker between
// the executor returning and finish().
func (j *job) setCounters(c map[string]float64) {
	j.mu.Lock()
	j.counters = c
	j.mu.Unlock()
}

// profile freezes the terminal job into its history record: the final
// lifecycle snapshot, the complete progress-event ledger, and — for
// queries that ran to completion — the per-segment estimated-vs-actual
// figures, the remaining-time q-error trajectory, and the trace span
// tree. The result must not be mutated afterwards (the history store
// shares it across readers).
func (j *job) profile() *client.QueryProfile {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := &client.QueryProfile{
		Query: client.QueryInfo{
			ID:            j.id,
			Name:          j.name,
			SQL:           j.sql,
			State:         j.state,
			SubmittedAtMS: j.submitted.UnixMilli(),
		},
		Events:   append([]client.ProgressEvent(nil), j.history...),
		Counters: j.counters,
	}
	if !j.started.IsZero() {
		p.Query.StartedAtMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		p.Query.FinishedAtMS = j.finished.UnixMilli()
	}
	if j.err != nil {
		p.Query.Error = j.err.Error()
	}
	if j.res == nil || j.state != client.StateDone {
		return p
	}
	res := j.res
	p.Query.VirtualSeconds = res.VirtualSeconds
	p.Query.RowCount = res.RowCount()
	p.Segments = make([]client.SegmentProfile, 0, len(res.Segments))
	for _, seg := range res.Segments {
		p.Segments = append(p.Segments, client.SegmentProfile{
			Index:        seg.Index,
			Root:         seg.Root,
			EstCostU:     seg.EstCostU,
			ActualCostU:  seg.ActualCostU,
			EstRows:      seg.EstRows,
			ActualRows:   seg.ActualRows,
			QError:       qError(seg.EstRows, seg.ActualRows),
			StartSeconds: seg.StartSeconds,
			EndSeconds:   seg.EndSeconds,
			Done:         seg.Done,
		})
	}
	// Score the remaining-time estimate at each non-terminal refresh
	// against what actually remained — computable only now that the true
	// total virtual duration is known.
	for _, ev := range p.Events {
		if ev.Terminal() {
			break
		}
		actual := res.VirtualSeconds - ev.ElapsedSeconds
		p.RemainingQError = append(p.RemainingQError, qError(ev.RemainingSeconds, actual))
	}
	if res.Trace != nil {
		if data, err := json.Marshal(res.Trace); err == nil {
			p.Trace = data
		}
	}
	return p
}

// qError is the estimator-quality metric max(est/actual, actual/est),
// or -1 where undefined (either side missing, zero, or negative —
// e.g. an unknown remaining time encoded as -1, or the final segment's
// unobserved output rows).
func qError(est, actual float64) float64 {
	if est <= 0 || actual <= 0 {
		return -1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// state returns the current lifecycle state.
func (j *job) currentState() client.State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// result returns the completed result (nil unless done).
func (j *job) result() (*progressdb.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != client.StateDone {
		return nil, false
	}
	return j.res, true
}

// subscriber is one SSE connection's private event queue: an unbounded
// buffer plus a wake signal. Unbounded is safe because a query's event
// count is bounded by its refresh count, and each event is small; it is
// what guarantees a slow reader never forces the publisher to drop a
// terminal event.
type subscriber struct {
	mu   sync.Mutex
	buf  []client.ProgressEvent
	wake chan struct{}
}

func (s *subscriber) push(ev client.ProgressEvent) {
	s.mu.Lock()
	s.buf = append(s.buf, ev)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// drain returns and clears the buffered events.
func (s *subscriber) drain() []client.ProgressEvent {
	s.mu.Lock()
	evs := s.buf
	s.buf = nil
	s.mu.Unlock()
	return evs
}

// wait blocks until events are buffered or ctx ends; ok=false means the
// context ended.
func (s *subscriber) wait(ctx context.Context) (evs []client.ProgressEvent, ok bool) {
	for {
		if evs := s.drain(); len(evs) > 0 {
			return evs, true
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// waitKeepAlive is wait with an idle bound: if no event arrives within d
// it returns (nil, true, true), telling the SSE handler to emit a
// keep-alive comment and wait again. ok=false still means the context
// ended.
func (s *subscriber) waitKeepAlive(ctx context.Context, d time.Duration) (evs []client.ProgressEvent, ok, ping bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		if evs := s.drain(); len(evs) > 0 {
			return evs, true, false
		}
		select {
		case <-s.wake:
		case <-t.C:
			return nil, true, true
		case <-ctx.Done():
			return nil, false, false
		}
	}
}

// registry indexes jobs by ID and submission order.
type registry struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []*job
}

func newRegistry() *registry {
	return &registry{jobs: make(map[string]*job)}
}

func (r *registry) add(j *job) {
	r.mu.Lock()
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	r.mu.Unlock()
}

func (r *registry) get(id string) (*job, bool) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	r.mu.Unlock()
	return j, ok
}

func (r *registry) list() []*job {
	r.mu.Lock()
	out := append([]*job(nil), r.order...)
	r.mu.Unlock()
	return out
}

// queuePosition returns j's 1-based position among still-queued jobs in
// submission order (0 if j is not queued).
func (r *registry) queuePosition(j *job) int {
	r.mu.Lock()
	order := append([]*job(nil), r.order...)
	r.mu.Unlock()
	pos := 0
	for _, other := range order {
		if other.currentState() != client.StateQueued {
			continue
		}
		pos++
		if other == j {
			return pos
		}
	}
	return 0
}
